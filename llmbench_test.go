package llmbench

import (
	"strings"
	"testing"
)

func TestRunQuickstart(t *testing.T) {
	res, err := Run(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"},
		Workload{Batch: 16, Input: 1024, Output: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.TTFTSeconds <= 0 || res.ITLSeconds <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestRunUnknownNames(t *testing.T) {
	cases := []System{
		{Model: "GPT-5", Device: "A100", Framework: "vLLM"},
		{Model: "LLaMA-3-8B", Device: "TPU", Framework: "vLLM"},
		{Model: "LLaMA-3-8B", Device: "A100", Framework: "MLC"},
		{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM", Weights: "fp13"},
		{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM", KV: "fp13"},
	}
	for i, sys := range cases {
		if _, err := Run(sys, Workload{Batch: 1, Input: 128, Output: 128}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCatalogs(t *testing.T) {
	if len(Models()) < 10 {
		t.Error("model catalog too small")
	}
	if len(Devices()) != 7 {
		t.Errorf("device catalog has %d entries, want 7", len(Devices()))
	}
	if len(Frameworks()) != 6 {
		t.Errorf("framework catalog has %d entries, want 6", len(Frameworks()))
	}
}

func TestExperimentsList(t *testing.T) {
	exps := Experiments()
	if len(exps) != 51 {
		t.Errorf("have %d experiments, want 51", len(exps))
	}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" {
			t.Errorf("experiment %+v incomplete", e)
		}
	}
}

func TestRunExperiment(t *testing.T) {
	res, err := RunExperiment("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Markdown, "fig2b") || res.CSV == "" {
		t.Error("experiment output incomplete")
	}
	tab, err := RunExperiment("tab1")
	if err != nil {
		t.Fatal(err)
	}
	if tab.CSV != "" {
		t.Error("tables have no CSV")
	}
	if _, err := RunExperiment("fig99"); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestPerplexityFacade(t *testing.T) {
	ppl, err := Perplexity("LLaMA-2-7B")
	if err != nil {
		t.Fatal(err)
	}
	if ppl < 2.5 || ppl > 5 {
		t.Errorf("perplexity %v outside paper band", ppl)
	}
	if _, err := Perplexity("GPT-5"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestServeFacade(t *testing.T) {
	stats, err := Serve(ServeConfig{
		System:     System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"},
		Continuous: true, MaxBatch: 16,
		Seed: 3, Requests: 40, RatePerSec: 5, InputMean: 512, OutputMean: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 40 {
		t.Errorf("completed %d/40", stats.Completed)
	}
	// A 70B model cannot be served on one A100.
	if _, err := Serve(ServeConfig{
		System:   System{Model: "LLaMA-2-70B", Device: "A100", Framework: "vLLM"},
		MaxBatch: 4, Requests: 4, RatePerSec: 1, InputMean: 128, OutputMean: 64,
	}); err == nil {
		t.Error("serving a 70B on one A100 must fail")
	}
}

func TestServeClusterFacade(t *testing.T) {
	stats, err := ServeCluster(ClusterConfig{
		System:      System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		Replicas:    2,
		LeastLoaded: true,
		MaxBatch:    16,
		Seed:        5, Requests: 30, RatePerSec: 6, InputMean: 256, OutputMean: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 30 || len(stats.PerReplica) != 2 {
		t.Errorf("cluster stats incomplete: %+v", stats.Stats)
	}
	if _, err := ServeCluster(ClusterConfig{Replicas: 0}); err == nil {
		t.Error("zero replicas must fail")
	}
	if _, err := ServeCluster(ClusterConfig{
		System: System{Model: "LLaMA-2-70B", Device: "A100", Framework: "vLLM"}, Replicas: 1,
		MaxBatch: 4, Requests: 4, RatePerSec: 1, InputMean: 64, OutputMean: 16,
	}); err == nil {
		t.Error("a 70B model on one A100 replica must fail")
	}
}

func TestQuantizedSystem(t *testing.T) {
	res, err := Run(System{
		Model: "LLaMA-3-8B", Device: "H100", Framework: "vLLM",
		Weights: "fp8", KV: "fp8",
	}, Workload{Batch: 16, Input: 1024, Output: 1024})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(System{Model: "LLaMA-3-8B", Device: "H100", Framework: "vLLM"},
		Workload{Batch: 16, Input: 1024, Output: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= base.Throughput {
		t.Error("fp8 must beat fp16 on H100")
	}
}

func TestParallelSystem(t *testing.T) {
	res, err := Run(System{Model: "LLaMA-3-70B", Device: "H100", Framework: "TRT-LLM", TP: 4},
		Workload{Batch: 16, Input: 512, Output: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("TP=4 70B run must succeed")
	}
}

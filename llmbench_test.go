package llmbench

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestRunQuickstart(t *testing.T) {
	res, err := Run(System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"},
		Workload{Batch: 16, Input: 1024, Output: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.TTFTSeconds <= 0 || res.ITLSeconds <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestRunUnknownNames(t *testing.T) {
	cases := []System{
		{Model: "GPT-5", Device: "A100", Framework: "vLLM"},
		{Model: "LLaMA-3-8B", Device: "TPU", Framework: "vLLM"},
		{Model: "LLaMA-3-8B", Device: "A100", Framework: "MLC"},
		{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM", Weights: "fp13"},
		{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM", KV: "fp13"},
	}
	for i, sys := range cases {
		if _, err := Run(sys, Workload{Batch: 1, Input: 128, Output: 128}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCatalogs(t *testing.T) {
	if len(Models()) < 10 {
		t.Error("model catalog too small")
	}
	if len(Devices()) != 7 {
		t.Errorf("device catalog has %d entries, want 7", len(Devices()))
	}
	if len(Frameworks()) != 6 {
		t.Errorf("framework catalog has %d entries, want 6", len(Frameworks()))
	}
}

func TestExperimentsList(t *testing.T) {
	exps := Experiments()
	if len(exps) != 51 {
		t.Errorf("have %d experiments, want 51", len(exps))
	}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" {
			t.Errorf("experiment %+v incomplete", e)
		}
	}
}

func TestRunExperiment(t *testing.T) {
	res, err := RunExperiment("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Markdown, "fig2b") || res.CSV == "" {
		t.Error("experiment output incomplete")
	}
	tab, err := RunExperiment("tab1")
	if err != nil {
		t.Fatal(err)
	}
	if tab.CSV != "" {
		t.Error("tables have no CSV")
	}
	if _, err := RunExperiment("fig99"); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestPerplexityFacade(t *testing.T) {
	ppl, err := Perplexity("LLaMA-2-7B")
	if err != nil {
		t.Fatal(err)
	}
	if ppl < 2.5 || ppl > 5 {
		t.Errorf("perplexity %v outside paper band", ppl)
	}
	if _, err := Perplexity("GPT-5"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestServeFacade(t *testing.T) {
	stats, err := Serve(ServeConfig{
		System:     System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"},
		Continuous: true, MaxBatch: 16,
		Seed: 3, Requests: 40, RatePerSec: 5, InputMean: 512, OutputMean: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 40 {
		t.Errorf("completed %d/40", stats.Completed)
	}
	// A 70B model cannot be served on one A100.
	if _, err := Serve(ServeConfig{
		System:   System{Model: "LLaMA-2-70B", Device: "A100", Framework: "vLLM"},
		MaxBatch: 4, Requests: 4, RatePerSec: 1, InputMean: 128, OutputMean: 64,
	}); err == nil {
		t.Error("serving a 70B on one A100 must fail")
	}
}

// TestInvalidKVBudgetRejected: a negative KVBudgetGiB used to fall
// through the `budget > 0` guard and silently auto-size from device
// memory (and +Inf overflowed the allocator's block count); every
// serving entry point must reject non-finite and negative budgets.
func TestInvalidKVBudgetRejected(t *testing.T) {
	sys := System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"}
	for _, budget := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := Serve(ServeConfig{
			System: sys, Continuous: true, MaxBatch: 8, KVBudgetGiB: budget,
			Requests: 4, RatePerSec: 1, InputMean: 128, OutputMean: 32,
		}); err == nil || !strings.Contains(err.Error(), "invalid KV budget") {
			t.Errorf("Serve(budget %v): want invalid-budget error, got %v", budget, err)
		}
	}
	if _, err := ServeCluster(ClusterConfig{
		System: sys, Replicas: 2, MaxBatch: 8, KVBudgetGiB: -0.5,
		Requests: 4, RatePerSec: 1, InputMean: 128, OutputMean: 32,
	}); err == nil || !strings.Contains(err.Error(), "invalid KV budget") {
		t.Errorf("ServeCluster: want invalid-budget error, got %v", err)
	}
	if _, err := ServeAutoscale(AutoscaleConfig{
		System: sys, MaxBatch: 8, KVBudgetGiB: -2,
		MinReplicas: 1, MaxReplicas: 2, UpOutstanding: 8, DownIdleS: 3, CooldownS: 1,
		Requests: 4, RatePerSec: 1, InputMean: 128, OutputMean: 32,
	}); err == nil || !strings.Contains(err.Error(), "invalid KV budget") {
		t.Errorf("ServeAutoscale: want invalid-budget error, got %v", err)
	}
	// Positive budgets still pass through unchanged.
	if _, err := Serve(ServeConfig{
		System: sys, Continuous: true, MaxBatch: 8, KVBudgetGiB: 4,
		Requests: 4, RatePerSec: 1, InputMean: 128, OutputMean: 32,
	}); err != nil {
		t.Errorf("explicit positive budget must work: %v", err)
	}
}

func TestServeClusterFacade(t *testing.T) {
	stats, err := ServeCluster(ClusterConfig{
		System:      System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		Replicas:    2,
		LeastLoaded: true,
		MaxBatch:    16,
		Seed:        5, Requests: 30, RatePerSec: 6, InputMean: 256, OutputMean: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 30 || len(stats.PerReplica) != 2 {
		t.Errorf("cluster stats incomplete: %+v", stats.Stats)
	}
	if _, err := ServeCluster(ClusterConfig{Replicas: 0}); err == nil {
		t.Error("zero replicas must fail")
	}
	if _, err := ServeCluster(ClusterConfig{
		System: System{Model: "LLaMA-2-70B", Device: "A100", Framework: "vLLM"}, Replicas: 1,
		MaxBatch: 4, Requests: 4, RatePerSec: 1, InputMean: 64, OutputMean: 16,
	}); err == nil {
		t.Error("a 70B model on one A100 replica must fail")
	}
}

// TestServeClusterParallelismIdentical pins the root-level promise:
// the Parallelism knob changes wall-clock behaviour only — the
// returned Stats (every percentile, every per-replica share) are
// byte-identical to the serial run.
func TestServeClusterParallelismIdentical(t *testing.T) {
	cfg := ClusterConfig{
		System:      System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		Replicas:    3,
		LeastLoaded: true,
		MaxBatch:    8,
		Seed:        7, Requests: 36, RatePerSec: 8, InputMean: 256, OutputMean: 96,
	}
	serial, err := ServeCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	parallel, err := ServeCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel ServeCluster Stats differ from serial")
	}
	if serial.P50Latency <= 0 || serial.P95Latency < serial.P50Latency ||
		serial.P99Latency < serial.P95Latency {
		t.Errorf("latency percentiles inconsistent: %+v", serial.Stats)
	}
	if serial.P99QueueDelay < serial.P50QueueDelay {
		t.Errorf("queue-delay percentiles inconsistent: %+v", serial.Stats)
	}
}

func TestServeAutoscaleFacade(t *testing.T) {
	stats, err := ServeAutoscale(AutoscaleConfig{
		System:      System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		MaxBatch:    16,
		MinReplicas: 1, MaxReplicas: 4,
		UpOutstanding: 8, DownIdleS: 3, CooldownS: 1,
		Parallelism: 2,
		Seed:        9, Requests: 120, RatePerSec: 12, InputMean: 384, OutputMean: 96,
		BurstFactor: 5, BurstLenS: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 120 {
		t.Errorf("completed %d/120", stats.Completed)
	}
	if stats.PeakReplicas < 2 || stats.PeakReplicas > 4 {
		t.Errorf("burst load must scale past 1 replica within Max: peak %d", stats.PeakReplicas)
	}
	if len(stats.PerReplica) < stats.PeakReplicas {
		t.Errorf("per-replica stats missing: %d < peak %d", len(stats.PerReplica), stats.PeakReplicas)
	}
	if _, err := ServeAutoscale(AutoscaleConfig{
		System: System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
	}); err == nil {
		t.Error("zero bounds must fail validation")
	}
}

func TestQuantizedSystem(t *testing.T) {
	res, err := Run(System{
		Model: "LLaMA-3-8B", Device: "H100", Framework: "vLLM",
		Weights: "fp8", KV: "fp8",
	}, Workload{Batch: 16, Input: 1024, Output: 1024})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(System{Model: "LLaMA-3-8B", Device: "H100", Framework: "vLLM"},
		Workload{Batch: 16, Input: 1024, Output: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= base.Throughput {
		t.Error("fp8 must beat fp16 on H100")
	}
}

func TestParallelSystem(t *testing.T) {
	res, err := Run(System{Model: "LLaMA-3-70B", Device: "H100", Framework: "TRT-LLM", TP: 4},
		Workload{Batch: 16, Input: 512, Output: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("TP=4 70B run must succeed")
	}
}

package llmbench

import (
	"errors"
	"strings"
	"testing"

	"llmbench/internal/engine"
)

var sweepSys = System{Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM"}

func TestSweepGridOrderAndValues(t *testing.T) {
	grid := Grid{Batches: []int{1, 16}, Lengths: []int{128, 1024}, Parallelism: 4}
	pts, err := Sweep(sweepSys, grid)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []struct{ b, l int }{{1, 128}, {16, 128}, {1, 1024}, {16, 1024}}
	if len(pts) != len(wantOrder) {
		t.Fatalf("got %d points, want %d", len(pts), len(wantOrder))
	}
	for i, w := range wantOrder {
		if pts[i].Batch != w.b || pts[i].Length != w.l {
			t.Errorf("point %d = (bs %d, len %d), want (bs %d, len %d)",
				i, pts[i].Batch, pts[i].Length, w.b, w.l)
		}
		if pts[i].Err != nil {
			t.Errorf("point %d failed: %v", i, pts[i].Err)
		}
		// Every point must agree with a direct serial Run.
		res, err := Run(sweepSys, Workload{Batch: w.b, Input: w.l, Output: w.l})
		if err != nil {
			t.Fatal(err)
		}
		if pts[i].Result != res {
			t.Errorf("point %d differs from serial Run", i)
		}
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	grid := Grid{Batches: []int{1, 16, 32, 64}, Lengths: []int{128, 1024}}
	grid.Parallelism = 1
	serial, err := Sweep(sweepSys, grid)
	if err != nil {
		t.Fatal(err)
	}
	grid.Parallelism = 8
	parallel, err := Sweep(sweepSys, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d differs between parallelism 1 and 8", i)
		}
	}
}

func TestSweepEmptyGrid(t *testing.T) {
	for _, g := range []Grid{
		{},
		{Batches: []int{1}},
		{Lengths: []int{128}},
	} {
		if _, err := Sweep(sweepSys, g); err == nil {
			t.Errorf("Sweep(%+v) should reject an empty grid", g)
		} else if !strings.Contains(err.Error(), "empty sweep grid") {
			t.Errorf("Sweep(%+v) error = %v", g, err)
		}
	}
}

func TestSweepInvalidSystem(t *testing.T) {
	_, err := Sweep(System{Model: "no-such-model", Device: "A100", Framework: "vLLM"},
		Grid{Batches: []int{1}, Lengths: []int{128}})
	if err == nil {
		t.Fatal("invalid system must fail the whole sweep")
	}
}

// TestSweepAggregatesPointErrors: a grid mixing fitting and OOM
// points must return every point, with failures recorded per point
// rather than aborting the sweep.
func TestSweepAggregatesPointErrors(t *testing.T) {
	// LLaMA-3-70B on one A100 cannot even hold its weights; every
	// point errs but the sweep itself succeeds.
	pts, err := Sweep(System{Model: "LLaMA-3-70B", Device: "A100", Framework: "vLLM"},
		Grid{Batches: []int{1, 16}, Lengths: []int{128}, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if !errors.Is(p.Err, engine.ErrOOM) {
			t.Errorf("point %d: err = %v, want ErrOOM", i, p.Err)
		}
	}

	// Mixed case: SN40L's hosted service refuses batch > 64, so bs
	// 128 fails while bs 1 succeeds in the same sweep.
	pts, err = Sweep(System{Model: "Mistral-7B", Device: "SN40L", Framework: "SambaFlow", TP: 8},
		Grid{Batches: []int{1, 128}, Lengths: []int{128}, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Err != nil {
		t.Errorf("bs 1 should fit: %v", pts[0].Err)
	}
	if !errors.Is(pts[1].Err, engine.ErrUnsupportedBatch) {
		t.Errorf("bs 128: err = %v, want ErrUnsupportedBatch", pts[1].Err)
	}
}

// TestSweepConfigAxesOrder pins the axis nesting (Devices ▸
// Frameworks ▸ Schemes ▸ Lengths ▸ Batches) and that every point
// matches a direct Run of the overridden system.
func TestSweepConfigAxesOrder(t *testing.T) {
	grid := Grid{
		Batches: []int{1, 16},
		Lengths: []int{128},
		Devices: []string{"H100", "A100"},
		Schemes: []Scheme{{"fp16", "fp16"}, {"int8", "int8"}},
	}
	pts, err := Sweep(sweepSys, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*2*2 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	i := 0
	for _, dev := range grid.Devices {
		for _, sc := range grid.Schemes {
			for _, b := range grid.Batches {
				p := pts[i]
				if p.Device != dev || p.Scheme != sc || p.Batch != b || p.Length != 128 {
					t.Errorf("point %d = %s/%v bs %d len %d, want %s/%v bs %d len 128",
						i, p.Device, p.Scheme, p.Batch, p.Length, dev, sc, b)
				}
				if p.Framework != sweepSys.Framework {
					t.Errorf("point %d framework %q, want base %q", i, p.Framework, sweepSys.Framework)
				}
				if p.Err != nil {
					t.Errorf("point %d failed: %v", i, p.Err)
					i++
					continue
				}
				sys := sweepSys
				sys.Device, sys.Weights, sys.KV = dev, sc.Weights, sc.KV
				res, err := Run(sys, Workload{Batch: b, Input: 128, Output: 128})
				if err != nil {
					t.Fatal(err)
				}
				if p.Result != res {
					t.Errorf("point %d differs from direct Run of the overridden system", i)
				}
				i++
			}
		}
	}
}

// TestSweepAxisComboFailureIsPerPoint: a combination that cannot
// build (FP8 weights on A100, §IV-B3) fails its own points while the
// rest of the sweep proceeds — unless every combination fails, which
// fails the call.
func TestSweepAxisComboFailureIsPerPoint(t *testing.T) {
	pts, err := Sweep(sweepSys, Grid{
		Batches: []int{1},
		Lengths: []int{128},
		Schemes: []Scheme{{"fp8", "fp8"}, {"fp16", "fp16"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Err == nil {
		t.Error("fp8 weights on A100 must fail per point")
	}
	if pts[1].Err != nil {
		t.Errorf("fp16 combo must survive: %v", pts[1].Err)
	}

	if _, err := Sweep(sweepSys, Grid{
		Batches: []int{1},
		Lengths: []int{128},
		Schemes: []Scheme{{"fp8", "fp8"}},
	}); err == nil {
		t.Error("a sweep whose every combination fails must fail the call")
	}
}

// TestSweepAllCombosFailJoined: a sweep whose every combination
// fails to build must name every distinct cause, not just the first —
// a three-device sweep that fully fails should read as three errors.
func TestSweepAllCombosFailJoined(t *testing.T) {
	_, err := Sweep(sweepSys, Grid{
		Batches: []int{1},
		Lengths: []int{128},
		Devices: []string{"A100", "NoSuchDevice"},
		Schemes: []Scheme{{"fp8", "fp8"}},
	})
	if err == nil {
		t.Fatal("all-failing combinations must fail the call")
	}
	msg := err.Error()
	if !strings.Contains(msg, "fp8") || !strings.Contains(msg, "NoSuchDevice") {
		t.Errorf("joined error must name every distinct cause, got: %v", msg)
	}

	// A single failing combination keeps the plain, unjoined error.
	_, err = Sweep(System{Model: "no-such-model", Device: "A100", Framework: "vLLM"},
		Grid{Batches: []int{1}, Lengths: []int{128}})
	if err == nil || strings.Contains(err.Error(), "every sweep combination") {
		t.Errorf("single-combination failure must stay unwrapped, got: %v", err)
	}
}

// TestSweepAxesDeterministicAcrossParallelism extends the
// byte-identical guarantee to configuration axes.
func TestSweepAxesDeterministicAcrossParallelism(t *testing.T) {
	grid := Grid{
		Batches:    []int{1, 16},
		Lengths:    []int{128},
		Devices:    []string{"A100", "H100"},
		Frameworks: []string{"vLLM", "TRT-LLM"},
	}
	grid.Parallelism = 1
	serial, err := Sweep(sweepSys, grid)
	if err != nil {
		t.Fatal(err)
	}
	grid.Parallelism = 8
	parallel, err := Sweep(sweepSys, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d differs between parallelism 1 and 8", i)
		}
	}
}

func TestCachedEngineReuse(t *testing.T) {
	a, err := CachedEngine(sweepSys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedEngine(sweepSys)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("CachedEngine rebuilt a cached system")
	}
	other := sweepSys
	other.TP = 4
	c, err := CachedEngine(other)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct systems must not share an engine")
	}
	// Equivalent spellings normalise to one key: zero degrees mean 1,
	// empty precisions mean fp16.
	norm := sweepSys
	norm.TP, norm.PP, norm.EP = 1, 1, 1
	norm.Weights, norm.KV = "fp16", "fp16"
	d, err := CachedEngine(norm)
	if err != nil {
		t.Fatal(err)
	}
	if d != a {
		t.Fatal("normalised spelling must share the zero-value spelling's engine")
	}
	if _, err := CachedEngine(System{Model: "nope", Device: "A100", Framework: "vLLM"}); err == nil {
		t.Fatal("invalid system must error")
	}
}

// TestOneEngineCacheInProcess pins the cache unification: the root
// package's CachedEngine and a direct engine.Cached call with the
// resolved configuration return the same instance, because the only
// engine cache in the process lives at the engine layer (shared with
// internal/experiments).
func TestOneEngineCacheInProcess(t *testing.T) {
	a, err := CachedEngine(sweepSys)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := systemConfig(sweepSys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.Cached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("root CachedEngine and engine.Cached must share one instance")
	}
}

func TestRunExperimentsOrdered(t *testing.T) {
	ids := []string{"fig2b", "fig1a"}
	res, err := RunExperiments(ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != "fig2b" || res[1].ID != "fig1a" {
		t.Fatalf("results out of order: %v, %v", res[0].ID, res[1].ID)
	}
	for _, r := range res {
		if r.Markdown == "" || r.CSV == "" {
			t.Errorf("%s: empty output", r.ID)
		}
	}
	if _, err := RunExperiments([]string{"bogus"}, 1); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

package llmbench

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"llmbench/internal/hw"
	"llmbench/internal/model"
)

// TestServePolicyStringParseRoundTrip pins the textual policy surface:
// String() output parses back to the identical policy for every valid
// combination, and malformed topology tokens are rejected with errors
// that name the offending piece.
func TestServePolicyStringParseRoundTrip(t *testing.T) {
	valid := []ServePolicy{
		{},
		{LeastLoaded: true},
		{Static: true},
		{Static: true, LeastLoaded: true},
		{Autoscale: true},
		{Static: true, Autoscale: true},
		{PrefillPool: 1, DecodePool: 3},
		{LeastLoaded: true, PrefillPool: 2, DecodePool: 6},
	}
	for _, p := range valid {
		got, err := ParseServePolicy(p.String())
		if err != nil {
			t.Errorf("%v: round-trip parse failed: %v", p, err)
			continue
		}
		if got != p {
			t.Errorf("round-trip drift: %v → %q → %v", p, p.String(), got)
		}
	}

	// Spellings beyond the canonical String() forms.
	for s, want := range map[string]ServePolicy{
		"continuous/round-robin":   {},
		"static:ll":                {Static: true, LeastLoaded: true},
		"autoscale":                {Autoscale: true},
		"aggregated/rr":            {},
		"disagg/1:3":               {PrefillPool: 1, DecodePool: 3},
		"ll/disagg/2:6":            {LeastLoaded: true, PrefillPool: 2, DecodePool: 6},
		"disagg/1:3/aggregated":    {}, // later tokens override earlier ones
		"continuous/rr/disagg/4:4": {PrefillPool: 4, DecodePool: 4},
	} {
		got, err := ParseServePolicy(s)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("%q parsed to %v, want %v", s, got, want)
		}
	}

	bad := []string{
		"",
		"disagg/0:3",           // zero share
		"disagg/1",             // missing decode share
		"disagg/a:b",           // non-numeric shares
		"disagg/-1:3",          // negative share
		"disagg/2:6:autoscale", // autoscale does not compose with disagg
		"static/disagg/1:3",    // static does not compose with disagg
		"continuous/fifo",      // unknown token
	}
	for _, s := range bad {
		if _, err := ParseServePolicy(s); err == nil {
			t.Errorf("%q parsed without error, want reject", s)
		}
	}
}

// TestServeSweepAggregatedGolden pins the aggregated serving sweep
// byte-for-byte to the pre-disaggregation simulator: the fingerprints
// were generated at the commit before the topology axis existed. Any
// drift means the phase-split refactor changed aggregated behavior.
func TestServeSweepAggregatedGolden(t *testing.T) {
	cfg := ServeSweepConfig{
		System:   System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		MaxBatch: 16,
		Seed:     7, Requests: 80, InputMean: 256, OutputMean: 64,
	}
	pts, err := ServeSweep(cfg, ServeGrid{
		Rates:    []float64{8, 16},
		Replicas: []int{2},
		Policies: []ServePolicy{{}, {LeastLoaded: true}, {Static: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"0x1.1dd1e651092bp+00|0x1.2b533bce6e858p+11|0x1.5a20137807277p+03|80",
		"0x1.32e030d816949p+00|0x1.29677b9992239p+12|0x1.5c28bd35d29bcp+02|80",
		"0x1.1a4dbb9e34cf4p+00|0x1.2b3cb7f14104ap+11|0x1.5a3a1e7c2b33bp+03|80",
		"0x1.2b5c93b9eee35p+00|0x1.28014a94bbde8p+12|0x1.5dce0aa024bc7p+02|80",
		"0x1.0dcb79d00ee48p+01|0x1.1b53366ee7c9fp+11|0x1.6dabff88194f4p+03|80",
		"0x1.2a0bdc479dce8p+01|0x1.f24bd4765c6e2p+11|0x1.9f9797fe58c57p+02|80",
	}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p.Err != nil {
			t.Fatalf("point %d (%v @ %g): %v", i, p.Policy, p.Rate, p.Err)
		}
		got := fmt.Sprintf("%x|%x|%x|%d",
			p.Stats.P99Latency, p.Stats.Throughput, p.Stats.MakespanS, p.Stats.Completed)
		if got != want[i] {
			t.Errorf("point %d (%v @ %g) drifted from pre-refactor output:\ngot  %s\nwant %s",
				i, p.Policy, p.Rate, got, want[i])
		}
	}
}

// TestServeSweepDisagg runs the topology axis end to end: aggregated
// and disaggregated policies in one grid, per-topology knees, and
// transfer-delay accounting only where a pool split exists.
func TestServeSweepDisagg(t *testing.T) {
	cfg := serveSweepCfg
	cfg.Requests = 40
	grid := ServeGrid{
		Rates:    []float64{4, 8},
		Replicas: []int{4},
		Policies: []ServePolicy{
			{LeastLoaded: true},
			{PrefillPool: 1, DecodePool: 3},
			{LeastLoaded: true, PrefillPool: 2, DecodePool: 2},
		},
	}
	pts, err := ServeSweep(cfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	for i, p := range pts {
		if p.Err != nil {
			t.Fatalf("point %d (%v @ %g): %v", i, p.Policy, p.Rate, p.Err)
		}
		if p.Stats.Completed != cfg.Requests {
			t.Errorf("point %d completed %d/%d", i, p.Stats.Completed, cfg.Requests)
		}
		if p.Policy.Disagg() {
			if !(p.Stats.MeanTransferDelay > 0) {
				t.Errorf("point %d (%v): MeanTransferDelay %v, want > 0", i, p.Policy, p.Stats.MeanTransferDelay)
			}
		} else if p.Stats.MeanTransferDelay != 0 {
			t.Errorf("point %d (%v): aggregated point reports transfer delay %v", i, p.Policy, p.Stats.MeanTransferDelay)
		}
	}
	// Each topology keys its own knee: three policies, three knees, in
	// grid order.
	knees, err := Knees(pts, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(knees) != len(grid.Policies) {
		t.Fatalf("got %d knees, want %d", len(knees), len(grid.Policies))
	}
	for i, k := range knees {
		if k.Policy != grid.Policies[i] {
			t.Errorf("knee %d keyed %v, want %v", i, k.Policy, grid.Policies[i])
		}
		if !k.Met {
			t.Errorf("knee %d (%v) unmet at a 60 s SLO", i, k.Policy)
		}
	}
	// Disagg policy strings carry the topology, so downstream tables
	// distinguish the fleets.
	if s := knees[1].Policy.String(); !strings.Contains(s, "disagg/1:3") {
		t.Errorf("disagg knee policy renders %q, want a disagg/1:3 suffix", s)
	}
}

// TestServeSweepDisaggIndivisibleFleet: a fleet the pool ratio cannot
// split fails its own points — naming the ratio and fleet — while the
// divisible replica count proceeds.
func TestServeSweepDisaggIndivisibleFleet(t *testing.T) {
	cfg := serveSweepCfg
	cfg.Requests = 10
	pts, err := ServeSweep(cfg, ServeGrid{
		Rates:    []float64{4},
		Replicas: []int{3, 4},
		Policies: []ServePolicy{{PrefillPool: 1, DecodePool: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Err == nil || !strings.Contains(pts[0].Err.Error(), "divisible") {
		t.Errorf("3-replica 1:3 point: got err %v, want a divisibility error", pts[0].Err)
	}
	if pts[1].Err != nil {
		t.Errorf("4-replica 1:3 point failed: %v", pts[1].Err)
	}
}

// TestTransferCostInterconnect pins interconnect-pricing validation:
// catalog devices price cleanly, and zero/negative/NaN/Inf interconnect
// descriptions fail with ErrInterconnect at config time.
func TestTransferCostInterconnect(t *testing.T) {
	tc, err := transferCost(System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"})
	if err != nil {
		t.Fatal(err)
	}
	if tc.GBPerS != 600 || tc.LatencyS != 3e-6 || tc.BlockTokens != 16 || !(tc.BytesPerToken > 0) {
		t.Errorf("A100 transfer cost %+v does not match the catalog interconnect", tc)
	}

	m := model.MustGet("Mistral-7B")
	good := *hw.MustGet("A100")
	for name, mutate := range map[string]func(*hw.Device){
		"zero bandwidth":     func(d *hw.Device) { d.InterconnectGBs = 0 },
		"negative bandwidth": func(d *hw.Device) { d.InterconnectGBs = -600 },
		"NaN bandwidth":      func(d *hw.Device) { d.InterconnectGBs = math.NaN() },
		"Inf bandwidth":      func(d *hw.Device) { d.InterconnectGBs = math.Inf(1) },
		"zero latency":       func(d *hw.Device) { d.InterconnectLatencyUS = 0 },
		"NaN latency":        func(d *hw.Device) { d.InterconnectLatencyUS = math.NaN() },
		"Inf latency":        func(d *hw.Device) { d.InterconnectLatencyUS = math.Inf(1) },
	} {
		d := good
		mutate(&d)
		if _, err := transferCostFor("fake", m, &d); !errors.Is(err, ErrInterconnect) {
			t.Errorf("%s: got %v, want ErrInterconnect", name, err)
		}
	}
	if _, err := transferCost(System{Model: "no-such-model", Device: "A100"}); err == nil {
		t.Error("unknown model must fail")
	}
	if _, err := transferCost(System{Model: "Mistral-7B", Device: "no-such-device"}); err == nil {
		t.Error("unknown device must fail")
	}
}

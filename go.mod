module llmbench

go 1.22

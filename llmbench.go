// Package llmbench is a Go reproduction of "LLM-Inference-Bench:
// Inference Benchmarking of Large Language Models on AI Accelerators"
// (Chitty-Venkata et al., SC 2024).
//
// Since the paper's testbed — NVIDIA A100/H100/GH200, AMD
// MI250/MI300X, Habana Gaudi2, SambaNova SN40L — is not reproducible
// in software, the library rebuilds the system under study as a
// calibrated, mechanism-level simulator (see DESIGN.md) and reruns the
// paper's entire evaluation on it: every figure and table has a
// corresponding experiment and benchmark.
//
// Quick start:
//
//	res, err := llmbench.Run(llmbench.System{
//	    Model: "LLaMA-3-8B", Device: "A100", Framework: "vLLM",
//	}, llmbench.Workload{Batch: 16, Input: 1024, Output: 1024})
//
// Grids of points — the shape of every figure in the paper — go
// through Sweep, which builds the engine once, fans the points out
// over a bounded worker pool, and returns them in grid order:
//
//	pts, err := llmbench.Sweep(sys, llmbench.Grid{
//	    Batches: []int{1, 16, 32, 64}, Lengths: []int{128, 1024},
//	})
//
// Serving-capacity grids — arrival rate × replica count × scheduling
// policy, the questions a deployment planner asks of the continuous-
// batching and cluster simulators — go through ServeSweep, with Knees
// folding the result into each configuration's highest SLO-compliant
// rate:
//
//	pts, err := llmbench.ServeSweep(llmbench.ServeSweepConfig{
//	    System: sys, MaxBatch: 32,
//	    Requests: 200, InputMean: 512, OutputMean: 128,
//	}, llmbench.ServeGrid{
//	    Rates:    []float64{5, 10, 20, 40},
//	    Replicas: []int{1, 2, 4},
//	})
//	knees := llmbench.Knees(pts, 6.0 /* p99 SLO seconds */)
//
// All fan-out APIs (Sweep, ServeSweep, RunExperiments, Report,
// VerifyAnchors) are deterministic: results are ordered by
// submission, never by completion, so parallel output is
// byte-identical to serial output. Engines are immutable once built
// and shared through a cache keyed by System.
//
// Deeper control — quantization schemes, parallelism plans, paged-KV
// block sizes, serving traces — is available through the same System
// struct; the internal packages hold the mechanism implementations.
package llmbench

import (
	"errors"
	"fmt"
	"io"
	"math"

	"llmbench/internal/cluster"
	"llmbench/internal/des"
	"llmbench/internal/engine"
	"llmbench/internal/experiments"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/parallel"
	"llmbench/internal/perplexity"
	"llmbench/internal/quant"
	"llmbench/internal/sched"
	"llmbench/internal/workload"

	"llmbench/internal/dtype"
)

// System names one benchmarkable configuration. Model, Device, and
// Framework are catalog names (see Models, Devices, Frameworks).
type System struct {
	Model     string
	Device    string
	Framework string

	// Parallelism degrees; zero values mean 1.
	TP, PP, EP int

	// Weights and KV are precision names ("fp16", "fp8", "int8", …);
	// empty means fp16.
	Weights string
	KV      string

	// KVBlockTokens overrides the paged-KV block size (0 = framework
	// default). DisableKVCache reruns the full context every step.
	KVBlockTokens  int
	DisableKVCache bool
}

// Workload is one benchmark point: Batch sequences of Input prompt
// tokens generating Output tokens each.
type Workload struct {
	Batch  int
	Input  int
	Output int
}

// Result re-exports the engine's per-point metrics.
type Result = engine.Result

// systemConfig resolves a System's catalog names into an engine
// configuration. Catalog getters return canonical pointers, so two
// resolutions of equivalent Systems compare equal — the property the
// engine-layer cache keys on.
func systemConfig(sys System) (engine.Config, error) {
	m, err := model.Get(sys.Model)
	if err != nil {
		return engine.Config{}, err
	}
	d, err := hw.Get(sys.Device)
	if err != nil {
		return engine.Config{}, err
	}
	fw, err := framework.Get(sys.Framework)
	if err != nil {
		return engine.Config{}, err
	}
	plan := parallel.Plan{TP: max1(sys.TP), PP: max1(sys.PP), EP: max1(sys.EP)}
	scheme := quant.FP16
	if sys.Weights != "" {
		w, err := dtype.Parse(sys.Weights)
		if err != nil {
			return engine.Config{}, err
		}
		scheme.Weights = w
	}
	if sys.KV != "" {
		kv, err := dtype.Parse(sys.KV)
		if err != nil {
			return engine.Config{}, err
		}
		scheme.KV = kv
	}
	return engine.Config{
		Model:          m,
		Device:         d,
		Framework:      fw,
		Plan:           plan,
		Scheme:         scheme,
		KVBlockTokens:  sys.KVBlockTokens,
		DisableKVCache: sys.DisableKVCache,
	}, nil
}

// NewEngine builds a private simulator instance for a System (not
// shared through the engine cache; see CachedEngine).
func NewEngine(sys System) (*engine.Engine, error) {
	cfg, err := systemConfig(sys)
	if err != nil {
		return nil, err
	}
	return engine.New(cfg)
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// Run evaluates one benchmark point through the shared engine cache:
// repeated calls for one System reuse its engine.
func Run(sys System, w Workload) (Result, error) {
	eng, err := CachedEngine(sys)
	if err != nil {
		return Result{}, err
	}
	return eng.Run(workload.Spec{Batch: w.Batch, Input: w.Input, Output: w.Output})
}

// Breakdown re-exports the engine's time attribution (see Explain).
type Breakdown = engine.Breakdown

// Explain evaluates one benchmark point and attributes its time to
// mechanisms: compute vs memory walls, weight vs KV streams,
// communication, overheads, setup — the quantities the paper's
// analysis sections reason about.
func Explain(sys System, w Workload) (*Breakdown, error) {
	eng, err := CachedEngine(sys)
	if err != nil {
		return nil, err
	}
	return eng.Explain(workload.Spec{Batch: w.Batch, Input: w.Input, Output: w.Output})
}

// Models lists the model catalog (Table I plus the scatter models).
func Models() []string { return model.Names() }

// Devices lists the accelerator catalog (Table II).
func Devices() []string { return hw.Names() }

// Frameworks lists the framework catalog (Table III plus vendor
// stacks).
func Frameworks() []string { return framework.Names() }

// ExperimentInfo describes one reproducible paper artifact.
type ExperimentInfo struct {
	ID       string
	Title    string
	Workload string
	Modules  []string
}

// Experiments lists every reproduced figure and table in paper order.
func Experiments() []ExperimentInfo {
	all := experiments.All()
	out := make([]ExperimentInfo, len(all))
	for i, e := range all {
		out[i] = ExperimentInfo{ID: e.ID, Title: e.Title, Workload: e.Workload, Modules: e.Modules}
	}
	return out
}

// ExperimentResult is a rendered experiment.
type ExperimentResult struct {
	ID       string
	Markdown string
	CSV      string // empty for tables
}

// RunExperiment regenerates one figure or table by ID (e.g. "fig6",
// "tab2").
func RunExperiment(id string) (*ExperimentResult, error) {
	res, err := RunExperiments([]string{id}, 1)
	if err != nil {
		return nil, err
	}
	return &res[0], nil
}

// RunExperiments regenerates the given figures and tables
// concurrently on at most parallelism workers (values below 1 mean
// GOMAXPROCS). Results come back in the order of ids regardless of
// completion order.
//
// On failure the error belongs to the earliest failing id; results
// for every id before it are still returned, and every entry from
// the failing id on is zero (empty ID) — even where a later
// experiment happened to finish — so the failure path is as
// deterministic as the success path.
func RunExperiments(ids []string, parallelism int) ([]ExperimentResult, error) {
	outs, err := experiments.RunExperiments(ids, parallelism)
	if err != nil {
		err = fmt.Errorf("llmbench: %w", err)
		if outs == nil {
			return nil, err
		}
	}
	res := make([]ExperimentResult, len(outs))
	for i, out := range outs {
		if out == nil {
			// The earliest failure: everything before it is complete
			// (the pool dispatches in index order); everything after
			// is scheduling-dependent, so drop it.
			break
		}
		res[i] = ExperimentResult{ID: ids[i], Markdown: out.Markdown()}
		if out.Figure != nil {
			res[i].CSV = out.Figure.CSV()
		}
	}
	return res, err
}

// Report renders the paper-vs-measured anchor table recorded in
// EXPERIMENTS.md by regenerating the relevant figures, using every
// available core. The table is byte-identical at any parallelism.
func Report() (string, error) {
	return ReportParallel(0)
}

// ReportParallel is Report with an explicit worker bound (`llmbench
// report -j N`); parallelism below 1 means GOMAXPROCS.
func ReportParallel(parallelism int) (string, error) {
	return experiments.ReportMarkdown(parallelism)
}

// Anchor re-exports one paper-vs-measured comparison row.
type Anchor = experiments.AnchorRow

// VerifyAnchors regenerates the anchor figures (concurrently, using
// every available core) and returns each paper claim with its
// measured value and whether the shape holds — the CI check behind
// `llmbench verify`.
func VerifyAnchors() ([]Anchor, error) {
	return experiments.Report(0)
}

// VerifyAnchorsParallel is VerifyAnchors with an explicit worker
// bound (`llmbench verify -j N`); parallelism below 1 means
// GOMAXPROCS.
func VerifyAnchorsParallel(parallelism int) ([]Anchor, error) {
	return experiments.Report(parallelism)
}

// Perplexity evaluates the named model's perplexity on the synthetic
// LongBench-like corpus (the quality axis of Figs. 10/29).
func Perplexity(modelName string) (float64, error) {
	ev, err := perplexity.NewEvaluator()
	if err != nil {
		return 0, err
	}
	return ev.ModelPerplexity(modelName)
}

// ServeConfig parameterises an online-serving simulation.
type ServeConfig struct {
	System     System
	Continuous bool // continuous (Orca-style) vs static batching
	MaxBatch   int
	// KVBudgetGiB is the paged-KV pool size; 0 sizes it from the
	// device's free memory after weights.
	KVBudgetGiB float64

	// Trace, when non-empty, replays a recorded trace (see ReadTrace)
	// instead of synthesizing Poisson arrivals; the synthesis
	// parameters below are ignored.
	Trace []TraceRequest

	// Streaming aggregates completions incrementally: O(1) stats
	// memory at any trace length, P² sketch percentiles (≤ 1% relative
	// error; see internal/sched/stream.go), Stats.Requests nil.
	Streaming bool

	// Trace-synthesis parameters (ignored when Trace is set).
	Seed       uint64
	Requests   int
	RatePerSec float64
	InputMean  int
	OutputMean int
}

// ServeStats re-exports the scheduler's summary.
type ServeStats = sched.Stats

// RequestStats re-exports one request's lifecycle entry
// (ServeStats.Requests).
type RequestStats = sched.RequestStats

// TraceRequest re-exports one arrival of a serving trace: an offset
// in seconds since trace start plus prompt and generation lengths.
type TraceRequest = workload.Request

// TraceMeta re-exports the descriptive header of a trace file.
type TraceMeta = workload.TraceMeta

// WriteTrace records a serving trace in the versioned llmbench-trace
// file format (see TRACES.md): replaying a recorded trace through any
// policy, replica count, and batching configuration is deterministic
// to the bit. The trace is validated before anything is written.
func WriteTrace(w io.Writer, reqs []TraceRequest, meta TraceMeta) error {
	return workload.Record(w, reqs, meta)
}

// ReadTrace replays a trace file written by WriteTrace (or any
// producer of the documented format) back into request order, with
// IDs assigned by row.
func ReadTrace(r io.Reader) ([]TraceRequest, TraceMeta, error) {
	return workload.Replay(r)
}

// validateKVBudget rejects negative, NaN, and infinite KV budgets
// rather than silently falling through to auto-sizing (or, for +Inf,
// overflowing the allocator's block count). Shared by the per-replica
// budget resolution and ServeSweep's up-front grid validation.
func validateKVBudget(budgetGiB float64) error {
	if budgetGiB < 0 || math.IsNaN(budgetGiB) || math.IsInf(budgetGiB, 0) {
		return fmt.Errorf("llmbench: invalid KV budget %v GiB (want a finite value ≥ 0)", budgetGiB)
	}
	return nil
}

// servingKVBudget resolves the paged-KV pool size for one replica:
// the explicit budget when given, otherwise the device's free memory
// after fp16 weights.
func servingKVBudget(sys System, budgetGiB float64) (float64, error) {
	if err := validateKVBudget(budgetGiB); err != nil {
		return 0, err
	}
	if budget := budgetGiB * (1 << 30); budget > 0 {
		return budget, nil
	}
	m, err := model.Get(sys.Model)
	if err != nil {
		return 0, err
	}
	d, err := hw.Get(sys.Device)
	if err != nil {
		return 0, err
	}
	free := d.MemBytes()*0.88 - m.WeightBytes(dtype.FP16)
	if free <= 0 {
		return 0, fmt.Errorf("llmbench: %s does not fit on %s for serving", sys.Model, sys.Device)
	}
	return free, nil
}

// servingAlloc builds one replica's private paged-KV allocator.
func servingAlloc(sys System, budget float64) (kvcache.Allocator, error) {
	m, err := model.Get(sys.Model)
	if err != nil {
		return nil, err
	}
	return kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), budget)
}

// ErrHostLink marks a device whose device↔host link description
// cannot price tier restores: zero, negative, NaN, or infinite
// bandwidth or latency would produce Inf/NaN restore times in the
// admission path. Prefix-share sweep points surface it per point
// (ServeSweepPoint.Err).
var ErrHostLink = errors.New("llmbench: invalid device host link for kv-tier pricing")

// hostLinkFor validates the resolved device's host-link fields and
// builds the restore pricing; the split mirrors transferCostFor so
// the validation is testable against fabricated devices.
func hostLinkFor(devName string, d *hw.Device) (kvcache.HostLink, error) {
	if !(d.HostLinkGBs > 0) || math.IsInf(d.HostLinkGBs, 0) {
		return kvcache.HostLink{}, fmt.Errorf("%w: %s HostLinkGBs %v (want positive and finite)",
			ErrHostLink, devName, d.HostLinkGBs)
	}
	if !(d.HostLinkLatencyUS > 0) || math.IsInf(d.HostLinkLatencyUS, 0) {
		return kvcache.HostLink{}, fmt.Errorf("%w: %s HostLinkLatencyUS %v (want positive and finite)",
			ErrHostLink, devName, d.HostLinkLatencyUS)
	}
	return kvcache.HostLink{
		GBPerS:   d.HostLinkGBs,
		LatencyS: d.HostLinkLatencyUS * 1e-6,
	}, nil
}

// servingPrefixAlloc builds one replica's tiered prefix-sharing
// allocator for shared-prefix serving points: a PrefixPaged device
// pool fronting a host tier sized by hostBudget bytes, with restores
// priced over the device's host link. A prefix shorter than one
// 16-token block shares nothing, so the plain paged allocator is used
// (keeping those points byte-identical to non-prefix runs).
func servingPrefixAlloc(sys System, budget, hostBudget float64, prefixTokens int) (kvcache.Allocator, error) {
	m, err := model.Get(sys.Model)
	if err != nil {
		return nil, err
	}
	if prefixTokens < 16 {
		return kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), budget)
	}
	d, err := hw.Get(sys.Device)
	if err != nil {
		return nil, err
	}
	link, err := hostLinkFor(sys.Device, d)
	if err != nil {
		return nil, err
	}
	gpu, err := kvcache.NewPrefixPaged(16, prefixTokens, m.KVBytesPerToken(dtype.FP16), budget)
	if err != nil {
		return nil, err
	}
	return kvcache.NewTiered(gpu, hostBudget, link)
}

// ErrInterconnect marks a device whose interconnect description
// cannot price kv-transfers: zero, negative, NaN, or infinite
// bandwidth or latency would produce Inf/NaN transfer times that
// sail past Knees' SLO check as "fast" points. Disaggregated sweep
// points surface it per point (ServeSweepPoint.Err).
var ErrInterconnect = errors.New("llmbench: invalid device interconnect for kv-transfer pricing")

// transferCost prices the prefill→decode KV hand-off for a system:
// the prompt's KV in whole paged blocks (the serving allocator's
// 16-token blocks at fp16) over the device's peer interconnect.
func transferCost(sys System) (des.TransferCost, error) {
	m, err := model.Get(sys.Model)
	if err != nil {
		return des.TransferCost{}, err
	}
	d, err := hw.Get(sys.Device)
	if err != nil {
		return des.TransferCost{}, err
	}
	return transferCostFor(sys.Device, m, d)
}

// transferCostFor validates the resolved device's interconnect fields
// and builds the pricing; split from transferCost so the validation is
// testable against fabricated device descriptions.
func transferCostFor(devName string, m *model.Config, d *hw.Device) (des.TransferCost, error) {
	if !(d.InterconnectGBs > 0) || math.IsInf(d.InterconnectGBs, 0) {
		return des.TransferCost{}, fmt.Errorf("%w: %s InterconnectGBs %v (want positive and finite)",
			ErrInterconnect, devName, d.InterconnectGBs)
	}
	if !(d.InterconnectLatencyUS > 0) || math.IsInf(d.InterconnectLatencyUS, 0) {
		return des.TransferCost{}, fmt.Errorf("%w: %s InterconnectLatencyUS %v (want positive and finite)",
			ErrInterconnect, devName, d.InterconnectLatencyUS)
	}
	return des.TransferCost{
		BlockTokens:   16,
		BytesPerToken: m.KVBytesPerToken(dtype.FP16),
		GBPerS:        d.InterconnectGBs,
		LatencyS:      d.InterconnectLatencyUS * 1e-6,
	}, nil
}

// Serve runs an online-serving simulation with Poisson arrivals.
func Serve(cfg ServeConfig) (ServeStats, error) {
	eng, err := CachedEngine(cfg.System)
	if err != nil {
		return ServeStats{}, err
	}
	budget, err := servingKVBudget(cfg.System, cfg.KVBudgetGiB)
	if err != nil {
		return ServeStats{}, err
	}
	alloc, err := servingAlloc(cfg.System, budget)
	if err != nil {
		return ServeStats{}, err
	}
	trace := cfg.Trace
	if len(trace) == 0 {
		trace, err = workload.PoissonTrace(workload.TraceConfig{
			Seed: cfg.Seed, Requests: cfg.Requests, RatePerSec: cfg.RatePerSec,
			InputMean: cfg.InputMean, OutputMean: cfg.OutputMean, LengthJitter: 0.3,
		})
		if err != nil {
			return ServeStats{}, err
		}
	} else if err := workload.ValidateTrace(trace); err != nil {
		return ServeStats{}, fmt.Errorf("llmbench: %w", err)
	}
	policy := sched.Static
	if cfg.Continuous {
		policy = sched.Continuous
	}
	return sched.Serve(sched.Config{
		Engine: eng, Policy: policy, MaxBatch: cfg.MaxBatch, Alloc: alloc,
		Streaming: cfg.Streaming,
	}, trace)
}

// ClusterConfig parameterises a multi-replica serving simulation: N
// identical replicas of a System behind a request router.
type ClusterConfig struct {
	System      System
	Replicas    int
	LeastLoaded bool // join-the-shortest-queue routing (default round-robin)
	// Static runs every replica with pre-Orca static batching
	// (collect a batch, run it to completion, repeat) instead of
	// continuous batching; the router is unchanged.
	Static      bool
	MaxBatch    int // per replica
	KVBudgetGiB float64

	// Parallelism ≥ 2 advances replicas on that many goroutines
	// between arrival barriers (see internal/des); Stats are
	// byte-identical at any setting. Values ≤ 1 run serially.
	Parallelism int

	// Trace, when non-empty, replays a recorded trace (see ReadTrace)
	// instead of synthesizing Poisson arrivals; the synthesis
	// parameters below are ignored.
	Trace []TraceRequest

	// Streaming aggregates completions incrementally: O(1) stats
	// memory at any trace length, P² sketch percentiles (≤ 1% relative
	// error; see internal/sched/stream.go), Stats.Requests nil.
	Streaming bool

	Seed       uint64
	Requests   int
	RatePerSec float64
	InputMean  int
	OutputMean int
}

// ClusterStats re-exports the cluster summary.
type ClusterStats = cluster.Stats

// ServeCluster simulates a deployment of identical replicas behind a
// router (see internal/cluster). All replicas share one cached engine
// (engines are immutable and concurrency-safe) while each owns a
// private KV allocator.
func ServeCluster(cfg ClusterConfig) (ClusterStats, error) {
	if cfg.Replicas < 1 {
		return ClusterStats{}, fmt.Errorf("llmbench: need at least one replica")
	}
	eng, err := CachedEngine(cfg.System)
	if err != nil {
		return ClusterStats{}, err
	}
	budget, err := servingKVBudget(cfg.System, cfg.KVBudgetGiB)
	if err != nil {
		return ClusterStats{}, err
	}
	replicas := make([]cluster.Replica, cfg.Replicas)
	for i := range replicas {
		alloc, err := servingAlloc(cfg.System, budget)
		if err != nil {
			return ClusterStats{}, err
		}
		replicas[i] = cluster.Replica{Engine: eng, Alloc: alloc}
	}
	trace := cfg.Trace
	if len(trace) == 0 {
		trace, err = workload.PoissonTrace(workload.TraceConfig{
			Seed: cfg.Seed, Requests: cfg.Requests, RatePerSec: cfg.RatePerSec,
			InputMean: cfg.InputMean, OutputMean: cfg.OutputMean, LengthJitter: 0.3,
		})
		if err != nil {
			return ClusterStats{}, err
		}
	} else if err := workload.ValidateTrace(trace); err != nil {
		return ClusterStats{}, fmt.Errorf("llmbench: %w", err)
	}
	policy := cluster.RoundRobin
	if cfg.LeastLoaded {
		policy = cluster.LeastLoaded
	}
	return cluster.Serve(cluster.Config{
		Replicas: replicas, Policy: policy, MaxBatch: cfg.MaxBatch,
		Static: cfg.Static, Parallelism: cfg.Parallelism, Streaming: cfg.Streaming,
	}, trace)
}

// AutoscaleConfig parameterises a dynamic-capacity serving
// simulation: replicas of a System are added under queue pressure and
// retired when idle, between MinReplicas and MaxReplicas.
type AutoscaleConfig struct {
	System      System
	MaxBatch    int // per replica
	KVBudgetGiB float64

	// Static runs every replica with pre-Orca static batching; the
	// scale-tick policy is unchanged.
	Static bool

	// MinReplicas..MaxReplicas bound the capacity; UpOutstanding,
	// DownIdleS, and CooldownS tune the policy (see
	// cluster.Autoscale).
	MinReplicas   int
	MaxReplicas   int
	UpOutstanding int
	DownIdleS     float64
	CooldownS     float64

	// Parallelism ≥ 2 advances replicas on goroutines between
	// arrival barriers; Stats are byte-identical at any setting.
	Parallelism int

	// Trace, when non-empty, replays a recorded trace (see ReadTrace)
	// instead of synthesizing arrivals; the synthesis parameters below
	// are ignored.
	Trace []TraceRequest

	// Streaming aggregates completions incrementally: O(1) stats
	// memory at any trace length, P² sketch percentiles (≤ 1% relative
	// error; see internal/sched/stream.go), Stats.Requests nil.
	Streaming bool

	// Trace-synthesis parameters (ignored when Trace is set).
	// BurstFactor > 0 uses a bursty chat trace (workload.ChatTrace) —
	// the load shape autoscaling exists for — otherwise arrivals are
	// Poisson.
	Seed        uint64
	Requests    int
	RatePerSec  float64
	InputMean   int
	OutputMean  int
	BurstFactor float64
	BurstLenS   float64
}

// AutoscaleStats re-exports the autoscaler's summary (cluster stats
// plus the scaling trajectory).
type AutoscaleStats = cluster.AutoStats

// ServeAutoscale simulates a deployment with dynamic replica capacity
// (see internal/cluster): the fleet starts at MinReplicas and the
// scale-tick policy grows or shrinks it as load changes.
func ServeAutoscale(cfg AutoscaleConfig) (AutoscaleStats, error) {
	eng, err := CachedEngine(cfg.System)
	if err != nil {
		return AutoscaleStats{}, err
	}
	budget, err := servingKVBudget(cfg.System, cfg.KVBudgetGiB)
	if err != nil {
		return AutoscaleStats{}, err
	}
	factory := func() (cluster.Replica, error) {
		alloc, err := servingAlloc(cfg.System, budget)
		if err != nil {
			return cluster.Replica{}, err
		}
		return cluster.Replica{Engine: eng, Alloc: alloc}, nil
	}
	trace := cfg.Trace
	if len(trace) == 0 {
		if cfg.BurstFactor > 0 {
			trace, err = workload.ChatTrace(workload.ChatTraceConfig{
				Seed: cfg.Seed, Requests: cfg.Requests, RatePerSec: cfg.RatePerSec,
				BurstFactor: cfg.BurstFactor, BurstLenS: cfg.BurstLenS,
				InputMedian: cfg.InputMean, OutputMedian: cfg.OutputMean,
				Sigma: 0.7, MaxLen: 4096,
			})
		} else {
			trace, err = workload.PoissonTrace(workload.TraceConfig{
				Seed: cfg.Seed, Requests: cfg.Requests, RatePerSec: cfg.RatePerSec,
				InputMean: cfg.InputMean, OutputMean: cfg.OutputMean, LengthJitter: 0.3,
			})
		}
		if err != nil {
			return AutoscaleStats{}, err
		}
	} else if err := workload.ValidateTrace(trace); err != nil {
		return AutoscaleStats{}, fmt.Errorf("llmbench: %w", err)
	}
	return cluster.ServeAutoscale(
		cluster.Config{MaxBatch: cfg.MaxBatch, Static: cfg.Static,
			Parallelism: cfg.Parallelism, Streaming: cfg.Streaming},
		cluster.Autoscale{
			Factory:       factory,
			Min:           cfg.MinReplicas,
			Max:           cfg.MaxReplicas,
			UpOutstanding: cfg.UpOutstanding,
			DownIdleS:     cfg.DownIdleS,
			CooldownS:     cfg.CooldownS,
		}, trace)
}

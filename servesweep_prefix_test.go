package llmbench

// Shared-prefix sweep tests: the ServePolicy grammar's prefix token,
// the host-link and Sigma validation paths, the PrefixShares axis
// plumbing (hit-rate column, per-share knee keying), and the
// tentpole's acceptance demonstration — on a templated shared-prefix
// workload, prefix-affinity routing sustains a higher SLO-compliant
// knee rate than both blind routers at equal fleet size.

import (
	"errors"
	"math"
	"strings"
	"testing"

	"llmbench/internal/hw"
)

func TestServePolicyPrefixRoundTrip(t *testing.T) {
	cases := map[string]ServePolicy{
		"prefix":            {Prefix: true},
		"continuous/prefix": {Prefix: true},
		"static:prefix":     {Static: true, Prefix: true},
		"prefix/disagg/1:3": {Prefix: true, PrefillPool: 1, DecodePool: 3},
		"ll/prefix":         {Prefix: true}, // later token overrides
		"prefix/ll":         {LeastLoaded: true},
		"prefix/rr":         {},
	}
	for s, want := range cases {
		got, err := ParseServePolicy(s)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("%q parsed to %+v, want %+v", s, got, want)
		}
	}
	for _, p := range []ServePolicy{
		{Prefix: true},
		{Prefix: true, Static: true},
		{Prefix: true, PrefillPool: 1, DecodePool: 3},
	} {
		back, err := ParseServePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round-trip %+v → %q → %+v (%v)", p, p.String(), back, err)
		}
	}
	if s := (ServePolicy{Prefix: true}).String(); s != "continuous/prefix" {
		t.Errorf("String = %q, want continuous/prefix", s)
	}
}

// TestServeSweepPrefixPolicyValidation: a programmatically built
// Prefix+LeastLoaded policy must fail the sweep exactly like the
// parser rejects it.
func TestServeSweepPrefixPolicyValidation(t *testing.T) {
	_, err := ServeSweep(serveSweepCfg, ServeGrid{
		Rates:    []float64{4},
		Policies: []ServePolicy{{Prefix: true, LeastLoaded: true}},
	})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("Prefix+LeastLoaded must fail the sweep, got %v", err)
	}
}

func TestServeSweepSigmaAndHostKVValidation(t *testing.T) {
	cfg := serveSweepCfg
	cfg.Sigma = -0.1
	if _, err := ServeSweep(cfg, ServeGrid{Rates: []float64{4}}); err == nil {
		t.Error("negative Sigma must fail")
	}
	cfg = serveSweepCfg
	cfg.HostKVGiB = -1
	if _, err := ServeSweep(cfg, ServeGrid{Rates: []float64{4}}); err == nil {
		t.Error("negative HostKVGiB must fail")
	}
}

// TestHostLinkForValidation mirrors the interconnect validation: a
// device whose host-link description cannot price restores fails with
// ErrHostLink, named per field.
func TestHostLinkForValidation(t *testing.T) {
	good := *hw.MustGet("A100")
	if link, err := hostLinkFor("A100", &good); err != nil {
		t.Fatal(err)
	} else if link.GBPerS != good.HostLinkGBs || link.LatencyS != good.HostLinkLatencyUS*1e-6 {
		t.Errorf("link %+v does not match the catalog host link", link)
	}
	for name, mutate := range map[string]func(*hw.Device){
		"zero bandwidth":     func(d *hw.Device) { d.HostLinkGBs = 0 },
		"negative bandwidth": func(d *hw.Device) { d.HostLinkGBs = -32 },
		"NaN bandwidth":      func(d *hw.Device) { d.HostLinkGBs = math.NaN() },
		"Inf bandwidth":      func(d *hw.Device) { d.HostLinkGBs = math.Inf(1) },
		"zero latency":       func(d *hw.Device) { d.HostLinkLatencyUS = 0 },
		"NaN latency":        func(d *hw.Device) { d.HostLinkLatencyUS = math.NaN() },
		"Inf latency":        func(d *hw.Device) { d.HostLinkLatencyUS = math.Inf(1) },
	} {
		d := good
		mutate(&d)
		if _, err := hostLinkFor("fake", &d); !errors.Is(err, ErrHostLink) {
			t.Errorf("%s: got %v, want ErrHostLink", name, err)
		}
	}
}

// TestHostLinkCatalog: every catalogued device must carry a usable
// host link, so the PrefixShares axis works on all of them.
func TestHostLinkCatalog(t *testing.T) {
	for _, name := range hw.Names() {
		if _, err := hostLinkFor(name, hw.MustGet(name)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestServeSweepPrefixShareAxis pins the axis plumbing: PrefixShare is
// recorded per point, shared-prefix points populate the hit-rate
// column, and Knees keys per (policy, share) so ladders fold apart.
func TestServeSweepPrefixShareAxis(t *testing.T) {
	cfg := serveSweepCfg
	cfg.Requests = 48
	pts, err := ServeSweep(cfg, ServeGrid{
		Rates:        []float64{6},
		Replicas:     []int{2},
		Policies:     []ServePolicy{{}, {Prefix: true}},
		PrefixShares: []float64{0, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if p.Err != nil {
			t.Fatalf("point %d: %v", i, p.Err)
		}
		wantShare := []float64{0, 0.5}[i%2]
		if p.PrefixShare != wantShare {
			t.Errorf("point %d share = %v, want %v", i, p.PrefixShare, wantShare)
		}
		if wantShare == 0 && p.Stats.CacheHitRate != 0 {
			t.Errorf("point %d: shareless trace cannot hit (rate %v)", i, p.Stats.CacheHitRate)
		}
		if wantShare > 0 && p.Stats.CacheHitRate <= 0 {
			t.Errorf("point %d: shared-prefix point must populate the hit-rate column", i)
		}
	}
	knees, err := Knees(pts, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(knees) != 4 {
		t.Fatalf("got %d knees, want 4 (per policy × share)", len(knees))
	}
	for i, k := range knees {
		if k.PrefixShare != []float64{0, 0.5}[i%2] {
			t.Errorf("knee %d share = %v", i, k.PrefixShare)
		}
	}
}

// TestPrefixKneeBeatsBlindRouting is the tentpole's acceptance run: a
// templated shared-prefix workload (98% of the prompt is one system
// prefix, tight σ=0.1 tails, chunked prefill, host tier too small to
// rescue drained replicas) swept over a 16-replica fleet. The prefix
// router must sustain the SLO at a strictly higher rate than both
// round-robin and least-loaded, with the hit-rate column populated at
// near-ceiling for prefix and visibly lower for the blind routers.
func TestPrefixKneeBeatsBlindRouting(t *testing.T) {
	cfg := ServeSweepConfig{
		System:         System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		MaxBatch:       32,
		Seed:           42,
		Requests:       1600,
		InputMean:      512,
		OutputMean:     128,
		HostKVGiB:      0.05,
		ChunkedPrefill: true,
		Sigma:          0.1,
	}
	grid := ServeGrid{
		Rates:        []float64{28, 36, 44},
		Replicas:     []int{16},
		Policies:     []ServePolicy{{}, {LeastLoaded: true}, {Prefix: true}},
		PrefixShares: []float64{0.98},
		LengthMixes:  []LengthMix{{Input: 8192, Output: 32}},
	}
	pts, err := ServeSweep(cfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	knees, err := Knees(pts, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(knees) != 3 {
		t.Fatalf("got %d knees, want one per policy", len(knees))
	}
	byPolicy := map[string]KneePoint{}
	for _, k := range knees {
		byPolicy[k.Policy.String()] = k
	}
	px, rr, ll := byPolicy["continuous/prefix"], byPolicy["continuous/rr"], byPolicy["continuous/ll"]

	if !px.Met {
		t.Fatal("prefix routing must meet the SLO at some swept rate")
	}
	if px.Rate != 44 {
		t.Errorf("prefix knee %v req/s, want the top swept rate 44", px.Rate)
	}
	kneeRate := func(k KneePoint) float64 {
		if !k.Met {
			return 0
		}
		return k.Rate
	}
	if kneeRate(px) <= kneeRate(rr) {
		t.Errorf("prefix knee %v req/s must beat round-robin's %v", px.Rate, kneeRate(rr))
	}
	if kneeRate(px) <= kneeRate(ll) {
		t.Errorf("prefix knee %v req/s must beat least-loaded's %v", px.Rate, kneeRate(ll))
	}
	if px.Stats.CacheHitRate < 0.9 {
		t.Errorf("prefix hit rate %.3f at the knee, want ≥ 0.9", px.Stats.CacheHitRate)
	}
	// The blind routers' hit rates stay well below the prefix
	// router's even where they meet the SLO: the knee gap is cache
	// locality, not noise.
	for name, k := range map[string]KneePoint{"rr": rr, "ll": ll} {
		if k.Met && k.Stats.CacheHitRate >= px.Stats.CacheHitRate {
			t.Errorf("%s hit rate %.3f must trail prefix's %.3f", name, k.Stats.CacheHitRate, px.Stats.CacheHitRate)
		}
	}
}

package llmbench

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

var serveSweepCfg = ServeSweepConfig{
	System:   System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
	MaxBatch: 8,
	Seed:     7, Requests: 24, InputMean: 256, OutputMean: 64,
}

// TestServeSweepGridOrderAndValues pins the axis nesting (Policies ▸
// Replicas ▸ MaxBatches ▸ Rates) and that a continuous fixed-fleet
// point is byte-identical to a direct ServeCluster run of the same
// configuration and trace.
func TestServeSweepGridOrderAndValues(t *testing.T) {
	grid := ServeGrid{
		Rates:    []float64{4, 8},
		Replicas: []int{1, 2},
		Policies: []ServePolicy{{}, {LeastLoaded: true}},
	}
	pts, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*2*2 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	i := 0
	for _, pol := range grid.Policies {
		for _, reps := range grid.Replicas {
			for _, rate := range grid.Rates {
				p := pts[i]
				if p.Policy != pol || p.Replicas != reps || p.Rate != rate || p.MaxBatch != 8 {
					t.Errorf("point %d = %v/%d×%d@%g, want %v/%d×8@%g",
						i, p.Policy, p.Replicas, p.MaxBatch, p.Rate, pol, reps, rate)
				}
				if p.Err != nil {
					t.Errorf("point %d failed: %v", i, p.Err)
				}
				if p.Stats.Completed != serveSweepCfg.Requests {
					t.Errorf("point %d completed %d/%d", i, p.Stats.Completed, serveSweepCfg.Requests)
				}
				if len(p.PerReplica) != reps {
					t.Errorf("point %d has %d per-replica entries, want %d", i, len(p.PerReplica), reps)
				}
				i++
			}
		}
	}

	// The first rate's trace seed equals the base seed, so the
	// least-loaded 2-replica point must match ServeCluster exactly.
	direct, err := ServeCluster(ClusterConfig{
		System: serveSweepCfg.System, Replicas: 2, LeastLoaded: true, MaxBatch: 8,
		Seed: serveSweepCfg.Seed, Requests: serveSweepCfg.Requests, RatePerSec: grid.Rates[0],
		InputMean: serveSweepCfg.InputMean, OutputMean: serveSweepCfg.OutputMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[6] // policy {LeastLoaded}, replicas 2, rate 4
	if !reflect.DeepEqual(p.Stats, direct.Stats) || !reflect.DeepEqual(p.PerReplica, direct.PerReplica) {
		t.Error("sweep point differs from direct ServeCluster of the same configuration")
	}
}

// TestServeSweepDeterministicAcrossParallelism is the serving
// analogue of the Sweep determinism property: the full result slice —
// every percentile, per-replica share, and autoscale trajectory — is
// byte-identical at Parallelism 1 and 8 (run under -race in CI).
func TestServeSweepDeterministicAcrossParallelism(t *testing.T) {
	grid := ServeGrid{
		Rates:      []float64{3, 6},
		Replicas:   []int{1, 2},
		MaxBatches: []int{4, 8},
		Policies:   []ServePolicy{{}, {LeastLoaded: true}, {Autoscale: true}},
	}
	grid.Parallelism = 1
	serial, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	grid.Parallelism = 8
	parallel, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("point %d differs between parallelism 1 and 8", i)
		}
	}
}

// TestServeSweepSameRateSharesTrace: points at one rate see one
// arrival process, so the policy axis compares like for like — the
// request count and arrival-dependent queue stats line up across
// replica counts without the trace changing under them.
func TestServeSweepSameRateSharesTrace(t *testing.T) {
	pts, err := ServeSweep(serveSweepCfg, ServeGrid{
		Rates: []float64{5}, Replicas: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := pts[0].Stats.Requests, pts[1].Stats.Requests
	if len(a) != len(b) {
		t.Fatalf("request ledgers differ in length: %d vs %d", len(a), len(b))
	}
	arrivals := func(rs []RequestStats) map[int]float64 {
		m := make(map[int]float64, len(rs))
		for _, r := range rs {
			m[r.ID] = r.Arrival
		}
		return m
	}
	if !reflect.DeepEqual(arrivals(a), arrivals(b)) {
		t.Error("same-rate points must share one arrival trace")
	}
}

// TestServeSweepPerPointErrors: a static-batching point with more
// than one replica and a combination that cannot build both fail
// individually while the rest of the sweep proceeds.
func TestServeSweepPerPointErrors(t *testing.T) {
	pts, err := ServeSweep(serveSweepCfg, ServeGrid{
		Rates:    []float64{4},
		Replicas: []int{1, 2},
		Policies: []ServePolicy{{Static: true}, {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Err != nil {
		t.Errorf("static @ 1 replica must work: %v", pts[0].Err)
	}
	if pts[1].Err == nil || !strings.Contains(pts[1].Err.Error(), "single-device") {
		t.Errorf("static @ 2 replicas must fail per point, got %v", pts[1].Err)
	}
	for i := 2; i < 4; i++ {
		if pts[i].Err != nil {
			t.Errorf("continuous point %d failed: %v", i, pts[i].Err)
		}
	}

	// FP8 weights cannot build on A100: that combination's points
	// carry the build error, the fp16 combination survives.
	pts, err = ServeSweep(serveSweepCfg, ServeGrid{
		Rates:   []float64{4},
		Schemes: []Scheme{{"fp8", "fp8"}, {"fp16", "fp16"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Err == nil {
		t.Error("fp8 combination on A100 must fail per point")
	}
	if pts[1].Err != nil {
		t.Errorf("fp16 combination must survive: %v", pts[1].Err)
	}
}

// TestServeSweepAutoscalePoint: autoscale points report the scaling
// high-water mark and stay within the point's replica ceiling.
func TestServeSweepAutoscalePoint(t *testing.T) {
	cfg := serveSweepCfg
	cfg.Requests = 60
	pts, err := ServeSweep(cfg, ServeGrid{
		Rates:    []float64{12},
		Replicas: []int{3},
		Policies: []ServePolicy{{Autoscale: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if p.PeakReplicas < 1 || p.PeakReplicas > 3 {
		t.Errorf("peak replicas %d outside [1, 3]", p.PeakReplicas)
	}
	if p.Stats.Completed != cfg.Requests {
		t.Errorf("completed %d/%d", p.Stats.Completed, cfg.Requests)
	}
}

func TestServeSweepValidation(t *testing.T) {
	base := serveSweepCfg
	cases := []struct {
		name string
		cfg  ServeSweepConfig
		grid ServeGrid
		want string
	}{
		{"no rates", base, ServeGrid{}, "no rates"},
		{"zero rate", base, ServeGrid{Rates: []float64{0}}, "positive"},
		{"negative rate", base, ServeGrid{Rates: []float64{-2}}, "positive"},
		{"NaN rate", base, ServeGrid{Rates: []float64{math.NaN()}}, "positive"},
		{"Inf rate", base, ServeGrid{Rates: []float64{math.Inf(1)}}, "positive"},
		{"zero replicas", base, ServeGrid{Rates: []float64{1}, Replicas: []int{0}}, "≥ 1"},
		{"zero max batch", base, ServeGrid{Rates: []float64{1}, MaxBatches: []int{0}}, "≥ 1"},
		{"static autoscale", base, ServeGrid{
			Rates: []float64{1}, Policies: []ServePolicy{{Static: true, Autoscale: true}},
		}, "static"},
	}
	for _, c := range cases {
		if _, err := ServeSweep(c.cfg, c.grid); err == nil {
			t.Errorf("%s: want error", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
	}

	noBatch := base
	noBatch.MaxBatch = 0
	if _, err := ServeSweep(noBatch, ServeGrid{Rates: []float64{1}}); err == nil {
		t.Error("unset MaxBatch with no MaxBatches axis must fail")
	}
	for _, budget := range []float64{-4, math.NaN(), math.Inf(1)} {
		badBudget := base
		badBudget.KVBudgetGiB = budget
		if _, err := ServeSweep(badBudget, ServeGrid{Rates: []float64{1}}); err == nil ||
			!strings.Contains(err.Error(), "invalid KV budget") {
			t.Errorf("KV budget %v must be rejected, got %v", budget, err)
		}
	}
	badTrace := base
	badTrace.Requests = 0
	if _, err := ServeSweep(badTrace, ServeGrid{Rates: []float64{1}}); err == nil {
		t.Error("zero-request trace shape must fail up front")
	}
}

// TestServeSweepAllCombosFailJoined: when every configuration
// combination fails to build, the call fails with all distinct causes
// joined — not just the first.
func TestServeSweepAllCombosFailJoined(t *testing.T) {
	_, err := ServeSweep(serveSweepCfg, ServeGrid{
		Rates:   []float64{4},
		Devices: []string{"A100", "NoSuchDevice"},
		Schemes: []Scheme{{"fp8", "fp8"}},
	})
	if err == nil {
		t.Fatal("all-failing combinations must fail the call")
	}
	msg := err.Error()
	if !strings.Contains(msg, "fp8") || !strings.Contains(msg, "NoSuchDevice") {
		t.Errorf("joined error must name every distinct cause, got: %v", msg)
	}
}

func TestKnees(t *testing.T) {
	mk := func(reps int, rate, p99 float64, err error) ServeSweepPoint {
		return ServeSweepPoint{
			Device: "A100", Framework: "vLLM", Replicas: reps, MaxBatch: 8, Rate: rate,
			Stats: ServeStats{P99Latency: p99}, Err: err,
		}
	}
	pts := []ServeSweepPoint{
		mk(1, 5, 1.0, nil), mk(1, 10, 4.0, nil), mk(1, 20, 9.0, nil),
		mk(2, 5, 0.5, nil), mk(2, 10, 1.5, nil), mk(2, 20, 2.5, nil),
		mk(4, 5, 0, errBoom), mk(4, 10, 0, errBoom),
	}
	knees := Knees(pts, 6.0)
	if len(knees) != 3 {
		t.Fatalf("got %d knees, want 3", len(knees))
	}
	if !knees[0].Met || knees[0].Rate != 10 {
		t.Errorf("1 replica: knee %+v, want rate 10", knees[0])
	}
	if !knees[1].Met || knees[1].Rate != 20 {
		t.Errorf("2 replicas: knee %+v, want rate 20", knees[1])
	}
	if knees[2].Met {
		t.Errorf("4 replicas (all errored): knee %+v, want unmet", knees[2])
	}
	if knees[0].Replicas != 1 || knees[1].Replicas != 2 || knees[2].Replicas != 4 {
		t.Error("knees must preserve grid order of configurations")
	}
}

var errBoom = errString("boom")

type errString string

func (e errString) Error() string { return string(e) }

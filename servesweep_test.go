package llmbench

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

var serveSweepCfg = ServeSweepConfig{
	System:   System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
	MaxBatch: 8,
	Seed:     7, Requests: 24, InputMean: 256, OutputMean: 64,
}

// TestServeSweepGridOrderAndValues pins the axis nesting (Policies ▸
// Replicas ▸ MaxBatches ▸ Rates) and that a continuous fixed-fleet
// point is byte-identical to a direct ServeCluster run of the same
// configuration and trace.
func TestServeSweepGridOrderAndValues(t *testing.T) {
	grid := ServeGrid{
		Rates:    []float64{4, 8},
		Replicas: []int{1, 2},
		Policies: []ServePolicy{{}, {LeastLoaded: true}},
	}
	pts, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*2*2 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	i := 0
	for _, pol := range grid.Policies {
		for _, reps := range grid.Replicas {
			for _, rate := range grid.Rates {
				p := pts[i]
				if p.Policy != pol || p.Replicas != reps || p.Rate != rate || p.MaxBatch != 8 {
					t.Errorf("point %d = %v/%d×%d@%g, want %v/%d×8@%g",
						i, p.Policy, p.Replicas, p.MaxBatch, p.Rate, pol, reps, rate)
				}
				if p.Err != nil {
					t.Errorf("point %d failed: %v", i, p.Err)
				}
				if p.Stats.Completed != serveSweepCfg.Requests {
					t.Errorf("point %d completed %d/%d", i, p.Stats.Completed, serveSweepCfg.Requests)
				}
				if len(p.PerReplica) != reps {
					t.Errorf("point %d has %d per-replica entries, want %d", i, len(p.PerReplica), reps)
				}
				i++
			}
		}
	}

	// The first rate's trace seed equals the base seed, so the
	// least-loaded 2-replica point must match ServeCluster exactly.
	direct, err := ServeCluster(ClusterConfig{
		System: serveSweepCfg.System, Replicas: 2, LeastLoaded: true, MaxBatch: 8,
		Seed: serveSweepCfg.Seed, Requests: serveSweepCfg.Requests, RatePerSec: grid.Rates[0],
		InputMean: serveSweepCfg.InputMean, OutputMean: serveSweepCfg.OutputMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[6] // policy {LeastLoaded}, replicas 2, rate 4
	if !reflect.DeepEqual(p.Stats, direct.Stats) || !reflect.DeepEqual(p.PerReplica, direct.PerReplica) {
		t.Error("sweep point differs from direct ServeCluster of the same configuration")
	}
}

// TestServeSweepDeterministicAcrossParallelism is the serving
// analogue of the Sweep determinism property: the full result slice —
// every percentile, per-replica share, and autoscale trajectory — is
// byte-identical at Parallelism 1 and 8 (run under -race in CI).
func TestServeSweepDeterministicAcrossParallelism(t *testing.T) {
	grid := ServeGrid{
		Rates:      []float64{3, 6},
		Replicas:   []int{1, 2},
		MaxBatches: []int{4, 8},
		Policies:   []ServePolicy{{}, {LeastLoaded: true}, {Autoscale: true}, {Static: true}},
	}
	grid.Parallelism = 1
	serial, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	grid.Parallelism = 8
	parallel, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("point %d differs between parallelism 1 and 8", i)
		}
	}
}

// TestServeSweepSameRateSharesTrace: points at one rate see one
// arrival process, so the policy axis compares like for like — the
// request count and arrival-dependent queue stats line up across
// replica counts without the trace changing under them.
func TestServeSweepSameRateSharesTrace(t *testing.T) {
	pts, err := ServeSweep(serveSweepCfg, ServeGrid{
		Rates: []float64{5}, Replicas: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := pts[0].Stats.Requests, pts[1].Stats.Requests
	if len(a) != len(b) {
		t.Fatalf("request ledgers differ in length: %d vs %d", len(a), len(b))
	}
	arrivals := func(rs []RequestStats) map[int]float64 {
		m := make(map[int]float64, len(rs))
		for _, r := range rs {
			m[r.ID] = r.Arrival
		}
		return m
	}
	if !reflect.DeepEqual(arrivals(a), arrivals(b)) {
		t.Error("same-rate points must share one arrival trace")
	}
}

// TestServeSweepPerPointErrors: a combination that cannot build and a
// length mix ChatTrace rejects both fail individually while the rest
// of the sweep proceeds. (Static points no longer fail at Replicas >
// 1 — static batching rides the cluster kernel; see
// TestServeSweepStaticCluster.)
func TestServeSweepPerPointErrors(t *testing.T) {
	// FP8 weights cannot build on A100: that combination's points
	// carry the build error, the fp16 combination survives.
	pts, err := ServeSweep(serveSweepCfg, ServeGrid{
		Rates:   []float64{4},
		Schemes: []Scheme{{"fp8", "fp8"}, {"fp16", "fp16"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Err == nil {
		t.Error("fp8 combination on A100 must fail per point")
	}
	if pts[1].Err != nil {
		t.Errorf("fp16 combination must survive: %v", pts[1].Err)
	}

	// A length mix under ChatTrace's median floor (16) passes grid
	// validation but fails its own points with the generator's error;
	// the valid mix's points survive.
	pts, err = ServeSweep(serveSweepCfg, ServeGrid{
		Rates:       []float64{4},
		LengthMixes: []LengthMix{{Input: 8, Output: 64}, {Input: 256, Output: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].Err == nil || !strings.Contains(pts[0].Err.Error(), "medians") {
		t.Errorf("sub-floor mix must fail per point with ChatTrace's error, got %v", pts[0].Err)
	}
	if pts[1].Err != nil {
		t.Errorf("valid mix must survive: %v", pts[1].Err)
	}
}

// TestServeSweepStaticCluster: the Policies × Replicas grid has no
// static hole left — multi-replica static points succeed, match a
// direct static ServeCluster run byte for byte, and never preempt.
func TestServeSweepStaticCluster(t *testing.T) {
	grid := ServeGrid{
		Rates:    []float64{6},
		Replicas: []int{1, 2, 4},
		Policies: []ServePolicy{{Static: true}, {Static: true, LeastLoaded: true}},
	}
	pts, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if p.Err != nil {
			t.Errorf("static point %d (%d replicas) failed: %v", i, p.Replicas, p.Err)
			continue
		}
		if p.Stats.Completed != serveSweepCfg.Requests {
			t.Errorf("static point %d completed %d/%d", i, p.Stats.Completed, serveSweepCfg.Requests)
		}
		if p.Stats.Preemptions != 0 {
			t.Errorf("static point %d preempted %d times", i, p.Stats.Preemptions)
		}
		if len(p.PerReplica) != p.Replicas {
			t.Errorf("static point %d has %d per-replica entries, want %d", i, len(p.PerReplica), p.Replicas)
		}
	}
	direct, err := ServeCluster(ClusterConfig{
		System: serveSweepCfg.System, Replicas: 2, Static: true, MaxBatch: 8,
		Seed: serveSweepCfg.Seed, Requests: serveSweepCfg.Requests, RatePerSec: 6,
		InputMean: serveSweepCfg.InputMean, OutputMean: serveSweepCfg.OutputMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[1] // policy {Static}, replicas 2
	if !reflect.DeepEqual(p.Stats, direct.Stats) || !reflect.DeepEqual(p.PerReplica, direct.PerReplica) {
		t.Error("static sweep point differs from direct static ServeCluster of the same configuration")
	}
}

// TestServeSweepPolicyReplicasBurstCube is the acceptance grid of the
// static-on-DES port: {Static, Continuous} × Replicas{1,2,8} ×
// BurstFactors{1,4} returns zero per-point errors.
func TestServeSweepPolicyReplicasBurstCube(t *testing.T) {
	grid := ServeGrid{
		Rates:        []float64{8},
		Replicas:     []int{1, 2, 8},
		Policies:     []ServePolicy{{Static: true}, {}},
		BurstFactors: []float64{1, 4},
	}
	pts, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*3*2 {
		t.Fatalf("got %d points, want 12", len(pts))
	}
	for i, p := range pts {
		if p.Err != nil {
			t.Errorf("point %d (%v, %d replicas, burst %g) failed: %v",
				i, p.Policy, p.Replicas, p.BurstFactor, p.Err)
		}
		if p.Stats.Completed != serveSweepCfg.Requests {
			t.Errorf("point %d completed %d/%d", i, p.Stats.Completed, serveSweepCfg.Requests)
		}
	}
}

// TestServeSweepAutoscalePoint: autoscale points report the scaling
// high-water mark and stay within the point's replica ceiling.
func TestServeSweepAutoscalePoint(t *testing.T) {
	cfg := serveSweepCfg
	cfg.Requests = 60
	pts, err := ServeSweep(cfg, ServeGrid{
		Rates:    []float64{12},
		Replicas: []int{3},
		Policies: []ServePolicy{{Autoscale: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if p.PeakReplicas < 1 || p.PeakReplicas > 3 {
		t.Errorf("peak replicas %d outside [1, 3]", p.PeakReplicas)
	}
	if p.Stats.Completed != cfg.Requests {
		t.Errorf("completed %d/%d", p.Stats.Completed, cfg.Requests)
	}
}

func TestServeSweepValidation(t *testing.T) {
	base := serveSweepCfg
	cases := []struct {
		name string
		cfg  ServeSweepConfig
		grid ServeGrid
		want string
	}{
		{"no rates", base, ServeGrid{}, "no rates"},
		{"zero rate", base, ServeGrid{Rates: []float64{0}}, "positive"},
		{"negative rate", base, ServeGrid{Rates: []float64{-2}}, "positive"},
		{"NaN rate", base, ServeGrid{Rates: []float64{math.NaN()}}, "positive"},
		{"Inf rate", base, ServeGrid{Rates: []float64{math.Inf(1)}}, "positive"},
		{"zero replicas", base, ServeGrid{Rates: []float64{1}, Replicas: []int{0}}, "≥ 1"},
		{"zero max batch", base, ServeGrid{Rates: []float64{1}, MaxBatches: []int{0}}, "≥ 1"},
		{"sub-one burst", base, ServeGrid{Rates: []float64{1}, BurstFactors: []float64{0.5}}, "burst factor"},
		{"NaN burst", base, ServeGrid{Rates: []float64{1}, BurstFactors: []float64{math.NaN()}}, "burst factor"},
		{"Inf burst", base, ServeGrid{Rates: []float64{1}, BurstFactors: []float64{math.Inf(1)}}, "burst factor"},
		{"zero-median mix", base, ServeGrid{
			Rates: []float64{1}, LengthMixes: []LengthMix{{Input: 0, Output: 64}},
		}, "positive medians"},
	}
	for _, c := range cases {
		if _, err := ServeSweep(c.cfg, c.grid); err == nil {
			t.Errorf("%s: want error", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
	}

	noBatch := base
	noBatch.MaxBatch = 0
	if _, err := ServeSweep(noBatch, ServeGrid{Rates: []float64{1}}); err == nil {
		t.Error("unset MaxBatch with no MaxBatches axis must fail")
	}
	for _, budget := range []float64{-4, math.NaN(), math.Inf(1)} {
		badBudget := base
		badBudget.KVBudgetGiB = budget
		if _, err := ServeSweep(badBudget, ServeGrid{Rates: []float64{1}}); err == nil ||
			!strings.Contains(err.Error(), "invalid KV budget") {
			t.Errorf("KV budget %v must be rejected, got %v", budget, err)
		}
	}
	badTrace := base
	badTrace.Requests = 0
	if _, err := ServeSweep(badTrace, ServeGrid{Rates: []float64{1}}); err == nil {
		t.Error("zero-request trace shape must fail up front")
	}
	for name, mut := range map[string]func(*ServeSweepConfig){
		"UpOutstanding": func(c *ServeSweepConfig) { c.UpOutstanding = -1 },
		"DownIdleS":     func(c *ServeSweepConfig) { c.DownIdleS = -0.5 },
		"CooldownS":     func(c *ServeSweepConfig) { c.CooldownS = -1 },
		"BurstLenS":     func(c *ServeSweepConfig) { c.BurstLenS = -2 },
	} {
		bad := base
		mut(&bad)
		if _, err := ServeSweep(bad, ServeGrid{Rates: []float64{1}}); err == nil ||
			!strings.Contains(err.Error(), "negative serve tuning") {
			t.Errorf("negative %s must fail the whole call up front, got %v", name, err)
		}
	}
}

// TestServeSweepAllCombosFailJoined: when every configuration
// combination fails to build, the call fails with all distinct causes
// joined — not just the first.
func TestServeSweepAllCombosFailJoined(t *testing.T) {
	_, err := ServeSweep(serveSweepCfg, ServeGrid{
		Rates:   []float64{4},
		Devices: []string{"A100", "NoSuchDevice"},
		Schemes: []Scheme{{"fp8", "fp8"}},
	})
	if err == nil {
		t.Fatal("all-failing combinations must fail the call")
	}
	msg := err.Error()
	if !strings.Contains(msg, "fp8") || !strings.Contains(msg, "NoSuchDevice") {
		t.Errorf("joined error must name every distinct cause, got: %v", msg)
	}
}

// TestServeSweepTraceAxisOrderAndDeterminism pins the trace axes'
// position in the nesting (… ▸ MaxBatches ▸ BurstFactors ▸
// LengthMixes ▸ Rates) and the determinism property over them: the
// full result slice is byte-identical at Parallelism 1 and 8, static
// and autoscale policies included (run under -race in CI).
func TestServeSweepTraceAxisOrderAndDeterminism(t *testing.T) {
	grid := ServeGrid{
		Rates:        []float64{4, 8},
		Replicas:     []int{2},
		BurstFactors: []float64{1, 4},
		LengthMixes:  []LengthMix{{Input: 128, Output: 48}, {Input: 512, Output: 96}},
		Policies:     []ServePolicy{{}, {Static: true}, {Static: true, Autoscale: true}},
	}
	grid.Parallelism = 1
	serial, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 3*2*2*2 {
		t.Fatalf("got %d points, want 24", len(serial))
	}
	i := 0
	for _, pol := range grid.Policies {
		for _, burst := range grid.BurstFactors {
			for _, mix := range grid.LengthMixes {
				for _, rate := range grid.Rates {
					p := serial[i]
					if p.Policy != pol || p.BurstFactor != burst || p.Mix != mix || p.Rate != rate {
						t.Errorf("point %d = %v burst %g mix %+v @%g, want %v burst %g mix %+v @%g",
							i, p.Policy, p.BurstFactor, p.Mix, p.Rate, pol, burst, mix, rate)
					}
					if p.Err != nil {
						t.Errorf("point %d failed: %v", i, p.Err)
					}
					i++
				}
			}
		}
	}
	grid.Parallelism = 8
	parallel, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("point %d differs between parallelism 1 and 8", i)
		}
	}
}

// TestServeSweepTraceSeedIsolation: points at one (burst, mix, rate)
// axis position share a single arrival process across the policy and
// replica axes, while every distinct position draws from an isolated
// seed stream — changing one shape never changes another's traffic.
func TestServeSweepTraceSeedIsolation(t *testing.T) {
	grid := ServeGrid{
		Rates:        []float64{5, 9},
		Replicas:     []int{1, 2},
		BurstFactors: []float64{1, 6},
	}
	pts, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := func(p ServeSweepPoint) map[int]float64 {
		t.Helper()
		if p.Err != nil {
			t.Fatalf("point failed: %v", p.Err)
		}
		m := make(map[int]float64, len(p.Stats.Requests))
		for _, r := range p.Stats.Requests {
			m[r.ID] = r.Arrival
		}
		return m
	}
	// Nesting is Replicas ▸ BurstFactors ▸ Rates: index = (reps*2 +
	// burst)*2 + rate.
	at := func(reps, burst, rate int) ServeSweepPoint { return pts[(reps*2+burst)*2+rate] }
	// Same position, different replica counts: one arrival process.
	if !reflect.DeepEqual(arrivals(at(0, 1, 0)), arrivals(at(1, 1, 0))) {
		t.Error("points at one trace-shape position must share one arrival process")
	}
	// Distinct positions (burst, or rate, or both): isolated streams.
	base := arrivals(at(0, 0, 0))
	for name, other := range map[string]ServeSweepPoint{
		"burst factor": at(0, 1, 0),
		"rate":         at(0, 0, 1),
	} {
		if reflect.DeepEqual(base, arrivals(other)) {
			t.Errorf("distinct %s positions must not share an arrival process", name)
		}
	}

	// The isolation also holds between mix positions: different
	// medians at one rate draw different arrival gaps (the stream is
	// private per position, not sliced from one sequence).
	mixes, err := ServeSweep(serveSweepCfg, ServeGrid{
		Rates:       []float64{5},
		LengthMixes: []LengthMix{{Input: 128, Output: 48}, {Input: 512, Output: 96}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(arrivals(mixes[0]), arrivals(mixes[1])) {
		t.Error("distinct mix positions must not share an arrival process")
	}
}

// TestServeSweepLeanStats: LeanStats drops only the per-request
// ledger — every aggregate (percentiles, means, throughput,
// per-replica shares, peaks) is byte-identical to the full run.
func TestServeSweepLeanStats(t *testing.T) {
	grid := ServeGrid{
		Rates:        []float64{6},
		Replicas:     []int{2},
		Policies:     []ServePolicy{{}, {Static: true}, {Autoscale: true}},
		BurstFactors: []float64{3},
	}
	full, err := ServeSweep(serveSweepCfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	lean := serveSweepCfg
	lean.LeanStats = true
	slim, err := ServeSweep(lean, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if len(full[i].Stats.Requests) != serveSweepCfg.Requests {
			t.Errorf("point %d: full run must keep the ledger (%d entries)", i, len(full[i].Stats.Requests))
		}
		if slim[i].Stats.Requests != nil {
			t.Errorf("point %d: LeanStats must drop the ledger, got %d entries", i, len(slim[i].Stats.Requests))
		}
		want := full[i]
		want.Stats.Requests = nil
		if !reflect.DeepEqual(slim[i], want) {
			t.Errorf("point %d: LeanStats changed aggregates", i)
		}
	}
}

func TestKnees(t *testing.T) {
	mk := func(reps int, rate, p99 float64, err error) ServeSweepPoint {
		return ServeSweepPoint{
			Device: "A100", Framework: "vLLM", Replicas: reps, MaxBatch: 8, Rate: rate,
			Stats: ServeStats{P99Latency: p99}, Err: err,
		}
	}
	pts := []ServeSweepPoint{
		mk(1, 5, 1.0, nil), mk(1, 10, 4.0, nil), mk(1, 20, 9.0, nil),
		mk(2, 5, 0.5, nil), mk(2, 10, 1.5, nil), mk(2, 20, 2.5, nil),
		mk(4, 5, 0, errBoom), mk(4, 10, 0, errBoom),
	}
	knees, err := Knees(pts, 6.0)
	if err != nil {
		t.Fatalf("Knees: %v", err)
	}
	if len(knees) != 3 {
		t.Fatalf("got %d knees, want 3", len(knees))
	}
	if !knees[0].Met || knees[0].Rate != 10 {
		t.Errorf("1 replica: knee %+v, want rate 10", knees[0])
	}
	if !knees[1].Met || knees[1].Rate != 20 {
		t.Errorf("2 replicas: knee %+v, want rate 20", knees[1])
	}
	if knees[2].Met {
		t.Errorf("4 replicas (all errored): knee %+v, want unmet", knees[2])
	}
	if knees[0].Replicas != 1 || knees[1].Replicas != 2 || knees[2].Replicas != 4 {
		t.Error("knees must preserve grid order of configurations")
	}
}

// TestKneesSkipsNonFiniteStats is the regression test for the NaN-SLO
// bug: `NaN > slo` is false, so an unguarded degenerate point used to
// count as SLO-compliant and could become the knee. Non-finite points
// must be skipped, and an all-degenerate configuration must still
// appear with Met false.
func TestKneesSkipsNonFiniteStats(t *testing.T) {
	mk := func(reps int, rate, p99, tput float64) ServeSweepPoint {
		return ServeSweepPoint{
			Device: "A100", Framework: "vLLM", Replicas: reps, MaxBatch: 8, Rate: rate,
			Stats: ServeStats{P99Latency: p99, Throughput: tput},
		}
	}
	pts := []ServeSweepPoint{
		// Config 1: a NaN P99 at the highest rate must not win.
		mk(1, 5, 1.0, 100), mk(1, 10, math.NaN(), 100),
		// Config 2: finite P99 but overflowed throughput at the top rate.
		mk(2, 5, 1.0, 100), mk(2, 10, 1.0, math.Inf(1)),
		// Config 3: every point degenerate — present but unmet.
		mk(4, 5, math.NaN(), 100), mk(4, 10, math.Inf(1), 100),
	}
	knees, err := Knees(pts, 6.0)
	if err != nil {
		t.Fatalf("Knees: %v", err)
	}
	if len(knees) != 3 {
		t.Fatalf("got %d knees, want 3", len(knees))
	}
	if !knees[0].Met || knees[0].Rate != 5 {
		t.Errorf("NaN-P99 point must not be the knee: %+v", knees[0])
	}
	if !knees[1].Met || knees[1].Rate != 5 {
		t.Errorf("Inf-throughput point must not be the knee: %+v", knees[1])
	}
	if knees[2].Met {
		t.Errorf("all-degenerate configuration must be unmet: %+v", knees[2])
	}
}

// TestKneesRejectsBadSLO: a NaN, infinite, zero, or negative SLO would
// silently qualify nothing (or everything); it is a caller error.
func TestKneesRejectsBadSLO(t *testing.T) {
	pts := []ServeSweepPoint{{Rate: 5, Stats: ServeStats{P99Latency: 1}}}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Knees(pts, bad); err == nil {
			t.Errorf("SLO %v must be rejected", bad)
		} else if !strings.Contains(err.Error(), "SLO") {
			t.Errorf("SLO %v error %v must name the SLO", bad, err)
		}
	}
}

// TestServeSweepTraceReplayByteIdentity is the tentpole's round-trip
// property: the trace a sweep point would synthesize, recorded to the
// file format and read back, replays through continuous and static
// policies with Stats byte-identical to the synthesized run — and the
// replay sweep itself is byte-identical at Parallelism 1 and 8 (run
// under -race in CI).
func TestServeSweepTraceReplayByteIdentity(t *testing.T) {
	recorded, err := ServePointTrace(serveSweepCfg, ServeGrid{Rates: []float64{6}})
	if err != nil {
		t.Fatalf("ServePointTrace: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recorded, TraceMeta{Source: "test"}); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	replayed, _, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	for i := range replayed {
		if replayed[i] != recorded[i] {
			t.Fatalf("request %d survived the file format changed: %+v vs %+v", i, replayed[i], recorded[i])
		}
	}

	synth := ServeGrid{
		Rates:    []float64{6},
		Replicas: []int{1, 2},
		Policies: []ServePolicy{{}, {Static: true}},
	}
	want, err := ServeSweep(serveSweepCfg, synth)
	if err != nil {
		t.Fatal(err)
	}
	replay := synth
	replay.Rates = nil // native-rate replay
	replay.Trace = replayed
	got, err := ServeSweep(serveSweepCfg, replay)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replay sweep has %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("replay point %d failed: %v", i, got[i].Err)
		}
		// The point's Rate reports the trace's native intensity and Mix
		// is zero on replay grids; the simulation outcome must match
		// bit for bit.
		if !reflect.DeepEqual(got[i].Stats, want[i].Stats) ||
			!reflect.DeepEqual(got[i].PerReplica, want[i].PerReplica) {
			t.Errorf("replay point %d (%v, %d replicas) differs from the synthesized run",
				i, got[i].Policy, got[i].Replicas)
		}
	}

	replay.Parallelism = 8
	parallel, err := ServeSweep(serveSweepCfg, replay)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], parallel[i]) {
			t.Errorf("replay point %d differs between parallelism 1 and 8", i)
		}
	}
}

// TestServeSweepTraceReplayValidation: replay grids reject the
// trace-shape axes and invalid traces up front, and an instantaneous
// burst trace (no native rate) demands an explicit Rates axis.
func TestServeSweepTraceReplayValidation(t *testing.T) {
	trace := []TraceRequest{
		{ID: 0, Arrival: 0, Input: 64, Output: 16},
		{ID: 1, Arrival: 0.5, Input: 64, Output: 16},
	}
	cases := []struct {
		name string
		grid ServeGrid
		want string
	}{
		{"burst axis", ServeGrid{Trace: trace, BurstFactors: []float64{2}}, "trace-shape axes"},
		{"mix axis", ServeGrid{Trace: trace, LengthMixes: []LengthMix{{Input: 128, Output: 32}}}, "trace-shape axes"},
		{"out-of-order trace", ServeGrid{Trace: []TraceRequest{
			{ID: 0, Arrival: 1, Input: 64, Output: 16}, {ID: 1, Arrival: 0.5, Input: 64, Output: 16},
		}}, "time-ordered"},
		{"instantaneous burst", ServeGrid{Trace: []TraceRequest{
			{ID: 0, Arrival: 0, Input: 64, Output: 16}, {ID: 1, Arrival: 0, Input: 64, Output: 16},
		}}, "set Rates"},
	}
	for _, c := range cases {
		if _, err := ServeSweep(serveSweepCfg, c.grid); err == nil {
			t.Errorf("%s: want error", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
	}
	// The same trace with an explicit rate ladder is fine.
	pts, err := ServeSweep(serveSweepCfg, ServeGrid{Trace: trace, Rates: []float64{4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if p.Err != nil {
			t.Errorf("rescaled replay point %d failed: %v", i, p.Err)
		}
		if p.Stats.Completed != len(trace) {
			t.Errorf("rescaled replay point %d completed %d/%d", i, p.Stats.Completed, len(trace))
		}
	}
}

// TestServePointTraceErrors: recording needs exactly one trace-shape
// position and a grid that is not itself a replay.
func TestServePointTraceErrors(t *testing.T) {
	if _, err := ServePointTrace(serveSweepCfg, ServeGrid{
		Trace: []TraceRequest{{Arrival: 0, Input: 8, Output: 8}},
	}); err == nil || !strings.Contains(err.Error(), "nothing to record") {
		t.Errorf("replay grid must have nothing to record, got %v", err)
	}
	for name, grid := range map[string]ServeGrid{
		"two rates":  {Rates: []float64{4, 8}},
		"two bursts": {Rates: []float64{4}, BurstFactors: []float64{1, 4}},
		"two mixes":  {Rates: []float64{4}, LengthMixes: []LengthMix{{Input: 128, Output: 32}, {Input: 512, Output: 64}}},
	} {
		if _, err := ServePointTrace(serveSweepCfg, grid); err == nil ||
			!strings.Contains(err.Error(), "trace-shape positions") {
			t.Errorf("%s: want a multi-position error, got %v", name, err)
		}
	}
	// A bursty one-position grid records its ChatTrace.
	reqs, err := ServePointTrace(serveSweepCfg, ServeGrid{
		Rates: []float64{6}, BurstFactors: []float64{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != serveSweepCfg.Requests {
		t.Errorf("recorded %d requests, want %d", len(reqs), serveSweepCfg.Requests)
	}
}

// TestServeSweepStreamStats: StreamStats drops the ledger like
// LeanStats and keeps every non-percentile aggregate byte-identical to
// the exact path, while the P² percentiles track the exact ones.
func TestServeSweepStreamStats(t *testing.T) {
	cfg := serveSweepCfg
	cfg.Requests = 2000
	grid := ServeGrid{
		Rates:    []float64{10},
		Replicas: []int{2},
		Policies: []ServePolicy{{}, {Static: true}, {Autoscale: true}},
	}
	lean := cfg
	lean.LeanStats = true
	exact, err := ServeSweep(lean, grid)
	if err != nil {
		t.Fatal(err)
	}
	stream := cfg
	stream.StreamStats = true
	got, err := ServeSweep(stream, grid)
	if err != nil {
		t.Fatal(err)
	}
	zero := func(s *ServeStats) {
		s.P50Latency, s.P95Latency, s.P99Latency = 0, 0, 0
		s.P50QueueDelay, s.P95QueueDelay, s.P99QueueDelay = 0, 0, 0
	}
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("streaming point %d failed: %v", i, got[i].Err)
		}
		if got[i].Stats.Requests != nil {
			t.Errorf("point %d: StreamStats must drop the ledger", i)
		}
		check := func(name string, g, w float64) {
			if rel := math.Abs(g-w) / w; rel > 0.05 {
				t.Errorf("point %d %s: sketch %v vs exact %v (relative error %.2f%%)", i, name, g, w, 100*rel)
			}
		}
		check("P50Latency", got[i].Stats.P50Latency, exact[i].Stats.P50Latency)
		check("P95Latency", got[i].Stats.P95Latency, exact[i].Stats.P95Latency)
		check("P99Latency", got[i].Stats.P99Latency, exact[i].Stats.P99Latency)
		g, w := got[i], exact[i]
		zero(&g.Stats)
		zero(&w.Stats)
		if !reflect.DeepEqual(g, w) {
			t.Errorf("point %d: streaming non-percentile aggregates differ from exact", i)
		}
	}
}

var errBoom = errString("boom")

type errString string

func (e errString) Error() string { return string(e) }

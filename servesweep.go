package llmbench

import (
	"errors"
	"fmt"
	"math"

	"llmbench/internal/cluster"
	"llmbench/internal/engine"
	"llmbench/internal/pool"
	"llmbench/internal/sched"
	"llmbench/internal/workload"
)

// ServePolicy selects the batching, routing, and capacity strategy of
// one serving-sweep point. The zero value is the common production
// baseline: continuous batching, round-robin routing, fixed fleet.
type ServePolicy struct {
	// Static runs pre-Orca static batching instead of continuous
	// batching (§IV-A1). Static batching is single-device: points
	// pairing it with a replica count above 1 fail individually.
	Static bool
	// LeastLoaded routes to the replica with the fewest outstanding
	// requests instead of cycling round-robin.
	LeastLoaded bool
	// Autoscale grows the fleet from 1 replica up to the point's
	// replica count under queue pressure instead of holding it fixed
	// (see ServeAutoscale); the point's Replicas value becomes the
	// capacity ceiling. The autoscaler always routes least-loaded, so
	// LeastLoaded is ignored when Autoscale is set.
	Autoscale bool
}

func (p ServePolicy) String() string {
	switch {
	case p.Static:
		return "static"
	case p.Autoscale:
		// The autoscaler's router is least-loaded regardless of the
		// LeastLoaded flag.
		return "continuous/auto"
	case p.LeastLoaded:
		return "continuous/ll"
	}
	return "continuous/rr"
}

func (p ServePolicy) validate() error {
	if p.Static && p.Autoscale {
		return fmt.Errorf("llmbench: policy %+v combines static batching with autoscaling", p)
	}
	return nil
}

// ServeGrid enumerates the points of a serving-capacity sweep. Rates
// is required; Replicas, MaxBatches, and Policies default to the base
// configuration's single value. Devices, Frameworks, and Schemes are
// the same configuration axes Grid has, resolving one cached engine
// per combination.
//
// Axes nest in a fixed order — Devices outermost, then Frameworks,
// Schemes, Policies, Replicas, MaxBatches, and Rates innermost — so
// output is deterministic, and scanning one configuration's rate
// ladder (the capacity question) reads contiguously.
type ServeGrid struct {
	// Rates is the arrival-rate axis in requests/s. Required; every
	// value must be positive and finite.
	Rates []float64
	// Replicas is the fleet-size axis (capacity ceiling for Autoscale
	// policies). Empty means the base config's Replicas (minimum 1).
	Replicas []int
	// MaxBatches is the per-replica concurrency-cap axis. Empty means
	// the base config's MaxBatch.
	MaxBatches []int
	// Policies is the batching/routing/autoscale axis. Empty means the
	// zero ServePolicy (continuous batching, round-robin, fixed fleet).
	Policies []ServePolicy

	// Configuration axes, identical to Grid: each (device, framework,
	// scheme) combination resolves one engine through the shared
	// engine cache; a combination that fails to build marks its
	// points' Err instead of aborting the sweep.
	Devices    []string
	Frameworks []string
	Schemes    []Scheme

	// Parallelism bounds the sweep's worker count; values below 1
	// mean GOMAXPROCS. Results are ordered by grid position
	// regardless, so output is byte-identical at any setting.
	Parallelism int
}

// ServeSweepConfig is the base serving configuration a ServeGrid
// varies: the system under test, the trace shape, and the defaults
// for every axis the grid leaves unset.
type ServeSweepConfig struct {
	System System

	// Replicas and MaxBatch are the per-point defaults when the
	// grid's Replicas/MaxBatches axes are empty. Replicas below 1
	// means 1; MaxBatch must be ≥ 1 if the MaxBatches axis is unset.
	Replicas int
	MaxBatch int

	// KVBudgetGiB is the per-replica paged-KV pool size; 0 sizes it
	// from the device's free memory after weights. Negative budgets
	// are rejected.
	KVBudgetGiB float64

	// Trace parameters. Every point generates a private Poisson trace
	// whose seed is derived from Seed and the point's position on the
	// Rates axis — points at the same rate share one arrival process,
	// so the replica, batch, and policy axes compare like for like.
	Seed       uint64
	Requests   int
	InputMean  int
	OutputMean int

	// Autoscale tuning for Policies with Autoscale set. Zero values
	// mean UpOutstanding = 2×MaxBatch, DownIdleS = 3s, CooldownS = 1s
	// (the dashboard's defaults).
	UpOutstanding int
	DownIdleS     float64
	CooldownS     float64
}

// ReplicaStats re-exports the cluster's per-replica summary.
type ReplicaStats = cluster.ReplicaStats

// ServeSweepPoint is one serving-grid point's outcome. The
// configuration fields record the effective values (identical to the
// base config where the corresponding axis is unset). Err records
// points that fail individually — a combination that cannot build, a
// fleet the workload overruns — without aborting the rest of the
// sweep.
type ServeSweepPoint struct {
	Device    string
	Framework string
	Scheme    Scheme
	Policy    ServePolicy
	Replicas  int
	MaxBatch  int
	Rate      float64

	Stats ServeStats
	// PerReplica carries each replica's share for cluster-backed
	// points (nil for static-batching points).
	PerReplica []ReplicaStats
	// PeakReplicas is the autoscaler's high-water mark (0 for
	// fixed-fleet points).
	PeakReplicas int
	Err          error
}

// serveAxes is the resolved, validated axis set of one ServeSweep.
type serveAxes struct {
	policies   []ServePolicy
	replicas   []int
	maxBatches []int
	rates      []float64
}

func (a serveAxes) perCombo() int {
	return len(a.policies) * len(a.replicas) * len(a.maxBatches) * len(a.rates)
}

func resolveServeAxes(cfg ServeSweepConfig, grid ServeGrid) (serveAxes, error) {
	a := serveAxes{
		policies:   grid.Policies,
		replicas:   grid.Replicas,
		maxBatches: grid.MaxBatches,
		rates:      grid.Rates,
	}
	if len(a.rates) == 0 {
		return a, errors.New("llmbench: empty serve grid (no rates)")
	}
	for _, r := range a.rates {
		if !(r > 0) || math.IsInf(r, 0) {
			return a, fmt.Errorf("llmbench: arrival rate %v must be positive and finite", r)
		}
	}
	if len(a.replicas) == 0 {
		a.replicas = []int{max1(cfg.Replicas)}
	}
	for _, n := range a.replicas {
		if n < 1 {
			return a, fmt.Errorf("llmbench: replica count %d must be ≥ 1", n)
		}
	}
	if len(a.maxBatches) == 0 {
		if cfg.MaxBatch < 1 {
			return a, errors.New("llmbench: MaxBatch must be ≥ 1 when the MaxBatches axis is unset")
		}
		a.maxBatches = []int{cfg.MaxBatch}
	}
	for _, b := range a.maxBatches {
		if b < 1 {
			return a, fmt.Errorf("llmbench: max batch %d must be ≥ 1", b)
		}
	}
	if len(a.policies) == 0 {
		a.policies = []ServePolicy{{}}
	}
	for _, p := range a.policies {
		if err := p.validate(); err != nil {
			return a, err
		}
	}
	if cfg.KVBudgetGiB < 0 || math.IsNaN(cfg.KVBudgetGiB) || math.IsInf(cfg.KVBudgetGiB, 0) {
		return a, fmt.Errorf("llmbench: invalid KV budget %v GiB (want a finite value ≥ 0)", cfg.KVBudgetGiB)
	}
	if cfg.Requests < 1 || cfg.InputMean < 1 || cfg.OutputMean < 1 {
		return a, fmt.Errorf("llmbench: bad serve trace shape (requests %d, input %d, output %d)",
			cfg.Requests, cfg.InputMean, cfg.OutputMean)
	}
	return a, nil
}

// ServeSweep evaluates a serving-capacity grid — arrival rate ×
// replicas × max batch × policy, across the same device/framework/
// scheme configuration axes Sweep has — concurrently. It is the
// serving analogue of Sweep: engines are built once per configuration
// combination through the shared engine cache, every point runs an
// independent simulation on a private trace and private KV
// allocators, and the returned slice is ordered by grid position
// (Devices ▸ Frameworks ▸ Schemes ▸ Policies ▸ Replicas ▸ MaxBatches
// ▸ Rates) — never by completion — so output is byte-identical at any
// Parallelism.
//
// An invalid grid or trace shape fails the whole call. A combination
// that fails to build fails only its own points through
// ServeSweepPoint.Err, unless every combination fails, which fails
// the call with all distinct build errors joined.
func ServeSweep(cfg ServeSweepConfig, grid ServeGrid) ([]ServeSweepPoint, error) {
	axes, err := resolveServeAxes(cfg, grid)
	if err != nil {
		return nil, err
	}
	combos := comboSystems(cfg.System, grid.Devices, grid.Frameworks, grid.Schemes)

	// Resolve every combination's engine and KV budget up front
	// (serially — the builds go through the shared cache), so point
	// workers only run simulations.
	type comboEnv struct {
		eng    *engine.Engine
		budget float64
	}
	engines := make([]comboEnv, len(combos))
	buildErrs := make([]error, len(combos))
	failed := 0
	for i, c := range combos {
		eng, err := CachedEngine(c)
		if err == nil {
			var budget float64
			budget, err = servingKVBudget(c, cfg.KVBudgetGiB)
			engines[i] = comboEnv{eng: eng, budget: budget}
		}
		if buildErrs[i] = err; err != nil {
			failed++
		}
	}
	if failed == len(combos) {
		return nil, joinBuildErrors(buildErrs)
	}

	perCombo := axes.perCombo()
	nRep := len(axes.replicas)
	nMB := len(axes.maxBatches)
	nRate := len(axes.rates)
	out := make([]ServeSweepPoint, len(combos)*perCombo)
	_ = pool.ForEach(len(out), grid.Parallelism, func(i int) error {
		combo := i / perCombo
		rest := i % perCombo
		pol := axes.policies[rest/(nRep*nMB*nRate)]
		rest %= nRep * nMB * nRate
		reps := axes.replicas[rest/(nMB*nRate)]
		rest %= nMB * nRate
		maxBatch := axes.maxBatches[rest/nRate]
		rateIdx := rest % nRate
		rate := axes.rates[rateIdx]
		c := combos[combo]
		p := ServeSweepPoint{
			Device: c.Device, Framework: c.Framework,
			Scheme:   Scheme{Weights: c.Weights, KV: c.KV},
			Policy:   pol,
			Replicas: reps, MaxBatch: maxBatch, Rate: rate,
		}
		if buildErrs[combo] != nil {
			p.Err = buildErrs[combo]
		} else {
			runServePoint(&p, c, engines[combo].eng, engines[combo].budget, cfg, rateIdx)
		}
		out[i] = p
		return nil
	})
	return out, nil
}

// runServePoint runs one grid point's simulation, recording failures
// in p.Err. Each point owns its trace and allocators; the engine is
// shared (engines are immutable and concurrency-safe).
func runServePoint(p *ServeSweepPoint, sys System, eng *engine.Engine, budget float64,
	cfg ServeSweepConfig, rateIdx int) {
	// Same-rate points share one arrival process (seed derived from
	// the Rates-axis position), so the other axes compare like for
	// like on identical traffic.
	trace, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: cfg.Seed + uint64(rateIdx), Requests: cfg.Requests, RatePerSec: p.Rate,
		InputMean: cfg.InputMean, OutputMean: cfg.OutputMean, LengthJitter: 0.3,
	})
	if err != nil {
		p.Err = err
		return
	}
	switch {
	case p.Policy.Autoscale:
		upOut := cfg.UpOutstanding
		if upOut == 0 {
			upOut = 2 * p.MaxBatch
		}
		downIdle, cooldown := cfg.DownIdleS, cfg.CooldownS
		if downIdle == 0 {
			downIdle = 3
		}
		if cooldown == 0 {
			cooldown = 1
		}
		factory := func() (cluster.Replica, error) {
			alloc, err := servingAlloc(sys, budget)
			if err != nil {
				return cluster.Replica{}, err
			}
			return cluster.Replica{Engine: eng, Alloc: alloc}, nil
		}
		auto, err := cluster.ServeAutoscale(
			cluster.Config{MaxBatch: p.MaxBatch},
			cluster.Autoscale{
				Factory: factory, Min: 1, Max: p.Replicas,
				UpOutstanding: upOut, DownIdleS: downIdle, CooldownS: cooldown,
			}, trace)
		if err != nil {
			p.Err = err
			return
		}
		p.Stats = auto.Stats.Stats
		p.PerReplica = auto.PerReplica
		p.PeakReplicas = auto.PeakReplicas
	case p.Policy.Static:
		if p.Replicas != 1 {
			p.Err = fmt.Errorf("llmbench: static batching is single-device (got %d replicas)", p.Replicas)
			return
		}
		alloc, err := servingAlloc(sys, budget)
		if err != nil {
			p.Err = err
			return
		}
		p.Stats, p.Err = sched.Serve(sched.Config{
			Engine: eng, Policy: sched.Static, MaxBatch: p.MaxBatch, Alloc: alloc,
		}, trace)
	default:
		replicas := make([]cluster.Replica, p.Replicas)
		for i := range replicas {
			alloc, err := servingAlloc(sys, budget)
			if err != nil {
				p.Err = err
				return
			}
			replicas[i] = cluster.Replica{Engine: eng, Alloc: alloc}
		}
		st, err := cluster.Serve(cluster.Config{
			Replicas: replicas, Policy: routePolicy(p.Policy), MaxBatch: p.MaxBatch,
		}, trace)
		if err != nil {
			p.Err = err
			return
		}
		p.Stats = st.Stats
		p.PerReplica = st.PerReplica
	}
}

func routePolicy(p ServePolicy) cluster.Policy {
	if p.LeastLoaded {
		return cluster.LeastLoaded
	}
	return cluster.RoundRobin
}

// KneePoint reports one serving configuration's knee: the highest
// swept arrival rate whose P99 latency met the SLO.
type KneePoint struct {
	Device    string
	Framework string
	Scheme    Scheme
	Policy    ServePolicy
	Replicas  int
	MaxBatch  int

	// Met reports whether any swept rate satisfied the SLO; Rate and
	// Stats then describe the highest such rate.
	Met   bool
	Rate  float64
	Stats ServeStats
}

// Knees folds a ServeSweep result into per-configuration capacity
// knees: for every distinct (device, framework, scheme, policy,
// replicas, max batch) configuration, the highest swept rate whose
// P99 latency is at most sloP99. Configurations appear in grid order;
// points with Err never qualify but their configuration still appears
// (with Met false) so capacity gaps stay visible.
func Knees(pts []ServeSweepPoint, sloP99 float64) []KneePoint {
	type key struct {
		dev, fw  string
		scheme   Scheme
		policy   ServePolicy
		reps, mb int
	}
	index := make(map[key]int)
	var out []KneePoint
	for _, p := range pts {
		k := key{p.Device, p.Framework, p.Scheme, p.Policy, p.Replicas, p.MaxBatch}
		i, ok := index[k]
		if !ok {
			i = len(out)
			index[k] = i
			out = append(out, KneePoint{
				Device: p.Device, Framework: p.Framework, Scheme: p.Scheme,
				Policy: p.Policy, Replicas: p.Replicas, MaxBatch: p.MaxBatch,
			})
		}
		if p.Err != nil || p.Stats.P99Latency > sloP99 {
			continue
		}
		if !out[i].Met || p.Rate > out[i].Rate {
			out[i].Met = true
			out[i].Rate = p.Rate
			out[i].Stats = p.Stats
		}
	}
	return out
}

package llmbench

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"llmbench/internal/cluster"
	"llmbench/internal/des"
	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/pool"
	"llmbench/internal/workload"
)

// ServePolicy selects the batching, routing, and capacity strategy of
// one serving-sweep point. The zero value is the common production
// baseline: continuous batching, round-robin routing, fixed fleet.
type ServePolicy struct {
	// Static runs pre-Orca static batching instead of continuous
	// batching (§IV-A1): each replica collects a batch, runs it to
	// completion, and repeats. Static batching is a station policy on
	// the shared DES kernel, so it composes with every routing and
	// capacity option — multi-replica fleets, least-loaded routing,
	// and autoscaling drive static replicas exactly like continuous
	// ones.
	Static bool
	// LeastLoaded routes to the replica with the fewest outstanding
	// requests instead of cycling round-robin.
	LeastLoaded bool
	// Prefix routes prefix-aware (cluster.Prefix): among replicas
	// within a load window of the least-loaded, pick the one with the
	// longest expected prefix-cache hit — hot prefixes beat
	// host-tier-restorable ones beat cold replicas. With prefix-blind
	// allocators (no PrefixShares axis) it degrades to least-loaded.
	// Mutually exclusive with LeastLoaded.
	Prefix bool
	// Autoscale grows the fleet from 1 replica up to the point's
	// replica count under queue pressure instead of holding it fixed
	// (see ServeAutoscale); the point's Replicas value becomes the
	// capacity ceiling. The autoscaler always routes least-loaded, so
	// LeastLoaded is ignored when Autoscale is set.
	Autoscale bool

	// PrefillPool and DecodePool select the serving topology. Both
	// zero — the default — is the aggregated topology: every replica
	// runs both request phases. Both positive is prefill/decode
	// disaggregation with pools in that ratio: a point's fleet of
	// Replicas splits into Replicas×P/(P+D) prefill and the rest
	// decode replicas (Replicas must divide evenly by P+D, or the
	// point fails with Err), prefills hand their KV to the decode pool
	// over the device interconnect (priced per hw.InterconnectGBs and
	// InterconnectLatencyUS; see des.TransferCost), and the routing
	// policy applies within each pool. Disaggregation composes with
	// LeastLoaded but not with Static or Autoscale.
	PrefillPool int
	DecodePool  int
}

// Disagg reports whether the policy selects the disaggregated
// topology (a non-zero pool split).
func (p ServePolicy) Disagg() bool { return p.PrefillPool != 0 || p.DecodePool != 0 }

func (p ServePolicy) String() string {
	batching := "continuous"
	if p.Static {
		batching = "static"
	}
	topo := ""
	if p.Disagg() {
		topo = fmt.Sprintf("/disagg/%d:%d", p.PrefillPool, p.DecodePool)
	}
	switch {
	case p.Autoscale:
		// The autoscaler's router is least-loaded regardless of the
		// LeastLoaded and Prefix flags.
		return batching + "/auto" + topo
	case p.Prefix:
		return batching + "/prefix" + topo
	case p.LeastLoaded:
		return batching + "/ll" + topo
	}
	return batching + "/rr" + topo
}

// validate rejects policy combinations the simulators do not support.
// ParseServePolicy applies it at parse time and resolveServeAxes at
// sweep time, so a programmatically built grid fails identically to a
// flag-parsed one.
func (p ServePolicy) validate() error {
	if p.Prefix && p.LeastLoaded {
		return errors.New("llmbench: Prefix and LeastLoaded are mutually exclusive routing policies")
	}
	if !p.Disagg() {
		return nil
	}
	if p.PrefillPool < 1 || p.DecodePool < 1 {
		return fmt.Errorf("llmbench: disagg pool split %d:%d must have two positive shares", p.PrefillPool, p.DecodePool)
	}
	if p.Static {
		return errors.New("llmbench: static batching does not compose with disaggregation (the decode pool needs iteration-level admission)")
	}
	if p.Autoscale {
		return errors.New("llmbench: autoscaling does not compose with disaggregation (pool splits are fixed per point)")
	}
	return nil
}

// ParseServePolicy parses the textual policy form ServePolicy.String
// produces — tokens separated by '/' or ':' drawn from
// {continuous|static, rr|round-robin, ll|least-loaded, prefix,
// auto|autoscale, aggregated, disagg/<p>:<d>} — e.g. "continuous/ll",
// "continuous/prefix", "static:rr",
// "disagg/1:3", "continuous/rr/disagg/2:6". Later tokens override
// earlier ones; "disagg" consumes the next two tokens as its positive
// pool shares. Round-trip holds: ParseServePolicy(p.String()) == p
// for every valid policy.
func ParseServePolicy(s string) (ServePolicy, error) {
	var p ServePolicy
	if strings.TrimSpace(s) == "" {
		return p, fmt.Errorf("llmbench: empty serve policy %q", s)
	}
	// Split on both separators but keep empty tokens: "continuous:" is
	// a typo worth rejecting, not trailing noise worth dropping.
	toks := strings.Split(strings.ReplaceAll(s, ":", "/"), "/")
	for i := 0; i < len(toks); i++ {
		switch tok := strings.TrimSpace(toks[i]); tok {
		case "continuous":
			p.Static = false
		case "static":
			p.Static = true
		case "rr", "round-robin":
			p.LeastLoaded, p.Prefix = false, false
		case "ll", "least-loaded":
			p.LeastLoaded, p.Prefix = true, false
		case "prefix":
			p.Prefix, p.LeastLoaded = true, false
		case "auto", "autoscale":
			p.Autoscale = true
		case "aggregated":
			p.PrefillPool, p.DecodePool = 0, 0
		case "disagg":
			if i+2 >= len(toks) {
				return p, fmt.Errorf("llmbench: policy %q: disagg needs a <prefill>:<decode> pool split (e.g. disagg/1:3)", s)
			}
			pre, err1 := strconv.Atoi(strings.TrimSpace(toks[i+1]))
			dec, err2 := strconv.Atoi(strings.TrimSpace(toks[i+2]))
			if err1 != nil || err2 != nil || pre < 1 || dec < 1 {
				return p, fmt.Errorf("llmbench: policy %q: malformed disagg pool split %q:%q (want two positive integers, e.g. disagg/1:3)",
					s, toks[i+1], toks[i+2])
			}
			p.PrefillPool, p.DecodePool = pre, dec
			i += 2
		default:
			return p, fmt.Errorf("llmbench: policy %q: unknown token %q (want continuous|static, rr|ll|prefix, auto, aggregated, or disagg/<p>:<d>)", s, tok)
		}
	}
	if err := p.validate(); err != nil {
		return p, fmt.Errorf("policy %q: %w", s, err)
	}
	return p, nil
}

// LengthMix is one entry of the trace-shape axis: the input/output
// length medians of a ChatTrace-backed point (lognormal with heavy
// tails; see workload.ChatTraceConfig).
type LengthMix struct {
	Input  int // median prompt tokens
	Output int // median generated tokens
}

// ServeGrid enumerates the points of a serving-capacity sweep. Rates
// is required; Replicas, MaxBatches, and Policies default to the base
// configuration's single value. Devices, Frameworks, and Schemes are
// the same configuration axes Grid has, resolving one cached engine
// per combination.
//
// Axes nest in a fixed order — Devices outermost, then Frameworks,
// Schemes, Policies, Replicas, MaxBatches, PrefixShares, BurstFactors,
// LengthMixes, and Rates innermost — so output is deterministic, and
// scanning one configuration's rate ladder (the capacity question)
// reads contiguously.
type ServeGrid struct {
	// Rates is the arrival-rate axis in requests/s. Required on
	// synthesized grids; every value must be positive and finite. On
	// trace-replay grids (Trace set) an empty Rates axis replays the
	// trace once at its native rate, and a non-empty one rescales the
	// recorded arrival offsets to each value (workload.ScaleToRate) —
	// order, lengths, and burst shape preserved — turning the axis
	// into a what-if intensity ladder over recorded traffic.
	Rates []float64

	// Trace, when non-empty, replays a recorded trace (see ReadTrace)
	// at every point instead of synthesizing traffic: all points share
	// the identical arrival process, so the policy/replica/batch axes
	// compare on exactly the traffic that was recorded. Incompatible
	// with the trace-shape axes (BurstFactors, LengthMixes) — the
	// recorded trace *is* the shape — and the base config's
	// Requests/InputMean/OutputMean are ignored. Replay points report
	// BurstFactor 0 and a zero Mix.
	Trace []TraceRequest
	// Replicas is the fleet-size axis (capacity ceiling for Autoscale
	// policies). Empty means the base config's Replicas (minimum 1).
	Replicas []int
	// MaxBatches is the per-replica concurrency-cap axis. Empty means
	// the base config's MaxBatch.
	MaxBatches []int
	// Policies is the batching/routing/autoscale axis. Empty means the
	// zero ServePolicy (continuous batching, round-robin, fixed fleet).
	Policies []ServePolicy

	// BurstFactors and LengthMixes are the trace-shape axes. Setting
	// either switches every point's trace from the base config's plain
	// Poisson process to workload.ChatTrace: a rate-preserving
	// two-state MMPP (bursts at rate×factor, calm at rate/factor) with
	// heavy-tailed lognormal lengths — the traffic the autoscale
	// policy exists for. Points at one (burst, mix, rate) position
	// share a single arrival process, and distinct positions draw from
	// isolated seed streams, so every other axis compares like for
	// like on identical traffic.
	//
	// BurstFactors values must be ≥ 1 and finite (1 = no bursts);
	// empty means {1} when LengthMixes is set. LengthMixes entries are
	// the lognormal length medians; empty means one entry at the base
	// config's InputMean/OutputMean. Generated lengths clamp to
	// [16, 8192]; a mix ChatTrace rejects (medians below 16) fails
	// its points individually, not the sweep.
	BurstFactors []float64
	LengthMixes  []LengthMix

	// PrefixShares is the shared-prefix trace-shape axis: each value
	// in [0, 1) is the fraction of a point's median prompt served by
	// one fleet-wide shared system prompt
	// (workload.ChatTraceConfig.PrefixTokens). A non-zero share gives
	// every replica a tiered prefix-sharing allocator (GPU
	// PrefixPaged + CPU host tier; see ServeSweepConfig.HostKVGiB)
	// regardless of routing policy, so the Policies axis compares
	// rr/ll/prefix on identical caches. Setting the axis switches the
	// trace generator to ChatTrace like the other trace-shape axes;
	// empty means {0} (no shared prefix, plain allocators). A share
	// whose remaining per-request median falls below ChatTrace's floor
	// (16 tokens) fails its points individually.
	PrefixShares []float64

	// Configuration axes, identical to Grid: each (device, framework,
	// scheme) combination resolves one engine through the shared
	// engine cache; a combination that fails to build marks its
	// points' Err instead of aborting the sweep.
	Devices    []string
	Frameworks []string
	Schemes    []Scheme

	// Parallelism bounds the sweep's worker count; values below 1
	// mean GOMAXPROCS. Results are ordered by grid position
	// regardless, so output is byte-identical at any setting.
	Parallelism int
}

// ServeSweepConfig is the base serving configuration a ServeGrid
// varies: the system under test, the trace shape, and the defaults
// for every axis the grid leaves unset.
type ServeSweepConfig struct {
	System System

	// Replicas and MaxBatch are the per-point defaults when the
	// grid's Replicas/MaxBatches axes are empty. Replicas below 1
	// means 1; MaxBatch must be ≥ 1 if the MaxBatches axis is unset.
	Replicas int
	MaxBatch int

	// KVBudgetGiB is the per-replica paged-KV pool size; 0 sizes it
	// from the device's free memory after weights. Negative budgets
	// are rejected.
	KVBudgetGiB float64

	// HostKVGiB is the per-replica CPU-tier capacity for shared-prefix
	// points (ServeGrid.PrefixShares): demoted prefix blocks park
	// there and restore over the device's host link instead of
	// re-prefilling. 0 mirrors the device KV budget; negative, NaN,
	// and infinite values are rejected. Ignored without a prefix
	// share.
	HostKVGiB float64

	// ChunkedPrefill runs every replica with Dynamic-SplitFuse-style
	// admission (cluster.Config.ChunkedPrefill): prompts prefill in
	// PrefillChunk-token slices fused into decode iterations. The
	// pairing that lets prefix-affinity routing concentrate arrivals
	// on warm replicas without queueing them behind whole admission
	// prefills. Static or disaggregated policy entries reject it per
	// point.
	ChunkedPrefill bool
	// PrefillChunk is the slice size in tokens (default 512).
	PrefillChunk int

	// Trace parameters. Every point generates a private trace whose
	// seed is derived from Seed and the point's position on the
	// trace-shape axes (burst factor, length mix, rate) — points with
	// one trace shape share one arrival process, so the replica,
	// batch, and policy axes compare like for like. InputMean and
	// OutputMean are the Poisson means, and double as the default
	// length-mix medians when the grid's trace axes are set.
	Seed       uint64
	Requests   int
	InputMean  int
	OutputMean int

	// BurstLenS is the mean burst dwell time for trace-axis
	// (ChatTrace) points; 0 means the generator default (5 s).
	// Ignored on plain Poisson grids.
	BurstLenS float64

	// Sigma is the lognormal length spread for trace-axis (ChatTrace)
	// points; 0 means the default 0.7 (public chat datasets' heavy
	// tails). Lower values model templated traffic — batch extraction,
	// classification over a shared system prompt — whose tight output
	// tail lets prefill costs, and so prefix-cache routing, dominate
	// the tail percentiles. Ignored on plain Poisson grids.
	Sigma float64

	// LeanStats drops the per-request ledger (Stats.Requests) from
	// every returned point, shrinking a big grid's memory footprint by
	// ~100× when only the aggregates matter. Every aggregate —
	// percentiles, means, throughput, per-replica shares — is
	// unchanged.
	LeanStats bool

	// StreamStats goes further than LeanStats: completions are
	// aggregated incrementally (P² percentile sketches; see
	// internal/sched/stream.go) instead of ledgered and sorted, so a
	// point's stats memory is O(1) in trace length — the mode for
	// million-request replays. Non-percentile aggregates are
	// byte-identical to the exact path; percentiles carry the sketch's
	// documented ≤ 1% relative error. Implies LeanStats.
	StreamStats bool

	// Autoscale tuning for Policies with Autoscale set. Zero values
	// mean UpOutstanding = 2×MaxBatch, DownIdleS = 3s, CooldownS = 1s
	// (the dashboard's defaults).
	UpOutstanding int
	DownIdleS     float64
	CooldownS     float64
}

// ReplicaStats re-exports the cluster's per-replica summary.
type ReplicaStats = cluster.ReplicaStats

// ServeSweepPoint is one serving-grid point's outcome. The
// configuration fields record the effective values (identical to the
// base config where the corresponding axis is unset). Err records
// points that fail individually — a combination that cannot build, a
// fleet the workload overruns — without aborting the rest of the
// sweep.
type ServeSweepPoint struct {
	Device    string
	Framework string
	Scheme    Scheme
	Policy    ServePolicy
	Replicas  int
	MaxBatch  int
	// BurstFactor and Mix record the point's trace shape: on plain
	// Poisson grids BurstFactor is 0 and Mix echoes the base config's
	// means; on grids with trace axes they are the ChatTrace burst
	// factor and lognormal length medians.
	BurstFactor float64
	Mix         LengthMix
	// PrefixShare is the point's shared-prefix fraction (ServeGrid.
	// PrefixShares); 0 on grids without the axis.
	PrefixShare float64
	Rate        float64

	Stats ServeStats
	// PerReplica carries each replica's share (static points
	// included — static batching runs on the same cluster kernel).
	PerReplica []ReplicaStats
	// PeakReplicas is the autoscaler's high-water mark (0 for
	// fixed-fleet points).
	PeakReplicas int
	Err          error
}

// serveAxes is the resolved, validated axis set of one ServeSweep.
type serveAxes struct {
	policies   []ServePolicy
	replicas   []int
	maxBatches []int
	shares     []float64
	bursts     []float64
	mixes      []LengthMix
	rates      []float64
	// chat records that the grid set a trace-shape axis, switching
	// every point's trace generator from PoissonTrace to ChatTrace.
	chat bool
	// replay holds the recorded trace on trace-replay grids (nil
	// otherwise): points rescale it to their rate instead of
	// synthesizing arrivals.
	replay []workload.Request
}

func (a serveAxes) perCombo() int {
	return len(a.policies) * len(a.replicas) * len(a.maxBatches) *
		len(a.shares) * len(a.bursts) * len(a.mixes) * len(a.rates)
}

func resolveServeAxes(cfg ServeSweepConfig, grid ServeGrid) (serveAxes, error) {
	a := serveAxes{
		policies:   grid.Policies,
		replicas:   grid.Replicas,
		maxBatches: grid.MaxBatches,
		shares:     grid.PrefixShares,
		bursts:     grid.BurstFactors,
		mixes:      grid.LengthMixes,
		rates:      grid.Rates,
		chat:       len(grid.BurstFactors) > 0 || len(grid.LengthMixes) > 0 || len(grid.PrefixShares) > 0,
		replay:     grid.Trace,
	}
	if len(a.replay) > 0 {
		if a.chat {
			return a, errors.New("llmbench: Trace replay is incompatible with the trace-shape axes (BurstFactors, LengthMixes, PrefixShares) — the recorded trace is the shape")
		}
		if err := workload.ValidateTrace(a.replay); err != nil {
			return a, fmt.Errorf("llmbench: %w", err)
		}
		if len(a.rates) == 0 {
			// Replay once at the trace's own intensity; instantaneous
			// single-burst traces have no native rate, so they need an
			// explicit Rates axis.
			native, err := workload.NativeRate(a.replay)
			if err != nil {
				return a, fmt.Errorf("llmbench: %w (set Rates to replay it at explicit intensities)", err)
			}
			a.rates = []float64{native}
		}
	}
	if len(a.rates) == 0 {
		return a, errors.New("llmbench: empty serve grid (no rates)")
	}
	for _, r := range a.rates {
		if !(r > 0) || math.IsInf(r, 0) {
			return a, fmt.Errorf("llmbench: arrival rate %v must be positive and finite", r)
		}
	}
	if len(a.replicas) == 0 {
		a.replicas = []int{max1(cfg.Replicas)}
	}
	for _, n := range a.replicas {
		if n < 1 {
			return a, fmt.Errorf("llmbench: replica count %d must be ≥ 1", n)
		}
	}
	if len(a.maxBatches) == 0 {
		if cfg.MaxBatch < 1 {
			return a, errors.New("llmbench: MaxBatch must be ≥ 1 when the MaxBatches axis is unset")
		}
		a.maxBatches = []int{cfg.MaxBatch}
	}
	for _, b := range a.maxBatches {
		if b < 1 {
			return a, fmt.Errorf("llmbench: max batch %d must be ≥ 1", b)
		}
	}
	if len(a.policies) == 0 {
		a.policies = []ServePolicy{{}}
	}
	for _, p := range a.policies {
		if err := p.validate(); err != nil {
			return a, err
		}
	}
	if len(a.shares) == 0 {
		a.shares = []float64{0}
	}
	for _, s := range a.shares {
		if !(s >= 0) || s >= 1 || math.IsNaN(s) {
			return a, fmt.Errorf("llmbench: prefix share %v must be in [0, 1)", s)
		}
	}
	if len(a.bursts) == 0 {
		a.bursts = []float64{1}
	}
	for _, b := range a.bursts {
		if !(b >= 1) || math.IsInf(b, 0) {
			return a, fmt.Errorf("llmbench: burst factor %v must be ≥ 1 and finite", b)
		}
	}
	if len(a.mixes) == 0 {
		if len(a.replay) > 0 {
			// Replay points carry no synthesized length mix; the single
			// zero entry keeps the axis arithmetic uniform and reports
			// as a zero Mix on every point.
			a.mixes = []LengthMix{{}}
		} else {
			a.mixes = []LengthMix{{Input: cfg.InputMean, Output: cfg.OutputMean}}
		}
	}
	if len(a.replay) == 0 {
		for _, m := range a.mixes {
			// Positive medians are a grid error; ChatTrace's stricter
			// floor (≥ 16) surfaces per point so one bad mix cannot abort
			// the rest of the sweep.
			if m.Input < 1 || m.Output < 1 {
				return a, fmt.Errorf("llmbench: length mix %+v must have positive medians", m)
			}
		}
	}
	if err := validateKVBudget(cfg.KVBudgetGiB); err != nil {
		return a, err
	}
	if err := validateKVBudget(cfg.HostKVGiB); err != nil {
		return a, err
	}
	// Replay grids take their request count and lengths from the
	// recorded trace; the synthesis parameters are ignored.
	if len(a.replay) == 0 && (cfg.Requests < 1 || cfg.InputMean < 1 || cfg.OutputMean < 1) {
		return a, fmt.Errorf("llmbench: bad serve trace shape (requests %d, input %d, output %d)",
			cfg.Requests, cfg.InputMean, cfg.OutputMean)
	}
	// Negative tuning values would otherwise fail every autoscale
	// point individually (via cluster.Autoscale.validate) or be
	// silently replaced by the trace generator's default (BurstLenS):
	// fail the whole call up front like every other base-config field.
	if cfg.UpOutstanding < 0 || cfg.DownIdleS < 0 || cfg.CooldownS < 0 || cfg.BurstLenS < 0 || cfg.Sigma < 0 {
		return a, fmt.Errorf("llmbench: negative serve tuning (UpOutstanding %d, DownIdleS %v, CooldownS %v, BurstLenS %v, Sigma %v)",
			cfg.UpOutstanding, cfg.DownIdleS, cfg.CooldownS, cfg.BurstLenS, cfg.Sigma)
	}
	return a, nil
}

// ServeSweep evaluates a serving-capacity grid — arrival rate ×
// replicas × max batch × policy × trace shape, across the same
// device/framework/scheme configuration axes Sweep has —
// concurrently. It is the serving analogue of Sweep: engines are
// built once per configuration combination through the shared engine
// cache, every point runs an independent simulation on a private
// trace and private KV allocators, and the returned slice is ordered
// by grid position (Devices ▸ Frameworks ▸ Schemes ▸ Policies ▸
// Replicas ▸ MaxBatches ▸ PrefixShares ▸ BurstFactors ▸ LengthMixes ▸
// Rates) — never by completion — so output is byte-identical at any
// Parallelism.
//
// An invalid grid or trace shape fails the whole call. A combination
// that fails to build fails only its own points through
// ServeSweepPoint.Err, unless every combination fails, which fails
// the call with all distinct build errors joined.
func ServeSweep(cfg ServeSweepConfig, grid ServeGrid) ([]ServeSweepPoint, error) {
	axes, err := resolveServeAxes(cfg, grid)
	if err != nil {
		return nil, err
	}
	combos := comboSystems(cfg.System, grid.Devices, grid.Frameworks, grid.Schemes)

	// Resolve every combination's engine and KV budget up front
	// (serially — the builds go through the shared cache), so point
	// workers only run simulations.
	type comboEnv struct {
		eng    *engine.Engine
		budget float64
	}
	engines := make([]comboEnv, len(combos))
	buildErrs := make([]error, len(combos))
	failed := 0
	for i, c := range combos {
		eng, err := CachedEngine(c)
		if err == nil {
			var budget float64
			budget, err = servingKVBudget(c, cfg.KVBudgetGiB)
			engines[i] = comboEnv{eng: eng, budget: budget}
		}
		if buildErrs[i] = err; err != nil {
			failed++
		}
	}
	if failed == len(combos) {
		return nil, joinBuildErrors(buildErrs)
	}

	perCombo := axes.perCombo()
	nRep := len(axes.replicas)
	nMB := len(axes.maxBatches)
	nShare := len(axes.shares)
	nBurst := len(axes.bursts)
	nMix := len(axes.mixes)
	nRate := len(axes.rates)
	out := make([]ServeSweepPoint, len(combos)*perCombo)
	_ = pool.ForEach(len(out), grid.Parallelism, func(i int) error {
		combo := i / perCombo
		rest := i % perCombo
		pol := axes.policies[rest/(nRep*nMB*nShare*nBurst*nMix*nRate)]
		rest %= nRep * nMB * nShare * nBurst * nMix * nRate
		reps := axes.replicas[rest/(nMB*nShare*nBurst*nMix*nRate)]
		rest %= nMB * nShare * nBurst * nMix * nRate
		maxBatch := axes.maxBatches[rest/(nShare*nBurst*nMix*nRate)]
		rest %= nShare * nBurst * nMix * nRate
		shareIdx := rest / (nBurst * nMix * nRate)
		rest %= nBurst * nMix * nRate
		burstIdx := rest / (nMix * nRate)
		rest %= nMix * nRate
		mixIdx := rest / nRate
		rateIdx := rest % nRate
		c := combos[combo]
		p := ServeSweepPoint{
			Device: c.Device, Framework: c.Framework,
			Scheme:   Scheme{Weights: c.Weights, KV: c.KV},
			Policy:   pol,
			Replicas: reps, MaxBatch: maxBatch,
			Mix:         axes.mixes[mixIdx],
			PrefixShare: axes.shares[shareIdx],
			Rate:        axes.rates[rateIdx],
		}
		if axes.chat {
			p.BurstFactor = axes.bursts[burstIdx]
		}
		if buildErrs[combo] != nil {
			p.Err = buildErrs[combo]
		} else {
			// Points sharing a trace-shape position share one arrival
			// process; distinct positions draw from isolated seed
			// streams. On plain Poisson grids this degenerates to the
			// original per-rate seeding, keeping existing sweeps
			// byte-identical.
			traceIdx := ((shareIdx*nBurst+burstIdx)*nMix+mixIdx)*nRate + rateIdx
			runServePoint(&p, c, engines[combo].eng, engines[combo].budget, cfg, axes, traceIdx)
		}
		if cfg.LeanStats || cfg.StreamStats {
			p.Stats.Requests = nil
		}
		out[i] = p
		return nil
	})
	return out, nil
}

// pointTrace generates one grid point's private arrival trace from
// its resolved shape (p.BurstFactor, p.Mix, p.Rate): the base
// config's plain Poisson process on shape-less grids, ChatTrace's
// bursty heavy-tailed traffic when a trace axis is set. A shape
// ChatTrace rejects (medians below its floor) is the caller's
// per-point error.
func (a serveAxes) pointTrace(cfg ServeSweepConfig, p *ServeSweepPoint, traceIdx int) ([]workload.Request, error) {
	if len(a.replay) > 0 {
		// Replay grids rescale the one recorded trace to the point's
		// rate; scaling to the native rate aliases the shared slice
		// (the kernel never mutates a sorted trace), so concurrent
		// points are safe.
		return workload.ScaleToRate(a.replay, p.Rate)
	}
	seed := cfg.Seed + uint64(traceIdx)
	if !a.chat {
		return workload.PoissonTrace(workload.TraceConfig{
			Seed: seed, Requests: cfg.Requests, RatePerSec: p.Rate,
			InputMean: p.Mix.Input, OutputMean: p.Mix.Output, LengthJitter: 0.3,
		})
	}
	// A shared-prefix point carves the prefix out of the prompt
	// median: PrefixTokens of every prompt are the fleet-wide system
	// prompt, and the lognormal draws model only the per-request
	// suffix — total prompt medians stay comparable across the
	// PrefixShares axis. A share leaving the suffix median under
	// ChatTrace's floor fails here, per point.
	ptoks := prefixTokensFor(p.PrefixShare, p.Mix.Input)
	sigma := cfg.Sigma
	if sigma == 0 {
		sigma = 0.7
	}
	return workload.ChatTrace(workload.ChatTraceConfig{
		Seed: seed, Requests: cfg.Requests, RatePerSec: p.Rate,
		BurstFactor: p.BurstFactor, BurstLenS: cfg.BurstLenS,
		InputMedian: p.Mix.Input - ptoks, OutputMedian: p.Mix.Output,
		PrefixTokens: ptoks,
		Sigma:        sigma, MaxLen: 8192,
	})
}

// prefixTokensFor resolves a point's shared-prefix length: the share
// of its median prompt, in whole tokens. Zero share — including every
// point of a grid without the PrefixShares axis — is zero tokens.
func prefixTokensFor(share float64, inputMedian int) int {
	return int(share * float64(inputMedian))
}

// kernelScratch recycles kernel arenas (station shells, free lists,
// event buffers — see des.Scratch) across the points of a sweep:
// each point checks one out for its run instead of re-paying kernel
// warm-up allocations a few thousand times per grid. Scratch contents
// never influence results (stations are fully reset on reuse), so
// swept grids stay byte-identical — the serial==parallel sweep
// determinism tests exercise exactly this path.
var kernelScratch = sync.Pool{New: func() any { return new(des.Scratch) }}

// runServePoint runs one grid point's simulation, recording failures
// in p.Err. Each point owns its trace and allocators; the engine is
// shared (engines are immutable and concurrency-safe). Every fixed
// fleet — continuous or static — runs on the cluster kernel, so the
// full Policies × Replicas grid is served without per-point gaps.
func runServePoint(p *ServeSweepPoint, sys System, eng *engine.Engine, budget float64,
	cfg ServeSweepConfig, axes serveAxes, traceIdx int) {
	trace, err := axes.pointTrace(cfg, p, traceIdx)
	if err != nil {
		p.Err = err
		return
	}
	scratch := kernelScratch.Get().(*des.Scratch)
	defer kernelScratch.Put(scratch)
	// Shared-prefix points get tiered prefix-sharing allocators on
	// every replica regardless of routing policy, so the Policies axis
	// compares rr/ll/prefix routing on identical caches. Zero-share
	// points build the exact allocator non-prefix sweeps always had.
	newAlloc := func() (kvcache.Allocator, error) { return servingAlloc(sys, budget) }
	if ptoks := prefixTokensFor(p.PrefixShare, p.Mix.Input); ptoks > 0 {
		hostBudget := cfg.HostKVGiB * (1 << 30)
		if hostBudget == 0 {
			hostBudget = budget
		}
		newAlloc = func() (kvcache.Allocator, error) {
			return servingPrefixAlloc(sys, budget, hostBudget, ptoks)
		}
	}
	if p.Policy.Autoscale {
		upOut := cfg.UpOutstanding
		if upOut == 0 {
			upOut = 2 * p.MaxBatch
		}
		downIdle, cooldown := cfg.DownIdleS, cfg.CooldownS
		if downIdle == 0 {
			downIdle = 3
		}
		if cooldown == 0 {
			cooldown = 1
		}
		factory := func() (cluster.Replica, error) {
			alloc, err := newAlloc()
			if err != nil {
				return cluster.Replica{}, err
			}
			return cluster.Replica{Engine: eng, Alloc: alloc}, nil
		}
		auto, err := cluster.ServeAutoscale(
			cluster.Config{
				MaxBatch: p.MaxBatch, Static: p.Policy.Static,
				ChunkedPrefill: cfg.ChunkedPrefill, PrefillChunk: cfg.PrefillChunk,
				Streaming: cfg.StreamStats, Scratch: scratch,
			},
			cluster.Autoscale{
				Factory: factory, Min: 1, Max: p.Replicas,
				UpOutstanding: upOut, DownIdleS: downIdle, CooldownS: cooldown,
			}, trace)
		if err != nil {
			p.Err = err
			return
		}
		p.Stats = auto.Stats.Stats
		p.PerReplica = auto.PerReplica
		p.PeakReplicas = auto.PeakReplicas
		return
	}
	ccfg := cluster.Config{
		Policy: routePolicy(p.Policy), MaxBatch: p.MaxBatch,
		Static:         p.Policy.Static,
		ChunkedPrefill: cfg.ChunkedPrefill, PrefillChunk: cfg.PrefillChunk,
		Streaming: cfg.StreamStats, Scratch: scratch,
	}
	if p.Policy.Disagg() {
		// The policy's pool split is a ratio: the point's fleet must
		// divide evenly into PrefillPool+DecodePool shares. Priced
		// before allocators are built — the divisibility failure is the
		// common user error.
		share := p.Policy.PrefillPool + p.Policy.DecodePool
		if p.Replicas%share != 0 {
			p.Err = fmt.Errorf("llmbench: disagg split %d:%d needs a fleet divisible by %d (got %d replicas)",
				p.Policy.PrefillPool, p.Policy.DecodePool, share, p.Replicas)
			return
		}
		tc, err := transferCost(sys)
		if err != nil {
			p.Err = err
			return
		}
		ccfg.PrefillReplicas = p.Replicas / share * p.Policy.PrefillPool
		ccfg.Transfer = tc
	}
	replicas := make([]cluster.Replica, p.Replicas)
	for i := range replicas {
		alloc, err := newAlloc()
		if err != nil {
			p.Err = err
			return
		}
		replicas[i] = cluster.Replica{Engine: eng, Alloc: alloc}
	}
	ccfg.Replicas = replicas
	st, err := cluster.Serve(ccfg, trace)
	if err != nil {
		p.Err = err
		return
	}
	p.Stats = st.Stats
	p.PerReplica = st.PerReplica
}

func routePolicy(p ServePolicy) cluster.Policy {
	switch {
	case p.Prefix:
		return cluster.Prefix
	case p.LeastLoaded:
		return cluster.LeastLoaded
	}
	return cluster.RoundRobin
}

// KneePoint reports one serving configuration's knee: the highest
// swept arrival rate whose P99 latency met the SLO.
type KneePoint struct {
	Device    string
	Framework string
	Scheme    Scheme
	Policy    ServePolicy
	Replicas  int
	MaxBatch  int
	// BurstFactor, Mix, and PrefixShare identify the trace shape the
	// knee was measured under (see ServeSweepPoint).
	BurstFactor float64
	Mix         LengthMix
	PrefixShare float64

	// Met reports whether any swept rate satisfied the SLO; Rate and
	// Stats then describe the highest such rate.
	Met   bool
	Rate  float64
	Stats ServeStats
}

// Knees folds a ServeSweep result into per-configuration capacity
// knees: for every distinct (device, framework, scheme, policy,
// replicas, max batch, trace shape) configuration, the highest swept
// rate whose P99 latency is at most sloP99. Configurations appear in
// grid order; points with Err or non-finite stats never qualify —
// `NaN > slo` is false, so an unchecked degenerate point would count
// as SLO-compliant — but their configuration still appears (with Met
// false) so capacity gaps stay visible. A NaN, infinite, or
// non-positive SLO is rejected.
func Knees(pts []ServeSweepPoint, sloP99 float64) ([]KneePoint, error) {
	if !(sloP99 > 0) || math.IsInf(sloP99, 0) {
		return nil, fmt.Errorf("llmbench: P99 SLO %v must be positive and finite", sloP99)
	}
	type key struct {
		dev, fw  string
		scheme   Scheme
		policy   ServePolicy
		reps, mb int
		burst    float64
		mix      LengthMix
		share    float64
	}
	index := make(map[key]int)
	var out []KneePoint
	for _, p := range pts {
		k := key{p.Device, p.Framework, p.Scheme, p.Policy, p.Replicas, p.MaxBatch, p.BurstFactor, p.Mix, p.PrefixShare}
		i, ok := index[k]
		if !ok {
			i = len(out)
			index[k] = i
			out = append(out, KneePoint{
				Device: p.Device, Framework: p.Framework, Scheme: p.Scheme,
				Policy: p.Policy, Replicas: p.Replicas, MaxBatch: p.MaxBatch,
				BurstFactor: p.BurstFactor, Mix: p.Mix, PrefixShare: p.PrefixShare,
			})
		}
		if p.Err != nil || !finiteKneeStats(p.Stats) || p.Stats.P99Latency > sloP99 {
			continue
		}
		if !out[i].Met || p.Rate > out[i].Rate {
			out[i].Met = true
			out[i].Rate = p.Rate
			out[i].Stats = p.Stats
		}
	}
	return out, nil
}

// finiteKneeStats reports whether a point's SLO-relevant aggregates
// are finite — the guard that keeps degenerate points (never summed
// into stats, or overflowed) from qualifying as capacity knees.
func finiteKneeStats(s ServeStats) bool {
	return !math.IsNaN(s.P99Latency) && !math.IsInf(s.P99Latency, 0) &&
		!math.IsNaN(s.Throughput) && !math.IsInf(s.Throughput, 0)
}

// ServePointTrace synthesizes the arrival trace of a one-position
// serving grid — the trace every point of that sweep would run — so
// it can be recorded (WriteTrace) and later replayed byte-identically
// through any policy, replica, and batching configuration
// (ServeGrid.Trace). The grid must pin a single trace-shape position:
// exactly one rate and at most one burst factor and length mix;
// grids spanning several shapes have no single trace to record.
func ServePointTrace(cfg ServeSweepConfig, grid ServeGrid) ([]TraceRequest, error) {
	if len(grid.Trace) > 0 {
		return nil, errors.New("llmbench: grid already replays a trace; nothing to record")
	}
	axes, err := resolveServeAxes(cfg, grid)
	if err != nil {
		return nil, err
	}
	if n := len(axes.rates) * len(axes.bursts) * len(axes.mixes) * len(axes.shares); n != 1 {
		return nil, fmt.Errorf("llmbench: grid spans %d trace-shape positions (rates × bursts × mixes × prefix shares); recording needs exactly 1", n)
	}
	p := ServeSweepPoint{Rate: axes.rates[0], Mix: axes.mixes[0], PrefixShare: axes.shares[0]}
	if axes.chat {
		p.BurstFactor = axes.bursts[0]
	}
	return axes.pointTrace(cfg, &p, 0)
}

package engine

// Range pricing: every top-level metric this package produces is a sum
// of per-token decode-step costs, and for an immutable engine a step's
// cost depends only on (batch, context). This file prices whole runs
// of consecutive steps in one call — engine.Run's decode loop, the
// serving scheduler's coalesced iterations (internal/sched), and the
// cluster simulator (internal/cluster) all sit on top of it — backed
// by lock-free memo tables so each distinct (batch, ctx) pair is
// evaluated once per engine lifetime and every warm read is a handful
// of atomic loads.
//
// Invariant: the aggregates are summed in step order (ctxStart,
// ctxStart+1, …), exactly the order the step-by-step loops used, so
// range-priced results are byte-identical to stepped results —
// floating-point summation order is part of the contract, and the
// equivalence tests in this package, internal/sched, and
// internal/cluster guard it. The prefix aggregates carried by each
// anchored vector (see aggVec) are accumulated left-to-right in that
// same order, which is what lets DecodeRangeSeconds answer a warm
// range query with one O(1) prefix read instead of an O(steps) walk.
//
// Concurrency: readers never lock. The memo tables live behind atomic
// pointers (costGrid); writers serialise on the engine's small build
// mutex, and vectors grow in place by filling cells past the published
// count and release-storing the new count (stepVec/aggVec). Step costs
// are pure functions of the immutable configuration, so racing
// builders compute identical values and the tables stay deterministic
// no matter which racer's store lands last.

import (
	"errors"
	"fmt"
	"sync/atomic"

	"llmbench/internal/parallel"
	"llmbench/internal/pool"
	"llmbench/internal/quant"
	"llmbench/internal/roofline"
	"llmbench/internal/workload"
)

// --- lock-free memo grid -------------------------------------------------

// costGrid is a two-level lock-free memo table indexed by two small
// non-negative integers (batch-1, ctx-1). Reads are pure atomic loads;
// writes — including geometric growth of either level — happen under
// the owning engine's build mutex and publish fresh slices through
// atomic stores, so a reader either sees the old snapshot or the new
// one, never a partially-updated slot.
type costGrid[T any] struct {
	rows atomic.Pointer[[]atomic.Pointer[costRow[T]]]
}

type costRow[T any] struct {
	cells atomic.Pointer[[]atomic.Pointer[T]]
}

// get returns the entry at (r, c), or nil if it has not been built.
// Safe for concurrent use with no locking.
func (g *costGrid[T]) get(r, c int) *T {
	rows := g.rows.Load()
	if rows == nil || r >= len(*rows) {
		return nil
	}
	row := (*rows)[r].Load()
	if row == nil {
		return nil
	}
	cells := row.cells.Load()
	if cells == nil || c >= len(*cells) {
		return nil
	}
	return (*cells)[c].Load()
}

// put stores v at (r, c), growing either level geometrically. Callers
// must hold the owning engine's build mutex; concurrent readers are
// fine — growth copies the old slots into a fresh slice and publishes
// it atomically before the new entry lands.
func (g *costGrid[T]) put(r, c int, v *T) {
	rows := g.rows.Load()
	if rows == nil || r >= len(*rows) {
		n := r + 1
		if rows != nil && 2*len(*rows) > n {
			n = 2 * len(*rows)
		}
		grown := make([]atomic.Pointer[costRow[T]], n)
		if rows != nil {
			for i := range *rows {
				grown[i].Store((*rows)[i].Load())
			}
		}
		g.rows.Store(&grown)
		rows = &grown
	}
	row := (*rows)[r].Load()
	if row == nil {
		row = &costRow[T]{}
		(*rows)[r].Store(row)
	}
	cells := row.cells.Load()
	if cells == nil || c >= len(*cells) {
		n := c + 1
		if cells != nil && 2*len(*cells) > n {
			n = 2 * len(*cells)
		}
		grown := make([]atomic.Pointer[T], n)
		if cells != nil {
			for i := range *cells {
				grown[i].Store((*cells)[i].Load())
			}
		}
		row.cells.Store(&grown)
		cells = &grown
	}
	(*cells)[c].Store(v)
}

// --- per-step memo -------------------------------------------------------

// memoStep is the cached outcome of one decode step: everything Run
// and the serving simulators consume, reduced from the full roofline
// result.
type memoStep struct {
	seconds float64
	balance float64 // powerBalance of the step's roofline outcome
	bound   roofline.Bound
}

// stepCost returns the memoised price of the decode step at (batch,
// ctx), evaluating it on first use. Warm reads are lock-free.
// Concurrent callers may race to fill a missing entry; the computation
// is pure, so every racer stores the identical value and the table
// stays deterministic.
func (e *Engine) stepCost(batch, ctx int) (memoStep, error) {
	if c := e.steps.get(batch-1, ctx-1); c != nil {
		return *c, nil
	}
	st, err := e.decodeStep(workload.Spec{Batch: batch, Input: 1, Output: 1}, ctx)
	if err != nil {
		return memoStep{}, err
	}
	c := &memoStep{seconds: st.Seconds, balance: powerBalance(st), bound: st.Bound}
	e.buildMu.Lock()
	if cur := e.steps.get(batch-1, ctx-1); cur != nil {
		c = cur // a racer already stored the identical pure value
	} else {
		e.steps.put(batch-1, ctx-1, c)
	}
	e.buildMu.Unlock()
	return *c, nil
}

// StepCost is the memoised outcome of one decode step, the unit the
// serving simulators advance by when they coalesce iterations.
type StepCost struct {
	Seconds float64
	Bound   roofline.Bound
}

// DecodeStepCost returns the memoised cost of one decode step at the
// given batch size and context length.
func (e *Engine) DecodeStepCost(batch, ctx int) (StepCost, error) {
	if batch < 1 || ctx < 1 {
		return StepCost{}, errors.New("engine: non-positive batch or context")
	}
	c, err := e.stepCost(batch, ctx)
	if err != nil {
		return StepCost{}, err
	}
	return StepCost{Seconds: c.seconds, Bound: c.bound}, nil
}

// --- per-batch master step vectors ---------------------------------------

// stepVec is one generation of a batch's master step-cost vector:
// seconds[i] is the cost of the decode step at context base+i, and n
// is the published cell count, so contexts [base, base+n) are covered.
// The array is allocated at full capacity (len == cap) and filled
// left-to-right; cells below n are immutable, cells at or above n are
// written only under the engine's build mutex and become visible
// through the release-acquire pair on n. Growing downward (a request
// below base) or past capacity publishes a fresh generation; old
// handles keep reading their generation unchanged.
//
// One master per batch — rather than one vector per (batch, ctxStart)
// anchor — is what keeps a million-request run's allocations flat:
// per-step seconds are pure functions of (batch, ctx), so every window
// at every anchor is a subslice of the same vector, and steady-state
// growth writes cells in place and bumps n.
type stepVec struct {
	base    int // context of cell 0; immutable per generation
	n       atomic.Int64
	seconds []float64
}

// fillMaster computes the cells for contexts [lo, hi] of v. Callers
// hold the build mutex. Warm per-step memo cells are reused; cold
// contexts are priced with decodeStep directly and NOT inserted into
// the per-step grid — the master is itself the memo for them, and
// skipping the grid keeps a long fill from allocating one grid cell
// per context.
func (e *Engine) fillMaster(v *stepVec, batch, lo, hi int) error {
	for ctx := lo; ctx <= hi; ctx++ {
		if c := e.steps.get(batch-1, ctx-1); c != nil {
			v.seconds[ctx-v.base] = c.seconds
			continue
		}
		st, err := e.decodeStep(workload.Spec{Batch: batch, Input: 1, Output: 1}, ctx)
		if err != nil {
			return err
		}
		v.seconds[ctx-v.base] = st.Seconds
	}
	return nil
}

// masterFor returns the batch's master vector covering contexts
// [lo, hi], building or extending it on first use. Warm calls are
// lock-free: one grid read, one atomic length check.
func (e *Engine) masterFor(batch, lo, hi int) (*stepVec, error) {
	if v := e.vecs.get(batch-1, 0); v != nil && lo >= v.base && hi < v.base+int(v.n.Load()) {
		return v, nil
	}
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	latest := e.vecs.get(batch-1, 0)
	if latest == nil {
		c := hi - lo + 1
		if c < 64 {
			c = 64
		}
		v := &stepVec{base: lo, seconds: make([]float64, c)}
		if err := e.fillMaster(v, batch, lo, hi); err != nil {
			return nil, err
		}
		v.n.Store(int64(hi - lo + 1))
		e.vecs.put(batch-1, 0, v)
		return v, nil
	}
	base, n := latest.base, int(latest.n.Load())
	if lo >= base && hi < base+n {
		return latest, nil // a racer already covered the band
	}
	newBase, top := base, base+n // covered band becomes [newBase, top)
	if lo < newBase {
		newBase = lo
	}
	if hi+1 > top {
		top = hi + 1
	}
	if newBase != base || top-newBase > len(latest.seconds) {
		// Re-base and/or regrow: publish a fresh, fully-filled
		// generation. Geometric capacity keeps this O(log band) per
		// batch lifetime.
		c := top - newBase
		if 2*len(latest.seconds) > c {
			c = 2 * len(latest.seconds)
		}
		v := &stepVec{base: newBase, seconds: make([]float64, c)}
		copy(v.seconds[base-newBase:], latest.seconds[:n])
		if err := e.fillMaster(v, batch, newBase, base-1); err != nil {
			return nil, err
		}
		if err := e.fillMaster(v, batch, base+n, top-1); err != nil {
			return nil, err
		}
		v.n.Store(int64(top - newBase))
		e.vecs.put(batch-1, 0, v)
		return v, nil
	}
	// Upward growth within capacity: write the new cells in place,
	// then publish the count — the steady-state path, zero allocations.
	if err := e.fillMaster(latest, batch, base+n, top-1); err != nil {
		return nil, err
	}
	latest.n.Store(int64(top - newBase))
	return latest, nil
}

// --- per-anchor prefix aggregates ----------------------------------------

// stepAgg carries the running prefix aggregates of one anchored range
// cell, accumulated left-to-right in step order: sec is Σ seconds of
// steps 0..i from the anchor, bal Σ balance·seconds, max the running
// max, bound the binding resource of step i. Aggregates cannot live on
// the per-batch master — a prefix difference would round differently
// than a direct sum — so each (batch, ctxStart) anchor folds its own,
// byte-identical to the stepped walk from that anchor.
type stepAgg struct {
	sec, bal, max float64
	bound         roofline.Bound
}

// aggVec is the memoised prefix-aggregate vector of one (batch,
// ctxStart) anchor, with the same capacity-plus-published-count
// discipline as stepVec.
type aggVec struct {
	n    atomic.Int64
	aggs []stepAgg
}

// aggVecFor returns the anchor's aggregate vector with at least steps
// published cells, building or extending it on first use. Warm calls
// are lock-free.
func (e *Engine) aggVecFor(batch, ctxStart, steps int) (*aggVec, error) {
	cur := e.aggs.get(batch-1, ctxStart-1)
	if cur != nil && int(cur.n.Load()) >= steps {
		return cur, nil
	}
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	latest := e.aggs.get(batch-1, ctxStart-1)
	n := 0
	if latest != nil {
		n = int(latest.n.Load())
		if n >= steps {
			return latest, nil // a racer already grew this anchor far enough
		}
	}
	if latest == nil || len(latest.aggs) < steps {
		c := steps
		if latest != nil && 2*len(latest.aggs) > c {
			c = 2 * len(latest.aggs)
		}
		grown := &aggVec{aggs: make([]stepAgg, c)}
		if latest != nil {
			copy(grown.aggs, latest.aggs[:n])
		}
		grown.n.Store(int64(n))
		e.aggs.put(batch-1, ctxStart-1, grown)
		latest = grown
	}
	// Continue the running aggregates exactly as the stepped loop
	// would: start from the accumulator values of the last published
	// cell and fold each new step in left-to-right order. Warm
	// per-step memo cells are reused; cold contexts are priced with
	// decodeStep directly and NOT inserted into the per-step grid —
	// the fold is pure either way, and skipping the grid keeps a long
	// range from allocating one grid cell per step.
	var sec, bal, max float64
	if n > 0 {
		a := latest.aggs[n-1]
		sec, bal, max = a.sec, a.bal, a.max
	}
	for i := n; i < steps; i++ {
		var c memoStep
		if cell := e.steps.get(batch-1, ctxStart+i-1); cell != nil {
			c = *cell
		} else {
			st, err := e.decodeStep(workload.Spec{Batch: batch, Input: 1, Output: 1}, ctxStart+i)
			if err != nil {
				return nil, err
			}
			c = memoStep{seconds: st.Seconds, balance: powerBalance(st), bound: st.Bound}
		}
		sec += c.seconds
		bal += c.balance * c.seconds
		if c.seconds > max {
			max = c.seconds
		}
		latest.aggs[i] = stepAgg{sec: sec, bal: bal, max: max, bound: c.bound}
	}
	latest.n.Store(int64(steps))
	return latest, nil
}

// RangeStats aggregates a run of consecutive decode steps at constant
// batch: steps at contexts ctxStart, ctxStart+1, …, ctxStart+steps-1,
// summed in that order.
type RangeStats struct {
	// Seconds is Σ step seconds.
	Seconds float64
	// BalanceSeconds is Σ powerBalance(step) · step seconds, the
	// time-weighted balance accumulator of the power model.
	BalanceSeconds float64
	// MaxStepSeconds is the longest single step in the range.
	MaxStepSeconds float64
	// LastBound is the binding resource of the final step.
	LastBound roofline.Bound
}

// DecodeRangeSeconds prices steps consecutive decode iterations of a
// batch whose context starts at ctxStart. steps may be 0 (an empty
// range). The result is one O(1) prefix read of the memoised vector at
// (batch, ctxStart): the aggregates were accumulated in step order
// when the vector was built, so the result is byte-identical to
// calling DecodeStepCost step by step and accumulating.
func (e *Engine) DecodeRangeSeconds(batch, ctxStart, steps int) (RangeStats, error) {
	if batch < 1 || ctxStart < 1 {
		return RangeStats{}, errors.New("engine: non-positive batch or context")
	}
	if steps < 0 {
		return RangeStats{}, fmt.Errorf("engine: negative step count %d", steps)
	}
	if steps == 0 {
		return RangeStats{}, nil
	}
	v, err := e.aggVecFor(batch, ctxStart, steps)
	if err != nil {
		return RangeStats{}, err
	}
	a := v.aggs[steps-1]
	return RangeStats{
		Seconds:        a.sec,
		BalanceSeconds: a.bal,
		MaxStepSeconds: a.max,
		LastBound:      a.bound,
	}, nil
}

// DecodeStepCosts returns the per-step seconds of steps consecutive
// decode iterations of a batch whose context starts at ctxStart: entry
// i is the cost of the step at context ctxStart+i, exactly the value
// DecodeStepCost(batch, ctxStart+i) returns. Slices are memoised per
// (batch, ctxStart), extended copy-on-write when a longer run is
// requested, and shared between callers — the result must be treated
// as immutable.
//
// This is the pricing primitive of the serving kernel (internal/des):
// a coalesced window walks one cached slice, and a warm call takes no
// lock at all — which is what keeps window pricing O(1) per event in
// steady state.
func (e *Engine) DecodeStepCosts(batch, ctxStart, steps int) ([]float64, error) {
	if batch < 1 || ctxStart < 1 {
		return nil, errors.New("engine: non-positive batch or context")
	}
	if steps < 0 {
		return nil, fmt.Errorf("engine: negative step count %d", steps)
	}
	if steps == 0 {
		return nil, nil
	}
	v, err := e.masterFor(batch, ctxStart, ctxStart+steps-1)
	if err != nil {
		return nil, err
	}
	off := ctxStart - v.base
	return v.seconds[off : off+steps], nil
}

// StepVec is a shared view of a batch's master step-cost vector,
// anchored at the ctxStart it was requested for — the per-station
// pricing handle of the serving kernel caches one of these so its
// steady-state window advance touches no engine state at all. The
// view's length only ever grows (any station may extend the master in
// place); cells below the length are immutable.
type StepVec struct {
	vec *stepVec
	off int // anchor's offset into the generation's cells
}

// Len reports how many steps the view currently covers.
func (v StepVec) Len() int {
	if v.vec == nil {
		return 0
	}
	n := int(v.vec.n.Load()) - v.off
	if n < 0 {
		n = 0
	}
	return n
}

// Seconds returns the view's per-step costs: entry i is the cost of
// the decode step at context ctxStart+i. The slice is shared and must
// be treated as immutable.
func (v StepVec) Seconds() []float64 {
	if v.vec == nil {
		return nil
	}
	return v.vec.seconds[v.off:v.vec.n.Load()]
}

// DecodeStepVec returns a view of the batch's master step-cost vector
// anchored at ctxStart, grown to cover at least steps entries. Warm
// calls are lock-free.
func (e *Engine) DecodeStepVec(batch, ctxStart, steps int) (StepVec, error) {
	if batch < 1 || ctxStart < 1 {
		return StepVec{}, errors.New("engine: non-positive batch or context")
	}
	if steps < 0 {
		return StepVec{}, fmt.Errorf("engine: negative step count %d", steps)
	}
	if steps == 0 {
		steps = 1 // a view handle always covers at least one step
	}
	v, err := e.masterFor(batch, ctxStart, ctxStart+steps-1)
	if err != nil {
		return StepVec{}, err
	}
	return StepVec{vec: v, off: ctxStart - v.base}, nil
}

// --- process-wide engine cache -------------------------------------------

// cache is the one engine cache in the process: the root llmbench
// package (Run, Sweep) and internal/experiments both build through it,
// so a figure and an ad-hoc sweep of the same system share one engine
// and one step-cost table.
var cache pool.Cache[Config, *Engine]

// cacheKey maps equivalent Config spellings to one entry, mirroring
// the normalisation New applies (zero Plan means single-device, zero
// Scheme means fp16/fp16).
func cacheKey(cfg Config) Config {
	if cfg.Plan == (parallel.Plan{}) {
		cfg.Plan = parallel.Single
	}
	if cfg.Scheme == (quant.Scheme{}) {
		cfg.Scheme = quant.FP16
	}
	return cfg
}

// Cached returns the shared engine for cfg, building it on first use.
// Component pointers are part of the key, so catalog-backed configs
// (internal/model, internal/hw, internal/framework getters return
// canonical pointers) dedupe across every caller in the process; use
// New directly for ad-hoc private instances.
func Cached(cfg Config) (*Engine, error) {
	key := cacheKey(cfg)
	return cache.Get(key, func() (*Engine, error) { return New(key) })
}

// CachedCount reports how many engines the process-wide cache holds.
func CachedCount() int { return cache.Len() }

package engine

// Range pricing: every top-level metric this package produces is a sum
// of per-token decode-step costs, and for an immutable engine a step's
// cost depends only on (batch, context). This file prices whole runs
// of consecutive steps in one call — engine.Run's decode loop, the
// serving scheduler's coalesced iterations (internal/sched), and the
// cluster simulator (internal/cluster) all sit on top of it — backed
// by a concurrency-safe memo table so each distinct (batch, ctx) pair
// is evaluated once per engine lifetime.
//
// Invariant: the aggregates are summed in step order (ctxStart,
// ctxStart+1, …), exactly the order the step-by-step loops used, so
// range-priced results are byte-identical to stepped results —
// floating-point summation order is part of the contract, and the
// equivalence tests in this package, internal/sched, and
// internal/cluster guard it.

import (
	"errors"
	"fmt"

	"llmbench/internal/parallel"
	"llmbench/internal/pool"
	"llmbench/internal/quant"
	"llmbench/internal/roofline"
	"llmbench/internal/workload"
)

// stepKey identifies one decode step's price.
type stepKey struct{ batch, ctx int }

// memoStep is the cached outcome of one decode step: everything Run
// and the serving simulators consume, reduced from the full roofline
// result.
type memoStep struct {
	seconds float64
	balance float64 // powerBalance of the step's roofline outcome
	bound   roofline.Bound
}

// stepCost returns the memoised price of the decode step at (batch,
// ctx), evaluating it on first use. Concurrent callers may race to
// fill a missing entry; the computation is pure, so every racer stores
// the identical value and the table stays deterministic.
func (e *Engine) stepCost(batch, ctx int) (memoStep, error) {
	k := stepKey{batch, ctx}
	e.mu.RLock()
	c, ok := e.steps[k]
	e.mu.RUnlock()
	if ok {
		return c, nil
	}
	st, err := e.decodeStep(workload.Spec{Batch: batch, Input: 1, Output: 1}, ctx)
	if err != nil {
		return memoStep{}, err
	}
	c = memoStep{seconds: st.Seconds, balance: powerBalance(st), bound: st.Bound}
	e.mu.Lock()
	e.steps[k] = c
	e.mu.Unlock()
	return c, nil
}

// StepCost is the memoised outcome of one decode step, the unit the
// serving simulators advance by when they coalesce iterations.
type StepCost struct {
	Seconds float64
	Bound   roofline.Bound
}

// DecodeStepCost returns the memoised cost of one decode step at the
// given batch size and context length.
func (e *Engine) DecodeStepCost(batch, ctx int) (StepCost, error) {
	if batch < 1 || ctx < 1 {
		return StepCost{}, errors.New("engine: non-positive batch or context")
	}
	c, err := e.stepCost(batch, ctx)
	if err != nil {
		return StepCost{}, err
	}
	return StepCost{Seconds: c.seconds, Bound: c.bound}, nil
}

// RangeStats aggregates a run of consecutive decode steps at constant
// batch: steps at contexts ctxStart, ctxStart+1, …, ctxStart+steps-1,
// summed in that order.
type RangeStats struct {
	// Seconds is Σ step seconds.
	Seconds float64
	// BalanceSeconds is Σ powerBalance(step) · step seconds, the
	// time-weighted balance accumulator of the power model.
	BalanceSeconds float64
	// MaxStepSeconds is the longest single step in the range.
	MaxStepSeconds float64
	// LastBound is the binding resource of the final step.
	LastBound roofline.Bound
}

// rangeKey identifies one priced range.
type rangeKey struct{ batch, ctxStart, steps int }

// DecodeRangeSeconds prices steps consecutive decode iterations of a
// batch whose context starts at ctxStart, in one pass over the
// memoised step table. steps may be 0 (an empty range). The aggregates
// are summed in step order, so the result is byte-identical to calling
// DecodeStepCost step by step and accumulating.
func (e *Engine) DecodeRangeSeconds(batch, ctxStart, steps int) (RangeStats, error) {
	if batch < 1 || ctxStart < 1 {
		return RangeStats{}, errors.New("engine: non-positive batch or context")
	}
	if steps < 0 {
		return RangeStats{}, fmt.Errorf("engine: negative step count %d", steps)
	}
	if steps == 0 {
		return RangeStats{}, nil
	}
	k := rangeKey{batch, ctxStart, steps}
	e.mu.RLock()
	rs, ok := e.ranges[k]
	e.mu.RUnlock()
	if ok {
		return rs, nil
	}
	for i := 0; i < steps; i++ {
		c, err := e.stepCost(batch, ctxStart+i)
		if err != nil {
			return RangeStats{}, err
		}
		rs.Seconds += c.seconds
		rs.BalanceSeconds += c.balance * c.seconds
		if c.seconds > rs.MaxStepSeconds {
			rs.MaxStepSeconds = c.seconds
		}
		rs.LastBound = c.bound
	}
	e.mu.Lock()
	e.ranges[k] = rs
	e.mu.Unlock()
	return rs, nil
}

// vecKey identifies one memoised step-cost vector by its start; the
// vector grows to the longest request seen, so the map's cardinality
// is bounded by distinct (batch, ctxStart) pairs — the same class as
// the per-step memo — rather than by every (start, length) pair a
// serving simulation happens to ask for.
type vecKey struct{ batch, ctxStart int }

// DecodeStepCosts returns the per-step seconds of steps consecutive
// decode iterations of a batch whose context starts at ctxStart: entry
// i is the cost of the step at context ctxStart+i, exactly the value
// DecodeStepCost(batch, ctxStart+i) returns. Slices are memoised per
// (batch, ctxStart), grown in place when a longer run is requested,
// and shared between callers — the result must be treated as
// immutable.
//
// This is the pricing primitive of the serving kernel (internal/des):
// a coalesced window walks one cached slice instead of taking the memo
// lock once per step, which is what keeps window pricing O(1) lookups
// in steady state.
func (e *Engine) DecodeStepCosts(batch, ctxStart, steps int) ([]float64, error) {
	if batch < 1 || ctxStart < 1 {
		return nil, errors.New("engine: non-positive batch or context")
	}
	if steps < 0 {
		return nil, fmt.Errorf("engine: negative step count %d", steps)
	}
	if steps == 0 {
		return nil, nil
	}
	k := vecKey{batch, ctxStart}
	e.mu.RLock()
	vec := e.stepVecs[k]
	e.mu.RUnlock()
	if len(vec) >= steps {
		return vec[:steps], nil
	}
	// Extend: step costs are pure, so racing extenders build
	// identical prefixes and the longest stored vector wins.
	nv := make([]float64, steps)
	copy(nv, vec)
	for i := len(vec); i < steps; i++ {
		c, err := e.stepCost(batch, ctxStart+i)
		if err != nil {
			return nil, err
		}
		nv[i] = c.seconds
	}
	e.mu.Lock()
	if cur := e.stepVecs[k]; len(cur) >= steps {
		nv = cur // a racer stored an equal-or-longer vector
	} else {
		e.stepVecs[k] = nv
	}
	e.mu.Unlock()
	return nv[:steps], nil
}

// --- process-wide engine cache -------------------------------------------

// cache is the one engine cache in the process: the root llmbench
// package (Run, Sweep) and internal/experiments both build through it,
// so a figure and an ad-hoc sweep of the same system share one engine
// and one step-cost table.
var cache pool.Cache[Config, *Engine]

// cacheKey maps equivalent Config spellings to one entry, mirroring
// the normalisation New applies (zero Plan means single-device, zero
// Scheme means fp16/fp16).
func cacheKey(cfg Config) Config {
	if cfg.Plan == (parallel.Plan{}) {
		cfg.Plan = parallel.Single
	}
	if cfg.Scheme == (quant.Scheme{}) {
		cfg.Scheme = quant.FP16
	}
	return cfg
}

// Cached returns the shared engine for cfg, building it on first use.
// Component pointers are part of the key, so catalog-backed configs
// (internal/model, internal/hw, internal/framework getters return
// canonical pointers) dedupe across every caller in the process; use
// New directly for ad-hoc private instances.
func Cached(cfg Config) (*Engine, error) {
	key := cacheKey(cfg)
	return cache.Get(key, func() (*Engine, error) { return New(key) })
}

// CachedCount reports how many engines the process-wide cache holds.
func CachedCount() int { return cache.Len() }

package engine

import (
	"math"
	"testing"

	"llmbench/internal/parallel"
	"llmbench/internal/workload"
)

func TestExplainConsistentWithRun(t *testing.T) {
	// The breakdown's totals must reproduce Run's TTFT and E2E.
	e := mustEngine(t, "LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	spec := workload.Spec{Batch: 16, Input: 1024, Output: 1024}
	res, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := e.Explain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(bd.Prefill.Seconds-res.TTFTSeconds) / res.TTFTSeconds; rel > 1e-9 {
		t.Errorf("prefill breakdown %.6g disagrees with TTFT %.6g", bd.Prefill.Seconds, res.TTFTSeconds)
	}
	wave := float64(bd.Waves) * (bd.Prefill.Seconds + bd.Decode.Seconds)
	if rel := math.Abs(wave-res.E2ESeconds) / res.E2ESeconds; rel > 1e-9 {
		t.Errorf("breakdown total %.6g disagrees with E2E %.6g", wave, res.E2ESeconds)
	}
}

func TestExplainDecodeAttribution(t *testing.T) {
	e := mustEngine(t, "LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	bd, err := e.Explain(workload.Spec{Batch: 64, Input: 1024, Output: 1024})
	if err != nil {
		t.Fatal(err)
	}
	d := bd.Decode
	// Decode at batch 64 / len 1024 is memory bound; the memory wall
	// splits additively into weights + KV read + KV write.
	if !d.MemoryBound {
		t.Error("decode must be memory bound here")
	}
	sum := d.WeightStreamS + d.KVReadS + d.KVWriteS
	if rel := math.Abs(sum-d.MemoryWall) / d.MemoryWall; rel > 1e-9 {
		t.Errorf("memory wall split %.6g != wall %.6g", sum, d.MemoryWall)
	}
	// At this operating point KV traffic is a first-class cost: a
	// significant fraction of the weight stream.
	if d.KVReadS < 0.2*d.WeightStreamS {
		t.Errorf("KV read %.4g implausibly small next to weights %.4g", d.KVReadS, d.WeightStreamS)
	}
	// Prefill is compute bound (the §III-5 asymmetry).
	if bd.Prefill.MemoryBound {
		t.Error("prefill must be compute bound")
	}
}

func TestExplainWaves(t *testing.T) {
	// LLaMA-2-7B at batch 64 / len 1024 exceeds one A100's KV room —
	// the breakdown must expose the wave plan Run uses internally.
	e := mustEngine(t, "LLaMA-2-7B", "A100", "vLLM", parallel.Single)
	bd, err := e.Explain(workload.Spec{Batch: 64, Input: 1024, Output: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Waves < 2 {
		t.Errorf("expected batch waves, got %d", bd.Waves)
	}
	if bd.ConcurrentBatch >= 64 || bd.ConcurrentBatch < 1 {
		t.Errorf("concurrent batch %d out of range", bd.ConcurrentBatch)
	}
	if bd.PeakMemGiB <= 0 || bd.PeakMemGiB > 40 {
		t.Errorf("peak memory %.1f GiB out of range", bd.PeakMemGiB)
	}
}

func TestExplainSambaFlowSetupDominatesTTFT(t *testing.T) {
	e := mustEngine(t, "LLaMA-3-8B", "SN40L", "SambaFlow", parallel.Plan{TP: 8, PP: 1, EP: 1})
	bd, err := e.Explain(workload.Spec{Batch: 16, Input: 1024, Output: 8})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Prefill.SetupS < 0.8*bd.Prefill.Seconds {
		t.Errorf("graph setup %.2fs must dominate SN40L TTFT %.2fs (Fig. 21)",
			bd.Prefill.SetupS, bd.Prefill.Seconds)
	}
}

func TestExplainLogitsPenaltyOnlyForUnfused(t *testing.T) {
	fused := mustEngine(t, "LLaMA-3-8B", "A100", "TRT-LLM", parallel.Single)
	unfused := mustEngine(t, "LLaMA-3-8B", "A100", "DS-MII", parallel.Single)
	spec := workload.Spec{Batch: 64, Input: 128, Output: 128}
	bf, err := fused.Explain(spec)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := unfused.Explain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Decode.LogitsS != 0 {
		t.Error("TRT-LLM must pay no logits penalty")
	}
	if bu.Decode.LogitsS <= 0 {
		t.Error("DS-MII must pay a logits penalty")
	}
}

func TestExplainErrors(t *testing.T) {
	e := mustEngine(t, "LLaMA-2-70B", "A100", "vLLM", parallel.Single)
	if _, err := e.Explain(workload.Spec{Batch: 1, Input: 128, Output: 128}); err == nil {
		t.Error("70B on one A100 must fail to explain too")
	}
	ok := mustEngine(t, "LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	if _, err := ok.Explain(workload.Spec{}); err == nil {
		t.Error("invalid spec must fail")
	}
}

// Package engine is the inference simulator at the heart of the
// reproduction: it combines an LLM architecture (internal/model), an
// accelerator roofline (internal/hw), a framework profile
// (internal/framework), a parallelism plan (internal/parallel), and a
// quantization scheme (internal/quant), and evaluates one benchmark
// point — batch size, input length, output length — into the paper's
// metrics: TTFT, inter-token latency (Eq. 1), end-to-end latency,
// throughput (Eq. 2), and average power.
//
// Prefill is modelled as one compute-heavy pass over the prompt;
// decode as out sequential steps whose weight traffic is
// batch-independent (the source of batch scaling) and whose KV traffic
// grows with context (the source of long-context slowdown). Every
// framework behaviour the paper discusses — GQA kernel quality, paged
// KV block overhead, batched-GEMM limits, pipeline bubbles, dataflow
// graph setup — enters as an explicit term.
//
// # Performance notes
//
// The step-cost memo (rangecost.go) is the pricing hot path of the
// serving kernel (internal/des), and its invariants are load-bearing
// for both speed and the serial==parallel==stepped byte-identity
// contract. Policy layers must not break them:
//
//   - Warm reads never lock. The memo tables live behind atomic
//     pointers; DecodeStepCost, DecodeRangeSeconds, DecodeStepCosts,
//     and DecodeStepVec on a cached key are a handful of atomic loads
//     with zero allocations. Writers serialise on a small build
//     mutex; racing builders compute identical pure values, so the
//     tables are deterministic regardless of interleaving.
//   - Published vector cells are immutable. Per-step seconds are pure
//     functions of (batch, ctx), so one master vector per batch
//     serves every window as a subslice view; it grows in place by
//     filling cells past the published count and release-storing the
//     new count, so a slice returned by DecodeStepCosts/
//     StepVec.Seconds is shared between every caller and must never
//     be written.
//   - Prefix aggregates are summed in step order. Each (batch,
//     ctxStart) anchor carries running Σseconds, Σbalance·seconds,
//     running max, and per-step bounds accumulated left-to-right from
//     its own anchor (never differenced from a shared prefix — that
//     would round differently), and extensions continue the
//     accumulators — so a warm DecodeRangeSeconds is one O(1) prefix
//     read that is byte-identical to the stepped sum. Any change to
//     how the aggregates are folded changes floating-point rounding
//     and breaks the equivalence suites here, in internal/sched, and
//     in internal/cluster.
package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/parallel"
	"llmbench/internal/power"
	"llmbench/internal/quant"
	"llmbench/internal/roofline"
	"llmbench/internal/workload"
)

// usableMemFraction reserves headroom for the runtime, workspace
// buffers and fragmentation; serving stacks never use the full HBM.
const usableMemFraction = 0.88

// eagerPenalty is the kernel-efficiency loss of running without the
// KV cache: the no-cache path falls back to eager (non-graph,
// non-fused) execution, which is how the Fig. 2a ablation was run.
const eagerPenalty = 0.55

// ppSmallGEMMPenalty is the efficiency loss of per-stage GEMMs under
// pipeline parallelism (smaller matrices utilise the device worse);
// together with the fill bubble it reproduces Fig. 5a's TP ≈ 1.94× PP.
const ppSmallGEMMPenalty = 1.1

// ErrOOM marks configurations whose weights + KV cache + activations
// exceed device memory — the paper's Gaudi2 batch-32/64 failures and
// 70B-on-one-A100 exclusions.
var ErrOOM = errors.New("engine: model + KV cache exceed device memory")

// ErrUnsupportedBatch marks batch sizes the serving stack refuses
// (SN40L's hosted service limit, §VII-2).
var ErrUnsupportedBatch = errors.New("engine: batch size not supported by serving stack")

// Config assembles one benchmarkable system.
type Config struct {
	Model     *model.Config
	Device    *hw.Device
	Framework *framework.Profile
	Plan      parallel.Plan
	Scheme    quant.Scheme // zero value means fp16/fp16
	// KVBlockTokens overrides the framework's paged-KV block size
	// (Fig. 2b sweep). 0 uses the framework default.
	KVBlockTokens int
	// DisableKVCache recomputes attention every step (Fig. 2a
	// ablation).
	DisableKVCache bool
}

// Engine evaluates benchmark points for one configuration. An
// Engine's configuration is immutable after New and every method is
// safe for concurrent use: Run, Explain, and the step-cost helpers
// only read the configuration, which is what lets sweeps share one
// engine across workers and cache engines by system (engine.Cached,
// llmbench.Sweep). The only mutable state is the step-cost memo
// (rangecost.go): lock-free copy-on-write tables whose readers never
// lock and whose writers serialise on buildMu — and deterministic
// either way, since a cached step is byte-identical to a recomputed
// one.
type Engine struct {
	cfg    Config
	link   parallel.Link
	effC   float64 // compute efficiency on this vendor
	effM   float64 // memory efficiency on this vendor
	peak   float64 // FLOP/s at the compute precision
	blkEff float64

	// buildMu serialises memo writers only; see rangecost.go.
	buildMu sync.Mutex
	steps   costGrid[memoStep]
	vecs    costGrid[stepVec] // per-batch master vectors, column 0
	aggs    costGrid[aggVec]  // per-(batch, ctxStart) prefix aggregates
}

// New validates and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Model == nil || cfg.Device == nil || cfg.Framework == nil {
		return nil, errors.New("engine: nil model, device, or framework")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	if cfg.Plan == (parallel.Plan{}) {
		cfg.Plan = parallel.Single
	}
	if err := cfg.Plan.Validate(cfg.Model); err != nil {
		return nil, err
	}
	if cfg.Plan.Devices() > cfg.Device.DevicesPerNode {
		return nil, fmt.Errorf("engine: plan needs %d devices but a %s node has %d",
			cfg.Plan.Devices(), cfg.Device.Name, cfg.Device.DevicesPerNode)
	}
	if !cfg.Framework.SupportsDevice(cfg.Device) {
		return nil, fmt.Errorf("engine: %s does not run on %s (Table III)",
			cfg.Framework.Name, cfg.Device.Name)
	}
	if (cfg.Scheme == quant.Scheme{}) {
		cfg.Scheme = quant.FP16
	}
	if err := cfg.Scheme.SupportedOn(cfg.Device); err != nil {
		return nil, err
	}
	effC, effM, err := cfg.Framework.Eff(cfg.Device.Vendor)
	if err != nil {
		return nil, err
	}
	peak, err := cfg.Device.PeakFLOPS(cfg.Scheme.ComputeType())
	if err != nil {
		return nil, err
	}
	blk := 1.0
	if cfg.Framework.PagedKV {
		size := cfg.Framework.DefaultBlockSize
		if cfg.KVBlockTokens > 0 {
			size = cfg.KVBlockTokens
		}
		blk = kvcache.BlockEfficiency(size)
		if blk <= 0 {
			return nil, fmt.Errorf("engine: invalid KV block size %d", size)
		}
	} else if cfg.KVBlockTokens > 0 {
		return nil, fmt.Errorf("engine: %s does not page its KV cache", cfg.Framework.Name)
	}
	return &Engine{
		cfg: cfg,
		link: parallel.Link{
			BW:      cfg.Device.InterconnectGBs * 1e9,
			Latency: cfg.Device.InterconnectLatencyUS * 1e-6,
			Eff:     cfg.Framework.TPCommEff,
		},
		effC:   effC,
		effM:   effM,
		peak:   peak,
		blkEff: blk,
	}, nil
}

// Config returns the engine's (normalised) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Result is one benchmark point's outcome.
type Result struct {
	Spec workload.Spec

	TTFTSeconds float64 // time to first token (§III-5b)
	ITLSeconds  float64 // inter-token latency, Eq. (1)
	E2ESeconds  float64 // end-to-end latency
	Throughput  float64 // tokens/s, Eq. (2)

	DecodeBound roofline.Bound // binding resource of the decode phase

	AvgPowerWatts    float64 // per device
	TotalPowerWatts  float64 // whole plan
	TokensPerSecPerW float64 // vs total power
	EnergyJoules     float64

	// PeakMemBytes is the per-device high-water mark.
	PeakMemBytes float64
}

// effectiveParallelism returns the work division and a bubble
// inflation for the framework's multi-device mode.
func (e *Engine) effectiveParallelism(tokens int) (division, inflation float64) {
	p := e.cfg.Plan
	n := p.Devices()
	if n == 1 {
		return 1, 1
	}
	if e.cfg.Framework.Parallel == framework.LayerSplit {
		// llama.cpp: layers are spread over devices but a token visits
		// them sequentially — no latency win, only a small overlap
		// benefit at stage boundaries (Fig. 14's weak scaling).
		return 1 + 0.08*float64(n-1), 1
	}
	division = float64(n)
	inflation = p.PipelineInflation(tokens)
	if p.PP > 1 {
		inflation *= ppSmallGEMMPenalty
	}
	if p.EP > 1 {
		inflation *= p.EPImbalance(e.cfg.Model)
	}
	return division, inflation
}

// saturationStall is the MI250-style page-fault stall multiplier on
// memory time (§VI-2 / Fig. 17): beyond the saturation point the
// working set (batch × context) drives preemptive MMU stalls.
func (e *Engine) saturationStall(batch, ctx int) float64 {
	d := e.cfg.Device
	if d.SaturationBatch == 0 || batch <= d.SaturationBatch {
		return 1
	}
	pressure := float64(batch)*float64(ctx)/(float64(d.SaturationBatch)*1024) - 1
	if pressure <= 0 {
		return 1
	}
	return 1 + d.SaturationPenalty*pressure
}

// powerBalance converts a phase's roofline outcome into the balance
// input of the power model. Compute-bound phases floor at 0.75: the
// tensor cores — the dominant power draw — are saturated even while
// the memory system idles, which is why prefill is the hot phase in
// pynvml traces.
func powerBalance(r roofline.Result) float64 {
	if r.Bound == roofline.ComputeBound && r.Balance < 0.75 {
		return 0.75
	}
	return r.Balance
}

func (e *Engine) moEAffinity() float64 {
	if e.cfg.Model.FFN == model.MoE {
		return e.cfg.Framework.MoEAffinity
	}
	return 1
}

// overheads returns the per-iteration fixed cost in seconds.
func (e *Engine) overheads() float64 {
	fw := e.cfg.Framework
	layers := float64(e.cfg.Model.Layers)
	perDev := layers
	if fw.Parallel == framework.TensorParallel && e.cfg.Plan.PP > 1 {
		perDev = layers / float64(e.cfg.Plan.PP)
	}
	return (perDev*fw.LayerOverheadUS + fw.StepOverheadUS) * 1e-6
}

// comm prices one iteration's communication, honouring overlap.
func (e *Engine) comm(tokens int) float64 {
	if e.cfg.Plan.Devices() == 1 {
		return 0
	}
	if e.cfg.Framework.Parallel == framework.LayerSplit {
		// One boundary hand-off per device per step.
		n := e.cfg.Plan.Devices()
		vol := float64(tokens) * float64(e.cfg.Model.Hidden) * e.cfg.Scheme.KV.Bytes()
		return float64(n-1) * (vol/(e.link.BW*e.link.Eff) + e.link.Latency)
	}
	c := e.cfg.Plan.StepComm(e.cfg.Model, tokens, 2, e.link)
	return c * (1 - e.cfg.Framework.CommOverlap)
}

// kvStreamBW is the effective bandwidth of KV-cache reads.
func (e *Engine) kvStreamBW(division float64) float64 {
	return e.cfg.Device.MemBW() * e.effM * division * e.cfg.Framework.KVEff * e.blkEff
}

// weightStreamBW is the effective bandwidth of weight reads. MoE
// affinity also scales it: expert weight streaming is where MoE
// kernel quality shows (DS-MII's grouped-expert GEMMs vs vLLM's, the
// Fig. 12 gap).
func (e *Engine) weightStreamBW(division float64) float64 {
	return e.cfg.Device.MemBW() * e.effM * division * e.cfg.Framework.MemBoost * e.moEAffinity()
}

// logitsPenalty is the extra serial time of the unembedding GEMM for
// frameworks that run it outside their fused path (DS-MII, llama.cpp):
// the excess over running it at full kernel efficiency. It scales with
// vocabulary size — why large-vocab models (LLaMA-3, Qwen2) lose their
// GQA advantage under those frameworks (§VII-1).
func (e *Engine) logitsPenalty(batch int, div float64) float64 {
	le := e.cfg.Framework.LogitsEff
	if le >= 1 {
		return 0
	}
	flops := 2 * float64(e.cfg.Model.Hidden) * float64(e.cfg.Model.Vocab) * float64(batch)
	base := flops / (e.peak * e.effC * div)
	return base * (1/le - 1)
}

// kvTrafficFactor inflates stored-KV traffic for frameworks whose
// attention kernels do not (fully) exploit GQA.
func (e *Engine) kvTrafficFactor() float64 {
	group := e.cfg.Model.KVGroupRatio()
	return e.cfg.Framework.KVTrafficRatio(group) / group
}

// memoryPlan computes the per-device footprint and the largest number
// of sequences that fit concurrently. Paged, continuously-batching
// frameworks size sequences at their *average* context (preempting the
// occasional overflow, as vLLM does); static paged frameworks size at
// peak; non-paged frameworks reserve the monolithic maximum — the
// fragmentation contrast of §IV-B2 that OOMs Gaudi2 at large batch.
func (e *Engine) memoryPlan(spec workload.Spec) (peak float64, conc int, err error) {
	m, fw := e.cfg.Model, e.cfg.Framework
	weights := m.WeightBytes(e.cfg.Scheme.Weights) * e.cfg.Plan.WeightShare(m)

	var kvTokens int
	switch {
	case e.cfg.DisableKVCache:
		kvTokens = 0
	case fw.PagedKV && fw.ContinuousBatching:
		kvTokens = spec.Input + spec.Output/2
	case fw.ReserveMaxSeq:
		// Static monolithic reservation at the serving configuration's
		// maximum length (capped at 8K as deployments do) — the
		// fragmentation behind Gaudi2's large-batch OOMs.
		kvTokens = m.MaxSeq
		if kvTokens > 8192 {
			kvTokens = 8192
		}
		if lived := spec.Input + spec.Output; lived > kvTokens {
			kvTokens = lived
		}
	default:
		kvTokens = spec.Input + spec.Output
	}
	// Every scheme shards KV across all devices: TP by heads, PP by
	// layers, EP by running attention data-parallel over the batch
	// (the DeepSpeed-MoE layout).
	perSeqKV := float64(kvTokens) * m.KVBytesPerToken(e.cfg.Scheme.KV) /
		float64(e.cfg.Plan.Devices())
	actTokens := spec.Input
	if fw.ReserveMaxSeq {
		// Static HPU graphs also pre-allocate activation workspace for
		// their compiled shapes, not just the live prompt.
		actTokens = kvTokens
		if actTokens > 2048 {
			actTokens = 2048
		}
	}
	perSeqAct := m.ActivationBytes(1, actTokens) / float64(e.cfg.Plan.Devices())

	usable := e.cfg.Device.MemBytes() * usableMemFraction
	avail := usable - weights
	perSeq := perSeqKV + perSeqAct
	if avail <= 0 || avail < perSeq {
		need := weights + perSeq
		return need, 0, fmt.Errorf("%w: need %.1f GiB of %.1f GiB usable on %s (%s)",
			ErrOOM, need/(1<<30), usable/(1<<30), e.cfg.Device.Name, e.cfg.Plan)
	}
	conc = int(avail / perSeq)
	if conc > spec.Batch {
		conc = spec.Batch
	}
	peak = weights + float64(conc)*perSeq
	return peak, conc, nil
}

// prefill times the prompt pass.
func (e *Engine) prefill(spec workload.Spec) (roofline.Result, error) {
	m := e.cfg.Model
	tokens := spec.Batch * spec.Input
	div, infl := e.effectiveParallelism(tokens)

	flops := float64(spec.Batch) * m.PrefillFLOPs(spec.Input)
	// Weight sweep once, KV written for the whole prompt.
	weightBytes := m.DecodeWeightBytes(spec.Batch*spec.Input, e.cfg.Scheme.Weights)
	kvWrite := m.KVCacheBytes(spec.Batch, spec.Input, e.cfg.Scheme.KV)
	memTime := weightBytes/e.weightStreamBW(div) + kvWrite/(e.cfg.Device.MemBW()*e.effM*div)
	memTime *= e.saturationStall(spec.Batch, spec.Input)

	compute := flops / (e.peak * e.effC * div * e.moEAffinity())
	long := math.Max(compute, memTime)
	short := math.Min(compute, memTime)
	t := long
	if ov := e.cfg.Device.OverlapFactor; ov > 0 {
		t = math.Max(long-short*ov, 0.6*long)
	}
	t = t*infl + e.overheads() + e.comm(tokens) +
		float64(spec.Batch)*e.cfg.Framework.PrefillPerSeqMS*1e-3
	bound := roofline.ComputeBound
	if memTime > compute {
		bound = roofline.MemoryBound
	}
	balance := 0.0
	if long > 0 {
		balance = short / long
	}
	return roofline.Result{Seconds: t, Bound: bound, ComputeTime: compute, MemoryTime: memTime, Balance: balance}, nil
}

// decodeStep times one generation step at context length ctx.
func (e *Engine) decodeStep(spec workload.Spec, ctx int) (roofline.Result, error) {
	m, fw := e.cfg.Model, e.cfg.Framework
	div, infl := e.effectiveParallelism(spec.Batch)

	if e.cfg.DisableKVCache {
		// Without a KV cache every step re-runs the full forward pass
		// over the whole context (§IV-B1 / Fig. 2a).
		full := workload.Spec{Batch: spec.Batch, Input: ctx, Output: 1}
		return e.prefillLikeStep(full, div, infl)
	}

	flops := float64(spec.Batch) * m.DecodeFLOPsPerToken(ctx)
	restreams := 1.0
	if fw.GEMMBatchCap > 0 && spec.Batch > fw.GEMMBatchCap {
		restreams = math.Ceil(float64(spec.Batch) / float64(fw.GEMMBatchCap))
	}
	weightBytes := m.DecodeWeightBytes(spec.Batch, e.cfg.Scheme.Weights) * restreams
	kvRead := float64(spec.Batch) * float64(ctx) * m.KVBytesPerToken(e.cfg.Scheme.KV) * e.kvTrafficFactor()
	kvWrite := m.DecodeKVWriteBytes(spec.Batch, e.cfg.Scheme.KV)

	computeTime := flops / (e.peak * e.effC * div * e.moEAffinity())
	memTime := weightBytes/e.weightStreamBW(div) +
		kvRead/e.kvStreamBW(div) +
		kvWrite/(e.cfg.Device.MemBW()*e.effM*div)
	memTime *= e.saturationStall(spec.Batch, ctx)

	long := math.Max(computeTime, memTime)
	short := math.Min(computeTime, memTime)
	t := long
	if ov := e.cfg.Device.OverlapFactor; ov > 0 {
		t = math.Max(long-short*ov, 0.6*long)
	}
	t = t*infl + e.overheads() + e.comm(spec.Batch) + e.logitsPenalty(spec.Batch, div)
	bound := roofline.ComputeBound
	if memTime > computeTime {
		bound = roofline.MemoryBound
	}
	balance := 0.0
	if long > 0 {
		balance = short / long
	}
	return roofline.Result{Seconds: t, Bound: bound, ComputeTime: computeTime, MemoryTime: memTime, Balance: balance}, nil
}

// prefillLikeStep prices a full recompute step (KV cache disabled).
// The no-cache path executes eagerly — no graphs, no fused attention —
// so both rooflines are derated by eagerPenalty.
func (e *Engine) prefillLikeStep(spec workload.Spec, div, infl float64) (roofline.Result, error) {
	m := e.cfg.Model
	flops := float64(spec.Batch) * m.PrefillFLOPs(spec.Input)
	weightBytes := m.DecodeWeightBytes(spec.Batch*spec.Input, e.cfg.Scheme.Weights)
	computeTime := flops / (e.peak * e.effC * eagerPenalty * div * e.moEAffinity())
	memTime := weightBytes / (e.weightStreamBW(div) * eagerPenalty)
	long := math.Max(computeTime, memTime)
	t := long*infl + e.overheads() + e.comm(spec.Batch)
	bound := roofline.ComputeBound
	if memTime > computeTime {
		bound = roofline.MemoryBound
	}
	balance := 0.0
	if long > 0 {
		balance = math.Min(computeTime, memTime) / long
	}
	return roofline.Result{Seconds: t, Bound: bound, ComputeTime: computeTime, MemoryTime: memTime, Balance: balance}, nil
}

// Run evaluates one benchmark point.
func (e *Engine) Run(spec workload.Spec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if lim := e.cfg.Device.ServiceBatchLimit; lim > 0 && spec.Batch > lim {
		return Result{}, fmt.Errorf("%w: %d > %s limit %d",
			ErrUnsupportedBatch, spec.Batch, e.cfg.Device.Name, lim)
	}
	peakMem, conc, err := e.memoryPlan(spec)
	if err != nil {
		return Result{PeakMemBytes: peakMem}, err
	}
	waves := 1
	waveSpec := spec
	if conc < spec.Batch {
		// The whole batch's KV does not fit at once. Frameworks with
		// iteration-level scheduling run the requests in sequential
		// waves (vLLM preemption / TRT-LLM in-flight batching); static
		// executors simply fail — the paper's Gaudi2 OOMs.
		if !e.cfg.Framework.BatchWaves {
			return Result{PeakMemBytes: peakMem}, fmt.Errorf(
				"%w: only %d of %d sequences fit on %s (%s) and %s cannot schedule waves",
				ErrOOM, conc, spec.Batch, e.cfg.Device.Name, e.cfg.Plan, e.cfg.Framework.Name)
		}
		waves = (spec.Batch + conc - 1) / conc
		waveSpec.Batch = (spec.Batch + waves - 1) / waves
	}

	pf, err := e.prefill(waveSpec)
	if err != nil {
		return Result{}, err
	}
	ttft := pf.Seconds

	// The whole decode phase is one range of identical-batch steps at
	// contexts Input+1 … Input+Output-1; price it in a single memoised
	// call (summed in step order, so the result is byte-identical to
	// the per-step loop this replaced).
	rng, err := e.DecodeRangeSeconds(waveSpec.Batch, waveSpec.Input+1, waveSpec.Output-1)
	if err != nil {
		return Result{}, err
	}
	decode := rng.Seconds
	e2e := float64(waves) * (ttft + decode)

	itl := 0.0
	if spec.Output > 1 {
		// Paper Eq. (1).
		itl = (e2e - ttft) / (float64(spec.Batch) * float64(spec.Output-1))
	}
	throughput := spec.TotalTokens() / e2e // Paper Eq. (2)

	balance := 0.0
	if rng.Seconds > 0 {
		balance = rng.BalanceSeconds / rng.Seconds
	}
	occupancy := math.Min(1, float64(waveSpec.Batch)/64)
	util := power.Utilization(balance, occupancy, e.effC)
	watts, err := power.Draw(e.cfg.Device, util)
	if err != nil {
		return Result{}, err
	}
	total := watts * float64(e.cfg.Plan.Devices())

	return Result{
		Spec:             spec,
		TTFTSeconds:      ttft,
		ITLSeconds:       itl,
		E2ESeconds:       e2e,
		Throughput:       throughput,
		DecodeBound:      rng.LastBound,
		AvgPowerWatts:    watts,
		TotalPowerWatts:  total,
		TokensPerSecPerW: power.TokensPerSecondPerWatt(throughput, total),
		EnergyJoules:     power.Energy(total, e2e),
		PeakMemBytes:     peakMem,
	}, nil
}

// PrefillSeconds exposes the cost of prefilling a batch of prompts —
// the serving scheduler charges it when admitting requests.
func (e *Engine) PrefillSeconds(batch, input int) (float64, error) {
	if batch < 1 || input < 1 {
		return 0, errors.New("engine: non-positive batch or input")
	}
	pf, err := e.prefill(workload.Spec{Batch: batch, Input: input, Output: 1})
	if err != nil {
		return 0, err
	}
	return pf.Seconds, nil
}

// DecodeStepSeconds exposes the cost of one decode step at a given
// context — the speculative-decoding study builds on it. Costs come
// from the engine's memo table, so repeated queries are map lookups.
func (e *Engine) DecodeStepSeconds(batch, ctx int) (float64, error) {
	if batch < 1 || ctx < 1 {
		return 0, errors.New("engine: non-positive batch or context")
	}
	c, err := e.stepCost(batch, ctx)
	if err != nil {
		return 0, err
	}
	return c.seconds, nil
}

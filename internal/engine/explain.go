package engine

// Explain decomposes a benchmark point into where its time goes —
// the quantities the analysis sections of the paper reason about when
// attributing wins to GQA, KV traffic, batching, or communication.

import (
	"math"

	"llmbench/internal/workload"
)

// PhaseBreakdown attributes one phase's wall time to its mechanisms.
// Wall times of the compute and memory components overlap under the
// roofline (only the longer one binds); the byte-level splits within
// the memory wall are additive.
type PhaseBreakdown struct {
	Seconds float64 // total phase wall time

	ComputeWall float64 // FLOPs / effective FLOP/s
	MemoryWall  float64 // total bytes / effective B/s
	MemoryBound bool    // which wall bound the phase

	// Memory-wall split (sums to MemoryWall).
	WeightStreamS float64
	KVReadS       float64
	KVWriteS      float64

	// Additive serial terms.
	CommS     float64
	OverheadS float64
	SetupS    float64 // per-sequence prefill setup (SambaFlow)
	LogitsS   float64 // unfused-unembedding excess
}

// Breakdown explains a full run.
type Breakdown struct {
	Spec workload.Spec

	// Waves and ConcurrentBatch expose the memory plan: when the whole
	// batch's KV does not fit, the framework runs ceil(batch/conc)
	// sequential waves of conc sequences.
	Waves           int
	ConcurrentBatch int
	PeakMemGiB      float64

	Prefill PhaseBreakdown
	// Decode aggregates all output steps of one wave.
	Decode PhaseBreakdown
}

// Explain evaluates a benchmark point and attributes its time. It
// performs the same arithmetic as Run (same memory plan, same waves)
// but reports components instead of aggregate metrics.
func (e *Engine) Explain(spec workload.Spec) (*Breakdown, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if lim := e.cfg.Device.ServiceBatchLimit; lim > 0 && spec.Batch > lim {
		return nil, ErrUnsupportedBatch
	}
	peakMem, conc, err := e.memoryPlan(spec)
	if err != nil {
		return nil, err
	}
	waves := 1
	waveSpec := spec
	if conc < spec.Batch {
		if !e.cfg.Framework.BatchWaves {
			return nil, ErrOOM
		}
		waves = (spec.Batch + conc - 1) / conc
		waveSpec.Batch = (spec.Batch + waves - 1) / waves
	}

	out := &Breakdown{
		Spec:            spec,
		Waves:           waves,
		ConcurrentBatch: waveSpec.Batch,
		PeakMemGiB:      peakMem / (1 << 30),
	}
	out.Prefill = e.explainPrefill(waveSpec)
	for t := 0; t < waveSpec.Output-1; t++ {
		step := e.explainDecodeStep(waveSpec, waveSpec.Input+t+1)
		out.Decode.Seconds += step.Seconds
		out.Decode.ComputeWall += step.ComputeWall
		out.Decode.MemoryWall += step.MemoryWall
		out.Decode.WeightStreamS += step.WeightStreamS
		out.Decode.KVReadS += step.KVReadS
		out.Decode.KVWriteS += step.KVWriteS
		out.Decode.CommS += step.CommS
		out.Decode.OverheadS += step.OverheadS
		out.Decode.LogitsS += step.LogitsS
	}
	out.Decode.MemoryBound = out.Decode.MemoryWall > out.Decode.ComputeWall
	return out, nil
}

func (e *Engine) explainPrefill(spec workload.Spec) PhaseBreakdown {
	m := e.cfg.Model
	tokens := spec.Batch * spec.Input
	div, infl := e.effectiveParallelism(tokens)

	flops := float64(spec.Batch) * m.PrefillFLOPs(spec.Input)
	weightBytes := m.DecodeWeightBytes(spec.Batch*spec.Input, e.cfg.Scheme.Weights)
	kvWrite := m.KVCacheBytes(spec.Batch, spec.Input, e.cfg.Scheme.KV)
	stall := e.saturationStall(spec.Batch, spec.Input)

	b := PhaseBreakdown{
		ComputeWall:   flops / (e.peak * e.effC * div * e.moEAffinity()),
		WeightStreamS: weightBytes / e.weightStreamBW(div) * stall,
		KVWriteS:      kvWrite / (e.cfg.Device.MemBW() * e.effM * div) * stall,
		CommS:         e.comm(tokens),
		OverheadS:     e.overheads(),
		SetupS:        float64(spec.Batch) * e.cfg.Framework.PrefillPerSeqMS * 1e-3,
	}
	b.MemoryWall = b.WeightStreamS + b.KVWriteS
	b.MemoryBound = b.MemoryWall > b.ComputeWall
	b.Seconds = e.overlapWalls(b.ComputeWall, b.MemoryWall)*infl +
		b.CommS + b.OverheadS + b.SetupS
	return b
}

func (e *Engine) explainDecodeStep(spec workload.Spec, ctx int) PhaseBreakdown {
	m, fw := e.cfg.Model, e.cfg.Framework
	div, infl := e.effectiveParallelism(spec.Batch)
	if e.cfg.DisableKVCache {
		res, _ := e.prefillLikeStep(workload.Spec{Batch: spec.Batch, Input: ctx, Output: 1}, div, infl)
		return PhaseBreakdown{
			Seconds: res.Seconds, ComputeWall: res.ComputeTime, MemoryWall: res.MemoryTime,
			MemoryBound:   res.MemoryTime > res.ComputeTime,
			WeightStreamS: res.MemoryTime,
			CommS:         e.comm(spec.Batch), OverheadS: e.overheads(),
		}
	}

	flops := float64(spec.Batch) * m.DecodeFLOPsPerToken(ctx)
	restreams := 1.0
	if fw.GEMMBatchCap > 0 && spec.Batch > fw.GEMMBatchCap {
		restreams = math.Ceil(float64(spec.Batch) / float64(fw.GEMMBatchCap))
	}
	stall := e.saturationStall(spec.Batch, ctx)
	b := PhaseBreakdown{
		ComputeWall:   flops / (e.peak * e.effC * div * e.moEAffinity()),
		WeightStreamS: m.DecodeWeightBytes(spec.Batch, e.cfg.Scheme.Weights) * restreams / e.weightStreamBW(div) * stall,
		KVReadS: float64(spec.Batch) * float64(ctx) * m.KVBytesPerToken(e.cfg.Scheme.KV) *
			e.kvTrafficFactor() / e.kvStreamBW(div) * stall,
		KVWriteS:  m.DecodeKVWriteBytes(spec.Batch, e.cfg.Scheme.KV) / (e.cfg.Device.MemBW() * e.effM * div) * stall,
		CommS:     e.comm(spec.Batch),
		OverheadS: e.overheads(),
		LogitsS:   e.logitsPenalty(spec.Batch, div),
	}
	b.MemoryWall = b.WeightStreamS + b.KVReadS + b.KVWriteS
	b.MemoryBound = b.MemoryWall > b.ComputeWall
	b.Seconds = e.overlapWalls(b.ComputeWall, b.MemoryWall)*infl +
		b.CommS + b.OverheadS + b.LogitsS
	return b
}

// overlapWalls applies the device's heterogeneous-engine overlap to
// the two roofline walls, exactly as the Run path does.
func (e *Engine) overlapWalls(compute, mem float64) float64 {
	long := math.Max(compute, mem)
	short := math.Min(compute, mem)
	if ov := e.cfg.Device.OverlapFactor; ov > 0 {
		return math.Max(long-short*ov, 0.6*long)
	}
	return long
}

package engine

import (
	"testing"

	"llmbench/internal/parallel"
	"llmbench/internal/workload"
)

func TestAutotuneBatchFindsFrontier(t *testing.T) {
	e := mustEngine(t, "LLaMA-3-8B", "H100", "TRT-LLM", parallel.Single)
	batch, res, err := AutotuneBatch(e, 1024, 1024, 0.025, 256)
	if err != nil {
		t.Fatal(err)
	}
	if batch < 1 || batch > 256 {
		t.Fatalf("batch %d out of range", batch)
	}
	// The returned batch meets the SLO…
	if perTok := res.ITLSeconds * float64(batch); perTok > 0.025 {
		t.Errorf("returned batch misses the SLO: %.4f s/token", perTok)
	}
	// …and batch+1 (if runnable) misses it — maximality.
	next, err := e.Run(workload.Spec{Batch: batch + 1, Input: 1024, Output: 1024})
	if err == nil {
		if next.ITLSeconds*float64(batch+1) <= 0.025 {
			t.Errorf("batch %d also meets the SLO; autotune not maximal", batch+1)
		}
	}
}

func TestAutotuneTighterSLOSmallerBatch(t *testing.T) {
	e := mustEngine(t, "LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	loose, _, err := AutotuneBatch(e, 1024, 1024, 0.060, 256)
	if err != nil {
		t.Fatal(err)
	}
	tight, _, err := AutotuneBatch(e, 1024, 1024, 0.020, 256)
	if err != nil {
		t.Fatal(err)
	}
	if tight > loose {
		t.Errorf("tighter SLO must not allow a larger batch: %d vs %d", tight, loose)
	}
}

func TestAutotuneImpossibleSLO(t *testing.T) {
	e := mustEngine(t, "LLaMA-3-8B", "A100", "llama.cpp", parallel.Single)
	// llama.cpp decode steps are tens of ms; a 1 ms SLO is hopeless.
	if _, _, err := AutotuneBatch(e, 1024, 1024, 0.001, 64); err == nil {
		t.Error("impossible SLO must error")
	}
}

func TestAutotuneValidation(t *testing.T) {
	if _, _, err := AutotuneBatch(nil, 1024, 1024, 0.02, 64); err == nil {
		t.Error("nil engine must fail")
	}
	e := mustEngine(t, "LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	if _, _, err := AutotuneBatch(e, 1024, 1024, 0, 64); err == nil {
		t.Error("zero SLO must fail")
	}
	if _, _, err := AutotuneBatch(e, 1024, 1024, 0.02, 0); err == nil {
		t.Error("zero max batch must fail")
	}
}

package engine

// AutotuneBatch answers the deployment question behind §VII's
// takeaways: the largest batch size a configuration sustains while
// keeping per-token latency under an SLO — large batches buy
// throughput (Fig. 1a) but stretch the inter-token latency users see
// (Fig. 22).

import (
	"errors"
	"fmt"

	"llmbench/internal/workload"
)

// AutotuneBatch finds the largest batch ≤ maxBatch whose inter-token
// latency (Eq. 1, scaled back to a per-step user-visible latency by
// multiplying with the batch) stays at or below sloITL seconds, at
// equal input/output length. It returns the batch, its full Result,
// and an error when even batch 1 misses the SLO or nothing fits.
func AutotuneBatch(e *Engine, input, output int, sloITL float64, maxBatch int) (int, Result, error) {
	if e == nil {
		return 0, Result{}, errors.New("engine: nil engine")
	}
	if sloITL <= 0 || maxBatch < 1 {
		return 0, Result{}, errors.New("engine: non-positive SLO or max batch")
	}
	// Per-token latency a user of one stream experiences is the step
	// time: ITL (Eq. 1 divides by batch) × batch.
	meets := func(batch int) (Result, bool, error) {
		res, err := e.Run(workload.Spec{Batch: batch, Input: input, Output: output})
		if err != nil {
			if errors.Is(err, ErrOOM) || errors.Is(err, ErrUnsupportedBatch) {
				return Result{}, false, nil
			}
			return Result{}, false, err
		}
		return res, res.ITLSeconds*float64(batch) <= sloITL, nil
	}

	// Exponential probe then binary search on the largest passing batch.
	bestBatch := 0
	var bestRes Result
	lo, hi := 1, 1
	for hi <= maxBatch {
		res, ok, err := meets(hi)
		if err != nil {
			return 0, Result{}, err
		}
		if !ok {
			break
		}
		bestBatch, bestRes = hi, res
		lo = hi
		hi *= 2
	}
	if bestBatch == 0 {
		return 0, Result{}, fmt.Errorf("engine: batch 1 already misses the %.1f ms ITL SLO on %s",
			sloITL*1000, e.cfg.Device.Name)
	}
	if hi > maxBatch {
		hi = maxBatch + 1
	}
	// Invariant: lo passes, hi fails (or is out of range).
	for lo+1 < hi {
		mid := (lo + hi) / 2
		res, ok, err := meets(mid)
		if err != nil {
			return 0, Result{}, err
		}
		if ok {
			lo = mid
			bestBatch, bestRes = mid, res
		} else {
			hi = mid
		}
	}
	return bestBatch, bestRes, nil
}

package engine

// Allocation-regression gates for warm window pricing: once the memo
// grids and the step vector at an anchor exist, every pricing entry
// point — single step, prefix-aggregated range, raw vector, snapshot
// handle — must answer from the copy-on-write snapshots with zero
// allocations and zero locks. The serving kernel's steady state
// (internal/des) prices every event through these paths, so one stray
// allocation here multiplies by a million requests.

import "testing"

func TestWarmPricingAllocs(t *testing.T) {
	e := rangeTestEngine(t, "vLLM")
	warm := func() {
		if _, err := e.DecodeStepCost(8, 450); err != nil {
			t.Fatal(err)
		}
		if _, err := e.DecodeRangeSeconds(8, 300, 200); err != nil {
			t.Fatal(err)
		}
		if _, err := e.DecodeStepCosts(8, 300, 200); err != nil {
			t.Fatal(err)
		}
		if _, err := e.DecodeStepVec(8, 300, 200); err != nil {
			t.Fatal(err)
		}
	}
	warm() // populate the step grid and the (8, 300) vector
	if avg := testing.AllocsPerRun(100, warm); avg != 0 {
		t.Errorf("warm window pricing allocates %.2f times, want 0", avg)
	}
	// Shorter reads of the same anchor are prefix reads of the same
	// snapshot — also allocation-free.
	if avg := testing.AllocsPerRun(100, func() {
		for steps := 1; steps <= 200; steps += 37 {
			if _, err := e.DecodeRangeSeconds(8, 300, steps); err != nil {
				t.Fatal(err)
			}
		}
	}); avg != 0 {
		t.Errorf("warm prefix reads allocate %.2f times, want 0", avg)
	}
}

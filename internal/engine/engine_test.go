package engine

import (
	"errors"
	"testing"

	"llmbench/internal/dtype"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/model"
	"llmbench/internal/parallel"
	"llmbench/internal/quant"
	"llmbench/internal/workload"
)

func mustEngine(t *testing.T, m, dev, fw string, plan parallel.Plan) *Engine {
	t.Helper()
	e, err := New(Config{
		Model:     model.MustGet(m),
		Device:    hw.MustGet(dev),
		Framework: framework.MustGet(fw),
		Plan:      plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func run(t *testing.T, e *Engine, batch, in, out int) Result {
	t.Helper()
	r, err := e.Run(workload.Spec{Batch: batch, Input: in, Output: out})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil components must fail")
	}
	// TRT-LLM on AMD must fail (Table III).
	if _, err := New(Config{
		Model:     model.MustGet("LLaMA-2-7B"),
		Device:    hw.MustGet("MI250"),
		Framework: framework.MustGet("TRT-LLM"),
	}); err == nil {
		t.Error("TRT-LLM on MI250 must fail")
	}
	// FP8 weights on A100 must fail.
	if _, err := New(Config{
		Model:     model.MustGet("LLaMA-3-8B"),
		Device:    hw.MustGet("A100"),
		Framework: framework.MustGet("vLLM"),
		Scheme:    quant.Scheme{Weights: dtype.FP8, KV: dtype.FP8},
	}); err == nil {
		t.Error("FP8 weights on A100 must fail")
	}
	// More devices than the node has must fail.
	if _, err := New(Config{
		Model:     model.MustGet("LLaMA-3-8B"),
		Device:    hw.MustGet("GH200"),
		Framework: framework.MustGet("vLLM"),
		Plan:      parallel.Plan{TP: 4, PP: 1, EP: 1},
	}); err == nil {
		t.Error("TP=4 on a 1-device GH200 node must fail")
	}
	// Block size override on a non-paged framework must fail.
	if _, err := New(Config{
		Model:         model.MustGet("LLaMA-2-7B"),
		Device:        hw.MustGet("A100"),
		Framework:     framework.MustGet("llama.cpp"),
		KVBlockTokens: 16,
	}); err == nil {
		t.Error("block override on llama.cpp must fail")
	}
}

func TestThroughputScalesWithBatch(t *testing.T) {
	// Fig. 1a: throughput rises steeply with batch size.
	e := mustEngine(t, "LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	t1 := run(t, e, 1, 1024, 1024).Throughput
	t64 := run(t, e, 64, 1024, 1024).Throughput
	if t64 < 10*t1 {
		t.Errorf("batch 64 must be ≫ batch 1: %.0f vs %.0f", t64, t1)
	}
	if t64 > 60*t1 {
		t.Errorf("batch scaling too ideal: %.1fx", t64/t1)
	}
}

func TestBlendedTokens(t *testing.T) {
	// Fig. 1b: long-in/short-out beats short-in/long-out.
	e := mustEngine(t, "LLaMA-3-8B", "A100", "TRT-LLM", parallel.Single)
	fast, err := e.Run(workload.Spec{Batch: 1, Input: 1024, Output: 128})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.Run(workload.Spec{Batch: 1, Input: 128, Output: 1024})
	if err != nil {
		t.Fatal(err)
	}
	r := fast.Throughput / slow.Throughput
	if r < 4 {
		t.Errorf("{1024,128} vs {128,1024} ratio = %.1f, want ≫ 1 (paper: 14.6)", r)
	}
}

func TestGQAAdvantageDependsOnFramework(t *testing.T) {
	// §V: GQA models beat LLaMA-2-7B at large batch under TRT-LLM,
	// but not under llama.cpp.
	spec := workload.Spec{Batch: 64, Input: 1024, Output: 1024}
	trtGQA := mustEngine(t, "Mistral-7B", "A100", "TRT-LLM", parallel.Single)
	trtMHSA := mustEngine(t, "LLaMA-2-7B", "A100", "TRT-LLM", parallel.Single)
	rg, err := trtGQA.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := trtMHSA.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Throughput <= rm.Throughput {
		t.Errorf("TRT-LLM: Mistral (GQA) must beat LLaMA-2-7B at batch 64: %.0f vs %.0f",
			rg.Throughput, rm.Throughput)
	}

	lcGQA := mustEngine(t, "Mistral-7B", "A100", "llama.cpp", parallel.Single)
	lcMHSA := mustEngine(t, "LLaMA-2-7B", "A100", "llama.cpp", parallel.Single)
	lg, err := lcGQA.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := lcMHSA.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Throughput > lm.Throughput {
		t.Errorf("llama.cpp: LLaMA-2-7B must not lose to Mistral (GQA unexploited): %.0f vs %.0f",
			lm.Throughput, lg.Throughput)
	}
}

func TestOOM70BOnOneA100(t *testing.T) {
	// Appendix E-C: "the 70B models could not fit on one A100".
	e := mustEngine(t, "LLaMA-2-70B", "A100", "vLLM", parallel.Single)
	_, err := e.Run(workload.Spec{Batch: 1, Input: 128, Output: 128})
	if !errors.Is(err, ErrOOM) {
		t.Errorf("70B on one 40 GiB A100 must OOM, got %v", err)
	}
	// And fit with TP=4 on H100s.
	e4 := mustEngine(t, "LLaMA-2-70B", "H100", "vLLM", parallel.Plan{TP: 4, PP: 1, EP: 1})
	if _, err := e4.Run(workload.Spec{Batch: 1, Input: 128, Output: 128}); err != nil {
		t.Errorf("70B on 4 H100s must fit: %v", err)
	}
}

func TestGaudi2OOMAtLargeBatch(t *testing.T) {
	// Paper footnote: "We encountered out-of-memory issues on Gaudi2
	// at batch sizes of 32 and 64 in several test scenarios."
	e := mustEngine(t, "LLaMA-3-8B", "Gaudi2", "DeepSpeed", parallel.Single)
	if _, err := e.Run(workload.Spec{Batch: 16, Input: 1024, Output: 1024}); err != nil {
		t.Errorf("batch 16 must fit on Gaudi2: %v", err)
	}
	_, err := e.Run(workload.Spec{Batch: 64, Input: 1024, Output: 1024})
	if !errors.Is(err, ErrOOM) {
		t.Errorf("batch 64 LLaMA-3-8B must OOM on Gaudi2 (monolithic KV), got %v", err)
	}
}

func TestSN40LBatchLimit(t *testing.T) {
	e := mustEngine(t, "LLaMA-3-8B", "SN40L", "SambaFlow", parallel.Plan{TP: 8, PP: 1, EP: 1})
	_, err := e.Run(workload.Spec{Batch: 128, Input: 128, Output: 128})
	if !errors.Is(err, ErrUnsupportedBatch) {
		t.Errorf("batch 128 must exceed the SN40L service limit, got %v", err)
	}
}

func TestKVCacheAblation(t *testing.T) {
	// Fig. 2a: KV caching wins ~2x at length 128 and ~7x at 1024.
	base, err := New(Config{
		Model:     model.MustGet("LLaMA-3-70B"),
		Device:    hw.MustGet("Gaudi2"),
		Framework: framework.MustGet("DeepSpeed"),
		Plan:      parallel.Plan{TP: 8, PP: 1, EP: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	noKV, err := New(Config{
		Model:          model.MustGet("LLaMA-3-70B"),
		Device:         hw.MustGet("Gaudi2"),
		Framework:      framework.MustGet("DeepSpeed"),
		Plan:           parallel.Plan{TP: 8, PP: 1, EP: 1},
		DisableKVCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{128, 1024} {
		spec := workload.Spec{Batch: 1, Input: l, Output: l}
		w, err := base.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		wo, err := noKV.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		ratio := w.Throughput / wo.Throughput
		if ratio <= 1.3 {
			t.Errorf("len %d: KV cache speedup = %.2f, want > 1.3", l, ratio)
		}
		if l == 1024 && ratio < 3 {
			t.Errorf("len 1024: KV cache speedup = %.2f, want large (paper ~7x)", ratio)
		}
	}
}

func TestTTFTAndITLSanity(t *testing.T) {
	e := mustEngine(t, "LLaMA-3-8B", "A100", "TRT-LLM", parallel.Single)
	r := run(t, e, 16, 1024, 1024)
	if r.TTFTSeconds <= 0 || r.ITLSeconds <= 0 {
		t.Fatalf("TTFT/ITL must be positive: %+v", r)
	}
	if r.E2ESeconds <= r.TTFTSeconds {
		t.Error("E2E must exceed TTFT")
	}
	// Eq. (1) consistency.
	want := (r.E2ESeconds - r.TTFTSeconds) / (16 * 1023)
	if diff := r.ITLSeconds - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("ITL must follow Eq. (1): got %v want %v", r.ITLSeconds, want)
	}
	// Eq. (2) consistency.
	wantT := 16 * 2048 / r.E2ESeconds
	if d := r.Throughput - wantT; d > 1e-9 || d < -1e-9 {
		t.Errorf("throughput must follow Eq. (2)")
	}
}

func TestSingleOutputTokenTTFTOnly(t *testing.T) {
	// §III-5b: TTFT is measured by setting max output to one token.
	e := mustEngine(t, "LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	r := run(t, e, 1, 512, 1)
	if r.E2ESeconds != r.TTFTSeconds {
		t.Error("with one output token, E2E == TTFT")
	}
	if r.ITLSeconds != 0 {
		t.Error("ITL undefined for a single token; must be 0")
	}
}

func TestTPBeatsPPBeatsNothing(t *testing.T) {
	// Fig. 5a shape: TP > hybrid > PP at batch 64.
	spec := workload.Spec{Batch: 64, Input: 1024, Output: 1024}
	tp := mustEngine(t, "LLaMA-3-8B", "A100", "TRT-LLM", parallel.Plan{TP: 4, PP: 1, EP: 1})
	pp := mustEngine(t, "LLaMA-3-8B", "A100", "TRT-LLM", parallel.Plan{TP: 1, PP: 4, EP: 1})
	hy := mustEngine(t, "LLaMA-3-8B", "A100", "TRT-LLM", parallel.Plan{TP: 2, PP: 2, EP: 1})
	rtp, err := tp.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rpp, err := pp.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rhy, err := hy.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !(rtp.Throughput > rhy.Throughput && rhy.Throughput > rpp.Throughput) {
		t.Errorf("want TP > hybrid > PP, got %.0f / %.0f / %.0f",
			rtp.Throughput, rhy.Throughput, rpp.Throughput)
	}
}

func TestLayerSplitWeakScaling(t *testing.T) {
	// Fig. 14: llama.cpp gains little from more GPUs.
	spec := workload.Spec{Batch: 64, Input: 1024, Output: 1024}
	g1 := mustEngine(t, "LLaMA-2-7B", "A100", "llama.cpp", parallel.Single)
	g4 := mustEngine(t, "LLaMA-2-7B", "A100", "llama.cpp", parallel.Plan{TP: 1, PP: 4, EP: 1})
	r1, err := g1.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := g4.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	gain := r4.Throughput / r1.Throughput
	// The gain combines the small stage-boundary overlap and the
	// extra KV room (fewer batch waves) — still far from linear.
	if gain > 2.0 {
		t.Errorf("llama.cpp 4-GPU gain = %.2f, must be marginal", gain)
	}
	if gain < 1.0 {
		t.Errorf("llama.cpp must not slow down with more GPUs: %.2f", gain)
	}
}

func TestPowerIncreasesWithBatch(t *testing.T) {
	// Fig. 16: power rises with batch size.
	e := mustEngine(t, "LLaMA-2-7B", "H100", "TRT-LLM", parallel.Single)
	p1 := run(t, e, 1, 1024, 1024).AvgPowerWatts
	p64 := run(t, e, 64, 1024, 1024).AvgPowerWatts
	if p64 <= p1 {
		t.Errorf("power must rise with batch: %.0f vs %.0f W", p64, p1)
	}
	dev := hw.MustGet("H100")
	if p64 > dev.TDPWatts || p1 < dev.IdleWatts {
		t.Errorf("power out of envelope: %.0f..%.0f", p1, p64)
	}
}

func TestQuantizationSpeedsUpH100(t *testing.T) {
	// Fig. 3: FP8 on H100 beats FP16.
	fp16 := mustEngine(t, "LLaMA-3-8B", "H100", "vLLM", parallel.Single)
	fp8, err := New(Config{
		Model:     model.MustGet("LLaMA-3-8B"),
		Device:    hw.MustGet("H100"),
		Framework: framework.MustGet("vLLM"),
		Scheme:    quant.Scheme{Weights: dtype.FP8, KV: dtype.FP8},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Spec{Batch: 16, Input: 1024, Output: 1024}
	r16, err := fp16.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := fp8.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Throughput <= r16.Throughput {
		t.Errorf("FP8 must beat FP16 on H100: %.0f vs %.0f", r8.Throughput, r16.Throughput)
	}
}

func TestDecodeStepSeconds(t *testing.T) {
	e := mustEngine(t, "LLaMA-2-7B", "A100", "vLLM", parallel.Single)
	s, err := e.DecodeStepSeconds(1, 128)
	if err != nil || s <= 0 {
		t.Fatalf("DecodeStepSeconds: %v %v", s, err)
	}
	long, err := e.DecodeStepSeconds(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if long <= s {
		t.Error("longer context must cost more per step")
	}
	if _, err := e.DecodeStepSeconds(0, 1); err == nil {
		t.Error("batch 0 must error")
	}
}

func TestMI250EarlySaturation(t *testing.T) {
	// Fig. 17 / Fig. 35: MI250 throughput declines past batch 32 at
	// long lengths.
	e := mustEngine(t, "LLaMA-3-8B", "MI250", "vLLM", parallel.Single)
	t32 := run(t, e, 32, 1024, 1024).Throughput
	t64 := run(t, e, 64, 1024, 1024).Throughput
	if t64 >= t32 {
		t.Errorf("MI250 must decline past batch 32 at length 1024: %.0f vs %.0f", t64, t32)
	}
	// At short lengths it still scales.
	s32 := run(t, e, 32, 128, 128).Throughput
	s64 := run(t, e, 64, 128, 128).Throughput
	if s64 <= s32 {
		t.Errorf("MI250 must still scale at short lengths: %.0f vs %.0f", s64, s32)
	}
}

func TestBlockSizeEffect(t *testing.T) {
	// Fig. 2b: block 8 hurts; block ≥ 16 flat.
	mk := func(block int) *Engine {
		e, err := New(Config{
			Model:         model.MustGet("LLaMA-3-8B"),
			Device:        hw.MustGet("A100"),
			Framework:     framework.MustGet("vLLM"),
			KVBlockTokens: block,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	spec := workload.Spec{Batch: 64, Input: 1024, Output: 1024}
	r8, err := mk(8).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := mk(16).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r64, err := mk(64).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r16.Throughput <= r8.Throughput {
		t.Error("block 16 must beat block 8")
	}
	ratio := r16.Throughput / r8.Throughput
	if ratio < 1.05 || ratio > 1.6 {
		t.Errorf("block 16/8 ratio = %.2f, want near the paper's 1.27", ratio)
	}
	if diff := r64.Throughput/r16.Throughput - 1; diff > 0.02 || diff < -0.02 {
		t.Errorf("blocks ≥16 must be equivalent, got %.3f", diff)
	}
}

package engine

import (
	"math"
	"testing"

	"llmbench/internal/parallel"
	"llmbench/internal/workload"
)

func TestPowerTraceStructure(t *testing.T) {
	e := mustEngine(t, "LLaMA-3-8B", "A100", "TRT-LLM", parallel.Single)
	spec := workload.Spec{Batch: 16, Input: 1024, Output: 256}
	samples, err := e.PowerTrace(spec, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 10 {
		t.Fatalf("only %d samples", len(samples))
	}
	sawPrefill, sawDecode := false, false
	dev := e.Config().Device
	for i, s := range samples {
		if s.Watts < dev.IdleWatts || s.Watts > dev.TDPWatts {
			t.Fatalf("sample %d outside power envelope: %v W", i, s.Watts)
		}
		if i > 0 && s.TimeS <= samples[i-1].TimeS {
			t.Fatal("sample times must increase")
		}
		if s.Decode {
			sawDecode = true
			if !sawPrefill {
				t.Fatal("decode samples before any prefill sample")
			}
		} else {
			sawPrefill = true
			if sawDecode {
				t.Fatal("prefill sample after decode began")
			}
		}
	}
	if !sawPrefill || !sawDecode {
		t.Error("trace must cover both phases")
	}
	// Prefill (compute-hot, balanced walls) draws more than
	// memory-bound decode at moderate batch — the phase structure the
	// pynvml plots show.
	var pfW, decW, pfN, decN float64
	for _, s := range samples {
		if s.Decode {
			decW += s.Watts
			decN++
		} else {
			pfW += s.Watts
			pfN++
		}
	}
	if pfW/pfN <= decW/decN {
		t.Errorf("prefill power %.0f W must exceed decode power %.0f W", pfW/pfN, decW/decN)
	}
}

func TestPowerTraceMeanNearAverage(t *testing.T) {
	e := mustEngine(t, "LLaMA-2-7B", "H100", "vLLM", parallel.Single)
	spec := workload.Spec{Batch: 32, Input: 512, Output: 512}
	res, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := e.PowerTrace(spec, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range samples {
		sum += s.Watts
	}
	mean := sum / float64(len(samples))
	// Run's AvgPowerWatts weights decode only; the trace includes the
	// hotter prefill, so allow a generous band.
	if rel := math.Abs(mean-res.AvgPowerWatts) / res.AvgPowerWatts; rel > 0.3 {
		t.Errorf("trace mean %.0f W far from result average %.0f W", mean, res.AvgPowerWatts)
	}
}

func TestPowerTraceErrors(t *testing.T) {
	e := mustEngine(t, "LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	if _, err := e.PowerTrace(workload.Spec{Batch: 1, Input: 64, Output: 64}, 0); err == nil {
		t.Error("zero interval must fail")
	}
	if _, err := e.PowerTrace(workload.Spec{}, 0.01); err == nil {
		t.Error("invalid spec must fail")
	}
	oom := mustEngine(t, "LLaMA-2-70B", "A100", "vLLM", parallel.Single)
	if _, err := oom.PowerTrace(workload.Spec{Batch: 1, Input: 64, Output: 64}, 0.01); err == nil {
		t.Error("OOM config must fail")
	}
}

func TestPowerTraceTinyRunStillSamples(t *testing.T) {
	e := mustEngine(t, "LLaMA-3-8B", "H100", "TRT-LLM", parallel.Single)
	samples, err := e.PowerTrace(workload.Spec{Batch: 1, Input: 16, Output: 2}, 10 /* huge interval */)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Fatalf("want exactly one fallback sample, got %d", len(samples))
	}
}

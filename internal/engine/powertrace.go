package engine

// PowerTrace emulates the paper's pynvml sampling loop (§III-5e): it
// walks a run's timeline — prefill, then decode steps with growing
// context — and emits wattage samples at a fixed interval, so the
// power-vs-time structure (compute-hot prefill, bandwidth-bound
// decode) is observable, not just the scalar average.

import (
	"errors"

	"llmbench/internal/power"
	"llmbench/internal/workload"
)

// PowerSample is one observation of the simulated power meter.
type PowerSample struct {
	TimeS   float64
	Watts   float64
	Decode  bool // false during prefill
	Context int  // sequence context length at sample time
}

// PowerTrace samples device power over one wave of the given workload
// at intervalS spacing. Multi-wave workloads repeat the same profile;
// one wave captures it.
func (e *Engine) PowerTrace(spec workload.Spec, intervalS float64) ([]PowerSample, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if intervalS <= 0 {
		return nil, errors.New("engine: non-positive sample interval")
	}
	if lim := e.cfg.Device.ServiceBatchLimit; lim > 0 && spec.Batch > lim {
		return nil, ErrUnsupportedBatch
	}
	_, conc, err := e.memoryPlan(spec)
	if err != nil {
		return nil, err
	}
	waveSpec := spec
	if conc < spec.Batch {
		if !e.cfg.Framework.BatchWaves {
			return nil, ErrOOM
		}
		waves := (spec.Batch + conc - 1) / conc
		waveSpec.Batch = (spec.Batch + waves - 1) / waves
	}

	occupancy := float64(waveSpec.Batch) / 64
	if occupancy > 1 {
		occupancy = 1
	}
	draw := func(balance float64) (float64, error) {
		util := power.Utilization(balance, occupancy, e.effC)
		return power.Draw(e.cfg.Device, util)
	}

	var samples []PowerSample
	now := 0.0
	nextSample := 0.0
	emit := func(until float64, watts float64, decode bool, ctx int) {
		for nextSample < until {
			samples = append(samples, PowerSample{TimeS: nextSample, Watts: watts, Decode: decode, Context: ctx})
			nextSample += intervalS
		}
	}

	pf, err := e.prefill(waveSpec)
	if err != nil {
		return nil, err
	}
	w, err := draw(powerBalance(pf))
	if err != nil {
		return nil, err
	}
	now += pf.Seconds
	emit(now, w, false, waveSpec.Input)

	for t := 0; t < waveSpec.Output-1; t++ {
		ctx := waveSpec.Input + t + 1
		st, err := e.decodeStep(waveSpec, ctx)
		if err != nil {
			return nil, err
		}
		w, err := draw(powerBalance(st))
		if err != nil {
			return nil, err
		}
		now += st.Seconds
		emit(now, w, true, ctx)
	}
	if len(samples) == 0 {
		// Run shorter than one interval: emit a single decode-phase
		// sample so callers always see something.
		samples = append(samples, PowerSample{TimeS: 0, Watts: w, Decode: spec.Output > 1, Context: waveSpec.Input})
	}
	return samples, nil
}

package engine

import (
	"fmt"
	"sync"
	"testing"

	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/model"
	"llmbench/internal/parallel"
	"llmbench/internal/quant"
	"llmbench/internal/workload"
)

func rangeTestEngine(t *testing.T, fw string) *Engine {
	t.Helper()
	e, err := New(Config{
		Model:     model.MustGet("LLaMA-3-8B"),
		Device:    hw.MustGet("A100"),
		Framework: framework.MustGet(fw),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDecodeRangeMatchesSteppedSum verifies the core range-pricing
// invariant: DecodeRangeSeconds aggregates exactly what a per-step
// loop over the raw (unmemoised) decode pricing produces, in the same
// summation order, byte for byte.
func TestDecodeRangeMatchesSteppedSum(t *testing.T) {
	for _, fw := range []string{"vLLM", "llama.cpp"} {
		eng := rangeTestEngine(t, fw)
		fresh := rangeTestEngine(t, fw) // separate memo table
		for _, c := range []struct{ batch, ctxStart, steps int }{
			{1, 1, 1},
			{16, 129, 511},
			{64, 1025, 1023},
			{8, 4097, 100},
		} {
			rng, err := eng.DecodeRangeSeconds(c.batch, c.ctxStart, c.steps)
			if err != nil {
				t.Fatal(err)
			}
			var sum, balSum, maxStep float64
			for i := 0; i < c.steps; i++ {
				st, err := fresh.decodeStep(workload.Spec{Batch: c.batch, Input: 1, Output: 1}, c.ctxStart+i)
				if err != nil {
					t.Fatal(err)
				}
				sum += st.Seconds
				balSum += powerBalance(st) * st.Seconds
				if st.Seconds > maxStep {
					maxStep = st.Seconds
				}
			}
			if rng.Seconds != sum || rng.BalanceSeconds != balSum || rng.MaxStepSeconds != maxStep {
				t.Errorf("%s %+v: range {%v %v %v} != stepped {%v %v %v}",
					fw, c, rng.Seconds, rng.BalanceSeconds, rng.MaxStepSeconds, sum, balSum, maxStep)
			}
		}
	}
}

// TestRunDeterministicUnderMemo asserts a warm memo table changes
// nothing: the same point run repeatedly, and on a fresh engine, is
// byte-identical.
func TestRunDeterministicUnderMemo(t *testing.T) {
	eng := rangeTestEngine(t, "vLLM")
	spec := workload.Spec{Batch: 16, Input: 512, Output: 512}
	first, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Run(spec) // fully memoised now
	if err != nil {
		t.Fatal(err)
	}
	cold, err := rangeTestEngine(t, "vLLM").Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first != warm || first != cold {
		t.Errorf("memoised Run differs:\nfirst %+v\nwarm  %+v\ncold  %+v", first, warm, cold)
	}
}

// TestDecodeStepCostConcurrent hammers one engine's memo table from
// many goroutines (meaningful under -race) and checks every reader
// observes the same value.
func TestDecodeStepCostConcurrent(t *testing.T) {
	eng := rangeTestEngine(t, "vLLM")
	want, err := eng.DecodeStepCost(8, 777)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, err := eng.DecodeStepCost(8, 700+i%100)
				if err != nil {
					errs <- err
					return
				}
				if i%100 == 77 && got != want {
					errs <- fmt.Errorf("ctx 777: got %+v want %+v", got, want)
					return
				}
				if _, err := eng.DecodeRangeSeconds(8, 700, 50); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCachedSharesOneEngine pins the single-cache property: every
// spelling of one system resolves to the same *Engine through the
// process-wide cache.
func TestCachedSharesOneEngine(t *testing.T) {
	cfg := Config{
		Model:     model.MustGet("LLaMA-2-7B"),
		Device:    hw.MustGet("H100"),
		Framework: framework.MustGet("TRT-LLM"),
	}
	a, err := Cached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	normal := cfg
	normal.Plan = parallel.Single
	normal.Scheme = quant.FP16
	b, err := Cached(normal)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("zero-valued and normalised configs must share one cached engine")
	}
	private, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if private == a {
		t.Error("New must build a private instance, not the cached one")
	}
	if CachedCount() < 1 {
		t.Error("cache must report its entries")
	}
}

// TestDecodeRangeValidation covers the error surface.
func TestDecodeRangeValidation(t *testing.T) {
	eng := rangeTestEngine(t, "vLLM")
	if _, err := eng.DecodeRangeSeconds(0, 1, 1); err == nil {
		t.Error("batch 0 must fail")
	}
	if _, err := eng.DecodeRangeSeconds(1, 0, 1); err == nil {
		t.Error("ctx 0 must fail")
	}
	if _, err := eng.DecodeRangeSeconds(1, 1, -1); err == nil {
		t.Error("negative steps must fail")
	}
	empty, err := eng.DecodeRangeSeconds(1, 1, 0)
	if err != nil || empty != (RangeStats{}) {
		t.Errorf("empty range must be zero: %+v, %v", empty, err)
	}
}

package engine

import (
	"fmt"
	"sync"
	"testing"

	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/model"
	"llmbench/internal/parallel"
	"llmbench/internal/quant"
	"llmbench/internal/workload"
)

func rangeTestEngine(t *testing.T, fw string) *Engine {
	t.Helper()
	e, err := New(Config{
		Model:     model.MustGet("LLaMA-3-8B"),
		Device:    hw.MustGet("A100"),
		Framework: framework.MustGet(fw),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDecodeRangeMatchesSteppedSum verifies the core range-pricing
// invariant: DecodeRangeSeconds aggregates exactly what a per-step
// loop over the raw (unmemoised) decode pricing produces, in the same
// summation order, byte for byte.
func TestDecodeRangeMatchesSteppedSum(t *testing.T) {
	for _, fw := range []string{"vLLM", "llama.cpp"} {
		eng := rangeTestEngine(t, fw)
		fresh := rangeTestEngine(t, fw) // separate memo table
		for _, c := range []struct{ batch, ctxStart, steps int }{
			{1, 1, 1},
			{16, 129, 511},
			{64, 1025, 1023},
			{8, 4097, 100},
		} {
			rng, err := eng.DecodeRangeSeconds(c.batch, c.ctxStart, c.steps)
			if err != nil {
				t.Fatal(err)
			}
			var sum, balSum, maxStep float64
			for i := 0; i < c.steps; i++ {
				st, err := fresh.decodeStep(workload.Spec{Batch: c.batch, Input: 1, Output: 1}, c.ctxStart+i)
				if err != nil {
					t.Fatal(err)
				}
				sum += st.Seconds
				balSum += powerBalance(st) * st.Seconds
				if st.Seconds > maxStep {
					maxStep = st.Seconds
				}
			}
			if rng.Seconds != sum || rng.BalanceSeconds != balSum || rng.MaxStepSeconds != maxStep {
				t.Errorf("%s %+v: range {%v %v %v} != stepped {%v %v %v}",
					fw, c, rng.Seconds, rng.BalanceSeconds, rng.MaxStepSeconds, sum, balSum, maxStep)
			}
		}
	}
}

// TestRunDeterministicUnderMemo asserts a warm memo table changes
// nothing: the same point run repeatedly, and on a fresh engine, is
// byte-identical.
func TestRunDeterministicUnderMemo(t *testing.T) {
	eng := rangeTestEngine(t, "vLLM")
	spec := workload.Spec{Batch: 16, Input: 512, Output: 512}
	first, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Run(spec) // fully memoised now
	if err != nil {
		t.Fatal(err)
	}
	cold, err := rangeTestEngine(t, "vLLM").Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first != warm || first != cold {
		t.Errorf("memoised Run differs:\nfirst %+v\nwarm  %+v\ncold  %+v", first, warm, cold)
	}
}

// TestDecodeStepCostConcurrent hammers one engine's memo table from
// many goroutines (meaningful under -race) and checks every reader
// observes the same value.
func TestDecodeStepCostConcurrent(t *testing.T) {
	eng := rangeTestEngine(t, "vLLM")
	want, err := eng.DecodeStepCost(8, 777)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, err := eng.DecodeStepCost(8, 700+i%100)
				if err != nil {
					errs <- err
					return
				}
				if i%100 == 77 && got != want {
					errs <- fmt.Errorf("ctx 777: got %+v want %+v", got, want)
					return
				}
				if _, err := eng.DecodeRangeSeconds(8, 700, 50); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCachedSharesOneEngine pins the single-cache property: every
// spelling of one system resolves to the same *Engine through the
// process-wide cache.
func TestCachedSharesOneEngine(t *testing.T) {
	cfg := Config{
		Model:     model.MustGet("LLaMA-2-7B"),
		Device:    hw.MustGet("H100"),
		Framework: framework.MustGet("TRT-LLM"),
	}
	a, err := Cached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	normal := cfg
	normal.Plan = parallel.Single
	normal.Scheme = quant.FP16
	b, err := Cached(normal)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("zero-valued and normalised configs must share one cached engine")
	}
	private, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if private == a {
		t.Error("New must build a private instance, not the cached one")
	}
	if CachedCount() < 1 {
		t.Error("cache must report its entries")
	}
}

// TestDecodeRangeValidation covers the error surface.
func TestDecodeRangeValidation(t *testing.T) {
	eng := rangeTestEngine(t, "vLLM")
	if _, err := eng.DecodeRangeSeconds(0, 1, 1); err == nil {
		t.Error("batch 0 must fail")
	}
	if _, err := eng.DecodeRangeSeconds(1, 0, 1); err == nil {
		t.Error("ctx 0 must fail")
	}
	if _, err := eng.DecodeRangeSeconds(1, 1, -1); err == nil {
		t.Error("negative steps must fail")
	}
	empty, err := eng.DecodeRangeSeconds(1, 1, 0)
	if err != nil || empty != (RangeStats{}) {
		t.Errorf("empty range must be zero: %+v, %v", empty, err)
	}
}

// TestDecodeStepCostsVector verifies the serving kernel's pricing
// primitive: the memoised vector holds exactly the per-step costs
// DecodeStepCost returns, the cached slice is shared across calls,
// and invalid arguments are rejected.
func TestDecodeStepCostsVector(t *testing.T) {
	e := rangeTestEngine(t, "vLLM")
	vec, err := e.DecodeStepCosts(8, 300, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 50 {
		t.Fatalf("vector length %d, want 50", len(vec))
	}
	for i, c := range vec {
		want, err := e.DecodeStepCost(8, 300+i)
		if err != nil {
			t.Fatal(err)
		}
		if c != want.Seconds {
			t.Fatalf("step %d cost %v, want %v", i, c, want.Seconds)
		}
	}
	again, err := e.DecodeStepCosts(8, 300, 50)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &vec[0] {
		t.Error("repeated request must return the memoised slice")
	}
	// A longer run grows the entry in place; shorter runs then share
	// the grown vector's storage — the map stays bounded by distinct
	// (batch, ctxStart) pairs, not by every requested length.
	longer, err := e.DecodeStepCosts(8, 300, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(longer) != 80 || longer[10] != vec[10] {
		t.Fatalf("grown vector inconsistent with original at step 10")
	}
	short, err := e.DecodeStepCosts(8, 300, 30)
	if err != nil {
		t.Fatal(err)
	}
	if &short[0] != &longer[0] {
		t.Error("shorter request must slice the grown memoised vector")
	}
	if empty, err := e.DecodeStepCosts(8, 300, 0); err != nil || len(empty) != 0 {
		t.Errorf("zero steps = (%v, %v), want empty", empty, err)
	}
	for _, bad := range [][3]int{{0, 300, 5}, {8, 0, 5}, {8, 300, -1}} {
		if _, err := e.DecodeStepCosts(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("DecodeStepCosts%v must error", bad)
		}
	}
}

// TestDecodeStepCostsConcurrent hammers the vector memo from many
// goroutines (the parallel kernel's access pattern); run with -race.
func TestDecodeStepCostsConcurrent(t *testing.T) {
	e := rangeTestEngine(t, "vLLM")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				vec, err := e.DecodeStepCosts(4+w%2, 200+i, 10)
				if err != nil {
					errs[w] = err
					return
				}
				if len(vec) != 10 {
					errs[w] = fmt.Errorf("worker %d: bad length %d", w, len(vec))
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

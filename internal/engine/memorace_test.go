package engine

// Concurrent-memo property test (run with -race): N goroutines hammer
// one engine's pricing entry points over a mix of cold keys (first
// touch races the copy-on-write builders) and warm keys (pure atomic
// reads), and every result must be byte-identical to a serial
// reference computed on a separate engine. This is the determinism
// contract of the lock-free memo grids: racing builders compute pure
// values, so whichever racer's snapshot lands last, readers see the
// same bytes the serial path produces.

import (
	"fmt"
	"sync"
	"testing"
)

type memoProbe struct {
	batch, ctx, steps int
}

func memoProbeSet() []memoProbe {
	var probes []memoProbe
	for _, batch := range []int{2, 5, 8} {
		for i := 0; i < 12; i++ {
			probes = append(probes, memoProbe{batch: batch, ctx: 200 + 31*i, steps: 1 + 17*i})
		}
	}
	return probes
}

func TestMemoConcurrentMatchesSerial(t *testing.T) {
	probes := memoProbeSet()

	// Serial reference: one engine, probes evaluated in order, single
	// goroutine. Keep the full result bytes of every entry point.
	ref := rangeTestEngine(t, "vLLM")
	type expect struct {
		step  StepCost
		rng   RangeStats
		costs []float64
	}
	want := make([]expect, len(probes))
	for i, p := range probes {
		step, err := ref.DecodeStepCost(p.batch, p.ctx)
		if err != nil {
			t.Fatal(err)
		}
		rng, err := ref.DecodeRangeSeconds(p.batch, p.ctx, p.steps)
		if err != nil {
			t.Fatal(err)
		}
		costs, err := ref.DecodeStepCosts(p.batch, p.ctx, p.steps)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = expect{step: step, rng: rng, costs: costs}
	}

	// Hammered engine: starts fully cold, so the first pass through
	// each probe races the builders; later rounds hit warm snapshots.
	// Each goroutine walks the probes at a different rotation so cold
	// keys are contended from the first instant.
	eng := rangeTestEngine(t, "vLLM")
	const workers = 8
	const rounds = 5
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			check := func(i int, p memoProbe) error {
				step, err := eng.DecodeStepCost(p.batch, p.ctx)
				if err != nil {
					return err
				}
				if step != want[i].step {
					return fmt.Errorf("probe %v: step %+v, serial %+v", p, step, want[i].step)
				}
				rng, err := eng.DecodeRangeSeconds(p.batch, p.ctx, p.steps)
				if err != nil {
					return err
				}
				if rng != want[i].rng {
					return fmt.Errorf("probe %v: range %+v, serial %+v", p, rng, want[i].rng)
				}
				costs, err := eng.DecodeStepCosts(p.batch, p.ctx, p.steps)
				if err != nil {
					return err
				}
				for j := range costs {
					if costs[j] != want[i].costs[j] {
						return fmt.Errorf("probe %v: cost[%d] %v, serial %v", p, j, costs[j], want[i].costs[j])
					}
				}
				return nil
			}
			for r := 0; r < rounds; r++ {
				for k := range probes {
					i := (k + w*len(probes)/workers) % len(probes)
					if err := check(i, probes[i]); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

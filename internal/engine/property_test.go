package engine

// Property-based invariants of the simulator, checked over randomized
// workloads: metric consistency, monotonicity in workload dimensions,
// and monotonicity of OOM behaviour.

import (
	"errors"
	"testing"
	"testing/quick"

	"llmbench/internal/parallel"
	"llmbench/internal/workload"
)

func propEngine(t *testing.T) *Engine {
	t.Helper()
	return mustEngine(t, "Mistral-7B", "H100", "TRT-LLM", parallel.Single)
}

func TestPropMetricsConsistent(t *testing.T) {
	e := propEngine(t)
	f := func(b, in, out uint8) bool {
		spec := workload.Spec{
			Batch:  int(b%64) + 1,
			Input:  int(in)*8 + 1,
			Output: int(out)*8 + 2,
		}
		r, err := e.Run(spec)
		if err != nil {
			return errors.Is(err, ErrOOM) // only OOM is acceptable
		}
		if r.TTFTSeconds <= 0 || r.E2ESeconds < r.TTFTSeconds || r.Throughput <= 0 {
			return false
		}
		// Eq. (1) and Eq. (2) hold exactly.
		itl := (r.E2ESeconds - r.TTFTSeconds) / (float64(spec.Batch) * float64(spec.Output-1))
		if diff := r.ITLSeconds - itl; diff > 1e-12 || diff < -1e-12 {
			return false
		}
		thr := spec.TotalTokens() / r.E2ESeconds
		if diff := r.Throughput - thr; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		// Power inside the device envelope.
		return r.AvgPowerWatts >= e.cfg.Device.IdleWatts && r.AvgPowerWatts <= e.cfg.Device.TDPWatts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropE2EMonotoneInOutput(t *testing.T) {
	e := propEngine(t)
	f := func(b, o1, o2 uint8) bool {
		batch := int(b%32) + 1
		a, z := int(o1)+2, int(o2)+2
		if a > z {
			a, z = z, a
		}
		ra, err1 := e.Run(workload.Spec{Batch: batch, Input: 256, Output: a})
		rz, err2 := e.Run(workload.Spec{Batch: batch, Input: 256, Output: z})
		if err1 != nil || err2 != nil {
			return true // OOM paths tested elsewhere
		}
		return rz.E2ESeconds >= ra.E2ESeconds-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropTTFTMonotoneInInput(t *testing.T) {
	e := propEngine(t)
	f := func(i1, i2 uint8) bool {
		a, z := int(i1)*4+1, int(i2)*4+1
		if a > z {
			a, z = z, a
		}
		ra, err1 := e.Run(workload.Spec{Batch: 4, Input: a, Output: 8})
		rz, err2 := e.Run(workload.Spec{Batch: 4, Input: z, Output: 8})
		if err1 != nil || err2 != nil {
			return true
		}
		return rz.TTFTSeconds >= ra.TTFTSeconds-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropOOMMonotoneInBatch(t *testing.T) {
	// For a static (no-waves) framework, if batch b OOMs then any
	// larger batch OOMs too.
	e := mustEngine(t, "LLaMA-3-8B", "Gaudi2", "DeepSpeed", parallel.Single)
	firstOOM := 0
	for b := 1; b <= 128; b *= 2 {
		_, err := e.Run(workload.Spec{Batch: b, Input: 1024, Output: 1024})
		if errors.Is(err, ErrOOM) {
			firstOOM = b
			break
		}
	}
	if firstOOM == 0 {
		t.Fatal("expected some batch to OOM on Gaudi2")
	}
	for b := firstOOM; b <= 256; b += 16 {
		if _, err := e.Run(workload.Spec{Batch: b, Input: 1024, Output: 1024}); !errors.Is(err, ErrOOM) {
			t.Fatalf("batch %d did not OOM although %d did", b, firstOOM)
		}
	}
}

func TestPropFasterDeviceNeverSlower(t *testing.T) {
	// GH200 strictly dominates H100 (same compute, more and faster
	// memory); throughput must never be lower.
	h := mustEngine(t, "LLaMA-3-8B", "H100", "TRT-LLM", parallel.Single)
	gh := mustEngine(t, "LLaMA-3-8B", "GH200", "TRT-LLM", parallel.Single)
	f := func(b, l uint8) bool {
		spec := workload.Spec{Batch: int(b%64) + 1, Input: int(l)*8 + 8, Output: int(l)*8 + 8}
		rh, err1 := h.Run(spec)
		rg, err2 := gh.Run(spec)
		if err1 != nil || err2 != nil {
			return true
		}
		return rg.Throughput >= rh.Throughput-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropMoreDevicesNeverSlowerForTP(t *testing.T) {
	one := mustEngine(t, "Mistral-7B", "H100", "TRT-LLM", parallel.Single)
	four := mustEngine(t, "Mistral-7B", "H100", "TRT-LLM", parallel.Plan{TP: 4, PP: 1, EP: 1})
	for _, b := range []int{1, 16, 64} {
		spec := workload.Spec{Batch: b, Input: 1024, Output: 1024}
		r1, err := one.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		r4, err := four.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if r4.Throughput < r1.Throughput {
			t.Errorf("batch %d: TP=4 (%.0f) slower than TP=1 (%.0f)", b, r4.Throughput, r1.Throughput)
		}
	}
}

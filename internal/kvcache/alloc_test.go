package kvcache

// Allocation-regression gate: a warm allocator — slot table grown,
// free stack populated, scratch warmed — must serve a full
// alloc→extend→query→free cycle without allocating. The dense slice
// tables exist precisely so steady-state serving (internal/des) costs
// pure array arithmetic per event; a PR that reintroduces a per-call
// map or slice allocation fails here instead of regressing the
// BENCH.md million-request rows.

import "testing"

func TestPagedWarmCycleAllocs(t *testing.T) {
	p, err := NewPaged(16, 65536, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	var seqs [8]Seq
	cycle := func() {
		for i := range seqs {
			seq, err := p.Alloc(512 + 16*i)
			if err != nil {
				t.Fatal(err)
			}
			seqs[i] = seq
		}
		for step := 0; step < 32; step++ {
			if p.MaxExtendSteps(seqs[:], 64) < 1 {
				t.Fatal("warm pool unexpectedly full")
			}
			for i, seq := range seqs {
				if err := p.Extend(seq, 512+16*i+step+1); err != nil {
					t.Fatal(err)
				}
			}
		}
		_ = p.UsedBytes()
		_ = p.WasteBytes()
		for _, seq := range seqs {
			p.Free(seq)
		}
	}
	cycle() // warm the slot table, free stack, and scratch buffer
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Errorf("warm paged alloc/extend/free cycle allocates %.1f times, want 0", avg)
	}
}

func TestMonolithicWarmCycleAllocs(t *testing.T) {
	m, err := NewMonolithic(2048, 65536, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	var seqs [8]Seq
	cycle := func() {
		for i := range seqs {
			seq, err := m.Alloc(256 + 8*i)
			if err != nil {
				t.Fatal(err)
			}
			seqs[i] = seq
		}
		for step := 0; step < 32; step++ {
			if m.MaxExtendSteps(seqs[:], 64) < 1 {
				t.Fatal("warm pool unexpectedly full")
			}
			for i, seq := range seqs {
				if err := m.Extend(seq, 256+8*i+step+1); err != nil {
					t.Fatal(err)
				}
			}
		}
		_ = m.UsedBytes()
		_ = m.WasteBytes()
		for _, seq := range seqs {
			m.Free(seq)
		}
	}
	cycle()
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Errorf("warm monolithic alloc/extend/free cycle allocates %.1f times, want 0", avg)
	}
}

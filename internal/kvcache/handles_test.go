package kvcache

// Cross-allocator contract suites. Every Allocator in the package —
// Paged, Monolithic, PrefixPaged, and the Tiered wrapper — must agree
// on two behaviours the serving kernel (internal/des) leans on:
//
//   - CanAlloc(n) == true ⇔ an immediate Alloc(n) succeeds: admission
//     decisions and allocations price through the same arithmetic, so
//     a station can never admit a request its allocator then rejects.
//   - Dead handles are inert: double Free is a no-op that perturbs no
//     accounting, Extend after Free errors, and a handle minted by a
//     different allocator instance is rejected rather than aliased.

import (
	"math/rand"
	"testing"
)

// allocatorCase builds a fresh allocator plus an opaque accounting
// snapshot used to prove abuse left no trace. Snapshots reach into
// allocator internals (freeBlocks/slackTokens/prefixRef) on purpose:
// the public UsedBytes/WasteBytes views round through float64 and
// could mask a one-block leak.
type allocatorCase struct {
	name     string
	build    func(t *testing.T) Allocator
	snapshot func(a Allocator) [4]int
}

func allocatorCases() []allocatorCase {
	return []allocatorCase{
		{
			name: "paged",
			build: func(t *testing.T) Allocator {
				t.Helper()
				p, err := NewPaged(16, 1, 16*64)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			snapshot: func(a Allocator) [4]int {
				p := a.(*Paged)
				return [4]int{p.freeBlocks, p.slackTokens, p.table.live, 0}
			},
		},
		{
			name: "monolithic",
			build: func(t *testing.T) Allocator {
				t.Helper()
				m, err := NewMonolithic(256, 1, 256*16)
				if err != nil {
					t.Fatal(err)
				}
				return m
			},
			snapshot: func(a Allocator) [4]int {
				m := a.(*Monolithic)
				return [4]int{m.writtenTokens, m.table.live, 0, 0}
			},
		},
		{
			name: "prefixpaged",
			build: func(t *testing.T) Allocator {
				t.Helper()
				p, err := NewPrefixPaged(16, 64, 1, 16*64)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			snapshot: func(a Allocator) [4]int {
				p := a.(*PrefixPaged)
				return [4]int{p.freeBlocks, p.slackTokens, p.prefixRef, p.table.live}
			},
		},
		{
			name: "tiered",
			build: func(t *testing.T) Allocator {
				t.Helper()
				gpu, err := NewPrefixPaged(16, 64, 1, 16*64)
				if err != nil {
					t.Fatal(err)
				}
				tv, err := NewTiered(gpu, 16*8, HostLink{GBPerS: 32, LatencyS: 5e-6})
				if err != nil {
					t.Fatal(err)
				}
				return tv
			},
			snapshot: func(a Allocator) [4]int {
				tv := a.(*Tiered)
				return [4]int{tv.gpu.freeBlocks, tv.gpu.slackTokens, tv.gpu.prefixRef, tv.tier.UsedBlocks()}
			},
		},
	}
}

// TestCanAllocAllocAgree churns each allocator through seeded random
// alloc/free traffic and checks, at every step, that CanAlloc's
// verdict matches what Alloc then does. The mix crosses the capacity
// boundary from both sides so both verdicts are exercised.
func TestCanAllocAllocAgree(t *testing.T) {
	for _, tc := range allocatorCases() {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.build(t)
			rng := rand.New(rand.NewSource(42))
			var live []Seq
			admitted, refused := 0, 0
			for step := 0; step < 2000; step++ {
				if rng.Intn(3) == 0 && len(live) > 0 {
					i := rng.Intn(len(live))
					a.Free(live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				n := 1 + rng.Intn(200)
				can := a.CanAlloc(n)
				seq, err := a.Alloc(n)
				switch {
				case can && err != nil:
					t.Fatalf("step %d: CanAlloc(%d) promised room, Alloc failed: %v", step, n, err)
				case !can && err == nil:
					t.Fatalf("step %d: CanAlloc(%d) refused, Alloc succeeded", step, n)
				case err == nil:
					live = append(live, seq)
					admitted++
				default:
					refused++
				}
			}
			if admitted == 0 || refused == 0 {
				t.Fatalf("mix never crossed capacity (admitted %d, refused %d): the property was not exercised", admitted, refused)
			}
			for _, s := range live {
				a.Free(s)
			}
		})
	}
}

// TestStaleHandleAbuse runs the dead-handle gauntlet over every
// allocator: double Free, Extend after Free, and handles from a
// foreign allocator instance must all bounce off the generation guard
// without touching live accounting.
func TestStaleHandleAbuse(t *testing.T) {
	for _, tc := range allocatorCases() {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.build(t)
			keep := mustAlloc(t, a, 100)
			dead := mustAlloc(t, a, 80)
			a.Free(dead)

			base := tc.snapshot(a)
			a.Free(dead) // double free
			if got := tc.snapshot(a); got != base {
				t.Errorf("double free moved accounting %v -> %v", base, got)
			}
			if err := a.Extend(dead, 200); err == nil {
				t.Error("Extend after Free must error")
			}
			if got := tc.snapshot(a); got != base {
				t.Error("failed Extend must not move accounting")
			}
			if got := a.MaxExtendSteps([]Seq{keep, dead}, 8); got != 0 {
				t.Errorf("dead handle in MaxExtendSteps: got %d, want 0", got)
			}

			// Handles minted by a different instance: slots this
			// allocator never created resolve to nothing.
			foreign := tc.build(t)
			var fseq Seq
			for i := 0; i < 4; i++ {
				fseq = mustAlloc(t, foreign, 50)
			}
			if err := a.Extend(fseq, 60); err == nil {
				t.Error("foreign handle must not extend")
			}
			a.Free(fseq)
			if got := tc.snapshot(a); got != base {
				t.Errorf("foreign free moved accounting %v -> %v", base, got)
			}

			if err := a.Extend(keep, 128); err != nil {
				t.Errorf("live handle must stay usable after the gauntlet: %v", err)
			}
			a.Free(keep)
		})
	}
}

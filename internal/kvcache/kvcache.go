// Package kvcache implements the two KV-cache management strategies
// the paper contrasts in §IV-B: vLLM-style block-paged allocation
// (PagedAttention) and traditional monolithic reservation.
//
// The allocators are mechanistic — they track real block/reservation
// state per sequence — so the scheduler can admit, grow, and evict
// sequences and observe genuine fragmentation, and the engine can
// price the block-size-dependent attention-kernel overhead of Fig. 2b.
//
// Sequences are identified by opaque Seq handles the allocator assigns
// at Alloc time. Internally every allocator keeps dense slice tables
// indexed by the handle's slot — no maps — so the per-event bookkeeping
// of the serving kernel (Alloc/Extend/Free/MaxExtendSteps per coalesced
// window) is pure array arithmetic. Slots are recycled through a free
// list; a generation counter baked into the handle makes stale handles
// detectable, so a Free'd handle can never alias a later sequence.
//
// # Tiering and restore
//
// Production serving stacks keep a CPU tier behind the device cache:
// when the last sequence referencing a shared prefix frees, the
// prefix's KV blocks are demoted to host memory (HostTier — a
// capacity-bounded LRU with touch/demote/restore/evict counters)
// rather than dropped, and the next request needing the prefix
// restores them over the device↔host link (HostLink, priced from
// hw.HostLinkGBs/HostLinkLatencyUS) instead of recomputing prefill.
// Tiered wraps PrefixPaged with exactly this behaviour and exposes
// the saving through PrefillDiscounter: after each Alloc the serving
// kernel drains (skipTokens, restoreS) — cached full-block prefix
// tokens that need no prefill compute, and the host-link seconds to
// charge for blocks that had to come back up. Warm promote/demote/
// restore cycles allocate nothing, like the rest of the package.
package kvcache

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when an allocation cannot be satisfied.
var ErrOutOfMemory = errors.New("kvcache: out of memory")

// Seq is an opaque live-sequence handle: the low 32 bits are a dense
// slot index into the allocator's tables, the high 32 bits a per-slot
// generation counter (odd while live, bumped on Alloc and on Free).
// The zero Seq is never valid.
type Seq int64

func makeSeq(slot int, gen uint32) Seq {
	return Seq(int64(gen)<<32 | int64(uint32(slot)))
}

func (s Seq) slot() int   { return int(uint32(s)) }
func (s Seq) gen() uint32 { return uint32(uint64(s) >> 32) }

// Allocator manages KV storage for in-flight sequences.
type Allocator interface {
	// Alloc reserves storage for a new sequence currently holding
	// tokens context entries and returns its handle.
	Alloc(tokens int) (Seq, error)
	// Extend grows a sequence to the new token count.
	Extend(seq Seq, tokens int) error
	// Free releases a sequence; freeing an unknown or stale handle is
	// a no-op. The handle is dead afterwards.
	Free(seq Seq)
	// UsedBytes is storage currently reserved (including waste).
	UsedBytes() float64
	// WasteBytes is reserved-but-unwritten storage (fragmentation).
	WasteBytes() float64
	// CapacityBytes is the allocator's budget.
	CapacityBytes() float64
	// CanAlloc reports whether a new sequence of the given length fits.
	CanAlloc(tokens int) bool
	// MaxExtendSteps returns the largest k ≤ limit such that extending
	// every listed sequence by one token per step, for k consecutive
	// steps (all sequences advancing together each step), would
	// succeed without ErrOutOfMemory. It never mutates state; the
	// serving schedulers use it to bound how many identical decode
	// iterations they may fast-forward in one event. An unknown or
	// stale handle makes the result 0.
	MaxExtendSteps(seqs []Seq, limit int) int
}

// --- dense sequence table ------------------------------------------------

// seqTable is the shared slot store behind every allocator: per-slot
// token counts, one allocator-specific auxiliary integer (block count
// for Paged, private-block count for PrefixPaged), and the generation
// guard. Lookups, inserts, and releases are O(1) slice operations; the
// only allocations are the geometric growth of the tables themselves,
// which stops once the peak concurrency has been seen — the warm
// steady state of a serving run touches no map and allocates nothing.
type seqTable struct {
	tokens []int    // per-slot written token count
	aux    []int    // per-slot allocator-specific count
	gen    []uint32 // per-slot generation; odd = live
	free   []int32  // stack of dead slots
	live   int
}

// alloc claims a slot (recycling the most recently freed one first)
// and returns the new live handle.
func (t *seqTable) alloc(tokens, aux int) Seq {
	var slot int
	if n := len(t.free); n > 0 {
		slot = int(t.free[n-1])
		t.free = t.free[:n-1]
	} else {
		slot = len(t.tokens)
		t.tokens = append(t.tokens, 0)
		t.aux = append(t.aux, 0)
		t.gen = append(t.gen, 0)
	}
	t.tokens[slot] = tokens
	t.aux[slot] = aux
	t.gen[slot]++ // even → odd: live
	t.live++
	return makeSeq(slot, t.gen[slot])
}

// lookup resolves a handle to its slot, or -1 if the handle is stale,
// foreign, or the zero Seq.
func (t *seqTable) lookup(s Seq) int {
	slot := s.slot()
	g := s.gen()
	if g&1 == 0 || slot >= len(t.gen) || t.gen[slot] != g {
		return -1
	}
	return slot
}

// release kills a live slot and pushes it on the free stack.
func (t *seqTable) release(slot int) {
	t.gen[slot]++ // odd → even: dead
	t.free = append(t.free, int32(slot))
	t.live--
}

// --- Paged allocator ----------------------------------------------------

// Paged is a vLLM-style block allocator: storage is carved into
// fixed-size blocks of BlockTokens tokens; sequences own block lists
// and waste at most one partial block each.
type Paged struct {
	BlockTokens   int
	BytesPerToken float64
	capacity      float64
	totalBlocks   int
	freeBlocks    int
	slackTokens   int // reserved-but-unwritten tokens across live seqs
	table         seqTable
	scratch       []int // reused by MaxExtendSteps (token counts)
}

// NewPaged creates a paged allocator over capacityBytes of storage.
func NewPaged(blockTokens int, bytesPerToken, capacityBytes float64) (*Paged, error) {
	if blockTokens <= 0 {
		return nil, fmt.Errorf("kvcache: block size %d must be positive", blockTokens)
	}
	if bytesPerToken <= 0 || capacityBytes <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive sizes")
	}
	blockBytes := float64(blockTokens) * bytesPerToken
	total := int(capacityBytes / blockBytes)
	return &Paged{
		BlockTokens:   blockTokens,
		BytesPerToken: bytesPerToken,
		capacity:      capacityBytes,
		totalBlocks:   total,
		freeBlocks:    total,
	}, nil
}

func (p *Paged) blocksFor(tokens int) int {
	return (tokens + p.BlockTokens - 1) / p.BlockTokens
}

// Alloc implements Allocator.
func (p *Paged) Alloc(tokens int) (Seq, error) {
	need := p.blocksFor(tokens)
	if need > p.freeBlocks {
		return 0, ErrOutOfMemory
	}
	p.freeBlocks -= need
	p.slackTokens += need*p.BlockTokens - tokens
	return p.table.alloc(tokens, need), nil
}

// Extend implements Allocator.
func (p *Paged) Extend(seq Seq, tokens int) error {
	slot := p.table.lookup(seq)
	if slot < 0 {
		return fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	cur := p.table.tokens[slot]
	if tokens < cur {
		return fmt.Errorf("kvcache: cannot shrink sequence %d (%d -> %d)", seq, cur, tokens)
	}
	need := p.blocksFor(tokens) - p.table.aux[slot]
	if need > p.freeBlocks {
		return ErrOutOfMemory
	}
	p.freeBlocks -= need
	p.slackTokens += need*p.BlockTokens - (tokens - cur)
	p.table.tokens[slot] = tokens
	p.table.aux[slot] += need
	return nil
}

// Free implements Allocator.
func (p *Paged) Free(seq Seq) {
	slot := p.table.lookup(seq)
	if slot < 0 {
		return
	}
	blocks := p.table.aux[slot]
	p.freeBlocks += blocks
	p.slackTokens -= blocks*p.BlockTokens - p.table.tokens[slot]
	p.table.release(slot)
}

// UsedBytes implements Allocator.
func (p *Paged) UsedBytes() float64 {
	used := p.totalBlocks - p.freeBlocks
	return float64(used) * float64(p.BlockTokens) * p.BytesPerToken
}

// WasteBytes implements Allocator.
func (p *Paged) WasteBytes() float64 {
	return float64(p.slackTokens) * p.BytesPerToken
}

// CapacityBytes implements Allocator.
func (p *Paged) CapacityBytes() float64 { return p.capacity }

// CanAlloc implements Allocator.
func (p *Paged) CanAlloc(tokens int) bool { return p.blocksFor(tokens) <= p.freeBlocks }

// MaxExtendSteps implements Allocator. Block demand is monotone in the
// step count, so the largest feasible k is found by binary search; a
// cumulative demand that fits also fits at every intermediate step and
// in any per-step extension order. The sequence states are read once
// up front (into a reused buffer — the hot serving loop calls this
// per coalesced window) so the search probes are pure arithmetic.
func (p *Paged) MaxExtendSteps(seqs []Seq, limit int) int {
	if limit <= 0 {
		return 0
	}
	toks := p.scratch[:0]
	base := 0
	for _, s := range seqs {
		slot := p.table.lookup(s)
		if slot < 0 {
			return 0
		}
		toks = append(toks, p.table.tokens[slot])
		base += p.table.aux[slot]
	}
	p.scratch = toks
	b := p.BlockTokens
	demand := func(k int) int {
		blocks := -base
		for _, t := range toks {
			blocks += (t + k + b - 1) / b
		}
		return blocks
	}
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if demand(mid) <= p.freeBlocks {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Sequences returns the number of live sequences.
func (p *Paged) Sequences() int { return p.table.live }

// --- Monolithic allocator ----------------------------------------------

// Monolithic reserves a fixed, maximum-length contiguous region per
// sequence up front — the pre-vLLM strategy whose internal
// fragmentation PagedAttention eliminates (§IV-B2).
type Monolithic struct {
	ReserveTokens int // tokens reserved per sequence (model max length)
	BytesPerToken float64
	capacity      float64
	writtenTokens int // Σ written tokens across live seqs
	table         seqTable
}

// NewMonolithic creates a monolithic allocator.
func NewMonolithic(reserveTokens int, bytesPerToken, capacityBytes float64) (*Monolithic, error) {
	if reserveTokens <= 0 || bytesPerToken <= 0 || capacityBytes <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive sizes")
	}
	return &Monolithic{
		ReserveTokens: reserveTokens,
		BytesPerToken: bytesPerToken,
		capacity:      capacityBytes,
	}, nil
}

func (m *Monolithic) reserveBytes() float64 {
	return float64(m.ReserveTokens) * m.BytesPerToken
}

// Alloc implements Allocator.
func (m *Monolithic) Alloc(tokens int) (Seq, error) {
	if tokens > m.ReserveTokens {
		return 0, errors.New("kvcache: sequence longer than reservation")
	}
	if m.UsedBytes()+m.reserveBytes() > m.capacity {
		return 0, ErrOutOfMemory
	}
	m.writtenTokens += tokens
	return m.table.alloc(tokens, 0), nil
}

// Extend implements Allocator.
func (m *Monolithic) Extend(seq Seq, tokens int) error {
	slot := m.table.lookup(seq)
	if slot < 0 {
		return fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	cur := m.table.tokens[slot]
	if tokens < cur {
		return fmt.Errorf("kvcache: cannot shrink sequence %d", seq)
	}
	if tokens > m.ReserveTokens {
		return ErrOutOfMemory
	}
	m.writtenTokens += tokens - cur
	m.table.tokens[slot] = tokens
	return nil
}

// Free implements Allocator.
func (m *Monolithic) Free(seq Seq) {
	slot := m.table.lookup(seq)
	if slot < 0 {
		return
	}
	m.writtenTokens -= m.table.tokens[slot]
	m.table.release(slot)
}

// UsedBytes implements Allocator.
func (m *Monolithic) UsedBytes() float64 {
	return float64(m.table.live) * m.reserveBytes()
}

// WasteBytes implements Allocator.
func (m *Monolithic) WasteBytes() float64 {
	return float64(m.table.live*m.ReserveTokens-m.writtenTokens) * m.BytesPerToken
}

// CapacityBytes implements Allocator.
func (m *Monolithic) CapacityBytes() float64 { return m.capacity }

// CanAlloc implements Allocator.
func (m *Monolithic) CanAlloc(tokens int) bool {
	return tokens <= m.ReserveTokens && m.UsedBytes()+m.reserveBytes() <= m.capacity
}

// MaxExtendSteps implements Allocator: growth within a reservation
// never allocates, so the bound is each sequence's remaining headroom
// below ReserveTokens. The table reads are O(1) slice lookups, one per
// sequence — nothing is probed inside a search loop.
func (m *Monolithic) MaxExtendSteps(seqs []Seq, limit int) int {
	if limit <= 0 {
		return 0
	}
	max := limit
	for _, s := range seqs {
		slot := m.table.lookup(s)
		if slot < 0 {
			return 0
		}
		if room := m.ReserveTokens - m.table.tokens[slot]; room < max {
			max = room
		}
	}
	if max < 0 {
		return 0
	}
	return max
}

// Sequences returns the number of live sequences.
func (m *Monolithic) Sequences() int { return m.table.live }

// --- block-size kernel efficiency ---------------------------------------

// blockOverheadTokens is the per-block lookup cost of PagedAttention
// expressed in equivalent token-reads; calibrated so block 16 is
// ~1.2-1.3× faster than block 8 at batch 64 (Fig. 2b) while blocks
// ≥ 16 are indistinguishable.
const blockOverheadTokens = 12.0

// BlockEfficiency returns the KV-stream bandwidth efficiency of the
// paged attention kernel for a given block size, normalised to 1 for
// the optimal sizes (≥16 tokens). Fig. 2b: "any KV cache block size
// greater than or equal to 16 produces optimal throughput, while low
// block sizes hurt".
func BlockEfficiency(blockTokens int) float64 {
	if blockTokens <= 0 {
		return 0
	}
	if blockTokens >= 16 {
		return 1
	}
	raw := float64(blockTokens) / (float64(blockTokens) + blockOverheadTokens)
	ref := 16.0 / (16.0 + blockOverheadTokens)
	return raw / ref
}

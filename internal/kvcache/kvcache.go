// Package kvcache implements the two KV-cache management strategies
// the paper contrasts in §IV-B: vLLM-style block-paged allocation
// (PagedAttention) and traditional monolithic reservation.
//
// The allocators are mechanistic — they track real block/reservation
// state per sequence — so the scheduler can admit, grow, and evict
// sequences and observe genuine fragmentation, and the engine can
// price the block-size-dependent attention-kernel overhead of Fig. 2b.
package kvcache

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when an allocation cannot be satisfied.
var ErrOutOfMemory = errors.New("kvcache: out of memory")

// Allocator manages KV storage for in-flight sequences.
type Allocator interface {
	// Alloc reserves storage for a new sequence currently holding
	// tokens context entries.
	Alloc(seqID int, tokens int) error
	// Extend grows a sequence to the new token count.
	Extend(seqID int, tokens int) error
	// Free releases a sequence.
	Free(seqID int)
	// UsedBytes is storage currently reserved (including waste).
	UsedBytes() float64
	// WasteBytes is reserved-but-unwritten storage (fragmentation).
	WasteBytes() float64
	// CapacityBytes is the allocator's budget.
	CapacityBytes() float64
	// CanAlloc reports whether a new sequence of the given length fits.
	CanAlloc(tokens int) bool
	// MaxExtendSteps returns the largest k ≤ limit such that extending
	// every listed sequence by one token per step, for k consecutive
	// steps (all sequences advancing together each step), would
	// succeed without ErrOutOfMemory. It never mutates state; the
	// serving schedulers use it to bound how many identical decode
	// iterations they may fast-forward in one event. An unknown
	// sequence id makes the result 0.
	MaxExtendSteps(seqIDs []int, limit int) int
}

// --- Paged allocator ----------------------------------------------------

// Paged is a vLLM-style block allocator: storage is carved into
// fixed-size blocks of BlockTokens tokens; sequences own block lists
// and waste at most one partial block each.
type Paged struct {
	BlockTokens   int
	BytesPerToken float64
	capacity      float64
	totalBlocks   int
	freeBlocks    int
	seqs          map[int]pagedSeq
	scratch       []int // reused by MaxExtendSteps (token counts)
}

type pagedSeq struct {
	tokens int
	blocks int
}

// NewPaged creates a paged allocator over capacityBytes of storage.
func NewPaged(blockTokens int, bytesPerToken, capacityBytes float64) (*Paged, error) {
	if blockTokens <= 0 {
		return nil, fmt.Errorf("kvcache: block size %d must be positive", blockTokens)
	}
	if bytesPerToken <= 0 || capacityBytes <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive sizes")
	}
	blockBytes := float64(blockTokens) * bytesPerToken
	total := int(capacityBytes / blockBytes)
	return &Paged{
		BlockTokens:   blockTokens,
		BytesPerToken: bytesPerToken,
		capacity:      capacityBytes,
		totalBlocks:   total,
		freeBlocks:    total,
		seqs:          make(map[int]pagedSeq),
	}, nil
}

func (p *Paged) blocksFor(tokens int) int {
	return (tokens + p.BlockTokens - 1) / p.BlockTokens
}

// Alloc implements Allocator.
func (p *Paged) Alloc(seqID, tokens int) error {
	if _, ok := p.seqs[seqID]; ok {
		return fmt.Errorf("kvcache: sequence %d already allocated", seqID)
	}
	need := p.blocksFor(tokens)
	if need > p.freeBlocks {
		return ErrOutOfMemory
	}
	p.freeBlocks -= need
	p.seqs[seqID] = pagedSeq{tokens: tokens, blocks: need}
	return nil
}

// Extend implements Allocator.
func (p *Paged) Extend(seqID, tokens int) error {
	s, ok := p.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if tokens < s.tokens {
		return fmt.Errorf("kvcache: cannot shrink sequence %d (%d -> %d)", seqID, s.tokens, tokens)
	}
	need := p.blocksFor(tokens) - s.blocks
	if need > p.freeBlocks {
		return ErrOutOfMemory
	}
	p.freeBlocks -= need
	p.seqs[seqID] = pagedSeq{tokens: tokens, blocks: s.blocks + need}
	return nil
}

// Free implements Allocator.
func (p *Paged) Free(seqID int) {
	if s, ok := p.seqs[seqID]; ok {
		p.freeBlocks += s.blocks
		delete(p.seqs, seqID)
	}
}

// UsedBytes implements Allocator.
func (p *Paged) UsedBytes() float64 {
	used := p.totalBlocks - p.freeBlocks
	return float64(used) * float64(p.BlockTokens) * p.BytesPerToken
}

// WasteBytes implements Allocator.
func (p *Paged) WasteBytes() float64 {
	var waste float64
	for _, s := range p.seqs {
		slack := s.blocks*p.BlockTokens - s.tokens
		waste += float64(slack) * p.BytesPerToken
	}
	return waste
}

// CapacityBytes implements Allocator.
func (p *Paged) CapacityBytes() float64 { return p.capacity }

// CanAlloc implements Allocator.
func (p *Paged) CanAlloc(tokens int) bool { return p.blocksFor(tokens) <= p.freeBlocks }

// MaxExtendSteps implements Allocator. Block demand is monotone in the
// step count, so the largest feasible k is found by binary search; a
// cumulative demand that fits also fits at every intermediate step and
// in any per-step extension order. The sequence states are read once
// up front (into a reused buffer — the hot serving loop calls this
// per coalesced window) so the search probes are pure arithmetic,
// not map lookups.
func (p *Paged) MaxExtendSteps(seqIDs []int, limit int) int {
	if limit <= 0 {
		return 0
	}
	toks := p.scratch[:0]
	base := 0
	for _, id := range seqIDs {
		s, present := p.seqs[id]
		if !present {
			return 0
		}
		toks = append(toks, s.tokens)
		base += s.blocks
	}
	p.scratch = toks
	b := p.BlockTokens
	demand := func(k int) int {
		blocks := -base
		for _, t := range toks {
			blocks += (t + k + b - 1) / b
		}
		return blocks
	}
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if demand(mid) <= p.freeBlocks {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Sequences returns the number of live sequences.
func (p *Paged) Sequences() int { return len(p.seqs) }

// --- Monolithic allocator ----------------------------------------------

// Monolithic reserves a fixed, maximum-length contiguous region per
// sequence up front — the pre-vLLM strategy whose internal
// fragmentation PagedAttention eliminates (§IV-B2).
type Monolithic struct {
	ReserveTokens int // tokens reserved per sequence (model max length)
	BytesPerToken float64
	capacity      float64
	seqs          map[int]int // seqID -> written tokens
}

// NewMonolithic creates a monolithic allocator.
func NewMonolithic(reserveTokens int, bytesPerToken, capacityBytes float64) (*Monolithic, error) {
	if reserveTokens <= 0 || bytesPerToken <= 0 || capacityBytes <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive sizes")
	}
	return &Monolithic{
		ReserveTokens: reserveTokens,
		BytesPerToken: bytesPerToken,
		capacity:      capacityBytes,
		seqs:          make(map[int]int),
	}, nil
}

func (m *Monolithic) reserveBytes() float64 {
	return float64(m.ReserveTokens) * m.BytesPerToken
}

// Alloc implements Allocator.
func (m *Monolithic) Alloc(seqID, tokens int) error {
	if _, ok := m.seqs[seqID]; ok {
		return fmt.Errorf("kvcache: sequence %d already allocated", seqID)
	}
	if tokens > m.ReserveTokens {
		return fmt.Errorf("kvcache: sequence %d longer than reservation", seqID)
	}
	if m.UsedBytes()+m.reserveBytes() > m.capacity {
		return ErrOutOfMemory
	}
	m.seqs[seqID] = tokens
	return nil
}

// Extend implements Allocator.
func (m *Monolithic) Extend(seqID, tokens int) error {
	cur, ok := m.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if tokens < cur {
		return fmt.Errorf("kvcache: cannot shrink sequence %d", seqID)
	}
	if tokens > m.ReserveTokens {
		return ErrOutOfMemory
	}
	m.seqs[seqID] = tokens
	return nil
}

// Free implements Allocator.
func (m *Monolithic) Free(seqID int) { delete(m.seqs, seqID) }

// UsedBytes implements Allocator.
func (m *Monolithic) UsedBytes() float64 {
	return float64(len(m.seqs)) * m.reserveBytes()
}

// WasteBytes implements Allocator.
func (m *Monolithic) WasteBytes() float64 {
	var waste float64
	for _, written := range m.seqs {
		waste += float64(m.ReserveTokens-written) * m.BytesPerToken
	}
	return waste
}

// CapacityBytes implements Allocator.
func (m *Monolithic) CapacityBytes() float64 { return m.capacity }

// CanAlloc implements Allocator.
func (m *Monolithic) CanAlloc(tokens int) bool {
	return tokens <= m.ReserveTokens && m.UsedBytes()+m.reserveBytes() <= m.capacity
}

// MaxExtendSteps implements Allocator: growth within a reservation
// never allocates, so the bound is each sequence's remaining headroom
// below ReserveTokens.
func (m *Monolithic) MaxExtendSteps(seqIDs []int, limit int) int {
	if limit <= 0 {
		return 0
	}
	max := limit
	for _, id := range seqIDs {
		cur, ok := m.seqs[id]
		if !ok {
			return 0
		}
		if room := m.ReserveTokens - cur; room < max {
			max = room
		}
	}
	if max < 0 {
		return 0
	}
	return max
}

// Sequences returns the number of live sequences.
func (m *Monolithic) Sequences() int { return len(m.seqs) }

// --- block-size kernel efficiency ---------------------------------------

// blockOverheadTokens is the per-block lookup cost of PagedAttention
// expressed in equivalent token-reads; calibrated so block 16 is
// ~1.2-1.3× faster than block 8 at batch 64 (Fig. 2b) while blocks
// ≥ 16 are indistinguishable.
const blockOverheadTokens = 12.0

// BlockEfficiency returns the KV-stream bandwidth efficiency of the
// paged attention kernel for a given block size, normalised to 1 for
// the optimal sizes (≥16 tokens). Fig. 2b: "any KV cache block size
// greater than or equal to 16 produces optimal throughput, while low
// block sizes hurt".
func BlockEfficiency(blockTokens int) float64 {
	if blockTokens <= 0 {
		return 0
	}
	if blockTokens >= 16 {
		return 1
	}
	raw := float64(blockTokens) / (float64(blockTokens) + blockOverheadTokens)
	ref := 16.0 / (16.0 + blockOverheadTokens)
	return raw / ref
}

package kvcache

// Tiered KV offload: production serving stacks do not drop an evicted
// shared-prefix's KV blocks — they demote them to host (CPU) memory
// and restore them over the PCIe/C2C link when the prefix is needed
// again, turning an expensive re-prefill into a cheap bulk copy.
// HostTier models the host side (a capacity-bounded LRU over demoted
// block groups) and Tiered wires it behind a PrefixPaged device
// allocator. Both keep the package's zero-steady-state-allocation
// discipline: dense slices, an intrusive LRU list, no maps.

import (
	"errors"
	"fmt"
	"math"
)

// HostLink prices restore transfers over the device↔host link
// (hw.Device.HostLinkGBs / HostLinkLatencyUS resolved to seconds).
type HostLink struct {
	// GBPerS is the host-link bandwidth in GB/s.
	GBPerS float64
	// LatencyS is the per-transfer latency floor in seconds.
	LatencyS float64
}

// Validate rejects pricing that would produce non-positive or
// non-finite restore times.
func (l HostLink) Validate() error {
	if !(l.GBPerS > 0) || math.IsInf(l.GBPerS, 0) {
		return fmt.Errorf("kvcache: host link GBPerS %v (want positive and finite)", l.GBPerS)
	}
	if !(l.LatencyS > 0) || math.IsInf(l.LatencyS, 0) {
		return fmt.Errorf("kvcache: host link LatencyS %v (want positive and finite)", l.LatencyS)
	}
	return nil
}

// Seconds prices one restore of the given byte volume.
func (l HostLink) Seconds(bytes float64) float64 {
	return bytes/(l.GBPerS*1e9) + l.LatencyS
}

// TierCounters reports a HostTier's lifetime activity.
type TierCounters struct {
	// Touches counts accesses that refreshed a resident entry's LRU
	// position without removing it.
	Touches uint64
	// Demotions counts block groups accepted into the tier.
	Demotions uint64
	// Restores counts block groups removed by Restore (promoted back
	// to the device).
	Restores uint64
	// Evictions counts resident entries dropped to make room — the
	// capacity bound working.
	Evictions uint64
}

// HostTier is a capacity-bounded CPU tier over demoted KV block
// groups with LRU eviction. Entries are identified by small integer
// IDs (dense-table indices, like Seq slots); state lives in slices
// grown once per new high-water ID and an intrusive doubly linked LRU
// list, so a warm demote/restore cycle allocates nothing.
type HostTier struct {
	capBlocks  int
	usedBlocks int

	blocks     []int32 // per-ID resident block count; 0 = absent
	prev, next []int32 // intrusive LRU list (MRU at head)
	head, tail int32   // -1 when empty

	ctr TierCounters
}

// NewHostTier creates a tier holding at most capacityBlocks blocks.
func NewHostTier(capacityBlocks int) (*HostTier, error) {
	if capacityBlocks < 1 {
		return nil, fmt.Errorf("kvcache: host tier capacity %d blocks (want ≥ 1)", capacityBlocks)
	}
	return &HostTier{capBlocks: capacityBlocks, head: -1, tail: -1}, nil
}

// grow extends the dense tables to cover id.
func (t *HostTier) grow(id int) {
	for len(t.blocks) <= id {
		t.blocks = append(t.blocks, 0)
		t.prev = append(t.prev, -1)
		t.next = append(t.next, -1)
	}
}

func (t *HostTier) unlink(id int32) {
	p, n := t.prev[id], t.next[id]
	if p >= 0 {
		t.next[p] = n
	} else {
		t.head = n
	}
	if n >= 0 {
		t.prev[n] = p
	} else {
		t.tail = p
	}
	t.prev[id], t.next[id] = -1, -1
}

func (t *HostTier) pushFront(id int32) {
	t.prev[id], t.next[id] = -1, t.head
	if t.head >= 0 {
		t.prev[t.head] = id
	} else {
		t.tail = id
	}
	t.head = id
}

// Has reports whether the block group id is resident.
func (t *HostTier) Has(id int) bool {
	return id >= 0 && id < len(t.blocks) && t.blocks[id] != 0
}

// Blocks reports the resident block count of id (0 when absent).
func (t *HostTier) Blocks(id int) int {
	if !t.Has(id) {
		return 0
	}
	return int(t.blocks[id])
}

// UsedBlocks is the tier's resident block total.
func (t *HostTier) UsedBlocks() int { return t.usedBlocks }

// CapacityBlocks is the tier's block budget.
func (t *HostTier) CapacityBlocks() int { return t.capBlocks }

// Counters returns the tier's lifetime activity counters.
func (t *HostTier) Counters() TierCounters { return t.ctr }

// Touch refreshes a resident entry's LRU position (most recently
// used) and reports whether it was resident.
func (t *HostTier) Touch(id int) bool {
	if !t.Has(id) {
		return false
	}
	t.unlink(int32(id))
	t.pushFront(int32(id))
	t.ctr.Touches++
	return true
}

// Demote inserts a block group, evicting least-recently-used entries
// until it fits. A group larger than the whole tier is rejected
// (reported false — the blocks are simply dropped, as they would be
// without a tier); demoting an already-resident ID refreshes its LRU
// position and size.
func (t *HostTier) Demote(id, blocks int) bool {
	if id < 0 || blocks < 1 || blocks > t.capBlocks {
		return false
	}
	t.grow(id)
	if t.blocks[id] != 0 {
		t.usedBlocks -= int(t.blocks[id])
		t.unlink(int32(id))
		t.blocks[id] = 0
		t.ctr.Touches++
	}
	for t.usedBlocks+blocks > t.capBlocks {
		victim := t.tail
		t.unlink(victim)
		t.usedBlocks -= int(t.blocks[victim])
		t.blocks[victim] = 0
		t.ctr.Evictions++
	}
	t.blocks[id] = int32(blocks)
	t.usedBlocks += blocks
	t.pushFront(int32(id))
	t.ctr.Demotions++
	return true
}

// Restore removes a resident block group (promoting it back to the
// device) and returns its block count.
func (t *HostTier) Restore(id int) (int, bool) {
	if !t.Has(id) {
		return 0, false
	}
	b := int(t.blocks[id])
	t.unlink(int32(id))
	t.blocks[id] = 0
	t.usedBlocks -= b
	t.ctr.Restores++
	return b, true
}

// PrefillDiscounter is implemented by allocators whose Alloc can
// satisfy part of a prompt from a prefix cache. The DES admission
// path (internal/des) drains the accrued discount after each Alloc:
// skipTokens prompt tokens need no prefill compute (they were cached
// in full blocks) and restoreS seconds of host-link transfer must be
// charged instead (demoted blocks coming back up). Draining resets
// the accrual; an allocator that never discounts simply does not
// implement the interface.
type PrefillDiscounter interface {
	Allocator
	TakePrefillDiscount() (skipTokens int, restoreS float64)
}

// prefixTierID is the HostTier entry ID Tiered uses for its single
// shared prefix. The tier itself is generic over IDs; the wrapper
// only ever demotes one group.
const prefixTierID = 0

// Tiered wraps a PrefixPaged device allocator with a HostTier: when
// the last sequence referencing the shared prefix frees, the prefix's
// full blocks are demoted to the host tier instead of dropped, and
// the next sequence that re-materialises the prefix restores them
// over the host link — paying link seconds instead of re-prefill
// compute. Tiered implements PrefillDiscounter; serving admission
// (internal/des) charges the accrued restore seconds and skips
// prefill for the cached prefix tokens (a warm, still-resident prefix
// skips for free, exactly like PrefixPaged sharing — the tier only
// changes what happens after the reference count hits zero).
//
// All state is dense-slice bookkeeping; warm promote/demote/restore
// cycles allocate nothing (gated by TestTieredWarmCycleAllocs).
type Tiered struct {
	gpu  *PrefixPaged
	tier *HostTier
	link HostLink

	// restoreS is the precomputed cost of restoring the whole demoted
	// prefix (its full blocks over the host link); the prefix size is
	// fixed at construction.
	restoreS float64

	pendingSkip     int
	pendingRestoreS float64
	warmHits        uint64
}

// TieredStats reports a Tiered allocator's prefix-cache activity.
type TieredStats struct {
	// Touches counts warm hits: Allocs that found the prefix still
	// resident on the device.
	Touches uint64
	// Demotions, Restores, and Evictions are the host tier's counters
	// (see TierCounters).
	Demotions uint64
	Restores  uint64
	Evictions uint64
}

// NewTiered wraps the device allocator with a host tier of
// hostCapacityBytes priced over link. The tier must hold at least one
// block; a prefix too large for it is dropped on demotion rather
// than rejected here (the capacity bound is the tier's to enforce).
func NewTiered(gpu *PrefixPaged, hostCapacityBytes float64, link HostLink) (*Tiered, error) {
	if gpu == nil {
		return nil, errors.New("kvcache: nil device allocator")
	}
	if err := link.Validate(); err != nil {
		return nil, err
	}
	blockBytes := float64(gpu.BlockTokens) * gpu.BytesPerToken
	capBlocks := int(hostCapacityBytes / blockBytes)
	tier, err := NewHostTier(capBlocks)
	if err != nil {
		return nil, fmt.Errorf("kvcache: host tier of %g bytes holds no %d-token blocks", hostCapacityBytes, gpu.BlockTokens)
	}
	prefixBytes := float64(gpu.sharedFullBlocks()) * blockBytes
	return &Tiered{gpu: gpu, tier: tier, link: link, restoreS: link.Seconds(prefixBytes)}, nil
}

// Alloc implements Allocator. A warm prefix (still referenced on the
// device) or a restored one accrues a prefill discount: every full
// prefix block's tokens skip prefill, except the prompt's last token,
// which is always recomputed (its logits drive the first output). A
// truly cold prefix — absent from both tiers — is computed by this
// sequence's prefill, exactly as PrefixPaged prices it.
func (t *Tiered) Alloc(tokens int) (Seq, error) {
	cold := t.gpu.prefixRef == 0
	seq, err := t.gpu.Alloc(tokens)
	if err != nil {
		return 0, err
	}
	shared := t.gpu.sharedFullBlocks() * t.gpu.BlockTokens
	if shared == 0 {
		return seq, nil
	}
	if cold {
		if _, ok := t.tier.Restore(prefixTierID); !ok {
			return seq, nil // first-ever reference: prefill computes the prefix
		}
		t.pendingRestoreS += t.restoreS
	} else {
		t.warmHits++
	}
	skip := shared
	if skip > tokens-1 {
		skip = tokens - 1
	}
	if skip > 0 {
		t.pendingSkip += skip
	}
	return seq, nil
}

// Extend implements Allocator.
func (t *Tiered) Extend(seq Seq, tokens int) error { return t.gpu.Extend(seq, tokens) }

// Free implements Allocator. When the freed sequence was the last
// reference to the shared prefix, the prefix's blocks are demoted to
// the host tier instead of dropped.
func (t *Tiered) Free(seq Seq) {
	if t.gpu.table.lookup(seq) < 0 {
		return // stale or foreign handle: a no-op, never a demotion probe
	}
	pb := t.gpu.prefixBlocks
	t.gpu.Free(seq)
	if pb > 0 && t.gpu.prefixRef == 0 {
		t.tier.Demote(prefixTierID, pb)
	}
}

// UsedBytes implements Allocator (device-side storage only).
func (t *Tiered) UsedBytes() float64 { return t.gpu.UsedBytes() }

// WasteBytes implements Allocator.
func (t *Tiered) WasteBytes() float64 { return t.gpu.WasteBytes() }

// CapacityBytes implements Allocator (the device budget; see
// HostUsedBytes for the tier).
func (t *Tiered) CapacityBytes() float64 { return t.gpu.CapacityBytes() }

// CanAlloc implements Allocator.
func (t *Tiered) CanAlloc(tokens int) bool { return t.gpu.CanAlloc(tokens) }

// MaxExtendSteps implements Allocator.
func (t *Tiered) MaxExtendSteps(seqs []Seq, limit int) int { return t.gpu.MaxExtendSteps(seqs, limit) }

// Sequences returns the number of live sequences.
func (t *Tiered) Sequences() int { return t.gpu.Sequences() }

// TakePrefillDiscount implements PrefillDiscounter: it drains the
// skip-token and restore-second accrual since the last drain.
func (t *Tiered) TakePrefillDiscount() (int, float64) {
	skip, rs := t.pendingSkip, t.pendingRestoreS
	t.pendingSkip, t.pendingRestoreS = 0, 0
	return skip, rs
}

// HotPrefixTokens reports the shared-prefix tokens resident on the
// device (see PrefixPaged.HotPrefixTokens).
func (t *Tiered) HotPrefixTokens() int { return t.gpu.HotPrefixTokens() }

// RestorablePrefixTokens reports the shared-prefix tokens currently
// demoted to the host tier: an arriving request would hit them after
// a host-link restore rather than a full re-prefill.
func (t *Tiered) RestorablePrefixTokens() int {
	if !t.tier.Has(prefixTierID) {
		return 0
	}
	return t.gpu.sharedFullBlocks() * t.gpu.BlockTokens
}

// HostUsedBytes reports the storage demoted blocks occupy on the host.
func (t *Tiered) HostUsedBytes() float64 {
	return float64(t.tier.UsedBlocks()) * float64(t.gpu.BlockTokens) * t.gpu.BytesPerToken
}

// RestoreSeconds reports the host-link cost of one full prefix
// restore, as priced into the admission path.
func (t *Tiered) RestoreSeconds() float64 { return t.restoreS }

// Stats reports the wrapper's prefix-cache activity.
func (t *Tiered) Stats() TieredStats {
	c := t.tier.Counters()
	return TieredStats{
		Touches:   t.warmHits,
		Demotions: c.Demotions,
		Restores:  c.Restores,
		Evictions: c.Evictions,
	}
}

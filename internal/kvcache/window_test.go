package kvcache

import "testing"

// bruteMaxSteps replays the live token counts on a twin allocator and
// step-extends all of them together until one Extend fails — the
// ground truth MaxExtendSteps must match.
func bruteMaxSteps(t *testing.T, build func() Allocator, tokens []int, limit int) int {
	t.Helper()
	twin := build()
	handles := make([]Seq, len(tokens))
	for i, tok := range tokens {
		s, err := twin.Alloc(tok)
		if err != nil {
			t.Fatalf("twin alloc %d: %v", i, err)
		}
		handles[i] = s
	}
	for k := 1; k <= limit; k++ {
		for i, s := range handles {
			if err := twin.Extend(s, tokens[i]+k); err != nil {
				return k - 1
			}
		}
	}
	return limit
}

func allocAll(t *testing.T, a Allocator, tokens []int) []Seq {
	t.Helper()
	handles := make([]Seq, len(tokens))
	for i, tok := range tokens {
		s, err := a.Alloc(tok)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		handles[i] = s
	}
	return handles
}

func TestPagedMaxExtendSteps(t *testing.T) {
	const blockTokens, bytesPerToken = 16, 1024.0
	cases := []struct {
		name     string
		capacity float64 // in blocks
		tokens   []int
	}{
		{"plenty", 1000, []int{100, 200}},
		{"tight", 40, []int{100, 200, 17}},
		{"exact-boundary", 24, []int{16, 32}},
		{"single", 12, []int{31}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			build := func() Allocator {
				a, err := NewPaged(blockTokens, bytesPerToken, c.capacity*blockTokens*bytesPerToken)
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			live := build()
			handles := allocAll(t, live, c.tokens)
			for _, limit := range []int{1, 7, 64, 500} {
				want := bruteMaxSteps(t, build, c.tokens, limit)
				if got := live.MaxExtendSteps(handles, limit); got != want {
					t.Errorf("limit %d: got %d want %d", limit, got, want)
				}
			}
			if got := live.MaxExtendSteps([]Seq{0}, 10); got != 0 {
				t.Errorf("invalid handle: got %d want 0", got)
			}
			if got := live.MaxExtendSteps(handles, 0); got != 0 {
				t.Errorf("limit 0: got %d want 0", got)
			}
		})
	}
}

func TestMonolithicMaxExtendSteps(t *testing.T) {
	build := func() Allocator {
		a, err := NewMonolithic(256, 1024, 10*256*1024)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	tokens := []int{200, 250, 100}
	live := build()
	handles := allocAll(t, live, tokens)
	for _, limit := range []int{1, 6, 7, 100} {
		want := bruteMaxSteps(t, build, tokens, limit)
		if got := live.MaxExtendSteps(handles, limit); got != want {
			t.Errorf("limit %d: got %d want %d", limit, got, want)
		}
	}
	if got := live.MaxExtendSteps([]Seq{0}, 5); got != 0 {
		t.Errorf("invalid handle: got %d want 0", got)
	}
}

func TestPrefixPagedMaxExtendSteps(t *testing.T) {
	const blockTokens, prefixTokens, bytesPerToken = 16, 64, 1024.0
	build := func() Allocator {
		a, err := NewPrefixPaged(blockTokens, prefixTokens, bytesPerToken, 30*blockTokens*bytesPerToken)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	tokens := []int{80, 100, 65}
	live := build()
	handles := allocAll(t, live, tokens)
	for _, limit := range []int{1, 10, 100, 400} {
		want := bruteMaxSteps(t, build, tokens, limit)
		if got := live.MaxExtendSteps(handles, limit); got != want {
			t.Errorf("limit %d: got %d want %d", limit, got, want)
		}
	}
	if got := live.MaxExtendSteps([]Seq{0}, 10); got != 0 {
		t.Errorf("invalid handle: got %d want 0", got)
	}
}

// TestMaxExtendStepsDoesNotMutate runs the query and checks the
// allocator still extends exactly as far as predicted.
func TestMaxExtendStepsDoesNotMutate(t *testing.T) {
	a, err := NewPaged(16, 1024, 20*16*1024)
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	before := a.UsedBytes()
	k := a.MaxExtendSteps([]Seq{s}, 1000)
	if a.UsedBytes() != before {
		t.Fatal("MaxExtendSteps mutated the allocator")
	}
	if err := a.Extend(s, 100+k); err != nil {
		t.Fatalf("predicted %d steps but extend failed: %v", k, err)
	}
	if err := a.Extend(s, 100+k+16); err == nil {
		t.Error("a full block past the bound must fail")
	}
}

package kvcache

import "testing"

// bruteMaxSteps replays the allocator's live sequences on a twin and
// step-extends all of them together until one Extend fails — the
// ground truth MaxExtendSteps must match.
func bruteMaxSteps(t *testing.T, build func() Allocator, seqs map[int]int, limit int) int {
	t.Helper()
	twin := build()
	ids := make([]int, 0, len(seqs))
	for id, tokens := range seqs {
		if err := twin.Alloc(id, tokens); err != nil {
			t.Fatalf("twin alloc %d: %v", id, err)
		}
		ids = append(ids, id)
	}
	for k := 1; k <= limit; k++ {
		for _, id := range ids {
			if err := twin.Extend(id, seqs[id]+k); err != nil {
				return k - 1
			}
		}
	}
	return limit
}

func TestPagedMaxExtendSteps(t *testing.T) {
	const blockTokens, bytesPerToken = 16, 1024.0
	cases := []struct {
		name     string
		capacity float64 // in blocks
		seqs     map[int]int
	}{
		{"plenty", 1000, map[int]int{1: 100, 2: 200}},
		{"tight", 40, map[int]int{1: 100, 2: 200, 3: 17}},
		{"exact-boundary", 24, map[int]int{1: 16, 2: 32}},
		{"single", 12, map[int]int{7: 31}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			build := func() Allocator {
				a, err := NewPaged(blockTokens, bytesPerToken, c.capacity*blockTokens*bytesPerToken)
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			live := build()
			ids := make([]int, 0, len(c.seqs))
			for id, tokens := range c.seqs {
				if err := live.Alloc(id, tokens); err != nil {
					t.Fatalf("alloc %d: %v", id, err)
				}
				ids = append(ids, id)
			}
			for _, limit := range []int{1, 7, 64, 500} {
				want := bruteMaxSteps(t, build, c.seqs, limit)
				if got := live.MaxExtendSteps(ids, limit); got != want {
					t.Errorf("limit %d: got %d want %d", limit, got, want)
				}
			}
			if got := live.MaxExtendSteps([]int{999}, 10); got != 0 {
				t.Errorf("unknown id: got %d want 0", got)
			}
			if got := live.MaxExtendSteps(ids, 0); got != 0 {
				t.Errorf("limit 0: got %d want 0", got)
			}
		})
	}
}

func TestMonolithicMaxExtendSteps(t *testing.T) {
	build := func() Allocator {
		a, err := NewMonolithic(256, 1024, 10*256*1024)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	seqs := map[int]int{1: 200, 2: 250, 3: 100}
	live := build()
	for id, tokens := range seqs {
		if err := live.Alloc(id, tokens); err != nil {
			t.Fatal(err)
		}
	}
	ids := []int{1, 2, 3}
	for _, limit := range []int{1, 6, 7, 100} {
		want := bruteMaxSteps(t, build, seqs, limit)
		if got := live.MaxExtendSteps(ids, limit); got != want {
			t.Errorf("limit %d: got %d want %d", limit, got, want)
		}
	}
	if got := live.MaxExtendSteps([]int{42}, 5); got != 0 {
		t.Errorf("unknown id: got %d want 0", got)
	}
}

func TestPrefixPagedMaxExtendSteps(t *testing.T) {
	const blockTokens, prefixTokens, bytesPerToken = 16, 64, 1024.0
	build := func() Allocator {
		a, err := NewPrefixPaged(blockTokens, prefixTokens, bytesPerToken, 30*blockTokens*bytesPerToken)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	seqs := map[int]int{1: 80, 2: 100, 3: 65}
	live := build()
	for id, tokens := range seqs {
		if err := live.Alloc(id, tokens); err != nil {
			t.Fatal(err)
		}
	}
	ids := []int{1, 2, 3}
	for _, limit := range []int{1, 10, 100, 400} {
		want := bruteMaxSteps(t, build, seqs, limit)
		if got := live.MaxExtendSteps(ids, limit); got != want {
			t.Errorf("limit %d: got %d want %d", limit, got, want)
		}
	}
}

// TestMaxExtendStepsDoesNotMutate runs the query and checks the
// allocator still extends exactly as far as predicted.
func TestMaxExtendStepsDoesNotMutate(t *testing.T) {
	a, err := NewPaged(16, 1024, 20*16*1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc(1, 100); err != nil {
		t.Fatal(err)
	}
	before := a.UsedBytes()
	k := a.MaxExtendSteps([]int{1}, 1000)
	if a.UsedBytes() != before {
		t.Fatal("MaxExtendSteps mutated the allocator")
	}
	if err := a.Extend(1, 100+k); err != nil {
		t.Fatalf("predicted %d steps but extend failed: %v", k, err)
	}
	if err := a.Extend(1, 100+k+16); err == nil {
		t.Error("a full block past the bound must fail")
	}
}

package kvcache

// Prefix sharing: vLLM's paged layout lets sequences that start with
// the same tokens (a shared system prompt) reference the same physical
// KV blocks, multiplying effective cache capacity for chat serving.
// PrefixPaged implements it with per-block reference counts; only full
// blocks of the common prefix are shared (the trailing partial block
// diverges per sequence, so it stays private).

import (
	"errors"
	"fmt"
)

// PrefixPaged is a Paged allocator whose sequences share the physical
// blocks of a common prompt prefix. It satisfies Allocator: every
// sequence allocated through it is assumed to begin with the
// configured shared prefix (the serving pattern where one system
// prompt fronts every request).
type PrefixPaged struct {
	BlockTokens   int
	BytesPerToken float64
	// PrefixTokens is the shared prompt length; its ⌊/BlockTokens⌋
	// full blocks are stored once.
	PrefixTokens int

	capacity     float64
	totalBlocks  int
	freeBlocks   int
	prefixBlocks int // full blocks of the shared prefix
	prefixRef    int // sequences currently referencing them
	seqs         map[int]prefixSeq
}

type prefixSeq struct {
	tokens  int
	private int // private block count (beyond the shared prefix)
}

// NewPrefixPaged creates the allocator. The shared prefix's blocks are
// allocated lazily with the first sequence and released when the last
// reference drops.
func NewPrefixPaged(blockTokens, prefixTokens int, bytesPerToken, capacityBytes float64) (*PrefixPaged, error) {
	if blockTokens <= 0 {
		return nil, fmt.Errorf("kvcache: block size %d must be positive", blockTokens)
	}
	if prefixTokens < 0 {
		return nil, errors.New("kvcache: negative prefix length")
	}
	if bytesPerToken <= 0 || capacityBytes <= 0 {
		return nil, errors.New("kvcache: non-positive sizes")
	}
	blockBytes := float64(blockTokens) * bytesPerToken
	total := int(capacityBytes / blockBytes)
	return &PrefixPaged{
		BlockTokens:   blockTokens,
		BytesPerToken: bytesPerToken,
		PrefixTokens:  prefixTokens,
		capacity:      capacityBytes,
		totalBlocks:   total,
		freeBlocks:    total,
		seqs:          make(map[int]prefixSeq),
	}, nil
}

func (p *PrefixPaged) sharedFullBlocks() int { return p.PrefixTokens / p.BlockTokens }

// privateBlocksFor returns the private blocks a sequence of the given
// total length needs: everything beyond the shared full blocks.
func (p *PrefixPaged) privateBlocksFor(tokens int) int {
	sharedTokens := p.sharedFullBlocks() * p.BlockTokens
	if tokens <= sharedTokens {
		return 0
	}
	rest := tokens - sharedTokens
	return (rest + p.BlockTokens - 1) / p.BlockTokens
}

// Alloc implements Allocator. tokens includes the shared prefix.
func (p *PrefixPaged) Alloc(seqID, tokens int) error {
	if _, ok := p.seqs[seqID]; ok {
		return fmt.Errorf("kvcache: sequence %d already allocated", seqID)
	}
	need := p.privateBlocksFor(tokens)
	if p.prefixRef == 0 {
		need += p.sharedFullBlocks() // first reference materialises the prefix
	}
	if need > p.freeBlocks {
		return ErrOutOfMemory
	}
	if p.prefixRef == 0 {
		p.prefixBlocks = p.sharedFullBlocks()
		p.freeBlocks -= p.prefixBlocks
		need -= p.prefixBlocks
	}
	p.freeBlocks -= need
	p.prefixRef++
	p.seqs[seqID] = prefixSeq{tokens: tokens, private: need}
	return nil
}

// Extend implements Allocator.
func (p *PrefixPaged) Extend(seqID, tokens int) error {
	s, ok := p.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if tokens < s.tokens {
		return fmt.Errorf("kvcache: cannot shrink sequence %d", seqID)
	}
	need := p.privateBlocksFor(tokens) - s.private
	if need > p.freeBlocks {
		return ErrOutOfMemory
	}
	p.freeBlocks -= need
	p.seqs[seqID] = prefixSeq{tokens: tokens, private: s.private + need}
	return nil
}

// Free implements Allocator.
func (p *PrefixPaged) Free(seqID int) {
	s, ok := p.seqs[seqID]
	if !ok {
		return
	}
	p.freeBlocks += s.private
	delete(p.seqs, seqID)
	p.prefixRef--
	if p.prefixRef == 0 {
		p.freeBlocks += p.prefixBlocks
		p.prefixBlocks = 0
	}
}

// UsedBytes implements Allocator.
func (p *PrefixPaged) UsedBytes() float64 {
	used := p.totalBlocks - p.freeBlocks
	return float64(used) * float64(p.BlockTokens) * p.BytesPerToken
}

// WasteBytes implements Allocator: per-sequence partial-block slack,
// computed over private storage only (the shared blocks are full).
func (p *PrefixPaged) WasteBytes() float64 {
	var waste float64
	sharedTokens := p.sharedFullBlocks() * p.BlockTokens
	for _, s := range p.seqs {
		privTokens := s.tokens - sharedTokens
		if privTokens < 0 {
			privTokens = 0
		}
		slack := s.private*p.BlockTokens - privTokens
		waste += float64(slack) * p.BytesPerToken
	}
	return waste
}

// CapacityBytes implements Allocator.
func (p *PrefixPaged) CapacityBytes() float64 { return p.capacity }

// CanAlloc implements Allocator.
func (p *PrefixPaged) CanAlloc(tokens int) bool {
	need := p.privateBlocksFor(tokens)
	if p.prefixRef == 0 {
		need += p.sharedFullBlocks()
	}
	return need <= p.freeBlocks
}

// MaxExtendSteps implements Allocator: like Paged, but demand counts
// private blocks only (the shared prefix never grows).
func (p *PrefixPaged) MaxExtendSteps(seqIDs []int, limit int) int {
	if limit <= 0 {
		return 0
	}
	demand := func(k int) (blocks int, ok bool) {
		for _, id := range seqIDs {
			s, present := p.seqs[id]
			if !present {
				return 0, false
			}
			blocks += p.privateBlocksFor(s.tokens+k) - s.private
		}
		return blocks, true
	}
	if _, ok := demand(0); !ok {
		return 0
	}
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if need, _ := demand(mid); need <= p.freeBlocks {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Sequences returns the number of live sequences.
func (p *PrefixPaged) Sequences() int { return len(p.seqs) }

// SharedBytes reports the storage the shared prefix occupies (once).
func (p *PrefixPaged) SharedBytes() float64 {
	return float64(p.prefixBlocks) * float64(p.BlockTokens) * p.BytesPerToken
}

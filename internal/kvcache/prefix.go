package kvcache

// Prefix sharing: vLLM's paged layout lets sequences that start with
// the same tokens (a shared system prompt) reference the same physical
// KV blocks, multiplying effective cache capacity for chat serving.
// PrefixPaged implements it with per-block reference counts; only full
// blocks of the common prefix are shared (the trailing partial block
// diverges per sequence, so it stays private).

import (
	"errors"
	"fmt"
)

// ErrPrefixTooLarge is returned by NewPrefixPaged when the shared
// prefix's full blocks alone exceed the whole block budget: no
// sequence could ever materialise the prefix, so every Alloc would
// fail — with a bare ErrOutOfMemory that never names the real
// problem. Rejecting at construction names it.
var ErrPrefixTooLarge = errors.New("kvcache: shared prefix exceeds the block budget")

// PrefixPaged is a Paged allocator whose sequences share the physical
// blocks of a common prompt prefix. It satisfies Allocator: every
// sequence allocated through it is assumed to begin with the
// configured shared prefix (the serving pattern where one system
// prompt fronts every request).
type PrefixPaged struct {
	BlockTokens   int
	BytesPerToken float64
	// PrefixTokens is the shared prompt length; its ⌊/BlockTokens⌋
	// full blocks are stored once.
	PrefixTokens int

	capacity     float64
	totalBlocks  int
	freeBlocks   int
	prefixBlocks int // full blocks of the shared prefix
	prefixRef    int // sequences currently referencing them
	slackTokens  int // private reserved-but-unwritten tokens
	table        seqTable
	scratch      []int // reused by MaxExtendSteps (token counts)
}

// NewPrefixPaged creates the allocator. The shared prefix's blocks are
// allocated lazily with the first sequence and released when the last
// reference drops.
func NewPrefixPaged(blockTokens, prefixTokens int, bytesPerToken, capacityBytes float64) (*PrefixPaged, error) {
	if blockTokens <= 0 {
		return nil, fmt.Errorf("kvcache: block size %d must be positive", blockTokens)
	}
	if prefixTokens < 0 {
		return nil, errors.New("kvcache: negative prefix length")
	}
	if bytesPerToken <= 0 || capacityBytes <= 0 {
		return nil, errors.New("kvcache: non-positive sizes")
	}
	blockBytes := float64(blockTokens) * bytesPerToken
	total := int(capacityBytes / blockBytes)
	if pb := prefixTokens / blockTokens; pb > total {
		return nil, fmt.Errorf("%w: prefix of %d tokens needs %d full blocks of %d, but %g bytes hold only %d blocks",
			ErrPrefixTooLarge, prefixTokens, pb, blockTokens, capacityBytes, total)
	}
	return &PrefixPaged{
		BlockTokens:   blockTokens,
		BytesPerToken: bytesPerToken,
		PrefixTokens:  prefixTokens,
		capacity:      capacityBytes,
		totalBlocks:   total,
		freeBlocks:    total,
	}, nil
}

func (p *PrefixPaged) sharedFullBlocks() int { return p.PrefixTokens / p.BlockTokens }

// privateBlocksFor returns the private blocks a sequence of the given
// total length needs: everything beyond the shared full blocks.
func (p *PrefixPaged) privateBlocksFor(tokens int) int {
	sharedTokens := p.sharedFullBlocks() * p.BlockTokens
	if tokens <= sharedTokens {
		return 0
	}
	rest := tokens - sharedTokens
	return (rest + p.BlockTokens - 1) / p.BlockTokens
}

// privateSlack is one sequence's reserved-but-unwritten private
// tokens: private block capacity minus the tokens beyond the shared
// prefix.
func (p *PrefixPaged) privateSlack(tokens, private int) int {
	privTokens := tokens - p.sharedFullBlocks()*p.BlockTokens
	if privTokens < 0 {
		privTokens = 0
	}
	return private*p.BlockTokens - privTokens
}

// needFor returns the blocks a new sequence of the given length must
// draw from the free list: its private blocks, plus the shared
// prefix's full blocks when this allocation would materialise them.
// Alloc and CanAlloc both price through it, so the admission check
// and the allocation can never disagree (they used to duplicate the
// materialisation branch).
func (p *PrefixPaged) needFor(tokens int) int {
	need := p.privateBlocksFor(tokens)
	if p.prefixRef == 0 {
		need += p.sharedFullBlocks() // first reference materialises the prefix
	}
	return need
}

// Alloc implements Allocator. tokens includes the shared prefix.
func (p *PrefixPaged) Alloc(tokens int) (Seq, error) {
	need := p.needFor(tokens)
	if need > p.freeBlocks {
		return 0, ErrOutOfMemory
	}
	if p.prefixRef == 0 {
		p.prefixBlocks = p.sharedFullBlocks()
		p.freeBlocks -= p.prefixBlocks
		need -= p.prefixBlocks
	}
	p.freeBlocks -= need
	p.prefixRef++
	p.slackTokens += p.privateSlack(tokens, need)
	return p.table.alloc(tokens, need), nil
}

// Extend implements Allocator.
func (p *PrefixPaged) Extend(seq Seq, tokens int) error {
	slot := p.table.lookup(seq)
	if slot < 0 {
		return fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	cur := p.table.tokens[slot]
	if tokens < cur {
		return fmt.Errorf("kvcache: cannot shrink sequence %d", seq)
	}
	private := p.table.aux[slot]
	need := p.privateBlocksFor(tokens) - private
	if need > p.freeBlocks {
		return ErrOutOfMemory
	}
	p.freeBlocks -= need
	p.slackTokens += p.privateSlack(tokens, private+need) - p.privateSlack(cur, private)
	p.table.tokens[slot] = tokens
	p.table.aux[slot] = private + need
	return nil
}

// Free implements Allocator.
func (p *PrefixPaged) Free(seq Seq) {
	slot := p.table.lookup(seq)
	if slot < 0 {
		return
	}
	private := p.table.aux[slot]
	p.freeBlocks += private
	p.slackTokens -= p.privateSlack(p.table.tokens[slot], private)
	p.table.release(slot)
	p.prefixRef--
	if p.prefixRef == 0 {
		p.freeBlocks += p.prefixBlocks
		p.prefixBlocks = 0
	}
}

// UsedBytes implements Allocator.
func (p *PrefixPaged) UsedBytes() float64 {
	used := p.totalBlocks - p.freeBlocks
	return float64(used) * float64(p.BlockTokens) * p.BytesPerToken
}

// WasteBytes implements Allocator: per-sequence partial-block slack,
// computed over private storage only (the shared blocks are full).
func (p *PrefixPaged) WasteBytes() float64 {
	return float64(p.slackTokens) * p.BytesPerToken
}

// CapacityBytes implements Allocator.
func (p *PrefixPaged) CapacityBytes() float64 { return p.capacity }

// CanAlloc implements Allocator.
func (p *PrefixPaged) CanAlloc(tokens int) bool {
	return p.needFor(tokens) <= p.freeBlocks
}

// MaxExtendSteps implements Allocator: like Paged, but demand counts
// private blocks only (the shared prefix never grows). The sequence
// states are read once up front into a reused buffer, so the search
// probes are pure arithmetic.
func (p *PrefixPaged) MaxExtendSteps(seqs []Seq, limit int) int {
	if limit <= 0 {
		return 0
	}
	toks := p.scratch[:0]
	base := 0
	for _, s := range seqs {
		slot := p.table.lookup(s)
		if slot < 0 {
			return 0
		}
		toks = append(toks, p.table.tokens[slot])
		base += p.table.aux[slot]
	}
	p.scratch = toks
	demand := func(k int) int {
		blocks := -base
		for _, t := range toks {
			blocks += p.privateBlocksFor(t + k)
		}
		return blocks
	}
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if demand(mid) <= p.freeBlocks {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Sequences returns the number of live sequences.
func (p *PrefixPaged) Sequences() int { return p.table.live }

// SharedBytes reports the storage the shared prefix occupies (once).
func (p *PrefixPaged) SharedBytes() float64 {
	return float64(p.prefixBlocks) * float64(p.BlockTokens) * p.BytesPerToken
}

// HotPrefixTokens reports the shared-prefix tokens currently
// materialised on the device: the full-block prefix tokens while any
// sequence references them, zero once the last reference dropped. The
// prefix-aware cluster router reads it to score replicas by expected
// prefix-hit length.
func (p *PrefixPaged) HotPrefixTokens() int {
	if p.prefixRef == 0 {
		return 0
	}
	return p.sharedFullBlocks() * p.BlockTokens
}

// RestorablePrefixTokens reports shared-prefix tokens held in a lower
// tier, restorable without recompute. A bare PrefixPaged has no lower
// tier — dropped prefix blocks are gone — so it always reports zero;
// Tiered overrides it.
func (p *PrefixPaged) RestorablePrefixTokens() int { return 0 }

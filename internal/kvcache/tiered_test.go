package kvcache

// Tiered offload tests: the HostTier LRU must evict in recency order
// under its capacity bound, and the Tiered wrapper must price exactly
// one restore per cold re-reference while a warm prefix discounts for
// free — with the whole promote/demote/restore cycle allocating
// nothing once warm, like every other allocator in the package.

import (
	"errors"
	"math"
	"testing"
)

func mustTiered(t *testing.T, block, prefix int, capBytes, hostBytes float64) *Tiered {
	t.Helper()
	gpu, err := NewPrefixPaged(block, prefix, 1, capBytes)
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := NewTiered(gpu, hostBytes, HostLink{GBPerS: 32, LatencyS: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	return tiered
}

func TestHostLinkValidate(t *testing.T) {
	good := HostLink{GBPerS: 32, LatencyS: 5e-6}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []HostLink{
		{GBPerS: 0, LatencyS: 5e-6},
		{GBPerS: -1, LatencyS: 5e-6},
		{GBPerS: math.Inf(1), LatencyS: 5e-6},
		{GBPerS: math.NaN(), LatencyS: 5e-6},
		{GBPerS: 32, LatencyS: 0},
		{GBPerS: 32, LatencyS: -1},
		{GBPerS: 32, LatencyS: math.Inf(1)},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("link %+v must fail validation", l)
		}
	}
	// 32 GB/s moving 32e9 bytes is one second plus the latency floor.
	if got := good.Seconds(32e9); math.Abs(got-(1+5e-6)) > 1e-12 {
		t.Errorf("Seconds(32 GB) = %v, want 1+5e-6", got)
	}
}

func TestHostTierConstructor(t *testing.T) {
	if _, err := NewHostTier(0); err == nil {
		t.Error("zero-capacity tier must fail")
	}
	if _, err := NewHostTier(-3); err == nil {
		t.Error("negative-capacity tier must fail")
	}
}

func TestHostTierLRUEviction(t *testing.T) {
	tier, err := NewHostTier(10)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ { // 12 blocks demanded of 10
		if !tier.Demote(id, 4) {
			t.Fatalf("demote %d rejected", id)
		}
	}
	// id 0 was least recently used: it must be the eviction victim.
	if tier.Has(0) || !tier.Has(1) || !tier.Has(2) {
		t.Fatalf("want {1,2} resident, got 0:%v 1:%v 2:%v", tier.Has(0), tier.Has(1), tier.Has(2))
	}
	if tier.UsedBlocks() != 8 {
		t.Errorf("used = %d, want 8", tier.UsedBlocks())
	}
	// Touch reorders: after touching 1, demoting a new group evicts 2.
	if !tier.Touch(1) {
		t.Fatal("touch of resident entry must succeed")
	}
	if tier.Touch(0) {
		t.Fatal("touch of absent entry must fail")
	}
	if !tier.Demote(3, 4) {
		t.Fatal("demote 3 rejected")
	}
	if !tier.Has(1) || tier.Has(2) || !tier.Has(3) {
		t.Fatalf("touch must have protected 1; got 1:%v 2:%v 3:%v", tier.Has(1), tier.Has(2), tier.Has(3))
	}
	c := tier.Counters()
	if c.Demotions != 4 || c.Evictions != 2 || c.Touches != 1 {
		t.Errorf("counters = %+v, want 4 demotions, 2 evictions, 1 touch", c)
	}
}

func TestHostTierDemoteRestoreRules(t *testing.T) {
	tier, err := NewHostTier(8)
	if err != nil {
		t.Fatal(err)
	}
	if tier.Demote(-1, 2) || tier.Demote(0, 0) || tier.Demote(0, 9) {
		t.Error("negative ID, empty group, and oversized group must be rejected")
	}
	if !tier.Demote(0, 3) || tier.Blocks(0) != 3 {
		t.Fatal("demote of 3 blocks must land")
	}
	// Re-demoting a resident ID replaces its size, not adds to it.
	if !tier.Demote(0, 5) || tier.Blocks(0) != 5 || tier.UsedBlocks() != 5 {
		t.Errorf("re-demote must replace: blocks %d used %d, want 5/5", tier.Blocks(0), tier.UsedBlocks())
	}
	b, ok := tier.Restore(0)
	if !ok || b != 5 || tier.Has(0) || tier.UsedBlocks() != 0 {
		t.Errorf("restore = (%d,%v), used %d; want (5,true), 0", b, ok, tier.UsedBlocks())
	}
	if _, ok := tier.Restore(0); ok {
		t.Error("restoring an absent entry must fail")
	}
	if tier.CapacityBlocks() != 8 {
		t.Errorf("capacity = %d, want 8", tier.CapacityBlocks())
	}
}

func TestTieredConstructorErrors(t *testing.T) {
	if _, err := NewTiered(nil, 1<<20, HostLink{GBPerS: 32, LatencyS: 5e-6}); err == nil {
		t.Error("nil device allocator must fail")
	}
	gpu, err := NewPrefixPaged(16, 64, 1, 16*100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTiered(gpu, 1<<20, HostLink{}); err == nil {
		t.Error("invalid link must fail")
	}
	// A host budget below one block holds nothing: reject at build.
	if _, err := NewTiered(gpu, 15, HostLink{GBPerS: 32, LatencyS: 5e-6}); err == nil {
		t.Error("sub-block host tier must fail")
	}
}

func TestTieredColdWarmDemoteRestore(t *testing.T) {
	// Block 16, prefix 64 → 4 shared full blocks (64 tokens).
	tv := mustTiered(t, 16, 64, 16*100, 16*8)

	s1 := mustAlloc(t, tv, 100)
	if skip, rs := tv.TakePrefillDiscount(); skip != 0 || rs != 0 {
		t.Errorf("first-ever reference must prefill the prefix itself, got skip %d restore %v", skip, rs)
	}
	if tv.HotPrefixTokens() != 64 || tv.RestorablePrefixTokens() != 0 {
		t.Errorf("hot/restorable = %d/%d, want 64/0", tv.HotPrefixTokens(), tv.RestorablePrefixTokens())
	}

	s2 := mustAlloc(t, tv, 100) // warm hit: prefix resident
	if skip, rs := tv.TakePrefillDiscount(); skip != 64 || rs != 0 {
		t.Errorf("warm hit: skip %d restore %v, want 64 free tokens", skip, rs)
	}

	tv.Free(s1)
	if tv.RestorablePrefixTokens() != 0 {
		t.Error("prefix still referenced: nothing may demote")
	}
	tv.Free(s2) // last reference: demote to host
	if tv.HotPrefixTokens() != 0 || tv.RestorablePrefixTokens() != 64 {
		t.Errorf("hot/restorable = %d/%d, want 0/64 after drain", tv.HotPrefixTokens(), tv.RestorablePrefixTokens())
	}
	if tv.HostUsedBytes() != 64 {
		t.Errorf("host bytes = %v, want 64", tv.HostUsedBytes())
	}

	s3 := mustAlloc(t, tv, 100) // cold on device, resident on host: restore
	skip, rs := tv.TakePrefillDiscount()
	if skip != 64 {
		t.Errorf("restored prefix must discount its 64 tokens, got %d", skip)
	}
	if want := tv.RestoreSeconds(); rs != want || !(rs > 0) {
		t.Errorf("restore charge %v, want %v (one full-prefix transfer)", rs, want)
	}
	if tv.HostUsedBytes() != 0 {
		t.Error("restore must vacate the host tier")
	}
	tv.Free(s3)

	st := tv.Stats()
	if st.Touches != 1 || st.Demotions != 2 || st.Restores != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 1 touch, 2 demotions, 1 restore", st)
	}
}

func TestTieredSkipNeverCoversLastToken(t *testing.T) {
	tv := mustTiered(t, 16, 64, 16*100, 16*8)
	s1 := mustAlloc(t, tv, 100)
	tv.TakePrefillDiscount()
	// A prompt of exactly the shared length still recomputes its last
	// token — its logits produce the first output.
	s2 := mustAlloc(t, tv, 64)
	if skip, _ := tv.TakePrefillDiscount(); skip != 63 {
		t.Errorf("skip = %d, want 63 (last token always computed)", skip)
	}
	// A prompt shorter than the shared prefix discounts what it has.
	s3 := mustAlloc(t, tv, 32)
	if skip, _ := tv.TakePrefillDiscount(); skip != 31 {
		t.Errorf("skip = %d, want 31", skip)
	}
	tv.Free(s1)
	tv.Free(s2)
	tv.Free(s3)
}

func TestTieredPrefixTooLargeForTier(t *testing.T) {
	// Host tier of 2 blocks cannot hold the 4-block prefix: demotion
	// drops the blocks, exactly as no tier would.
	tv := mustTiered(t, 16, 64, 16*100, 16*2)
	s := mustAlloc(t, tv, 100)
	tv.TakePrefillDiscount()
	tv.Free(s)
	if tv.RestorablePrefixTokens() != 0 || tv.HostUsedBytes() != 0 {
		t.Fatal("oversized prefix must be dropped, not demoted")
	}
	s = mustAlloc(t, tv, 100) // truly cold: full re-prefill, no charge
	if skip, rs := tv.TakePrefillDiscount(); skip != 0 || rs != 0 {
		t.Errorf("cold re-reference must not discount, got skip %d restore %v", skip, rs)
	}
	tv.Free(s)
	if st := tv.Stats(); st.Demotions != 0 {
		t.Errorf("demotions = %d, want 0 (tier too small)", st.Demotions)
	}
}

func TestTieredZeroPrefixDegradesToPaged(t *testing.T) {
	tv := mustTiered(t, 16, 0, 16*100, 16*8)
	s := mustAlloc(t, tv, 100)
	if skip, rs := tv.TakePrefillDiscount(); skip != 0 || rs != 0 {
		t.Error("no shared prefix, no discount")
	}
	if tv.HotPrefixTokens() != 0 || tv.RestorablePrefixTokens() != 0 {
		t.Error("no shared prefix, nothing hot or restorable")
	}
	tv.Free(s)
	if tv.HostUsedBytes() != 0 {
		t.Error("nothing may demote")
	}
}

func TestTieredStaleFreeNeverDemotes(t *testing.T) {
	tv := mustTiered(t, 16, 64, 16*100, 16*8)
	s := mustAlloc(t, tv, 100)
	tv.TakePrefillDiscount()
	stale := mustAlloc(t, tv, 100)
	tv.Free(stale)
	if tv.RestorablePrefixTokens() != 0 {
		t.Fatal("a live reference remains: nothing may demote")
	}
	// The dead handle must not probe the demotion path again: the
	// prefix is still referenced by s, and a double free that reached
	// Free's tail would demote a hot prefix.
	tv.Free(stale)
	if tv.HotPrefixTokens() != 64 || tv.RestorablePrefixTokens() != 0 {
		t.Error("double free must leave the hot prefix alone")
	}
	if err := tv.Extend(s, 128); err != nil {
		t.Fatal(err)
	}
	tv.Free(s)
}

// TestTieredWarmCycleAllocs extends the package's zero-allocation
// discipline across the tier boundary: once the slot table, free
// stack, and host-tier tables have grown, a full
// alloc→extend→free→demote→alloc→restore cycle allocates nothing.
func TestTieredWarmCycleAllocs(t *testing.T) {
	tv := mustTiered(t, 16, 256, 16*4096, 16*64)
	var seqs [8]Seq
	cycle := func() {
		for i := range seqs {
			seq, err := tv.Alloc(512 + 16*i)
			if err != nil {
				t.Fatal(err)
			}
			seqs[i] = seq
		}
		_, _ = tv.TakePrefillDiscount()
		for step := 0; step < 32; step++ {
			if tv.MaxExtendSteps(seqs[:], 64) < 1 {
				t.Fatal("warm pool unexpectedly full")
			}
			for i, seq := range seqs {
				if err := tv.Extend(seq, 512+16*i+step+1); err != nil {
					t.Fatal(err)
				}
			}
		}
		_ = tv.UsedBytes()
		_ = tv.WasteBytes()
		_ = tv.HostUsedBytes()
		_ = tv.HotPrefixTokens()
		_ = tv.RestorablePrefixTokens()
		for _, seq := range seqs {
			tv.Free(seq) // last free demotes the prefix to the host tier
		}
	}
	cycle() // warm every table, including the tier's; next cycle restores
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Errorf("warm tiered demote/restore cycle allocates %.1f times, want 0", avg)
	}
}

func TestTieredDelegation(t *testing.T) {
	tv := mustTiered(t, 16, 64, 16*100, 16*8)
	if tv.CapacityBytes() != 16*100 {
		t.Errorf("capacity = %v, want the device budget", tv.CapacityBytes())
	}
	s := mustAlloc(t, tv, 100)
	if !tv.CanAlloc(100) {
		t.Error("plenty of room: CanAlloc must hold")
	}
	if tv.Sequences() != 1 {
		t.Errorf("sequences = %d, want 1", tv.Sequences())
	}
	if tv.UsedBytes() != tv.gpu.UsedBytes() || tv.WasteBytes() != tv.gpu.WasteBytes() {
		t.Error("usage must mirror the device allocator")
	}
	if err := tv.Extend(s, 0); err == nil {
		t.Error("shrinking must fail through the wrapper")
	}
	var ifc Allocator = tv // the wrapper is a drop-in Allocator
	if _, ok := ifc.(PrefillDiscounter); !ok {
		t.Error("Tiered must implement PrefillDiscounter")
	}
	tv.Free(s)
	if _, ok := interface{}(&PrefixPaged{}).(PrefillDiscounter); ok {
		t.Error("bare PrefixPaged must not discount (its misses re-prefill)")
	}
	if errors.Is(ErrPrefixTooLarge, ErrOutOfMemory) {
		t.Error("construction rejection must stay distinct from runtime OOM")
	}
}

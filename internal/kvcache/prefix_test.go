package kvcache

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, block, prefix int, perTok, cap float64) *PrefixPaged {
	t.Helper()
	p, err := NewPrefixPaged(block, prefix, perTok, cap)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPrefixSharingSavesStorage(t *testing.T) {
	// 8 sequences sharing a 512-token prefix: the plain paged
	// allocator stores the prefix 8 times, the prefix-aware one once.
	const prefix, private = 512, 128
	plain := mustPaged(t, 16, 1, 1e9)
	shared := mustPrefix(t, 16, prefix, 1, 1e9)
	for i := 0; i < 8; i++ {
		if err := plain.Alloc(i, prefix+private); err != nil {
			t.Fatal(err)
		}
		if err := shared.Alloc(i, prefix+private); err != nil {
			t.Fatal(err)
		}
	}
	if plain.UsedBytes() <= shared.UsedBytes() {
		t.Fatalf("sharing must save storage: plain %v vs shared %v",
			plain.UsedBytes(), shared.UsedBytes())
	}
	// Expected: plain 8·(512+128), shared 512 + 8·128.
	wantShared := float64(prefix + 8*private)
	if shared.UsedBytes() != wantShared {
		t.Errorf("shared usage %v, want %v", shared.UsedBytes(), wantShared)
	}
	if shared.SharedBytes() != prefix {
		t.Errorf("shared prefix bytes %v, want %v", shared.SharedBytes(), float64(prefix))
	}
}

func TestPrefixRefCounting(t *testing.T) {
	p := mustPrefix(t, 16, 256, 1, 1e6)
	if err := p.Alloc(1, 300); err != nil {
		t.Fatal(err)
	}
	if err := p.Alloc(2, 300); err != nil {
		t.Fatal(err)
	}
	p.Free(1)
	if p.SharedBytes() != 256 {
		t.Error("prefix must stay while one reference remains")
	}
	p.Free(2)
	if p.SharedBytes() != 0 {
		t.Error("prefix must be released with the last reference")
	}
	if p.UsedBytes() != 0 {
		t.Errorf("all storage must be free, used = %v", p.UsedBytes())
	}
	p.Free(99) // unknown free is a no-op
}

func TestPrefixExtendGrowsPrivateOnly(t *testing.T) {
	p := mustPrefix(t, 16, 256, 1, 1e6)
	if err := p.Alloc(1, 256); err != nil {
		t.Fatal(err)
	}
	base := p.UsedBytes()
	if err := p.Extend(1, 256+16); err != nil {
		t.Fatal(err)
	}
	if p.UsedBytes() != base+16 {
		t.Errorf("extend should add one private block: %v -> %v", base, p.UsedBytes())
	}
	if err := p.Extend(1, 100); err == nil {
		t.Error("shrink must fail")
	}
	if err := p.Extend(9, 300); err == nil {
		t.Error("unknown sequence must fail")
	}
}

func TestPrefixOOM(t *testing.T) {
	// Capacity for the prefix plus one private block only.
	p := mustPrefix(t, 16, 64, 1, 64+16)
	if err := p.Alloc(1, 80); err != nil {
		t.Fatal(err)
	}
	if err := p.Alloc(2, 80); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("second private block must OOM, got %v", err)
	}
	// But a prefix-only sequence still fits (shares everything).
	if err := p.Alloc(3, 64); err != nil {
		t.Errorf("prefix-only sequence must share: %v", err)
	}
}

func TestPrefixConstructorErrors(t *testing.T) {
	if _, err := NewPrefixPaged(0, 64, 1, 100); err == nil {
		t.Error("block 0 must fail")
	}
	if _, err := NewPrefixPaged(16, -1, 1, 100); err == nil {
		t.Error("negative prefix must fail")
	}
	if _, err := NewPrefixPaged(16, 64, 0, 100); err == nil {
		t.Error("zero bytes/token must fail")
	}
}

func TestPrefixDoubleAlloc(t *testing.T) {
	p := mustPrefix(t, 16, 64, 1, 1e6)
	if err := p.Alloc(1, 64); err != nil {
		t.Fatal(err)
	}
	if err := p.Alloc(1, 64); err == nil {
		t.Error("double alloc must fail")
	}
}

func TestPrefixZeroPrefixEquivalentToPaged(t *testing.T) {
	// With PrefixTokens 0, the allocator degenerates to plain paging.
	f := func(tok uint16, n uint8) bool {
		shared, err := NewPrefixPaged(16, 0, 1, 1e9)
		if err != nil {
			return false
		}
		plain, err := NewPaged(16, 1, 1e9)
		if err != nil {
			return false
		}
		seqs := int(n%10) + 1
		for i := 0; i < seqs; i++ {
			t1 := int(tok)%2048 + 1
			if err := shared.Alloc(i, t1); err != nil {
				return false
			}
			if err := plain.Alloc(i, t1); err != nil {
				return false
			}
		}
		return shared.UsedBytes() == plain.UsedBytes() && shared.WasteBytes() == plain.WasteBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPrefixInvariantUnderChurn(t *testing.T) {
	p := mustPrefix(t, 16, 512, 2, 1<<20)
	live := map[int]bool{}
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0, 1:
			if p.CanAlloc(512 + i) {
				if err := p.Alloc(i, 512+i); err == nil {
					live[i] = true
				}
			}
		case 2:
			for id := range live {
				p.Free(id)
				delete(live, id)
				break
			}
		}
		if p.UsedBytes() > p.CapacityBytes() {
			t.Fatal("usage exceeded capacity")
		}
		if len(live) == 0 && p.SharedBytes() != 0 {
			t.Fatal("prefix leaked with no live sequences")
		}
	}
}

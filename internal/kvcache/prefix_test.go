package kvcache

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, block, prefix int, perTok, cap float64) *PrefixPaged {
	t.Helper()
	p, err := NewPrefixPaged(block, prefix, perTok, cap)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPrefixSharingSavesStorage(t *testing.T) {
	// 8 sequences sharing a 512-token prefix: the plain paged
	// allocator stores the prefix 8 times, the prefix-aware one once.
	const prefix, private = 512, 128
	plain := mustPaged(t, 16, 1, 1e9)
	shared := mustPrefix(t, 16, prefix, 1, 1e9)
	for i := 0; i < 8; i++ {
		if _, err := plain.Alloc(prefix + private); err != nil {
			t.Fatal(err)
		}
		if _, err := shared.Alloc(prefix + private); err != nil {
			t.Fatal(err)
		}
	}
	if plain.UsedBytes() <= shared.UsedBytes() {
		t.Fatalf("sharing must save storage: plain %v vs shared %v",
			plain.UsedBytes(), shared.UsedBytes())
	}
	// Expected: plain 8·(512+128), shared 512 + 8·128.
	wantShared := float64(prefix + 8*private)
	if shared.UsedBytes() != wantShared {
		t.Errorf("shared usage %v, want %v", shared.UsedBytes(), wantShared)
	}
	if shared.SharedBytes() != prefix {
		t.Errorf("shared prefix bytes %v, want %v", shared.SharedBytes(), float64(prefix))
	}
}

func TestPrefixRefCounting(t *testing.T) {
	p := mustPrefix(t, 16, 256, 1, 1e6)
	s1 := mustAlloc(t, p, 300)
	s2 := mustAlloc(t, p, 300)
	p.Free(s1)
	if p.SharedBytes() != 256 {
		t.Error("prefix must stay while one reference remains")
	}
	p.Free(s2)
	if p.SharedBytes() != 0 {
		t.Error("prefix must be released with the last reference")
	}
	if p.UsedBytes() != 0 {
		t.Errorf("all storage must be free, used = %v", p.UsedBytes())
	}
	p.Free(Seq(0)) // unknown free is a no-op
	p.Free(s1)     // stale free is a no-op
}

func TestPrefixExtendGrowsPrivateOnly(t *testing.T) {
	p := mustPrefix(t, 16, 256, 1, 1e6)
	s := mustAlloc(t, p, 256)
	base := p.UsedBytes()
	if err := p.Extend(s, 256+16); err != nil {
		t.Fatal(err)
	}
	if p.UsedBytes() != base+16 {
		t.Errorf("extend should add one private block: %v -> %v", base, p.UsedBytes())
	}
	if err := p.Extend(s, 100); err == nil {
		t.Error("shrink must fail")
	}
	if err := p.Extend(Seq(0), 300); err == nil {
		t.Error("unknown sequence must fail")
	}
}

func TestPrefixOOM(t *testing.T) {
	// Capacity for the prefix plus one private block only.
	p := mustPrefix(t, 16, 64, 1, 64+16)
	if _, err := p.Alloc(80); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(80); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("second private block must OOM, got %v", err)
	}
	// But a prefix-only sequence still fits (shares everything).
	if _, err := p.Alloc(64); err != nil {
		t.Errorf("prefix-only sequence must share: %v", err)
	}
}

func TestPrefixConstructorErrors(t *testing.T) {
	if _, err := NewPrefixPaged(0, 64, 1, 100); err == nil {
		t.Error("block 0 must fail")
	}
	if _, err := NewPrefixPaged(16, -1, 1, 100); err == nil {
		t.Error("negative prefix must fail")
	}
	if _, err := NewPrefixPaged(16, 64, 0, 100); err == nil {
		t.Error("zero bytes/token must fail")
	}
}

func TestPrefixStaleHandle(t *testing.T) {
	p := mustPrefix(t, 16, 64, 1, 1e6)
	s := mustAlloc(t, p, 64)
	p.Free(s)
	if err := p.Extend(s, 80); err == nil {
		t.Error("freed handle must be dead")
	}
	s2 := mustAlloc(t, p, 64) // recycles the slot
	if s2 == s {
		t.Fatal("recycled slot must carry a new generation")
	}
	refBefore := p.prefixRef
	p.Free(s) // stale free must not drop the new occupant's reference
	if p.prefixRef != refBefore {
		t.Error("stale free must be a no-op")
	}
}

func TestPrefixZeroPrefixEquivalentToPaged(t *testing.T) {
	// With PrefixTokens 0, the allocator degenerates to plain paging.
	f := func(tok uint16, n uint8) bool {
		shared, err := NewPrefixPaged(16, 0, 1, 1e9)
		if err != nil {
			return false
		}
		plain, err := NewPaged(16, 1, 1e9)
		if err != nil {
			return false
		}
		seqs := int(n%10) + 1
		for i := 0; i < seqs; i++ {
			t1 := int(tok)%2048 + 1
			if _, err := shared.Alloc(t1); err != nil {
				return false
			}
			if _, err := plain.Alloc(t1); err != nil {
				return false
			}
		}
		return shared.UsedBytes() == plain.UsedBytes() && shared.WasteBytes() == plain.WasteBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPrefixInvariantUnderChurn(t *testing.T) {
	p := mustPrefix(t, 16, 512, 2, 1<<20)
	var live []Seq
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0, 1:
			if p.CanAlloc(512 + i) {
				if s, err := p.Alloc(512 + i); err == nil {
					live = append(live, s)
				}
			}
		case 2:
			if len(live) > 0 {
				p.Free(live[0])
				live = live[1:]
			}
		}
		if p.UsedBytes() > p.CapacityBytes() {
			t.Fatal("usage exceeded capacity")
		}
		if len(live) == 0 && p.SharedBytes() != 0 {
			t.Fatal("prefix leaked with no live sequences")
		}
	}
}

package kvcache

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustPaged(t *testing.T, block int, perTok, cap float64) *Paged {
	t.Helper()
	p, err := NewPaged(block, perTok, cap)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPagedAllocExtendFree(t *testing.T) {
	p := mustPaged(t, 16, 1, 16*100) // 100 blocks
	if err := p.Alloc(1, 100); err != nil {
		t.Fatal(err)
	}
	// 100 tokens → 7 blocks (ceil(100/16)).
	if got := p.UsedBytes(); got != 7*16 {
		t.Errorf("used = %v, want 112", got)
	}
	if got := p.WasteBytes(); got != 12 {
		t.Errorf("waste = %v, want 12 (7*16-100)", got)
	}
	if err := p.Extend(1, 112); err != nil {
		t.Fatal(err)
	}
	if got := p.UsedBytes(); got != 7*16 {
		t.Errorf("extend within slack should not take blocks, used = %v", got)
	}
	if err := p.Extend(1, 113); err != nil {
		t.Fatal(err)
	}
	if got := p.UsedBytes(); got != 8*16 {
		t.Errorf("extend past slack should take a block, used = %v", got)
	}
	p.Free(1)
	if p.UsedBytes() != 0 || p.Sequences() != 0 {
		t.Error("free must release everything")
	}
}

func TestPagedOOM(t *testing.T) {
	p := mustPaged(t, 16, 1, 16*4) // 4 blocks
	if err := p.Alloc(1, 64); err != nil {
		t.Fatal(err)
	}
	if err := p.Alloc(2, 1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("expected OOM, got %v", err)
	}
	if err := p.Extend(1, 65); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("expected OOM on extend, got %v", err)
	}
	if p.CanAlloc(1) {
		t.Error("CanAlloc must be false when full")
	}
}

func TestPagedDoubleAllocAndUnknown(t *testing.T) {
	p := mustPaged(t, 16, 1, 16*4)
	if err := p.Alloc(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Alloc(1, 1); err == nil {
		t.Error("double alloc must fail")
	}
	if err := p.Extend(9, 1); err == nil {
		t.Error("extending unknown sequence must fail")
	}
	if err := p.Extend(1, 0); err == nil {
		t.Error("shrinking must fail")
	}
	p.Free(42) // freeing unknown must be a no-op
}

func TestPagedConstructorErrors(t *testing.T) {
	if _, err := NewPaged(0, 1, 100); err == nil {
		t.Error("block 0 must fail")
	}
	if _, err := NewPaged(16, 0, 100); err == nil {
		t.Error("zero bytes/token must fail")
	}
}

func TestPagedWasteBounded(t *testing.T) {
	// Paged waste per sequence is < one block — the PagedAttention
	// claim (§IV-B2).
	f := func(tok uint16, n uint8) bool {
		p, err := NewPaged(16, 1, 1e9)
		if err != nil {
			return false
		}
		seqs := int(n%20) + 1
		for i := 0; i < seqs; i++ {
			if err := p.Alloc(i, int(tok)+1); err != nil {
				return false
			}
		}
		return p.WasteBytes() < float64(seqs)*16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonolithicWasteDominates(t *testing.T) {
	// A monolithic allocator reserving 4096 tokens for a 128-token
	// sequence wastes ~97%; the paged allocator wastes <1 block.
	mono, err := NewMonolithic(4096, 1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	paged := mustPaged(t, 16, 1, 1e9)
	if err := mono.Alloc(1, 128); err != nil {
		t.Fatal(err)
	}
	if err := paged.Alloc(1, 128); err != nil {
		t.Fatal(err)
	}
	if mono.WasteBytes() < 100*paged.WasteBytes() {
		t.Errorf("monolithic waste %v should dwarf paged waste %v",
			mono.WasteBytes(), paged.WasteBytes())
	}
}

func TestMonolithicConcurrencyLimit(t *testing.T) {
	// Capacity 10 reservations of 4096 tokens.
	mono, err := NewMonolithic(4096, 1, 4096*10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := mono.Alloc(i, 1); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if err := mono.Alloc(10, 1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("11th sequence should OOM, got %v", err)
	}
	// The paged allocator fits far more short sequences in the same
	// capacity — the concurrency win of Fig. 2b's mechanism.
	paged := mustPaged(t, 16, 1, 4096*10)
	n := 0
	for paged.CanAlloc(1) {
		if err := paged.Alloc(1000+n, 1); err != nil {
			break
		}
		n++
	}
	if n < 100 {
		t.Errorf("paged allocator admitted only %d short sequences", n)
	}
}

func TestMonolithicExtendWithinReservation(t *testing.T) {
	mono, err := NewMonolithic(128, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := mono.Alloc(1, 10); err != nil {
		t.Fatal(err)
	}
	used := mono.UsedBytes()
	if err := mono.Extend(1, 128); err != nil {
		t.Fatal(err)
	}
	if mono.UsedBytes() != used {
		t.Error("extend within reservation must not change usage")
	}
	if err := mono.Extend(1, 129); !errors.Is(err, ErrOutOfMemory) {
		t.Error("extend past reservation must OOM")
	}
	if err := mono.Extend(1, 5); err == nil {
		t.Error("shrink must fail")
	}
	if err := mono.Extend(99, 5); err == nil {
		t.Error("unknown sequence must fail")
	}
	if err := mono.Alloc(1, 5); err == nil {
		t.Error("double alloc must fail")
	}
	if err := mono.Alloc(2, 4096); err == nil {
		t.Error("alloc longer than reservation must fail")
	}
	mono.Free(1)
	if mono.Sequences() != 0 {
		t.Error("free failed")
	}
}

func TestBlockEfficiency(t *testing.T) {
	// Fig. 2b: ≥16 optimal and equal; 8 noticeably worse.
	for _, b := range []int{16, 32, 64, 128} {
		if BlockEfficiency(b) != 1 {
			t.Errorf("block %d efficiency = %v, want 1", b, BlockEfficiency(b))
		}
	}
	e8 := BlockEfficiency(8)
	if e8 >= 1 || e8 < 0.5 {
		t.Errorf("block 8 efficiency = %v, want in [0.5, 1)", e8)
	}
	ratio := 1 / e8
	if ratio < 1.1 || ratio > 1.6 {
		t.Errorf("block-16 vs block-8 KV-stream ratio = %v, want in [1.1, 1.6]", ratio)
	}
	if BlockEfficiency(0) != 0 {
		t.Error("block 0 efficiency must be 0")
	}
	if BlockEfficiency(4) >= e8 {
		t.Error("efficiency must decrease with smaller blocks")
	}
}

func TestPagedUsedNeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		p, err := NewPaged(16, 2, 4096)
		if err != nil {
			return false
		}
		for i, op := range ops {
			switch op % 3 {
			case 0:
				_ = p.Alloc(i, int(op%512)+1)
			case 1:
				_ = p.Extend(i-1, int(op))
			case 2:
				p.Free(i - 2)
			}
			if p.UsedBytes() > p.CapacityBytes()+1e-9 {
				return false
			}
			if p.WasteBytes() > p.UsedBytes()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

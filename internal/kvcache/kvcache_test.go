package kvcache

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustPaged(t *testing.T, block int, perTok, cap float64) *Paged {
	t.Helper()
	p, err := NewPaged(block, perTok, cap)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustAlloc(t *testing.T, a Allocator, tokens int) Seq {
	t.Helper()
	s, err := a.Alloc(tokens)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPagedAllocExtendFree(t *testing.T) {
	p := mustPaged(t, 16, 1, 16*100) // 100 blocks
	s := mustAlloc(t, p, 100)
	// 100 tokens → 7 blocks (ceil(100/16)).
	if got := p.UsedBytes(); got != 7*16 {
		t.Errorf("used = %v, want 112", got)
	}
	if got := p.WasteBytes(); got != 12 {
		t.Errorf("waste = %v, want 12 (7*16-100)", got)
	}
	if err := p.Extend(s, 112); err != nil {
		t.Fatal(err)
	}
	if got := p.UsedBytes(); got != 7*16 {
		t.Errorf("extend within slack should not take blocks, used = %v", got)
	}
	if err := p.Extend(s, 113); err != nil {
		t.Fatal(err)
	}
	if got := p.UsedBytes(); got != 8*16 {
		t.Errorf("extend past slack should take a block, used = %v", got)
	}
	p.Free(s)
	if p.UsedBytes() != 0 || p.Sequences() != 0 || p.WasteBytes() != 0 {
		t.Error("free must release everything")
	}
}

func TestPagedOOM(t *testing.T) {
	p := mustPaged(t, 16, 1, 16*4) // 4 blocks
	s := mustAlloc(t, p, 64)
	if _, err := p.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("expected OOM, got %v", err)
	}
	if err := p.Extend(s, 65); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("expected OOM on extend, got %v", err)
	}
	if p.CanAlloc(1) {
		t.Error("CanAlloc must be false when full")
	}
}

// TestPagedStaleHandles exercises the generation guard: a freed handle
// is dead forever, even after its slot is recycled by a new sequence.
func TestPagedStaleHandles(t *testing.T) {
	p := mustPaged(t, 16, 1, 16*8)
	s := mustAlloc(t, p, 1)
	if err := p.Extend(s, 0); err == nil {
		t.Error("shrinking must fail")
	}
	if err := p.Extend(Seq(0), 1); err == nil {
		t.Error("extending the zero handle must fail")
	}
	p.Free(Seq(0)) // freeing an invalid handle must be a no-op
	p.Free(s)
	if err := p.Extend(s, 2); err == nil {
		t.Error("extending a freed handle must fail")
	}
	s2 := mustAlloc(t, p, 5) // recycles the slot
	if s2 == s {
		t.Fatal("recycled slot must carry a new generation")
	}
	if err := p.Extend(s, 6); err == nil {
		t.Error("stale handle must not reach the recycled slot")
	}
	used := p.UsedBytes()
	p.Free(s) // stale free must not free the new occupant
	if p.UsedBytes() != used || p.Sequences() != 1 {
		t.Error("stale free must be a no-op")
	}
	if got := p.MaxExtendSteps([]Seq{s}, 10); got != 0 {
		t.Errorf("stale handle in MaxExtendSteps: got %d want 0", got)
	}
}

func TestPagedConstructorErrors(t *testing.T) {
	if _, err := NewPaged(0, 1, 100); err == nil {
		t.Error("block 0 must fail")
	}
	if _, err := NewPaged(16, 0, 100); err == nil {
		t.Error("zero bytes/token must fail")
	}
}

func TestPagedWasteBounded(t *testing.T) {
	// Paged waste per sequence is < one block — the PagedAttention
	// claim (§IV-B2).
	f := func(tok uint16, n uint8) bool {
		p, err := NewPaged(16, 1, 1e9)
		if err != nil {
			return false
		}
		seqs := int(n%20) + 1
		for i := 0; i < seqs; i++ {
			if _, err := p.Alloc(int(tok) + 1); err != nil {
				return false
			}
		}
		return p.WasteBytes() < float64(seqs)*16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonolithicWasteDominates(t *testing.T) {
	// A monolithic allocator reserving 4096 tokens for a 128-token
	// sequence wastes ~97%; the paged allocator wastes <1 block.
	mono, err := NewMonolithic(4096, 1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	paged := mustPaged(t, 16, 1, 1e9)
	mustAlloc(t, mono, 128)
	mustAlloc(t, paged, 128)
	if mono.WasteBytes() < 100*paged.WasteBytes() {
		t.Errorf("monolithic waste %v should dwarf paged waste %v",
			mono.WasteBytes(), paged.WasteBytes())
	}
}

func TestMonolithicConcurrencyLimit(t *testing.T) {
	// Capacity 10 reservations of 4096 tokens.
	mono, err := NewMonolithic(4096, 1, 4096*10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := mono.Alloc(1); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := mono.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("11th sequence should OOM, got %v", err)
	}
	// The paged allocator fits far more short sequences in the same
	// capacity — the concurrency win of Fig. 2b's mechanism.
	paged := mustPaged(t, 16, 1, 4096*10)
	n := 0
	for paged.CanAlloc(1) {
		if _, err := paged.Alloc(1); err != nil {
			break
		}
		n++
	}
	if n < 100 {
		t.Errorf("paged allocator admitted only %d short sequences", n)
	}
}

func TestMonolithicExtendWithinReservation(t *testing.T) {
	mono, err := NewMonolithic(128, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	s := mustAlloc(t, mono, 10)
	used := mono.UsedBytes()
	if err := mono.Extend(s, 128); err != nil {
		t.Fatal(err)
	}
	if mono.UsedBytes() != used {
		t.Error("extend within reservation must not change usage")
	}
	if err := mono.Extend(s, 129); !errors.Is(err, ErrOutOfMemory) {
		t.Error("extend past reservation must OOM")
	}
	if err := mono.Extend(s, 5); err == nil {
		t.Error("shrink must fail")
	}
	if err := mono.Extend(Seq(0), 5); err == nil {
		t.Error("unknown sequence must fail")
	}
	if _, err := mono.Alloc(4096); err == nil {
		t.Error("alloc longer than reservation must fail")
	}
	mono.Free(s)
	if mono.Sequences() != 0 || mono.WasteBytes() != 0 {
		t.Error("free failed")
	}
	if err := mono.Extend(s, 20); err == nil {
		t.Error("freed handle must be dead")
	}
}

func TestBlockEfficiency(t *testing.T) {
	// Fig. 2b: ≥16 optimal and equal; 8 noticeably worse.
	for _, b := range []int{16, 32, 64, 128} {
		if BlockEfficiency(b) != 1 {
			t.Errorf("block %d efficiency = %v, want 1", b, BlockEfficiency(b))
		}
	}
	e8 := BlockEfficiency(8)
	if e8 >= 1 || e8 < 0.5 {
		t.Errorf("block 8 efficiency = %v, want in [0.5, 1)", e8)
	}
	ratio := 1 / e8
	if ratio < 1.1 || ratio > 1.6 {
		t.Errorf("block-16 vs block-8 KV-stream ratio = %v, want in [1.1, 1.6]", ratio)
	}
	if BlockEfficiency(0) != 0 {
		t.Error("block 0 efficiency must be 0")
	}
	if BlockEfficiency(4) >= e8 {
		t.Error("efficiency must decrease with smaller blocks")
	}
}

func TestPagedUsedNeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		p, err := NewPaged(16, 2, 4096)
		if err != nil {
			return false
		}
		var live []Seq
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if s, err := p.Alloc(int(op%512) + 1); err == nil {
					live = append(live, s)
				}
			case 1:
				if len(live) > 0 {
					_ = p.Extend(live[len(live)-1], int(op))
				}
			case 2:
				if len(live) > 0 {
					p.Free(live[0])
					live = live[1:]
				}
			}
			if p.UsedBytes() > p.CapacityBytes()+1e-9 {
				return false
			}
			if p.WasteBytes() > p.UsedBytes()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSlotRecyclingStaysDense checks the free-list keeps the tables at
// peak-concurrency size through heavy churn: slots are reused, not
// appended, once the high-water mark is reached.
func TestSlotRecyclingStaysDense(t *testing.T) {
	p := mustPaged(t, 16, 1, 1e9)
	var live []Seq
	for i := 0; i < 8; i++ {
		live = append(live, mustAlloc(t, p, 32))
	}
	for i := 0; i < 1000; i++ {
		p.Free(live[i%8])
		live[i%8] = mustAlloc(t, p, 32)
	}
	if got := len(p.table.tokens); got != 8 {
		t.Errorf("table grew to %d slots under churn, want 8", got)
	}
	if p.Sequences() != 8 {
		t.Errorf("live = %d, want 8", p.Sequences())
	}
}

package perplexity

import (
	"math"
	"testing"
	"testing/quick"
)

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := GenerateCorpus(7, 64, 60000, 6000)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusDeterministic(t *testing.T) {
	a, err := GenerateCorpus(3, 64, 5000, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenerateCorpus(3, 64, 5000, 500)
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("corpus must be deterministic in the seed")
		}
	}
}

func TestCorpusErrors(t *testing.T) {
	if _, err := GenerateCorpus(1, 2, 5000, 500); err == nil {
		t.Error("tiny vocab must fail")
	}
	if _, err := GenerateCorpus(1, 64, 10, 500); err == nil {
		t.Error("tiny train must fail")
	}
}

func TestTokensInRange(t *testing.T) {
	c := testCorpus(t)
	for _, tok := range c.Train {
		if tok < 0 || tok >= c.Vocab {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	c := testCorpus(t)
	if _, err := Train(nil, 0.5); err == nil {
		t.Error("nil corpus must fail")
	}
	if _, err := Train(c, 0); err == nil {
		t.Error("zero capacity must fail")
	}
	if _, err := Train(c, 1.5); err == nil {
		t.Error("capacity > 1 must fail")
	}
}

func TestProbIsDistribution(t *testing.T) {
	c := testCorpus(t)
	m, err := Train(c, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Probabilities over the whole vocabulary must sum to ~1 for a
	// few contexts.
	for _, ctx := range [][2]int{{0, 1}, {5, 9}, {63, 63}} {
		sum := 0.0
		for tok := 0; tok < c.Vocab; tok++ {
			p := m.Prob(ctx[0], ctx[1], tok)
			if p < 0 {
				t.Fatalf("negative probability at ctx %v tok %d", ctx, tok)
			}
			sum += p
		}
		if math.Abs(sum-1) > 0.02 {
			t.Errorf("ctx %v: probabilities sum to %v", ctx, sum)
		}
	}
}

func TestHigherCapacityLowerPerplexity(t *testing.T) {
	c := testCorpus(t)
	var prev float64 = math.Inf(1)
	for _, cap_ := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		m, err := Train(c, cap_)
		if err != nil {
			t.Fatal(err)
		}
		ppl, err := m.Perplexity(c)
		if err != nil {
			t.Fatal(err)
		}
		if ppl >= prev {
			t.Errorf("capacity %v: ppl %v not below previous %v", cap_, ppl, prev)
		}
		prev = ppl
	}
}

func TestEvaluatorMatchesPaperLayout(t *testing.T) {
	ev, err := NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ev.ModelPerplexity("LLaMA-2-7B")
	if err != nil {
		t.Fatal(err)
	}
	mistral, _ := ev.ModelPerplexity("Mistral-7B")
	l3, _ := ev.ModelPerplexity("LLaMA-3-8B")
	bloom, _ := ev.ModelPerplexity("Bloom-7.1B")
	opt, _ := ev.ModelPerplexity("OPT-6.7B")

	// §V-2: LLaMA-2-7B has the best perplexity (MHSA); Mistral is
	// close behind ("only 0.09 higher"); OPT/Bloom trail far behind.
	if !(l2 < mistral && mistral < l3) {
		t.Errorf("ordering wrong: L2=%v Mistral=%v L3=%v", l2, mistral, l3)
	}
	if d := mistral - l2; d <= 0 || d > 0.3 {
		t.Errorf("Mistral gap = %v, want small (paper: 0.09)", d)
	}
	if bloom < opt {
		t.Errorf("Bloom (%v) must trail OPT (%v)", bloom, opt)
	}
	// The whole scatter lives in the paper's 3–5.5 band.
	for _, name := range ScatterModels() {
		ppl, err := ev.ModelPerplexity(name)
		if err != nil {
			t.Fatal(err)
		}
		if ppl < 2.5 || ppl > 5.6 {
			t.Errorf("%s: ppl %v outside the paper's band", name, ppl)
		}
	}
}

func TestEvaluatorUnknownModel(t *testing.T) {
	ev, err := NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.ModelPerplexity("GPT-5"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestEvaluatorCacheConsistent(t *testing.T) {
	ev, err := NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ev.ModelPerplexity("DeciLM-7B")
	b, _ := ev.ModelPerplexity("DeciLM-7B")
	if a != b {
		t.Error("repeated evaluation must be identical")
	}
}

func TestPerplexityBounds(t *testing.T) {
	c := testCorpus(t)
	f := func(capRaw uint8) bool {
		cap_ := 0.05 + 0.95*float64(capRaw)/255
		m, err := Train(c, cap_)
		if err != nil {
			return false
		}
		ppl, err := m.Perplexity(c)
		// Perplexity must be between 1 and vocab size for an
		// interpolated model with a uniform floor.
		return err == nil && ppl > 1 && ppl < float64(c.Vocab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

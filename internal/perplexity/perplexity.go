// Package perplexity reproduces the quality axis of the paper's
// perplexity-vs-throughput scatters (Fig. 10 and Fig. 29, evaluated on
// LongBench in the paper).
//
// Substitution (documented in DESIGN.md): the paper evaluates real
// model weights on a real dataset; neither is available here, and a
// model's language quality is not derivable from its architecture
// alone (it depends on training data). We therefore build a *real*
// evaluation pipeline — a synthetic LongBench-like corpus, an
// interpolated n-gram language model, a held-out cross-entropy
// measurement — and map each LLM to an n-gram capacity calibrated so
// the resulting perplexities land where the paper reports them
// (LLaMA-2-7B best at ~3.0, Mistral-7B +0.09, OPT/Bloom worst near 5).
// The pipeline exercises the same code path a real evaluation would:
// tokenize → score → exp(mean NLL).
package perplexity

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"llmbench/internal/trace"
)

// Corpus is a tokenized text corpus split into train and test.
type Corpus struct {
	Vocab int
	Train []int
	Test  []int
}

// GenerateCorpus synthesizes a corpus from a hidden Zipfian trigram
// source, deterministic in the seed. The source's entropy sets the
// floor perplexity a perfect trigram model can reach.
func GenerateCorpus(seed uint64, vocab, trainLen, testLen int) (*Corpus, error) {
	if vocab < 8 || trainLen < 1000 || testLen < 100 {
		return nil, errors.New("perplexity: corpus too small")
	}
	rng := trace.NewRNG(seed)

	// Each (a, b) context maps deterministically (via hashing) to a
	// sharp Zipf(s=2) distribution over a small candidate set — a
	// compact stand-in for natural-language predictability whose
	// conditional entropy puts a perfect trigram model near the
	// paper's best perplexities (~3).
	const candidates = 8
	var weights [candidates]float64
	total := 0.0
	for i := 0; i < candidates; i++ {
		weights[i] = 1 / float64((i+1)*(i+1))
		total += weights[i]
	}
	next := func(a, b int) int {
		h := uint64(a)*1000003 + uint64(b)*10007
		u := rng.Float64() * total
		pick := 0
		for i := 0; i < candidates; i++ {
			u -= weights[i]
			if u <= 0 {
				pick = i
				break
			}
		}
		// Map (context, rank) to a token id.
		return int((h*31 + uint64(pick)*2654435761) % uint64(vocab))
	}

	gen := func(n int) []int {
		out := make([]int, n)
		out[0] = rng.Intn(vocab)
		out[1] = rng.Intn(vocab)
		for i := 2; i < n; i++ {
			out[i] = next(out[i-1], out[i-2])
		}
		return out
	}
	return &Corpus{Vocab: vocab, Train: gen(trainLen), Test: gen(testLen)}, nil
}

// Model is an interpolated n-gram language model. Capacity ∈ (0, 1]
// controls how much of the higher-order statistics the model absorbs —
// the stand-in for parameter count and training quality.
type Model struct {
	Capacity float64
	vocab    int
	uni      map[int]float64
	bi       map[int]map[int]float64    // prev1 -> next -> count
	tri      map[[2]int]map[int]float64 // (prev2, prev1) -> next -> count
	uniTotal float64
}

// Train fits the n-gram tables on the corpus.
func Train(c *Corpus, capacity float64) (*Model, error) {
	if c == nil || len(c.Train) < 3 {
		return nil, errors.New("perplexity: empty corpus")
	}
	if capacity <= 0 || capacity > 1 {
		return nil, fmt.Errorf("perplexity: capacity %v out of (0,1]", capacity)
	}
	m := &Model{
		Capacity: capacity,
		vocab:    c.Vocab,
		uni:      make(map[int]float64),
		bi:       make(map[int]map[int]float64),
		tri:      make(map[[2]int]map[int]float64),
	}
	t := c.Train
	for i, tok := range t {
		m.uni[tok]++
		m.uniTotal++
		if i >= 1 {
			if m.bi[t[i-1]] == nil {
				m.bi[t[i-1]] = make(map[int]float64)
			}
			m.bi[t[i-1]][tok]++
		}
		if i >= 2 {
			key := [2]int{t[i-2], t[i-1]}
			if m.tri[key] == nil {
				m.tri[key] = make(map[int]float64)
			}
			m.tri[key][tok]++
		}
	}
	return m, nil
}

func dist(counts map[int]float64, tok int) (p, total float64, ok bool) {
	if counts == nil {
		return 0, 0, false
	}
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, 0, false
	}
	return counts[tok] / total, total, true
}

// Prob returns the interpolated probability of tok after context
// (prev2, prev1).
func (m *Model) Prob(prev2, prev1, tok int) float64 {
	c := m.Capacity
	// Interpolation weights: capacity feeds the high orders. Even the
	// weakest model keeps a substantial trigram share — all the
	// scatter models are competent LLMs spanning only ppl ≈ 3–5.
	l3 := 0.52 + 0.45*c
	l2 := 0.6 * (1 - l3)
	rest := 1 - l3 - l2
	l1 := rest * 0.9
	l0 := rest * 0.1

	// Witten-Bell-style confidence: trust an order only in proportion
	// to how often its context was observed, backing the rest off to
	// lower orders. This keeps high-capacity models from overfitting
	// sparse trigram counts.
	var p float64
	if p3, n, ok := dist(m.tri[[2]int{prev2, prev1}], tok); ok {
		conf := n / (n + 2)
		p += l3 * conf * p3
		backoff := l3 * (1 - conf)
		l1 += backoff * 0.9
		l0 += backoff * 0.1
	} else {
		l1 += l3 * 0.9
		l0 += l3 * 0.1
	}
	if p2, n, ok := dist(m.bi[prev1], tok); ok {
		conf := n / (n + 2)
		p += l2 * conf * p2
		backoff := l2 * (1 - conf)
		l1 += backoff * 0.9
		l0 += backoff * 0.1
	} else {
		l1 += l2 * 0.9
		l0 += l2 * 0.1
	}
	p += l1 * (m.uni[tok] / m.uniTotal)
	p += l0 / float64(m.vocab)
	return p
}

// Perplexity evaluates exp(mean NLL) on the corpus's held-out split.
func (m *Model) Perplexity(c *Corpus) (float64, error) {
	if len(c.Test) < 3 {
		return 0, errors.New("perplexity: test split too small")
	}
	var nll float64
	n := 0
	for i := 2; i < len(c.Test); i++ {
		p := m.Prob(c.Test[i-2], c.Test[i-1], c.Test[i])
		if p <= 0 {
			return 0, fmt.Errorf("perplexity: zero probability at %d", i)
		}
		nll -= math.Log(p)
		n++
	}
	return math.Exp(nll / float64(n)), nil
}

// --- per-LLM capacity calibration ----------------------------------------

// capacities maps model names to n-gram capacities, calibrated so the
// measured perplexities land in the paper's Fig. 10 layout. Ordering
// ground truth: LLaMA-2-7B best (MHSA over GQA, §V-2), Mistral-7B
// +0.09, then LLaMA-3-8B, Gemma, DeciLM, LLaMA-7B, Qwen1.5, Aquila,
// GPT-J, OPT, Bloom.
var capacities = map[string]float64{
	"LLaMA-2-7B": 1.00,
	"Mistral-7B": 0.94,
	"LLaMA-3-8B": 0.90,
	"Gemma-7B":   0.84,
	"DeciLM-7B":  0.78,
	"LLaMA-7B":   0.70,
	"Qwen1.5-7B": 0.62,
	"Aquila-7B":  0.50,
	"GPT-J-6B":   0.34,
	"OPT-6.7B":   0.24,
	"Bloom-7.1B": 0.14,
}

// Capacity returns the calibrated n-gram capacity for a model name.
func Capacity(modelName string) (float64, error) {
	if c, ok := capacities[modelName]; ok {
		return c, nil
	}
	return 0, fmt.Errorf("perplexity: no calibrated capacity for %q (have %v)", modelName, ScatterModels())
}

// ScatterModels returns the models appearing in the Fig. 10 scatter,
// sorted by name.
func ScatterModels() []string {
	names := make([]string, 0, len(capacities))
	for n := range capacities {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Evaluator bundles a shared corpus with per-model evaluation.
type Evaluator struct {
	corpus *Corpus
	cache  map[float64]float64
}

// NewEvaluator builds the standard benchmark corpus (seeded, so every
// run and every platform sees identical numbers).
func NewEvaluator() (*Evaluator, error) {
	c, err := GenerateCorpus(20240531, 64, 240000, 24000)
	if err != nil {
		return nil, err
	}
	return &Evaluator{corpus: c, cache: make(map[float64]float64)}, nil
}

// ModelPerplexity trains an n-gram model at the named LLM's calibrated
// capacity and evaluates held-out perplexity.
func (e *Evaluator) ModelPerplexity(modelName string) (float64, error) {
	cap_, err := Capacity(modelName)
	if err != nil {
		return 0, err
	}
	if ppl, ok := e.cache[cap_]; ok {
		return ppl, nil
	}
	m, err := Train(e.corpus, cap_)
	if err != nil {
		return 0, err
	}
	ppl, err := m.Perplexity(e.corpus)
	if err != nil {
		return 0, err
	}
	e.cache[cap_] = ppl
	return ppl, nil
}

package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	_ = s.At(3, func(float64) { order = append(order, 3) })
	_ = s.At(1, func(float64) { order = append(order, 1) })
	_ = s.At(2, func(float64) { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		_ = s.At(1, func(float64) { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestPastEventRejected(t *testing.T) {
	s := NewSim()
	_ = s.At(5, func(float64) {})
	s.Run(0)
	if err := s.At(1, func(float64) {}); err != ErrPastEvent {
		t.Errorf("got %v, want ErrPastEvent", err)
	}
	if err := s.At(math.NaN(), func(float64) {}); err == nil {
		t.Error("NaN time must be rejected")
	}
}

func TestAfterAndCascade(t *testing.T) {
	s := NewSim()
	hits := 0
	var tick func(now float64)
	tick = func(now float64) {
		hits++
		if hits < 5 {
			_ = s.After(1, tick)
		}
	}
	_ = s.After(1, tick)
	s.Run(0)
	if hits != 5 || s.Now() != 5 {
		t.Errorf("hits=%d now=%v, want 5 and 5", hits, s.Now())
	}
}

func TestHorizon(t *testing.T) {
	s := NewSim()
	ran := 0
	for i := 1; i <= 10; i++ {
		_ = s.At(float64(i), func(float64) { ran++ })
	}
	n := s.Run(4.5)
	if n != 4 || ran != 4 {
		t.Errorf("ran %d events, want 4", ran)
	}
	if s.Pending() != 6 {
		t.Errorf("pending = %d, want 6", s.Pending())
	}
}

func TestStepEmpty(t *testing.T) {
	s := NewSim()
	if s.Step() {
		t.Error("Step on empty queue must return false")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Error("different seeds should differ")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / float64(n)
	if mean < 1.9 || mean > 2.1 {
		t.Errorf("exp mean = %v, want ~2.0", mean)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

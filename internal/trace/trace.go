// Package trace provides a general discrete-event simulation utility
// (a monotonic simulated clock with a time-ordered event queue) and
// the small deterministic RNG behind every workload generator, so
// simulations are reproducible across runs and platforms.
//
// The serving simulators no longer drive Sim directly: they run on
// the specialised kernel in internal/des, whose arrival-barrier
// design admits parallel replica advancement. Sim remains for ad-hoc
// event-driven modelling.
package trace

import (
	"container/heap"
	"errors"
	"math"
)

// Event is a callback scheduled at a simulated time.
type Event struct {
	At float64 // simulated seconds
	Fn func(now float64)

	seq int // tie-break: FIFO among equal timestamps
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator.
type Sim struct {
	now    float64
	nextID int
	events eventHeap
}

// NewSim creates an empty simulator at time zero.
func NewSim() *Sim {
	s := &Sim{}
	heap.Init(&s.events)
	return s
}

// Now returns the current simulated time in seconds.
func (s *Sim) Now() float64 { return s.now }

// ErrPastEvent is returned when scheduling before the current time.
var ErrPastEvent = errors.New("trace: event scheduled in the past")

// At schedules fn at absolute simulated time t.
func (s *Sim) At(t float64, fn func(now float64)) error {
	if t < s.now {
		return ErrPastEvent
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return errors.New("trace: non-finite event time")
	}
	e := &Event{At: t, Fn: fn, seq: s.nextID}
	s.nextID++
	heap.Push(&s.events, e)
	return nil
}

// After schedules fn after a delay from now.
func (s *Sim) After(d float64, fn func(now float64)) error {
	return s.At(s.now+d, fn)
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }

// Step runs the earliest event; it reports false when the queue is
// empty.
func (s *Sim) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*Event)
	s.now = e.At
	e.Fn(s.now)
	return true
}

// Run drains the event queue, stopping early if the clock passes
// horizon (≤0 means no horizon). It returns the number of events run.
func (s *Sim) Run(horizon float64) int {
	n := 0
	for s.events.Len() > 0 {
		next := s.events[0].At
		if horizon > 0 && next > horizon {
			break
		}
		s.Step()
		n++
	}
	return n
}

// --- deterministic RNG ---------------------------------------------------

// RNG is a small deterministic PRNG (splitmix64) for reproducible
// workload generation.
type RNG struct{ state uint64 }

// NewRNG seeds a generator; the same seed always yields the same
// stream on every platform.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean
// (inter-arrival times of a Poisson process).
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

package model

// Executable MoE routing. The analytic performance model prices MoE
// weight traffic with the expectation E·(1−(1−A/E)^batch) of distinct
// experts activated per step (ExpectedActiveExperts). This file
// implements an actual softmax top-k router over synthetic gate logits
// so that expectation — and the expert load imbalance the EP cost
// model charges (§IV-C3: "A load balancing issue may exist") — can be
// measured rather than assumed.

import (
	"errors"
	"sort"

	"llmbench/internal/trace"
)

// RoutingStats summarises one simulated decode step's expert routing.
type RoutingStats struct {
	DistinctExperts int     // experts receiving ≥1 token
	MaxLoad         int     // tokens routed to the busiest expert
	MeanLoad        float64 // batch·topK / experts
	// Imbalance = MaxLoad / MeanLoad ≥ 1; the EP cost model's
	// slowdown term approximates its expectation.
	Imbalance float64
}

// RouteStep simulates routing a batch of tokens through one MoE layer
// with a softmax top-k gate over deterministic random logits.
func (c *Config) RouteStep(batch int, seed uint64) (RoutingStats, error) {
	if c.FFN != MoE {
		return RoutingStats{}, errors.New("model: RouteStep requires an MoE model")
	}
	if batch < 1 {
		return RoutingStats{}, errors.New("model: non-positive batch")
	}
	rng := trace.NewRNG(seed)
	loads := make([]int, c.Experts)
	for tok := 0; tok < batch; tok++ {
		// Gate logits for this token; softmax is monotone, so top-k of
		// the logits is top-k of the probabilities.
		logits := make([]float64, c.Experts)
		for e := range logits {
			// A couple of uniform draws approximate the bell-shaped
			// logit distribution trained gates produce.
			logits[e] = rng.Float64() + rng.Float64() - 1
		}
		idx := make([]int, c.Experts)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return logits[idx[a]] > logits[idx[b]] })
		for k := 0; k < c.ActiveExp; k++ {
			loads[idx[k]]++
		}
	}
	stats := RoutingStats{MeanLoad: float64(batch*c.ActiveExp) / float64(c.Experts)}
	for _, l := range loads {
		if l > 0 {
			stats.DistinctExperts++
		}
		if l > stats.MaxLoad {
			stats.MaxLoad = l
		}
	}
	if stats.MeanLoad > 0 {
		stats.Imbalance = float64(stats.MaxLoad) / stats.MeanLoad
	}
	return stats, nil
}

// MeasuredActiveExperts Monte-Carlo-estimates the mean distinct
// experts activated per step over trials — the empirical counterpart
// of ExpectedActiveExperts.
func (c *Config) MeasuredActiveExperts(batch, trials int, seed uint64) (float64, error) {
	if trials < 1 {
		return 0, errors.New("model: non-positive trials")
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		s, err := c.RouteStep(batch, seed+uint64(t)*1_000_003)
		if err != nil {
			return 0, err
		}
		sum += float64(s.DistinctExperts)
	}
	return sum / float64(trials), nil
}

// MeasuredImbalance Monte-Carlo-estimates the mean max/mean expert
// load ratio — the quantity parallel.Plan.EPImbalance approximates.
func (c *Config) MeasuredImbalance(batch, trials int, seed uint64) (float64, error) {
	if trials < 1 {
		return 0, errors.New("model: non-positive trials")
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		s, err := c.RouteStep(batch, seed+uint64(t)*7_368_787)
		if err != nil {
			return 0, err
		}
		sum += s.Imbalance
	}
	return sum / float64(trials), nil
}

// Package model describes decoder-only LLM architectures and provides
// the analytic FLOPs / byte-traffic / memory-footprint calculators the
// performance model is built on.
//
// The architecture hyperparameters follow Table I of the paper
// exactly; additional ~7B models used in the perplexity scatter plots
// (Figs. 10 and 29) are included with configurations from their
// HuggingFace model cards.
package model

import (
	"fmt"
	"math"

	"llmbench/internal/dtype"
)

// AttentionKind distinguishes the attention variants the paper
// compares (Appendix A, Fig. 27).
type AttentionKind int

const (
	// MHSA is multi-head self-attention: one KV head per query head.
	MHSA AttentionKind = iota
	// GQA is grouped-query attention: query heads share KV heads.
	GQA
)

func (a AttentionKind) String() string {
	if a == MHSA {
		return "MHSA"
	}
	return "GQA"
}

// FFNKind distinguishes dense MLP blocks from mixture-of-experts.
type FFNKind int

const (
	// Dense is a conventional gated MLP used by every token.
	Dense FFNKind = iota
	// MoE routes each token to a subset of expert MLPs.
	MoE
)

func (f FFNKind) String() string {
	if f == Dense {
		return "Dense"
	}
	return "MoE"
}

// Config is a decoder-only transformer architecture. All counts are
// per the usual LLaMA-style conventions: a gated MLP has three weight
// matrices (gate, up, down); attention has Q, K, V, and output
// projections.
type Config struct {
	Name       string
	Layers     int           // number of decoder layers
	Hidden     int           // model (embedding) dimension
	Attention  AttentionKind // MHSA or GQA
	Heads      int           // query heads
	KVHeads    int           // key/value heads (== Heads for MHSA)
	FFN        FFNKind       // Dense or MoE
	Experts    int           // expert count (1 for dense)
	ActiveExp  int           // experts active per token (1 for dense)
	Inter      int           // FFN intermediate size (per expert)
	MaxSeq     int           // maximum sequence length
	Vocab      int           // vocabulary size
	GatedMLP   bool          // true for SiLU-gated MLP (3 matrices)
	HeadDim    int           // per-head dimension; 0 means Hidden/Heads
	TiedEmbed  bool          // input/output embeddings share weights
	DraftModel bool          // tiny model usable as a speculative-decoding draft
}

// headDim returns the per-head dimension.
func (c *Config) headDim() int {
	if c.HeadDim > 0 {
		return c.HeadDim
	}
	return c.Hidden / c.Heads
}

// Validate checks internal consistency of the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.KVHeads <= 0:
		return fmt.Errorf("model %s: non-positive dimension", c.Name)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %s: heads %d not divisible by kv heads %d", c.Name, c.Heads, c.KVHeads)
	case c.Attention == MHSA && c.Heads != c.KVHeads:
		return fmt.Errorf("model %s: MHSA requires heads == kv heads", c.Name)
	case c.Attention == GQA && c.Heads == c.KVHeads:
		return fmt.Errorf("model %s: GQA requires fewer kv heads than heads", c.Name)
	case c.FFN == Dense && c.Experts != 1:
		return fmt.Errorf("model %s: dense FFN must have 1 expert", c.Name)
	case c.FFN == MoE && (c.Experts < 2 || c.ActiveExp < 1 || c.ActiveExp > c.Experts):
		return fmt.Errorf("model %s: bad MoE expert counts %d/%d", c.Name, c.ActiveExp, c.Experts)
	case c.Inter <= 0 || c.Vocab <= 0 || c.MaxSeq <= 0:
		return fmt.Errorf("model %s: non-positive inter/vocab/maxseq", c.Name)
	case c.HeadDim == 0 && c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %s: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	}
	return nil
}

// KVGroupRatio is KVHeads/Heads — the fraction of MHSA KV traffic a
// GQA model pays. 1.0 for MHSA.
func (c *Config) KVGroupRatio() float64 {
	return float64(c.KVHeads) / float64(c.Heads)
}

// mlpMatrices is the number of weight matrices per FFN expert.
func (c *Config) mlpMatrices() float64 {
	if c.GatedMLP {
		return 3
	}
	return 2
}

// AttnParamsPerLayer counts attention weights in one layer:
// Q and output projections (Hidden×Hidden each, via head dim), plus
// shared K/V projections scaled by the KV group ratio.
func (c *Config) AttnParamsPerLayer() float64 {
	h := float64(c.Hidden)
	d := float64(c.headDim())
	q := h * d * float64(c.Heads)        // Q projection
	o := d * float64(c.Heads) * h        // output projection
	kv := 2 * h * d * float64(c.KVHeads) // K and V projections
	return q + o + kv
}

// FFNParamsPerLayer counts FFN weights in one layer across all experts
// (MoE stores every expert even though few are active).
func (c *Config) FFNParamsPerLayer() float64 {
	return c.mlpMatrices() * float64(c.Hidden) * float64(c.Inter) * float64(c.Experts)
}

// FFNActiveParamsPerLayer counts the FFN weights touched by one token.
func (c *Config) FFNActiveParamsPerLayer() float64 {
	return c.mlpMatrices() * float64(c.Hidden) * float64(c.Inter) * float64(c.ActiveExp)
}

// EmbedParams counts embedding parameters (input + output unless tied).
func (c *Config) EmbedParams() float64 {
	n := float64(c.Vocab) * float64(c.Hidden)
	if c.TiedEmbed {
		return n
	}
	return 2 * n
}

// Params is the total parameter count.
func (c *Config) Params() float64 {
	return float64(c.Layers)*(c.AttnParamsPerLayer()+c.FFNParamsPerLayer()) + c.EmbedParams()
}

// NonEmbedParams is the parameter count excluding embeddings — the
// quantity Qwen's model cards quote and a better proxy for per-token
// core compute.
func (c *Config) NonEmbedParams() float64 {
	return float64(c.Layers) * (c.AttnParamsPerLayer() + c.FFNParamsPerLayer())
}

// ActiveParams counts the parameters touched per token (MoE uses only
// active experts). This is the "Mixtral behaves like a 14B model"
// quantity from §V-1 of the paper.
func (c *Config) ActiveParams() float64 {
	return float64(c.Layers)*(c.AttnParamsPerLayer()+c.FFNActiveParamsPerLayer()) + c.EmbedParams()
}

// WeightBytes is the weight footprint at the given precision.
func (c *Config) WeightBytes(d dtype.DType) float64 {
	return c.Params() * d.Bytes()
}

// KVBytesPerToken is the KV-cache growth per generated or prefilled
// token at the given cache precision: 2 (K and V) × layers × kv heads
// × head dim × bytes.
func (c *Config) KVBytesPerToken(d dtype.DType) float64 {
	return 2 * float64(c.Layers) * float64(c.KVHeads) * float64(c.headDim()) * d.Bytes()
}

// ExpectedActiveExperts returns the expected number of distinct
// experts activated in one decode step for a batch of b sequences,
// assuming uniform routing: E·(1−(1−A/E)^b). For dense models it is 1.
// This drives MoE weight-read traffic: at batch 1 Mixtral reads 2 of 8
// experts; at large batch it reads nearly all 8.
func (c *Config) ExpectedActiveExperts(batch int) float64 {
	if c.FFN == Dense {
		return 1
	}
	e := float64(c.Experts)
	a := float64(c.ActiveExp)
	if batch <= 0 {
		return a
	}
	return e * (1 - math.Pow(1-a/e, float64(batch)))
}

// --- FLOPs accounting -------------------------------------------------

// A matmul of (m×k)·(k×n) costs 2·m·n·k FLOPs.

// DecodeFLOPsPerToken is the FLOPs to generate one token for one
// sequence whose context currently holds ctx tokens. Includes the
// final logits GEMM.
func (c *Config) DecodeFLOPsPerToken(ctx int) float64 {
	d := float64(c.headDim())
	h := float64(c.Hidden)
	proj := 2 * (c.AttnParamsPerLayer() + c.FFNActiveParamsPerLayer()) // GEMV: 2 FLOPs/param
	// Attention score and value aggregation: per head, q·Kᵀ and
	// softmax·V over ctx positions.
	attn := 2 * 2 * float64(c.Heads) * d * float64(ctx)
	logits := 2 * h * float64(c.Vocab)
	return float64(c.Layers)*(proj+attn) + logits
}

// PrefillFLOPs is the FLOPs to process an input prompt of n tokens for
// one sequence (causal attention over the prompt).
func (c *Config) PrefillFLOPs(n int) float64 {
	d := float64(c.headDim())
	proj := 2 * (c.AttnParamsPerLayer() + c.FFNActiveParamsPerLayer()) * float64(n)
	// Causal attention: sum over positions i of 2·2·heads·d·i ≈
	// 2·heads·d·n².
	attn := 2 * float64(c.Heads) * d * float64(n) * float64(n)
	logits := 2 * float64(c.Hidden) * float64(c.Vocab) // only last position needs logits
	return float64(c.Layers)*(proj+attn) + logits
}

// --- byte-traffic accounting ------------------------------------------

// DecodeWeightBytes is the weight traffic of one decode step for a
// whole batch: every weight is read once per step regardless of batch
// (that is why batching raises throughput), except MoE experts, which
// are read only if some token routes to them.
func (c *Config) DecodeWeightBytes(batch int, w dtype.DType) float64 {
	attn := c.AttnParamsPerLayer()
	ffnPerExpert := c.mlpMatrices() * float64(c.Hidden) * float64(c.Inter)
	ffn := ffnPerExpert * c.ExpectedActiveExperts(batch)
	logits := float64(c.Hidden) * float64(c.Vocab)
	return (float64(c.Layers)*(attn+ffn) + logits) * w.Bytes()
}

// DecodeKVReadBytes is the KV-cache read traffic of one decode step
// for a batch of sequences each at context ctx. If gqaExploited is
// false (a framework without GQA-aware kernels, §V-3/4 of the paper),
// the kernel materialises full-head KV and pays MHSA-equivalent
// traffic.
func (c *Config) DecodeKVReadBytes(batch, ctx int, kv dtype.DType, gqaExploited bool) float64 {
	per := c.KVBytesPerToken(kv)
	if !gqaExploited {
		per /= c.KVGroupRatio() // inflate to MHSA-equivalent
	}
	return float64(batch) * float64(ctx) * per
}

// DecodeKVWriteBytes is the KV write traffic of one step.
func (c *Config) DecodeKVWriteBytes(batch int, kv dtype.DType) float64 {
	return float64(batch) * c.KVBytesPerToken(kv)
}

// KVCacheBytes is the total KV footprint of a batch of sequences each
// holding ctx tokens.
func (c *Config) KVCacheBytes(batch, ctx int, kv dtype.DType) float64 {
	return float64(batch) * float64(ctx) * c.KVBytesPerToken(kv)
}

// ActivationBytes estimates transient activation memory for a batch
// processing n tokens each: a few live tensors of size n·Hidden plus
// the logits buffer, at 2 bytes.
func (c *Config) ActivationBytes(batch, n int) float64 {
	live := 8.0 // live activation tensors (residual, attn in/out, MLP)
	act := float64(batch) * float64(n) * float64(c.Hidden) * 2 * live
	logits := float64(batch) * float64(c.Vocab) * 2
	return act + logits
}

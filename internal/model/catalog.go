package model

import (
	"fmt"
	"sort"
)

// Catalog entries. The eight headline models are copied verbatim from
// Table I of the paper; the additional ~7B models appearing in the
// perplexity scatters (Figs. 10, 29) and the NAS/speculative-decoding
// studies (Fig. 4) use their public model-card hyperparameters.
var catalog = map[string]*Config{
	// --- Table I -------------------------------------------------------
	"LLaMA-2-7B": {
		Name: "LLaMA-2-7B", Layers: 32, Hidden: 4096, Attention: MHSA,
		Heads: 32, KVHeads: 32, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 11008, MaxSeq: 4096, Vocab: 32000, GatedMLP: true,
	},
	"LLaMA-3-8B": {
		Name: "LLaMA-3-8B", Layers: 32, Hidden: 4096, Attention: GQA,
		Heads: 32, KVHeads: 8, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 14336, MaxSeq: 8192, Vocab: 128256, GatedMLP: true,
	},
	"Mistral-7B": {
		Name: "Mistral-7B", Layers: 32, Hidden: 4096, Attention: GQA,
		Heads: 32, KVHeads: 8, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 14336, MaxSeq: 32768, Vocab: 32000, GatedMLP: true,
	},
	"Qwen2-7B": {
		Name: "Qwen2-7B", Layers: 28, Hidden: 3584, Attention: GQA,
		Heads: 28, KVHeads: 4, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 18944, MaxSeq: 131072, Vocab: 152064, GatedMLP: true,
	},
	"LLaMA-2-70B": {
		Name: "LLaMA-2-70B", Layers: 80, Hidden: 8192, Attention: GQA,
		Heads: 64, KVHeads: 8, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 28672, MaxSeq: 4096, Vocab: 32000, GatedMLP: true,
	},
	"LLaMA-3-70B": {
		Name: "LLaMA-3-70B", Layers: 80, Hidden: 8192, Attention: GQA,
		Heads: 64, KVHeads: 8, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 28672, MaxSeq: 8192, Vocab: 128256, GatedMLP: true,
	},
	"Qwen2-72B": {
		Name: "Qwen2-72B", Layers: 80, Hidden: 8192, Attention: GQA,
		Heads: 64, KVHeads: 8, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 29568, MaxSeq: 131072, Vocab: 152064, GatedMLP: true,
	},
	"Mixtral-8x7B": {
		Name: "Mixtral-8x7B", Layers: 32, Hidden: 4096, Attention: GQA,
		Heads: 32, KVHeads: 8, FFN: MoE, Experts: 8, ActiveExp: 2,
		Inter: 14336, MaxSeq: 32768, Vocab: 32000, GatedMLP: true,
	},

	// --- additional ~7B models (Figs. 4, 10, 29) ------------------------
	// DeciLM-7B discovered its per-layer KV head counts with NAS (§IV-B4):
	// 67 KV heads over 32 layers ≈ 2 per layer vs 8 for LLaMA-3/Mistral.
	"DeciLM-7B": {
		Name: "DeciLM-7B", Layers: 32, Hidden: 4096, Attention: GQA,
		Heads: 32, KVHeads: 2, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 11008, MaxSeq: 8192, Vocab: 32000, GatedMLP: true,
	},
	// Gemma-7B: few wide heads (head dim 256) and a very large FFN —
	// the paper attributes its lowest throughput to exactly this.
	"Gemma-7B": {
		Name: "Gemma-7B", Layers: 28, Hidden: 3072, Attention: MHSA,
		Heads: 16, KVHeads: 16, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 24576, MaxSeq: 8192, Vocab: 256000, GatedMLP: true,
		HeadDim: 256, TiedEmbed: true,
	},
	"GPT-J-6B": {
		Name: "GPT-J-6B", Layers: 28, Hidden: 4096, Attention: MHSA,
		Heads: 16, KVHeads: 16, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 16384, MaxSeq: 2048, Vocab: 50400, GatedMLP: false,
	},
	"OPT-6.7B": {
		Name: "OPT-6.7B", Layers: 32, Hidden: 4096, Attention: MHSA,
		Heads: 32, KVHeads: 32, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 16384, MaxSeq: 2048, Vocab: 50272, GatedMLP: false,
	},
	"Bloom-7.1B": {
		Name: "Bloom-7.1B", Layers: 30, Hidden: 4096, Attention: MHSA,
		Heads: 32, KVHeads: 32, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 16384, MaxSeq: 2048, Vocab: 250880, GatedMLP: false,
	},
	"Qwen1.5-7B": {
		Name: "Qwen1.5-7B", Layers: 32, Hidden: 4096, Attention: MHSA,
		Heads: 32, KVHeads: 32, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 11008, MaxSeq: 32768, Vocab: 151936, GatedMLP: true,
	},
	"Aquila-7B": {
		Name: "Aquila-7B", Layers: 32, Hidden: 4096, Attention: MHSA,
		Heads: 32, KVHeads: 32, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 11008, MaxSeq: 2048, Vocab: 100008, GatedMLP: true,
	},
	"LLaMA-7B": {
		Name: "LLaMA-7B", Layers: 32, Hidden: 4096, Attention: MHSA,
		Heads: 32, KVHeads: 32, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 11008, MaxSeq: 2048, Vocab: 32000, GatedMLP: true,
	},
	// Draft model for speculative decoding (Fig. 4b).
	"LLaMA-68M": {
		Name: "LLaMA-68M", Layers: 2, Hidden: 768, Attention: MHSA,
		Heads: 12, KVHeads: 12, FFN: Dense, Experts: 1, ActiveExp: 1,
		Inter: 3072, MaxSeq: 2048, Vocab: 32000, GatedMLP: true,
		DraftModel: true,
	},
}

// Get returns the named architecture or an error listing the catalog.
func Get(name string) (*Config, error) {
	if c, ok := catalog[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("model: unknown model %q (have %v)", name, Names())
}

// MustGet is Get for known-good names in tests and experiment tables.
func MustGet(name string) *Config {
	c, err := Get(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Names returns all catalog model names, sorted.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableI returns the eight headline models in the paper's Table I
// order.
func TableI() []*Config {
	order := []string{
		"LLaMA-2-7B", "LLaMA-3-8B", "Mistral-7B", "Qwen2-7B",
		"LLaMA-2-70B", "LLaMA-3-70B", "Qwen2-72B", "Mixtral-8x7B",
	}
	out := make([]*Config, len(order))
	for i, n := range order {
		out[i] = MustGet(n)
	}
	return out
}

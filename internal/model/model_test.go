package model

import (
	"math"
	"testing"
	"testing/quick"

	"llmbench/internal/dtype"
)

func TestCatalogValidates(t *testing.T) {
	for _, name := range Names() {
		c := MustGet(name)
		if err := c.Validate(); err != nil {
			t.Errorf("catalog model %s invalid: %v", name, err)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("GPT-5"); err == nil {
		t.Error("Get(GPT-5) succeeded, want error")
	}
}

func TestParamCountsMatchBillings(t *testing.T) {
	// Parameter counts should land near the models' advertised sizes.
	cases := []struct {
		name string
		loB  float64 // billions, inclusive band
		hiB  float64
	}{
		{"LLaMA-2-7B", 6.3, 7.2},
		{"LLaMA-3-8B", 7.5, 8.5},
		{"Mistral-7B", 6.8, 7.6},
		{"Qwen2-7B", 6.5, 8.0},
		{"LLaMA-2-70B", 65, 72},
		{"LLaMA-3-70B", 68, 73},
		{"Qwen2-72B", 70, 75},
		{"Mixtral-8x7B", 44, 48},
	}
	for _, c := range cases {
		p := MustGet(c.name).Params() / 1e9
		if p < c.loB || p > c.hiB {
			t.Errorf("%s: params = %.2fB, want in [%.1f, %.1f]", c.name, p, c.loB, c.hiB)
		}
	}
}

func TestMixtralActsLike14B(t *testing.T) {
	// §V-1: "The Mixtral model is equivalent to a 14B model, as only
	// two of eight experts are active per layer during inference."
	active := MustGet("Mixtral-8x7B").ActiveParams() / 1e9
	if active < 11 || active > 15 {
		t.Errorf("Mixtral active params = %.2fB, want ~12-14B", active)
	}
}

func TestQwen2NonEmbedParams(t *testing.T) {
	// The Qwen2-7B card quotes 5.98B non-embedding parameters; our
	// gated-MLP accounting lands slightly above (6.5B).
	ne := MustGet("Qwen2-7B").NonEmbedParams() / 1e9
	if ne < 5.5 || ne > 7.0 {
		t.Errorf("Qwen2-7B non-embedding params = %.2fB, want ~5.98B", ne)
	}
}

func TestGQAKVSmallerThanMHSA(t *testing.T) {
	l2 := MustGet("LLaMA-2-7B") // MHSA
	l3 := MustGet("LLaMA-3-8B") // GQA 8/32
	r := l2.KVBytesPerToken(dtype.FP16) / l3.KVBytesPerToken(dtype.FP16)
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("LLaMA-2-7B/LLaMA-3-8B KV-per-token ratio = %v, want exactly 4 (same dims, 32 vs 8 KV heads)", r)
	}
}

func TestExpectedActiveExperts(t *testing.T) {
	m := MustGet("Mixtral-8x7B")
	if got := m.ExpectedActiveExperts(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("batch 1 active experts = %v, want 2", got)
	}
	b64 := m.ExpectedActiveExperts(64)
	if b64 < 7.9 || b64 > 8 {
		t.Errorf("batch 64 active experts = %v, want ~8", b64)
	}
	dense := MustGet("LLaMA-2-7B")
	if got := dense.ExpectedActiveExperts(64); got != 1 {
		t.Errorf("dense active experts = %v, want 1", got)
	}
}

func TestExpectedActiveExpertsMonotonic(t *testing.T) {
	m := MustGet("Mixtral-8x7B")
	f := func(a, b uint8) bool {
		x, y := int(a%64)+1, int(b%64)+1
		if x > y {
			x, y = y, x
		}
		return m.ExpectedActiveExperts(x) <= m.ExpectedActiveExperts(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeFLOPsGrowWithContext(t *testing.T) {
	c := MustGet("LLaMA-3-8B")
	if c.DecodeFLOPsPerToken(2048) <= c.DecodeFLOPsPerToken(128) {
		t.Error("decode FLOPs must grow with context length")
	}
}

func TestDecodeFLOPsApproxTwiceActiveParams(t *testing.T) {
	// For short contexts, decode FLOPs/token ≈ 2×active params.
	for _, name := range []string{"LLaMA-2-7B", "LLaMA-3-8B", "Mixtral-8x7B"} {
		c := MustGet(name)
		got := c.DecodeFLOPsPerToken(1)
		want := 2 * c.ActiveParams()
		// Embedding lookup is free; logits GEMM is included in both.
		if got < 0.75*want || got > 1.25*want {
			t.Errorf("%s: decode FLOPs %.3g vs 2·active %.3g out of band", name, got, want)
		}
	}
}

func TestPrefillFLOPsSuperlinear(t *testing.T) {
	c := MustGet("LLaMA-3-8B")
	f1 := c.PrefillFLOPs(512)
	f2 := c.PrefillFLOPs(1024)
	if f2 < 2*f1 {
		t.Errorf("prefill FLOPs should be superlinear in length: f(1024)=%.3g < 2·f(512)=%.3g", f2, 2*f1)
	}
}

func TestDecodeWeightBytesBatchIndependentForDense(t *testing.T) {
	c := MustGet("LLaMA-3-8B")
	if c.DecodeWeightBytes(1, dtype.FP16) != c.DecodeWeightBytes(64, dtype.FP16) {
		t.Error("dense weight traffic must not depend on batch size")
	}
}

func TestDecodeWeightBytesGrowWithBatchForMoE(t *testing.T) {
	c := MustGet("Mixtral-8x7B")
	b1 := c.DecodeWeightBytes(1, dtype.FP16)
	b64 := c.DecodeWeightBytes(64, dtype.FP16)
	if b64 <= b1 {
		t.Error("MoE weight traffic must grow with batch (more experts activated)")
	}
	// At batch 1 only ~2/8 of the FFN is read; total must be far below
	// the full-model bytes.
	full := c.WeightBytes(dtype.FP16)
	if b1 > 0.55*full {
		t.Errorf("Mixtral batch-1 weight traffic %.3g too close to full weights %.3g", b1, full)
	}
}

func TestGQAExploitationAffectsKVTraffic(t *testing.T) {
	c := MustGet("LLaMA-3-8B")
	with := c.DecodeKVReadBytes(16, 1024, dtype.FP16, true)
	without := c.DecodeKVReadBytes(16, 1024, dtype.FP16, false)
	if math.Abs(without/with-4) > 1e-9 {
		t.Errorf("non-GQA kernel should pay 4x KV traffic for LLaMA-3-8B, got %.3f", without/with)
	}
	// MHSA models are unaffected.
	m := MustGet("LLaMA-2-7B")
	if m.DecodeKVReadBytes(16, 1024, dtype.FP16, true) != m.DecodeKVReadBytes(16, 1024, dtype.FP16, false) {
		t.Error("MHSA KV traffic must not depend on GQA exploitation")
	}
}

func TestKVCacheBytesLinear(t *testing.T) {
	c := MustGet("Mistral-7B")
	f := func(b, n uint8) bool {
		batch, ctx := int(b%32)+1, int(n)+1
		got := c.KVCacheBytes(batch, ctx, dtype.FP16)
		want := float64(batch) * float64(ctx) * c.KVBytesPerToken(dtype.FP16)
		return math.Abs(got-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "x", Layers: 0, Hidden: 1, Heads: 1, KVHeads: 1, Experts: 1, ActiveExp: 1, Inter: 1, Vocab: 1, MaxSeq: 1},
		{Name: "x", Layers: 1, Hidden: 8, Heads: 3, KVHeads: 2, Experts: 1, ActiveExp: 1, Inter: 1, Vocab: 1, MaxSeq: 1},
		{Name: "x", Layers: 1, Hidden: 8, Attention: MHSA, Heads: 4, KVHeads: 2, Experts: 1, ActiveExp: 1, Inter: 1, Vocab: 1, MaxSeq: 1},
		{Name: "x", Layers: 1, Hidden: 8, Attention: GQA, Heads: 4, KVHeads: 4, Experts: 1, ActiveExp: 1, Inter: 1, Vocab: 1, MaxSeq: 1},
		{Name: "x", Layers: 1, Hidden: 8, Attention: GQA, Heads: 4, KVHeads: 2, FFN: MoE, Experts: 1, ActiveExp: 1, Inter: 1, Vocab: 1, MaxSeq: 1},
		{Name: "x", Layers: 1, Hidden: 9, Attention: GQA, Heads: 4, KVHeads: 2, Experts: 1, ActiveExp: 1, Inter: 1, Vocab: 1, MaxSeq: 1},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config", i)
		}
	}
}

func TestTableIOrderAndCount(t *testing.T) {
	tab := TableI()
	if len(tab) != 8 {
		t.Fatalf("Table I has %d entries, want 8", len(tab))
	}
	if tab[0].Name != "LLaMA-2-7B" || tab[7].Name != "Mixtral-8x7B" {
		t.Errorf("Table I order wrong: first=%s last=%s", tab[0].Name, tab[7].Name)
	}
}

func TestAttentionStrings(t *testing.T) {
	if MHSA.String() != "MHSA" || GQA.String() != "GQA" {
		t.Error("attention kind strings wrong")
	}
	if Dense.String() != "Dense" || MoE.String() != "MoE" {
		t.Error("ffn kind strings wrong")
	}
}

func TestWeightBytesScaleWithPrecision(t *testing.T) {
	c := MustGet("LLaMA-2-7B")
	if c.WeightBytes(dtype.FP16) != 2*c.WeightBytes(dtype.INT8) {
		t.Error("fp16 weights must be exactly 2x int8 weights")
	}
}

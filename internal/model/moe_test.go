package model

import (
	"math"
	"testing"
)

func TestRouteStepBasics(t *testing.T) {
	m := MustGet("Mixtral-8x7B")
	s, err := m.RouteStep(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	// One token activates exactly top-k experts.
	if s.DistinctExperts != m.ActiveExp {
		t.Errorf("batch 1 activated %d experts, want %d", s.DistinctExperts, m.ActiveExp)
	}
	big, err := m.RouteStep(256, 42)
	if err != nil {
		t.Fatal(err)
	}
	if big.DistinctExperts != m.Experts {
		t.Errorf("batch 256 should touch all %d experts, got %d", m.Experts, big.DistinctExperts)
	}
	if big.Imbalance < 1 {
		t.Errorf("imbalance %v must be ≥ 1", big.Imbalance)
	}
}

func TestRouteStepErrors(t *testing.T) {
	if _, err := MustGet("LLaMA-2-7B").RouteStep(4, 1); err == nil {
		t.Error("dense model must reject routing")
	}
	if _, err := MustGet("Mixtral-8x7B").RouteStep(0, 1); err == nil {
		t.Error("batch 0 must fail")
	}
	if _, err := MustGet("Mixtral-8x7B").MeasuredActiveExperts(4, 0, 1); err == nil {
		t.Error("zero trials must fail")
	}
	if _, err := MustGet("Mixtral-8x7B").MeasuredImbalance(4, 0, 1); err == nil {
		t.Error("zero trials must fail")
	}
}

func TestMeasuredActiveExpertsMatchesAnalytic(t *testing.T) {
	// The Monte-Carlo router must land near the closed-form expectation
	// the weight-traffic model uses — for every batch size in the
	// paper's grid.
	m := MustGet("Mixtral-8x7B")
	for _, batch := range []int{1, 4, 16, 64} {
		want := m.ExpectedActiveExperts(batch)
		got, err := m.MeasuredActiveExperts(batch, 400, 9)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("batch %d: measured %.3f vs analytic %.3f (rel %.3f)", batch, got, want, rel)
		}
	}
}

func TestMeasuredImbalanceSupportsEPModel(t *testing.T) {
	// parallel.Plan.EPImbalance charges ~1.11 for EP=4 on Mixtral
	// (2 experts per device). The measured token-level imbalance at
	// serving batch sizes must be of that order: clearly above 1,
	// clearly below 2.
	m := MustGet("Mixtral-8x7B")
	imb, err := m.MeasuredImbalance(64, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if imb <= 1.05 || imb >= 2 {
		t.Errorf("batch-64 imbalance %v outside the plausible band", imb)
	}
	// Imbalance shrinks as batches grow (law of large numbers).
	small, err := m.MeasuredImbalance(8, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if small <= imb {
		t.Errorf("small-batch imbalance %v must exceed large-batch %v", small, imb)
	}
}

func TestRouteStepDeterministic(t *testing.T) {
	m := MustGet("Mixtral-8x7B")
	a, _ := m.RouteStep(32, 7)
	b, _ := m.RouteStep(32, 7)
	if a != b {
		t.Error("same seed must give identical routing")
	}
}

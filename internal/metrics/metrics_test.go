package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleFigure() *Figure {
	f := &Figure{ID: "figX", Title: "Test", XLabel: "Batch", YLabel: "Tok/s"}
	f.Add("A", 1, 100)
	f.Add("A", 16, 900)
	f.Add("B", 1, 50)
	f.Add("B", 16, 60)
	return f
}

func TestAddAndAt(t *testing.T) {
	f := sampleFigure()
	s := f.MustGet("A")
	y, err := s.At(16)
	if err != nil || y != 900 {
		t.Errorf("At(16) = %v, %v", y, err)
	}
	if _, err := s.At(99); err == nil {
		t.Error("missing X must error")
	}
	if _, err := f.Get("C"); err == nil {
		t.Error("missing series must error")
	}
}

func TestSeriesOrderIsInsertion(t *testing.T) {
	f := sampleFigure()
	if f.Series[0].Label != "A" || f.Series[1].Label != "B" {
		t.Error("series must keep insertion order")
	}
}

func TestMaxY(t *testing.T) {
	f := sampleFigure()
	if f.MustGet("A").MaxY() != 900 {
		t.Error("MaxY wrong")
	}
	var empty Series
	if empty.MaxY() != 0 {
		t.Error("empty MaxY must be 0")
	}
}

func TestMarkdownContainsEverything(t *testing.T) {
	f := sampleFigure()
	f.Note("B hit OOM at batch 32")
	md := f.Markdown()
	for _, want := range []string{"figX", "Batch", "| A |", "| B |", "900", "OOM"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestMarkdownMissingPointDash(t *testing.T) {
	f := sampleFigure()
	f.Add("C", 32, 10) // C has no point at 1 or 16
	if !strings.Contains(f.Markdown(), "—") {
		t.Error("missing points must render as —")
	}
}

func TestCSV(t *testing.T) {
	csv := sampleFigure().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 { // header + 4 points
		t.Fatalf("csv has %d lines: %s", len(lines), csv)
	}
	if lines[0] != "series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(csv, `"A",16,900`) {
		t.Errorf("csv missing point: %s", csv)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 100})
	if err != nil || math.Abs(g-10) > 1e-9 {
		t.Errorf("geomean = %v, %v", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty geomean must error")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative geomean must error")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			vals[i] = float64(r%1000) + 1
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		g, err := GeoMean(vals)
		return err == nil && g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	r, err := Ratio(10, 4)
	if err != nil || r != 2.5 {
		t.Errorf("ratio = %v, %v", r, err)
	}
	if _, err := Ratio(1, 0); err == nil {
		t.Error("zero denominator must error")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(64) != "64" {
		t.Errorf("trimFloat(64) = %q", trimFloat(64))
	}
	if trimFloat(1234.567) != "1234.6" {
		t.Errorf("trimFloat(1234.567) = %q", trimFloat(1234.567))
	}
	if trimFloat(0.12345) != "0.123" {
		t.Errorf("trimFloat(0.12345) = %q", trimFloat(0.12345))
	}
}

// Package metrics holds the result containers the experiments produce
// — labelled series and tables mirroring the paper's figures — and
// renderers to Markdown and CSV for the CLI, benchmarks, and the
// dashboard.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) observation; X is usually batch size or length.
type Point struct {
	X float64
	Y float64
}

// Series is one figure line, e.g. "H100 TRT-LLM LLaMA-3-8B".
type Series struct {
	Label  string
	Points []Point
}

// At returns the Y value at x, or an error when absent.
func (s *Series) At(x float64) (float64, error) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, nil
		}
	}
	return 0, fmt.Errorf("metrics: series %q has no point at x=%v", s.Label, x)
}

// MaxY returns the largest Y in the series (0 for empty).
func (s *Series) MaxY() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// Figure is one reproduced paper figure: a set of series plus axis
// metadata.
type Figure struct {
	ID     string // e.g. "fig6"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
	// Notes records observations (e.g. OOM points skipped).
	Notes []string
}

// Get returns the series with the given label.
func (f *Figure) Get(label string) (*Series, error) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, nil
		}
	}
	return nil, fmt.Errorf("metrics: figure %s has no series %q", f.ID, label)
}

// MustGet panics if the label is absent — for tests and experiment
// assertions over figures this package itself produced.
func (f *Figure) MustGet(label string) *Series {
	s, err := f.Get(label)
	if err != nil {
		panic(err)
	}
	return s
}

// Add appends a point to the labelled series, creating it on first
// use; series keep insertion order so figures render like the paper's
// legends.
func (f *Figure) Add(label string, x, y float64) {
	for _, s := range f.Series {
		if s.Label == label {
			s.Points = append(s.Points, Point{x, y})
			return
		}
	}
	f.Series = append(f.Series, &Series{Label: label, Points: []Point{{x, y}}})
}

// Note records an annotation.
func (f *Figure) Note(format string, args ...interface{}) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the figure as a Markdown table: one row per X,
// one column per series.
func (f *Figure) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", f.ID, f.Title)
	xs := f.xValues()
	fmt.Fprintf(&b, "| %s |", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %s |", s.Label)
	}
	b.WriteString("\n|")
	for i := 0; i < len(f.Series)+1; i++ {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "| %s |", trimFloat(x))
		for _, s := range f.Series {
			if y, err := s.At(x); err == nil {
				fmt.Fprintf(&b, " %s |", trimFloat(y))
			} else {
				b.WriteString(" — |")
			}
		}
		b.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as series,x,y rows.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%q,%s,%s\n", s.Label, trimFloat(p.X), trimFloat(p.Y))
		}
	}
	return b.String()
}

func (f *Figure) xValues() []float64 {
	set := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			set[p.X] = true
		}
	}
	xs := make([]float64, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// GeoMean returns the geometric mean of positive values; it errors on
// empty or non-positive input.
func GeoMean(vals []float64) (float64, error) {
	if len(vals) == 0 {
		return 0, fmt.Errorf("metrics: geomean of empty slice")
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0, fmt.Errorf("metrics: geomean needs positive values, got %v", v)
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals))), nil
}

// Ratio returns a/b, guarding against division by zero.
func Ratio(a, b float64) (float64, error) {
	if b == 0 {
		return 0, fmt.Errorf("metrics: ratio with zero denominator")
	}
	return a / b, nil
}

package framework

import (
	"math"
	"testing"

	"llmbench/internal/hw"
)

func TestCatalogValidates(t *testing.T) {
	for _, n := range Names() {
		if err := MustGet(n).Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestVendorLocks(t *testing.T) {
	// §V-1: TRT-LLM "can be used only to accelerate LLMs on NVIDIA
	// GPUs"; SambaFlow is SN40L-only; DeepSpeed profile is Gaudi-only.
	trt := MustGet("TRT-LLM")
	if !trt.SupportsDevice(hw.MustGet("A100")) {
		t.Error("TRT-LLM must support A100")
	}
	if trt.SupportsDevice(hw.MustGet("MI250")) {
		t.Error("TRT-LLM must not support AMD")
	}
	if !MustGet("vLLM").SupportsDevice(hw.MustGet("MI300X")) {
		t.Error("vLLM must support AMD (§V-2)")
	}
	if !MustGet("SambaFlow").SupportsDevice(hw.MustGet("SN40L")) {
		t.Error("SambaFlow must support SN40L")
	}
	if MustGet("SambaFlow").SupportsDevice(hw.MustGet("H100")) {
		t.Error("SambaFlow must not support NVIDIA")
	}
	// Table III: DS-MII ran on A100 only.
	if !MustGet("DS-MII").SupportsDevice(hw.MustGet("A100")) {
		t.Error("DS-MII must support A100")
	}
	if MustGet("DS-MII").SupportsDevice(hw.MustGet("H100")) {
		t.Error("DS-MII must not run on H100 (Table III)")
	}
}

func TestTRTFastestOnNvidia(t *testing.T) {
	trt, vllm, ds := MustGet("TRT-LLM"), MustGet("vLLM"), MustGet("DS-MII")
	if trt.EffCompute[hw.NVIDIA] <= vllm.EffCompute[hw.NVIDIA] {
		t.Error("TRT-LLM compute efficiency must exceed vLLM on NVIDIA (§VI-1)")
	}
	if vllm.EffCompute[hw.NVIDIA] <= ds.EffCompute[hw.NVIDIA] {
		t.Error("vLLM compute efficiency must exceed DS-MII (Fig. 15)")
	}
	lc := MustGet("llama.cpp")
	if lc.EffCompute[hw.NVIDIA] >= ds.EffCompute[hw.NVIDIA] {
		t.Error("llama.cpp must be the least efficient framework (§VI-1)")
	}
}

func TestGQAExploitation(t *testing.T) {
	if MustGet("TRT-LLM").GQAExploitation != 1 || MustGet("vLLM").GQAExploitation != 1 {
		t.Error("TRT-LLM and vLLM fully exploit GQA (§V-1/2)")
	}
	if MustGet("llama.cpp").GQAExploitation != 0 {
		t.Error("llama.cpp must not exploit GQA (§V-4)")
	}
}

func TestUnfusedLogits(t *testing.T) {
	// §VII-1: DS-MII and llama.cpp "do not support model-wise
	// optimizations well" — their unembedding path is unfused, so
	// large-vocab models lose their edge there.
	if MustGet("DS-MII").LogitsEff >= 1 {
		t.Error("DS-MII must pay an unfused-logits penalty")
	}
	if MustGet("llama.cpp").LogitsEff >= MustGet("DS-MII").LogitsEff {
		t.Error("llama.cpp logits path must be the least efficient")
	}
	if MustGet("TRT-LLM").LogitsEff != 1 || MustGet("vLLM").LogitsEff != 1 {
		t.Error("fused frameworks pay no logits penalty")
	}
}

func TestKVTrafficRatio(t *testing.T) {
	p := MustGet("TRT-LLM")
	if got := p.KVTrafficRatio(0.25); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("full exploitation ratio = %v, want 0.25", got)
	}
	lc := MustGet("llama.cpp")
	if got := lc.KVTrafficRatio(0.25); math.Abs(got-1) > 1e-12 {
		t.Errorf("zero exploitation ratio = %v, want 1", got)
	}
	half := Profile{GQAExploitation: 0.5}
	got := half.KVTrafficRatio(0.25)
	if got <= 0.25 || got >= 1 {
		t.Errorf("partial exploitation ratio = %v, want in (0.25, 1)", got)
	}
}

func TestLlamaCppQuirks(t *testing.T) {
	lc := MustGet("llama.cpp")
	if lc.GEMMBatchCap == 0 {
		t.Error("llama.cpp must cap GEMM batching (Fig. 13 flat curves)")
	}
	if lc.Parallel != LayerSplit {
		t.Error("llama.cpp must use layer split, not TP (Fig. 14 weak scaling)")
	}
	if lc.ContinuousBatching {
		t.Error("llama.cpp has no continuous batching")
	}
}

func TestSambaFlowQuirks(t *testing.T) {
	sf := MustGet("SambaFlow")
	// Fig. 21: TTFT ≈ 2.85 s at batch 16 → ~175 ms per sequence.
	if sf.PrefillPerSeqMS*16 < 2000 || sf.PrefillPerSeqMS*16 > 3500 {
		t.Errorf("SambaFlow per-seq setup %v ms gives batch-16 TTFT outside the Fig. 21 band", sf.PrefillPerSeqMS)
	}
	if sf.CommOverlap < 0.8 {
		t.Error("dataflow graphs must overlap nearly all communication")
	}
	if sf.MemBoost <= 1 {
		t.Error("SambaFlow must model 3-tier memory overlap (MemBoost > 1)")
	}
	if sf.LayerOverheadUS >= MustGet("TRT-LLM").LayerOverheadUS {
		t.Error("fused dataflow graphs must have lower per-layer overhead than kernel launches")
	}
}

func TestPagedKV(t *testing.T) {
	if !MustGet("vLLM").PagedKV || MustGet("vLLM").DefaultBlockSize != 16 {
		t.Error("vLLM must default to 16-token KV blocks (§IV-B2)")
	}
	if MustGet("llama.cpp").PagedKV {
		t.Error("llama.cpp does not page its KV cache")
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	rows, cols, cells := TableIII()
	want := map[string]map[string]bool{
		"vLLM":      {"A100": true, "H100": true, "GH200": true, "MI250": true, "Gaudi2": true},
		"llama.cpp": {"A100": true, "H100": true, "GH200": true, "MI250": true, "Gaudi2": false},
		"TRT-LLM":   {"A100": true, "H100": true, "GH200": true, "MI250": false, "Gaudi2": false},
		"DS-MII":    {"A100": true, "H100": false, "GH200": false, "MI250": false, "Gaudi2": false},
	}
	for i, r := range rows {
		for j, c := range cols {
			if cells[i][j] != want[r][c] {
				t.Errorf("Table III [%s][%s] = %v, want %v", r, c, cells[i][j], want[r][c])
			}
		}
	}
}

func TestEffErrorsOnUnsupportedVendor(t *testing.T) {
	if _, _, err := MustGet("TRT-LLM").Eff(hw.AMD); err == nil {
		t.Error("Eff on unsupported vendor must error")
	}
	c, m, err := MustGet("TRT-LLM").Eff(hw.NVIDIA)
	if err != nil || c <= 0 || m <= 0 {
		t.Errorf("Eff(NVIDIA) = %v %v %v", c, m, err)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("MLC"); err == nil {
		t.Error("Get(MLC) succeeded, want error")
	}
}

func TestParallelModeString(t *testing.T) {
	if TensorParallel.String() != "TP" || LayerSplit.String() != "layer-split" {
		t.Error("parallel mode strings wrong")
	}
}

// Package framework models the LLM inference frameworks the paper
// evaluates: TensorRT-LLM, vLLM, DeepSpeed-MII, llama.cpp, SambaFlow
// (SN40L), and DeepSpeed/Optimum-Habana (Gaudi2).
//
// A Profile is a set of mechanism parameters — kernel and bandwidth
// efficiency per vendor, GQA-kernel quality, batching strategy,
// per-layer launch overhead, parallelism mode — that the engine
// combines with a hardware roofline. Every parameter encodes a
// mechanism the paper explicitly discusses; the values are calibrated
// so the anchor ratios quoted in the paper hold (see
// internal/experiments/anchors_test.go).
package framework

import (
	"fmt"
	"sort"

	"llmbench/internal/hw"
)

// ParallelMode is how a framework uses multiple devices.
type ParallelMode int

const (
	// TensorParallel shards every weight matrix (Megatron style).
	TensorParallel ParallelMode = iota
	// LayerSplit assigns whole layers to devices (llama.cpp's only
	// multi-GPU mode) — decode tokens traverse devices sequentially,
	// which is why llama.cpp exhibits weak scaling (Fig. 14).
	LayerSplit
)

func (m ParallelMode) String() string {
	if m == TensorParallel {
		return "TP"
	}
	return "layer-split"
}

// Profile describes one inference framework.
type Profile struct {
	Name    string // canonical short name, e.g. "vLLM"
	Display string // label used in figures, e.g. "TRT-LLM"

	// Vendors lists hardware the framework runs on (Table III).
	Vendors map[hw.Vendor]bool

	// Devices, when non-nil, restricts support to specific device
	// names within the supported vendors (Table III runs DS-MII only
	// on A100).
	Devices map[string]bool

	// EffCompute and EffMemory are the fractions of the device's peak
	// FLOPS / HBM bandwidth the framework's kernels achieve, per
	// vendor. TRT-LLM's layer fusion and kernel auto-tuning give it
	// the highest factors on NVIDIA (§VI-1).
	EffCompute map[hw.Vendor]float64
	EffMemory  map[hw.Vendor]float64

	// GQAExploitation ∈ [0,1]: 1 means attention kernels realise the
	// full KV-traffic saving of grouped-query attention; 0 means GQA
	// models pay MHSA-equivalent traffic (llama.cpp, §V-4). DS-MII is
	// partial (§VII-1).
	GQAExploitation float64

	// KVEff multiplies bandwidth efficiency for KV-cache streams.
	// vLLM's paged layout costs a little indirection; DS-MII's
	// blocked KV + Dynamic SplitFuse streams long contexts well
	// (why it edges vLLM at bs64/len2048 on Mixtral, Fig. 12).
	KVEff float64

	// MemBoost scales effective weight-stream bandwidth above the HBM
	// roofline for dataflow architectures that overlap memory tiers
	// (SambaFlow on SN40L's 3-tier memory). 1 for everyone else.
	MemBoost float64

	// LayerOverheadUS is the per-layer, per-step launch/dispatch cost;
	// StepOverheadUS is the fixed per-iteration scheduling cost.
	LayerOverheadUS float64
	StepOverheadUS  float64

	// PrefillPerSeqMS is a per-sequence setup cost added to every
	// prefill (SambaFlow's graph invocation dominates SN40L's TTFT,
	// Fig. 21: ~2.85 s at batch 16).
	PrefillPerSeqMS float64

	// CommOverlap ∈ [0,1) is the fraction of collective-communication
	// time hidden under compute. Dataflow graphs (SambaFlow) overlap
	// almost fully; kernel-launch frameworks barely.
	CommOverlap float64

	// GEMMBatchCap is the largest batch a single fused GEMM covers.
	// 0 = unlimited. llama.cpp re-streams weights every few sequences
	// because it lacks true batched GEMM, flattening its batch scaling
	// (Fig. 13).
	GEMMBatchCap int

	// Parallel selects multi-device strategy; TPCommEff derates the
	// interconnect for the framework's collective implementation.
	Parallel  ParallelMode
	TPCommEff float64

	// PagedKV: framework uses block-paged KV cache (vLLM,
	// TRT-LLM, DS-MII). DefaultBlockSize in tokens.
	PagedKV          bool
	DefaultBlockSize int

	// ContinuousBatching: iteration-level scheduling of new requests.
	ContinuousBatching bool

	// BatchWaves: when a requested batch's KV cache exceeds memory the
	// framework runs the requests in sequential waves instead of
	// failing. Static-graph executors (Gaudi2 DeepSpeed) cannot — the
	// source of the paper's Gaudi2 OOMs at batch 32/64.
	BatchWaves bool

	// ReserveMaxSeq: the runtime pre-allocates every sequence's KV at
	// the model's maximum length regardless of the request (static HPU
	// graphs). Non-paged frameworks without it (llama.cpp) size the
	// cache at the configured context length.
	ReserveMaxSeq bool

	// MoEAffinity multiplies compute and weight-stream efficiency for
	// MoE models (DeepSpeed's grouped-expert kernels are first-class —
	// §V-3 notes DS-MII wins on Mixtral at large batch/length — while
	// vLLM's Mixtral path at the paper's version lagged).
	MoEAffinity float64

	// LogitsEff ∈ (0,1] is the kernel efficiency of the final
	// unembedding GEMM. Frameworks that run it outside the fused path
	// (DS-MII, llama.cpp) pay a vocabulary-proportional penalty — why
	// large-vocab LLaMA-3/Qwen2 lose their edge there (§VII-1).
	LogitsEff float64
}

// SupportsDevice reports whether the framework runs on the device.
func (p *Profile) SupportsDevice(d *hw.Device) bool {
	if !p.Vendors[d.Vendor] {
		return false
	}
	if p.Devices != nil && !p.Devices[d.Name] {
		return false
	}
	return true
}

// Eff returns the compute and memory efficiency on the given vendor.
func (p *Profile) Eff(v hw.Vendor) (effC, effM float64, err error) {
	if !p.Vendors[v] {
		return 0, 0, fmt.Errorf("framework: %s does not support %s hardware", p.Name, v)
	}
	return p.EffCompute[v], p.EffMemory[v], nil
}

// KVTrafficRatio converts a model's KV group ratio (kvHeads/heads)
// into the ratio this framework actually pays: full exploitation pays
// r, none pays 1.
func (p *Profile) KVTrafficRatio(groupRatio float64) float64 {
	return groupRatio*p.GQAExploitation + 1*(1-p.GQAExploitation)
}

// Validate checks profile consistency.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("framework: empty name")
	case len(p.Vendors) == 0:
		return fmt.Errorf("framework: %s supports no vendors", p.Name)
	case p.GQAExploitation < 0 || p.GQAExploitation > 1:
		return fmt.Errorf("framework: %s GQAExploitation out of [0,1]", p.Name)
	case p.KVEff <= 0 || p.MemBoost <= 0:
		return fmt.Errorf("framework: %s non-positive KVEff/MemBoost", p.Name)
	case p.TPCommEff <= 0 || p.TPCommEff > 1:
		return fmt.Errorf("framework: %s TPCommEff out of (0,1]", p.Name)
	case p.MoEAffinity <= 0:
		return fmt.Errorf("framework: %s non-positive MoEAffinity", p.Name)
	case p.CommOverlap < 0 || p.CommOverlap >= 1:
		return fmt.Errorf("framework: %s CommOverlap out of [0,1)", p.Name)
	case p.LogitsEff <= 0 || p.LogitsEff > 1:
		return fmt.Errorf("framework: %s LogitsEff out of (0,1]", p.Name)
	}
	for v := range p.Vendors {
		if p.EffCompute[v] <= 0 || p.EffCompute[v] > 1 {
			return fmt.Errorf("framework: %s EffCompute[%s] out of (0,1]", p.Name, v)
		}
		if p.EffMemory[v] <= 0 || p.EffMemory[v] > 1 {
			return fmt.Errorf("framework: %s EffMemory[%s] out of (0,1]", p.Name, v)
		}
	}
	return nil
}

var catalog = map[string]*Profile{
	// TensorRT-LLM: NVIDIA-only, best kernels, fused layers, in-flight
	// batching, paged KV.
	"TRT-LLM": {
		Name: "TRT-LLM", Display: "TRT-LLM",
		Vendors:         map[hw.Vendor]bool{hw.NVIDIA: true},
		EffCompute:      map[hw.Vendor]float64{hw.NVIDIA: 0.78},
		EffMemory:       map[hw.Vendor]float64{hw.NVIDIA: 0.88},
		GQAExploitation: 1.0, KVEff: 1.0, MemBoost: 1, LogitsEff: 1.0,
		LayerOverheadUS: 1.2, StepOverheadUS: 35,
		Parallel: TensorParallel, TPCommEff: 0.90,
		PagedKV: true, DefaultBlockSize: 64,
		ContinuousBatching: true, BatchWaves: true, MoEAffinity: 1.0,
	},
	// vLLM: broadest support; PagedAttention costs a little
	// indirection on the KV stream; kernels are good but less fused
	// than TRT-LLM.
	"vLLM": {
		Name: "vLLM", Display: "vLLM",
		Vendors: map[hw.Vendor]bool{hw.NVIDIA: true, hw.AMD: true, hw.Habana: true},
		EffCompute: map[hw.Vendor]float64{
			hw.NVIDIA: 0.62, hw.AMD: 0.33, hw.Habana: 0.50,
		},
		EffMemory: map[hw.Vendor]float64{
			hw.NVIDIA: 0.78, hw.AMD: 0.36, hw.Habana: 0.60,
		},
		GQAExploitation: 1.0, KVEff: 0.90, MemBoost: 1, LogitsEff: 1.0,
		LayerOverheadUS: 2.5, StepOverheadUS: 80,
		Parallel: TensorParallel, TPCommEff: 0.80,
		PagedKV: true, DefaultBlockSize: 16,
		ContinuousBatching: true, BatchWaves: true, MoEAffinity: 0.75,
	},
	// DeepSpeed-MII: A100-class NVIDIA only in the paper's setup;
	// Dynamic SplitFuse streams long contexts well and its MoE kernels
	// are strong, but its unembedding path is unfused — large-vocab
	// models lose their architectural edge here (§VII-1).
	"DS-MII": {
		Name: "DS-MII", Display: "DS-MII",
		Vendors:         map[hw.Vendor]bool{hw.NVIDIA: true},
		Devices:         map[string]bool{"A100": true},
		EffCompute:      map[hw.Vendor]float64{hw.NVIDIA: 0.55},
		EffMemory:       map[hw.Vendor]float64{hw.NVIDIA: 0.68},
		GQAExploitation: 1.0, KVEff: 1.0, MemBoost: 1, LogitsEff: 0.08,
		LayerOverheadUS: 3.0, StepOverheadUS: 90,
		Parallel: TensorParallel, TPCommEff: 0.85,
		PagedKV: true, DefaultBlockSize: 64,
		ContinuousBatching: true, BatchWaves: true, MoEAffinity: 1.35,
	},
	// llama.cpp: portable but no true batched GEMM (weights re-stream
	// every GEMMBatchCap sequences), no GQA-aware kernels, no tensor
	// parallelism (layer split only) — flat batch curves (Fig. 13) and
	// weak scaling (Fig. 14).
	"llama.cpp": {
		Name: "llama.cpp", Display: "llama.cpp",
		Vendors: map[hw.Vendor]bool{hw.NVIDIA: true, hw.AMD: true},
		EffCompute: map[hw.Vendor]float64{
			hw.NVIDIA: 0.18, hw.AMD: 0.12,
		},
		EffMemory: map[hw.Vendor]float64{
			hw.NVIDIA: 0.45, hw.AMD: 0.18,
		},
		GQAExploitation: 0.0, KVEff: 0.80, MemBoost: 1, LogitsEff: 0.02,
		LayerOverheadUS: 6, StepOverheadUS: 250,
		GEMMBatchCap: 4,
		Parallel:     LayerSplit, TPCommEff: 0.60,
		PagedKV: false, DefaultBlockSize: 0,
		ContinuousBatching: false, BatchWaves: true, MoEAffinity: 0.9,
	},
	// SambaFlow: SN40L-only vendor stack. Whole-graph fusion removes
	// per-op dispatch and overlaps the 3-tier memory (MemBoost), but
	// graph setup dominates TTFT and the service caps batch size.
	"SambaFlow": {
		Name: "SambaFlow", Display: "Sambaflow",
		Vendors:         map[hw.Vendor]bool{hw.SambaNova: true},
		EffCompute:      map[hw.Vendor]float64{hw.SambaNova: 0.70},
		EffMemory:       map[hw.Vendor]float64{hw.SambaNova: 0.85},
		GQAExploitation: 1.0, KVEff: 1.0, MemBoost: 3.5, LogitsEff: 1.0,
		LayerOverheadUS: 0.1, StepOverheadUS: 12,
		PrefillPerSeqMS: 160, CommOverlap: 0.95,
		Parallel: TensorParallel, TPCommEff: 0.95,
		PagedKV: false, DefaultBlockSize: 0,
		ContinuousBatching: true, BatchWaves: true, MoEAffinity: 1.0,
	},
	// DeepSpeed (Optimum-Habana) on Gaudi2: decent kernels; the HPU
	// graph mode keeps overheads low, but memory headroom is tight
	// (the paper hit OOM at batch 32/64).
	"DeepSpeed": {
		Name: "DeepSpeed", Display: "DS",
		Vendors:         map[hw.Vendor]bool{hw.Habana: true},
		EffCompute:      map[hw.Vendor]float64{hw.Habana: 0.66},
		EffMemory:       map[hw.Vendor]float64{hw.Habana: 0.76},
		GQAExploitation: 1.0, KVEff: 0.95, MemBoost: 1, LogitsEff: 1.0,
		LayerOverheadUS: 2.0, StepOverheadUS: 70,
		Parallel: TensorParallel, TPCommEff: 0.85,
		PagedKV: false, DefaultBlockSize: 0,
		ContinuousBatching: false, ReserveMaxSeq: true, MoEAffinity: 1.0,
	},
}

// Get returns the named framework profile.
func Get(name string) (*Profile, error) {
	if p, ok := catalog[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("framework: unknown framework %q (have %v)", name, Names())
}

// MustGet is Get for known-good names.
func MustGet(name string) *Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all framework names, sorted.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableIII reproduces the paper's framework × hardware support matrix.
// Rows are frameworks, columns the five devices of Table III.
func TableIII() (rows []string, cols []string, cells [][]bool) {
	rows = []string{"vLLM", "llama.cpp", "TRT-LLM", "DS-MII"}
	cols = []string{"A100", "H100", "GH200", "MI250", "Gaudi2"}
	// The paper's Table III as printed (DS-MII was only run on A100;
	// vLLM covers everything including Gaudi2).
	matrix := map[string]map[string]bool{
		"vLLM":      {"A100": true, "H100": true, "GH200": true, "MI250": true, "Gaudi2": true},
		"llama.cpp": {"A100": true, "H100": true, "GH200": true, "MI250": true, "Gaudi2": false},
		"TRT-LLM":   {"A100": true, "H100": true, "GH200": true, "MI250": false, "Gaudi2": false},
		"DS-MII":    {"A100": true, "H100": false, "GH200": false, "MI250": false, "Gaudi2": false},
	}
	cells = make([][]bool, len(rows))
	for i, r := range rows {
		cells[i] = make([]bool, len(cols))
		for j, c := range cols {
			cells[i][j] = matrix[r][c]
		}
	}
	return rows, cols, cells
}

// Package roofline implements the op-level timing primitive the
// engine is built on: an operation with F FLOPs of compute and B bytes
// of memory traffic on a device achieving effective rates C FLOP/s and
// M B/s takes max(F/C, B/M) — it is either compute-bound or
// memory-bound.
//
// Heterogeneous devices that genuinely co-execute engines (Gaudi2's
// MME + TPC, §VI-4 of the paper) may additionally hide part of the
// shorter wall under the longer one, expressed by Rates.Overlap.
//
// The package reports which wall an op hit and the ratio between the
// walls, which the power model consumes.
package roofline

import (
	"errors"
	"math"
)

// Bound says which resource limited an operation.
type Bound int

const (
	// ComputeBound: FLOPs dominated (prefill, large batches).
	ComputeBound Bound = iota
	// MemoryBound: byte traffic dominated (decode at small batch).
	MemoryBound
)

func (b Bound) String() string {
	if b == ComputeBound {
		return "compute"
	}
	return "memory"
}

// Op is one roofline operation.
type Op struct {
	FLOPs float64 // total floating-point work
	Bytes float64 // total memory traffic
}

// Rates are the effective device rates for an Op.
type Rates struct {
	FLOPS float64 // effective FLOP/s (peak × efficiency)
	BW    float64 // effective bytes/s
	// Overlap ∈ [0,1): fraction of the shorter wall hidden under the
	// longer one by co-executing engines. The credit is capped so an
	// op can never run faster than 60% of its dominant wall.
	Overlap float64
}

// Result is the timing outcome of an Op.
type Result struct {
	Seconds     float64 // wall time
	Bound       Bound
	ComputeTime float64 // F/C
	MemoryTime  float64 // B/M
	// Balance = min(wall)/max(wall) ∈ [0,1]. 1 means both resources
	// were saturated (maximum power draw); near 0 means one resource
	// idled.
	Balance float64
}

// ErrBadRates is returned for non-positive effective rates.
var ErrBadRates = errors.New("roofline: non-positive effective rate")

// ErrNegativeWork is returned for negative FLOP or byte counts.
var ErrNegativeWork = errors.New("roofline: negative work")

// Time evaluates the roofline for one op.
func Time(op Op, r Rates) (Result, error) {
	if r.FLOPS <= 0 || r.BW <= 0 {
		return Result{}, ErrBadRates
	}
	if op.FLOPs < 0 || op.Bytes < 0 {
		return Result{}, ErrNegativeWork
	}
	if r.Overlap < 0 || r.Overlap >= 1 {
		return Result{}, errors.New("roofline: overlap out of [0,1)")
	}
	ct := op.FLOPs / r.FLOPS
	mt := op.Bytes / r.BW
	long := math.Max(ct, mt)
	short := math.Min(ct, mt)
	t := long
	if r.Overlap > 0 {
		t = math.Max(long-short*r.Overlap, 0.6*long)
	}
	bound := ComputeBound
	if mt > ct {
		bound = MemoryBound
	}
	balance := 0.0
	if long > 0 {
		balance = short / long
	}
	return Result{
		Seconds:     t,
		Bound:       bound,
		ComputeTime: ct,
		MemoryTime:  mt,
		Balance:     balance,
	}, nil
}

// Sum accumulates results of sequential ops: times add; the bound and
// balance are work-weighted.
func Sum(results ...Result) Result {
	var out Result
	var wBal float64
	for _, r := range results {
		out.Seconds += r.Seconds
		out.ComputeTime += r.ComputeTime
		out.MemoryTime += r.MemoryTime
		wBal += r.Balance * r.Seconds
	}
	if out.Seconds > 0 {
		out.Balance = wBal / out.Seconds
	}
	if out.MemoryTime > out.ComputeTime {
		out.Bound = MemoryBound
	}
	return out
}

package roofline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComputeBound(t *testing.T) {
	r, err := Time(Op{FLOPs: 1e12, Bytes: 1e6}, Rates{FLOPS: 1e12, BW: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound != ComputeBound {
		t.Errorf("bound = %v, want compute", r.Bound)
	}
	if math.Abs(r.Seconds-1) > 1e-12 {
		t.Errorf("seconds = %v, want 1", r.Seconds)
	}
}

func TestMemoryBound(t *testing.T) {
	r, err := Time(Op{FLOPs: 1e6, Bytes: 2e12}, Rates{FLOPS: 1e12, BW: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound != MemoryBound {
		t.Errorf("bound = %v, want memory", r.Bound)
	}
	if math.Abs(r.Seconds-2) > 1e-12 {
		t.Errorf("seconds = %v, want 2", r.Seconds)
	}
}

func TestOverlapShortensButBounded(t *testing.T) {
	op := Op{FLOPs: 1e12, Bytes: 0.9e12}
	base, _ := Time(op, Rates{FLOPS: 1e12, BW: 1e12})
	over, _ := Time(op, Rates{FLOPS: 1e12, BW: 1e12, Overlap: 0.5})
	if over.Seconds >= base.Seconds {
		t.Error("overlap must shorten the op")
	}
	if over.Seconds < 0.6*base.Seconds {
		t.Error("overlap credit must be capped at 60% of the dominant wall")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Time(Op{FLOPs: 1}, Rates{FLOPS: 0, BW: 1}); err == nil {
		t.Error("zero FLOPS rate must error")
	}
	if _, err := Time(Op{FLOPs: -1}, Rates{FLOPS: 1, BW: 1}); err == nil {
		t.Error("negative work must error")
	}
	if _, err := Time(Op{}, Rates{FLOPS: 1, BW: 1, Overlap: 1}); err == nil {
		t.Error("overlap=1 must error")
	}
}

func TestTimeNeverBelowDominantWallWithoutOverlap(t *testing.T) {
	f := func(fl, by uint32) bool {
		op := Op{FLOPs: float64(fl), Bytes: float64(by)}
		r, err := Time(op, Rates{FLOPS: 1e9, BW: 1e9})
		if err != nil {
			return false
		}
		want := math.Max(op.FLOPs, op.Bytes) / 1e9
		return math.Abs(r.Seconds-want) < 1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBalanceRange(t *testing.T) {
	f := func(fl, by uint32) bool {
		r, err := Time(Op{FLOPs: float64(fl) + 1, Bytes: float64(by) + 1}, Rates{FLOPS: 1e9, BW: 1e9})
		return err == nil && r.Balance >= 0 && r.Balance <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum(t *testing.T) {
	a, _ := Time(Op{FLOPs: 1e9, Bytes: 1e6}, Rates{FLOPS: 1e9, BW: 1e9})
	b, _ := Time(Op{FLOPs: 1e6, Bytes: 3e9}, Rates{FLOPS: 1e9, BW: 1e9})
	s := Sum(a, b)
	if math.Abs(s.Seconds-(a.Seconds+b.Seconds)) > 1e-12 {
		t.Errorf("sum seconds = %v", s.Seconds)
	}
	if s.Bound != MemoryBound {
		t.Error("sum should be memory bound (3e9 bytes vs 1e9+1e6 flops)")
	}
	if s.Balance < 0 || s.Balance > 1 {
		t.Errorf("sum balance out of range: %v", s.Balance)
	}
}

func TestBoundString(t *testing.T) {
	if ComputeBound.String() != "compute" || MemoryBound.String() != "memory" {
		t.Error("bound strings wrong")
	}
}

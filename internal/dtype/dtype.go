// Package dtype defines the numeric precisions used by LLM inference
// engines and the byte-size algebra the performance model needs.
//
// The paper (Table II) distinguishes weight precision and KV-cache
// precision separately (Fig. 3 sweeps combinations such as
// {fp16 weights, fp8 KV}); both are represented by the same DType.
package dtype

import "fmt"

// DType is a numeric precision supported by at least one accelerator.
type DType int

// Supported precisions, ordered roughly by width.
const (
	FP32 DType = iota
	TF32
	FP16
	BF16
	FP8
	INT8
	INT4
	INT1
)

var names = map[DType]string{
	FP32: "fp32",
	TF32: "tf32",
	FP16: "fp16",
	BF16: "bf16",
	FP8:  "fp8",
	INT8: "int8",
	INT4: "int4",
	INT1: "int1",
}

// String returns the lower-case conventional name, e.g. "fp16".
func (d DType) String() string {
	if s, ok := names[d]; ok {
		return s
	}
	return fmt.Sprintf("dtype(%d)", int(d))
}

// Parse converts a conventional name such as "fp16" or "bf16" into a
// DType. It returns an error for unknown names.
func Parse(s string) (DType, error) {
	for d, n := range names {
		if n == s {
			return d, nil
		}
	}
	return FP32, fmt.Errorf("dtype: unknown precision %q", s)
}

// Bytes returns the storage size of one element in bytes. Sub-byte
// types report fractional sizes (INT4 = 0.5, INT1 = 0.125) because the
// performance model works in aggregate byte counts.
func (d DType) Bytes() float64 {
	switch d {
	case FP32, TF32:
		return 4
	case FP16, BF16:
		return 2
	case FP8, INT8:
		return 1
	case INT4:
		return 0.5
	case INT1:
		return 0.125
	}
	return 4
}

// Bits returns the width of one element in bits.
func (d DType) Bits() int { return int(d.Bytes() * 8) }

// IsFloat reports whether the type is a floating-point format.
func (d DType) IsFloat() bool {
	switch d {
	case FP32, TF32, FP16, BF16, FP8:
		return true
	}
	return false
}

// IsInteger reports whether the type is an integer format.
func (d DType) IsInteger() bool { return !d.IsFloat() }

// All returns every defined precision, widest first.
func All() []DType {
	return []DType{FP32, TF32, FP16, BF16, FP8, INT8, INT4, INT1}
}

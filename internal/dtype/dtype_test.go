package dtype

import (
	"testing"
	"testing/quick"
)

func TestBytes(t *testing.T) {
	cases := []struct {
		d    DType
		want float64
	}{
		{FP32, 4}, {TF32, 4}, {FP16, 2}, {BF16, 2},
		{FP8, 1}, {INT8, 1}, {INT4, 0.5}, {INT1, 0.125},
	}
	for _, c := range cases {
		if got := c.d.Bytes(); got != c.want {
			t.Errorf("%v.Bytes() = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, d := range All() {
		got, err := Parse(d.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("Parse(%q) = %v, want %v", d.String(), got, d)
		}
	}
}

func TestParseUnknown(t *testing.T) {
	if _, err := Parse("fp13"); err == nil {
		t.Error("Parse(fp13) succeeded, want error")
	}
}

func TestFloatIntPartition(t *testing.T) {
	for _, d := range All() {
		if d.IsFloat() == d.IsInteger() {
			t.Errorf("%v: IsFloat and IsInteger must disagree", d)
		}
	}
	if !FP8.IsFloat() || !INT8.IsInteger() {
		t.Error("FP8 must be float, INT8 must be integer")
	}
}

func TestBitsConsistentWithBytes(t *testing.T) {
	f := func(n uint8) bool {
		d := All()[int(n)%len(All())]
		return float64(d.Bits()) == d.Bytes()*8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringUnknown(t *testing.T) {
	if s := DType(99).String(); s != "dtype(99)" {
		t.Errorf("DType(99).String() = %q", s)
	}
}

func TestAllOrderedByWidth(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i].Bytes() > all[i-1].Bytes() {
			t.Errorf("All() not ordered widest-first at %d: %v > %v", i, all[i], all[i-1])
		}
	}
}

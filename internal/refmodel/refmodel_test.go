package refmodel

import (
	"math"
	"testing"

	"llmbench/internal/model"
)

// tinyConfig is a scaled-down LLaMA-style architecture the reference
// implementation can execute quickly.
func tinyConfig(attn model.AttentionKind, kvHeads int) *model.Config {
	return &model.Config{
		Name: "tiny", Layers: 2, Hidden: 64, Attention: attn,
		Heads: 8, KVHeads: kvHeads, FFN: model.Dense, Experts: 1,
		ActiveExp: 1, Inter: 128, MaxSeq: 256, Vocab: 97, GatedMLP: true,
	}
}

func TestNewRejectsBigAndMoE(t *testing.T) {
	big := tinyConfig(model.GQA, 2)
	big.Hidden = 8192
	big.Heads = 64
	big.KVHeads = 8
	if _, err := New(big, 1); err == nil {
		t.Error("oversized architecture must be rejected")
	}
	if _, err := New(model.MustGet("Mixtral-8x7B"), 1); err == nil {
		t.Error("MoE must be rejected")
	}
}

func TestKVCacheEquivalence(t *testing.T) {
	// Decoding with the KV cache must produce exactly the same tokens
	// as re-running the full forward pass every step — the correctness
	// property behind the Fig. 2a ablation.
	for _, cfg := range []*model.Config{tinyConfig(model.MHSA, 8), tinyConfig(model.GQA, 2)} {
		m, err := New(cfg, 42)
		if err != nil {
			t.Fatal(err)
		}
		prompt := []int{5, 17, 3, 88, 21, 9}
		var cWith, cWithout Counters
		with, err := m.Generate(prompt, 8, true, &cWith)
		if err != nil {
			t.Fatal(err)
		}
		without, err := m.Generate(prompt, 8, false, &cWithout)
		if err != nil {
			t.Fatal(err)
		}
		for i := range with {
			if with[i] != without[i] {
				t.Fatalf("%s: token %d differs with cache: %v vs %v", cfg.Attention, i, with, without)
			}
		}
		// And the cache must save a lot of work.
		if cWith.Total() >= cWithout.Total() {
			t.Errorf("%s: cached FLOPs %.3g must be below uncached %.3g",
				cfg.Attention, cWith.Total(), cWithout.Total())
		}
	}
}

func TestDecodeFLOPsMatchAnalyticModel(t *testing.T) {
	// One cached decode step at context ctx must execute the FLOPs the
	// analytic model predicts (matmul + attention only; norms and
	// elementwise ops are excluded on both sides).
	cfg := tinyConfig(model.GQA, 2)
	m, err := New(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	prompt := make([]int, 31)
	for i := range prompt {
		prompt[i] = (i * 13) % cfg.Vocab
	}
	cache := m.NewKVCache()
	var warm Counters
	if _, err := m.Forward(prompt, cache, &warm); err != nil {
		t.Fatal(err)
	}
	var step Counters
	if _, err := m.Forward([]int{1}, cache, &step); err != nil {
		t.Fatal(err)
	}
	ctx := len(prompt) + 1 // cache now holds prompt + the new token
	want := cfg.DecodeFLOPsPerToken(ctx)
	got := step.Total()
	if rel := math.Abs(got-want) / want; rel > 0.02 {
		t.Errorf("decode FLOPs: executed %.6g vs analytic %.6g (rel err %.3f)", got, want, rel)
	}
}

func TestPrefillFLOPsMatchAnalyticModel(t *testing.T) {
	cfg := tinyConfig(model.GQA, 2)
	m, err := New(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	n := 48
	prompt := make([]int, n)
	for i := range prompt {
		prompt[i] = (i * 7) % cfg.Vocab
	}
	var cnt Counters
	if _, err := m.Forward(prompt, m.NewKVCache(), &cnt); err != nil {
		t.Fatal(err)
	}
	want := cfg.PrefillFLOPs(n)
	got := cnt.Total()
	// The analytic prefill approximates causal attention as n² rather
	// than n(n+1)/2·2; allow a modest band.
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("prefill FLOPs: executed %.6g vs analytic %.6g (rel err %.3f)", got, want, rel)
	}
}

func TestGQAKVTrafficRatio(t *testing.T) {
	// A GQA model with 2 of 8 KV heads must read exactly 1/4 of the
	// MHSA model's KV elements per step — the traffic ratio the engine
	// prices.
	run := func(cfg *model.Config) Counters {
		m, err := New(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		cache := m.NewKVCache()
		var warm Counters
		prompt := make([]int, 32)
		if _, err := m.Forward(prompt, cache, &warm); err != nil {
			t.Fatal(err)
		}
		var step Counters
		if _, err := m.Forward([]int{1}, cache, &step); err != nil {
			t.Fatal(err)
		}
		return step
	}
	mhsa := run(tinyConfig(model.MHSA, 8))
	gqa := run(tinyConfig(model.GQA, 2))
	ratio := gqa.KVElemsRead / mhsa.KVElemsRead
	if math.Abs(ratio-0.25) > 1e-9 {
		t.Errorf("GQA KV read ratio = %v, want exactly 0.25", ratio)
	}
	// Analytic counterpart.
	wantRatio := tinyConfig(model.GQA, 2).KVGroupRatio()
	if math.Abs(ratio-wantRatio) > 1e-9 {
		t.Errorf("executed ratio %v disagrees with KVGroupRatio %v", ratio, wantRatio)
	}
}

func TestForwardErrors(t *testing.T) {
	m, err := New(tinyConfig(model.GQA, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	var cnt Counters
	if _, err := m.Forward(nil, nil, &cnt); err == nil {
		t.Error("empty tokens must fail")
	}
	if _, err := m.Forward([]int{10000}, nil, &cnt); err == nil {
		t.Error("out-of-vocab token must fail")
	}
	if _, err := m.Generate([]int{1}, 0, true, &cnt); err == nil {
		t.Error("zero steps must fail")
	}
}

func TestDeterministicWeights(t *testing.T) {
	a, _ := New(tinyConfig(model.GQA, 2), 5)
	bm, _ := New(tinyConfig(model.GQA, 2), 5)
	var ca, cb Counters
	la, err := a.Forward([]int{1, 2, 3}, nil, &ca)
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := bm.Forward([]int{1, 2, 3}, nil, &cb)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed must give identical logits")
		}
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{MatmulFLOPs: 1, AttnFLOPs: 2, WeightElems: 3, KVElemsRead: 4, KVElemsWrite: 5}
	b := a
	a.Add(b)
	if a.MatmulFLOPs != 2 || a.KVElemsWrite != 10 {
		t.Errorf("Add broken: %+v", a)
	}
	if a.Total() != 6 {
		t.Errorf("Total = %v", a.Total())
	}
}

package refmodel

import (
	"testing"

	"llmbench/internal/dtype"
	"llmbench/internal/model"
)

func TestKVQuantizationPreservesOutputs(t *testing.T) {
	// The Fig. 3 premise: an FP8 or INT8 KV cache barely changes the
	// model's generations. Measured on the executable reference model.
	cfg := tinyConfig(model.GQA, 2)
	m, err := New(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{3, 41, 7, 90, 12, 55, 23, 8}
	const steps = 24
	var cRef Counters
	ref, err := m.Generate(prompt, steps, true, &cRef)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []dtype.DType{dtype.FP8, dtype.INT8} {
		var cnt Counters
		got, perturb, err := m.GenerateWithKVPrecision(prompt, steps, d, &cnt)
		if err != nil {
			t.Fatal(err)
		}
		if agree := Agreement(ref, got); agree < 0.85 {
			t.Errorf("%s KV: token agreement %.2f too low (ref %v vs %v)", d, agree, ref, got)
		}
		if perturb <= 0 || perturb > 0.1 {
			t.Errorf("%s KV: cache perturbation %.4f outside (0, 0.1]", d, perturb)
		}
	}
	// Reference-precision storage is exact.
	got, perturb, err := m.GenerateWithKVPrecision(prompt, steps, dtype.FP16, &Counters{})
	if err != nil {
		t.Fatal(err)
	}
	if perturb != 0 {
		t.Errorf("fp16 storage must not perturb, got %v", perturb)
	}
	if Agreement(ref, got) != 1 {
		t.Error("fp16 KV storage must reproduce the reference exactly")
	}
}

func TestKVQuantizationErrorOrdering(t *testing.T) {
	// On this reference model's KV tensors — random weights, hence no
	// trained outlier channels — per-tensor absmax INT8 (127 levels)
	// is *more* faithful than FP8's 3 mantissa bits. FP8 only wins
	// when heavy outliers stretch the absmax scale (see
	// quant.TestEmpiricalErrorOrdering, which injects them). Both
	// regimes are real; asserting each where it holds keeps the
	// quantization story honest.
	cfg := tinyConfig(model.MHSA, 8)
	m, err := New(cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{1, 2, 3, 4, 5, 6}
	var c1, c2 Counters
	_, fp8Err, err := m.GenerateWithKVPrecision(prompt, 12, dtype.FP8, &c1)
	if err != nil {
		t.Fatal(err)
	}
	_, int8Err, err := m.GenerateWithKVPrecision(prompt, 12, dtype.INT8, &c2)
	if err != nil {
		t.Fatal(err)
	}
	if int8Err >= fp8Err {
		t.Errorf("outlier-free cache: int8 %.5f must be below fp8 %.5f", int8Err, fp8Err)
	}
	if fp8Err > 0.05 {
		t.Errorf("fp8 perturbation %.5f implausibly large", fp8Err)
	}
}

func TestKVQuantizationUnsupported(t *testing.T) {
	m, err := New(tinyConfig(model.GQA, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.GenerateWithKVPrecision([]int{1}, 4, dtype.INT1, &Counters{}); err == nil {
		t.Error("unsupported precision must fail")
	}
	if _, _, err := m.GenerateWithKVPrecision([]int{1}, 0, dtype.FP8, &Counters{}); err == nil {
		t.Error("zero steps must fail")
	}
}

func TestAgreement(t *testing.T) {
	if Agreement([]int{1, 2, 3}, []int{1, 2, 4}) != 2.0/3 {
		t.Error("agreement fraction wrong")
	}
	if Agreement(nil, nil) != 0 {
		t.Error("empty agreement must be 0")
	}
	if Agreement([]int{1}, []int{1, 2}) != 0 {
		t.Error("length mismatch must be 0")
	}
}

package refmodel

// KV-cache quantization on the executable reference model: Fig. 3
// runs {fp16, fp8} and {fp16, int8} schemes whose premise is that a
// low-precision KV cache barely changes the model's outputs. Here that
// premise is *measured*: quantize the cached K/V tensors with the real
// rounding arithmetic from internal/quant and compare greedy decodes
// against the fp64 reference.

import (
	"errors"
	"math"

	"llmbench/internal/dtype"
	"llmbench/internal/quant"
)

// QuantizeCache rounds every cached K/V element to the given storage
// precision in place, returning the relative RMS perturbation.
func (c *KVCache) QuantizeCache(d dtype.DType) (float64, error) {
	var round func(float64) float64
	switch d {
	case dtype.FP16, dtype.BF16, dtype.FP32:
		round = func(v float64) float64 { return v } // reference-precision storage
	case dtype.FP8:
		round = quant.RoundFP8E4M3
	case dtype.INT8:
		round = nil // per-tensor absmax below
	default:
		return 0, errors.New("refmodel: unsupported KV storage precision " + d.String())
	}
	var num, den float64
	apply := func(data []float64) error {
		if len(data) == 0 {
			return nil
		}
		if round != nil {
			for i, v := range data {
				q := round(v)
				num += (v - q) * (v - q)
				den += v * v
				data[i] = q
			}
			return nil
		}
		codes, scale, err := quant.QuantizeInt8(data)
		if err != nil {
			return err
		}
		rec := quant.DequantizeInt8(codes, scale)
		for i, v := range data {
			num += (v - rec[i]) * (v - rec[i])
			den += v * v
			data[i] = rec[i]
		}
		return nil
	}
	for li := range c.keys {
		if err := apply(c.keys[li].data); err != nil {
			return 0, err
		}
		if err := apply(c.values[li].data); err != nil {
			return 0, err
		}
	}
	if den == 0 {
		return 0, nil
	}
	return math.Sqrt(num / den), nil
}

// GenerateWithKVPrecision decodes greedily with the KV cache stored at
// the given precision: after every forward pass the newly written
// cache entries are re-rounded, exactly as a low-precision cache
// behaves. It returns the generated tokens and the mean relative RMS
// perturbation of the cache.
func (m *Model) GenerateWithKVPrecision(prompt []int, steps int, d dtype.DType, cnt *Counters) ([]int, float64, error) {
	if steps < 1 {
		return nil, 0, errors.New("refmodel: steps must be ≥ 1")
	}
	cache := m.NewKVCache()
	var out []int
	feed := append([]int{}, prompt...)
	var errSum float64
	for s := 0; s < steps; s++ {
		logits, err := m.Forward(feed, cache, cnt)
		if err != nil {
			return nil, 0, err
		}
		e, err := cache.QuantizeCache(d)
		if err != nil {
			return nil, 0, err
		}
		errSum += e
		next := argmax(logits)
		out = append(out, next)
		feed = []int{next}
	}
	return out, errSum / float64(steps), nil
}

// Agreement compares two token sequences and returns the fraction of
// positions that match.
func Agreement(a, b []int) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// Package refmodel is an executable reference implementation of the
// decoder-only transformer the analytic performance model abstracts:
// real (small) tensors, real MHSA/GQA attention, a real KV cache, and
// an instrumented matmul that counts FLOPs and weight-bytes touched.
//
// It exists to *validate* the rest of the system:
//
//   - the FLOP counter cross-checks model.Config.DecodeFLOPsPerToken
//     and PrefillFLOPs against actually-executed arithmetic;
//   - decoding with the KV cache must produce bit-identical logits to
//     re-running the full forward pass each step — the correctness
//     property behind the Fig. 2a ablation;
//   - GQA (shared KV heads) must touch exactly KVHeads/Heads of the
//     MHSA KV state, the traffic ratio the engine prices.
package refmodel

import (
	"errors"
	"fmt"
	"math"

	"llmbench/internal/model"
	"llmbench/internal/trace"
)

// Counters accumulate executed work.
type Counters struct {
	MatmulFLOPs  float64 // 2·m·n·k per matmul
	AttnFLOPs    float64 // score + value aggregation matmuls
	WeightElems  float64 // weight elements touched (reads)
	KVElemsRead  float64 // KV cache elements read
	KVElemsWrite float64 // KV cache elements written
}

// Add merges c2 into c.
func (c *Counters) Add(c2 Counters) {
	c.MatmulFLOPs += c2.MatmulFLOPs
	c.AttnFLOPs += c2.AttnFLOPs
	c.WeightElems += c2.WeightElems
	c.KVElemsRead += c2.KVElemsRead
	c.KVElemsWrite += c2.KVElemsWrite
}

// Total returns all FLOPs.
func (c Counters) Total() float64 { return c.MatmulFLOPs + c.AttnFLOPs }

// matrix is a dense row-major matrix.
type matrix struct {
	rows, cols int
	data       []float64
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

func (m *matrix) at(r, c int) float64     { return m.data[r*m.cols+c] }
func (m *matrix) set(r, c int, v float64) { m.data[r*m.cols+c] = v }

// randomMatrix fills a matrix with small deterministic values.
func randomMatrix(rng *trace.RNG, rows, cols int) *matrix {
	m := newMatrix(rows, cols)
	scale := 1 / math.Sqrt(float64(cols))
	for i := range m.data {
		m.data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// matmul computes a·b, counting FLOPs and weight traffic (b is the
// weight operand).
func matmul(a, b *matrix, cnt *Counters) (*matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("refmodel: matmul shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	out := newMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			av := a.at(i, k)
			if av == 0 {
				// Still counted: hardware does not skip zeros.
				_ = av
			}
			row := b.data[k*b.cols:]
			outRow := out.data[i*out.cols:]
			for j := 0; j < b.cols; j++ {
				outRow[j] += av * row[j]
			}
		}
	}
	cnt.MatmulFLOPs += 2 * float64(a.rows) * float64(a.cols) * float64(b.cols)
	cnt.WeightElems += float64(b.rows) * float64(b.cols)
	return out, nil
}

// Model is an executable scaled-down decoder.
type Model struct {
	Cfg *model.Config

	embed   *matrix // vocab × hidden
	layers  []*layer
	unembed *matrix // hidden × vocab
}

type layer struct {
	wq, wk, wv, wo *matrix
	gate, up, down *matrix // gated MLP (gate/up nil when not gated)
}

// New builds a model with deterministic random weights for the given
// (small!) architecture. Memory grows with vocab·hidden and
// layers·hidden·inter — keep dimensions in the hundreds.
func New(cfg *model.Config, seed uint64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.FFN != model.Dense {
		return nil, errors.New("refmodel: MoE not supported in the reference implementation")
	}
	if cfg.Hidden > 2048 || cfg.Layers > 16 || cfg.Vocab > 8192 {
		return nil, errors.New("refmodel: architecture too large for the reference implementation")
	}
	rng := trace.NewRNG(seed)
	d := cfg.Hidden / cfg.Heads
	if cfg.HeadDim > 0 {
		d = cfg.HeadDim
	}
	m := &Model{
		Cfg:     cfg,
		embed:   randomMatrix(rng, cfg.Vocab, cfg.Hidden),
		unembed: randomMatrix(rng, cfg.Hidden, cfg.Vocab),
	}
	for i := 0; i < cfg.Layers; i++ {
		l := &layer{
			wq:   randomMatrix(rng, cfg.Hidden, cfg.Heads*d),
			wk:   randomMatrix(rng, cfg.Hidden, cfg.KVHeads*d),
			wv:   randomMatrix(rng, cfg.Hidden, cfg.KVHeads*d),
			wo:   randomMatrix(rng, cfg.Heads*d, cfg.Hidden),
			down: randomMatrix(rng, cfg.Inter, cfg.Hidden),
			up:   randomMatrix(rng, cfg.Hidden, cfg.Inter),
		}
		if cfg.GatedMLP {
			l.gate = randomMatrix(rng, cfg.Hidden, cfg.Inter)
		}
		m.layers = append(m.layers, l)
	}
	return m, nil
}

// KVCache holds per-layer key/value tensors for one sequence.
type KVCache struct {
	keys   []*matrix // per layer: ctx × (kvHeads·d)
	values []*matrix
	ctx    int
}

// NewKVCache creates an empty cache for the model.
func (m *Model) NewKVCache() *KVCache {
	c := &KVCache{}
	for range m.layers {
		c.keys = append(c.keys, newMatrix(0, 0))
		c.values = append(c.values, newMatrix(0, 0))
	}
	return c
}

// Len returns the cached context length.
func (c *KVCache) Len() int { return c.ctx }

func appendRows(dst *matrix, src *matrix) *matrix {
	if dst.rows == 0 {
		out := newMatrix(src.rows, src.cols)
		copy(out.data, src.data)
		return out
	}
	out := &matrix{rows: dst.rows + src.rows, cols: dst.cols,
		data: append(append([]float64{}, dst.data...), src.data...)}
	return out
}

// Forward runs tokens (a full prompt, or one step of decode) through
// the model, extending cache (which may be nil for cache-less
// execution over the full sequence). pastLen is the number of tokens
// already in the cache. It returns the logits of the last position.
func (m *Model) Forward(tokens []int, cache *KVCache, cnt *Counters) ([]float64, error) {
	if len(tokens) == 0 {
		return nil, errors.New("refmodel: empty token slice")
	}
	cfg := m.Cfg
	for _, t := range tokens {
		if t < 0 || t >= cfg.Vocab {
			return nil, fmt.Errorf("refmodel: token %d out of vocab %d", t, cfg.Vocab)
		}
	}
	d := cfg.Hidden / cfg.Heads
	if cfg.HeadDim > 0 {
		d = cfg.HeadDim
	}
	group := cfg.Heads / cfg.KVHeads

	// Embedding lookup (no matmul cost: a gather).
	x := newMatrix(len(tokens), cfg.Hidden)
	for i, t := range tokens {
		copy(x.data[i*cfg.Hidden:(i+1)*cfg.Hidden], m.embed.data[t*cfg.Hidden:(t+1)*cfg.Hidden])
	}

	for li, l := range m.layers {
		q, err := matmul(x, l.wq, cnt)
		if err != nil {
			return nil, err
		}
		k, err := matmul(x, l.wk, cnt)
		if err != nil {
			return nil, err
		}
		v, err := matmul(x, l.wv, cnt)
		if err != nil {
			return nil, err
		}
		var keys, values *matrix
		past := 0
		if cache != nil {
			past = cache.keys[li].rows
			keys = appendRows(cache.keys[li], k)
			values = appendRows(cache.values[li], v)
			cache.keys[li] = keys
			cache.values[li] = values
			cnt.KVElemsWrite += float64(k.rows * k.cols * 2)
			cnt.KVElemsRead += float64(past) * float64(k.cols) * 2
		} else {
			keys, values = k, v
		}

		// Attention per query head; KV heads are shared across groups.
		attnOut := newMatrix(len(tokens), cfg.Heads*d)
		for h := 0; h < cfg.Heads; h++ {
			kv := h / group
			for qi := 0; qi < len(tokens); qi++ {
				limit := past + qi + 1 // causal mask
				if limit > keys.rows {
					limit = keys.rows
				}
				// Scores.
				scores := make([]float64, limit)
				maxS := math.Inf(-1)
				for pos := 0; pos < limit; pos++ {
					s := 0.0
					for e := 0; e < d; e++ {
						s += q.at(qi, h*d+e) * keys.at(pos, kv*d+e)
					}
					s /= math.Sqrt(float64(d))
					scores[pos] = s
					if s > maxS {
						maxS = s
					}
				}
				cnt.AttnFLOPs += 2 * float64(limit) * float64(d)
				// Softmax.
				var sum float64
				for pos := range scores {
					scores[pos] = math.Exp(scores[pos] - maxS)
					sum += scores[pos]
				}
				// Weighted value sum.
				for e := 0; e < d; e++ {
					acc := 0.0
					for pos := 0; pos < limit; pos++ {
						acc += scores[pos] / sum * values.at(pos, kv*d+e)
					}
					attnOut.set(qi, h*d+e, acc)
				}
				cnt.AttnFLOPs += 2 * float64(limit) * float64(d)
			}
		}
		o, err := matmul(attnOut, l.wo, cnt)
		if err != nil {
			return nil, err
		}
		// Residual.
		for i := range x.data {
			x.data[i] += o.data[i]
		}

		// MLP (SiLU-gated when configured).
		upOut, err := matmul(x, l.up, cnt)
		if err != nil {
			return nil, err
		}
		if l.gate != nil {
			gateOut, err := matmul(x, l.gate, cnt)
			if err != nil {
				return nil, err
			}
			for i := range upOut.data {
				g := gateOut.data[i]
				upOut.data[i] *= g / (1 + math.Exp(-g)) // SiLU
			}
		} else {
			for i := range upOut.data {
				if upOut.data[i] < 0 {
					upOut.data[i] = 0 // ReLU
				}
			}
		}
		downOut, err := matmul(upOut, l.down, cnt)
		if err != nil {
			return nil, err
		}
		for i := range x.data {
			x.data[i] += downOut.data[i]
		}
	}
	if cache != nil {
		cache.ctx += len(tokens)
	}

	// Logits of the last position only.
	last := &matrix{rows: 1, cols: cfg.Hidden,
		data: x.data[(len(tokens)-1)*cfg.Hidden:]}
	logits, err := matmul(last, m.unembed, cnt)
	if err != nil {
		return nil, err
	}
	out := make([]float64, cfg.Vocab)
	copy(out, logits.data)
	return out, nil
}

// Generate decodes greedily for steps tokens after the prompt, using
// the KV cache when useCache is true or re-running the whole sequence
// each step otherwise. It returns the generated tokens.
func (m *Model) Generate(prompt []int, steps int, useCache bool, cnt *Counters) ([]int, error) {
	if steps < 1 {
		return nil, errors.New("refmodel: steps must be ≥ 1")
	}
	seq := append([]int{}, prompt...)
	var out []int
	var cache *KVCache
	if useCache {
		cache = m.NewKVCache()
	}
	feed := seq
	for s := 0; s < steps; s++ {
		var logits []float64
		var err error
		if useCache {
			logits, err = m.Forward(feed, cache, cnt)
		} else {
			logits, err = m.Forward(seq, nil, cnt)
		}
		if err != nil {
			return nil, err
		}
		next := argmax(logits)
		out = append(out, next)
		seq = append(seq, next)
		feed = []int{next}
	}
	return out, nil
}

func argmax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

package specdec

import (
	"testing"
	"testing/quick"

	"llmbench/internal/model"
)

func TestAcceptanceDecaysWithLength(t *testing.T) {
	c := Default
	if c.Acceptance(1024) >= c.Acceptance(128) {
		t.Error("acceptance must decay with sequence length")
	}
	if a := c.Acceptance(1 << 30); a < 0.05 || a > 0.99 {
		t.Errorf("acceptance must stay clamped, got %v", a)
	}
}

func TestExpectedTokensBounds(t *testing.T) {
	f := func(l uint16) bool {
		e := Default.ExpectedTokensPerPass(int(l) + 1)
		return e >= 1 && e <= float64(Default.Gamma)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSDHelps7BNotMixtral(t *testing.T) {
	// Fig. 4b: with a near-free draft, SD speeds up LLaMA-2-7B but
	// not Mixtral-8x7B.
	llama := model.MustGet("LLaMA-2-7B")
	mixtral := model.MustGet("Mixtral-8x7B")
	targetStep := 20e-3
	draftStep := 0.5e-3 // LLaMA-68M is ~100x smaller
	sLLaMA, err := Speedup(Default, targetStep, draftStep, llama, 256)
	if err != nil {
		t.Fatal(err)
	}
	sMixtral, err := Speedup(Default, targetStep, draftStep, mixtral, 256)
	if err != nil {
		t.Fatal(err)
	}
	if sLLaMA <= 1.0 {
		t.Errorf("SD must help LLaMA-2-7B at short length, speedup = %v", sLLaMA)
	}
	if sMixtral >= 1.0 {
		t.Errorf("SD must not help Mixtral-8x7B, speedup = %v", sMixtral)
	}
}

func TestSDBenefitShrinksWithLength(t *testing.T) {
	llama := model.MustGet("LLaMA-2-7B")
	short, _ := Speedup(Default, 20e-3, 0.5e-3, llama, 128)
	long, _ := Speedup(Default, 20e-3, 0.5e-3, llama, 1024)
	if long >= short {
		t.Errorf("SD benefit must shrink with length: short=%v long=%v", short, long)
	}
}

func TestVerifyCostFactorMoE(t *testing.T) {
	dense := VerifyCostFactor(model.MustGet("LLaMA-2-7B"), 4)
	moe := VerifyCostFactor(model.MustGet("Mixtral-8x7B"), 4)
	if moe <= dense {
		t.Errorf("MoE verification must cost more: dense=%v moe=%v", dense, moe)
	}
	if dense < 1 {
		t.Errorf("verify factor must be ≥ 1, got %v", dense)
	}
}

func TestSpeedupErrors(t *testing.T) {
	llama := model.MustGet("LLaMA-2-7B")
	if _, err := Speedup(Default, 0, 1e-3, llama, 128); err == nil {
		t.Error("zero target step must error")
	}
	bad := Default
	bad.Gamma = 0
	if _, err := Speedup(bad, 1e-3, 1e-4, llama, 128); err == nil {
		t.Error("gamma 0 must error")
	}
}

func TestExpensiveDraftKillsSpeedup(t *testing.T) {
	llama := model.MustGet("LLaMA-2-7B")
	s, err := Speedup(Default, 20e-3, 20e-3, llama, 128) // draft as slow as target
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1 {
		t.Errorf("an expensive draft must not speed decoding up, got %v", s)
	}
}

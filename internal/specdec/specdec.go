// Package specdec models speculative decoding (§IV-B5, Fig. 4b of the
// paper): a small draft model proposes γ tokens which the large target
// model verifies in one parallel pass.
//
// The model captures the two effects the paper reports: the benefit
// exists only when the draft is much cheaper than the target *and*
// acceptance stays high — so it helps LLaMA-2-7B but not Mixtral-8x7B,
// and it fades as sequence length grows.
package specdec

import (
	"errors"
	"math"

	"llmbench/internal/model"
)

// Config parameterises a speculative-decoding setup.
type Config struct {
	// Gamma is the number of draft tokens proposed per verification.
	Gamma int
	// BaseAcceptance is the per-token acceptance probability at a
	// short (128-token) context.
	BaseAcceptance float64
	// AcceptanceDecay is subtracted per doubling of sequence length
	// beyond 128 — long contexts are harder to guess (Fig. 4b shows
	// the SD benefit vanishing with length).
	AcceptanceDecay float64
}

// Default is the paper's setup: a LLaMA-68M draft with γ=4.
var Default = Config{Gamma: 4, BaseAcceptance: 0.70, AcceptanceDecay: 0.06}

// Acceptance returns the per-token acceptance rate at a given
// sequence length.
func (c Config) Acceptance(seqLen int) float64 {
	a := c.BaseAcceptance
	if seqLen > 128 {
		a -= c.AcceptanceDecay * math.Log2(float64(seqLen)/128)
	}
	if a < 0.05 {
		a = 0.05
	}
	if a > 0.99 {
		a = 0.99
	}
	return a
}

// ExpectedTokensPerPass is the expected number of tokens emitted per
// draft-then-verify round: 1 + α + α² + … + α^γ (the verified prefix
// plus the target's own corrected token).
func (c Config) ExpectedTokensPerPass(seqLen int) float64 {
	a := c.Acceptance(seqLen)
	return (1 - math.Pow(a, float64(c.Gamma)+1)) / (1 - a)
}

// VerifyCostFactor is how much more expensive a γ-token verification
// pass is than one ordinary decode step of the target. For dense
// models the pass is still one weight sweep (≈1); for MoE models the
// γ speculative tokens route to different experts, multiplying the
// expert weight traffic — this is why SD does not pay off for
// Mixtral-8x7B in Fig. 4b.
func VerifyCostFactor(target *model.Config, gamma int) float64 {
	if target.FFN != model.MoE {
		// Extra attention/activation work for γ tokens on top of the
		// dominant weight sweep.
		return 1 + 0.05*float64(gamma)
	}
	// Expected distinct experts touched by γ+1 tokens vs one token.
	one := target.ExpectedActiveExperts(1)
	many := target.ExpectedActiveExperts(gamma + 1)
	return many / one * (1 + 0.05*float64(gamma))
}

// Speedup computes the throughput ratio of speculative decoding over
// plain decoding given the per-step costs of the target and draft
// models (seconds per decode step at the operating batch size).
func Speedup(c Config, targetStep, draftStep float64, target *model.Config, seqLen int) (float64, error) {
	if targetStep <= 0 || draftStep < 0 {
		return 0, errors.New("specdec: non-positive step times")
	}
	if c.Gamma < 1 {
		return 0, errors.New("specdec: gamma must be ≥ 1")
	}
	tokens := c.ExpectedTokensPerPass(seqLen)
	passCost := float64(c.Gamma)*draftStep + targetStep*VerifyCostFactor(target, c.Gamma)
	plainCost := tokens * targetStep // time plain decoding needs for the same tokens
	return plainCost / passCost, nil
}

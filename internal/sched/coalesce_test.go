package sched

import (
	"reflect"
	"testing"

	"llmbench/internal/kvcache"
	"llmbench/internal/workload"
)

// serveBoth runs one trace through the coalesced and the stepped
// (reference) continuous scheduler with fresh, identical allocators
// and returns both Stats.
func serveBoth(t *testing.T, cfg Config, capGiB float64, reqs []workload.Request) (coalesced, stepped Stats) {
	t.Helper()
	cfg.Policy = Continuous
	cfg.Engine = testEngine(t)

	cfg.Stepped = false
	cfg.Alloc = testAlloc(t, capGiB)
	coalesced, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatalf("coalesced: %v", err)
	}
	cfg.Stepped = true
	cfg.Alloc = testAlloc(t, capGiB)
	stepped, err = Serve(cfg, reqs)
	if err != nil {
		t.Fatalf("stepped: %v", err)
	}
	return coalesced, stepped
}

func assertIdentical(t *testing.T, name string, coalesced, stepped Stats) {
	t.Helper()
	if !reflect.DeepEqual(coalesced, stepped) {
		t.Errorf("%s: coalesced Stats differ from stepped reference\ncoalesced: %+v\nstepped:   %+v",
			name, coalesced, stepped)
	}
}

// longTrace generates arrivals whose outputs are long enough that the
// coalesced path fast-forwards hundreds of iterations per window.
func longTrace(t *testing.T, n int, rate float64, outputMean int) []workload.Request {
	t.Helper()
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 23, Requests: n, RatePerSec: rate,
		InputMean: 256, OutputMean: outputMean, LengthJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestCoalescedMatchesStepped is the headline determinism guarantee:
// fast-forwarded serving produces byte-identical Stats — every
// timestamp, every aggregate — to the one-iteration-per-event path.
func TestCoalescedMatchesStepped(t *testing.T) {
	co, st := serveBoth(t, Config{MaxBatch: 16}, 20, longTrace(t, 40, 2, 512))
	assertIdentical(t, "long-output", co, st)
	if co.Completed != 40 {
		t.Errorf("completed %d/40", co.Completed)
	}
}

// TestCoalescedArrivalInsideWindow drives arrivals slow enough that
// most land in the middle of a running decode window: the window must
// be cut at the first iteration boundary at or after each arrival,
// exactly where the stepped path admits.
func TestCoalescedArrivalInsideWindow(t *testing.T) {
	co, st := serveBoth(t, Config{MaxBatch: 8}, 20, longTrace(t, 25, 0.4, 768))
	assertIdentical(t, "arrival-in-window", co, st)
	if co.Completed != 25 {
		t.Errorf("completed %d/25", co.Completed)
	}
}

// TestCoalescedPreemptionMidRange shrinks the KV pool until it runs
// dry inside would-be windows: the fast-forward must stop at the last
// iteration that fits and hand the OOM to the reference path's
// preemption machinery, reproducing its evictions exactly.
func TestCoalescedPreemptionMidRange(t *testing.T) {
	co, st := serveBoth(t, Config{MaxBatch: 8}, 0.6, longTrace(t, 16, 2, 640))
	assertIdentical(t, "preemption", co, st)
	if co.Preemptions == 0 {
		t.Fatal("workload must force preemptions inside fast-forward windows")
	}
	if co.Completed != 16 {
		t.Errorf("completed %d/16", co.Completed)
	}
}

// TestCoalescedChunkedPrefill interleaves Dynamic-SplitFuse prefill
// slices with decode windows: iterations carrying a prefill slice run
// stepped, the pure-decode gaps between them coalesce, and the fusion
// remains byte-identical.
func TestCoalescedChunkedPrefill(t *testing.T) {
	cfg := Config{MaxBatch: 12, ChunkedPrefill: true, PrefillChunk: 256}
	co, st := serveBoth(t, cfg, 20, longTrace(t, 30, 1.5, 384))
	assertIdentical(t, "chunked-prefill", co, st)
	if co.Completed != 30 {
		t.Errorf("completed %d/30", co.Completed)
	}
}

// TestCoalescedTinyCacheHeavyChurn combines everything: a tiny pool,
// a saturated queue (blocked admissions must not stall coalescing),
// and requeued preemption arrivals equal to the current clock.
func TestCoalescedTinyCacheHeavyChurn(t *testing.T) {
	co, st := serveBoth(t, Config{MaxBatch: 6}, 0.4, longTrace(t, 20, 4, 512))
	assertIdentical(t, "tiny-cache-churn", co, st)
	if co.Completed != 20 {
		t.Errorf("completed %d/20", co.Completed)
	}
}

// TestCoalesceWindowBounds exercises the window-sizing helper
// directly, proving fast-forwards actually form (the equivalence
// tests above would pass vacuously if every window collapsed to a
// stepped fallback) and land exactly on each state-change boundary.
func TestCoalesceWindowBounds(t *testing.T) {
	eng := testEngine(t)
	alloc := testAlloc(t, 20)
	ids := make([]kvcache.Seq, 0, 2)
	for _, tokens := range []int{300, 400} {
		seq, err := alloc.Alloc(tokens)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, seq)
	}

	// Unconstrained: the window is the full completion bound.
	w, err := CoalesceWindow(eng, alloc, ids, 2, 350, 100, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 100 {
		t.Fatalf("unconstrained window %d, want 100", len(w))
	}
	for i, c := range w {
		want, err := eng.DecodeStepSeconds(2, 350+i)
		if err != nil {
			t.Fatal(err)
		}
		if c != want {
			t.Fatalf("step %d cost %v, want memoised %v", i, c, want)
		}
	}

	// Arrival cut: the window must stop at the first step whose end
	// reaches the arrival.
	total := 0.0
	cut := 0
	for i, c := range w {
		total += c
		if cut == 0 && total >= w[0]*10.5 {
			cut = i + 1
		}
	}
	arr, err := CoalesceWindow(eng, alloc, ids, 2, 350, 100, 0, w[0]*10.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != cut {
		t.Errorf("arrival-cut window %d, want %d", len(arr), cut)
	}

	// Allocator cut: a pool with room for only a few more blocks bounds
	// the window at exactly MaxExtendSteps.
	tiny := testAlloc(t, 20)
	tinyIDs := make([]kvcache.Seq, 0, 2)
	for _, tokens := range []int{300, int(tiny.CapacityBytes()/tiny.BytesPerToken) - 300 - 3*16} {
		seq, err := tiny.Alloc(tokens)
		if err != nil {
			t.Fatal(err)
		}
		tinyIDs = append(tinyIDs, seq)
	}
	headroom := tiny.MaxExtendSteps(tinyIDs, 100)
	if headroom >= 100 || headroom < 2 {
		t.Fatalf("test setup: headroom %d, want a small window ≥ 2", headroom)
	}
	cutw, err := CoalesceWindow(eng, tiny, tinyIDs, 2, 350, 100, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cutw) != headroom {
		t.Errorf("allocator-cut window %d, want %d", len(cutw), headroom)
	}

	// Degenerate bounds fall back to stepped (empty window).
	for _, kMax := range []int{0, 1} {
		if w, err := CoalesceWindow(eng, alloc, ids, 2, 350, kMax, 0, -1); err != nil || len(w) != 0 {
			t.Errorf("kMax %d: window %d (err %v), want empty", kMax, len(w), err)
		}
	}
}

// TestUnadmittableRequestErrors guards the hang fix: a prompt larger
// than the whole KV pool must fail fast, not spin the scheduler
// forever (the cluster path already errored for the same state).
func TestUnadmittableRequestErrors(t *testing.T) {
	_, err := Serve(Config{
		Engine: testEngine(t), Policy: Continuous, MaxBatch: 4,
		Alloc: testAlloc(t, 0.01), // ~80 tokens of KV
	}, []workload.Request{{ID: 0, Input: 100000, Output: 8, Arrival: 0}})
	if err == nil {
		t.Fatal("an unadmittable request must error, not hang")
	}
}

func TestSummarize(t *testing.T) {
	done := []RequestStats{
		{ID: 0, Input: 10, Output: 5, Arrival: 0, FirstTok: 1, Finished: 2},
		{ID: 1, Input: 20, Output: 10, Arrival: 1, FirstTok: 3, Finished: 5},
	}
	s, err := Summarize(done, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 2 || s.Preemptions != 3 {
		t.Errorf("completed %d preemptions %d", s.Completed, s.Preemptions)
	}
	if want := (15.0 + 30.0) / 5.0; s.Throughput != want {
		t.Errorf("throughput %v want %v", s.Throughput, want)
	}
	if want := (2.0 + 4.0) / 2; s.MeanLatency != want {
		t.Errorf("mean latency %v want %v", s.MeanLatency, want)
	}
	if want := (1.0 + 2.0) / 2; s.MeanTTFT != want {
		t.Errorf("mean TTFT %v want %v", s.MeanTTFT, want)
	}
	if s.P99Latency != 2 { // index ⌊(n-1)·0.99⌋ = 0 of the sorted latencies
		t.Errorf("p99 %v want 2", s.P99Latency)
	}
	if _, err := Summarize(nil, 5, 0); err == nil {
		t.Error("empty done must fail")
	}
	if _, err := Summarize(done, 0, 0); err == nil {
		t.Error("zero makespan must fail")
	}
}

package sched

// Golden-reference equivalence for the static scheduler's kernel
// port: legacyServeStatic below is the hand-rolled loop Serve used
// before static batching became a des station policy, captured
// verbatim (including its pre-sorted-queue contract) so the
// byte-identity contract outlives the deletion.

import (
	"reflect"
	"sort"
	"testing"

	"llmbench/internal/kvcache"
	"llmbench/internal/workload"
)

// legacyServeStatic is the pre-kernel static scheduler, verbatim. It
// expects the queue sorted by arrival (stable), as Serve's Static
// branch did before the port.
func legacyServeStatic(cfg Config, queue []workload.Request) (Stats, error) {
	now := 0.0
	done := make([]RequestStats, 0, len(queue))
	for len(queue) > 0 {
		if queue[0].Arrival > now {
			now = queue[0].Arrival
		}
		// Collect up to MaxBatch arrived requests.
		batch := make([]workload.Request, 0, cfg.MaxBatch)
		seqs := make([]kvcache.Seq, 0, cfg.MaxBatch)
		rest := queue[:0]
		for _, r := range queue {
			if r.Arrival <= now && len(batch) < cfg.MaxBatch && cfg.Alloc.CanAlloc(r.Input+r.Output) {
				if seq, err := cfg.Alloc.Alloc(r.Input + r.Output); err == nil {
					batch = append(batch, r)
					seqs = append(seqs, seq)
					continue
				}
			}
			rest = append(rest, r)
		}
		queue = rest
		if len(batch) == 0 {
			// Allocator full with nothing running cannot happen (we
			// free below); this means the next request hasn't arrived.
			continue
		}
		// The static batch runs until its longest member finishes.
		maxIn, maxOut := 0, 0
		for _, r := range batch {
			if r.Input > maxIn {
				maxIn = r.Input
			}
			if r.Output > maxOut {
				maxOut = r.Output
			}
		}
		res, err := cfg.Engine.Run(workload.Spec{Batch: len(batch), Input: maxIn, Output: maxOut})
		if err != nil {
			return Stats{}, err
		}
		for i, r := range batch {
			cfg.Alloc.Free(seqs[i])
			done = append(done, RequestStats{
				ID: r.ID, Input: r.Input, Output: r.Output,
				Arrival: r.Arrival, Started: now,
				FirstTok: now + res.TTFTSeconds,
				Finished: now + res.E2ESeconds,
			})
		}
		now += res.E2ESeconds
	}
	return Summarize(done, now, 0)
}

func legacyStatic(t *testing.T, cfg Config, reqs []workload.Request) Stats {
	t.Helper()
	queue := make([]workload.Request, len(reqs))
	copy(queue, reqs)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })
	stats, err := legacyServeStatic(cfg, queue)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestStaticKernelMatchesLegacy: static-on-DES produces Stats
// byte-identical to the hand-rolled legacy loop — every percentile,
// the makespan, and the full per-request ledger in the same order —
// across load levels, a tiny KV pool that forces batch-admission
// skips, and a bursty heavy-tailed chat trace. The runs are also
// guaranteed preemption-free: static batching reserves each request's
// full context up front and never extends it.
func TestStaticKernelMatchesLegacy(t *testing.T) {
	e := testEngine(t)
	chat, err := workload.ChatTrace(workload.ChatTraceConfig{
		Seed: 31, Requests: 80, RatePerSec: 6, BurstFactor: 5, BurstLenS: 3,
		InputMedian: 256, OutputMedian: 96, Sigma: 0.8, MaxLen: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		reqs   []workload.Request
		capGiB float64
		batch  int
	}{
		{"light load", testTrace(t, 40, 2), 20, 16},
		{"heavy load", testTrace(t, 120, 12), 20, 16},
		{"tiny cache forces skips", testTrace(t, 30, 10), 0.7, 8},
		{"bursty chat trace", chat, 20, 16},
	}
	for _, c := range cases {
		want := legacyStatic(t, Config{Engine: e, MaxBatch: c.batch, Alloc: testAlloc(t, c.capGiB)}, c.reqs)
		got, err := Serve(Config{Engine: e, Policy: Static, MaxBatch: c.batch, Alloc: testAlloc(t, c.capGiB)}, c.reqs)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: kernel static Stats differ from legacy golden\n got: %+v\nwant: %+v",
				c.name, got, want)
		}
		if got.Preemptions != 0 {
			t.Errorf("%s: static batching preempted %d times; it must never preempt", c.name, got.Preemptions)
		}
		for _, r := range got.Requests {
			if r.Preempted != 0 {
				t.Errorf("%s: request %d records %d preemptions under static batching", c.name, r.ID, r.Preempted)
			}
		}
		if got.MaxIterationS != 0 {
			t.Errorf("%s: static batching has no iteration granularity, got MaxIterationS %v",
				c.name, got.MaxIterationS)
		}
	}
}

// TestStaticKernelSteppedIdentical: Stepped is a no-op for static
// stations — the batch run is one atomic event either way.
func TestStaticKernelSteppedIdentical(t *testing.T) {
	e := testEngine(t)
	reqs := testTrace(t, 60, 8)
	plain, err := Serve(Config{Engine: e, Policy: Static, MaxBatch: 16, Alloc: testAlloc(t, 20)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	stepped, err := Serve(Config{Engine: e, Policy: Static, MaxBatch: 16, Alloc: testAlloc(t, 20), Stepped: true}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, stepped) {
		t.Error("static Stats differ between coalesced and Stepped kernel modes")
	}
}

// TestStaticAllocatorDrained: every static batch frees its
// reservations at completion, so the pool is empty afterwards.
func TestStaticAllocatorDrained(t *testing.T) {
	e := testEngine(t)
	alloc := testAlloc(t, 20)
	if _, err := Serve(Config{Engine: e, Policy: Static, MaxBatch: 8, Alloc: alloc},
		testTrace(t, 25, 5)); err != nil {
		t.Fatal(err)
	}
	if alloc.Sequences() != 0 || alloc.UsedBytes() != 0 {
		t.Error("allocator must be empty after static serving completes")
	}
}

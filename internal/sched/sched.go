// Package sched simulates online serving with the two batch-scheduling
// strategies the paper contrasts (§IV-A1): Orca-style continuous
// batching — "new requests of variable length can be processed without
// waiting for the previous batch to be finished" — and traditional
// static batching, which drains a whole batch before admitting more.
//
// The simulation is mechanistic: requests arrive on a trace, occupy
// real KV-cache blocks from internal/kvcache, advance token by token
// at per-iteration costs priced by the engine, and are preempted when
// the cache runs out.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/workload"
)

// Policy selects the batching strategy.
type Policy int

const (
	// Continuous admits requests at iteration granularity (vLLM,
	// TRT-LLM, DS-MII).
	Continuous Policy = iota
	// Static collects a batch, runs it to completion, then repeats
	// (pre-Orca serving).
	Static
)

func (p Policy) String() string {
	if p == Continuous {
		return "continuous"
	}
	return "static"
}

// Config parameterises a serving simulation.
type Config struct {
	Engine   *engine.Engine
	Policy   Policy
	MaxBatch int // concurrency cap per iteration
	// Alloc is the KV allocator used for admission control and
	// preemption. Required.
	Alloc kvcache.Allocator

	// ChunkedPrefill enables Dynamic-SplitFuse-style scheduling
	// (DS-MII, §V-3): prompts are prefilled in PrefillChunk-token
	// slices fused into decode iterations, so running requests keep
	// generating instead of stalling behind a long admission prefill.
	ChunkedPrefill bool
	// PrefillChunk is the slice size in tokens (default 512).
	PrefillChunk int
}

// RequestStats records one request's lifecycle.
type RequestStats struct {
	ID        int
	Input     int
	Output    int
	Arrival   float64
	Started   float64 // when prefill began
	FirstTok  float64 // when the first output token appeared
	Finished  float64
	Preempted int // times this request was evicted and restarted
}

// Latency is the request's end-to-end time.
func (r RequestStats) Latency() float64 { return r.Finished - r.Arrival }

// QueueDelay is the time spent waiting before prefill.
func (r RequestStats) QueueDelay() float64 { return r.Started - r.Arrival }

// Stats summarises a serving run.
type Stats struct {
	Completed   int
	MakespanS   float64
	Throughput  float64 // total (in+out) tokens per second, Eq. (2) spirit
	MeanLatency float64
	P99Latency  float64
	MeanTTFT    float64
	Preemptions int
	// MaxIterationS is the longest single scheduler iteration — the
	// worst token-level stall a running request experienced. Chunked
	// prefill exists to bound it (§V-3).
	MaxIterationS float64
	Requests      []RequestStats
}

type running struct {
	req            workload.Request
	generated      int
	pendingPrefill int // prompt tokens not yet prefilled (chunked mode)
	stats          *RequestStats
}

// Serve runs the trace to completion and returns statistics.
func Serve(cfg Config, reqs []workload.Request) (Stats, error) {
	if cfg.Engine == nil || cfg.Alloc == nil {
		return Stats{}, errors.New("sched: nil engine or allocator")
	}
	if cfg.MaxBatch < 1 {
		return Stats{}, errors.New("sched: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return Stats{}, errors.New("sched: empty trace")
	}
	queue := make([]workload.Request, len(reqs))
	copy(queue, reqs)
	sort.Slice(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	switch cfg.Policy {
	case Continuous:
		return serveContinuous(cfg, queue)
	case Static:
		return serveStatic(cfg, queue)
	}
	return Stats{}, fmt.Errorf("sched: unknown policy %d", cfg.Policy)
}

func serveContinuous(cfg Config, queue []workload.Request) (Stats, error) {
	now := 0.0
	var run []*running
	done := make([]RequestStats, 0, len(queue))
	preemptions := 0
	maxIter := 0.0

	for len(queue) > 0 || len(run) > 0 {
		// Idle: jump to the next arrival.
		if len(run) == 0 && len(queue) > 0 && queue[0].Arrival > now {
			now = queue[0].Arrival
		}
		// Admit arrived requests while capacity remains.
		var admitted []*running
		for len(queue) > 0 && queue[0].Arrival <= now && len(run)+len(admitted) < cfg.MaxBatch {
			req := queue[0]
			if !cfg.Alloc.CanAlloc(req.Input) {
				break
			}
			if err := cfg.Alloc.Alloc(req.ID, req.Input); err != nil {
				break
			}
			queue = queue[1:]
			admitted = append(admitted, &running{
				req: req,
				stats: &RequestStats{
					ID: req.ID, Input: req.Input, Output: req.Output,
					Arrival: req.Arrival, Started: now,
				},
			})
		}
		if len(admitted) > 0 {
			if cfg.ChunkedPrefill {
				// Prompts enter the prefill queue; their tokens are
				// processed in slices fused with decode iterations.
				for _, a := range admitted {
					a.pendingPrefill = a.req.Input
				}
			} else {
				// Charge one batched prefill for the admitted prompts,
				// stalling the running set (the non-SplitFuse cost).
				in := 0
				for _, a := range admitted {
					in += a.req.Input
				}
				pf, err := cfg.Engine.PrefillSeconds(len(admitted), in/len(admitted))
				if err != nil {
					return Stats{}, err
				}
				if len(run) > 0 && pf > maxIter {
					maxIter = pf // running requests stalled this long
				}
				now += pf
				for _, a := range admitted {
					a.stats.FirstTok = now
					a.generated = 1 // prefill emits the first token
				}
			}
			run = append(run, admitted...)
		}
		if len(run) == 0 {
			continue
		}
		// One iteration: a decode step for the generating set, fused
		// with at most one prefill slice in chunked mode.
		var decoding []*running
		var prefilling *running
		for _, r := range run {
			if r.pendingPrefill > 0 {
				if prefilling == nil {
					prefilling = r
				}
			} else {
				decoding = append(decoding, r)
			}
		}
		var step float64
		if len(decoding) > 0 {
			ctxSum := 0
			for _, r := range decoding {
				ctxSum += r.req.Input + r.generated
			}
			t, err := cfg.Engine.DecodeStepSeconds(len(decoding), ctxSum/len(decoding))
			if err != nil {
				return Stats{}, err
			}
			step += t
		}
		if prefilling != nil {
			chunkTokens := cfg.PrefillChunk
			if chunkTokens <= 0 {
				chunkTokens = 512
			}
			if chunkTokens > prefilling.pendingPrefill {
				chunkTokens = prefilling.pendingPrefill
			}
			t, err := cfg.Engine.PrefillSeconds(1, chunkTokens)
			if err != nil {
				return Stats{}, err
			}
			step += t
			prefilling.pendingPrefill -= chunkTokens
			if prefilling.pendingPrefill == 0 {
				prefilling.stats.FirstTok = now + step
				prefilling.generated = 1
			}
		}
		if len(decoding) > 0 && step > maxIter {
			maxIter = step
		}
		now += step
		next := run[:0]
		for _, r := range run {
			if r.pendingPrefill > 0 || (r == prefilling && r.generated == 1) {
				// Still prefilling, or just emitted its first token
				// this iteration — no decode advance yet.
				next = append(next, r)
				continue
			}
			r.generated++
			if err := cfg.Alloc.Extend(r.req.ID, r.req.Input+r.generated); err != nil {
				if errors.Is(err, kvcache.ErrOutOfMemory) {
					// Preempt: evict and requeue (recompute later).
					cfg.Alloc.Free(r.req.ID)
					preemptions++
					r.stats.Preempted++
					requeued := r.req
					requeued.Arrival = now
					queue = insertByArrival(queue, requeued)
					continue
				}
				return Stats{}, err
			}
			if r.generated >= r.req.Output {
				cfg.Alloc.Free(r.req.ID)
				r.stats.Finished = now
				done = append(done, *r.stats)
				continue
			}
			next = append(next, r)
		}
		run = next
	}
	stats, err := summarize(done, now, preemptions)
	if err != nil {
		return Stats{}, err
	}
	stats.MaxIterationS = maxIter
	return stats, nil
}

func serveStatic(cfg Config, queue []workload.Request) (Stats, error) {
	now := 0.0
	done := make([]RequestStats, 0, len(queue))
	for len(queue) > 0 {
		if queue[0].Arrival > now {
			now = queue[0].Arrival
		}
		// Collect up to MaxBatch arrived requests.
		batch := make([]workload.Request, 0, cfg.MaxBatch)
		rest := queue[:0]
		for _, r := range queue {
			if r.Arrival <= now && len(batch) < cfg.MaxBatch && cfg.Alloc.CanAlloc(r.Input+r.Output) {
				if err := cfg.Alloc.Alloc(r.ID, r.Input+r.Output); err == nil {
					batch = append(batch, r)
					continue
				}
			}
			rest = append(rest, r)
		}
		queue = rest
		if len(batch) == 0 {
			// Allocator full with nothing running cannot happen (we
			// free below); this means the next request hasn't arrived.
			continue
		}
		// The static batch runs until its longest member finishes.
		maxIn, maxOut := 0, 0
		for _, r := range batch {
			if r.Input > maxIn {
				maxIn = r.Input
			}
			if r.Output > maxOut {
				maxOut = r.Output
			}
		}
		res, err := cfg.Engine.Run(workload.Spec{Batch: len(batch), Input: maxIn, Output: maxOut})
		if err != nil {
			return Stats{}, err
		}
		for _, r := range batch {
			cfg.Alloc.Free(r.ID)
			done = append(done, RequestStats{
				ID: r.ID, Input: r.Input, Output: r.Output,
				Arrival: r.Arrival, Started: now,
				FirstTok: now + res.TTFTSeconds,
				Finished: now + res.E2ESeconds,
			})
		}
		now += res.E2ESeconds
	}
	return summarize(done, now, 0)
}

func insertByArrival(queue []workload.Request, r workload.Request) []workload.Request {
	i := sort.Search(len(queue), func(i int) bool { return queue[i].Arrival > r.Arrival })
	queue = append(queue, workload.Request{})
	copy(queue[i+1:], queue[i:])
	queue[i] = r
	return queue
}

func summarize(done []RequestStats, makespan float64, preemptions int) (Stats, error) {
	if len(done) == 0 {
		return Stats{}, errors.New("sched: no requests completed")
	}
	var tokens, latSum, ttftSum float64
	lats := make([]float64, len(done))
	for i, r := range done {
		lats[i] = r.Latency()
		latSum += lats[i]
		ttftSum += r.FirstTok - r.Arrival
		tokens += float64(r.Input + r.Output)
	}
	sort.Float64s(lats)
	if makespan <= 0 {
		return Stats{}, errors.New("sched: zero makespan")
	}
	return Stats{
		Completed:   len(done),
		MakespanS:   makespan,
		Throughput:  tokens / makespan,
		MeanLatency: latSum / float64(len(done)),
		P99Latency:  lats[int(float64(len(lats)-1)*0.99)],
		MeanTTFT:    ttftSum / float64(len(done)),
		Preemptions: preemptions,
		Requests:    done,
	}, nil
}

// Package sched simulates online serving with the two batch-scheduling
// strategies the paper contrasts (§IV-A1): Orca-style continuous
// batching — "new requests of variable length can be processed without
// waiting for the previous batch to be finished" — and traditional
// static batching, which drains a whole batch before admitting more.
//
// The simulation is mechanistic: requests arrive on a trace, occupy
// real KV-cache blocks from internal/kvcache, advance token by token
// at per-iteration costs priced by the engine, and are preempted when
// the cache runs out.
//
// Both schedulers are policy layers over the shared discrete-event
// kernel (internal/des): sched contributes the admission policy —
// iteration-level FIFO admission with chunked prefill and
// evict-and-requeue on KV pressure for Continuous, batch-boundary
// collect-and-run-to-completion for Static (des.Config.Static) —
// while the kernel owns the event loop, the coalesced-window advance,
// and the determinism contract — coalesced, stepped, serial, and
// parallel runs produce byte-identical Stats. Static sharing the
// kernel is what lets the cluster router and autoscaler
// (internal/cluster) drive static replicas exactly like continuous
// ones. See the internal/des package documentation for the event
// model.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"llmbench/internal/des"
	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/workload"
)

// Policy selects the batching strategy.
type Policy int

const (
	// Continuous admits requests at iteration granularity (vLLM,
	// TRT-LLM, DS-MII).
	Continuous Policy = iota
	// Static collects a batch, runs it to completion, then repeats
	// (pre-Orca serving).
	Static
)

func (p Policy) String() string {
	if p == Continuous {
		return "continuous"
	}
	return "static"
}

// Config parameterises a serving simulation.
type Config struct {
	Engine   *engine.Engine
	Policy   Policy
	MaxBatch int // concurrency cap per iteration
	// Alloc is the KV allocator used for admission control and
	// preemption. Required.
	Alloc kvcache.Allocator

	// ChunkedPrefill enables Dynamic-SplitFuse-style scheduling
	// (DS-MII, §V-3): prompts are prefilled in PrefillChunk-token
	// slices fused into decode iterations, so running requests keep
	// generating instead of stalling behind a long admission prefill.
	ChunkedPrefill bool
	// PrefillChunk is the slice size in tokens (default 512).
	PrefillChunk int

	// Stepped disables iteration coalescing, advancing the simulation
	// one decode iteration per scheduler event — the O(output tokens)
	// reference path the coalesced fast-forward is tested against.
	// Output is byte-identical either way; Stepped only costs time.
	Stepped bool

	// Streaming aggregates completions incrementally through a
	// StreamAggregator instead of retaining the per-request ledger:
	// O(1) stats memory for million-request traces. Non-percentile
	// aggregates are byte-identical to the exact path; percentiles are
	// P² sketch estimates (see the accuracy contract in stream.go) and
	// Stats.Requests is nil.
	Streaming bool

	// Scratch, when non-nil, recycles kernel slices and station shells
	// (request free lists included) across runs — see des.Scratch.
	// Results are byte-identical with or without it; sweeps pass one
	// per worker so per-point setup stops allocating.
	Scratch *des.Scratch
}

// RequestStats records one request's lifecycle. It is the kernel's
// ledger entry type (internal/des), re-exported for API stability.
type RequestStats = des.RequestStats

// Stats summarises a serving run. All percentile fields use the
// lower-index convention: the p-quantile of n sorted samples is the
// value at index int((n-1)*p), with no interpolation between ranks.
// The streaming aggregator (stream.go) estimates the same quantiles
// with P² sketches and is tested against this convention.
type Stats struct {
	Completed   int
	MakespanS   float64
	Throughput  float64 // total (in+out) tokens per second, Eq. (2) spirit
	MeanLatency float64
	P50Latency  float64
	P95Latency  float64
	P99Latency  float64
	MeanTTFT    float64
	// Queue-delay percentiles: time spent waiting before prefill —
	// the admission pressure the latency percentiles alone hide.
	MeanQueueDelay float64
	P50QueueDelay  float64
	P95QueueDelay  float64
	P99QueueDelay  float64
	// MeanTransferDelay is the mean prefill→decode kv-transfer delay
	// per completed request — the interconnect time disaggregated
	// topologies pay that aggregated fleets do not. Always zero for
	// aggregated runs.
	MeanTransferDelay float64
	Preemptions       int
	// MaxIterationS is the longest single scheduler iteration — the
	// worst token-level stall a running request experienced. Chunked
	// prefill exists to bound it (§V-3).
	MaxIterationS float64
	// CacheHitRate is the fraction of admitted prompt tokens served
	// from the prefix cache (kvcache.PrefillDiscounter) instead of
	// prefilled — the capacity multiplier shared system prompts buy.
	// Zero on plain allocators.
	CacheHitRate float64
	Requests     []RequestStats
}

// Serve runs the trace to completion and returns statistics.
func Serve(cfg Config, reqs []workload.Request) (Stats, error) {
	if cfg.Engine == nil || cfg.Alloc == nil {
		return Stats{}, errors.New("sched: nil engine or allocator")
	}
	if cfg.MaxBatch < 1 {
		return Stats{}, errors.New("sched: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return Stats{}, errors.New("sched: empty trace")
	}
	if cfg.Policy != Continuous && cfg.Policy != Static {
		return Stats{}, fmt.Errorf("sched: unknown policy %d", cfg.Policy)
	}
	// Both policies are station policies on the shared kernel: the
	// continuous scheduler contributes preemptive iteration-level
	// admission, the static one batch-boundary admission with
	// run-to-completion windows (des.Config.Static).
	k := des.New(des.Config{
		MaxBatch:       cfg.MaxBatch,
		ChunkedPrefill: cfg.ChunkedPrefill,
		PrefillChunk:   cfg.PrefillChunk,
		Static:         cfg.Policy == Static,
		Preemptive:     cfg.Policy == Continuous,
		Stepped:        cfg.Stepped,
	})
	k.Reuse(cfg.Scratch)
	defer k.Release()
	k.NewStation(cfg.Engine, cfg.Alloc)
	var agg Aggregator
	if cfg.Streaming {
		stream := NewStreamAggregator()
		agg = stream
		k.Sink = stream.Observe
	}
	res, err := k.Run(reqs)
	if err != nil {
		return Stats{}, fmt.Errorf("sched: %w", err)
	}
	var stats Stats
	if cfg.Streaming {
		stats, err = agg.Stats(res.MakespanS, res.Preemptions)
	} else {
		stats, err = Summarize(res.Finished, res.MakespanS, res.Preemptions)
	}
	if err != nil {
		return Stats{}, err
	}
	stats.MaxIterationS = res.MaxIterationS
	if res.PromptTokens > 0 {
		stats.CacheHitRate = float64(res.PrefixHitTokens) / float64(res.PromptTokens)
	}
	return stats, nil
}

// CoalesceWindow re-exports the kernel's window-sizing primitive
// (internal/des); see des.CoalesceWindow for the contract (the result
// is a shared immutable snapshot view, not a caller-owned buffer).
// Retained here because the coalescing machinery grew up in this
// package.
func CoalesceWindow(eng *engine.Engine, alloc kvcache.Allocator, seqs []kvcache.Seq,
	batch, ctx0, kMax int, now, nextArrival float64) ([]float64, error) {
	return des.CoalesceWindow(eng, alloc, seqs, batch, ctx0, kMax, now, nextArrival)
}

// Summarize aggregates completed request lifecycles into Stats. It is
// the single summary implementation behind both the single-replica
// scheduler and the cluster simulators (internal/cluster).
func Summarize(done []RequestStats, makespan float64, preemptions int) (Stats, error) {
	// Validate before allocating or sorting: a bad makespan used to be
	// caught only after two O(n log n) sorts of day-scale slices. The
	// negated comparison also rejects NaN, which `makespan <= 0` let
	// through.
	if len(done) == 0 {
		return Stats{}, errors.New("sched: no requests completed")
	}
	if !(makespan > 0) {
		return Stats{}, errors.New("sched: zero makespan")
	}
	var tokens, latSum, ttftSum, qdSum, xferSum float64
	lats := make([]float64, len(done))
	qds := make([]float64, len(done))
	for i, r := range done {
		lats[i] = r.Latency()
		latSum += lats[i]
		qds[i] = r.QueueDelay()
		qdSum += qds[i]
		ttftSum += r.FirstTok - r.Arrival
		xferSum += r.TransferS
		tokens += float64(r.Input + r.Output)
	}
	sort.Float64s(lats)
	sort.Float64s(qds)
	return Stats{
		Completed:         len(done),
		MakespanS:         makespan,
		Throughput:        tokens / makespan,
		MeanLatency:       latSum / float64(len(done)),
		P50Latency:        percentile(lats, 0.50),
		P95Latency:        percentile(lats, 0.95),
		P99Latency:        percentile(lats, 0.99),
		MeanTTFT:          ttftSum / float64(len(done)),
		MeanQueueDelay:    qdSum / float64(len(done)),
		P50QueueDelay:     percentile(qds, 0.50),
		P95QueueDelay:     percentile(qds, 0.95),
		P99QueueDelay:     percentile(qds, 0.99),
		MeanTransferDelay: xferSum / float64(len(done)),
		Preemptions:       preemptions,
		Requests:          done,
	}, nil
}

// percentile reads the p-quantile of a sorted sample with the
// lower-index convention the original P99 used, so existing numbers
// are unchanged.
func percentile(sorted []float64, p float64) float64 {
	return sorted[int(float64(len(sorted)-1)*p)]
}

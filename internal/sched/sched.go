// Package sched simulates online serving with the two batch-scheduling
// strategies the paper contrasts (§IV-A1): Orca-style continuous
// batching — "new requests of variable length can be processed without
// waiting for the previous batch to be finished" — and traditional
// static batching, which drains a whole batch before admitting more.
//
// The simulation is mechanistic: requests arrive on a trace, occupy
// real KV-cache blocks from internal/kvcache, advance token by token
// at per-iteration costs priced by the engine, and are preempted when
// the cache runs out.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/workload"
)

// Iteration coalescing: between two scheduler state changes —
// an arrival, a prefill slice, a completion, or a KV-pressure
// boundary — every decode iteration is identical except that each
// running context is one token longer, so the continuous scheduler
// fast-forwards whole runs of them in a single event instead of one
// event per output token. The fast-forward is exact, not an
// approximation: step costs come from the engine's memoised
// step-cost table (engine.DecodeStepCost), the clock advances by
// adding each step's cost in order (floating-point summation order is
// part of the contract), and the window never crosses a state change
// (bounded by the earliest completion, the next arrival, and
// kvcache.MaxExtendSteps headroom), so coalesced Stats are
// byte-identical to the one-event-per-token reference path
// (Config.Stepped), which the equivalence tests assert.

// Policy selects the batching strategy.
type Policy int

const (
	// Continuous admits requests at iteration granularity (vLLM,
	// TRT-LLM, DS-MII).
	Continuous Policy = iota
	// Static collects a batch, runs it to completion, then repeats
	// (pre-Orca serving).
	Static
)

func (p Policy) String() string {
	if p == Continuous {
		return "continuous"
	}
	return "static"
}

// Config parameterises a serving simulation.
type Config struct {
	Engine   *engine.Engine
	Policy   Policy
	MaxBatch int // concurrency cap per iteration
	// Alloc is the KV allocator used for admission control and
	// preemption. Required.
	Alloc kvcache.Allocator

	// ChunkedPrefill enables Dynamic-SplitFuse-style scheduling
	// (DS-MII, §V-3): prompts are prefilled in PrefillChunk-token
	// slices fused into decode iterations, so running requests keep
	// generating instead of stalling behind a long admission prefill.
	ChunkedPrefill bool
	// PrefillChunk is the slice size in tokens (default 512).
	PrefillChunk int

	// Stepped disables iteration coalescing, advancing the simulation
	// one decode iteration per scheduler event — the O(output tokens)
	// reference path the coalesced fast-forward is tested against.
	// Output is byte-identical either way; Stepped only costs time.
	Stepped bool
}

// RequestStats records one request's lifecycle.
type RequestStats struct {
	ID        int
	Input     int
	Output    int
	Arrival   float64
	Started   float64 // when prefill began
	FirstTok  float64 // when the first output token appeared
	Finished  float64
	Preempted int // times this request was evicted and restarted
}

// Latency is the request's end-to-end time.
func (r RequestStats) Latency() float64 { return r.Finished - r.Arrival }

// QueueDelay is the time spent waiting before prefill.
func (r RequestStats) QueueDelay() float64 { return r.Started - r.Arrival }

// Stats summarises a serving run.
type Stats struct {
	Completed   int
	MakespanS   float64
	Throughput  float64 // total (in+out) tokens per second, Eq. (2) spirit
	MeanLatency float64
	P99Latency  float64
	MeanTTFT    float64
	Preemptions int
	// MaxIterationS is the longest single scheduler iteration — the
	// worst token-level stall a running request experienced. Chunked
	// prefill exists to bound it (§V-3).
	MaxIterationS float64
	Requests      []RequestStats
}

type running struct {
	req            workload.Request
	generated      int
	pendingPrefill int // prompt tokens not yet prefilled (chunked mode)
	stats          *RequestStats
}

// Serve runs the trace to completion and returns statistics.
func Serve(cfg Config, reqs []workload.Request) (Stats, error) {
	if cfg.Engine == nil || cfg.Alloc == nil {
		return Stats{}, errors.New("sched: nil engine or allocator")
	}
	if cfg.MaxBatch < 1 {
		return Stats{}, errors.New("sched: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return Stats{}, errors.New("sched: empty trace")
	}
	queue := make([]workload.Request, len(reqs))
	copy(queue, reqs)
	sort.Slice(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	switch cfg.Policy {
	case Continuous:
		return serveContinuous(cfg, queue)
	case Static:
		return serveStatic(cfg, queue)
	}
	return Stats{}, fmt.Errorf("sched: unknown policy %d", cfg.Policy)
}

func serveContinuous(cfg Config, queue []workload.Request) (Stats, error) {
	now := 0.0
	var run []*running
	done := make([]RequestStats, 0, len(queue))
	preemptions := 0
	maxIter := 0.0
	var window []float64 // reused per-step cost buffer for fast-forwards
	var ids []int        // reused sequence-id buffer

	for len(queue) > 0 || len(run) > 0 {
		// Idle: jump to the next arrival.
		if len(run) == 0 && len(queue) > 0 && queue[0].Arrival > now {
			now = queue[0].Arrival
		}
		// Admit arrived requests while capacity remains.
		var admitted []*running
		for len(queue) > 0 && queue[0].Arrival <= now && len(run)+len(admitted) < cfg.MaxBatch {
			req := queue[0]
			if !cfg.Alloc.CanAlloc(req.Input) {
				break
			}
			if err := cfg.Alloc.Alloc(req.ID, req.Input); err != nil {
				break
			}
			queue = queue[1:]
			admitted = append(admitted, &running{
				req: req,
				stats: &RequestStats{
					ID: req.ID, Input: req.Input, Output: req.Output,
					Arrival: req.Arrival, Started: now,
				},
			})
		}
		if len(admitted) > 0 {
			if cfg.ChunkedPrefill {
				// Prompts enter the prefill queue; their tokens are
				// processed in slices fused with decode iterations.
				for _, a := range admitted {
					a.pendingPrefill = a.req.Input
				}
			} else {
				// Charge one batched prefill for the admitted prompts,
				// stalling the running set (the non-SplitFuse cost).
				in := 0
				for _, a := range admitted {
					in += a.req.Input
				}
				pf, err := cfg.Engine.PrefillSeconds(len(admitted), in/len(admitted))
				if err != nil {
					return Stats{}, err
				}
				if len(run) > 0 && pf > maxIter {
					maxIter = pf // running requests stalled this long
				}
				now += pf
				for _, a := range admitted {
					a.stats.FirstTok = now
					a.generated = 1 // prefill emits the first token
				}
			}
			run = append(run, admitted...)
		}
		if len(run) == 0 {
			if len(queue) > 0 && queue[0].Arrival <= now {
				// Nothing is running, nothing was admitted, and the head
				// has arrived: no future completion can free capacity, so
				// it will never fit. Erroring matches the cluster
				// scheduler; before this the loop spun forever.
				return Stats{}, fmt.Errorf(
					"sched: request %d (input %d) can never be admitted (KV cache too small)",
					queue[0].ID, queue[0].Input)
			}
			continue
		}
		// One iteration: a decode step for the generating set, fused
		// with at most one prefill slice in chunked mode.
		var decoding []*running
		var prefilling *running
		for _, r := range run {
			if r.pendingPrefill > 0 {
				if prefilling == nil {
					prefilling = r
				}
			} else {
				decoding = append(decoding, r)
			}
		}
		// Coalescing fast path: a pure-decode state (no chunked prefill
		// in flight) whose next iterations are identical except for
		// context growth. Fast-forward up to the next state change in
		// one pass; admission cannot unblock mid-window (free blocks
		// only shrink and the running set only shrinks at completions,
		// which bound the window), so an already-arrived but blocked
		// queue head does not cut it — only a future arrival does.
		if !cfg.Stepped && prefilling == nil && len(decoding) == len(run) && len(run) > 0 {
			// Every member must be established — generated ≥ 2, so its
			// allocator reservation already equals Input+generated and
			// each further step extends it by exactly one token, the
			// trajectory MaxExtendSteps prices. A fresh request (one
			// decode step after prefill) jumps two tokens on its first
			// extend; its first iteration runs stepped.
			kMax := run[0].req.Output - run[0].generated
			ctxSum := 0
			ids = ids[:0]
			for _, r := range run {
				if r.generated < 2 {
					kMax = 0
					break
				}
				if rem := r.req.Output - r.generated; rem < kMax {
					kMax = rem
				}
				ctxSum += r.req.Input + r.generated
				ids = append(ids, r.req.ID)
			}
			nextArrival := -1.0
			if len(queue) > 0 && queue[0].Arrival > now {
				nextArrival = queue[0].Arrival
			}
			var err error
			window, err = CoalesceWindow(cfg.Engine, cfg.Alloc, ids,
				len(run), ctxSum/len(run), kMax, now, nextArrival, window)
			if err != nil {
				return Stats{}, err
			}
			if k := len(window); k > 0 {
				for _, c := range window {
					if c > maxIter {
						maxIter = c
					}
					now += c
				}
				// One batched Extend to each final context: headroom was
				// verified for the whole window, so none of these can OOM,
				// and the allocator lands in the same state as k
				// single-token extends. Requests extend before the
				// completion check, exactly as the stepped path does.
				next := run[:0]
				for _, r := range run {
					r.generated += k
					if err := cfg.Alloc.Extend(r.req.ID, r.req.Input+r.generated); err != nil {
						return Stats{}, err
					}
					if r.generated >= r.req.Output {
						cfg.Alloc.Free(r.req.ID)
						r.stats.Finished = now
						done = append(done, *r.stats)
						continue
					}
					next = append(next, r)
				}
				run = next
				continue
			}
		}
		var step float64
		if len(decoding) > 0 {
			ctxSum := 0
			for _, r := range decoding {
				ctxSum += r.req.Input + r.generated
			}
			t, err := cfg.Engine.DecodeStepSeconds(len(decoding), ctxSum/len(decoding))
			if err != nil {
				return Stats{}, err
			}
			step += t
		}
		if prefilling != nil {
			chunkTokens := cfg.PrefillChunk
			if chunkTokens <= 0 {
				chunkTokens = 512
			}
			if chunkTokens > prefilling.pendingPrefill {
				chunkTokens = prefilling.pendingPrefill
			}
			t, err := cfg.Engine.PrefillSeconds(1, chunkTokens)
			if err != nil {
				return Stats{}, err
			}
			step += t
			prefilling.pendingPrefill -= chunkTokens
			if prefilling.pendingPrefill == 0 {
				prefilling.stats.FirstTok = now + step
				prefilling.generated = 1
			}
		}
		if len(decoding) > 0 && step > maxIter {
			maxIter = step
		}
		now += step
		next := run[:0]
		for _, r := range run {
			if r.pendingPrefill > 0 || (r == prefilling && r.generated == 1) {
				// Still prefilling, or just emitted its first token
				// this iteration — no decode advance yet.
				next = append(next, r)
				continue
			}
			r.generated++
			if err := cfg.Alloc.Extend(r.req.ID, r.req.Input+r.generated); err != nil {
				if errors.Is(err, kvcache.ErrOutOfMemory) {
					// Preempt: evict and requeue (recompute later).
					cfg.Alloc.Free(r.req.ID)
					preemptions++
					r.stats.Preempted++
					requeued := r.req
					requeued.Arrival = now
					queue = insertByArrival(queue, requeued)
					continue
				}
				return Stats{}, err
			}
			if r.generated >= r.req.Output {
				cfg.Alloc.Free(r.req.ID)
				r.stats.Finished = now
				done = append(done, *r.stats)
				continue
			}
			next = append(next, r)
		}
		run = next
	}
	stats, err := Summarize(done, now, preemptions)
	if err != nil {
		return Stats{}, err
	}
	stats.MaxIterationS = maxIter
	return stats, nil
}

func serveStatic(cfg Config, queue []workload.Request) (Stats, error) {
	now := 0.0
	done := make([]RequestStats, 0, len(queue))
	for len(queue) > 0 {
		if queue[0].Arrival > now {
			now = queue[0].Arrival
		}
		// Collect up to MaxBatch arrived requests.
		batch := make([]workload.Request, 0, cfg.MaxBatch)
		rest := queue[:0]
		for _, r := range queue {
			if r.Arrival <= now && len(batch) < cfg.MaxBatch && cfg.Alloc.CanAlloc(r.Input+r.Output) {
				if err := cfg.Alloc.Alloc(r.ID, r.Input+r.Output); err == nil {
					batch = append(batch, r)
					continue
				}
			}
			rest = append(rest, r)
		}
		queue = rest
		if len(batch) == 0 {
			// Allocator full with nothing running cannot happen (we
			// free below); this means the next request hasn't arrived.
			continue
		}
		// The static batch runs until its longest member finishes.
		maxIn, maxOut := 0, 0
		for _, r := range batch {
			if r.Input > maxIn {
				maxIn = r.Input
			}
			if r.Output > maxOut {
				maxOut = r.Output
			}
		}
		res, err := cfg.Engine.Run(workload.Spec{Batch: len(batch), Input: maxIn, Output: maxOut})
		if err != nil {
			return Stats{}, err
		}
		for _, r := range batch {
			cfg.Alloc.Free(r.ID)
			done = append(done, RequestStats{
				ID: r.ID, Input: r.Input, Output: r.Output,
				Arrival: r.Arrival, Started: now,
				FirstTok: now + res.TTFTSeconds,
				Finished: now + res.E2ESeconds,
			})
		}
		now += res.E2ESeconds
	}
	return Summarize(done, now, 0)
}

// CoalesceWindow bounds and prices one coalesced run of identical
// decode iterations: batch sequences whose mean context starts at
// ctx0, each growing one token per step. kMax must already be bounded
// by the earliest completion in the batch; the allocator bound
// (kvcache.MaxExtendSteps over seqIDs) and the next-arrival cut are
// applied here. nextArrival < 0 means no future arrival is pending.
//
// The per-step costs are appended to buf (pass the previous return
// value to reuse its storage) and returned; an empty result means the
// state does not admit a fast-forward of at least one full iteration
// beyond the current one, and the caller must fall back to its
// one-step reference path (which also handles preemption). The caller
// advances its clock by adding the returned costs one at a time, in
// order — that keeps coalesced time byte-identical to stepped time.
//
// Shared by serveContinuous, cluster.Serve, and cluster.ServeAutoscale.
func CoalesceWindow(eng *engine.Engine, alloc kvcache.Allocator, seqIDs []int,
	batch, ctx0, kMax int, now, nextArrival float64, buf []float64) ([]float64, error) {
	buf = buf[:0]
	if kMax > 1 {
		if k := alloc.MaxExtendSteps(seqIDs, kMax); k < kMax {
			// The KV pool runs dry inside the window: fast-forward to the
			// last iteration that fits, then let the reference path take
			// the preemption (or OOM) at the boundary.
			kMax = k
		}
	}
	if kMax < 2 {
		return buf, nil
	}
	end := now
	for j := 0; j < kMax; j++ {
		c, err := eng.DecodeStepCost(batch, ctx0+j)
		if err != nil {
			return buf, err
		}
		buf = append(buf, c.Seconds)
		end += c.Seconds
		if nextArrival >= 0 && end >= nextArrival {
			// A request lands inside the window: it is admitted at the
			// first iteration boundary at or after its arrival, so this
			// step is the window's last.
			break
		}
	}
	return buf, nil
}

func insertByArrival(queue []workload.Request, r workload.Request) []workload.Request {
	i := sort.Search(len(queue), func(i int) bool { return queue[i].Arrival > r.Arrival })
	queue = append(queue, workload.Request{})
	copy(queue[i+1:], queue[i:])
	queue[i] = r
	return queue
}

// Summarize aggregates completed request lifecycles into Stats. It is
// the single summary implementation behind both the single-replica
// scheduler and the cluster simulators (internal/cluster).
func Summarize(done []RequestStats, makespan float64, preemptions int) (Stats, error) {
	if len(done) == 0 {
		return Stats{}, errors.New("sched: no requests completed")
	}
	var tokens, latSum, ttftSum float64
	lats := make([]float64, len(done))
	for i, r := range done {
		lats[i] = r.Latency()
		latSum += lats[i]
		ttftSum += r.FirstTok - r.Arrival
		tokens += float64(r.Input + r.Output)
	}
	sort.Float64s(lats)
	if makespan <= 0 {
		return Stats{}, errors.New("sched: zero makespan")
	}
	return Stats{
		Completed:   len(done),
		MakespanS:   makespan,
		Throughput:  tokens / makespan,
		MeanLatency: latSum / float64(len(done)),
		P99Latency:  lats[int(float64(len(lats)-1)*0.99)],
		MeanTTFT:    ttftSum / float64(len(done)),
		Preemptions: preemptions,
		Requests:    done,
	}, nil
}

package sched

// Streaming aggregation for day-scale serving runs: an Aggregator
// consumes completed request lifecycles one at a time, in the global
// (finish time, request ID) order the kernel's completion hand-off
// delivers (des.Kernel.Sink), so a million-request point needs no
// per-request ledger. Two implementations exist: ExactAggregator
// retains the ledger and defers to Summarize — the sort-all reference
// path — and StreamAggregator estimates percentiles with P² sketches
// in O(1) memory.
//
// # Accuracy contract
//
// Because a StreamAggregator observes completions in exactly the
// order Summarize iterates the completion-sorted ledger, every
// non-percentile aggregate (Completed, Throughput, MeanLatency,
// MeanTTFT, MeanQueueDelay, MeanTransferDelay, Preemptions,
// MakespanS) is byte-identical
// to the exact path — identical float additions in identical order.
// The percentile fields are sketch estimates: within 1% relative
// error of Summarize's lower-index percentiles on the property-test
// distributions at day-scale sample sizes — ≥ 20k completions, the
// regime the mode exists for; exponential inter-arrival latencies,
// lognormal chat lengths, and DES-shaped latency/queue-delay samples
// (see TestP2QuantileAccuracy and
// TestStreamAggregatorMatchesSummarize) — and exact for runs of five
// or fewer completions. Small heavy-tailed runs can drift further (a
// 2k-sample lognormal P99 has only ~20 tail observations); prefer the
// exact path when the trace is small enough to ledger.

import (
	"errors"
	"math"
)

// Aggregator consumes completed request lifecycles incrementally and
// folds them into Stats. Observe is called once per completion, in
// (finish time, request ID) order; Stats finalizes the run.
type Aggregator interface {
	Observe(r RequestStats)
	Stats(makespan float64, preemptions int) (Stats, error)
}

// ExactAggregator collects the full ledger and defers to Summarize —
// the exact reference the streaming sketch is tested against.
type ExactAggregator struct {
	done []RequestStats
}

// Observe appends one completion to the ledger.
func (a *ExactAggregator) Observe(r RequestStats) { a.done = append(a.done, r) }

// Stats sorts and summarizes the ledger (see Summarize).
func (a *ExactAggregator) Stats(makespan float64, preemptions int) (Stats, error) {
	return Summarize(a.done, makespan, preemptions)
}

// StreamAggregator folds completions into running sums and P²
// percentile sketches: O(1) memory regardless of request count. See
// the package section above for the accuracy contract.
type StreamAggregator struct {
	n       int
	tokens  float64
	latSum  float64
	ttftSum float64
	qdSum   float64
	xferSum float64
	lat     [3]P2Quantile // P50, P95, P99 latency
	qd      [3]P2Quantile // P50, P95, P99 queue delay
}

// NewStreamAggregator returns an empty streaming aggregator.
func NewStreamAggregator() *StreamAggregator {
	a := &StreamAggregator{}
	for i, p := range [3]float64{0.50, 0.95, 0.99} {
		a.lat[i].Init(p)
		a.qd[i].Init(p)
	}
	return a
}

// Observe folds one completion into the running aggregates.
func (a *StreamAggregator) Observe(r RequestStats) {
	a.n++
	lat := r.Latency()
	a.latSum += lat
	qd := r.QueueDelay()
	a.qdSum += qd
	a.ttftSum += r.FirstTok - r.Arrival
	a.xferSum += r.TransferS
	a.tokens += float64(r.Input + r.Output)
	for i := range a.lat {
		a.lat[i].Observe(lat)
		a.qd[i].Observe(qd)
	}
}

// Stats finalizes the aggregates. The validation mirrors Summarize:
// no completions and non-positive makespans are errors.
func (a *StreamAggregator) Stats(makespan float64, preemptions int) (Stats, error) {
	if a.n == 0 {
		return Stats{}, errors.New("sched: no requests completed")
	}
	if !(makespan > 0) {
		return Stats{}, errors.New("sched: zero makespan")
	}
	return Stats{
		Completed:         a.n,
		MakespanS:         makespan,
		Throughput:        a.tokens / makespan,
		MeanLatency:       a.latSum / float64(a.n),
		P50Latency:        a.lat[0].Value(),
		P95Latency:        a.lat[1].Value(),
		P99Latency:        a.lat[2].Value(),
		MeanTTFT:          a.ttftSum / float64(a.n),
		MeanQueueDelay:    a.qdSum / float64(a.n),
		P50QueueDelay:     a.qd[0].Value(),
		P95QueueDelay:     a.qd[1].Value(),
		P99QueueDelay:     a.qd[2].Value(),
		MeanTransferDelay: a.xferSum / float64(a.n),
		Preemptions:       preemptions,
	}, nil
}

// P2Quantile is the P² online quantile estimator (Jain & Chlamtac,
// CACM 1985): five markers track the running p-quantile of a stream
// in constant memory, adjusting marker heights by piecewise-parabolic
// interpolation as observations arrive. No dependencies, no sampling,
// deterministic for a given observation sequence. The first five
// observations are stored directly, so Value is exact (lower-index
// convention, matching percentile in Summarize) until the sketch
// activates.
type P2Quantile struct {
	p    float64
	n    int        // observations so far
	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based observation counts)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
}

// Init configures the estimator for quantile p ∈ (0, 1). The zero
// value is unusable; call Init (or build via NewStreamAggregator).
func (s *P2Quantile) Init(p float64) {
	*s = P2Quantile{p: p}
	s.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// Observe folds one sample into the estimate.
func (s *P2Quantile) Observe(x float64) {
	if s.n < 5 {
		// Collect the first five samples, keeping them sorted.
		i := s.n
		for i > 0 && s.q[i-1] > x {
			s.q[i] = s.q[i-1]
			i--
		}
		s.q[i] = x
		s.n++
		if s.n == 5 {
			s.pos = [5]float64{1, 2, 3, 4, 5}
			p := s.p
			s.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	s.n++
	// Locate the cell containing x, extending the extreme markers.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.want {
		s.want[i] += s.inc[i]
	}
	// Adjust the interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			if qp := s.parabolic(i, sign); s.q[i-1] < qp && qp < s.q[i+1] {
				s.q[i] = qp
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for
// moving marker i one position in direction sign.
func (s *P2Quantile) parabolic(i int, sign float64) float64 {
	return s.q[i] + sign/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+sign)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-sign)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

// linear is the fallback height prediction when the parabola would
// leave the neighbouring markers' bracket.
func (s *P2Quantile) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return s.q[i] + sign*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// Count returns the number of observations folded in so far.
func (s *P2Quantile) Count() int { return s.n }

// Value returns the current quantile estimate: exact (lower-index
// convention) while five or fewer samples have been observed — the
// collection phase keeps them sorted, and the markers only start
// moving on the sixth — the middle-marker sketch estimate afterwards.
// NaN before any observation.
func (s *P2Quantile) Value() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if s.n <= 5 {
		return s.q[int(float64(s.n-1)*s.p)]
	}
	return s.q[2]
}

package sched

import (
	"math"
	"sort"
	"testing"

	"llmbench/internal/trace"
)

// exactQuantile is the reference the sketch is tested against:
// Summarize's lower-index convention over the full sorted sample.
func exactQuantile(samples []float64, p float64) float64 {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return sorted[int(float64(len(sorted)-1)*p)]
}

// The property-test distributions of the accuracy contract: the
// arrival and length shapes the workload generators produce, plus a
// uniform control. All fixed-seed, so the bound is a regression test,
// not a statistical coin flip.
func accuracySamples(name string, n int) []float64 {
	rng := trace.NewRNG(0xbeef)
	out := make([]float64, n)
	for i := range out {
		switch name {
		case "exponential":
			out[i] = rng.Exp(2.5)
		case "lognormal":
			// Box-Muller, matching workload.ChatTrace's length draw
			// (sigma 0.7).
			u1 := rng.Float64()
			for u1 == 0 {
				u1 = rng.Float64()
			}
			u2 := rng.Float64()
			z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
			out[i] = 80 * math.Exp(0.7*z)
		case "uniform":
			out[i] = 1 + 9*rng.Float64()
		}
	}
	return out
}

// TestP2QuantileAccuracy pins the documented contract: the sketch is
// within 1% relative error of the exact lower-index percentile on the
// property-test distributions at day-scale sample sizes (≥ 20k — the
// regime streaming mode exists for; a 2k lognormal P99 has too few
// tail samples for the bound to hold).
func TestP2QuantileAccuracy(t *testing.T) {
	for _, dist := range []string{"exponential", "lognormal", "uniform"} {
		for _, n := range []int{20_000, 50_000} {
			samples := accuracySamples(dist, n)
			for _, p := range []float64{0.50, 0.95, 0.99} {
				var sk P2Quantile
				sk.Init(p)
				for _, x := range samples {
					sk.Observe(x)
				}
				want := exactQuantile(samples, p)
				got := sk.Value()
				if rel := math.Abs(got-want) / want; rel > 0.01 {
					t.Errorf("%s n=%d p%g: sketch %v vs exact %v (relative error %.3f%% > 1%%)",
						dist, n, 100*p, got, want, 100*rel)
				}
			}
		}
	}
}

// Below six observations the sketch stores the samples and must match
// the exact lower-index percentile bit for bit.
func TestP2QuantileExactWhenSmall(t *testing.T) {
	samples := []float64{4.5, 1.25, 9.75, 0.5, 3.125}
	for _, p := range []float64{0.50, 0.95, 0.99} {
		for n := 1; n <= len(samples); n++ {
			var sk P2Quantile
			sk.Init(p)
			for _, x := range samples[:n] {
				sk.Observe(x)
			}
			if got, want := sk.Value(), exactQuantile(samples[:n], p); got != want {
				t.Errorf("p%g n=%d: got %v, want exact %v", 100*p, n, got, want)
			}
			if sk.Count() != n {
				t.Errorf("Count = %d, want %d", sk.Count(), n)
			}
		}
	}
	var sk P2Quantile
	sk.Init(0.99)
	if !math.IsNaN(sk.Value()) {
		t.Error("empty sketch must report NaN")
	}
}

// syntheticLedger builds a completion-ordered ledger with the shapes
// Summarize sees: queueing delays, TTFTs, and latencies all positive
// and heavy-tailed.
func syntheticLedger(n int) []RequestStats {
	rng := trace.NewRNG(99)
	done := make([]RequestStats, n)
	now := 0.0
	for i := range done {
		now += rng.Exp(0.05)
		qd := rng.Exp(0.4)
		ttft := qd + 0.02 + rng.Exp(0.1)
		lat := ttft + rng.Exp(1.5)
		done[i] = RequestStats{
			ID: i, Input: 100 + rng.Intn(400), Output: 20 + rng.Intn(200),
			Arrival: now, Started: now + qd, FirstTok: now + ttft, Finished: now + lat,
		}
	}
	// Deliver in (finish, ID) order, as the kernel's Sink does.
	sort.Slice(done, func(i, j int) bool {
		if done[i].Finished != done[j].Finished {
			return done[i].Finished < done[j].Finished
		}
		return done[i].ID < done[j].ID
	})
	return done
}

// TestStreamAggregatorMatchesSummarize pins both halves of the
// accuracy contract: every non-percentile aggregate byte-identical to
// Summarize (same additions in the same order), percentiles within 1%.
func TestStreamAggregatorMatchesSummarize(t *testing.T) {
	done := syntheticLedger(30_000)
	const makespan = 1234.5

	exact, err := Summarize(done, makespan, 17)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	agg := NewStreamAggregator()
	for _, r := range done {
		agg.Observe(r)
	}
	got, err := agg.Stats(makespan, 17)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}

	if got.Completed != exact.Completed || got.MakespanS != exact.MakespanS ||
		got.Throughput != exact.Throughput || got.MeanLatency != exact.MeanLatency ||
		got.MeanTTFT != exact.MeanTTFT || got.MeanQueueDelay != exact.MeanQueueDelay ||
		got.Preemptions != exact.Preemptions {
		t.Errorf("non-percentile aggregates must be byte-identical:\n got %+v\nwant %+v", got, exact)
	}
	if got.Requests != nil {
		t.Error("streaming Stats must not carry a ledger")
	}
	check := func(name string, got, want float64) {
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("%s: sketch %v vs exact %v (relative error %.3f%% > 1%%)", name, got, want, 100*rel)
		}
	}
	check("P50Latency", got.P50Latency, exact.P50Latency)
	check("P95Latency", got.P95Latency, exact.P95Latency)
	check("P99Latency", got.P99Latency, exact.P99Latency)
	check("P50QueueDelay", got.P50QueueDelay, exact.P50QueueDelay)
	check("P95QueueDelay", got.P95QueueDelay, exact.P95QueueDelay)
	check("P99QueueDelay", got.P99QueueDelay, exact.P99QueueDelay)
}

// The streaming validation mirrors Summarize's.
func TestStreamAggregatorValidation(t *testing.T) {
	if _, err := NewStreamAggregator().Stats(10, 0); err == nil {
		t.Error("empty aggregator must error like Summarize")
	}
	agg := NewStreamAggregator()
	agg.Observe(RequestStats{Input: 8, Output: 8, Finished: 1})
	for _, bad := range []float64{0, -1, math.NaN()} {
		if _, err := agg.Stats(bad, 0); err == nil {
			t.Errorf("makespan %v must be rejected", bad)
		}
	}
}

// Summarize must reject bad inputs before doing any work, and with
// the same negated-comparison that catches NaN makespans.
func TestSummarizeValidatesFirst(t *testing.T) {
	done := []RequestStats{{Input: 8, Output: 8, Finished: 1}}
	for _, bad := range []float64{0, -1, math.NaN()} {
		if _, err := Summarize(done, bad, 0); err == nil {
			t.Errorf("makespan %v must be rejected", bad)
		}
	}
	if _, err := Summarize(nil, 10, 0); err == nil {
		t.Error("empty ledger must be rejected")
	}
}

package sched

import (
	"testing"

	"llmbench/internal/dtype"
	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/workload"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Config{
		Model:     model.MustGet("LLaMA-3-8B"),
		Device:    hw.MustGet("A100"),
		Framework: framework.MustGet("vLLM"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testAlloc(t *testing.T, capGiB float64) *kvcache.Paged {
	t.Helper()
	m := model.MustGet("LLaMA-3-8B")
	a, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), capGiB*(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testTrace(t *testing.T, n int, rate float64) []workload.Request {
	t.Helper()
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 11, Requests: n, RatePerSec: rate,
		InputMean: 512, OutputMean: 128, LengthJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestServeValidation(t *testing.T) {
	e := testEngine(t)
	if _, err := Serve(Config{}, testTrace(t, 5, 1)); err == nil {
		t.Error("nil engine must fail")
	}
	if _, err := Serve(Config{Engine: e, Alloc: testAlloc(t, 10), MaxBatch: 0}, testTrace(t, 5, 1)); err == nil {
		t.Error("MaxBatch 0 must fail")
	}
	if _, err := Serve(Config{Engine: e, Alloc: testAlloc(t, 10), MaxBatch: 8}, nil); err == nil {
		t.Error("empty trace must fail")
	}
}

func TestAllRequestsComplete(t *testing.T) {
	e := testEngine(t)
	for _, pol := range []Policy{Continuous, Static} {
		stats, err := Serve(Config{Engine: e, Policy: pol, MaxBatch: 16, Alloc: testAlloc(t, 20)},
			testTrace(t, 60, 4))
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if stats.Completed != 60 {
			t.Errorf("%v: completed %d/60", pol, stats.Completed)
		}
		if stats.Throughput <= 0 || stats.MeanLatency <= 0 || stats.MeanTTFT <= 0 {
			t.Errorf("%v: degenerate stats %+v", pol, stats)
		}
		if stats.P99Latency < stats.MeanLatency {
			t.Errorf("%v: p99 %v below mean %v", pol, stats.P99Latency, stats.MeanLatency)
		}
	}
}

func TestContinuousBeatsStaticUnderLoad(t *testing.T) {
	// §IV-A1: continuous batching "keeps the device busy, and new
	// requests of variable length can be processed without waiting for
	// the previous batch to be finished" — so at load it must deliver
	// both higher throughput and lower mean latency than static
	// batching.
	e := testEngine(t)
	reqs := testTrace(t, 120, 8)
	cont, err := Serve(Config{Engine: e, Policy: Continuous, MaxBatch: 16, Alloc: testAlloc(t, 20)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := Serve(Config{Engine: e, Policy: Static, MaxBatch: 16, Alloc: testAlloc(t, 20)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if cont.Throughput <= stat.Throughput {
		t.Errorf("continuous throughput %.0f must beat static %.0f", cont.Throughput, stat.Throughput)
	}
	if cont.MeanLatency >= stat.MeanLatency {
		t.Errorf("continuous latency %.2f must beat static %.2f", cont.MeanLatency, stat.MeanLatency)
	}
}

func TestPreemptionUnderTinyCache(t *testing.T) {
	// A cache that holds only a couple of sequences forces evictions;
	// the system must still finish every request.
	e := testEngine(t)
	small := testAlloc(t, 0.5) // ~0.5 GiB: a few thousand tokens
	stats, err := Serve(Config{Engine: e, Policy: Continuous, MaxBatch: 8, Alloc: small},
		testTrace(t, 20, 20))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 20 {
		t.Errorf("completed %d/20 under preemption", stats.Completed)
	}
	if stats.Preemptions == 0 {
		t.Error("a tiny cache must force preemptions")
	}
}

func TestRequestStatsConsistency(t *testing.T) {
	e := testEngine(t)
	stats, err := Serve(Config{Engine: e, Policy: Continuous, MaxBatch: 8, Alloc: testAlloc(t, 20)},
		testTrace(t, 30, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range stats.Requests {
		if r.Started < r.Arrival {
			t.Errorf("req %d started before arrival", r.ID)
		}
		if r.FirstTok < r.Started {
			t.Errorf("req %d first token before start", r.ID)
		}
		if r.Finished < r.FirstTok {
			t.Errorf("req %d finished before first token", r.ID)
		}
	}
}

func TestAllocatorDrained(t *testing.T) {
	e := testEngine(t)
	alloc := testAlloc(t, 20)
	if _, err := Serve(Config{Engine: e, Policy: Continuous, MaxBatch: 8, Alloc: alloc},
		testTrace(t, 25, 5)); err != nil {
		t.Fatal(err)
	}
	if alloc.Sequences() != 0 || alloc.UsedBytes() != 0 {
		t.Error("allocator must be empty after serving completes")
	}
}

func TestPolicyString(t *testing.T) {
	if Continuous.String() != "continuous" || Static.String() != "static" {
		t.Error("policy strings wrong")
	}
}

// TestSummarizeSingleSample: with one completed request every
// percentile is that request's value and the means equal the sample.
func TestSummarizeSingleSample(t *testing.T) {
	r := RequestStats{ID: 0, Input: 100, Output: 20, Arrival: 1, Started: 1.5, FirstTok: 2, Finished: 4}
	stats, err := Summarize([]RequestStats{r}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	lat, qd := r.Latency(), r.QueueDelay()
	if stats.Completed != 1 {
		t.Errorf("completed %d, want 1", stats.Completed)
	}
	for name, got := range map[string]float64{
		"mean latency": stats.MeanLatency, "p50": stats.P50Latency,
		"p95": stats.P95Latency, "p99": stats.P99Latency,
	} {
		if got != lat {
			t.Errorf("%s = %v, want %v", name, got, lat)
		}
	}
	for name, got := range map[string]float64{
		"mean queue delay": stats.MeanQueueDelay, "qd p50": stats.P50QueueDelay,
		"qd p95": stats.P95QueueDelay, "qd p99": stats.P99QueueDelay,
	} {
		if got != qd {
			t.Errorf("%s = %v, want %v", name, got, qd)
		}
	}
	if want := float64(r.Input+r.Output) / 4; stats.Throughput != want {
		t.Errorf("throughput %v, want %v", stats.Throughput, want)
	}
}

// TestSummarizeErrorPaths: no completions and non-positive makespans
// must fail rather than divide by zero.
func TestSummarizeErrorPaths(t *testing.T) {
	if _, err := Summarize(nil, 10, 0); err == nil {
		t.Error("empty completion ledger must fail")
	}
	r := RequestStats{Input: 10, Output: 5, Finished: 1}
	for _, makespan := range []float64{0, -3} {
		if _, err := Summarize([]RequestStats{r}, makespan, 0); err == nil {
			t.Errorf("makespan %v must fail", makespan)
		}
	}
}

// TestSummarizePercentileSpread pins the lower-index percentile
// convention on a ten-sample ladder: p50 is the 4th of 10 sorted
// samples (index ⌊9×.5⌋), p95/p99 the 8th (index ⌊9×.95⌋ = ⌊9×.99⌋).
func TestSummarizePercentileSpread(t *testing.T) {
	done := make([]RequestStats, 10)
	for i := range done {
		done[i] = RequestStats{
			ID: i, Input: 1, Output: 1,
			Arrival: 0, Started: 0, FirstTok: 0.1, Finished: float64(i + 1),
		}
	}
	stats, err := Summarize(done, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.P50Latency != 5 || stats.P95Latency != 9 || stats.P99Latency != 9 {
		t.Errorf("percentiles p50/p95/p99 = %v/%v/%v, want 5/9/9",
			stats.P50Latency, stats.P95Latency, stats.P99Latency)
	}
	if stats.MeanLatency != 5.5 {
		t.Errorf("mean latency %v, want 5.5", stats.MeanLatency)
	}
}

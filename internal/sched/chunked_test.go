package sched

import (
	"testing"

	"llmbench/internal/workload"
)

func TestChunkedPrefillCompletesEverything(t *testing.T) {
	e := testEngine(t)
	stats, err := Serve(Config{
		Engine: e, Policy: Continuous, MaxBatch: 16,
		Alloc: testAlloc(t, 20), ChunkedPrefill: true, PrefillChunk: 256,
	}, testTrace(t, 60, 6))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 60 {
		t.Errorf("completed %d/60 with chunked prefill", stats.Completed)
	}
	for _, r := range stats.Requests {
		if r.FirstTok < r.Started || r.Finished < r.FirstTok {
			t.Errorf("req %d has inconsistent timeline under chunked prefill", r.ID)
		}
	}
}

func TestChunkedPrefillImprovesRunningRequests(t *testing.T) {
	// The Dynamic SplitFuse claim (§V-3): fusing prefill slices into
	// decode iterations stops long prompts from stalling requests that
	// are already generating, improving tail latency under load.
	e := testEngine(t)
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 21, Requests: 80, RatePerSec: 10,
		InputMean: 1024, OutputMean: 64, LengthJitter: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Serve(Config{
		Engine: e, Policy: Continuous, MaxBatch: 16, Alloc: testAlloc(t, 20),
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := Serve(Config{
		Engine: e, Policy: Continuous, MaxBatch: 16, Alloc: testAlloc(t, 20),
		ChunkedPrefill: true, PrefillChunk: 256,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if chunked.Completed != plain.Completed {
		t.Fatalf("completion mismatch: %d vs %d", chunked.Completed, plain.Completed)
	}
	// The SplitFuse win is iteration smoothness: the worst token-level
	// stall a running request sees must shrink.
	if chunked.MaxIterationS >= plain.MaxIterationS {
		t.Errorf("chunked prefill must bound the worst iteration: %.3fs vs %.3fs",
			chunked.MaxIterationS, plain.MaxIterationS)
	}
	// Without batching prefills, end-to-end latency may degrade a
	// little — but not collapse.
	if chunked.P99Latency > 2*plain.P99Latency {
		t.Errorf("chunked prefill p99 %.2f collapsed vs plain %.2f",
			chunked.P99Latency, plain.P99Latency)
	}
}

func TestChunkedPrefillDefaultChunk(t *testing.T) {
	// PrefillChunk 0 falls back to the 512-token default.
	e := testEngine(t)
	stats, err := Serve(Config{
		Engine: e, Policy: Continuous, MaxBatch: 8,
		Alloc: testAlloc(t, 20), ChunkedPrefill: true,
	}, testTrace(t, 20, 4))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 20 {
		t.Errorf("completed %d/20", stats.Completed)
	}
}

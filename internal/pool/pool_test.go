package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdersBySubmissionIndex(t *testing.T) {
	for _, par := range []int{1, 2, 8, 0} {
		got, err := Map(100, par, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(got) != 100 {
			t.Fatalf("par=%d: len = %d", par, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("par=%d: got[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v; want nil, nil", got, err)
	}
	got, err = Map(-3, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(-3) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Items 7 and 3 both fail; regardless of completion order the
	// error must be item 3's.
	for _, par := range []int{1, 4, 16} {
		_, err := Map(10, par, func(i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("item %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("par=%d: err = %v, want item 3's", par, err)
		}
	}
}

func TestMapAbortsDispatchAfterFailure(t *testing.T) {
	// Serial: exactly items 0..failure run, later items are skipped.
	var ran []int
	sentinel := errors.New("boom")
	out, err := Map(50, 1, func(i int) (int, error) {
		ran = append(ran, i)
		if i == 10 {
			return 0, sentinel
		}
		return i + 1, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 11 || ran[10] != 10 {
		t.Fatalf("serial ran %v, want exactly 0..10", ran)
	}
	for i := 0; i < 10; i++ {
		if out[i] != i+1 {
			t.Fatalf("result %d lost on abort: %d", i, out[i])
		}
	}

	// Parallel: everything below the failing index always runs (its
	// results intact), and the failure is always reported even when
	// later items are skipped.
	var count atomic.Int64
	out, err = Map(1000, 4, func(i int) (int, error) {
		count.Add(1)
		if i == 20 {
			return 0, sentinel
		}
		return i + 1, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("parallel err = %v", err)
	}
	for i := 0; i < 20; i++ {
		if out[i] != i+1 {
			t.Fatalf("result %d below the failure missing: %d", i, out[i])
		}
	}
	if n := count.Load(); n >= 1000 {
		t.Fatalf("dispatch never aborted: all %d items ran", n)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const par = 3
	var inFlight, peak atomic.Int64
	_, err := Map(64, par, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > par {
		t.Fatalf("observed %d concurrent workers, cap %d", peak.Load(), par)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(10, 4, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
	err := ForEach(5, 2, func(i int) error {
		if i >= 1 {
			return fmt.Errorf("e%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "e1" {
		t.Fatalf("err = %v, want e1", err)
	}
}

func TestClamp(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct{ par, n, want int }{
		{4, 100, 4},
		{4, 2, 2},
		{0, 100, procs},
		{-1, 100, procs},
		{8, 0, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.par, c.n); got != c.want {
			t.Errorf("Clamp(%d, %d) = %d, want %d", c.par, c.n, got, c.want)
		}
	}
}

func TestCacheBuildsOncePerKey(t *testing.T) {
	var c Cache[string, int]
	var builds atomic.Int64
	const callers = 32
	var wg sync.WaitGroup
	results := make([]int, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := c.Get("k", func() (int, error) {
				builds.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
	for g, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", g, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheDistinctKeys(t *testing.T) {
	var c Cache[int, string]
	for i := 0; i < 5; i++ {
		v, err := c.Get(i, func() (string, error) { return fmt.Sprintf("v%d", i), nil })
		if err != nil || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
}

func TestCacheDoesNotPinFailures(t *testing.T) {
	var c Cache[string, int]
	var calls atomic.Int64
	build := func() (int, error) {
		if calls.Add(1) == 1 {
			return 0, errors.New("transient")
		}
		return 7, nil
	}
	if _, err := c.Get("k", build); err == nil {
		t.Fatal("first build should fail")
	}
	if c.Len() != 0 {
		t.Fatalf("failed build cached; Len = %d", c.Len())
	}
	v, err := c.Get("k", build)
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("build called %d times, want 2", calls.Load())
	}
}

// Package pool provides the concurrency substrate for sweep and
// report fan-outs: a bounded worker pool whose results are ordered by
// submission index (never by completion), and a concurrency-safe
// build-once cache for expensive immutable values such as engines.
//
// Determinism is the design constraint. The paper-anchor artifacts
// (EXPERIMENTS.md tables, per-figure CSVs) must be byte-identical
// whether regenerated serially or at full parallelism, so Map writes
// each result into its submission slot and error selection is by
// lowest index, not by which worker failed first.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Clamp normalises a parallelism request: values below 1 mean "use
// every available core" (GOMAXPROCS), and the worker count never
// exceeds the number of work items.
func Clamp(parallelism, n int) int {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// Map runs fn(i) for every i in [0, n) on at most parallelism
// workers and returns the results ordered by index. The returned
// error is the one with the lowest index, identical at any
// parallelism. After the first observed failure no further items are
// dispatched (their result slots stay zero), but items dispatched
// earlier always finish — dispatch is in index order, so every index
// below the lowest failure is guaranteed to have run, which is what
// keeps the error choice and any results-before-the-failure
// deterministic. parallelism < 1 means GOMAXPROCS.
func Map[T any](n, parallelism int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers := Clamp(parallelism, n)
	if workers == 1 {
		// Serial fast path: no goroutines, no channel traffic.
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
			if errs[i] != nil {
				break
			}
		}
		return out, firstError(errs)
	}
	var wg sync.WaitGroup
	var aborted atomic.Bool
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i], errs[i] = fn(i)
				if errs[i] != nil {
					aborted.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if aborted.Load() {
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()
	return out, firstError(errs)
}

// ForEach is Map without results: run fn(i) for every index, return
// the lowest-index error.
func ForEach(n, parallelism int, fn func(i int) error) error {
	_, err := Map(n, parallelism, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Cache memoises expensive immutable values under comparable keys
// with build-once (singleflight) semantics: concurrent callers of the
// same key block on a single build instead of duplicating it.
// Successful values are cached forever; failed builds are not cached,
// so a later call retries.
//
// The zero value is ready to use.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Get returns the cached value for key, building it with build on
// first use. Concurrent Gets of one key run build exactly once.
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[K]*cacheEntry[V])
	}
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	e.once.Do(func() { e.val, e.err = build() })
	if e.err != nil {
		// Do not pin failures: drop the entry so a future Get retries.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.val, e.err
}

// Len reports how many values are currently cached.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

package experiments

// Third batch of extension experiments:
//
//   ext8 — prefix sharing (vLLM's shared system-prompt blocks): how
//          much serving throughput a shared 512-token system prompt
//          buys at tight KV budgets.
//   ext9 — autoscaling under bursty chat load: the replica-count
//          trajectory and what it costs/saves vs fixed capacity.

import (
	"llmbench/internal/cluster"
	"llmbench/internal/dtype"
	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/metrics"
	"llmbench/internal/model"
	"llmbench/internal/parallel"
	"llmbench/internal/sched"
	"llmbench/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "ext8",
		Title:    "Extension: prefix sharing for a common system prompt (vLLM mechanism)",
		Workload: "Mistral-7B on A100, 512-token shared prefix, KV budget {2..8} GiB",
		Modules:  []string{"kvcache", "sched"},
		Run:      ext8,
	})
	register(&Experiment{
		ID:       "ext9",
		Title:    "Extension: autoscaling replicas under bursty chat load",
		Workload: "Mistral-7B on A100, 6x bursts, replicas 1..6",
		Modules:  []string{"cluster", "workload"},
		Run:      ext9,
	})
}

func ext8() (*Output, error) {
	fig := &metrics.Figure{ID: "ext8", Title: "Prefix sharing vs plain paging (512-token system prompt)",
		XLabel: "KV budget (GiB)", YLabel: "Serving throughput (tokens/s)"}
	eng, err := mk("Mistral-7B", "A100", "vLLM", parallel.Single)
	if err != nil {
		return nil, err
	}
	m := model.MustGet("Mistral-7B")
	// Every request carries the same 512-token system prompt plus a
	// ~128-token user turn.
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 19, Requests: 150, RatePerSec: 15,
		InputMean: 640, OutputMean: 128, LengthJitter: 0.1,
	})
	if err != nil {
		return nil, err
	}
	for _, budget := range []float64{2, 4, 6, 8} {
		bytes := budget * (1 << 30)
		plain, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), bytes)
		if err != nil {
			return nil, err
		}
		ps, err := sched.Serve(sched.Config{Engine: eng, Policy: sched.Continuous, MaxBatch: 48, Alloc: plain}, reqs)
		if err != nil {
			return nil, err
		}
		fig.Add("plain paged", budget, ps.Throughput)

		shared, err := kvcache.NewPrefixPaged(16, 512, m.KVBytesPerToken(dtype.FP16), bytes)
		if err != nil {
			return nil, err
		}
		ss, err := sched.Serve(sched.Config{Engine: eng, Policy: sched.Continuous, MaxBatch: 48, Alloc: shared}, reqs)
		if err != nil {
			return nil, err
		}
		fig.Add("prefix shared", budget, ss.Throughput)
		fig.Note("budget %.0f GiB: plain preempted %d times, shared %d times",
			budget, ps.Preemptions, ss.Preemptions)
	}
	return &Output{Figure: fig}, nil
}

func ext9() (*Output, error) {
	fig := &metrics.Figure{ID: "ext9", Title: "Autoscaling vs fixed capacity under bursty load (Mistral-7B, A100)",
		XLabel: "Fixed replica count (0 = autoscaled 1..6)", YLabel: "Mean latency (s) / replica-seconds"}
	m := model.MustGet("Mistral-7B")
	factory := func() (cluster.Replica, error) {
		eng, err := engine.New(engine.Config{
			Model:     m,
			Device:    hw.MustGet("A100"),
			Framework: framework.MustGet("vLLM"),
		})
		if err != nil {
			return cluster.Replica{}, err
		}
		alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 16*(1<<30))
		if err != nil {
			return cluster.Replica{}, err
		}
		return cluster.Replica{Engine: eng, Alloc: alloc}, nil
	}
	reqs, err := workload.ChatTrace(workload.ChatTraceConfig{
		Seed: 71, Requests: 400, RatePerSec: 12, BurstFactor: 6, BurstLenS: 4,
		InputMedian: 512, OutputMedian: 128, Sigma: 0.7, MaxLen: 4096,
	})
	if err != nil {
		return nil, err
	}
	// Fixed capacities.
	for _, n := range []int{1, 2, 4, 6} {
		reps := make([]cluster.Replica, n)
		for i := range reps {
			r, err := factory()
			if err != nil {
				return nil, err
			}
			reps[i] = r
		}
		stats, err := cluster.Serve(cluster.Config{Replicas: reps, Policy: cluster.LeastLoaded, MaxBatch: 16}, reqs)
		if err != nil {
			return nil, err
		}
		fig.Add("fixed [mean lat]", float64(n), stats.MeanLatency)
		fig.Add("fixed [replica-s]", float64(n), float64(n)*stats.MakespanS)
	}
	// Autoscaled.
	auto, err := cluster.ServeAutoscale(cluster.Config{MaxBatch: 16}, cluster.Autoscale{
		Factory: factory, Min: 1, Max: 6, UpOutstanding: 12, DownIdleS: 3, CooldownS: 1,
	}, reqs)
	if err != nil {
		return nil, err
	}
	fig.Add("autoscaled [mean lat]", 0, auto.MeanLatency)
	// Replica-seconds actually provisioned: integrate the trajectory.
	fig.Add("autoscaled [replica-s]", 0, replicaSeconds(auto, reqs))
	fig.Note("autoscaler peaked at %d replicas over %d scale events", auto.PeakReplicas, len(auto.Events))
	return &Output{Figure: fig}, nil
}

// replicaSeconds integrates the autoscaler's capacity trajectory.
func replicaSeconds(auto cluster.AutoStats, reqs []workload.Request) float64 {
	end := auto.MakespanS
	cur, last := 1, 0.0
	total := 0.0
	for _, e := range auto.Events {
		total += float64(cur) * (e.TimeS - last)
		cur = e.Replicas
		last = e.TimeS
	}
	total += float64(cur) * (end - last)
	return total
}

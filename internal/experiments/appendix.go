package experiments

import (
	"fmt"

	"llmbench/internal/metrics"
	"llmbench/internal/parallel"
	"llmbench/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "fig29",
		Title:    "Perplexity vs throughput of ~7B models (one H100, vLLM, batch 32, len 1024)",
		Workload: "9 models on the synthetic LongBench-like corpus",
		Modules:  []string{"perplexity", "engine"},
		Run:      func() (*Output, error) { return perplexityScatter("fig29", "H100") },
	})
	register(&Experiment{
		ID:       "fig30",
		Title:    "TRT-LLM: 7B models on 1/2/4 A100 GPUs (len 1024)",
		Workload: "batch {1,16,32,64} × GPUs {1,2,4}",
		Modules:  []string{"engine", "parallel"},
		Run:      fig30,
	})
	register(&Experiment{
		ID:       "fig31",
		Title:    "vLLM: 7B models on 1/2/4 GPUs (batch 32, len 2048)",
		Workload: "H100/A100/MI250 × GPUs {1,2,4}",
		Modules:  []string{"engine", "parallel"},
		Run:      fig31,
	})
	register(&Experiment{
		ID:       "fig32",
		Title:    "llama.cpp: 70B models on four GPUs (len 1024)",
		Workload: "batch {1,16,32,64} on H100 and MI250",
		Modules:  []string{"engine", "framework"},
		Run:      fig32,
	})
	register(&Experiment{
		ID:       "fig33",
		Title:    "H100 framework comparison of 7B models (len 1024)",
		Workload: "TRT-LLM/vLLM/llama.cpp × batch {1,16,32,64}",
		Modules:  []string{"engine", "framework"},
		Run:      fig33,
	})
	register(&Experiment{
		ID:       "fig34",
		Title:    "70B models on four A100 and H100 GPUs (len 1024)",
		Workload: "TRT-LLM and vLLM × batch {1,16,32,64}",
		Modules:  []string{"engine", "parallel"},
		Run:      fig34,
	})
	register(&Experiment{
		ID:       "fig35",
		Title:    "7B models on one MI250 using vLLM (len 1024)",
		Workload: "batch {1,16,32,64}",
		Modules:  []string{"engine", "hw"},
		Run:      fig35,
	})
	register(&Experiment{
		ID:       "fig36",
		Title:    "7B models on one MI250 using llama.cpp (len 1024)",
		Workload: "batch {1,16,32,64}",
		Modules:  []string{"engine", "framework"},
		Run:      fig36,
	})
	register(&Experiment{
		ID:       "fig37",
		Title:    "70B models on four MI250 GPUs using vLLM (len 1024)",
		Workload: "batch {1,16,32,64}",
		Modules:  []string{"engine", "parallel"},
		Run:      fig37,
	})
	register(&Experiment{
		ID:       "fig38",
		Title:    "4 Gaudi2 vs 4 H100 vs 4 A100: 70B models (len 512)",
		Workload: "batch {1,16,32}",
		Modules:  []string{"engine", "hw"},
		Run:      fig38,
	})
}

func fig30() (*Output, error) {
	fig := &metrics.Figure{ID: "fig30", Title: "TRT-LLM 7B models on varying A100 GPUs (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, gpus := range []int{1, 2, 4} {
		for _, m := range models7B {
			eng, err := mk(m, "A100", "TRT-LLM", tp(gpus))
			if err != nil {
				return nil, err
			}
			batchSweep(fig, eng, fmt.Sprintf("%d %s", gpus, m), workload.PaperBatches, 1024)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig31() (*Output, error) {
	fig := &metrics.Figure{ID: "fig31", Title: "vLLM 7B models on GPUs (batch 32, len 2048)",
		XLabel: "Number of GPUs", YLabel: "Throughput (tokens/s)"}
	spec := workload.Spec{Batch: 32, Input: 2048, Output: 2048}
	for _, dev := range []string{"H100", "A100", "MI250"} {
		for _, m := range models7B {
			for _, gpus := range []int{1, 2, 4} {
				eng, err := mk(m, dev, "vLLM", tp(gpus))
				if err != nil {
					return nil, err
				}
				addOrNote(fig, eng, dev+" "+m, float64(gpus), spec, throughput)
			}
		}
	}
	return &Output{Figure: fig}, nil
}

func fig32() (*Output, error) {
	fig := &metrics.Figure{ID: "fig32", Title: "llama.cpp 70B models on four GPUs (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	combos := []struct{ dev, m string }{
		{"H100", "Mixtral-8x7B"}, {"H100", "LLaMA-3-70B"},
		{"MI250", "Mixtral-8x7B"}, {"MI250", "LLaMA-2-70B"},
	}
	for _, c := range combos {
		eng, err := mk(c.m, c.dev, "llama.cpp", parallel.Plan{TP: 1, PP: 4, EP: 1})
		if err != nil {
			return nil, err
		}
		batchSweep(fig, eng, c.dev+" "+c.m, workload.PaperBatches, 1024)
	}
	return &Output{Figure: fig}, nil
}

func fig33() (*Output, error) {
	fig := &metrics.Figure{ID: "fig33", Title: "H100 framework comparison of 7B models (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	combos := []struct {
		fw     string
		models []string
	}{
		{"TRT-LLM", []string{"Qwen2-7B", "Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"}},
		{"vLLM", []string{"Qwen2-7B", "Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"}},
		{"llama.cpp", []string{"Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"}},
	}
	for _, c := range combos {
		for _, m := range c.models {
			eng, err := mk(m, "H100", c.fw, parallel.Single)
			if err != nil {
				return nil, err
			}
			batchSweep(fig, eng, c.fw+" "+m, workload.PaperBatches, 1024)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig34() (*Output, error) {
	fig := &metrics.Figure{ID: "fig34", Title: "70B models on four A100 and H100 GPUs (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	combos := []struct{ dev, fw, m string }{
		{"H100", "TRT-LLM", "Mixtral-8x7B"},
		{"H100", "TRT-LLM", "LLaMA-2-70B"},
		{"H100", "vLLM", "LLaMA-2-70B"},
		{"H100", "TRT-LLM", "LLaMA-3-70B"},
		{"H100", "vLLM", "LLaMA-3-70B"},
		{"A100", "TRT-LLM", "Mixtral-8x7B"},
		{"A100", "vLLM", "Mixtral-8x7B"},
		{"A100", "TRT-LLM", "LLaMA-2-70B"},
		{"A100", "vLLM", "LLaMA-2-70B"},
		{"A100", "TRT-LLM", "LLaMA-3-70B"},
	}
	for _, c := range combos {
		eng, err := mk(c.m, c.dev, c.fw, tp(4))
		if err != nil {
			return nil, err
		}
		batchSweep(fig, eng, c.dev+" "+c.fw+" "+c.m, workload.PaperBatches, 1024)
	}
	return &Output{Figure: fig}, nil
}

var models7BQwen = []string{"Qwen2-7B", "Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"}

func fig35() (*Output, error) {
	fig := &metrics.Figure{ID: "fig35", Title: "7B models on one MI250 using vLLM (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, m := range models7BQwen {
		eng, err := mk(m, "MI250", "vLLM", parallel.Single)
		if err != nil {
			return nil, err
		}
		batchSweep(fig, eng, m, workload.PaperBatches, 1024)
	}
	return &Output{Figure: fig}, nil
}

func fig36() (*Output, error) {
	fig := &metrics.Figure{ID: "fig36", Title: "7B models on one MI250 using llama.cpp (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, m := range []string{"LLaMA-2-7B", "Mistral-7B", "LLaMA-3-8B", "Qwen2-7B"} {
		eng, err := mk(m, "MI250", "llama.cpp", parallel.Single)
		if err != nil {
			return nil, err
		}
		batchSweep(fig, eng, m, workload.PaperBatches, 1024)
	}
	return &Output{Figure: fig}, nil
}

func fig37() (*Output, error) {
	fig := &metrics.Figure{ID: "fig37", Title: "70B models on four MI250 GPUs using vLLM (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, m := range []string{"Qwen2-72B", "Mixtral-8x7B", "LLaMA-3-70B", "LLaMA-2-70B"} {
		eng, err := mk(m, "MI250", "vLLM", tp(4))
		if err != nil {
			return nil, err
		}
		batchSweep(fig, eng, m, workload.PaperBatches, 1024)
	}
	return &Output{Figure: fig}, nil
}

func fig38() (*Output, error) {
	fig := &metrics.Figure{ID: "fig38", Title: "4 Gaudi2 vs 4 H100 vs 4 A100: 70B models (len 512)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	combos := []struct {
		dev, fw string
		models  []string
	}{
		{"H100", "TRT-LLM", []string{"LLaMA-2-70B", "LLaMA-3-70B", "Qwen2-72B"}},
		{"Gaudi2", "DeepSpeed", []string{"LLaMA-2-70B", "LLaMA-3-70B", "Qwen2-72B"}},
		{"A100", "TRT-LLM", []string{"LLaMA-2-70B", "LLaMA-3-70B"}},
	}
	for _, c := range combos {
		for _, m := range c.models {
			eng, err := mk(m, c.dev, c.fw, tp(4))
			if err != nil {
				return nil, err
			}
			batchSweep(fig, eng, c.dev+" "+c.fw+" "+m, []int{1, 16, 32}, 512)
		}
	}
	return &Output{Figure: fig}, nil
}

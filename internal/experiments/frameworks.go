package experiments

import (
	"fmt"

	"llmbench/internal/metrics"
	"llmbench/internal/parallel"
	"llmbench/internal/perplexity"
	"llmbench/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "fig6",
		Title:    "TRT-LLM: 7B models on one GH200, H100, A100 (len 1024)",
		Workload: "batch {1,16,32,64}",
		Modules:  []string{"engine", "hw"},
		Run:      fig6,
	})
	register(&Experiment{
		ID:       "fig7",
		Title:    "TRT-LLM: MoE and 70B models on four A100 and H100 GPUs (len 1024)",
		Workload: "batch {1,16,32,64}, TP=4",
		Modules:  []string{"engine", "parallel"},
		Run:      fig7,
	})
	register(&Experiment{
		ID:       "fig8",
		Title:    "vLLM: 7B models on one GPU (len 1024)",
		Workload: "batch {1,16,32,64} on H100, A100, GH200, MI250, MI300X",
		Modules:  []string{"engine", "hw"},
		Run:      fig8,
	})
	register(&Experiment{
		ID:       "fig9",
		Title:    "vLLM: MoE/70B models on four GPUs (len 1024)",
		Workload: "batch {1,16,32,64}, TP=4 on H100, A100, MI250",
		Modules:  []string{"engine", "parallel"},
		Run:      fig9,
	})
	register(&Experiment{
		ID:       "fig10",
		Title:    "Perplexity vs throughput of ~7B models (one A100, vLLM, batch 32, len 1024)",
		Workload: "11 models on the synthetic LongBench-like corpus",
		Modules:  []string{"perplexity", "engine"},
		Run:      func() (*Output, error) { return perplexityScatter("fig10", "A100") },
	})
	register(&Experiment{
		ID:       "fig11",
		Title:    "DS-MII: scaling of 7B models on A100 GPUs (len 128)",
		Workload: "GPUs {1,2,4} × batch {16,32,64}",
		Modules:  []string{"engine", "parallel"},
		Run:      fig11,
	})
	register(&Experiment{
		ID:       "fig12",
		Title:    "Mixtral-8x7B: TRT-LLM vs DS-MII vs vLLM on four A100s",
		Workload: "batch {1,16,32,64} × length {128, 2048}",
		Modules:  []string{"engine", "framework"},
		Run:      fig12,
	})
	register(&Experiment{
		ID:       "fig13",
		Title:    "llama.cpp: 7B models on one GPU (len 1024)",
		Workload: "batch {1,16,32,64} on GH200, H100, A100, MI250, MI300X",
		Modules:  []string{"engine", "framework"},
		Run:      fig13,
	})
	register(&Experiment{
		ID:       "fig14",
		Title:    "llama.cpp: 7B model GPU scaling (batch 64, len 1024)",
		Workload: "GPUs {1,2,4} across five platforms",
		Modules:  []string{"engine", "parallel"},
		Run:      fig14,
	})
}

var models7B = []string{"Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"}

func fig6() (*Output, error) {
	fig := &metrics.Figure{ID: "fig6", Title: "TRT-LLM 7B models (GH200/H100/A100, len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, dev := range []string{"GH200", "H100", "A100"} {
		for _, m := range models7B {
			eng, err := mk(m, dev, "TRT-LLM", parallel.Single)
			if err != nil {
				return nil, err
			}
			batchSweep(fig, eng, dev+", "+m, workload.PaperBatches, 1024)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig7() (*Output, error) {
	fig := &metrics.Figure{ID: "fig7", Title: "TRT-LLM MoE and 70B models (4×A100/H100, len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, dev := range []string{"H100", "A100"} {
		for _, m := range []string{"Mixtral-8x7B", "LLaMA-3-70B", "LLaMA-2-70B"} {
			eng, err := mk(m, dev, "TRT-LLM", tp(4))
			if err != nil {
				return nil, err
			}
			batchSweep(fig, eng, dev+" "+m, workload.PaperBatches, 1024)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig8() (*Output, error) {
	fig := &metrics.Figure{ID: "fig8", Title: "vLLM 7B models on one GPU (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, dev := range []string{"H100", "A100", "GH200", "MI250", "MI300X"} {
		for _, m := range []string{"LLaMA-3-8B", "LLaMA-2-7B"} {
			eng, err := mk(m, dev, "vLLM", parallel.Single)
			if err != nil {
				return nil, err
			}
			batchSweep(fig, eng, dev+" "+m, workload.PaperBatches, 1024)
		}
	}
	// The paper also highlights Qwen2-7B on GH200 as the fastest 7B.
	qwen, err := mk("Qwen2-7B", "GH200", "vLLM", parallel.Single)
	if err != nil {
		return nil, err
	}
	batchSweep(fig, qwen, "GH200 Qwen2-7B", workload.PaperBatches, 1024)
	return &Output{Figure: fig}, nil
}

func fig9() (*Output, error) {
	fig := &metrics.Figure{ID: "fig9", Title: "vLLM MoE/70B models on four GPUs (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	combos := []struct{ dev, m string }{
		{"H100", "LLaMA-2-70B"}, {"H100", "LLaMA-3-70B"}, {"H100", "Qwen2-72B"},
		{"A100", "LLaMA-2-70B"}, {"A100", "Mixtral-8x7B"},
		{"MI250", "LLaMA-2-70B"}, {"MI250", "LLaMA-3-70B"}, {"MI250", "Mixtral-8x7B"}, {"MI250", "Qwen2-72B"},
	}
	for _, c := range combos {
		eng, err := mk(c.m, c.dev, "vLLM", tp(4))
		if err != nil {
			return nil, err
		}
		batchSweep(fig, eng, c.dev+" "+c.m, workload.PaperBatches, 1024)
	}
	return &Output{Figure: fig}, nil
}

// perplexityScatter builds Fig. 10 (A100) and Fig. 29 (H100).
func perplexityScatter(id, dev string) (*Output, error) {
	fig := &metrics.Figure{ID: id,
		Title:  fmt.Sprintf("Perplexity vs throughput of ~7B models (one %s, vLLM, batch 32, len 1024)", dev),
		XLabel: "Perplexity", YLabel: "Throughput (tokens/s)"}
	ev, err := perplexity.NewEvaluator()
	if err != nil {
		return nil, err
	}
	names := perplexity.ScatterModels()
	if id == "fig29" {
		// Fig. 29's legend omits Mistral-7B and Gemma-7B.
		names = filterOut(names, "Mistral-7B", "Gemma-7B")
	}
	spec := workload.Spec{Batch: 32, Input: 1024, Output: 1024}
	for _, name := range names {
		ppl, err := ev.ModelPerplexity(name)
		if err != nil {
			return nil, err
		}
		eng, err := mk(name, dev, "vLLM", parallel.Single)
		if err != nil {
			return nil, err
		}
		res, err := runPoint(eng, spec)
		if err != nil {
			fig.Note("%s skipped: %v", name, err)
			continue
		}
		fig.Add(name, ppl, res.Throughput)
	}
	return &Output{Figure: fig}, nil
}

func filterOut(names []string, drop ...string) []string {
	out := names[:0:0]
	for _, n := range names {
		skip := false
		for _, d := range drop {
			if n == d {
				skip = true
			}
		}
		if !skip {
			out = append(out, n)
		}
	}
	return out
}

func fig11() (*Output, error) {
	fig := &metrics.Figure{ID: "fig11", Title: "DS-MII 7B model scaling on A100 (len 128)",
		XLabel: "Number of GPUs", YLabel: "Throughput (tokens/s)"}
	for _, batch := range []int{16, 32, 64} {
		for _, m := range []string{"LLaMA-2-7B", "Mistral-7B", "LLaMA-3-8B"} {
			for _, gpus := range []int{1, 2, 4} {
				eng, err := mk(m, "A100", "DS-MII", tp(gpus))
				if err != nil {
					return nil, err
				}
				addOrNote(fig, eng, fmt.Sprintf("%d %s", batch, m), float64(gpus),
					workload.Spec{Batch: batch, Input: 128, Output: 128}, throughput)
			}
		}
	}
	return &Output{Figure: fig}, nil
}

func fig12() (*Output, error) {
	fig := &metrics.Figure{ID: "fig12", Title: "Mixtral-8x7B: TRT-LLM vs DS-MII vs vLLM (4×A100)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, fw := range []string{"TRT-LLM", "vLLM", "DS-MII"} {
		eng, err := mk("Mixtral-8x7B", "A100", fw, tp(4))
		if err != nil {
			return nil, err
		}
		for _, l := range []int{128, 2048} {
			batchSweep(fig, eng, fmt.Sprintf("%d %s", l, fw), workload.PaperBatches, l)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig13() (*Output, error) {
	fig := &metrics.Figure{ID: "fig13", Title: "llama.cpp 7B models on one GPU (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, dev := range []string{"GH200", "H100", "A100", "MI250", "MI300X"} {
		for _, m := range []string{"LLaMA-2-7B", "Mistral-7B", "LLaMA-3-8B"} {
			eng, err := mk(m, dev, "llama.cpp", parallel.Single)
			if err != nil {
				return nil, err
			}
			batchSweep(fig, eng, dev+" "+m, workload.PaperBatches, 1024)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig14() (*Output, error) {
	fig := &metrics.Figure{ID: "fig14", Title: "llama.cpp 7B model GPU scaling (batch 64, len 1024)",
		XLabel: "Number of GPUs", YLabel: "Throughput (tokens/s)"}
	spec := workload.Spec{Batch: 64, Input: 1024, Output: 1024}
	for _, dev := range []string{"GH200", "H100", "A100", "MI300X", "MI250"} {
		maxGPUs := 4
		if dev == "GH200" {
			maxGPUs = 1
		}
		for _, m := range []string{"LLaMA-2-7B", "Mistral-7B", "LLaMA-3-8B"} {
			for _, gpus := range []int{1, 2, 4} {
				if gpus > maxGPUs {
					continue
				}
				eng, err := mk(m, dev, "llama.cpp", parallel.Plan{TP: 1, PP: gpus, EP: 1})
				if err != nil {
					return nil, err
				}
				addOrNote(fig, eng, dev+" "+m, float64(gpus), spec, throughput)
			}
		}
	}
	return &Output{Figure: fig}, nil
}

package experiments

import (
	"testing"

	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/model"
	"llmbench/internal/parallel"
)

// TestResultCacheHitAcrossFigureRuns regenerates one figure twice:
// the second run must be served entirely from the result cache (no
// new misses) and render identically.
func TestResultCacheHitAcrossFigureRuns(t *testing.T) {
	exp, err := Get("fig6")
	if err != nil {
		t.Fatal(err)
	}
	first, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	lookups0, misses0 := ResultCacheCounts()
	second, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	lookups1, misses1 := ResultCacheCounts()
	if lookups1 <= lookups0 {
		t.Fatalf("second run recorded no cache lookups (%d -> %d)", lookups0, lookups1)
	}
	if misses1 != misses0 {
		t.Errorf("second run missed the result cache %d times; every point must hit", misses1-misses0)
	}
	if first.Markdown() != second.Markdown() {
		t.Error("cached figure renders differently from the computed one")
	}
}

// TestResultCacheSharedAcrossExperiments runs two different figures
// that price overlapping (system, workload) points — fig8 (vLLM 7B
// sweeps, including A100) and fig15 (frameworks on A100, including
// vLLM) both evaluate LLaMA-3-8B/A100/vLLM at the paper's batches —
// and checks the overlap is paid once: the second figure records
// fewer misses than lookups.
func TestResultCacheSharedAcrossExperiments(t *testing.T) {
	fig8, err := Get("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fig8.Run(); err != nil {
		t.Fatal(err)
	}
	lookups0, misses0 := ResultCacheCounts()
	fig15, err := Get("fig15")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fig15.Run(); err != nil {
		t.Fatal(err)
	}
	lookups1, misses1 := ResultCacheCounts()
	if hits := (lookups1 - lookups0) - (misses1 - misses0); hits <= 0 {
		t.Errorf("fig15 after fig8 recorded no cross-experiment cache hits (%d lookups, %d misses)",
			lookups1-lookups0, misses1-misses0)
	}
}

// TestOneEngineCacheAcrossLayers pins the unification: the experiment
// helper and a direct engine.Cached call resolve to the same *Engine,
// because there is exactly one engine cache in the process.
func TestOneEngineCacheAcrossLayers(t *testing.T) {
	a, err := mk("LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.Cached(engine.Config{
		Model:     model.MustGet("LLaMA-3-8B"),
		Device:    hw.MustGet("A100"),
		Framework: framework.MustGet("vLLM"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("experiments and engine.Cached must share one engine instance")
	}
}

package experiments

// Anchor tests pin the simulation to the quantitative claims the paper
// makes in prose. Each test names the paper statement and asserts the
// reproduced ratio inside a generous shape band — we require the right
// winner and roughly the right factor, not the exact testbed number.
// EXPERIMENTS.md records the measured values next to the paper's.

import (
	"testing"

	"llmbench/internal/metrics"
)

func runFig(t *testing.T, id string) *metrics.Figure {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Figure == nil {
		t.Fatalf("%s has no figure", id)
	}
	return out.Figure
}

func at(t *testing.T, fig *metrics.Figure, label string, x float64) float64 {
	t.Helper()
	s, err := fig.Get(label)
	if err != nil {
		t.Fatalf("%s: %v", fig.ID, err)
	}
	v, err := s.At(x)
	if err != nil {
		t.Fatalf("%s/%s: %v", fig.ID, label, err)
	}
	return v
}

func inBand(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.3g, want in [%g, %g]", name, got, lo, hi)
	}
}

func TestAnchorFig1aBatchScaling(t *testing.T) {
	// "For a batch size of 64, the throughput is 26.6x greater than
	// that of a batch size of 1 for a token length of 2048 on A100."
	fig := runFig(t, "fig1a")
	ratio := at(t, fig, "len 2048", 64) / at(t, fig, "len 2048", 1)
	inBand(t, "fig1a bs64/bs1 at len 2048 (paper 26.6)", ratio, 10, 45)
}

func TestAnchorFig1bBlendedTokens(t *testing.T) {
	// "the throughput for an {input, output} size of {1024, 128} is
	// 14.6 times greater than for {128, 1024}".
	fig := runFig(t, "fig1b")
	ratio := at(t, fig, "out 128", 1024) / at(t, fig, "out 1024", 128)
	inBand(t, "fig1b {1024,128}/{128,1024} (paper 14.6)", ratio, 5, 22)
}

func TestAnchorFig2aKVCache(t *testing.T) {
	// "a substantial improvement (~2x for 128 and ~7x for 1024 length)
	// in throughput with KV caching".
	fig := runFig(t, "fig2a")
	r128 := at(t, fig, "w KV Cache", 128) / at(t, fig, "w/o KV Cache", 128)
	r1024 := at(t, fig, "w KV Cache", 1024) / at(t, fig, "w/o KV Cache", 1024)
	inBand(t, "fig2a KV speedup at 128 (paper ~2)", r128, 1.3, 4.5)
	inBand(t, "fig2a KV speedup at 1024 (paper ~7)", r1024, 3, 15)
	if r1024 <= r128 {
		t.Error("KV-cache benefit must grow with length")
	}
}

func TestAnchorFig2bBlockSize(t *testing.T) {
	// "For a batch size of 64, the throughput for block size 16 is
	// 1.27x greater than block size 8."
	fig := runFig(t, "fig2b")
	ratio := at(t, fig, "block 16", 64) / at(t, fig, "block 8", 64)
	inBand(t, "fig2b block16/block8 at bs64 (paper 1.27)", ratio, 1.05, 1.6)
	// Blocks ≥ 16 equivalent.
	for _, blk := range []string{"block 32", "block 64", "block 128"} {
		r := at(t, fig, blk, 64) / at(t, fig, "block 16", 64)
		inBand(t, "fig2b "+blk+" vs 16", r, 0.97, 1.03)
	}
}

func TestAnchorFig3Quantization(t *testing.T) {
	// "FP8 on H100 and Int8 on A100 can provide performance benefit
	// compared to FP16."
	fig := runFig(t, "fig3")
	h100fp8 := at(t, fig, "H100, vLLM, {fp8, fp8}", 64)
	h100fp16 := at(t, fig, "H100, vLLM, {fp16, fp16}", 64)
	if h100fp8 <= h100fp16 {
		t.Errorf("H100 fp8 (%.0f) must beat fp16 (%.0f)", h100fp8, h100fp16)
	}
	a100int8 := at(t, fig, "A100, TRT-LLM, {int8, int8}", 64)
	a100fp16kv8 := at(t, fig, "A100, TRT-LLM, {fp16, fp8}", 64)
	if a100int8 <= a100fp16kv8 {
		t.Errorf("A100 int8 (%.0f) must beat fp16 weights (%.0f)", a100int8, a100fp16kv8)
	}
}

func TestAnchorFig4aNAS(t *testing.T) {
	// "the performance benefit of DeciLM-7B over LLaMA-3-8B and
	// Mistral-7B on A100 and H100 GPUs".
	fig := runFig(t, "fig4a")
	for _, dev := range []string{"H100", "A100"} {
		deci := at(t, fig, dev+" DeciLM-7B", 64)
		mistral := at(t, fig, dev+" Mistral-7B", 64)
		llama := at(t, fig, dev+" LLaMA-3-8B", 64)
		if !(deci > mistral && mistral > llama) {
			t.Errorf("%s: want DeciLM > Mistral > LLaMA-3-8B, got %.0f / %.0f / %.0f",
				dev, deci, mistral, llama)
		}
	}
}

func TestAnchorFig4bSpeculativeDecoding(t *testing.T) {
	// "SD improves the performance of only the 7B model" and the
	// benefit shrinks with sequence length.
	fig := runFig(t, "fig4b")
	g128 := at(t, fig, "LLaMA-2-7B w SD", 128) / at(t, fig, "LLaMA-2-7B w/o SD", 128)
	g1024 := at(t, fig, "LLaMA-2-7B w SD", 1024) / at(t, fig, "LLaMA-2-7B w/o SD", 1024)
	if g128 <= 1 {
		t.Errorf("SD must help LLaMA-2-7B at 128, gain = %.2f", g128)
	}
	if g1024 >= g128 {
		t.Errorf("SD gain must shrink with length: %.2f -> %.2f", g128, g1024)
	}
	m := at(t, fig, "Mixtral-8x7B w SD", 256) / at(t, fig, "Mixtral-8x7B w/o SD", 256)
	if m >= 1 {
		t.Errorf("SD must not help Mixtral, gain = %.2f", m)
	}
}

func TestAnchorFig5aParallelism(t *testing.T) {
	// "TP is 1.30x faster than the hybrid approach (TP=2,PP=2) and
	// 1.94x faster than PP on 4 A100 GPUs using LLaMA-3-8B."
	fig := runFig(t, "fig5a")
	tp4 := at(t, fig, "TP", 4)
	pp4 := at(t, fig, "PP", 4)
	hy := at(t, fig, "TP = 2, PP = 2", 4)
	inBand(t, "fig5a TP/PP (paper 1.94)", tp4/pp4, 1.4, 2.6)
	inBand(t, "fig5a TP/hybrid (paper 1.30)", tp4/hy, 1.05, 1.7)
}

func TestAnchorFig5bEP(t *testing.T) {
	// Fig. 5b: TP best; PP worst; EP and hybrid in between.
	fig := runFig(t, "fig5b")
	tp := at(t, fig, "TP", 1024)
	pp := at(t, fig, "PP", 1024)
	ep := at(t, fig, "EP", 1024)
	if !(tp > ep && ep > pp) {
		t.Errorf("want TP > EP > PP at len 1024, got %.0f / %.0f / %.0f", tp, ep, pp)
	}
}

func TestAnchorFig6GQAAndGenerations(t *testing.T) {
	// "GQA models (Mistral-7B and LLaMA-3-8B) are approximately 1.9x
	// and 2.79x faster than LLaMA-2-7B on H100 and A100, respectively,
	// for batch size 64", and GH200 > H100 > A100.
	fig := runFig(t, "fig6")
	h := at(t, fig, "H100, Mistral-7B", 64) / at(t, fig, "H100, LLaMA-2-7B", 64)
	a := at(t, fig, "A100, Mistral-7B", 64) / at(t, fig, "A100, LLaMA-2-7B", 64)
	inBand(t, "fig6 GQA/MHSA on H100 (paper 1.9)", h, 1.2, 3.2)
	inBand(t, "fig6 GQA/MHSA on A100 (paper 2.79)", a, 1.4, 4.5)
	if a <= 1 || h <= 1 {
		t.Error("GQA must win under TRT-LLM at batch 64")
	}
	for _, m := range []string{"Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"} {
		gh := at(t, fig, "GH200, "+m, 64)
		h1 := at(t, fig, "H100, "+m, 64)
		a1 := at(t, fig, "A100, "+m, 64)
		if !(gh > h1 && h1 > a1) {
			t.Errorf("%s: want GH200 > H100 > A100, got %.0f / %.0f / %.0f", m, gh, h1, a1)
		}
	}
}

func TestAnchorFig7MoEAnd70B(t *testing.T) {
	// "The Mixtral model outperforms 70B models, whereas LLaMA-2-70B
	// outperforms LLaMA-3-70B"; "throughput of LLaMA-3-70B on H100
	// improves by a factor of 39x when increasing the batch size from
	// 1 to 64 as opposed to 3x on A100".
	fig := runFig(t, "fig7")
	for _, dev := range []string{"H100", "A100"} {
		mix := at(t, fig, dev+" Mixtral-8x7B", 64)
		l3 := at(t, fig, dev+" LLaMA-3-70B", 64)
		l2 := at(t, fig, dev+" LLaMA-2-70B", 64)
		if !(mix > l2 && l2 > l3) {
			t.Errorf("%s: want Mixtral > LLaMA-2-70B > LLaMA-3-70B, got %.0f / %.0f / %.0f",
				dev, mix, l2, l3)
		}
	}
	hScale := at(t, fig, "H100 LLaMA-3-70B", 64) / at(t, fig, "H100 LLaMA-3-70B", 1)
	aScale := at(t, fig, "A100 LLaMA-3-70B", 64) / at(t, fig, "A100 LLaMA-3-70B", 1)
	if hScale <= 2.5*aScale {
		t.Errorf("H100 must scale far better with batch than A100 (paper 39x vs 3x): %.1f vs %.1f",
			hScale, aScale)
	}
}

func TestAnchorFig8GH200Best(t *testing.T) {
	// "vLLM on GH200 consistently achieves the highest throughput
	// across all batch sizes, and H100 is the second-best".
	fig := runFig(t, "fig8")
	for _, b := range []float64{1, 16, 32, 64} {
		gh := at(t, fig, "GH200 LLaMA-3-8B", b)
		h := at(t, fig, "H100 LLaMA-3-8B", b)
		a := at(t, fig, "A100 LLaMA-3-8B", b)
		if !(gh > h && h > a) {
			t.Errorf("batch %g: want GH200 > H100 > A100, got %.0f / %.0f / %.0f", b, gh, h, a)
		}
	}
	// "A100 and MI250 show similar performance ... with A100
	// marginally ahead."
	a := at(t, fig, "A100 LLaMA-3-8B", 16)
	mi := at(t, fig, "MI250 LLaMA-3-8B", 16)
	if a <= mi {
		t.Errorf("A100 (%.0f) must be marginally ahead of MI250 (%.0f)", a, mi)
	}
	inBand(t, "fig8 A100/MI250 at bs16 ('similar')", a/mi, 1, 3.2)
}

func TestAnchorFig9Vocab70B(t *testing.T) {
	// "LLaMA-2-70B is faster than LLaMA-3-70B and Qwen-2-72B. Also,
	// the Mixtral-8x7B model performs better than the 70B models."
	fig := runFig(t, "fig9")
	l2 := at(t, fig, "H100 LLaMA-2-70B", 64)
	l3 := at(t, fig, "H100 LLaMA-3-70B", 64)
	qw := at(t, fig, "H100 Qwen2-72B", 64)
	if !(l2 > l3 && l3 >= qw*0.95) {
		t.Errorf("want LLaMA-2-70B > LLaMA-3-70B ≳ Qwen2-72B, got %.0f / %.0f / %.0f", l2, l3, qw)
	}
	mix := at(t, fig, "A100 Mixtral-8x7B", 64)
	if mix <= at(t, fig, "A100 LLaMA-2-70B", 64) {
		t.Error("Mixtral must beat the dense 70Bs on A100")
	}
}

func TestAnchorFig10Scatter(t *testing.T) {
	// "LLaMA-2-7B has better perplexity than LLaMA-3-8B and
	// Mistral-7B"; "DeciLM-7B has the highest throughput"; "Gemma-7B
	// has the lowest throughput".
	fig := runFig(t, "fig10")
	best := ""
	bestPPL := 1e9
	var deciTPS, maxTPS, gemmaTPS float64
	minTPS := 1e18
	for _, s := range fig.Series {
		p := s.Points[0]
		if p.X < bestPPL {
			bestPPL = p.X
			best = s.Label
		}
		if s.Label == "DeciLM-7B" {
			deciTPS = p.Y
		}
		if s.Label == "Gemma-7B" {
			gemmaTPS = p.Y
		}
		if p.Y > maxTPS {
			maxTPS = p.Y
		}
		if p.Y < minTPS {
			minTPS = p.Y
		}
	}
	if best != "LLaMA-2-7B" {
		t.Errorf("best perplexity model = %s, want LLaMA-2-7B", best)
	}
	if deciTPS < maxTPS {
		t.Errorf("DeciLM-7B (%.0f) must have the highest throughput (max %.0f)", deciTPS, maxTPS)
	}
	if gemmaTPS > minTPS {
		t.Errorf("Gemma-7B (%.0f) must have the lowest throughput (min %.0f)", gemmaTPS, minTPS)
	}
}

func TestAnchorFig11DSMII(t *testing.T) {
	// "On a single A100 GPU, LLaMA-2-7B is 1.18 times faster than
	// LLaMA-3-8B for a batch size of 64 and input/output length of
	// 128" under DS-MII.
	fig := runFig(t, "fig11")
	ratio := at(t, fig, "64 LLaMA-2-7B", 1) / at(t, fig, "64 LLaMA-3-8B", 1)
	inBand(t, "fig11 LLaMA-2/LLaMA-3 under DS-MII (paper 1.18)", ratio, 1.02, 1.6)
	// 7B models scale across 1, 2, 4 devices.
	if at(t, fig, "64 LLaMA-2-7B", 4) <= at(t, fig, "64 LLaMA-2-7B", 1) {
		t.Error("DS-MII must scale with GPUs")
	}
}

func TestAnchorFig12DSMIIMixtral(t *testing.T) {
	// "DS-MII is 1.04x faster than vLLM for batch size 64 and
	// input/output length 2048" (Mixtral, 4×A100); TRT-LLM best
	// overall.
	fig := runFig(t, "fig12")
	ds := at(t, fig, "2048 DS-MII", 64)
	vl := at(t, fig, "2048 vLLM", 64)
	inBand(t, "fig12 DS-MII/vLLM at bs64 len2048 (paper 1.04)", ds/vl, 1.0, 1.45)
	trt := at(t, fig, "2048 TRT-LLM", 64)
	if trt <= ds {
		t.Errorf("TRT-LLM (%.0f) must stay fastest (DS-MII %.0f)", trt, ds)
	}
}

func TestAnchorFig13LlamaCppFlat(t *testing.T) {
	// llama.cpp shows only "marginal performance benefits" with batch.
	fig := runFig(t, "fig13")
	for _, dev := range []string{"A100", "H100", "MI250"} {
		r := at(t, fig, dev+" LLaMA-2-7B", 64) / at(t, fig, dev+" LLaMA-2-7B", 1)
		inBand(t, "fig13 "+dev+" llama.cpp bs64/bs1", r, 1, 8)
	}
	// And absolute throughput far below the optimized frameworks
	// (Fig. 13 y-axis tops out around 200 tokens/s).
	if v := at(t, fig, "H100 LLaMA-2-7B", 64); v > 700 {
		t.Errorf("llama.cpp H100 throughput %.0f implausibly high", v)
	}
}

func TestAnchorFig15FrameworkOrder(t *testing.T) {
	// "TRT-LLM outperforms vLLM and DS-MII on Nvidia hardware …
	// llama.cpp is the slowest of the frameworks."
	fig := runFig(t, "fig15")
	for _, m := range []string{"Mistral-7B", "LLaMA-3-8B"} {
		trt := at(t, fig, "TRT-LLM "+m, 64)
		vl := at(t, fig, "vLLM "+m, 64)
		ds := at(t, fig, "DS-MII "+m, 64)
		lc := at(t, fig, "llama.cpp "+m, 64)
		if !(trt > vl && vl > ds && ds > lc) {
			t.Errorf("%s: want TRT > vLLM > DS-MII > llama.cpp, got %.0f / %.0f / %.0f / %.0f",
				m, trt, vl, ds, lc)
		}
	}
}

func TestAnchorFig16Power(t *testing.T) {
	// "TRT-LLM consumes more power than vLLM due to more utilization
	// of the hardware and delivers more performance per watt"; "the
	// performance per watt ratio for LLaMA-3-8B … is higher than
	// LLaMA-2-7B".
	fig := runFig(t, "fig16")
	for _, dev := range []string{"H100", "A100"} {
		trtW := at(t, fig, dev+" TRT-LLM LLaMA-3-8B [W]", 64)
		vlW := at(t, fig, dev+" vLLM LLaMA-3-8B [W]", 64)
		if trtW <= vlW {
			t.Errorf("%s: TRT-LLM power %.0f must exceed vLLM %.0f", dev, trtW, vlW)
		}
		trtE := at(t, fig, dev+" TRT-LLM LLaMA-3-8B [tok/s/W]", 64)
		vlE := at(t, fig, dev+" vLLM LLaMA-3-8B [tok/s/W]", 64)
		if trtE <= vlE {
			t.Errorf("%s: TRT-LLM perf/W %.2f must exceed vLLM %.2f", dev, trtE, vlE)
		}
		l3 := at(t, fig, dev+" TRT-LLM LLaMA-3-8B [tok/s/W]", 64)
		l2 := at(t, fig, dev+" TRT-LLM LLaMA-2-7B [tok/s/W]", 64)
		if l3 <= l2 {
			t.Errorf("%s: LLaMA-3-8B perf/W %.2f must exceed LLaMA-2-7B %.2f", dev, l3, l2)
		}
	}
}

func TestAnchorFig17MI250Saturation(t *testing.T) {
	// "The throughput of LLaMA-3-8B drops beyond batch size 32 with an
	// increase in input/output length."
	fig := runFig(t, "fig17")
	if at(t, fig, "1 1024", 64) >= at(t, fig, "1 1024", 32) {
		t.Error("MI250 single-GPU throughput must drop from bs32 to bs64 at len 1024")
	}
	if at(t, fig, "1 128", 64) <= at(t, fig, "1 128", 32) {
		t.Error("MI250 must still scale at len 128")
	}
}

func TestAnchorFig18SN40LBest(t *testing.T) {
	// SN40L (8 RDUs) beats 4×H100 and 4×A100 for 7B at batch 1, and
	// its throughput rises with length until ~512.
	fig := runFig(t, "fig18")
	for _, m := range []string{"Mistral-7B", "LLaMA-3-8B"} {
		sn := at(t, fig, "SN40L "+m, 1024)
		h := at(t, fig, "H100 "+m, 1024)
		a := at(t, fig, "A100 "+m, 1024)
		if !(sn > h && h > a) {
			t.Errorf("%s: want SN40L > H100 > A100 at len 1024, got %.0f / %.0f / %.0f", m, sn, h, a)
		}
	}
	if at(t, fig, "SN40L Mistral-7B", 512) <= at(t, fig, "SN40L Mistral-7B", 128) {
		t.Error("SN40L throughput must rise with length till 512")
	}
}

func TestAnchorFig19SN40L70B(t *testing.T) {
	fig := runFig(t, "fig19")
	sn := at(t, fig, "SN40L LLaMA-3-70B", 1024)
	h := at(t, fig, "H100 LLaMA-3-70B", 1024)
	if sn <= h {
		t.Errorf("SN40L (%.0f) must beat 4×H100 (%.0f) for 70B at batch 1", sn, h)
	}
}

func TestAnchorFig20Gaudi2Between(t *testing.T) {
	// "The throughput of Gaudi2 is better than A100 … lagging behind
	// H100."
	fig := runFig(t, "fig20")
	for _, m := range []string{"Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"} {
		h := at(t, fig, "H100 TRT-LLM "+m, 16)
		g := at(t, fig, "Gaudi2 DeepSpeed "+m, 16)
		a := at(t, fig, "A100 TRT-LLM "+m, 16)
		if !(h > g && g > a) {
			t.Errorf("%s: want H100 > Gaudi2 > A100 at bs16, got %.0f / %.0f / %.0f", m, h, g, a)
		}
	}
}

func TestAnchorFig21TTFT(t *testing.T) {
	// "SN40L exhibits higher TTFT compared to other hardware" —
	// around 2.85 s at batch 16, input 1024, vs hundreds of ms on
	// GPUs.
	fig := runFig(t, "fig21")
	sn := at(t, fig, "SN40L SambaFlow", 1)
	inBand(t, "fig21 SN40L TTFT (paper 2.85 s)", sn, 1.8, 4.5)
	for _, c := range []string{"GH200 TRT-LLM", "H100 TRT-LLM", "A100 TRT-LLM"} {
		v := at(t, fig, c, 1)
		if v >= sn {
			t.Errorf("%s TTFT %.2f must be far below SN40L %.2f", c, v, sn)
		}
		if v <= 0 || v > 1.5 {
			t.Errorf("%s TTFT %.2f outside GPU band", c, v)
		}
	}
	gh := at(t, fig, "GH200 TRT-LLM", 1)
	a := at(t, fig, "A100 TRT-LLM", 1)
	if gh >= a {
		t.Errorf("GH200 TTFT %.3f must beat A100 %.3f", gh, a)
	}
}

func TestAnchorFig22ITL(t *testing.T) {
	// "it demonstrates lower ITL, indicating faster token generation
	// after the initial output" (SN40L), and A100-class ITL is the
	// worst among the TRT-LLM rows.
	fig := runFig(t, "fig22")
	sn := at(t, fig, "SN40L SambaFlow", 1)
	for _, c := range []string{"GH200 TRT-LLM", "H100 TRT-LLM", "A100 TRT-LLM", "A100 vLLM", "MI250 vLLM"} {
		if v := at(t, fig, c, 1); v <= sn {
			t.Errorf("%s ITL %.3f must exceed SN40L %.3f", c, v, sn)
		}
	}
	if at(t, fig, "A100 TRT-LLM", 1) <= at(t, fig, "H100 TRT-LLM", 1) {
		t.Error("A100 ITL must exceed H100 ITL")
	}
}

func TestAnchorFig23CrossoverAtBatch64(t *testing.T) {
	// "SN40L has the best performance up to batch size 32" for
	// LLaMA-3-8B; at 64 the big NVIDIA parts take over.
	fig := runFig(t, "fig23")
	for _, b := range []float64{1, 16, 32} {
		sn := at(t, fig, "8 SN40L SambaFlow", b)
		for _, c := range []string{"1 GH200 TRT-LLM", "1 H100 TRT-LLM", "1 A100 TRT-LLM", "1 MI250 vLLM"} {
			if at(t, fig, c, b) >= sn {
				t.Errorf("batch %g: %s must trail SN40L", b, c)
			}
		}
	}
	sn64 := at(t, fig, "8 SN40L SambaFlow", 64)
	h64 := at(t, fig, "1 H100 TRT-LLM", 64)
	if h64 <= sn64 {
		t.Errorf("at batch 64 H100 (%.0f) must overtake SN40L (%.0f)", h64, sn64)
	}
}

func TestAnchorFig25Peak(t *testing.T) {
	// Peak-throughput ordering: H100 and GH200 at the top (~10k
	// tokens/s), MI250 at the bottom.
	fig := runFig(t, "fig25")
	h := at(t, fig, "1 H100 (TRT-LLM)", 1) // LLaMA-3-8B column
	mi := at(t, fig, "1 MI250 (vLLM)", 1)
	a := at(t, fig, "1 A100 (TRT-LLM)", 1)
	if !(h > a && a > mi) {
		t.Errorf("want H100 > A100 > MI250 peaks, got %.0f / %.0f / %.0f", h, a, mi)
	}
	inBand(t, "fig25 H100 peak (paper ~10k tokens/s)", h, 5000, 20000)
}

func TestAnchorFig35MI250PeakAt32(t *testing.T) {
	// "Qwen2-7B, Mistral-7B and LLaMA-3-8B models attain their peak
	// performance at batch size 32 and decline for batch size 64.
	// However, LLaMA-2-7B achieves the highest throughput … at batch
	// size 64."
	fig := runFig(t, "fig35")
	for _, m := range []string{"Qwen2-7B", "Mistral-7B", "LLaMA-3-8B"} {
		if at(t, fig, m, 64) >= at(t, fig, m, 32) {
			t.Errorf("%s on MI250 must peak at batch 32", m)
		}
	}
}

func TestAnchorFig36LlamaCppMI250(t *testing.T) {
	// "LLaMA-2-7B using llama.cpp on MI250 attains the best
	// performance across all batch sizes compared to other models."
	fig := runFig(t, "fig36")
	for _, b := range []float64{1, 16, 32, 64} {
		l2 := at(t, fig, "LLaMA-2-7B", b)
		for _, m := range []string{"Mistral-7B", "LLaMA-3-8B", "Qwen2-7B"} {
			if at(t, fig, m, b) > l2 {
				t.Errorf("batch %g: %s must not beat LLaMA-2-7B under llama.cpp", b, m)
			}
		}
	}
}

func TestAnchorFig38Gaudi70B(t *testing.T) {
	// "the performance of Gaudi2 lies between H100 and A100 across all
	// the models."
	fig := runFig(t, "fig38")
	for _, m := range []string{"LLaMA-2-70B", "LLaMA-3-70B"} {
		h := at(t, fig, "H100 TRT-LLM "+m, 16)
		g := at(t, fig, "Gaudi2 DeepSpeed "+m, 16)
		a := at(t, fig, "A100 TRT-LLM "+m, 16)
		if !(h > g && g > a) {
			t.Errorf("%s: want H100 > Gaudi2 > A100 at bs16, got %.0f / %.0f / %.0f", m, h, g, a)
		}
	}
}

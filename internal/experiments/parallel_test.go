package experiments

import (
	"testing"
)

// TestReportDeterministicAcrossParallelism is the reproducibility
// contract of the pool refactor: the anchor table — Markdown and row
// values — must be byte-identical whether the figures regenerate
// serially or on eight workers.
func TestReportDeterministicAcrossParallelism(t *testing.T) {
	serial, err := ReportMarkdown(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ReportMarkdown(8)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("parallel report differs from serial:\n-- serial --\n%s\n-- parallel --\n%s", serial, parallel)
	}

	rowsSerial, err := Report(1)
	if err != nil {
		t.Fatal(err)
	}
	rowsParallel, err := Report(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsSerial) != len(rowsParallel) {
		t.Fatalf("row count differs: %d vs %d", len(rowsSerial), len(rowsParallel))
	}
	for i := range rowsSerial {
		if rowsSerial[i] != rowsParallel[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, rowsSerial[i], rowsParallel[i])
		}
	}
}

// TestRunExperimentsMatchesSerialRuns checks that the concurrent
// experiment runner returns outputs in id order with content
// identical to direct serial Run calls, including CSV bytes.
func TestRunExperimentsMatchesSerialRuns(t *testing.T) {
	ids := []string{"fig1a", "fig2b", "fig6", "tab1"}
	outs, err := RunExperiments(ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(ids) {
		t.Fatalf("got %d outputs for %d ids", len(outs), len(ids))
	}
	for i, id := range ids {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if outs[i].Markdown() != want.Markdown() {
			t.Errorf("%s: parallel markdown differs from serial", id)
		}
		if want.Figure != nil && outs[i].Figure.CSV() != want.Figure.CSV() {
			t.Errorf("%s: parallel CSV differs from serial", id)
		}
	}
}

func TestRunExperimentsUnknownID(t *testing.T) {
	if _, err := RunExperiments([]string{"fig1a", "nope"}, 2); err == nil {
		t.Fatal("unknown id must fail before running anything")
	}
}

// TestEngineCacheReuse checks that mk hands back the same engine for
// a repeated configuration instead of rebuilding it.
func TestEngineCacheReuse(t *testing.T) {
	a, err := mk("LLaMA-3-8B", "A100", "vLLM", tp(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk("LLaMA-3-8B", "A100", "vLLM", tp(1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("mk rebuilt an engine for a cached configuration")
	}
	c, err := mk("LLaMA-3-8B", "A100", "vLLM", tp(4))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("distinct plans must not share an engine")
	}
}

package experiments

// Second batch of extension experiments:
//
//   ext6 — cluster routing under bursty chat load: round-robin vs
//          least-loaded across burst factors, on the multi-replica
//          simulator.
//   ext7 — SLO-constrained batch autotuning: the largest batch each
//          accelerator sustains while keeping ITL under a chat SLO,
//          and the throughput it buys (the deployment question behind
//          §VII's takeaways).

import (
	"fmt"

	"llmbench/internal/cluster"
	"llmbench/internal/dtype"
	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/metrics"
	"llmbench/internal/model"
	"llmbench/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "ext6",
		Title:    "Extension: request routing under bursty chat load (4 replicas)",
		Workload: "Mistral-7B on A100 ×4, burst factor {1,2,4,8}, RR vs least-loaded",
		Modules:  []string{"cluster", "workload"},
		Run:      ext6,
	})
	register(&Experiment{
		ID:       "ext7",
		Title:    "Extension: SLO-constrained batch autotuning per accelerator",
		Workload: "LLaMA-3-8B, ITL ≤ 25 ms/token, len 1024",
		Modules:  []string{"engine"},
		Run:      ext7,
	})
}

func ext6() (*Output, error) {
	fig := &metrics.Figure{ID: "ext6", Title: "Routing policy vs burstiness (Mistral-7B, 4×A100, vLLM)",
		XLabel: "Burst factor", YLabel: "p99 latency (s)"}
	m := model.MustGet("Mistral-7B")
	makeReplicas := func() ([]cluster.Replica, error) {
		out := make([]cluster.Replica, 4)
		for i := range out {
			eng, err := engine.New(engine.Config{
				Model:     m,
				Device:    hw.MustGet("A100"),
				Framework: framework.MustGet("vLLM"),
			})
			if err != nil {
				return nil, err
			}
			alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 16*(1<<30))
			if err != nil {
				return nil, err
			}
			out[i] = cluster.Replica{Engine: eng, Alloc: alloc}
		}
		return out, nil
	}
	for _, burst := range []float64{1, 2, 4, 8} {
		reqs, err := workload.ChatTrace(workload.ChatTraceConfig{
			Seed: 31, Requests: 200, RatePerSec: 25, BurstFactor: burst,
			InputMedian: 512, OutputMedian: 128, Sigma: 0.8, MaxLen: 4096,
		})
		if err != nil {
			return nil, err
		}
		for _, pol := range []cluster.Policy{cluster.RoundRobin, cluster.LeastLoaded} {
			reps, err := makeReplicas()
			if err != nil {
				return nil, err
			}
			stats, err := cluster.Serve(cluster.Config{Replicas: reps, Policy: pol, MaxBatch: 16}, reqs)
			if err != nil {
				return nil, err
			}
			fig.Add(pol.String(), burst, stats.P99Latency)
		}
	}
	return &Output{Figure: fig}, nil
}

func ext7() (*Output, error) {
	fig := &metrics.Figure{ID: "ext7", Title: "Largest batch meeting a 25 ms ITL SLO (LLaMA-3-8B, len 1024)",
		XLabel: "Accelerator index", YLabel: "Batch / throughput (tokens/s)"}
	const sloITL = 0.025
	for i, c := range acceleratorCombos() {
		eng, err := mk("LLaMA-3-8B", c.dev, c.fw, c.plan)
		if err != nil {
			return nil, err
		}
		batch, res, err := engine.AutotuneBatch(eng, 1024, 1024, sloITL, 128)
		if err != nil {
			fig.Note("%s %s: %v", c.dev, c.fw, err)
			continue
		}
		label := fmt.Sprintf("%d %s %s", c.plan.Devices(), c.dev, c.fw)
		fig.Add(label+" [batch]", float64(i), float64(batch))
		fig.Add(label+" [tok/s]", float64(i), res.Throughput)
		fig.Note("%s sustains batch %d at %.1f ms ITL (%.0f tokens/s)",
			label, batch, res.ITLSeconds*1000, res.Throughput)
	}
	return &Output{Figure: fig}, nil
}

package experiments

// Cross-figure consistency: the same (model, device, framework,
// batch, length) point appears in several paper figures; the
// reproduction must give it the same value everywhere.

import (
	"math"
	"testing"
)

func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestFig6AndFig15AgreeOnA100TRT(t *testing.T) {
	// A100 + TRT-LLM + 7B models at len 1024 appear in both Fig. 6
	// (hardware comparison) and Fig. 15 (framework comparison).
	fig6 := runFig(t, "fig6")
	fig15 := runFig(t, "fig15")
	for _, m := range []string{"Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"} {
		for _, b := range []float64{1, 16, 32, 64} {
			v6 := at(t, fig6, "A100, "+m, b)
			v15 := at(t, fig15, "TRT-LLM "+m, b)
			if !closeEnough(v6, v15) {
				t.Errorf("%s bs %g: fig6 %.3f vs fig15 %.3f", m, b, v6, v15)
			}
		}
	}
}

func TestFig8AndFig35AgreeOnMI250(t *testing.T) {
	// MI250 + vLLM + LLaMA-3-8B at len 1024 appears in Fig. 8 and
	// Fig. 35.
	fig8 := runFig(t, "fig8")
	fig35 := runFig(t, "fig35")
	for _, b := range []float64{1, 16, 32, 64} {
		v8 := at(t, fig8, "MI250 LLaMA-3-8B", b)
		v35 := at(t, fig35, "LLaMA-3-8B", b)
		if !closeEnough(v8, v35) {
			t.Errorf("bs %g: fig8 %.3f vs fig35 %.3f", b, v8, v35)
		}
	}
}

func TestFig23AndFig6AgreeOnH100(t *testing.T) {
	// H100 + TRT-LLM + LLaMA-3-8B at len 1024 appears in Fig. 6 and
	// Fig. 23.
	fig6 := runFig(t, "fig6")
	fig23 := runFig(t, "fig23")
	for _, b := range []float64{1, 16, 32, 64} {
		v6 := at(t, fig6, "H100, LLaMA-3-8B", b)
		v23 := at(t, fig23, "1 H100 TRT-LLM", b)
		if !closeEnough(v6, v23) {
			t.Errorf("bs %g: fig6 %.3f vs fig23 %.3f", b, v6, v23)
		}
	}
}

func TestFig2bDefaultBlockMatchesFig1a(t *testing.T) {
	// vLLM's default block size is 16 — Fig. 2b's block-16 series at
	// len 1024 must equal Fig. 1a's len-1024 series.
	fig1a := runFig(t, "fig1a")
	fig2b := runFig(t, "fig2b")
	for _, b := range []float64{1, 16, 32, 64} {
		v1 := at(t, fig1a, "len 1024", b)
		v2 := at(t, fig2b, "block 16", b)
		if !closeEnough(v1, v2) {
			t.Errorf("bs %g: fig1a %.3f vs fig2b block-16 %.3f", b, v1, v2)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// The whole pipeline is deterministic: running an experiment twice
	// gives identical output.
	a := runFig(t, "fig12")
	b := runFig(t, "fig12")
	for i, sa := range a.Series {
		sb := b.Series[i]
		if sa.Label != sb.Label || len(sa.Points) != len(sb.Points) {
			t.Fatal("series mismatch between runs")
		}
		for j := range sa.Points {
			if sa.Points[j] != sb.Points[j] {
				t.Fatalf("point %d of %s differs across runs", j, sa.Label)
			}
		}
	}
}

package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every evaluation figure and table of the paper must be present.
	want := []string{
		"fig1a", "fig1b", "fig2a", "fig2b", "fig3", "fig4a", "fig4b",
		"fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
		"fig25", "fig29", "fig30", "fig31", "fig32", "fig33", "fig34",
		"fig35", "fig36", "fig37", "fig38", "tab1", "tab2", "tab3",
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext9",
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
}

func TestAllOrdered(t *testing.T) {
	all := All()
	if all[0].ID != "fig1a" {
		t.Errorf("first experiment %s, want fig1a", all[0].ID)
	}
	last := all[len(all)-1]
	if last.ID != "ext9" {
		t.Errorf("last experiment %s, want ext9", last.ID)
	}
	// fig2 must come before fig10 (numeric, not lexicographic).
	pos := map[string]int{}
	for i, e := range all {
		pos[e.ID] = i
	}
	if pos["fig2a"] > pos["fig10"] {
		t.Error("experiments must sort numerically")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("fig99"); err == nil {
		t.Error("unknown id must error")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			md := out.Markdown()
			if len(md) == 0 {
				t.Fatalf("%s produced empty output", e.ID)
			}
			if out.Figure != nil {
				if len(out.Figure.Series) == 0 {
					t.Fatalf("%s has no series", e.ID)
				}
				for _, s := range out.Figure.Series {
					if len(s.Points) == 0 {
						t.Errorf("%s series %q has no points", e.ID, s.Label)
					}
					for _, p := range s.Points {
						if p.Y < 0 {
							t.Errorf("%s series %q has negative value at x=%v", e.ID, s.Label, p.X)
						}
					}
				}
			}
			if !strings.Contains(md, e.ID) {
				t.Errorf("%s markdown does not mention its id", e.ID)
			}
		})
	}
}

func TestExperimentMetadata(t *testing.T) {
	for _, e := range All() {
		if e.Title == "" || e.Workload == "" || len(e.Modules) == 0 {
			t.Errorf("%s has incomplete metadata", e.ID)
		}
	}
}

package experiments

import (
	"fmt"
	"strings"

	"llmbench/internal/dtype"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/model"
)

func init() {
	register(&Experiment{
		ID:       "tab1",
		Title:    "Table I: LLaMA model family summary",
		Workload: "architecture hyperparameters of the eight benchmark models",
		Modules:  []string{"model"},
		Run:      tab1,
	})
	register(&Experiment{
		ID:       "tab2",
		Title:    "Table II: features of evaluated AI accelerators",
		Workload: "hardware description of the seven platforms",
		Modules:  []string{"hw"},
		Run:      tab2,
	})
	register(&Experiment{
		ID:       "tab3",
		Title:    "Table III: summary of inference frameworks evaluated",
		Workload: "framework × hardware support matrix",
		Modules:  []string{"framework"},
		Run:      tab3,
	})
}

func tab1() (*Output, error) {
	var b strings.Builder
	b.WriteString("### tab1 — Table I: LLaMA Model Family Summary\n\n")
	b.WriteString("| Model | Layers | Hidden | Attention | Heads | KV Heads | FFN | Experts | FFN Inter | Max Seq | Vocab | Params (B) |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, m := range model.TableI() {
		fmt.Fprintf(&b, "| %s | %d | %d | %s | %d | %d | %s | %d | %d | %d | %d | %.2f |\n",
			m.Name, m.Layers, m.Hidden, m.Attention, m.Heads, m.KVHeads,
			m.FFN, m.Experts, m.Inter, m.MaxSeq, m.Vocab, m.Params()/1e9)
	}
	return &Output{Text: b.String()}, nil
}

func tab2() (*Output, error) {
	var b strings.Builder
	b.WriteString("### tab2 — Table II: Features of evaluated AI accelerators\n\n")
	b.WriteString("| Feature |")
	devs := hw.TableII()
	for _, d := range devs {
		fmt.Fprintf(&b, " %s |", d.Name)
	}
	b.WriteString("\n|---|")
	for range devs {
		b.WriteString("---|")
	}
	b.WriteString("\n")

	row := func(name string, f func(*hw.Device) string) {
		fmt.Fprintf(&b, "| %s |", name)
		for _, d := range devs {
			fmt.Fprintf(&b, " %s |", f(d))
		}
		b.WriteString("\n")
	}
	row("# Devices", func(d *hw.Device) string { return fmt.Sprintf("%d", d.DevicesPerNode) })
	row("Memory (/device)", func(d *hw.Device) string { return fmt.Sprintf("%.0f GB", d.MemGiB) })
	row("Memory (/node)", func(d *hw.Device) string {
		return fmt.Sprintf("%.0f GB", d.MemGiB*float64(d.DevicesPerNode))
	})
	row("Mem BW", func(d *hw.Device) string { return fmt.Sprintf("%.1f TB/s", d.MemBWGBs/1000) })
	row("Peak FP16/BF16", func(d *hw.Device) string {
		tf := d.PeakTFLOPS[dtype.FP16]
		if bf, ok := d.PeakTFLOPS[dtype.BF16]; ok && bf > tf {
			tf = bf
		}
		return fmt.Sprintf("%.0f TFLOPS", tf)
	})
	row("FP8", func(d *hw.Device) string {
		if d.Supports(dtype.FP8) {
			return "yes"
		}
		return "no"
	})
	row("Interconnect", func(d *hw.Device) string { return fmt.Sprintf("%.0f GB/s", d.InterconnectGBs) })
	row("TDP", func(d *hw.Device) string { return fmt.Sprintf("%.0f W", d.TDPWatts) })
	row("Vendor", func(d *hw.Device) string { return d.Vendor.String() })
	return &Output{Text: b.String()}, nil
}

func tab3() (*Output, error) {
	var b strings.Builder
	b.WriteString("### tab3 — Table III: Summary of inference frameworks evaluated\n\n")
	rows, cols, cells := framework.TableIII()
	b.WriteString("| Framework |")
	for _, c := range cols {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|---|")
	for range cols {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for i, r := range rows {
		fmt.Fprintf(&b, "| %s |", r)
		for j := range cols {
			v := "No"
			if cells[i][j] {
				v = "Yes"
			}
			fmt.Fprintf(&b, " %s |", v)
		}
		b.WriteString("\n")
	}
	return &Output{Text: b.String()}, nil
}

// Package experiments reproduces every table and figure of the
// paper's evaluation: each Experiment regenerates one figure's series
// (or one table's rows) through the simulation engine, and the
// registry maps paper IDs ("fig6", "tab2") to runnable code.
//
// Workload parameters are copied from the figure captions. Points the
// paper could not run (OOM, unsupported combinations) are skipped and
// recorded as figure notes, mirroring the paper's gaps.
package experiments

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/metrics"
	"llmbench/internal/model"
	"llmbench/internal/parallel"
	"llmbench/internal/pool"
	"llmbench/internal/workload"
)

// Output is an experiment's result: figures carry series; tables carry
// pre-rendered text.
type Output struct {
	Figure *metrics.Figure
	Text   string
}

// Markdown renders the output for the CLI.
func (o *Output) Markdown() string {
	if o.Figure != nil {
		return o.Figure.Markdown()
	}
	return o.Text
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID       string // paper reference: "fig6", "tab1", …
	Title    string
	Workload string   // parameter summary
	Modules  []string // implementing packages
	Run      func() (*Output, error)
}

var registry []*Experiment

func register(e *Experiment) {
	registry = append(registry, e)
}

// All returns every experiment in paper order.
func All() []*Experiment {
	out := make([]*Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i].ID, out[j].ID) })
	return out
}

// less orders "fig1a" < "fig2" < "fig10" < "tab1" < "ext1": paper
// figures first, then tables, then extensions.
func less(a, b string) bool {
	pa, na, sa := split(a)
	pb, nb, sb := split(b)
	if pa != pb {
		return prefixRank(pa) < prefixRank(pb)
	}
	if na != nb {
		return na < nb
	}
	return sa < sb
}

func prefixRank(p string) int {
	switch p {
	case "fig":
		return 0
	case "tab":
		return 1
	case "ext":
		return 2
	}
	return 3
}

func split(id string) (prefix string, num int, suffix string) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	prefix = id[:i]
	j := i
	for j < len(id) && id[j] >= '0' && id[j] <= '9' {
		j++
	}
	fmt.Sscanf(id[i:j], "%d", &num)
	return prefix, num, id[j:]
}

// Get returns the experiment with the given ID.
func Get(id string) (*Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// RunExperiments runs the experiments with the given IDs on at most
// parallelism workers (parallelism < 1 means GOMAXPROCS) and returns
// their outputs in the same order as ids. Experiments are
// deterministic pure computations, so the outputs are identical at
// any parallelism; on failure the error reported is the one belonging
// to the earliest id, again independent of scheduling.
func RunExperiments(ids []string, parallelism int) ([]*Output, error) {
	exps := make([]*Experiment, len(ids))
	for i, id := range ids {
		e, err := Get(id)
		if err != nil {
			return nil, err
		}
		exps[i] = e
	}
	return pool.Map(len(exps), parallelism, func(i int) (*Output, error) {
		out, err := exps[i].Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", exps[i].ID, err)
		}
		return out, nil
	})
}

// --- shared helpers -------------------------------------------------------

// mk returns the shared engine for a catalog-named system through the
// process-wide engine cache (engine.Cached) — the same cache the root
// llmbench package builds through, so experiments and ad-hoc sweeps in
// one process share every build and its memoised step costs.
func mk(modelName, devName, fwName string, plan parallel.Plan) (*engine.Engine, error) {
	return engine.Cached(engine.Config{
		Model:     model.MustGet(modelName),
		Device:    hw.MustGet(devName),
		Framework: framework.MustGet(fwName),
		Plan:      plan,
	})
}

func tp(n int) parallel.Plan { return parallel.Plan{TP: n, PP: 1, EP: 1} }

// resultKey identifies one evaluated benchmark point. Engines are
// canonical (one pointer per configuration, via engine.Cached), so
// pointer identity plus the workload spec is a complete key.
type resultKey struct {
	eng  *engine.Engine
	spec workload.Spec
}

// resultCache memoises benchmark points across experiments: many
// figures re-run identical (system, workload) points, and a figure
// re-run (dashboard regeneration, repeated reports) re-runs all of
// them. Failed points are not cached (pool.Cache drops them), which
// preserves the per-call error text the figure notes record.
var resultCache pool.Cache[resultKey, engine.Result]

var resultLookups, resultMisses atomic.Int64

// runPoint evaluates one benchmark point through the result cache.
func runPoint(eng *engine.Engine, spec workload.Spec) (engine.Result, error) {
	resultLookups.Add(1)
	return resultCache.Get(resultKey{eng, spec}, func() (engine.Result, error) {
		resultMisses.Add(1)
		return eng.Run(spec)
	})
}

// ResultCacheCounts reports (lookups, misses) of the experiment result
// cache; the difference is the hit count. Test hook.
func ResultCacheCounts() (lookups, misses int64) {
	return resultLookups.Load(), resultMisses.Load()
}

// addOrNote runs one point and records throughput, or notes the
// skip reason (paper-style OOM gaps).
func addOrNote(fig *metrics.Figure, eng *engine.Engine, label string, x float64, spec workload.Spec,
	metric func(engine.Result) float64) {
	res, err := runPoint(eng, spec)
	if err != nil {
		if errors.Is(err, engine.ErrOOM) || errors.Is(err, engine.ErrUnsupportedBatch) {
			fig.Note("%s skipped at x=%g: %v", label, x, err)
			return
		}
		fig.Note("%s failed at x=%g: %v", label, x, err)
		return
	}
	fig.Add(label, x, metric(res))
}

func throughput(r engine.Result) float64 { return r.Throughput }

// batchSweep adds one series of throughput-vs-batch at fixed
// input/output length.
func batchSweep(fig *metrics.Figure, eng *engine.Engine, label string, batches []int, length int) {
	for _, b := range batches {
		addOrNote(fig, eng, label, float64(b),
			workload.Spec{Batch: b, Input: length, Output: length}, throughput)
	}
}

// lengthSweep adds one series of throughput-vs-length at fixed batch.
func lengthSweep(fig *metrics.Figure, eng *engine.Engine, label string, lengths []int, batch int) {
	for _, l := range lengths {
		addOrNote(fig, eng, label, float64(l),
			workload.Spec{Batch: batch, Input: l, Output: l}, throughput)
	}
}

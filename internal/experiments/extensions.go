package experiments

// Extension experiments beyond the paper's figures:
//
//   ext1 — power on *all* accelerators. The paper measures power only
//          on NVIDIA GPUs and lists the rest as future work (§III-5e);
//          the simulator's power model covers every platform.
//   ext2 — speculative-decoding γ ablation (extends Fig. 4b).
//   ext3 — paged vs monolithic KV serving (the PagedAttention
//          mechanism of §IV-B2 under a live scheduler).
//   ext4 — chunked-prefill (Dynamic SplitFuse, §V-3) stall ablation.
//   ext5 — DeciLM-style KV-head NAS (§IV-B4) across quality budgets.

import (
	"fmt"

	"llmbench/internal/dtype"
	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/metrics"
	"llmbench/internal/model"
	"llmbench/internal/nas"
	"llmbench/internal/parallel"
	"llmbench/internal/sched"
	"llmbench/internal/specdec"
	"llmbench/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "ext1",
		Title:    "Extension: power and efficiency across all accelerators (paper future work)",
		Workload: "LLaMA-3-8B, batch {1,16,32,64}, len 1024, best framework per platform",
		Modules:  []string{"power", "engine"},
		Run:      ext1,
	})
	register(&Experiment{
		ID:       "ext2",
		Title:    "Extension: speculative decoding γ ablation (extends Fig. 4b)",
		Workload: "LLaMA-2-7B and Mixtral-8x7B, γ ∈ {1..8}, len 256, A100 vLLM",
		Modules:  []string{"specdec", "engine"},
		Run:      ext2,
	})
	register(&Experiment{
		ID:       "ext3",
		Title:    "Extension: paged vs monolithic KV cache under live serving (§IV-B2)",
		Workload: "Mistral-7B on A100, Poisson trace, KV budget {4..16} GiB",
		Modules:  []string{"kvcache", "sched"},
		Run:      ext3,
	})
	register(&Experiment{
		ID:       "ext4",
		Title:    "Extension: chunked prefill (Dynamic SplitFuse) stall ablation (§V-3)",
		Workload: "LLaMA-3-8B on A100, chunk ∈ {off, 128..2048} tokens",
		Modules:  []string{"sched", "engine"},
		Run:      ext4,
	})
	register(&Experiment{
		ID:       "ext5",
		Title:    "Extension: DeciLM-style KV-head NAS across quality budgets (§IV-B4)",
		Workload: "LLaMA-3-8B base, pool {1,2,4,8}, budgets 0.3..0.6",
		Modules:  []string{"nas", "model"},
		Run:      ext5,
	})
}

func ext1() (*Output, error) {
	fig := &metrics.Figure{ID: "ext1", Title: "Power and tokens/s/W across all accelerators (LLaMA-3-8B, len 1024)",
		XLabel: "Batch size", YLabel: "Watts / tokens-per-sec-per-watt"}
	for _, c := range acceleratorCombos() {
		eng, err := mk("LLaMA-3-8B", c.dev, c.fw, c.plan)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d %s %s", c.plan.Devices(), c.dev, c.fw)
		for _, b := range workload.PaperBatches {
			spec := workload.Spec{Batch: b, Input: 1024, Output: 1024}
			addOrNote(fig, eng, label+" [W]", float64(b), spec,
				func(r engine.Result) float64 { return r.TotalPowerWatts })
			addOrNote(fig, eng, label+" [tok/s/W]", float64(b), spec,
				func(r engine.Result) float64 { return r.TokensPerSecPerW })
		}
	}
	return &Output{Figure: fig}, nil
}

func ext2() (*Output, error) {
	fig := &metrics.Figure{ID: "ext2", Title: "Speculative decoding speedup vs draft length γ (len 256, A100 vLLM)",
		XLabel: "γ (draft tokens per verification)", YLabel: "Speedup over plain decoding"}
	draft, err := mk("LLaMA-68M", "A100", "vLLM", parallel.Single)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"LLaMA-2-7B", "Mixtral-8x7B"} {
		plan := parallel.Single
		if name == "Mixtral-8x7B" {
			plan = tp(4)
		}
		target, err := mk(name, "A100", "vLLM", plan)
		if err != nil {
			return nil, err
		}
		targetStep, err := target.DecodeStepSeconds(1, 384)
		if err != nil {
			return nil, err
		}
		draftStep, err := draft.DecodeStepSeconds(1, 384)
		if err != nil {
			return nil, err
		}
		for gamma := 1; gamma <= 8; gamma++ {
			cfg := specdec.Default
			cfg.Gamma = gamma
			s, err := specdec.Speedup(cfg, targetStep, draftStep, model.MustGet(name), 256)
			if err != nil {
				return nil, err
			}
			fig.Add(name, float64(gamma), s)
		}
	}
	return &Output{Figure: fig}, nil
}

func ext3() (*Output, error) {
	fig := &metrics.Figure{ID: "ext3", Title: "Paged vs monolithic KV under live serving (Mistral-7B, A100)",
		XLabel: "KV budget (GiB)", YLabel: "Serving throughput (tokens/s)"}
	eng, err := mk("Mistral-7B", "A100", "vLLM", parallel.Single)
	if err != nil {
		return nil, err
	}
	m := model.MustGet("Mistral-7B")
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 8, Requests: 120, RatePerSec: 12,
		InputMean: 512, OutputMean: 128, LengthJitter: 0.4,
	})
	if err != nil {
		return nil, err
	}
	for _, budget := range []float64{4, 8, 12, 16} {
		bytes := budget * (1 << 30)
		paged, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), bytes)
		if err != nil {
			return nil, err
		}
		ps, err := sched.Serve(sched.Config{Engine: eng, Policy: sched.Continuous, MaxBatch: 32, Alloc: paged}, reqs)
		if err != nil {
			return nil, err
		}
		fig.Add("paged (block 16)", budget, ps.Throughput)

		// Monolithic reservations at a 4K serving window.
		mono, err := kvcache.NewMonolithic(4096, m.KVBytesPerToken(dtype.FP16), bytes)
		if err != nil {
			return nil, err
		}
		ms, err := sched.Serve(sched.Config{Engine: eng, Policy: sched.Continuous, MaxBatch: 32, Alloc: mono}, reqs)
		if err != nil {
			return nil, err
		}
		fig.Add("monolithic (4K reserve)", budget, ms.Throughput)
		fig.Note("budget %.0f GiB: paged waste %.2f GiB, monolithic waste %.2f GiB (final state)",
			budget, paged.WasteBytes()/(1<<30), mono.WasteBytes()/(1<<30))
	}
	return &Output{Figure: fig}, nil
}

func ext4() (*Output, error) {
	fig := &metrics.Figure{ID: "ext4", Title: "Chunked prefill: worst token stall vs chunk size (LLaMA-3-8B, A100)",
		XLabel: "Prefill chunk (tokens; 0 = unchunked)", YLabel: "Worst iteration (ms)"}
	eng, err := mk("LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	if err != nil {
		return nil, err
	}
	m := model.MustGet("LLaMA-3-8B")
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 13, Requests: 80, RatePerSec: 10,
		InputMean: 1024, OutputMean: 64, LengthJitter: 0.5,
	})
	if err != nil {
		return nil, err
	}
	run := func(chunk int) (sched.Stats, error) {
		alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 18*(1<<30))
		if err != nil {
			return sched.Stats{}, err
		}
		return sched.Serve(sched.Config{
			Engine: eng, Policy: sched.Continuous, MaxBatch: 16, Alloc: alloc,
			ChunkedPrefill: chunk > 0, PrefillChunk: chunk,
		}, reqs)
	}
	for _, chunk := range []int{0, 128, 256, 512, 1024, 2048} {
		stats, err := run(chunk)
		if err != nil {
			return nil, err
		}
		fig.Add("worst stall", float64(chunk), stats.MaxIterationS*1000)
		fig.Add("p99 latency (s)", float64(chunk), stats.P99Latency)
	}
	return &Output{Figure: fig}, nil
}

func ext5() (*Output, error) {
	fig := &metrics.Figure{ID: "ext5", Title: "KV-head NAS: speedup and KV-head budget vs quality target",
		XLabel: "Quality budget", YLabel: "Speedup over all-8 baseline / total KV heads"}
	for _, budget := range []float64{0.30, 0.40, 0.50, 0.60} {
		res, err := nas.Search(nas.Config{
			Base:          model.MustGet("LLaMA-3-8B"),
			Options:       []int{1, 2, 4, 8},
			QualityBudget: budget,
			Device:        hw.MustGet("A100"),
			Framework:     framework.MustGet("TRT-LLM"),
			Batch:         64,
			Context:       1024,
			Iterations:    6000,
			Seed:          7,
		})
		if err != nil {
			return nil, err
		}
		fig.Add("speedup", budget, res.Speedup)
		fig.Add("total KV heads", budget, float64(res.Allocation.Total()))
		fig.Note("budget %.2f: %d KV heads across 32 layers (LLaMA-3-8B ships 256), %.2fx faster decode step",
			budget, res.Allocation.Total(), res.Speedup)
	}
	return &Output{Figure: fig}, nil
}

package experiments

import (
	"strings"
	"testing"
)

func TestReportAllAnchorsHold(t *testing.T) {
	rows, err := Report(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 20 {
		t.Fatalf("report has only %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Holds {
			t.Errorf("%s: %s = %s (paper %s) outside shape band", r.Figure, r.Claim, r.Measured, r.Paper)
		}
		if r.Figure == "" || r.Claim == "" || r.Paper == "" || r.Measured == "" {
			t.Errorf("incomplete row %+v", r)
		}
	}
}

func TestReportMarkdown(t *testing.T) {
	md, err := ReportMarkdown(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"| Figure |", "fig1a", "26.6x", "fig25"} {
		if !strings.Contains(md, want) {
			t.Errorf("report markdown missing %q", want)
		}
	}
}

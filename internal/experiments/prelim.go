package experiments

import (
	"fmt"

	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/metrics"
	"llmbench/internal/model"
	"llmbench/internal/parallel"
	"llmbench/internal/quant"
	"llmbench/internal/specdec"
	"llmbench/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "fig1a",
		Title:    "vLLM: batch size vs input/output length, LLaMA-3-8B on one A100 (fp16)",
		Workload: "batch {1,16,32,64} × length {128..2048}",
		Modules:  []string{"engine", "framework", "hw"},
		Run:      fig1a,
	})
	register(&Experiment{
		ID:       "fig1b",
		Title:    "TRT-LLM: input vs output length heatmap, LLaMA-3-8B on one A100, batch 1",
		Workload: "input × output ∈ {128..2048}²",
		Modules:  []string{"engine", "workload"},
		Run:      fig1b,
	})
	register(&Experiment{
		ID:       "fig2a",
		Title:    "Effect of KV cache, LLaMA-3-70B on Gaudi2 (8 HPUs), batch 1",
		Workload: "length {128..1024}, KV cache on/off",
		Modules:  []string{"engine", "kvcache"},
		Run:      fig2a,
	})
	register(&Experiment{
		ID:       "fig2b",
		Title:    "KV-cache block size vs batch size, LLaMA-3-8B on one A100, len 1024",
		Workload: "block {8,16,32,64,128} × batch {1,16,32,64}",
		Modules:  []string{"kvcache", "engine"},
		Run:      fig2b,
	})
	register(&Experiment{
		ID:       "fig3",
		Title:    "Quantization: LLaMA-3-8B on one H100 and A100, len 1024",
		Workload: "nine {weights, KV} precision combos × batch {1,16,32,64}",
		Modules:  []string{"quant", "engine"},
		Run:      fig3,
	})
	register(&Experiment{
		ID:       "fig4a",
		Title:    "NAS: DeciLM-7B vs Mistral-7B vs LLaMA-3-8B, len 1024 (fp16)",
		Workload: "batch {1,16,32,64} on A100 and H100, TRT-LLM",
		Modules:  []string{"model", "engine"},
		Run:      fig4a,
	})
	register(&Experiment{
		ID:       "fig4b",
		Title:    "Speculative decoding on one A100 using vLLM, batch 1 (fp16)",
		Workload: "LLaMA-2-7B and Mixtral-8x7B with/without SD, length {128..1024}",
		Modules:  []string{"specdec", "engine"},
		Run:      fig4b,
	})
	register(&Experiment{
		ID:       "fig5a",
		Title:    "Parallelism: LLaMA-3-8B on 4 A100s, batch 64, len 1024",
		Workload: "TP=4 vs PP=4 vs TP=2,PP=2 (plus 1- and 2-GPU TP)",
		Modules:  []string{"parallel", "engine"},
		Run:      fig5a,
	})
	register(&Experiment{
		ID:       "fig5b",
		Title:    "Parallelism: Mixtral-8x7B on 4 A100s, batch 64",
		Workload: "TP vs PP vs EP vs TP=2,EP=2 over length {128..1024}",
		Modules:  []string{"parallel", "engine"},
		Run:      fig5b,
	})
}

func fig1a() (*Output, error) {
	fig := &metrics.Figure{ID: "fig1a", Title: "vLLM batch size vs input/output length (LLaMA-3-8B, one A100)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	eng, err := mk("LLaMA-3-8B", "A100", "vLLM", parallel.Single)
	if err != nil {
		return nil, err
	}
	for _, l := range workload.PaperLengths {
		batchSweep(fig, eng, fmt.Sprintf("len %d", l), workload.PaperBatches, l)
	}
	return &Output{Figure: fig}, nil
}

func fig1b() (*Output, error) {
	fig := &metrics.Figure{ID: "fig1b", Title: "TRT-LLM input vs output length (LLaMA-3-8B, one A100, batch 1)",
		XLabel: "Input length", YLabel: "Throughput (tokens/s)"}
	eng, err := mk("LLaMA-3-8B", "A100", "TRT-LLM", parallel.Single)
	if err != nil {
		return nil, err
	}
	for _, spec := range workload.BlendedGrid(1, workload.PaperLengths) {
		addOrNote(fig, eng, fmt.Sprintf("out %d", spec.Output), float64(spec.Input), spec, throughput)
	}
	return &Output{Figure: fig}, nil
}

func fig2a() (*Output, error) {
	fig := &metrics.Figure{ID: "fig2a", Title: "KV cache on/off (LLaMA-3-70B, Gaudi2 8 HPUs, batch 1)",
		XLabel: "Input/output length", YLabel: "Throughput (tokens/s)"}
	with, err := engine.New(engine.Config{
		Model:     model.MustGet("LLaMA-3-70B"),
		Device:    hw.MustGet("Gaudi2"),
		Framework: framework.MustGet("DeepSpeed"),
		Plan:      tp(8),
	})
	if err != nil {
		return nil, err
	}
	without, err := engine.New(engine.Config{
		Model:          model.MustGet("LLaMA-3-70B"),
		Device:         hw.MustGet("Gaudi2"),
		Framework:      framework.MustGet("DeepSpeed"),
		Plan:           tp(8),
		DisableKVCache: true,
	})
	if err != nil {
		return nil, err
	}
	for _, l := range []int{128, 256, 512, 1024} {
		spec := workload.Spec{Batch: 1, Input: l, Output: l}
		addOrNote(fig, with, "w KV Cache", float64(l), spec, throughput)
		addOrNote(fig, without, "w/o KV Cache", float64(l), spec, throughput)
	}
	return &Output{Figure: fig}, nil
}

func fig2b() (*Output, error) {
	fig := &metrics.Figure{ID: "fig2b", Title: "KV block size vs batch size (LLaMA-3-8B, one A100, len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, block := range []int{8, 16, 32, 64, 128} {
		eng, err := engine.New(engine.Config{
			Model:         model.MustGet("LLaMA-3-8B"),
			Device:        hw.MustGet("A100"),
			Framework:     framework.MustGet("vLLM"),
			KVBlockTokens: block,
		})
		if err != nil {
			return nil, err
		}
		batchSweep(fig, eng, fmt.Sprintf("block %d", block), workload.PaperBatches, 1024)
	}
	return &Output{Figure: fig}, nil
}

func fig3() (*Output, error) {
	fig := &metrics.Figure{ID: "fig3", Title: "Quantization benchmarking (LLaMA-3-8B, H100 and A100, len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, combo := range quant.Fig3Combos() {
		eng, err := engine.New(engine.Config{
			Model:     model.MustGet("LLaMA-3-8B"),
			Device:    hw.MustGet(combo.Device),
			Framework: framework.MustGet(combo.Framework),
			Scheme:    combo.Scheme,
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%s, %s, %s", combo.Device, combo.Framework, combo.Scheme)
		batchSweep(fig, eng, label, workload.PaperBatches, 1024)
	}
	return &Output{Figure: fig}, nil
}

func fig4a() (*Output, error) {
	fig := &metrics.Figure{ID: "fig4a", Title: "DeciLM-7B (NAS) vs Mistral-7B vs LLaMA-3-8B, len 1024",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, dev := range []string{"H100", "A100"} {
		for _, m := range []string{"DeciLM-7B", "Mistral-7B", "LLaMA-3-8B"} {
			eng, err := mk(m, dev, "TRT-LLM", parallel.Single)
			if err != nil {
				return nil, err
			}
			batchSweep(fig, eng, dev+" "+m, workload.PaperBatches, 1024)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig4b() (*Output, error) {
	fig := &metrics.Figure{ID: "fig4b", Title: "Speculative decoding (one A100, vLLM, batch 1)",
		XLabel: "Input/output length", YLabel: "Throughput (tokens/s)"}
	draft, err := mk("LLaMA-68M", "A100", "vLLM", parallel.Single)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"LLaMA-2-7B", "Mixtral-8x7B"} {
		plan := parallel.Single
		if name == "Mixtral-8x7B" {
			// Mixtral's 93 GiB of fp16 weights cannot fit one 40 GiB
			// A100; run it tensor-parallel across the node.
			plan = tp(4)
			fig.Note("Mixtral-8x7B uses TP=4 (weights exceed one A100)")
		}
		target, err := mk(name, "A100", "vLLM", plan)
		if err != nil {
			return nil, err
		}
		for _, l := range []int{128, 256, 512, 1024} {
			spec := workload.Spec{Batch: 1, Input: l, Output: l}
			base, err := runPoint(target, spec)
			if err != nil {
				fig.Note("%s skipped at %d: %v", name, l, err)
				continue
			}
			fig.Add(name+" w/o SD", float64(l), base.Throughput)

			targetStep, err := target.DecodeStepSeconds(1, l+l/2)
			if err != nil {
				return nil, err
			}
			draftStep, err := draft.DecodeStepSeconds(1, l+l/2)
			if err != nil {
				return nil, err
			}
			speedup, err := specdec.Speedup(specdec.Default, targetStep, draftStep,
				model.MustGet(name), l)
			if err != nil {
				return nil, err
			}
			decode := base.E2ESeconds - base.TTFTSeconds
			e2e := base.TTFTSeconds + decode/speedup
			fig.Add(name+" w SD", float64(l), base.Spec.TotalTokens()/e2e)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig5a() (*Output, error) {
	fig := &metrics.Figure{ID: "fig5a", Title: "LLaMA-3-8B parallelism on A100s (batch 64, len 1024)",
		XLabel: "Degree of parallelism", YLabel: "Throughput (tokens/s)"}
	spec := workload.Spec{Batch: 64, Input: 1024, Output: 1024}
	plans := []struct {
		label string
		x     float64
		plan  parallel.Plan
	}{
		{"TP", 1, parallel.Single},
		{"TP", 2, tp(2)},
		{"TP", 4, tp(4)},
		{"PP", 2, parallel.Plan{TP: 1, PP: 2, EP: 1}},
		{"PP", 4, parallel.Plan{TP: 1, PP: 4, EP: 1}},
		{"TP = 2, PP = 2", 4, parallel.Plan{TP: 2, PP: 2, EP: 1}},
	}
	for _, p := range plans {
		eng, err := mk("LLaMA-3-8B", "A100", "TRT-LLM", p.plan)
		if err != nil {
			return nil, err
		}
		addOrNote(fig, eng, p.label, p.x, spec, throughput)
	}
	return &Output{Figure: fig}, nil
}

func fig5b() (*Output, error) {
	fig := &metrics.Figure{ID: "fig5b", Title: "Mixtral-8x7B parallelism on 4 A100s (batch 64)",
		XLabel: "Input/output length", YLabel: "Throughput (tokens/s)"}
	plans := []struct {
		label string
		plan  parallel.Plan
	}{
		{"TP", tp(4)},
		{"PP", parallel.Plan{TP: 1, PP: 4, EP: 1}},
		{"EP", parallel.Plan{TP: 1, PP: 1, EP: 4}},
		{"TP = 2, EP = 2", parallel.Plan{TP: 2, PP: 1, EP: 2}},
	}
	for _, p := range plans {
		eng, err := mk("Mixtral-8x7B", "A100", "TRT-LLM", p.plan)
		if err != nil {
			return nil, err
		}
		for _, l := range []int{128, 256, 512, 1024} {
			addOrNote(fig, eng, p.label, float64(l),
				workload.Spec{Batch: 64, Input: l, Output: l}, throughput)
		}
	}
	return &Output{Figure: fig}, nil
}

package experiments

import (
	"fmt"

	"llmbench/internal/engine"
	"llmbench/internal/metrics"
	"llmbench/internal/parallel"
	"llmbench/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "fig15",
		Title:    "Framework comparison of ~7B models on one A100 (len 1024)",
		Workload: "TRT-LLM/vLLM/DS-MII/llama.cpp × 3 models × batch {1,16,32,64}",
		Modules:  []string{"engine", "framework"},
		Run:      fig15,
	})
	register(&Experiment{
		ID:       "fig16",
		Title:    "Power and throughput-per-watt on NVIDIA GPUs (len 1024)",
		Workload: "GH200/H100/A100 × vLLM/TRT-LLM × LLaMA-2-7B/LLaMA-3-8B",
		Modules:  []string{"power", "engine"},
		Run:      fig16,
	})
	register(&Experiment{
		ID:       "fig17",
		Title:    "vLLM on MI250: LLaMA-3-8B batch/length sweep",
		Workload: "GPUs {1,4} × length {128..2048} × batch {1,16,32,64}",
		Modules:  []string{"engine", "hw"},
		Run:      fig17,
	})
	register(&Experiment{
		ID:       "fig18",
		Title:    "8 SN40L RDUs vs 4 H100 vs 4 A100: 7B models, batch 1",
		Workload: "length {128..2048}",
		Modules:  []string{"engine", "hw"},
		Run:      fig18,
	})
	register(&Experiment{
		ID:       "fig19",
		Title:    "8 SN40L RDUs vs 4 H100 vs 4 A100: LLaMA-3-70B, batch 1",
		Workload: "length {128..2048}",
		Modules:  []string{"engine", "hw"},
		Run:      fig19,
	})
	register(&Experiment{
		ID:       "fig20",
		Title:    "Gaudi2 vs H100 and A100: 7B models (len 1024)",
		Workload: "batch {16,32}",
		Modules:  []string{"engine", "hw"},
		Run:      fig20,
	})
	register(&Experiment{
		ID:       "fig21",
		Title:    "Time to first token (batch 16, input 1024)",
		Workload: "10 hardware/framework combos × 3 models",
		Modules:  []string{"engine"},
		Run:      fig21,
	})
	register(&Experiment{
		ID:       "fig22",
		Title:    "Inter-token latency (batch 16, input/output 1024)",
		Workload: "10 hardware/framework combos × 3 models",
		Modules:  []string{"engine"},
		Run:      fig22,
	})
	register(&Experiment{
		ID:       "fig23",
		Title:    "LLaMA-3-8B across accelerators vs batch size (len 1024)",
		Workload: "batch {1,16,32,64}, 7 accelerator/framework combos",
		Modules:  []string{"engine", "hw"},
		Run:      fig23,
	})
	register(&Experiment{
		ID:       "fig24",
		Title:    "LLaMA-3-8B across accelerators vs input/output length (batch 16)",
		Workload: "length {128..2048}, 7 accelerator/framework combos",
		Modules:  []string{"engine", "hw"},
		Run:      fig24,
	})
	register(&Experiment{
		ID:       "fig25",
		Title:    "Peak throughput per accelerator for 7B models (len 1024)",
		Workload: "max over batch {16,32,64} per model × accelerator",
		Modules:  []string{"engine"},
		Run:      fig25,
	})
}

func fig15() (*Output, error) {
	fig := &metrics.Figure{ID: "fig15", Title: "Framework comparison on one A100 (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, fw := range []string{"TRT-LLM", "vLLM", "DS-MII", "llama.cpp"} {
		for _, m := range models7B {
			eng, err := mk(m, "A100", fw, parallel.Single)
			if err != nil {
				return nil, err
			}
			batchSweep(fig, eng, fw+" "+m, workload.PaperBatches, 1024)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig16() (*Output, error) {
	fig := &metrics.Figure{ID: "fig16", Title: "Power and throughput per watt on NVIDIA GPUs (len 1024)",
		XLabel: "Batch size", YLabel: "Watts / tokens-per-sec-per-watt"}
	for _, dev := range []string{"GH200", "H100", "A100"} {
		for _, fw := range []string{"vLLM", "TRT-LLM"} {
			for _, m := range []string{"LLaMA-2-7B", "LLaMA-3-8B"} {
				eng, err := mk(m, dev, fw, parallel.Single)
				if err != nil {
					return nil, err
				}
				base := fmt.Sprintf("%s %s %s", dev, fw, m)
				for _, b := range workload.PaperBatches {
					spec := workload.Spec{Batch: b, Input: 1024, Output: 1024}
					addOrNote(fig, eng, base+" [W]", float64(b), spec,
						func(r engine.Result) float64 { return r.AvgPowerWatts })
					addOrNote(fig, eng, base+" [tok/s/W]", float64(b), spec,
						func(r engine.Result) float64 { return r.TokensPerSecPerW })
				}
			}
		}
	}
	return &Output{Figure: fig}, nil
}

func fig17() (*Output, error) {
	fig := &metrics.Figure{ID: "fig17", Title: "vLLM on MI250: LLaMA-3-8B (fp16)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, gpus := range []int{1, 4} {
		eng, err := mk("LLaMA-3-8B", "MI250", "vLLM", tp(gpus))
		if err != nil {
			return nil, err
		}
		for _, l := range workload.PaperLengths {
			batchSweep(fig, eng, fmt.Sprintf("%d %d", gpus, l), workload.PaperBatches, l)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig18() (*Output, error) {
	fig := &metrics.Figure{ID: "fig18", Title: "SN40L (8 RDUs, bf16) vs 4×H100 vs 4×A100: 7B models, batch 1",
		XLabel: "Input/output length", YLabel: "Throughput (tokens/s)"}
	combos := []struct {
		dev, fw string
		plan    parallel.Plan
	}{
		{"SN40L", "SambaFlow", tp(8)},
		{"H100", "TRT-LLM", tp(4)},
		{"A100", "TRT-LLM", tp(4)},
	}
	for _, c := range combos {
		for _, m := range models7B {
			eng, err := mk(m, c.dev, c.fw, c.plan)
			if err != nil {
				return nil, err
			}
			lengthSweep(fig, eng, c.dev+" "+m, workload.PaperLengths, 1)
		}
	}
	return &Output{Figure: fig}, nil
}

func fig19() (*Output, error) {
	fig := &metrics.Figure{ID: "fig19", Title: "SN40L (8 RDUs) vs 4×H100 vs 4×A100: LLaMA-3-70B, batch 1",
		XLabel: "Input/output length", YLabel: "Throughput (tokens/s)"}
	combos := []struct {
		dev, fw string
		plan    parallel.Plan
	}{
		{"SN40L", "SambaFlow", tp(8)},
		{"H100", "TRT-LLM", tp(4)},
		{"A100", "TRT-LLM", tp(4)},
	}
	for _, c := range combos {
		eng, err := mk("LLaMA-3-70B", c.dev, c.fw, c.plan)
		if err != nil {
			return nil, err
		}
		lengthSweep(fig, eng, c.dev+" LLaMA-3-70B", workload.PaperLengths, 1)
	}
	return &Output{Figure: fig}, nil
}

func fig20() (*Output, error) {
	fig := &metrics.Figure{ID: "fig20", Title: "Gaudi2 vs H100 and A100: 7B models (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	combos := []struct {
		dev, fw string
		models  []string
	}{
		{"H100", "TRT-LLM", []string{"Qwen2-7B", "Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"}},
		{"Gaudi2", "DeepSpeed", []string{"Qwen2-7B", "Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"}},
		{"A100", "TRT-LLM", []string{"Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"}},
	}
	for _, c := range combos {
		for _, m := range c.models {
			eng, err := mk(m, c.dev, c.fw, parallel.Single)
			if err != nil {
				return nil, err
			}
			batchSweep(fig, eng, c.dev+" "+c.fw+" "+m, []int{16, 32}, 1024)
		}
	}
	return &Output{Figure: fig}, nil
}

// latencyCombos is the hardware/framework legend shared by Figs. 21
// and 22.
func latencyCombos() []struct {
	dev, fw string
	plan    parallel.Plan
} {
	return []struct {
		dev, fw string
		plan    parallel.Plan
	}{
		{"GH200", "TRT-LLM", parallel.Single},
		{"GH200", "vLLM", parallel.Single},
		{"H100", "TRT-LLM", parallel.Single},
		{"H100", "vLLM", parallel.Single},
		{"SN40L", "SambaFlow", tp(8)},
		{"A100", "TRT-LLM", parallel.Single},
		{"A100", "vLLM", parallel.Single},
		{"A100", "DS-MII", parallel.Single},
		{"MI250", "vLLM", parallel.Single},
		{"MI300X", "vLLM", parallel.Single},
	}
}

func fig21() (*Output, error) {
	fig := &metrics.Figure{ID: "fig21", Title: "TTFT for batch 16 and input 1024",
		XLabel: "Model (0=LLaMA-2-7B, 1=LLaMA-3-8B, 2=Mistral-7B)", YLabel: "TTFT (s)"}
	for _, c := range latencyCombos() {
		for i, m := range []string{"LLaMA-2-7B", "LLaMA-3-8B", "Mistral-7B"} {
			eng, err := mk(m, c.dev, c.fw, c.plan)
			if err != nil {
				return nil, err
			}
			addOrNote(fig, eng, c.dev+" "+c.fw, float64(i),
				workload.Spec{Batch: 16, Input: 1024, Output: 1},
				func(r engine.Result) float64 { return r.TTFTSeconds })
		}
	}
	return &Output{Figure: fig}, nil
}

func fig22() (*Output, error) {
	fig := &metrics.Figure{ID: "fig22", Title: "ITL for batch 16 and input/output 1024",
		XLabel: "Model (0=LLaMA-2-7B, 1=LLaMA-3-8B, 2=Mistral-7B)", YLabel: "ITL (ms)"}
	for _, c := range latencyCombos() {
		for i, m := range []string{"LLaMA-2-7B", "LLaMA-3-8B", "Mistral-7B"} {
			eng, err := mk(m, c.dev, c.fw, c.plan)
			if err != nil {
				return nil, err
			}
			addOrNote(fig, eng, c.dev+" "+c.fw, float64(i),
				workload.Spec{Batch: 16, Input: 1024, Output: 1024},
				func(r engine.Result) float64 { return r.ITLSeconds * 1000 })
		}
	}
	return &Output{Figure: fig}, nil
}

// acceleratorCombos is the legend of Figs. 23 and 24.
func acceleratorCombos() []struct {
	dev, fw string
	plan    parallel.Plan
} {
	return []struct {
		dev, fw string
		plan    parallel.Plan
	}{
		{"SN40L", "SambaFlow", tp(8)},
		{"GH200", "TRT-LLM", parallel.Single},
		{"H100", "TRT-LLM", parallel.Single},
		{"Gaudi2", "DeepSpeed", parallel.Single},
		{"A100", "TRT-LLM", parallel.Single},
		{"MI250", "vLLM", parallel.Single},
		{"MI300X", "vLLM", parallel.Single},
	}
}

func fig23() (*Output, error) {
	fig := &metrics.Figure{ID: "fig23", Title: "LLaMA-3-8B across accelerators (len 1024)",
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)"}
	for _, c := range acceleratorCombos() {
		eng, err := mk("LLaMA-3-8B", c.dev, c.fw, c.plan)
		if err != nil {
			return nil, err
		}
		batchSweep(fig, eng, fmt.Sprintf("%d %s %s", c.plan.Devices(), c.dev, c.fw),
			workload.PaperBatches, 1024)
	}
	return &Output{Figure: fig}, nil
}

func fig24() (*Output, error) {
	fig := &metrics.Figure{ID: "fig24", Title: "LLaMA-3-8B across accelerators (batch 16)",
		XLabel: "Input/output length", YLabel: "Throughput (tokens/s)"}
	for _, c := range acceleratorCombos() {
		eng, err := mk("LLaMA-3-8B", c.dev, c.fw, c.plan)
		if err != nil {
			return nil, err
		}
		lengthSweep(fig, eng, fmt.Sprintf("%d %s %s", c.plan.Devices(), c.dev, c.fw),
			workload.PaperLengths, 16)
	}
	return &Output{Figure: fig}, nil
}

func fig25() (*Output, error) {
	fig := &metrics.Figure{ID: "fig25", Title: "Peak throughput for input/output 1024",
		XLabel: "Model (0=Mistral-7B, 1=LLaMA-3-8B, 2=LLaMA-2-7B)", YLabel: "Throughput (tokens/s)"}
	combos := []struct {
		dev, fw string
		plan    parallel.Plan
	}{
		{"MI250", "vLLM", parallel.Single},
		{"MI300X", "vLLM", parallel.Single},
		{"A100", "TRT-LLM", parallel.Single},
		{"Gaudi2", "DeepSpeed", parallel.Single},
		{"SN40L", "SambaFlow", tp(8)},
		{"GH200", "TRT-LLM", parallel.Single},
		{"H100", "TRT-LLM", parallel.Single},
	}
	for _, c := range combos {
		for i, m := range []string{"Mistral-7B", "LLaMA-3-8B", "LLaMA-2-7B"} {
			eng, err := mk(m, c.dev, c.fw, c.plan)
			if err != nil {
				return nil, err
			}
			best := 0.0
			bestBatch := 0
			for _, b := range []int{16, 32, 64} {
				res, err := runPoint(eng, workload.Spec{Batch: b, Input: 1024, Output: 1024})
				if err != nil {
					continue
				}
				if res.Throughput > best {
					best = res.Throughput
					bestBatch = b
				}
			}
			if best == 0 {
				fig.Note("%s %s: no batch fit for %s", c.dev, c.fw, m)
				continue
			}
			fig.Add(fmt.Sprintf("%d %s (%s)", c.plan.Devices(), c.dev, c.fw), float64(i), best)
			fig.Note("%s on %s peaks at batch %d", m, c.dev, bestBatch)
		}
	}
	return &Output{Figure: fig}, nil
}

package experiments

import (
	"fmt"
	"strings"
)

// AnchorRow is one paper-vs-measured comparison for EXPERIMENTS.md.
type AnchorRow struct {
	Figure   string
	Claim    string
	Paper    string
	Measured string
	Holds    bool
}

// Report regenerates every anchor figure and computes the
// paper-vs-measured table EXPERIMENTS.md records. It is the
// executable form of the reproduction claims: `llmbench report`
// rebuilds the document.
//
// The figures regenerate concurrently on at most parallelism workers
// (parallelism < 1 means GOMAXPROCS); anchor rows are then computed
// serially from the finished figures, so the output is byte-identical
// at any parallelism.
func Report(parallelism int) ([]AnchorRow, error) {
	var cache map[string]*Output
	get := func(id string) (*Output, error) {
		if out, ok := cache[id]; ok {
			return out, nil
		}
		// Serial fallback for ids outside the prefetch set (a spec
		// whose closure compares against another spec's figure); row
		// computation is already serial, so determinism holds.
		outs, err := RunExperiments([]string{id}, 1)
		if err != nil {
			return nil, err
		}
		cache[id] = outs[0]
		return outs[0], nil
	}
	val := func(id, label string, x float64) (float64, error) {
		out, err := get(id)
		if err != nil {
			return 0, err
		}
		if out.Figure == nil {
			return 0, fmt.Errorf("%s has no figure", id)
		}
		s, err := out.Figure.Get(label)
		if err != nil {
			return 0, err
		}
		return s.At(x)
	}
	ratio := func(id, labelA string, xA float64, labelB string, xB float64) (float64, error) {
		a, err := val(id, labelA, xA)
		if err != nil {
			return 0, err
		}
		b, err := val(id, labelB, xB)
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return 0, fmt.Errorf("%s: zero denominator", id)
		}
		return a / b, nil
	}

	var rows []AnchorRow
	add := func(figure, claim, paper string, measured float64, format string, lo, hi float64) {
		rows = append(rows, AnchorRow{
			Figure:   figure,
			Claim:    claim,
			Paper:    paper,
			Measured: fmt.Sprintf(format, measured),
			Holds:    measured >= lo && measured <= hi,
		})
	}

	type spec struct {
		fig, claim, paper, format string
		lo, hi                    float64
		compute                   func() (float64, error)
	}
	specs := []spec{
		{"fig1a", "batch 64 vs batch 1 throughput at length 2048 (A100, vLLM)", "26.6x", "%.1fx", 10, 45,
			func() (float64, error) { return ratio("fig1a", "len 2048", 64, "len 2048", 1) }},
		{"fig1b", "{1024,128} vs {128,1024} throughput (A100, TRT-LLM, bs 1)", "14.6x", "%.1fx", 5, 22,
			func() (float64, error) { return ratio("fig1b", "out 128", 1024, "out 1024", 128) }},
		{"fig2a", "KV-cache speedup at length 128 (Gaudi2, LLaMA-3-70B)", "~2x", "%.1fx", 1.3, 4.5,
			func() (float64, error) { return ratio("fig2a", "w KV Cache", 128, "w/o KV Cache", 128) }},
		{"fig2a", "KV-cache speedup at length 1024", "~7x", "%.1fx", 3, 15,
			func() (float64, error) { return ratio("fig2a", "w KV Cache", 1024, "w/o KV Cache", 1024) }},
		{"fig2b", "block 16 vs block 8 at batch 64", "1.27x", "%.2fx", 1.05, 1.6,
			func() (float64, error) { return ratio("fig2b", "block 16", 64, "block 8", 64) }},
		{"fig3", "H100 {fp8,fp8} vs {fp16,fp16} at batch 64 (vLLM)", ">1x", "%.2fx", 1.01, 3,
			func() (float64, error) {
				return ratio("fig3", "H100, vLLM, {fp8, fp8}", 64, "H100, vLLM, {fp16, fp16}", 64)
			}},
		{"fig4b", "speculative-decoding gain, LLaMA-2-7B at length 128", ">1x", "%.2fx", 1.01, 3,
			func() (float64, error) { return ratio("fig4b", "LLaMA-2-7B w SD", 128, "LLaMA-2-7B w/o SD", 128) }},
		{"fig4b", "speculative-decoding gain, Mixtral-8x7B at length 256", "<1x", "%.2fx", 0.2, 0.999,
			func() (float64, error) { return ratio("fig4b", "Mixtral-8x7B w SD", 256, "Mixtral-8x7B w/o SD", 256) }},
		{"fig5a", "TP over PP on 4 A100s (LLaMA-3-8B, bs 64)", "1.94x", "%.2fx", 1.4, 2.6,
			func() (float64, error) { return ratio("fig5a", "TP", 4, "PP", 4) }},
		{"fig5a", "TP over hybrid TP=2,PP=2", "1.30x", "%.2fx", 1.05, 1.7,
			func() (float64, error) { return ratio("fig5a", "TP", 4, "TP = 2, PP = 2", 4) }},
		{"fig6", "Mistral-7B (GQA) over LLaMA-2-7B on H100 at bs 64", "~1.9x", "%.2fx", 1.2, 3.2,
			func() (float64, error) { return ratio("fig6", "H100, Mistral-7B", 64, "H100, LLaMA-2-7B", 64) }},
		{"fig6", "Mistral-7B (GQA) over LLaMA-2-7B on A100 at bs 64", "~2.79x", "%.2fx", 1.4, 4.5,
			func() (float64, error) { return ratio("fig6", "A100, Mistral-7B", 64, "A100, LLaMA-2-7B", 64) }},
		{"fig7", "LLaMA-3-70B batch scaling bs1→64 on 4×H100", "39x", "%.1fx", 10, 80,
			func() (float64, error) { return ratio("fig7", "H100 LLaMA-3-70B", 64, "H100 LLaMA-3-70B", 1) }},
		{"fig7", "LLaMA-3-70B batch scaling bs1→64 on 4×A100", "3x", "%.1fx", 1, 15,
			func() (float64, error) { return ratio("fig7", "A100 LLaMA-3-70B", 64, "A100 LLaMA-3-70B", 1) }},
		{"fig7", "H100/A100 batch-scaling contrast (39x / 3x)", "13x", "%.1fx", 2.5, 30,
			func() (float64, error) {
				h, err := ratio("fig7", "H100 LLaMA-3-70B", 64, "H100 LLaMA-3-70B", 1)
				if err != nil {
					return 0, err
				}
				a, err := ratio("fig7", "A100 LLaMA-3-70B", 64, "A100 LLaMA-3-70B", 1)
				if err != nil {
					return 0, err
				}
				return h / a, nil
			}},
		{"fig8", "A100 vs MI250 at bs 16 (vLLM, LLaMA-3-8B)", "'marginally ahead'", "%.2fx", 1.0, 3.2,
			func() (float64, error) { return ratio("fig8", "A100 LLaMA-3-8B", 16, "MI250 LLaMA-3-8B", 16) }},
		{"fig11", "LLaMA-2-7B over LLaMA-3-8B under DS-MII (bs 64, len 128)", "1.18x", "%.2fx", 1.02, 1.6,
			func() (float64, error) { return ratio("fig11", "64 LLaMA-2-7B", 1, "64 LLaMA-3-8B", 1) }},
		{"fig12", "DS-MII over vLLM, Mixtral at bs 64 len 2048 (4×A100)", "1.04x", "%.2fx", 1.0, 1.45,
			func() (float64, error) { return ratio("fig12", "2048 DS-MII", 64, "2048 vLLM", 64) }},
		{"fig13", "llama.cpp batch scaling bs1→64 on A100 ('marginal')", "~2-4x", "%.1fx", 1, 8,
			func() (float64, error) { return ratio("fig13", "A100 LLaMA-2-7B", 64, "A100 LLaMA-2-7B", 1) }},
		{"fig17", "MI250 bs 64 vs bs 32 at length 1024 (declines)", "<1x", "%.2fx", 0.3, 0.999,
			func() (float64, error) { return ratio("fig17", "1 1024", 64, "1 1024", 32) }},
		{"fig18", "SN40L over 4×H100, Mistral-7B at bs 1 len 1024", ">1x", "%.2fx", 1.01, 6,
			func() (float64, error) { return ratio("fig18", "SN40L Mistral-7B", 1024, "H100 Mistral-7B", 1024) }},
		{"fig21", "SN40L TTFT at bs 16, input 1024", "2.85 s", "%.2f s", 1.8, 4.5,
			func() (float64, error) { return val("fig21", "SN40L SambaFlow", 1) }},
		{"fig22", "SN40L ITL vs A100 TRT-LLM (lower is better)", "0.19 vs 1.34 ms", "%.2fx", 2, 60,
			func() (float64, error) { return ratio("fig22", "A100 TRT-LLM", 1, "SN40L SambaFlow", 1) }},
		{"fig23", "H100 over SN40L at bs 64 (crossover)", ">1x", "%.2fx", 1.01, 4,
			func() (float64, error) { return ratio("fig23", "1 H100 TRT-LLM", 64, "8 SN40L SambaFlow", 64) }},
		{"fig25", "H100 peak throughput, LLaMA-3-8B len 1024", "~10k tok/s", "%.0f tok/s", 5000, 20000,
			func() (float64, error) { return val("fig25", "1 H100 (TRT-LLM)", 1) }},
	}
	// Regenerate every distinct anchor figure concurrently, then
	// compute the rows serially from the finished outputs.
	var ids []string
	seen := map[string]bool{}
	for _, s := range specs {
		if !seen[s.fig] {
			seen[s.fig] = true
			ids = append(ids, s.fig)
		}
	}
	outs, err := RunExperiments(ids, parallelism)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	cache = make(map[string]*Output, len(ids))
	for i, id := range ids {
		cache[id] = outs[i]
	}

	for _, s := range specs {
		v, err := s.compute()
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", s.fig, err)
		}
		add(s.fig, s.claim, s.paper, v, s.format, s.lo, s.hi)
	}
	return rows, nil
}

// ReportMarkdown renders the anchor table, regenerating the anchor
// figures on at most parallelism workers (< 1 means GOMAXPROCS).
func ReportMarkdown(parallelism int) (string, error) {
	rows, err := Report(parallelism)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("| Figure | Paper claim | Paper value | Measured | Shape holds |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range rows {
		check := "yes"
		if !r.Holds {
			check = "**no**"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n", r.Figure, r.Claim, r.Paper, r.Measured, check)
	}
	return b.String(), nil
}

package cluster

import (
	"reflect"
	"testing"
)

// TestClusterParallelMatchesSerial asserts the headline kernel
// property at the cluster layer: replicas advanced on per-replica
// goroutines between arrival barriers produce byte-identical Stats to
// the serial kernel, at any Parallelism, for both routers.
func TestClusterParallelMatchesSerial(t *testing.T) {
	reqs := longClusterTrace(t, 64, 3, 384)
	for _, policy := range []Policy{RoundRobin, LeastLoaded} {
		serial, err := Serve(Config{Replicas: makeReplicas(t, 4), Policy: policy, MaxBatch: 8}, reqs)
		if err != nil {
			t.Fatalf("%v serial: %v", policy, err)
		}
		for _, par := range []int{2, 4, 8} {
			got, err := Serve(Config{
				Replicas: makeReplicas(t, 4), Policy: policy, MaxBatch: 8, Parallelism: par,
			}, reqs)
			if err != nil {
				t.Fatalf("%v parallelism %d: %v", policy, par, err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Errorf("%v: parallelism %d Stats differ from serial", policy, par)
			}
		}
		// The stepped reference at full parallelism closes the square:
		// parallel == serial == stepped.
		stepped, err := Serve(Config{
			Replicas: makeReplicas(t, 4), Policy: policy, MaxBatch: 8, Parallelism: 4, Stepped: true,
		}, reqs)
		if err != nil {
			t.Fatalf("%v parallel stepped: %v", policy, err)
		}
		if !reflect.DeepEqual(stepped, serial) {
			t.Errorf("%v: parallel stepped Stats differ from serial coalesced", policy)
		}
	}
}

// TestAutoscaleParallelMatchesSerial extends the property to dynamic
// capacity: the scaling trajectory (events, peak) and every request
// stat must be identical whether replicas advance serially or on
// goroutines, coalesced or stepped — including scale-downs that
// retire an empty replica while the remaining replicas still hold
// in-flight requests.
func TestAutoscaleParallelMatchesSerial(t *testing.T) {
	as := Autoscale{
		Factory:       autoscaleFactory(t),
		Min:           1,
		Max:           5,
		UpOutstanding: 6,
		DownIdleS:     4,
		CooldownS:     1,
	}
	reqs := burstyTrace(t)
	serial, err := ServeAutoscale(Config{MaxBatch: 8}, as, reqs)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, par := range []int{2, 4} {
		got, err := ServeAutoscale(Config{MaxBatch: 8, Parallelism: par}, as, reqs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("parallelism %d AutoStats differ from serial", par)
		}
	}
	stepped, err := ServeAutoscale(Config{MaxBatch: 8, Parallelism: 4, Stepped: true}, as, reqs)
	if err != nil {
		t.Fatalf("parallel stepped: %v", err)
	}
	if !reflect.DeepEqual(stepped, serial) {
		t.Error("parallel stepped AutoStats differ from serial coalesced")
	}

	// The trajectory must actually exercise down-scaling while work
	// is in flight: at some scale-down instant, requests were still
	// being served (the retired replica was empty; its peers were
	// not). Without this the equivalence above would not cover the
	// retire path.
	lastFinish := serial.MakespanS
	sawLiveDown := false
	for _, e := range serial.Events {
		if !e.Up && e.TimeS < lastFinish {
			sawLiveDown = true
		}
	}
	if !sawLiveDown {
		t.Error("trace must force a scale-down while requests are in flight")
	}
}

package cluster

// End-to-end allocation-regression gate: a streaming cluster run over
// a recycled kernel arena must stay far below one allocation per
// request — the property BENCH.md's million-request rows score. The
// per-station gates live in internal/des; this one covers what they
// cannot: routing, barrier flushing, the streaming aggregator, and
// the Scratch plumbing, together.

import (
	"testing"

	"llmbench/internal/des"
)

func TestClusterStreamingSteadyStateAllocs(t *testing.T) {
	const n = 4000
	reqs := longClusterTrace(t, n, 40, 64)
	reps := makeReplicas(t, 3)
	var scratch des.Scratch
	run := func() {
		st, err := Serve(Config{
			Replicas: reps, Policy: LeastLoaded, MaxBatch: 8,
			Streaming: true, Scratch: &scratch,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != n {
			t.Fatalf("completed %d/%d", st.Completed, n)
		}
	}
	run() // warm the arena, allocator maps, and engine memos
	avg := testing.AllocsPerRun(3, run)
	// A warm run still pays O(1) setup — the kernel, aggregator
	// sketches, per-replica stats — but nothing per request or per
	// event. The bound is loose against that fixed cost (~14 objects
	// when written) yet at 0.1 allocs/request, so any reintroduced
	// per-event allocation (n or more objects) fails loudly.
	if limit := float64(n) / 10; avg > limit {
		t.Errorf("streaming cluster run of %d requests allocates %.0f times, want ≤ %.0f", n, avg, limit)
	}
}

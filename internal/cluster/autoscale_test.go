package cluster

import (
	"testing"

	"llmbench/internal/dtype"
	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/workload"
)

func factory(t *testing.T) func() (Replica, error) {
	t.Helper()
	m := model.MustGet("Mistral-7B")
	return func() (Replica, error) {
		eng, err := engine.New(engine.Config{
			Model:     m,
			Device:    hw.MustGet("A100"),
			Framework: framework.MustGet("vLLM"),
		})
		if err != nil {
			return Replica{}, err
		}
		alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 16*(1<<30))
		if err != nil {
			return Replica{}, err
		}
		return Replica{Engine: eng, Alloc: alloc}, nil
	}
}

func burstyTrace(t *testing.T) []workload.Request {
	t.Helper()
	reqs, err := workload.ChatTrace(workload.ChatTraceConfig{
		Seed: 61, Requests: 500, RatePerSec: 15, BurstFactor: 6, BurstLenS: 4,
		InputMedian: 512, OutputMedian: 128, Sigma: 0.7, MaxLen: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func defaultAutoscale(t *testing.T) Autoscale {
	return Autoscale{
		Factory:       factory(t),
		Min:           1,
		Max:           6,
		UpOutstanding: 12,
		DownIdleS:     3,
		CooldownS:     1,
	}
}

func TestAutoscaleValidation(t *testing.T) {
	reqs := burstyTrace(t)
	bad := defaultAutoscale(t)
	bad.Factory = nil
	if _, err := ServeAutoscale(Config{MaxBatch: 16}, bad, reqs); err == nil {
		t.Error("nil factory must fail")
	}
	bad = defaultAutoscale(t)
	bad.Max = 0
	if _, err := ServeAutoscale(Config{MaxBatch: 16}, bad, reqs); err == nil {
		t.Error("bad bounds must fail")
	}
	if _, err := ServeAutoscale(Config{MaxBatch: 0}, defaultAutoscale(t), reqs); err == nil {
		t.Error("MaxBatch 0 must fail")
	}
	if _, err := ServeAutoscale(Config{MaxBatch: 16}, defaultAutoscale(t), nil); err == nil {
		t.Error("empty trace must fail")
	}
}

func TestAutoscaleScalesUpUnderBurst(t *testing.T) {
	stats, err := ServeAutoscale(Config{MaxBatch: 16}, defaultAutoscale(t), burstyTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 500 {
		t.Errorf("completed %d/500", stats.Completed)
	}
	if stats.PeakReplicas <= 1 {
		t.Error("a 6x burst at 15 req/s must force scale-up from 1 replica")
	}
	if stats.PeakReplicas > 6 {
		t.Errorf("peak %d exceeds Max", stats.PeakReplicas)
	}
	sawUp, sawDown := false, false
	for _, e := range stats.Events {
		if e.Up {
			sawUp = true
		} else {
			sawDown = true
		}
		if e.Replicas < 1 || e.Replicas > 6 {
			t.Errorf("event outside bounds: %+v", e)
		}
	}
	if !sawUp {
		t.Error("expected at least one scale-up event")
	}
	if !sawDown {
		t.Error("expected at least one scale-down event (bursts end)")
	}
}

func TestAutoscaleBeatsFixedMinUnderLoad(t *testing.T) {
	reqs := burstyTrace(t)
	auto, err := ServeAutoscale(Config{MaxBatch: 16}, defaultAutoscale(t), reqs)
	if err != nil {
		t.Fatal(err)
	}
	fixedRep, err := factory(t)()
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Serve(Config{Replicas: []Replica{fixedRep}, Policy: LeastLoaded, MaxBatch: 16}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if auto.MeanLatency >= fixed.MeanLatency {
		t.Errorf("autoscaled latency %.2fs must beat the single fixed replica %.2fs",
			auto.MeanLatency, fixed.MeanLatency)
	}
}

func TestAutoscaleStaysAtMinWhenIdleLoad(t *testing.T) {
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 3, Requests: 40, RatePerSec: 0.5, // trickle
		InputMean: 256, OutputMean: 64, LengthJitter: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	as := defaultAutoscale(t)
	as.Min = 2
	stats, err := ServeAutoscale(Config{MaxBatch: 16}, as, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakReplicas != 2 {
		t.Errorf("trickle load must never scale past Min: peak %d", stats.PeakReplicas)
	}
	for _, e := range stats.Events {
		if e.Up {
			t.Errorf("unexpected scale-up at %.1fs", e.TimeS)
		}
	}
}

package cluster

import (
	"testing"

	"llmbench/internal/dtype"
	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/sched"
	"llmbench/internal/workload"
)

func makeReplicas(t *testing.T, n int) []Replica {
	t.Helper()
	out := make([]Replica, n)
	m := model.MustGet("Mistral-7B")
	for i := range out {
		eng, err := engine.New(engine.Config{
			Model:     m,
			Device:    hw.MustGet("A100"),
			Framework: framework.MustGet("vLLM"),
		})
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 16*(1<<30))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = Replica{Engine: eng, Alloc: alloc}
	}
	return out
}

func clusterTrace(t *testing.T, n int, rate float64) []workload.Request {
	t.Helper()
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 77, Requests: n, RatePerSec: rate,
		InputMean: 512, OutputMean: 128, LengthJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestValidation(t *testing.T) {
	reqs := clusterTrace(t, 5, 1)
	if _, err := Serve(Config{MaxBatch: 8}, reqs); err == nil {
		t.Error("no replicas must fail")
	}
	if _, err := Serve(Config{Replicas: makeReplicas(t, 1), MaxBatch: 0}, reqs); err == nil {
		t.Error("MaxBatch 0 must fail")
	}
	if _, err := Serve(Config{Replicas: makeReplicas(t, 1), MaxBatch: 8}, nil); err == nil {
		t.Error("empty trace must fail")
	}
	if _, err := Serve(Config{Replicas: []Replica{{}}, MaxBatch: 8}, reqs); err == nil {
		t.Error("incomplete replica must fail")
	}
}

func TestAllComplete(t *testing.T) {
	for _, policy := range []Policy{RoundRobin, LeastLoaded} {
		stats, err := Serve(Config{
			Replicas: makeReplicas(t, 3), Policy: policy, MaxBatch: 16,
		}, clusterTrace(t, 90, 12))
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if stats.Completed != 90 {
			t.Errorf("%v: completed %d/90", policy, stats.Completed)
		}
		total := 0
		for _, r := range stats.PerReplica {
			total += r.Completed
			if r.Util < 0 || r.Util > 1 {
				t.Errorf("%v: utilisation %v out of range", policy, r.Util)
			}
		}
		if total != 90 {
			t.Errorf("%v: per-replica sum %d != 90", policy, total)
		}
	}
}

func TestMoreReplicasReduceLatency(t *testing.T) {
	reqs := clusterTrace(t, 120, 20) // heavy load
	one, err := Serve(Config{Replicas: makeReplicas(t, 1), MaxBatch: 16}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Serve(Config{Replicas: makeReplicas(t, 4), MaxBatch: 16}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if four.MeanLatency >= one.MeanLatency {
		t.Errorf("4 replicas (%.2fs) must beat 1 (%.2fs) under load",
			four.MeanLatency, one.MeanLatency)
	}
	if four.Throughput <= one.Throughput {
		t.Errorf("4 replicas (%.0f tok/s) must beat 1 (%.0f)", four.Throughput, one.Throughput)
	}
}

func TestLeastLoadedNotWorseThanRoundRobin(t *testing.T) {
	// With variable-length requests, JSQ avoids pile-ups behind long
	// requests; it must not lose to blind round-robin.
	reqs := clusterTrace(t, 150, 25)
	rr, err := Serve(Config{Replicas: makeReplicas(t, 4), Policy: RoundRobin, MaxBatch: 16}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	jsq, err := Serve(Config{Replicas: makeReplicas(t, 4), Policy: LeastLoaded, MaxBatch: 16}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if jsq.MeanLatency > rr.MeanLatency*1.05 {
		t.Errorf("least-loaded latency %.2f must not exceed round-robin %.2f",
			jsq.MeanLatency, rr.MeanLatency)
	}
}

func TestRequestTimelineConsistent(t *testing.T) {
	stats, err := Serve(Config{
		Replicas: makeReplicas(t, 2), Policy: LeastLoaded, MaxBatch: 8,
	}, clusterTrace(t, 40, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range stats.Requests {
		if r.Started < r.Arrival || r.FirstTok < r.Started || r.Finished < r.FirstTok {
			t.Errorf("req %d timeline inconsistent: %+v", r.ID, r)
		}
	}
	var _ sched.Stats = stats.Stats // aggregation reuses sched's summary type
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" {
		t.Error("policy strings wrong")
	}
}

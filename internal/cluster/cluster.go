// Package cluster simulates a multi-replica serving deployment: N
// independent engine replicas behind a request router, driven by one
// discrete-event loop (internal/trace). It extends the single-device
// scheduler (internal/sched) to the deployment question the paper's
// data exists to answer — how many of which accelerator meet a target
// load (§VII: "the choice … should be tailored to specific user
// scenarios and infrastructure constraints").
//
// Two routing policies are provided: round-robin and
// join-the-shortest-queue (least outstanding work).
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/sched"
	"llmbench/internal/trace"
	"llmbench/internal/workload"
)

// Policy selects the router.
type Policy int

const (
	// RoundRobin cycles through replicas.
	RoundRobin Policy = iota
	// LeastLoaded joins the replica with the fewest outstanding
	// requests (queued + running).
	LeastLoaded
)

func (p Policy) String() string {
	if p == RoundRobin {
		return "round-robin"
	}
	return "least-loaded"
}

// Replica is one serving instance.
type Replica struct {
	Engine *engine.Engine
	Alloc  kvcache.Allocator
}

// Config parameterises a cluster simulation.
type Config struct {
	Replicas []Replica
	Policy   Policy
	MaxBatch int // per replica
}

// Stats aggregates the run; PerReplica reports each replica's share.
type Stats struct {
	sched.Stats
	PerReplica []ReplicaStats
}

// ReplicaStats summarises one replica.
type ReplicaStats struct {
	Completed int
	BusyS     float64 // time spent executing iterations
	Util      float64 // BusyS / makespan
}

type replicaState struct {
	id     int
	rep    Replica
	queue  []workload.Request
	run    []*runReq
	active bool // an iteration event is scheduled
	busy   float64
	done   int
}

type runReq struct {
	req       workload.Request
	generated int
	stats     *sched.RequestStats
}

// Serve routes the trace across the replicas and runs to completion.
func Serve(cfg Config, reqs []workload.Request) (Stats, error) {
	if len(cfg.Replicas) == 0 {
		return Stats{}, errors.New("cluster: no replicas")
	}
	if cfg.MaxBatch < 1 {
		return Stats{}, errors.New("cluster: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return Stats{}, errors.New("cluster: empty trace")
	}
	for i, r := range cfg.Replicas {
		if r.Engine == nil || r.Alloc == nil {
			return Stats{}, fmt.Errorf("cluster: replica %d incomplete", i)
		}
	}

	sim := trace.NewSim()
	states := make([]*replicaState, len(cfg.Replicas))
	for i, r := range cfg.Replicas {
		states[i] = &replicaState{id: i, rep: r}
	}
	var done []sched.RequestStats
	var simErr error
	rr := 0

	pick := func() *replicaState {
		if cfg.Policy == RoundRobin {
			s := states[rr%len(states)]
			rr++
			return s
		}
		best := states[0]
		for _, s := range states[1:] {
			if len(s.queue)+len(s.run) < len(best.queue)+len(best.run) {
				best = s
			}
		}
		return best
	}

	var iterate func(s *replicaState) func(now float64)
	schedule := func(s *replicaState, at float64) {
		if s.active {
			return
		}
		s.active = true
		if err := sim.At(at, iterate(s)); err != nil && simErr == nil {
			simErr = err
		}
	}

	iterate = func(s *replicaState) func(now float64) {
		return func(now float64) {
			s.active = false
			if simErr != nil {
				return
			}
			// Admit.
			var admitted []*runReq
			for len(s.queue) > 0 && len(s.run)+len(admitted) < cfg.MaxBatch {
				req := s.queue[0]
				if !s.rep.Alloc.CanAlloc(req.Input) {
					break
				}
				if err := s.rep.Alloc.Alloc(req.ID, req.Input); err != nil {
					break
				}
				s.queue = s.queue[1:]
				admitted = append(admitted, &runReq{
					req: req,
					stats: &sched.RequestStats{
						ID: req.ID, Input: req.Input, Output: req.Output,
						Arrival: req.Arrival, Started: now,
					},
				})
			}
			var step float64
			if len(admitted) > 0 {
				in := 0
				for _, a := range admitted {
					in += a.req.Input
				}
				pf, err := s.rep.Engine.PrefillSeconds(len(admitted), in/len(admitted))
				if err != nil {
					simErr = err
					return
				}
				step += pf
				for _, a := range admitted {
					a.stats.FirstTok = now + step
					a.generated = 1
				}
				s.run = append(s.run, admitted...)
			}
			if len(s.run) == 0 {
				if len(s.queue) > 0 {
					simErr = fmt.Errorf("cluster: replica %d cannot admit request %d (cache too small)",
						s.id, s.queue[0].ID)
				}
				return
			}
			// One decode iteration.
			ctxSum := 0
			for _, r := range s.run {
				ctxSum += r.req.Input + r.generated
			}
			t, err := s.rep.Engine.DecodeStepSeconds(len(s.run), ctxSum/len(s.run))
			if err != nil {
				simErr = err
				return
			}
			step += t
			end := now + step
			s.busy += step
			next := s.run[:0]
			for _, r := range s.run {
				r.generated++
				if r.generated >= r.req.Output {
					s.rep.Alloc.Free(r.req.ID)
					r.stats.Finished = end
					done = append(done, *r.stats)
					s.done++
					continue
				}
				if err := s.rep.Alloc.Extend(r.req.ID, r.req.Input+r.generated); err != nil {
					simErr = err
					return
				}
				next = append(next, r)
			}
			s.run = next
			if len(s.run) > 0 || len(s.queue) > 0 {
				schedule(s, end)
			}
		}
	}

	// Arrival events.
	ordered := make([]workload.Request, len(reqs))
	copy(ordered, reqs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	for _, req := range ordered {
		req := req
		if err := sim.At(req.Arrival, func(now float64) {
			s := pick()
			s.queue = append(s.queue, req)
			schedule(s, now)
		}); err != nil {
			return Stats{}, err
		}
	}

	sim.Run(0)
	if simErr != nil {
		return Stats{}, simErr
	}
	if len(done) != len(reqs) {
		return Stats{}, fmt.Errorf("cluster: only %d of %d requests completed", len(done), len(reqs))
	}

	agg, err := summarize(done, sim.Now())
	if err != nil {
		return Stats{}, err
	}
	out := Stats{Stats: agg}
	for _, s := range states {
		out.PerReplica = append(out.PerReplica, ReplicaStats{
			Completed: s.done,
			BusyS:     s.busy,
			Util:      s.busy / sim.Now(),
		})
	}
	return out, nil
}

func summarize(done []sched.RequestStats, makespan float64) (sched.Stats, error) {
	if makespan <= 0 {
		return sched.Stats{}, errors.New("cluster: zero makespan")
	}
	var tokens, latSum, ttftSum float64
	lats := make([]float64, len(done))
	for i, r := range done {
		lats[i] = r.Latency()
		latSum += lats[i]
		ttftSum += r.FirstTok - r.Arrival
		tokens += float64(r.Input + r.Output)
	}
	sort.Float64s(lats)
	return sched.Stats{
		Completed:   len(done),
		MakespanS:   makespan,
		Throughput:  tokens / makespan,
		MeanLatency: latSum / float64(len(done)),
		P99Latency:  lats[int(float64(len(lats)-1)*0.99)],
		MeanTTFT:    ttftSum / float64(len(done)),
		Requests:    done,
	}, nil
}

// Package cluster simulates a multi-replica serving deployment: N
// independent engine replicas behind a request router. It extends the
// single-device scheduler (internal/sched) to the deployment question
// the paper's data exists to answer — how many of which accelerator
// meet a target load (§VII: "the choice … should be tailored to
// specific user scenarios and infrastructure constraints").
//
// Two routing policies are provided: round-robin and
// join-the-shortest-queue (least outstanding work). The fleet can
// additionally be disaggregated into a prefill pool and a decode pool
// (Config.PrefillReplicas): arrivals route within the prefill pool,
// and each completed prefill hands its KV blocks to a decode-pool
// replica via a priced kv-transfer event (Config.Transfer) — the
// routing policy then applies within each pool independently.
//
// The event loop is the shared discrete-event kernel (internal/des):
// this package contributes only the routing policy (and, in
// autoscale.go, the scale-tick handler); the kernel owns arrival
// delivery, the coalesced-window advance, and the determinism
// contract. Replicas may be advanced on per-replica goroutines
// between arrival barriers (Config.Parallelism) with Stats
// byte-identical to the serial and Stepped paths.
package cluster

import (
	"errors"
	"fmt"

	"llmbench/internal/des"
	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/sched"
	"llmbench/internal/workload"
)

// Policy selects the router.
type Policy int

const (
	// RoundRobin cycles through replicas.
	RoundRobin Policy = iota
	// LeastLoaded joins the replica with the fewest outstanding
	// requests (queued + running).
	LeastLoaded
)

func (p Policy) String() string {
	if p == RoundRobin {
		return "round-robin"
	}
	return "least-loaded"
}

// Replica is one serving instance.
type Replica struct {
	Engine *engine.Engine
	Alloc  kvcache.Allocator
}

// Config parameterises a cluster simulation.
type Config struct {
	Replicas []Replica
	Policy   Policy
	MaxBatch int // per replica

	// PrefillReplicas > 0 splits the fleet into a prefill pool (the
	// first PrefillReplicas replicas) and a decode pool (the rest):
	// prefill/decode disaggregation. Trace arrivals route into the
	// prefill pool and completed prefills hand their KV blocks to the
	// decode pool via priced kv-transfer events (Transfer); the Policy
	// applies within each pool independently. Requires
	// 1 ≤ PrefillReplicas < len(Replicas) and a valid Transfer;
	// incompatible with Static (the decode pool needs iteration-level
	// admission for hand-offs). Zero means aggregated: every replica
	// runs both phases.
	PrefillReplicas int
	// Transfer prices the prefill→decode KV hand-off; required (and
	// validated) when PrefillReplicas > 0, ignored otherwise.
	Transfer des.TransferCost

	// Static runs every replica with pre-Orca static batching
	// (des.Config.Static): collect a batch, run it to completion,
	// repeat. The router and autoscaler drive static replicas exactly
	// like continuous ones — only the per-station admission policy
	// changes.
	Static bool

	// Parallelism ≥ 2 advances replicas on that many goroutines
	// between arrival barriers (see internal/des); values ≤ 1 run
	// serially. Stats are byte-identical at any setting.
	Parallelism int

	// Stepped disables iteration coalescing (see internal/des): one
	// decode iteration per simulator event instead of fast-forwarding
	// identical iterations between state changes. Output is
	// byte-identical either way; the flag exists as the reference path
	// for the equivalence tests.
	Stepped bool

	// Streaming aggregates completions incrementally (des.Kernel.Sink
	// into a sched.StreamAggregator) instead of retaining the
	// per-request ledger: O(1) stats memory for million-request traces.
	// Non-percentile aggregates are byte-identical to the exact path;
	// percentiles are P² sketch estimates (see the accuracy contract in
	// internal/sched/stream.go) and Stats.Requests is nil.
	Streaming bool

	// Scratch, when non-nil, recycles kernel slices and station shells
	// (request free lists included) across runs — see des.Scratch.
	// Results are byte-identical with or without it; sweeps pass one
	// per worker so per-point setup stops allocating.
	Scratch *des.Scratch
}

// Stats aggregates the run; PerReplica reports each replica's share.
type Stats struct {
	sched.Stats
	PerReplica []ReplicaStats
}

// ReplicaStats summarises one replica.
type ReplicaStats struct {
	Completed int
	BusyS     float64 // time spent executing iterations
	Util      float64 // BusyS / makespan
	// Transferred counts prefill sub-requests handed to the decode
	// pool; non-zero only on prefill-pool replicas, whose Completed is
	// in turn always zero (requests finish on the decode pool).
	Transferred int
}

// Serve routes the trace across the replicas and runs to completion.
func Serve(cfg Config, reqs []workload.Request) (Stats, error) {
	if len(cfg.Replicas) == 0 {
		return Stats{}, errors.New("cluster: no replicas")
	}
	if cfg.MaxBatch < 1 {
		return Stats{}, errors.New("cluster: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return Stats{}, errors.New("cluster: empty trace")
	}
	for i, r := range cfg.Replicas {
		if r.Engine == nil || r.Alloc == nil {
			return Stats{}, fmt.Errorf("cluster: replica %d incomplete", i)
		}
	}
	if cfg.PrefillReplicas > 0 {
		if cfg.PrefillReplicas >= len(cfg.Replicas) {
			return Stats{}, fmt.Errorf("cluster: PrefillReplicas %d leaves no decode replicas (fleet of %d)",
				cfg.PrefillReplicas, len(cfg.Replicas))
		}
		if cfg.Static {
			return Stats{}, errors.New("cluster: static batching does not compose with disaggregation (the decode pool needs iteration-level admission)")
		}
		if err := cfg.Transfer.Validate(); err != nil {
			return Stats{}, fmt.Errorf("cluster: %w", err)
		}
	}

	k := des.New(des.Config{
		MaxBatch:    cfg.MaxBatch,
		Static:      cfg.Static,
		Stepped:     cfg.Stepped,
		Parallelism: cfg.Parallelism,
		Transfer:    cfg.Transfer,
	})
	k.Reuse(cfg.Scratch)
	defer k.Release()
	stations := make([]*des.Station, len(cfg.Replicas))
	if cfg.PrefillReplicas > 0 {
		for i, r := range cfg.Replicas {
			role := des.RolePrefill
			if i >= cfg.PrefillReplicas {
				role = des.RoleDecode
			}
			stations[i] = k.NewPoolStation(r.Engine, r.Alloc, role)
		}
		// Arrivals route within the prefill pool, kv-transfer
		// deliveries within the decode pool — each with its own router
		// state, under the one configured policy.
		k.Route = poolRouter(cfg.Policy, stations[:cfg.PrefillReplicas])
		k.RouteTransfer = poolRouter(cfg.Policy, stations[cfg.PrefillReplicas:])
	} else {
		for i, r := range cfg.Replicas {
			stations[i] = k.NewStation(r.Engine, r.Alloc)
		}
		k.Route = poolRouter(cfg.Policy, stations)
	}

	var agg sched.Aggregator
	if cfg.Streaming {
		stream := sched.NewStreamAggregator()
		agg = stream
		k.Sink = stream.Observe
	}
	res, err := k.Run(reqs)
	if err != nil {
		return Stats{}, fmt.Errorf("cluster: %w", err)
	}
	if res.Completed != len(reqs) {
		return Stats{}, fmt.Errorf("cluster: only %d of %d requests completed", res.Completed, len(reqs))
	}
	return assemble(res, agg)
}

// poolRouter builds a routing closure over one station group:
// round-robin cycles it; least-loaded joins the member with the
// fewest outstanding requests. The aggregated fleet is a single group
// spanning every station — the exact closure Serve always used — and
// a disaggregated fleet instantiates it once per pool.
func poolRouter(policy Policy, group []*des.Station) func(now float64) *des.Station {
	rr := 0
	return func(now float64) *des.Station {
		if policy == RoundRobin {
			s := group[rr%len(group)]
			rr++
			return s
		}
		best := group[0]
		for _, s := range group[1:] {
			if s.Outstanding() < best.Outstanding() {
				best = s
			}
		}
		return best
	}
}

// assemble turns a kernel result into cluster Stats; agg, when
// non-nil, is the streaming aggregator that consumed the completions
// the ledger no longer holds.
func assemble(res des.Result, agg sched.Aggregator) (Stats, error) {
	var stats sched.Stats
	var err error
	if agg != nil {
		stats, err = agg.Stats(res.MakespanS, res.Preemptions)
	} else {
		stats, err = sched.Summarize(res.Finished, res.MakespanS, res.Preemptions)
	}
	if err != nil {
		return Stats{}, err
	}
	stats.MaxIterationS = res.MaxIterationS
	out := Stats{Stats: stats}
	for _, ps := range res.PerStation {
		out.PerReplica = append(out.PerReplica, ReplicaStats{
			Completed:   ps.Completed,
			BusyS:       ps.BusyS,
			Util:        ps.BusyS / res.MakespanS,
			Transferred: ps.Transferred,
		})
	}
	return out, nil
}

// Package cluster simulates a multi-replica serving deployment: N
// independent engine replicas behind a request router. It extends the
// single-device scheduler (internal/sched) to the deployment question
// the paper's data exists to answer — how many of which accelerator
// meet a target load (§VII: "the choice … should be tailored to
// specific user scenarios and infrastructure constraints").
//
// Two routing policies are provided: round-robin and
// join-the-shortest-queue (least outstanding work). The fleet can
// additionally be disaggregated into a prefill pool and a decode pool
// (Config.PrefillReplicas): arrivals route within the prefill pool,
// and each completed prefill hands its KV blocks to a decode-pool
// replica via a priced kv-transfer event (Config.Transfer) — the
// routing policy then applies within each pool independently.
//
// The event loop is the shared discrete-event kernel (internal/des):
// this package contributes only the routing policy (and, in
// autoscale.go, the scale-tick handler); the kernel owns arrival
// delivery, the coalesced-window advance, and the determinism
// contract. Replicas may be advanced on per-replica goroutines
// between arrival barriers (Config.Parallelism) with Stats
// byte-identical to the serial and Stepped paths.
package cluster

import (
	"errors"
	"fmt"

	"llmbench/internal/des"
	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/sched"
	"llmbench/internal/workload"
)

// Policy selects the router.
type Policy int

const (
	// RoundRobin cycles through replicas.
	RoundRobin Policy = iota
	// LeastLoaded joins the replica with the fewest outstanding
	// requests (queued + running).
	LeastLoaded
	// Prefix routes to the replica with the longest expected
	// prefix-cache hit for the incoming request — a replica whose
	// allocator holds the shared prefix hot (resident on the device)
	// beats one that must restore it from the host tier, which beats
	// one that must re-prefill it — considering only replicas within a
	// small load window of the least-loaded one, so affinity never
	// builds an unbounded queue on the warm replica. With plain
	// (prefix-blind) allocators it degrades to least-loaded.
	Prefix
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case Prefix:
		return "prefix"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Replica is one serving instance.
type Replica struct {
	Engine *engine.Engine
	Alloc  kvcache.Allocator
}

// Config parameterises a cluster simulation.
type Config struct {
	Replicas []Replica
	Policy   Policy
	MaxBatch int // per replica

	// PrefillReplicas > 0 splits the fleet into a prefill pool (the
	// first PrefillReplicas replicas) and a decode pool (the rest):
	// prefill/decode disaggregation. Trace arrivals route into the
	// prefill pool and completed prefills hand their KV blocks to the
	// decode pool via priced kv-transfer events (Transfer); the Policy
	// applies within each pool independently. Requires
	// 1 ≤ PrefillReplicas < len(Replicas) and a valid Transfer;
	// incompatible with Static (the decode pool needs iteration-level
	// admission for hand-offs). Zero means aggregated: every replica
	// runs both phases.
	PrefillReplicas int
	// Transfer prices the prefill→decode KV hand-off; required (and
	// validated) when PrefillReplicas > 0, ignored otherwise.
	Transfer des.TransferCost

	// Static runs every replica with pre-Orca static batching
	// (des.Config.Static): collect a batch, run it to completion,
	// repeat. The router and autoscaler drive static replicas exactly
	// like continuous ones — only the per-station admission policy
	// changes.
	Static bool

	// ChunkedPrefill runs every replica with Dynamic-SplitFuse-style
	// admission (des.Config.ChunkedPrefill): prompts prefill in
	// PrefillChunk-token slices fused into decode iterations, so a
	// long admission prefill never stalls the replica's running
	// requests — the pairing that makes prefix-affinity routing
	// (Policy Prefix) worthwhile, since arrivals steered to a warm
	// replica admit behind at most one slice instead of a whole
	// prompt. Incompatible with Static (no iteration-level admission
	// to fuse into) and with disaggregation (the prefill pool hands
	// off whole prompts).
	ChunkedPrefill bool
	// PrefillChunk is the slice size in tokens (default 512).
	PrefillChunk int

	// Parallelism ≥ 2 advances replicas on that many goroutines
	// between arrival barriers (see internal/des); values ≤ 1 run
	// serially. Stats are byte-identical at any setting.
	Parallelism int

	// Stepped disables iteration coalescing (see internal/des): one
	// decode iteration per simulator event instead of fast-forwarding
	// identical iterations between state changes. Output is
	// byte-identical either way; the flag exists as the reference path
	// for the equivalence tests.
	Stepped bool

	// Streaming aggregates completions incrementally (des.Kernel.Sink
	// into a sched.StreamAggregator) instead of retaining the
	// per-request ledger: O(1) stats memory for million-request traces.
	// Non-percentile aggregates are byte-identical to the exact path;
	// percentiles are P² sketch estimates (see the accuracy contract in
	// internal/sched/stream.go) and Stats.Requests is nil.
	Streaming bool

	// Scratch, when non-nil, recycles kernel slices and station shells
	// (request free lists included) across runs — see des.Scratch.
	// Results are byte-identical with or without it; sweeps pass one
	// per worker so per-point setup stops allocating.
	Scratch *des.Scratch
}

// Stats aggregates the run; PerReplica reports each replica's share.
type Stats struct {
	sched.Stats
	PerReplica []ReplicaStats
}

// ReplicaStats summarises one replica.
type ReplicaStats struct {
	Completed int
	BusyS     float64 // time spent executing iterations
	Util      float64 // BusyS / makespan
	// Transferred counts prefill sub-requests handed to the decode
	// pool; non-zero only on prefill-pool replicas, whose Completed is
	// in turn always zero (requests finish on the decode pool).
	Transferred int
}

// Serve routes the trace across the replicas and runs to completion.
func Serve(cfg Config, reqs []workload.Request) (Stats, error) {
	if len(cfg.Replicas) == 0 {
		return Stats{}, errors.New("cluster: no replicas")
	}
	if cfg.MaxBatch < 1 {
		return Stats{}, errors.New("cluster: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return Stats{}, errors.New("cluster: empty trace")
	}
	for i, r := range cfg.Replicas {
		if r.Engine == nil || r.Alloc == nil {
			return Stats{}, fmt.Errorf("cluster: replica %d incomplete", i)
		}
	}
	if cfg.ChunkedPrefill {
		if cfg.Static {
			return Stats{}, errors.New("cluster: chunked prefill does not compose with static batching (no iteration-level admission to fuse slices into)")
		}
		if cfg.PrefillReplicas > 0 {
			return Stats{}, errors.New("cluster: chunked prefill does not compose with disaggregation (the prefill pool hands off whole prompts)")
		}
	}
	if cfg.PrefillReplicas > 0 {
		if cfg.PrefillReplicas >= len(cfg.Replicas) {
			return Stats{}, fmt.Errorf("cluster: PrefillReplicas %d leaves no decode replicas (fleet of %d)",
				cfg.PrefillReplicas, len(cfg.Replicas))
		}
		if cfg.Static {
			return Stats{}, errors.New("cluster: static batching does not compose with disaggregation (the decode pool needs iteration-level admission)")
		}
		if err := cfg.Transfer.Validate(); err != nil {
			return Stats{}, fmt.Errorf("cluster: %w", err)
		}
	}

	k := des.New(des.Config{
		MaxBatch:       cfg.MaxBatch,
		ChunkedPrefill: cfg.ChunkedPrefill,
		PrefillChunk:   cfg.PrefillChunk,
		Static:         cfg.Static,
		Stepped:        cfg.Stepped,
		Parallelism:    cfg.Parallelism,
		Transfer:       cfg.Transfer,
	})
	k.Reuse(cfg.Scratch)
	defer k.Release()
	stations := make([]*des.Station, len(cfg.Replicas))
	if cfg.PrefillReplicas > 0 {
		for i, r := range cfg.Replicas {
			role := des.RolePrefill
			if i >= cfg.PrefillReplicas {
				role = des.RoleDecode
			}
			stations[i] = k.NewPoolStation(r.Engine, r.Alloc, role)
		}
		// Arrivals route within the prefill pool, kv-transfer
		// deliveries within the decode pool — each with its own router
		// state, under the one configured policy.
		k.Route = poolRouter(cfg, stations[:cfg.PrefillReplicas])
		k.RouteTransfer = poolRouter(cfg, stations[cfg.PrefillReplicas:])
	} else {
		for i, r := range cfg.Replicas {
			stations[i] = k.NewStation(r.Engine, r.Alloc)
		}
		k.Route = poolRouter(cfg, stations)
	}

	var agg sched.Aggregator
	if cfg.Streaming {
		stream := sched.NewStreamAggregator()
		agg = stream
		k.Sink = stream.Observe
	}
	res, err := k.Run(reqs)
	if err != nil {
		return Stats{}, fmt.Errorf("cluster: %w", err)
	}
	if res.Completed != len(reqs) {
		return Stats{}, fmt.Errorf("cluster: only %d of %d requests completed", res.Completed, len(reqs))
	}
	return assemble(res, agg)
}

// prefixStater is the allocator view the Prefix router scores with:
// shared-prefix tokens resident on the device (a free hit) and tokens
// demoted to a host tier (a hit after a cheap restore).
// kvcache.PrefixPaged and kvcache.Tiered implement it.
type prefixStater interface {
	HotPrefixTokens() int
	RestorablePrefixTokens() int
}

// poolRouter builds a routing closure over one station group:
// round-robin cycles it; least-loaded joins the member with the
// fewest outstanding requests; prefix joins the member with the
// longest expected prefix-cache hit among those within a load window
// of the least-loaded. The aggregated fleet is a single group
// spanning every station — the exact closure Serve always used — and
// a disaggregated fleet instantiates it once per pool.
func poolRouter(cfg Config, group []*des.Station) func(now float64) *des.Station {
	rr := 0
	var staters []prefixStater
	// The load window: affinity may steer an arrival to a replica up
	// to a quarter of the batch cap busier than the least-loaded one.
	// A cache hit admits nearly for free in either admission mode (its
	// prefix tokens are excluded from the admission prefill, and in
	// chunked mode its suffix is one fused slice), so the window
	// concentrates hits without queueing tail latency; wider windows
	// pile the warm set so deep that batched decode gives back more
	// than the skipped prefill saved.
	slack := cfg.MaxBatch / 4
	if slack < 1 {
		slack = 1
	}
	if cfg.Policy == Prefix {
		// Assert each replica's allocator view once, not per arrival.
		staters = make([]prefixStater, len(group))
		for i, s := range group {
			staters[i], _ = s.Alloc.(prefixStater)
		}
	}
	return func(now float64) *des.Station {
		switch cfg.Policy {
		case RoundRobin:
			s := group[rr%len(group)]
			rr++
			return s
		case Prefix:
			// Cache affinity bounded by load: among the replicas within
			// slack of the minimum outstanding count, prefer hot
			// prefixes (no cost) over restorable ones (host-link cost
			// only) over cold replicas; ties go to the lighter replica,
			// then to group order — all deterministic reads of station
			// state at the arrival barrier.
			minOut := group[0].Outstanding()
			for _, s := range group[1:] {
				if o := s.Outstanding(); o < minOut {
					minOut = o
				}
			}
			best, bestScore, bestLoad := -1, -1, 0
			for i, s := range group {
				o := s.Outstanding()
				if o > minOut+slack {
					continue
				}
				score := 0
				if st := staters[i]; st != nil {
					// Hot blocks count double, demoted ones once — a hit
					// is free, a restore costs only the host link. A
					// replica whose prefill backlog rivals its hot count
					// is still materializing that prefix (blocks score
					// hot the moment they allocate, a full prompt before
					// any of it is computed): score it cold, because
					// arrivals steered there ride every establishment
					// slice through inflated iterations. They go to an
					// established replica when one is in the window, and
					// otherwise start a second establishment — which
					// widens the warm set and runs clean instead of
					// piling onto the first.
					hot := st.HotPrefixTokens()
					if hot > 0 && 2*s.PendingPrefillTokens() >= hot {
						hot = 0
					}
					score = 2*hot + st.RestorablePrefixTokens()
				}
				if best < 0 || score > bestScore || (score == bestScore && o < bestLoad) {
					best, bestScore, bestLoad = i, score, o
				}
			}
			return group[best]
		}
		best := group[0]
		for _, s := range group[1:] {
			if s.Outstanding() < best.Outstanding() {
				best = s
			}
		}
		return best
	}
}

// assemble turns a kernel result into cluster Stats; agg, when
// non-nil, is the streaming aggregator that consumed the completions
// the ledger no longer holds.
func assemble(res des.Result, agg sched.Aggregator) (Stats, error) {
	var stats sched.Stats
	var err error
	if agg != nil {
		stats, err = agg.Stats(res.MakespanS, res.Preemptions)
	} else {
		stats, err = sched.Summarize(res.Finished, res.MakespanS, res.Preemptions)
	}
	if err != nil {
		return Stats{}, err
	}
	stats.MaxIterationS = res.MaxIterationS
	if res.PromptTokens > 0 {
		stats.CacheHitRate = float64(res.PrefixHitTokens) / float64(res.PromptTokens)
	}
	out := Stats{Stats: stats}
	for _, ps := range res.PerStation {
		out.PerReplica = append(out.PerReplica, ReplicaStats{
			Completed:   ps.Completed,
			BusyS:       ps.BusyS,
			Util:        ps.BusyS / res.MakespanS,
			Transferred: ps.Transferred,
		})
	}
	return out, nil
}

// Package cluster simulates a multi-replica serving deployment: N
// independent engine replicas behind a request router, driven by one
// discrete-event loop (internal/trace). It extends the single-device
// scheduler (internal/sched) to the deployment question the paper's
// data exists to answer — how many of which accelerator meet a target
// load (§VII: "the choice … should be tailored to specific user
// scenarios and infrastructure constraints").
//
// Two routing policies are provided: round-robin and
// join-the-shortest-queue (least outstanding work).
//
// Like the single-replica scheduler, the event loop coalesces
// iterations: between two state changes (arrival, admission,
// completion, KV-pressure boundary) every decode iteration of a
// replica is identical, so it is fast-forwarded in one event at
// memoised step costs — O(state changes) events instead of O(output
// tokens) — with Stats byte-identical to the stepped reference
// (Config.Stepped); see sched.CoalesceWindow for the contract.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/sched"
	"llmbench/internal/trace"
	"llmbench/internal/workload"
)

// Policy selects the router.
type Policy int

const (
	// RoundRobin cycles through replicas.
	RoundRobin Policy = iota
	// LeastLoaded joins the replica with the fewest outstanding
	// requests (queued + running).
	LeastLoaded
)

func (p Policy) String() string {
	if p == RoundRobin {
		return "round-robin"
	}
	return "least-loaded"
}

// Replica is one serving instance.
type Replica struct {
	Engine *engine.Engine
	Alloc  kvcache.Allocator
}

// Config parameterises a cluster simulation.
type Config struct {
	Replicas []Replica
	Policy   Policy
	MaxBatch int // per replica

	// Stepped disables iteration coalescing (see internal/sched): one
	// decode iteration per simulator event instead of fast-forwarding
	// identical iterations between state changes. Output is
	// byte-identical either way; the flag exists as the reference path
	// for the equivalence tests.
	Stepped bool
}

// Stats aggregates the run; PerReplica reports each replica's share.
type Stats struct {
	sched.Stats
	PerReplica []ReplicaStats
}

// ReplicaStats summarises one replica.
type ReplicaStats struct {
	Completed int
	BusyS     float64 // time spent executing iterations
	Util      float64 // BusyS / makespan
}

type replicaState struct {
	id     int
	rep    Replica
	queue  []workload.Request
	run    []*runReq
	active bool // an iteration event is scheduled
	busy   float64
	done   int
}

type runReq struct {
	req       workload.Request
	generated int
	stats     *sched.RequestStats
}

// Serve routes the trace across the replicas and runs to completion.
func Serve(cfg Config, reqs []workload.Request) (Stats, error) {
	if len(cfg.Replicas) == 0 {
		return Stats{}, errors.New("cluster: no replicas")
	}
	if cfg.MaxBatch < 1 {
		return Stats{}, errors.New("cluster: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return Stats{}, errors.New("cluster: empty trace")
	}
	for i, r := range cfg.Replicas {
		if r.Engine == nil || r.Alloc == nil {
			return Stats{}, fmt.Errorf("cluster: replica %d incomplete", i)
		}
	}

	sim := trace.NewSim()
	states := make([]*replicaState, len(cfg.Replicas))
	for i, r := range cfg.Replicas {
		states[i] = &replicaState{id: i, rep: r}
	}
	var done []sched.RequestStats
	var simErr error
	rr := 0
	var window []float64 // shared fast-forward buffers (the sim is serial)
	var ids []int

	ordered := make([]workload.Request, len(reqs))
	copy(ordered, reqs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	nextArrival := arrivalCursor(ordered)

	pick := func() *replicaState {
		if cfg.Policy == RoundRobin {
			s := states[rr%len(states)]
			rr++
			return s
		}
		best := states[0]
		for _, s := range states[1:] {
			if len(s.queue)+len(s.run) < len(best.queue)+len(best.run) {
				best = s
			}
		}
		return best
	}

	var iterate func(s *replicaState) func(now float64)
	schedule := func(s *replicaState, at float64) {
		if s.active {
			return
		}
		s.active = true
		if err := sim.At(at, iterate(s)); err != nil && simErr == nil {
			simErr = err
		}
	}

	// makespan is the end of the last completed work. The event clock
	// cannot serve here: the final event starts before the work it
	// prices ends, and a coalesced final event starts a whole window
	// earlier than a stepped one — completion times are what both
	// paths agree on byte-for-byte.
	makespan := 0.0
	iterate = func(s *replicaState) func(now float64) {
		return func(now float64) {
			s.active = false
			if simErr != nil {
				return
			}
			end, finished, err := s.iterateOnce(cfg.MaxBatch, now, nextArrival(now), cfg.Stepped, &window, &ids)
			if err != nil {
				simErr = err
				return
			}
			done = append(done, finished...)
			if len(finished) > 0 && end > makespan {
				makespan = end
			}
			if len(s.run) > 0 || len(s.queue) > 0 {
				schedule(s, end)
			}
		}
	}

	// Arrival events.
	for _, req := range ordered {
		req := req
		if err := sim.At(req.Arrival, func(now float64) {
			s := pick()
			s.queue = append(s.queue, req)
			schedule(s, now)
		}); err != nil {
			return Stats{}, err
		}
	}

	sim.Run(0)
	if simErr != nil {
		return Stats{}, simErr
	}
	if len(done) != len(reqs) {
		return Stats{}, fmt.Errorf("cluster: only %d of %d requests completed", len(done), len(reqs))
	}

	sortByCompletion(done)
	agg, err := sched.Summarize(done, makespan, 0)
	if err != nil {
		return Stats{}, err
	}
	out := Stats{Stats: agg}
	for _, s := range states {
		out.PerReplica = append(out.PerReplica, ReplicaStats{
			Completed: s.done,
			BusyS:     s.busy,
			Util:      s.busy / makespan,
		})
	}
	return out, nil
}

// sortByCompletion puts finished requests in completion order with an
// ID tie-break. Replicas append completions in event-start order,
// which depends on how many iterations each event carries — a
// coalesced window surfaces its completions when the window starts,
// a stepped run interleaves them with other replicas' events — so the
// raw append order is representation-dependent. Completion times are
// not: sorting on them makes Stats (including the float summation
// order inside Summarize) identical for both paths.
func sortByCompletion(done []sched.RequestStats) {
	sort.Slice(done, func(i, j int) bool {
		if done[i].Finished != done[j].Finished {
			return done[i].Finished < done[j].Finished
		}
		return done[i].ID < done[j].ID
	})
}

// arrivalCursor returns a next-arrival query over an arrival-sorted
// trace: the earliest arrival strictly after now, or -1 when none
// remain. Simulated time is monotone, so one advancing cursor serves
// every replica's events.
func arrivalCursor(ordered []workload.Request) func(now float64) float64 {
	arrivals := make([]float64, len(ordered))
	for i, r := range ordered {
		arrivals[i] = r.Arrival
	}
	idx := 0
	return func(now float64) float64 {
		for idx < len(arrivals) && arrivals[idx] <= now {
			idx++
		}
		if idx == len(arrivals) {
			return -1
		}
		return arrivals[idx]
	}
}

// iterateOnce runs one scheduler event for this replica: admission
// (with its prefill charge) and then either a single decode iteration
// or — when the state is stable — a coalesced fast-forward over every
// identical iteration up to the next state change (earliest
// completion, KV headroom, next trace arrival). It returns the event's
// end time (== now when nothing ran) and the requests that finished.
// Shared by cluster.Serve and ServeAutoscale; the coalescing contract
// is documented on sched.CoalesceWindow.
func (s *replicaState) iterateOnce(maxBatch int, now, nextArrival float64,
	stepped bool, window *[]float64, ids *[]int) (float64, []sched.RequestStats, error) {
	// Admit.
	var admitted []*runReq
	for len(s.queue) > 0 && len(s.run)+len(admitted) < maxBatch {
		req := s.queue[0]
		if !s.rep.Alloc.CanAlloc(req.Input) {
			break
		}
		if err := s.rep.Alloc.Alloc(req.ID, req.Input); err != nil {
			break
		}
		s.queue = s.queue[1:]
		admitted = append(admitted, &runReq{
			req: req,
			stats: &sched.RequestStats{
				ID: req.ID, Input: req.Input, Output: req.Output,
				Arrival: req.Arrival, Started: now,
			},
		})
	}
	var step float64
	if len(admitted) > 0 {
		in := 0
		for _, a := range admitted {
			in += a.req.Input
		}
		pf, err := s.rep.Engine.PrefillSeconds(len(admitted), in/len(admitted))
		if err != nil {
			return 0, nil, err
		}
		step += pf
		for _, a := range admitted {
			a.stats.FirstTok = now + step
			a.generated = 1
		}
		s.run = append(s.run, admitted...)
	}
	if len(s.run) == 0 {
		if len(s.queue) > 0 {
			return 0, nil, fmt.Errorf("cluster: replica %d cannot admit request %d (cache too small)",
				s.id, s.queue[0].ID)
		}
		return now, nil, nil
	}
	ctxSum := 0
	for _, r := range s.run {
		ctxSum += r.req.Input + r.generated
	}
	// Coalescing fast path: pure-decode events only (an admission event
	// runs its fused prefill+decode stepped; by the next event every
	// member is established, so each step extends each sequence by
	// exactly one token — the trajectory MaxExtendSteps prices).
	if !stepped && len(admitted) == 0 {
		kMax := s.run[0].req.Output - s.run[0].generated
		*ids = (*ids)[:0]
		for _, r := range s.run {
			if r.generated < 2 {
				kMax = 0
				break
			}
			if rem := r.req.Output - r.generated; rem < kMax {
				kMax = rem
			}
			*ids = append(*ids, r.req.ID)
		}
		var err error
		*window, err = sched.CoalesceWindow(s.rep.Engine, s.rep.Alloc, *ids,
			len(s.run), ctxSum/len(s.run), kMax, now, nextArrival, *window)
		if err != nil {
			return 0, nil, err
		}
		if k := len(*window); k > 0 {
			end := now
			for _, c := range *window {
				end += c
				s.busy += c
			}
			var finished []sched.RequestStats
			next := s.run[:0]
			for _, r := range s.run {
				r.generated += k
				if r.generated >= r.req.Output {
					s.rep.Alloc.Free(r.req.ID)
					r.stats.Finished = end
					finished = append(finished, *r.stats)
					s.done++
					continue
				}
				if err := s.rep.Alloc.Extend(r.req.ID, r.req.Input+r.generated); err != nil {
					return 0, nil, err
				}
				next = append(next, r)
			}
			s.run = next
			return end, finished, nil
		}
	}
	// One reference iteration. Completion is checked before Extend —
	// a sequence emitting its final token does not grow its
	// reservation — and the coalesced path above mirrors that order.
	t, err := s.rep.Engine.DecodeStepSeconds(len(s.run), ctxSum/len(s.run))
	if err != nil {
		return 0, nil, err
	}
	step += t
	end := now + step
	s.busy += step
	var finished []sched.RequestStats
	next := s.run[:0]
	for _, r := range s.run {
		r.generated++
		if r.generated >= r.req.Output {
			s.rep.Alloc.Free(r.req.ID)
			r.stats.Finished = end
			finished = append(finished, *r.stats)
			s.done++
			continue
		}
		if err := s.rep.Alloc.Extend(r.req.ID, r.req.Input+r.generated); err != nil {
			return 0, nil, err
		}
		next = append(next, r)
	}
	s.run = next
	return end, finished, nil
}

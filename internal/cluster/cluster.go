// Package cluster simulates a multi-replica serving deployment: N
// independent engine replicas behind a request router. It extends the
// single-device scheduler (internal/sched) to the deployment question
// the paper's data exists to answer — how many of which accelerator
// meet a target load (§VII: "the choice … should be tailored to
// specific user scenarios and infrastructure constraints").
//
// Two routing policies are provided: round-robin and
// join-the-shortest-queue (least outstanding work).
//
// The event loop is the shared discrete-event kernel (internal/des):
// this package contributes only the routing policy (and, in
// autoscale.go, the scale-tick handler); the kernel owns arrival
// delivery, the coalesced-window advance, and the determinism
// contract. Replicas may be advanced on per-replica goroutines
// between arrival barriers (Config.Parallelism) with Stats
// byte-identical to the serial and Stepped paths.
package cluster

import (
	"errors"
	"fmt"

	"llmbench/internal/des"
	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/sched"
	"llmbench/internal/workload"
)

// Policy selects the router.
type Policy int

const (
	// RoundRobin cycles through replicas.
	RoundRobin Policy = iota
	// LeastLoaded joins the replica with the fewest outstanding
	// requests (queued + running).
	LeastLoaded
)

func (p Policy) String() string {
	if p == RoundRobin {
		return "round-robin"
	}
	return "least-loaded"
}

// Replica is one serving instance.
type Replica struct {
	Engine *engine.Engine
	Alloc  kvcache.Allocator
}

// Config parameterises a cluster simulation.
type Config struct {
	Replicas []Replica
	Policy   Policy
	MaxBatch int // per replica

	// Static runs every replica with pre-Orca static batching
	// (des.Config.Static): collect a batch, run it to completion,
	// repeat. The router and autoscaler drive static replicas exactly
	// like continuous ones — only the per-station admission policy
	// changes.
	Static bool

	// Parallelism ≥ 2 advances replicas on that many goroutines
	// between arrival barriers (see internal/des); values ≤ 1 run
	// serially. Stats are byte-identical at any setting.
	Parallelism int

	// Stepped disables iteration coalescing (see internal/des): one
	// decode iteration per simulator event instead of fast-forwarding
	// identical iterations between state changes. Output is
	// byte-identical either way; the flag exists as the reference path
	// for the equivalence tests.
	Stepped bool

	// Streaming aggregates completions incrementally (des.Kernel.Sink
	// into a sched.StreamAggregator) instead of retaining the
	// per-request ledger: O(1) stats memory for million-request traces.
	// Non-percentile aggregates are byte-identical to the exact path;
	// percentiles are P² sketch estimates (see the accuracy contract in
	// internal/sched/stream.go) and Stats.Requests is nil.
	Streaming bool

	// Scratch, when non-nil, recycles kernel slices and station shells
	// (request free lists included) across runs — see des.Scratch.
	// Results are byte-identical with or without it; sweeps pass one
	// per worker so per-point setup stops allocating.
	Scratch *des.Scratch
}

// Stats aggregates the run; PerReplica reports each replica's share.
type Stats struct {
	sched.Stats
	PerReplica []ReplicaStats
}

// ReplicaStats summarises one replica.
type ReplicaStats struct {
	Completed int
	BusyS     float64 // time spent executing iterations
	Util      float64 // BusyS / makespan
}

// Serve routes the trace across the replicas and runs to completion.
func Serve(cfg Config, reqs []workload.Request) (Stats, error) {
	if len(cfg.Replicas) == 0 {
		return Stats{}, errors.New("cluster: no replicas")
	}
	if cfg.MaxBatch < 1 {
		return Stats{}, errors.New("cluster: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return Stats{}, errors.New("cluster: empty trace")
	}
	for i, r := range cfg.Replicas {
		if r.Engine == nil || r.Alloc == nil {
			return Stats{}, fmt.Errorf("cluster: replica %d incomplete", i)
		}
	}

	k := des.New(des.Config{
		MaxBatch:    cfg.MaxBatch,
		Static:      cfg.Static,
		Stepped:     cfg.Stepped,
		Parallelism: cfg.Parallelism,
	})
	k.Reuse(cfg.Scratch)
	defer k.Release()
	stations := make([]*des.Station, len(cfg.Replicas))
	for i, r := range cfg.Replicas {
		stations[i] = k.NewStation(r.Engine, r.Alloc)
	}
	rr := 0
	k.Route = func(now float64) *des.Station {
		if cfg.Policy == RoundRobin {
			s := stations[rr%len(stations)]
			rr++
			return s
		}
		best := stations[0]
		for _, s := range stations[1:] {
			if s.Outstanding() < best.Outstanding() {
				best = s
			}
		}
		return best
	}

	var agg sched.Aggregator
	if cfg.Streaming {
		stream := sched.NewStreamAggregator()
		agg = stream
		k.Sink = stream.Observe
	}
	res, err := k.Run(reqs)
	if err != nil {
		return Stats{}, fmt.Errorf("cluster: %w", err)
	}
	if res.Completed != len(reqs) {
		return Stats{}, fmt.Errorf("cluster: only %d of %d requests completed", res.Completed, len(reqs))
	}
	return assemble(res, agg)
}

// assemble turns a kernel result into cluster Stats; agg, when
// non-nil, is the streaming aggregator that consumed the completions
// the ledger no longer holds.
func assemble(res des.Result, agg sched.Aggregator) (Stats, error) {
	var stats sched.Stats
	var err error
	if agg != nil {
		stats, err = agg.Stats(res.MakespanS, res.Preemptions)
	} else {
		stats, err = sched.Summarize(res.Finished, res.MakespanS, res.Preemptions)
	}
	if err != nil {
		return Stats{}, err
	}
	stats.MaxIterationS = res.MaxIterationS
	out := Stats{Stats: stats}
	for _, ps := range res.PerStation {
		out.PerReplica = append(out.PerReplica, ReplicaStats{
			Completed: ps.Completed,
			BusyS:     ps.BusyS,
			Util:      ps.BusyS / res.MakespanS,
		})
	}
	return out, nil
}

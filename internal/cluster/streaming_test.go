package cluster

import (
	"math"
	"reflect"
	"testing"
)

// zeroPercentiles blanks the sketch-estimated fields so the remainder
// of a Stats value can be compared byte for byte against the exact
// path.
func zeroPercentiles(s *Stats) {
	s.P50Latency, s.P95Latency, s.P99Latency = 0, 0, 0
	s.P50QueueDelay, s.P95QueueDelay, s.P99QueueDelay = 0, 0, 0
}

// TestClusterStreamingMatchesExact pins the streaming accuracy
// contract at the cluster layer: with Streaming set, every
// non-percentile aggregate and per-replica share is byte-identical to
// the exact ledgered run (the kernel's Sink delivers completions in
// the same global order Summarize iterates), the per-request ledger is
// dropped, and the sketch percentiles stay close to the exact ones —
// for continuous and static batching alike.
func TestClusterStreamingMatchesExact(t *testing.T) {
	reqs := longClusterTrace(t, 400, 8, 96)
	for _, static := range []bool{false, true} {
		exact, err := Serve(Config{
			Replicas: makeReplicas(t, 3), Policy: RoundRobin, MaxBatch: 8, Static: static,
		}, reqs)
		if err != nil {
			t.Fatalf("static=%v exact: %v", static, err)
		}
		stream, err := Serve(Config{
			Replicas: makeReplicas(t, 3), Policy: RoundRobin, MaxBatch: 8, Static: static,
			Streaming: true,
		}, reqs)
		if err != nil {
			t.Fatalf("static=%v streaming: %v", static, err)
		}
		if stream.Requests != nil {
			t.Errorf("static=%v: streaming run must not ledger requests", static)
		}
		wantPcts := [6]float64{
			exact.P50Latency, exact.P95Latency, exact.P99Latency,
			exact.P50QueueDelay, exact.P95QueueDelay, exact.P99QueueDelay,
		}
		gotPcts := [6]float64{
			stream.P50Latency, stream.P95Latency, stream.P99Latency,
			stream.P50QueueDelay, stream.P95QueueDelay, stream.P99QueueDelay,
		}
		for i, name := range [6]string{"P50Lat", "P95Lat", "P99Lat", "P50QD", "P95QD", "P99QD"} {
			if rel := math.Abs(gotPcts[i]-wantPcts[i]) / wantPcts[i]; rel > 0.05 {
				t.Errorf("static=%v %s: sketch %v vs exact %v (relative error %.2f%%)",
					static, name, gotPcts[i], wantPcts[i], 100*rel)
			}
		}
		exact.Requests = nil
		zeroPercentiles(&exact)
		zeroPercentiles(&stream)
		if !reflect.DeepEqual(stream, exact) {
			t.Errorf("static=%v: streaming non-percentile aggregates differ from exact:\n got %+v\nwant %+v",
				static, stream, exact)
		}
	}
}

// TestClusterStreamingDeterministicAcrossModes extends the kernel's
// headline property to streaming aggregation: the Sink observes the
// identical completion sequence in every mode, so streaming Stats —
// sketch percentiles included — are byte-identical on the serial,
// parallel, and stepped kernels, for fixed fleets and autoscaling.
func TestClusterStreamingDeterministicAcrossModes(t *testing.T) {
	reqs := longClusterTrace(t, 128, 6, 192)
	for _, static := range []bool{false, true} {
		serial, err := Serve(Config{
			Replicas: makeReplicas(t, 4), Policy: LeastLoaded, MaxBatch: 8, Static: static,
			Streaming: true,
		}, reqs)
		if err != nil {
			t.Fatalf("static=%v serial: %v", static, err)
		}
		for name, cfg := range map[string]Config{
			"parallel": {Replicas: makeReplicas(t, 4), Policy: LeastLoaded, MaxBatch: 8, Static: static,
				Streaming: true, Parallelism: 4},
			"parallel-stepped": {Replicas: makeReplicas(t, 4), Policy: LeastLoaded, MaxBatch: 8, Static: static,
				Streaming: true, Parallelism: 4, Stepped: true},
		} {
			got, err := Serve(cfg, reqs)
			if err != nil {
				t.Fatalf("static=%v %s: %v", static, name, err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Errorf("static=%v: %s streaming Stats differ from serial", static, name)
			}
		}
	}

	as := Autoscale{
		Factory: autoscaleFactory(t), Min: 1, Max: 4,
		UpOutstanding: 6, DownIdleS: 4, CooldownS: 1,
	}
	bursty := burstyTrace(t)
	serial, err := ServeAutoscale(Config{MaxBatch: 8, Streaming: true}, as, bursty)
	if err != nil {
		t.Fatalf("autoscale serial: %v", err)
	}
	if serial.Requests != nil {
		t.Error("streaming autoscale run must not ledger requests")
	}
	stepped, err := ServeAutoscale(Config{MaxBatch: 8, Streaming: true, Parallelism: 4, Stepped: true}, as, bursty)
	if err != nil {
		t.Fatalf("autoscale parallel stepped: %v", err)
	}
	if !reflect.DeepEqual(stepped, serial) {
		t.Error("autoscale streaming AutoStats differ between serial and parallel stepped")
	}
}

package cluster

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"llmbench/internal/des"
	"llmbench/internal/dtype"
	"llmbench/internal/model"
)

// testTransfer prices kv-transfers like the serving surface does:
// 16-token paged blocks at the model's fp16 KV footprint over an
// A100-class interconnect (600 GB/s, 3 µs).
func testTransfer(t *testing.T) des.TransferCost {
	t.Helper()
	m := model.MustGet("Mistral-7B")
	return des.TransferCost{
		BlockTokens:   16,
		BytesPerToken: m.KVBytesPerToken(dtype.FP16),
		GBPerS:        600,
		LatencyS:      3e-6,
	}
}

func disaggConfig(t *testing.T, prefill, total int, policy Policy) Config {
	t.Helper()
	return Config{
		Replicas:        makeReplicas(t, total),
		Policy:          policy,
		MaxBatch:        8,
		PrefillReplicas: prefill,
		Transfer:        testTransfer(t),
	}
}

func TestDisaggServe(t *testing.T) {
	reqs := clusterTrace(t, 150, 25)
	for _, policy := range []Policy{RoundRobin, LeastLoaded} {
		stats, err := Serve(disaggConfig(t, 1, 4, policy), reqs)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if stats.Completed != len(reqs) {
			t.Fatalf("%v: completed %d of %d", policy, stats.Completed, len(reqs))
		}
		if !(stats.MeanTransferDelay > 0) {
			t.Errorf("%v: MeanTransferDelay = %v, want > 0", policy, stats.MeanTransferDelay)
		}
		// Every request paid a transfer, so the mean delay is at least
		// the interconnect latency floor.
		if stats.MeanTransferDelay < 3e-6 {
			t.Errorf("%v: MeanTransferDelay %v below the latency floor", policy, stats.MeanTransferDelay)
		}
		for _, r := range stats.Requests {
			if !(r.TransferS > 0) {
				t.Fatalf("%v: request %d has TransferS %v, want > 0", policy, r.ID, r.TransferS)
			}
			if r.Finished < r.FirstTok+r.TransferS {
				t.Fatalf("%v: request %d finished %v before first-token %v + transfer %v",
					policy, r.ID, r.Finished, r.FirstTok, r.TransferS)
			}
		}
		// The prefill pool hands off everything and completes nothing;
		// the decode pool completes everything.
		if got := stats.PerReplica[0]; got.Completed != 0 || got.Transferred != len(reqs) {
			t.Errorf("%v: prefill replica completed %d / transferred %d, want 0 / %d",
				policy, got.Completed, got.Transferred, len(reqs))
		}
		decoded := 0
		for _, ps := range stats.PerReplica[1:] {
			if ps.Transferred != 0 {
				t.Errorf("%v: decode replica transferred %d, want 0", policy, ps.Transferred)
			}
			decoded += ps.Completed
		}
		if decoded != len(reqs) {
			t.Errorf("%v: decode pool completed %d of %d", policy, decoded, len(reqs))
		}
	}
}

// TestDisaggParallelMatchesSerial is the disaggregated determinism
// suite: serial, parallel (several widths), and Stepped runs of a
// disagg fleet must produce byte-identical Stats — the same contract
// the aggregated fleet has always had, now with kv-transfer events in
// the total order. The name matches the CI `-race` determinism step's
// run pattern.
func TestDisaggParallelMatchesSerial(t *testing.T) {
	reqs := longClusterTrace(t, 64, 3, 384)
	for _, policy := range []Policy{RoundRobin, LeastLoaded} {
		for _, split := range []int{1, 2} {
			base := disaggConfig(t, split, 4, policy)
			want, err := Serve(base, reqs)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 4, 8} {
				cfg := base
				cfg.Replicas = makeReplicas(t, 4)
				cfg.Parallelism = par
				got, err := Serve(cfg, reqs)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("policy %v split %d: parallelism %d differs from serial", policy, split, par)
				}
			}
			stepped := base
			stepped.Replicas = makeReplicas(t, 4)
			stepped.Stepped = true
			got, err := Serve(stepped, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("policy %v split %d: stepped differs from coalesced", policy, split)
			}
		}
	}
}

// TestDisaggStreamingMatchesLedger pins the Sink contract for
// disaggregated fleets: streaming aggregation must reproduce every
// non-percentile aggregate byte-for-byte, transfer delay included.
func TestDisaggStreamingMatchesLedger(t *testing.T) {
	reqs := clusterTrace(t, 150, 25)
	exact, err := Serve(disaggConfig(t, 1, 4, RoundRobin), reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := disaggConfig(t, 1, 4, RoundRobin)
	cfg.Streaming = true
	stream, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if exact.MeanLatency != stream.MeanLatency || exact.MeanTTFT != stream.MeanTTFT ||
		exact.MeanQueueDelay != stream.MeanQueueDelay || exact.MeanTransferDelay != stream.MeanTransferDelay ||
		exact.Throughput != stream.Throughput || exact.MakespanS != stream.MakespanS ||
		exact.Completed != stream.Completed {
		t.Errorf("streaming aggregates differ from ledger:\nexact  %+v\nstream %+v", exact.Stats, stream.Stats)
	}
}

func TestDisaggScratchReuse(t *testing.T) {
	reqs := clusterTrace(t, 100, 20)
	want, err := Serve(disaggConfig(t, 1, 3, LeastLoaded), reqs)
	if err != nil {
		t.Fatal(err)
	}
	sc := &des.Scratch{}
	for i := 0; i < 3; i++ {
		cfg := disaggConfig(t, 1, 3, LeastLoaded)
		cfg.Scratch = sc
		got, err := Serve(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("run %d with recycled scratch differs", i)
		}
	}
}

func TestDisaggValidation(t *testing.T) {
	reqs := clusterTrace(t, 5, 1)
	cfg := disaggConfig(t, 4, 4, RoundRobin)
	if _, err := Serve(cfg, reqs); err == nil {
		t.Error("prefill pool covering the whole fleet must fail")
	}
	cfg = disaggConfig(t, 1, 2, RoundRobin)
	cfg.Static = true
	if _, err := Serve(cfg, reqs); err == nil {
		t.Error("static + disagg must fail")
	}
	cfg = disaggConfig(t, 1, 2, RoundRobin)
	cfg.Transfer.GBPerS = 0
	if _, err := Serve(cfg, reqs); !errors.Is(err, des.ErrBadTransfer) {
		t.Errorf("zero-bandwidth transfer: got %v, want ErrBadTransfer", err)
	}
	cfg = disaggConfig(t, 1, 2, RoundRobin)
	cfg.Transfer.LatencyS = math.NaN()
	if _, err := Serve(cfg, reqs); !errors.Is(err, des.ErrBadTransfer) {
		t.Errorf("NaN-latency transfer: got %v, want ErrBadTransfer", err)
	}
}

// TestAggregatedGolden pins the aggregated topology byte-for-byte to
// the pre-disaggregation simulator: the fingerprints below were
// generated at the commit before pool roles existed. Any drift means
// the refactor changed aggregated behavior, which the determinism
// contract forbids.
func TestAggregatedGolden(t *testing.T) {
	reqs := clusterTrace(t, 150, 25)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"rr4", Config{Replicas: makeReplicas(t, 4), Policy: RoundRobin, MaxBatch: 8},
			"0x1.5d26d8c89afbdp+01|0x1.11ae7dfcf39aep+02|0x1.20ef6f9b18c2bp+13|0x1.479dd99a980dap+03|0x1.ed422789cc3e8p-01|0x1.d985c107dbd22p-01|150|0"},
		{"ll4", Config{Replicas: makeReplicas(t, 4), Policy: LeastLoaded, MaxBatch: 8},
			"0x1.5d0ac83972f1ap+01|0x1.106e74c7e6336p+02|0x1.24bc1af0d1c7cp+13|0x1.435d476c9c8a3p+03|0x1.eda0d5f6e10c1p-01|0x1.d92dd82c49d54p-01|150|0"},
		{"static2", Config{Replicas: makeReplicas(t, 2), Policy: RoundRobin, MaxBatch: 8, Static: true},
			"0x1.63677336abab9p+03|0x1.3030c36daef4p+04|0x1.c6a14e7ea0e0ep+11|0x1.a06d2bc9fd4acp+04|0x1.211bcbcfd1cb3p+03|0x1.14c10ff4e443p+03|150|0"},
	}
	for _, tc := range cases {
		stats, err := Serve(tc.cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := fmt.Sprintf("%x|%x|%x|%x|%x|%x|%d|%d",
			stats.MeanLatency, stats.P99Latency, stats.Throughput, stats.MakespanS,
			stats.MeanTTFT, stats.MeanQueueDelay, stats.Completed, stats.Preemptions)
		if got != tc.want {
			t.Errorf("%s drifted from pre-refactor output:\ngot  %s\nwant %s", tc.name, got, tc.want)
		}
	}
}

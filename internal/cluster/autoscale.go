package cluster

// Autoscaling extends the cluster simulator with dynamic capacity:
// replicas are added when queues build and retired when they sit
// idle — the operational layer a production deployment puts on top of
// the per-accelerator numbers this benchmark produces. The policy is
// a scale-tick event handler on the shared kernel (internal/des):
// ticks fire immediately before each arrival, so window bounds at the
// next arrival also keep the scaling trajectory byte-identical
// between the coalesced, stepped, serial, and parallel paths.

import (
	"errors"
	"fmt"

	"llmbench/internal/des"
	"llmbench/internal/sched"
	"llmbench/internal/workload"
)

// Autoscale configures dynamic replica management.
type Autoscale struct {
	// Factory builds a fresh replica (engine + KV allocator).
	Factory func() (Replica, error)
	// Min and Max bound the replica count.
	Min, Max int
	// UpOutstanding: scale up when mean outstanding requests per
	// active replica exceeds this.
	UpOutstanding int
	// DownIdleS is the minimum spacing between scale-downs; a replica
	// is retired when it is empty and the remaining replicas would
	// still run at under half the scale-up threshold.
	DownIdleS float64
	// CooldownS is the minimum spacing between scale-ups.
	CooldownS float64
}

func (a *Autoscale) validate() error {
	switch {
	case a.Factory == nil:
		return errors.New("cluster: autoscale needs a replica factory")
	case a.Min < 1 || a.Max < a.Min:
		return fmt.Errorf("cluster: bad autoscale bounds [%d, %d]", a.Min, a.Max)
	case a.UpOutstanding < 1:
		return errors.New("cluster: UpOutstanding must be ≥ 1")
	case a.DownIdleS <= 0 || a.CooldownS < 0:
		return errors.New("cluster: non-positive idle/cooldown times")
	}
	return nil
}

// ScaleEvent records a capacity change.
type ScaleEvent struct {
	TimeS    float64
	Replicas int
	Up       bool
}

// AutoStats extends Stats with the scaling trajectory.
type AutoStats struct {
	Stats
	Events       []ScaleEvent
	PeakReplicas int
}

// ServeAutoscale runs the trace with dynamic capacity, starting from
// Min replicas.
func ServeAutoscale(cfg Config, as Autoscale, reqs []workload.Request) (AutoStats, error) {
	if err := as.validate(); err != nil {
		return AutoStats{}, err
	}
	if cfg.MaxBatch < 1 {
		return AutoStats{}, errors.New("cluster: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return AutoStats{}, errors.New("cluster: empty trace")
	}
	if cfg.ChunkedPrefill && cfg.Static {
		return AutoStats{}, errors.New("cluster: chunked prefill does not compose with static batching (no iteration-level admission to fuse slices into)")
	}

	k := des.New(des.Config{
		MaxBatch:       cfg.MaxBatch,
		ChunkedPrefill: cfg.ChunkedPrefill,
		PrefillChunk:   cfg.PrefillChunk,
		Static:         cfg.Static,
		Stepped:        cfg.Stepped,
		Parallelism:    cfg.Parallelism,
	})
	k.Reuse(cfg.Scratch)
	defer k.Release()
	var agg sched.Aggregator
	if cfg.Streaming {
		stream := sched.NewStreamAggregator()
		agg = stream
		k.Sink = stream.Observe
	}
	var events []ScaleEvent
	peak := 0
	lastScaleUp := -1e18
	lastScaleDown := -1e18

	active := func() int {
		n := 0
		for _, s := range k.Stations() {
			if !s.Retired {
				n++
			}
		}
		return n
	}
	addReplica := func(now float64, initial bool) error {
		rep, err := as.Factory()
		if err != nil {
			return err
		}
		if rep.Engine == nil || rep.Alloc == nil {
			return errors.New("cluster: factory produced an incomplete replica")
		}
		k.NewStation(rep.Engine, rep.Alloc)
		if !initial {
			events = append(events, ScaleEvent{TimeS: now, Replicas: active(), Up: true})
		}
		if a := active(); a > peak {
			peak = a
		}
		return nil
	}
	for i := 0; i < as.Min; i++ {
		if err := addReplica(0, true); err != nil {
			return AutoStats{}, err
		}
	}
	peak = as.Min

	// The scale-tick handler: fired by the kernel immediately before
	// each arrival is routed, with every replica synchronised at the
	// arrival barrier.
	k.ScaleTick = func(now float64) error {
		// Scale up on queue pressure.
		outstanding := 0
		for _, s := range k.Stations() {
			if !s.Retired {
				outstanding += s.Outstanding()
			}
		}
		act := active()
		if act < as.Max && now-lastScaleUp >= as.CooldownS &&
			outstanding > as.UpOutstanding*act {
			if err := addReplica(now, false); err != nil {
				return err
			}
			lastScaleUp = now
		}
		// Retire one empty replica when the rest run comfortably.
		if act > as.Min && now-lastScaleDown >= as.DownIdleS &&
			outstanding <= as.UpOutstanding*(act-1)/2 {
			for _, s := range k.Stations() {
				if !s.Retired && s.Outstanding() == 0 {
					s.Retired = true
					lastScaleDown = now
					events = append(events, ScaleEvent{TimeS: now, Replicas: active(), Up: false})
					break
				}
			}
		}
		return nil
	}
	k.Route = func(now float64) *des.Station {
		var best *des.Station
		for _, s := range k.Stations() {
			if s.Retired {
				continue
			}
			if best == nil || s.Outstanding() < best.Outstanding() {
				best = s
			}
		}
		return best
	}

	res, err := k.Run(reqs)
	if err != nil {
		return AutoStats{}, fmt.Errorf("cluster: %w", err)
	}
	if res.Completed != len(reqs) {
		return AutoStats{}, fmt.Errorf("cluster: only %d of %d requests completed", res.Completed, len(reqs))
	}
	stats, err := assemble(res, agg)
	if err != nil {
		return AutoStats{}, err
	}
	return AutoStats{Stats: stats, Events: events, PeakReplicas: peak}, nil
}

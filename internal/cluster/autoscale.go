package cluster

// Autoscaling extends the cluster simulator with dynamic capacity:
// replicas are added when queues build and retired when they sit
// idle — the operational layer a production deployment puts on top of
// the per-accelerator numbers this benchmark produces.

import (
	"errors"
	"fmt"
	"sort"

	"llmbench/internal/sched"
	"llmbench/internal/trace"
	"llmbench/internal/workload"
)

// Autoscale configures dynamic replica management.
type Autoscale struct {
	// Factory builds a fresh replica (engine + KV allocator).
	Factory func() (Replica, error)
	// Min and Max bound the replica count.
	Min, Max int
	// UpOutstanding: scale up when mean outstanding requests per
	// active replica exceeds this.
	UpOutstanding int
	// DownIdleS is the minimum spacing between scale-downs; a replica
	// is retired when it is empty and the remaining replicas would
	// still run at under half the scale-up threshold.
	DownIdleS float64
	// CooldownS is the minimum spacing between scale-ups.
	CooldownS float64
}

func (a *Autoscale) validate() error {
	switch {
	case a.Factory == nil:
		return errors.New("cluster: autoscale needs a replica factory")
	case a.Min < 1 || a.Max < a.Min:
		return fmt.Errorf("cluster: bad autoscale bounds [%d, %d]", a.Min, a.Max)
	case a.UpOutstanding < 1:
		return errors.New("cluster: UpOutstanding must be ≥ 1")
	case a.DownIdleS <= 0 || a.CooldownS < 0:
		return errors.New("cluster: non-positive idle/cooldown times")
	}
	return nil
}

// ScaleEvent records a capacity change.
type ScaleEvent struct {
	TimeS    float64
	Replicas int
	Up       bool
}

// AutoStats extends Stats with the scaling trajectory.
type AutoStats struct {
	Stats
	Events       []ScaleEvent
	PeakReplicas int
}

// ServeAutoscale runs the trace with dynamic capacity, starting from
// Min replicas.
func ServeAutoscale(cfg Config, as Autoscale, reqs []workload.Request) (AutoStats, error) {
	if err := as.validate(); err != nil {
		return AutoStats{}, err
	}
	if cfg.MaxBatch < 1 {
		return AutoStats{}, errors.New("cluster: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return AutoStats{}, errors.New("cluster: empty trace")
	}

	sim := trace.NewSim()
	var states []*autoState
	var done []sched.RequestStats
	var simErr error
	var events []ScaleEvent
	peak := 0
	lastScaleUp := -1e18
	var window []float64 // shared fast-forward buffers (the sim is serial)
	var ids []int

	ordered := make([]workload.Request, len(reqs))
	copy(ordered, reqs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	// Scaling decisions happen only at arrival events, so bounding
	// fast-forward windows by the next arrival also keeps the scaling
	// trajectory byte-identical to the stepped path.
	nextArrival := arrivalCursor(ordered)

	addReplica := func(now float64, initial bool) error {
		rep, err := as.Factory()
		if err != nil {
			return err
		}
		if rep.Engine == nil || rep.Alloc == nil {
			return errors.New("cluster: factory produced an incomplete replica")
		}
		states = append(states, &autoState{
			replicaState: replicaState{id: len(events) + len(states), rep: rep},
		})
		if !initial {
			events = append(events, ScaleEvent{TimeS: now, Replicas: active(states), Up: true})
		}
		if active(states) > peak {
			peak = active(states)
		}
		return nil
	}
	for i := 0; i < as.Min; i++ {
		if err := addReplica(0, true); err != nil {
			return AutoStats{}, err
		}
	}
	peak = as.Min
	lastScaleDown := -1e18

	var iterate func(s *autoState) func(now float64)
	schedule := func(s *autoState, at float64) {
		if s.active {
			return
		}
		s.active = true
		if err := sim.At(at, iterate(s)); err != nil && simErr == nil {
			simErr = err
		}
	}

	// makespan is the end of the last completed work (see Serve).
	makespan := 0.0
	iterate = func(s *autoState) func(now float64) {
		return func(now float64) {
			s.active = false
			if simErr != nil {
				return
			}
			end, finished, err := s.iterateOnce(cfg.MaxBatch, now, nextArrival(now), cfg.Stepped, &window, &ids)
			if err != nil {
				simErr = err
				return
			}
			done = append(done, finished...)
			if len(finished) > 0 && end > makespan {
				makespan = end
			}
			if len(s.run) > 0 || len(s.queue) > 0 {
				if end > now {
					schedule(s, end)
				}
			}
		}
	}

	pickLeastLoaded := func() *autoState {
		var best *autoState
		for _, s := range states {
			if s.retired {
				continue
			}
			if best == nil || len(s.queue)+len(s.run) < len(best.queue)+len(best.run) {
				best = s
			}
		}
		return best
	}

	scaleIfNeeded := func(now float64) {
		// Scale up on queue pressure.
		outstanding := 0
		for _, s := range states {
			if !s.retired {
				outstanding += len(s.queue) + len(s.run)
			}
		}
		act := active(states)
		if act < as.Max && now-lastScaleUp >= as.CooldownS &&
			outstanding > as.UpOutstanding*act {
			if err := addReplica(now, false); err != nil {
				if simErr == nil {
					simErr = err
				}
				return
			}
			lastScaleUp = now
		}
		// Retire one empty replica when the rest run comfortably.
		if act > as.Min && now-lastScaleDown >= as.DownIdleS &&
			outstanding <= as.UpOutstanding*(act-1)/2 {
			for _, s := range states {
				if !s.retired && len(s.run) == 0 && len(s.queue) == 0 {
					s.retired = true
					lastScaleDown = now
					events = append(events, ScaleEvent{TimeS: now, Replicas: active(states), Up: false})
					break
				}
			}
		}
	}

	for _, req := range ordered {
		req := req
		if err := sim.At(req.Arrival, func(now float64) {
			scaleIfNeeded(now)
			s := pickLeastLoaded()
			s.queue = append(s.queue, req)
			schedule(s, now)
		}); err != nil {
			return AutoStats{}, err
		}
	}

	sim.Run(0)
	if simErr != nil {
		return AutoStats{}, simErr
	}
	if len(done) != len(reqs) {
		return AutoStats{}, fmt.Errorf("cluster: only %d of %d requests completed", len(done), len(reqs))
	}
	sortByCompletion(done)
	agg, err := sched.Summarize(done, makespan, 0)
	if err != nil {
		return AutoStats{}, err
	}
	return AutoStats{Stats: Stats{Stats: agg}, Events: events, PeakReplicas: peak}, nil
}

type autoState struct {
	replicaState
	retired bool
}

func active(states []*autoState) int {
	n := 0
	for _, s := range states {
		if !s.retired {
			n++
		}
	}
	return n
}


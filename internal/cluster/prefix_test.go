package cluster

// Prefix-affinity routing tests: the Prefix policy must concentrate a
// shared-prefix workload onto warm replicas (cache-hit rate far above
// a blind router's at light per-replica load), degrade gracefully to
// least-loaded when the allocators are prefix-blind, and hold the
// serial == parallel == stepped identity with tiered allocators and
// chunked prefill engaged.

import (
	"reflect"
	"strings"
	"testing"

	"llmbench/internal/dtype"
	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/workload"
)

// makeTieredReplicas builds n replicas whose allocators share a
// prefixTokens system prompt, each backed by a hostGiB CPU tier.
func makeTieredReplicas(t *testing.T, n, prefixTokens int, hostGiB float64) []Replica {
	t.Helper()
	out := make([]Replica, n)
	m := model.MustGet("Mistral-7B")
	for i := range out {
		eng, err := engine.New(engine.Config{
			Model:     m,
			Device:    hw.MustGet("A100"),
			Framework: framework.MustGet("vLLM"),
		})
		if err != nil {
			t.Fatal(err)
		}
		gpu, err := kvcache.NewPrefixPaged(16, prefixTokens, m.KVBytesPerToken(dtype.FP16), 16*(1<<30))
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := kvcache.NewTiered(gpu, hostGiB*(1<<30), kvcache.HostLink{GBPerS: 32, LatencyS: 5e-6})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = Replica{Engine: eng, Alloc: alloc}
	}
	return out
}

// prefixTrace is a shared-prefix chat trace: every prompt fronts the
// same prefixTokens tokens.
func prefixTrace(t *testing.T, n, prefixTokens int, rate float64) []workload.Request {
	t.Helper()
	reqs, err := workload.ChatTrace(workload.ChatTraceConfig{
		Seed: 7, Requests: n, RatePerSec: rate, BurstFactor: 1,
		InputMedian: 128, OutputMedian: 32, PrefixTokens: prefixTokens,
		Sigma: 0.1, MaxLen: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestPrefixPolicyConcentratesHits: a blind router spreads the shared
// prefix across the fleet and keeps paying its establishment wherever
// a replica drained, while the prefix router pins arrivals to warm
// replicas. Both must complete everything; the prefix router must
// land a much higher token-weighted hit rate and a tighter tail.
func TestPrefixPolicyConcentratesHits(t *testing.T) {
	const nReq = 400
	reqs := prefixTrace(t, nReq, 4096, 24)
	// The host tier is deliberately too small for the prefix: a
	// drained replica goes fully cold, so a blind router's misses pay
	// whole re-prefills (a roomy tier would rescue it with cheap
	// restores and mask the routing signal).
	run := func(p Policy) Stats {
		t.Helper()
		stats, err := Serve(Config{
			Replicas: makeTieredReplicas(t, 8, 4096, 0.05),
			Policy:   p, MaxBatch: 32,
			ChunkedPrefill: true, PrefillChunk: 256,
		}, reqs)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if stats.Completed != nReq {
			t.Fatalf("%v: completed %d/%d", p, stats.Completed, nReq)
		}
		return stats
	}
	rr := run(RoundRobin)
	px := run(Prefix)
	if px.CacheHitRate < 0.9 {
		t.Errorf("prefix router hit rate %.3f, want ≥ 0.9 (a pinned 4096-token prefix)", px.CacheHitRate)
	}
	if px.CacheHitRate <= rr.CacheHitRate {
		t.Errorf("prefix hit rate %.3f must exceed round-robin's %.3f", px.CacheHitRate, rr.CacheHitRate)
	}
	// The mean can go either way at light load (spread keeps batches
	// shallow), but the tail cannot: a blind router keeps paying cold
	// 4096-token establishments its p95 inherits.
	if px.P95Latency >= rr.P95Latency {
		t.Errorf("prefix p95 %.3f must beat round-robin %.3f", px.P95Latency, rr.P95Latency)
	}
}

// TestPrefixPolicyBlindAllocatorsDegrade pins the fallback: with
// prefix-blind Paged allocators every replica scores zero, so the
// Prefix router is least-loaded with a narrower window — it must
// still complete everything and stay within the same latency regime.
func TestPrefixPolicyBlindAllocatorsDegrade(t *testing.T) {
	reqs := clusterTrace(t, 90, 12)
	px, err := Serve(Config{Replicas: makeReplicas(t, 3), Policy: Prefix, MaxBatch: 16}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if px.Completed != 90 {
		t.Fatalf("completed %d/90", px.Completed)
	}
	if px.CacheHitRate != 0 {
		t.Errorf("blind allocators cannot hit, got rate %.3f", px.CacheHitRate)
	}
	ll, err := Serve(Config{Replicas: makeReplicas(t, 3), Policy: LeastLoaded, MaxBatch: 16}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if px.MeanLatency > ll.MeanLatency*1.1 {
		t.Errorf("degraded prefix latency %.3f strays from least-loaded %.3f", px.MeanLatency, ll.MeanLatency)
	}
}

// TestPrefixParallelMatchesSerial extends the cluster's byte-identity
// square to the new machinery all at once: Prefix routing over tiered
// allocators with chunked prefill, serial == parallel == stepped.
func TestPrefixParallelMatchesSerial(t *testing.T) {
	reqs := prefixTrace(t, 96, 2048, 10)
	build := func(par int, stepped bool) Stats {
		t.Helper()
		stats, err := Serve(Config{
			Replicas: makeTieredReplicas(t, 4, 2048, 2),
			Policy:   Prefix, MaxBatch: 8,
			ChunkedPrefill: true, PrefillChunk: 256,
			Parallelism: par, Stepped: stepped,
		}, reqs)
		if err != nil {
			t.Fatalf("parallelism %d stepped %v: %v", par, stepped, err)
		}
		return stats
	}
	serial := build(1, false)
	if serial.CacheHitRate <= 0 {
		t.Fatal("the identity run must actually exercise prefix hits")
	}
	for _, par := range []int{2, 4, 8} {
		if got := build(par, false); !reflect.DeepEqual(got, serial) {
			t.Errorf("parallelism %d Stats differ from serial", par)
		}
	}
	if got := build(4, true); !reflect.DeepEqual(got, serial) {
		t.Error("parallel stepped Stats differ from serial coalesced")
	}
}

// TestChunkedPrefillValidation pins the composition rules.
func TestChunkedPrefillValidation(t *testing.T) {
	reqs := clusterTrace(t, 5, 1)
	if _, err := Serve(Config{
		Replicas: makeReplicas(t, 2), MaxBatch: 8,
		ChunkedPrefill: true, Static: true,
	}, reqs); err == nil || !strings.Contains(err.Error(), "static") {
		t.Errorf("chunked+static must fail naming static, got %v", err)
	}
	if _, err := Serve(Config{
		Replicas: makeReplicas(t, 3), MaxBatch: 8,
		ChunkedPrefill: true, PrefillReplicas: 1,
	}, reqs); err == nil || !strings.Contains(err.Error(), "disaggregation") {
		t.Errorf("chunked+disagg must fail naming disaggregation, got %v", err)
	}
	// Chunked alone is fine.
	if _, err := Serve(Config{
		Replicas: makeReplicas(t, 2), MaxBatch: 8, ChunkedPrefill: true,
	}, reqs); err != nil {
		t.Errorf("plain chunked must serve: %v", err)
	}
	// And the autoscaler enforces the same static rule.
	if _, err := ServeAutoscale(Config{MaxBatch: 8, ChunkedPrefill: true, Static: true}, Autoscale{
		Factory:       autoscaleFactory(t),
		Min:           1,
		Max:           2,
		UpOutstanding: 4,
		DownIdleS:     2,
		CooldownS:     1,
	}, reqs); err == nil || !strings.Contains(err.Error(), "static") {
		t.Errorf("autoscale chunked+static must fail naming static, got %v", err)
	}
}

package cluster

import (
	"reflect"
	"testing"

	"llmbench/internal/dtype"
	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/workload"
)

func longClusterTrace(t *testing.T, n int, rate float64, outputMean int) []workload.Request {
	t.Helper()
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 31, Requests: n, RatePerSec: rate,
		InputMean: 256, OutputMean: outputMean, LengthJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestClusterCoalescedMatchesStepped asserts the cluster DES produces
// byte-identical Stats (aggregates, per-request timestamps, and
// per-replica utilisation) whether it fast-forwards identical decode
// iterations or steps them one event at a time.
func TestClusterCoalescedMatchesStepped(t *testing.T) {
	for _, policy := range []Policy{RoundRobin, LeastLoaded} {
		reqs := longClusterTrace(t, 48, 1.5, 512)
		co, err := Serve(Config{Replicas: makeReplicas(t, 3), Policy: policy, MaxBatch: 8}, reqs)
		if err != nil {
			t.Fatalf("%v coalesced: %v", policy, err)
		}
		st, err := Serve(Config{Replicas: makeReplicas(t, 3), Policy: policy, MaxBatch: 8, Stepped: true}, reqs)
		if err != nil {
			t.Fatalf("%v stepped: %v", policy, err)
		}
		if !reflect.DeepEqual(co, st) {
			t.Errorf("%v: coalesced Stats differ from stepped reference\ncoalesced: %+v\nstepped:   %+v",
				policy, co.Stats, st.Stats)
		}
		if co.Completed != 48 {
			t.Errorf("%v: completed %d/48", policy, co.Completed)
		}
	}
}

// TestClusterUtilisationBounded guards the makespan definition (end of
// last completed work): busy time can never exceed it.
func TestClusterUtilisationBounded(t *testing.T) {
	stats, err := Serve(Config{Replicas: makeReplicas(t, 2), Policy: LeastLoaded, MaxBatch: 8},
		longClusterTrace(t, 30, 3, 256))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range stats.PerReplica {
		if r.Util < 0 || r.Util > 1 {
			t.Errorf("replica %d utilisation %v out of [0, 1]", i, r.Util)
		}
	}
}

func autoscaleFactory(t *testing.T) func() (Replica, error) {
	t.Helper()
	m := model.MustGet("Mistral-7B")
	return func() (Replica, error) {
		eng, err := engine.New(engine.Config{
			Model:     m,
			Device:    hw.MustGet("A100"),
			Framework: framework.MustGet("vLLM"),
		})
		if err != nil {
			return Replica{}, err
		}
		alloc, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), 16*(1<<30))
		if err != nil {
			return Replica{}, err
		}
		return Replica{Engine: eng, Alloc: alloc}, nil
	}
}

// TestAutoscaleCoalescedMatchesStepped extends the equivalence to the
// autoscaler: scaling decisions fire at arrival events, windows are
// bounded by the next arrival, so the whole scaling trajectory —
// events, peak, and every request stat — must match the stepped path.
func TestAutoscaleCoalescedMatchesStepped(t *testing.T) {
	as := Autoscale{
		Factory:       autoscaleFactory(t),
		Min:           1,
		Max:           4,
		UpOutstanding: 6,
		DownIdleS:     5,
		CooldownS:     2,
	}
	reqs := longClusterTrace(t, 60, 3, 384)
	co, err := ServeAutoscale(Config{MaxBatch: 8}, as, reqs)
	if err != nil {
		t.Fatalf("coalesced: %v", err)
	}
	st, err := ServeAutoscale(Config{MaxBatch: 8, Stepped: true}, as, reqs)
	if err != nil {
		t.Fatalf("stepped: %v", err)
	}
	if !reflect.DeepEqual(co, st) {
		t.Errorf("autoscale coalesced differs from stepped\ncoalesced: events=%v peak=%d stats=%+v\nstepped:   events=%v peak=%d stats=%+v",
			co.Events, co.PeakReplicas, co.Stats.Stats, st.Events, st.PeakReplicas, st.Stats.Stats)
	}
	if co.Completed != 60 {
		t.Errorf("completed %d/60", co.Completed)
	}
}

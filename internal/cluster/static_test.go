package cluster

// Property tests for static batching as a cluster station policy: the
// router and autoscaler drive static replicas exactly like continuous
// ones, and the kernel's determinism contract (serial == parallel ==
// Stepped, byte for byte, at any Parallelism) holds for them too.

import (
	"reflect"
	"testing"

	"llmbench/internal/workload"
)

// TestClusterStaticParallelMatchesSerial: multi-replica static
// batching — the grid hole this policy port closes — produces
// byte-identical Stats on the serial, parallel, and Stepped kernels,
// for both routers, with every request completed and zero
// preemptions.
func TestClusterStaticParallelMatchesSerial(t *testing.T) {
	reqs := clusterTrace(t, 96, 6)
	for _, policy := range []Policy{RoundRobin, LeastLoaded} {
		serial, err := Serve(Config{Replicas: makeReplicas(t, 4), Policy: policy, MaxBatch: 8, Static: true}, reqs)
		if err != nil {
			t.Fatalf("%v serial: %v", policy, err)
		}
		if serial.Completed != len(reqs) {
			t.Fatalf("%v: completed %d/%d", policy, serial.Completed, len(reqs))
		}
		if serial.Preemptions != 0 {
			t.Errorf("%v: static cluster preempted %d times", policy, serial.Preemptions)
		}
		if len(serial.PerReplica) != 4 {
			t.Errorf("%v: %d per-replica entries, want 4", policy, len(serial.PerReplica))
		}
		for _, par := range []int{2, 4, 8} {
			got, err := Serve(Config{
				Replicas: makeReplicas(t, 4), Policy: policy, MaxBatch: 8, Static: true, Parallelism: par,
			}, reqs)
			if err != nil {
				t.Fatalf("%v parallelism %d: %v", policy, par, err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Errorf("%v: parallelism %d static Stats differ from serial", policy, par)
			}
		}
		stepped, err := Serve(Config{
			Replicas: makeReplicas(t, 4), Policy: policy, MaxBatch: 8, Static: true, Parallelism: 4, Stepped: true,
		}, reqs)
		if err != nil {
			t.Fatalf("%v parallel stepped: %v", policy, err)
		}
		if !reflect.DeepEqual(stepped, serial) {
			t.Errorf("%v: parallel stepped static Stats differ from serial", policy)
		}
	}
}

// tiedTrace interleaves bursts of equal-timestamp arrivals — the
// tie-breaking edge the determinism contract pins (arrivals at one
// instant keep trace order; a station event at t runs after every
// arrival at t, so a batch collected at t admits all of them).
func tiedTrace(n int) []workload.Request {
	reqs := make([]workload.Request, n)
	for i := range reqs {
		reqs[i] = workload.Request{
			ID:      i,
			Arrival: float64(i/4) * 0.8, // groups of 4 share one instant
			Input:   128 + 64*(i%3),
			Output:  48 + 16*(i%5),
		}
	}
	return reqs
}

// TestClusterStaticArrivalTies: equal-timestamp arrivals route and
// batch deterministically — serial, parallel, and Stepped static
// clusters agree byte for byte on a trace made of simultaneous
// arrival groups.
func TestClusterStaticArrivalTies(t *testing.T) {
	reqs := tiedTrace(64)
	for _, policy := range []Policy{RoundRobin, LeastLoaded} {
		serial, err := Serve(Config{Replicas: makeReplicas(t, 3), Policy: policy, MaxBatch: 4, Static: true}, reqs)
		if err != nil {
			t.Fatalf("%v serial: %v", policy, err)
		}
		if serial.Completed != len(reqs) {
			t.Fatalf("%v: completed %d/%d", policy, serial.Completed, len(reqs))
		}
		for _, par := range []int{2, 8} {
			got, err := Serve(Config{
				Replicas: makeReplicas(t, 3), Policy: policy, MaxBatch: 4, Static: true, Parallelism: par,
			}, reqs)
			if err != nil {
				t.Fatalf("%v parallelism %d: %v", policy, par, err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Errorf("%v: parallelism %d differs from serial on tied arrivals", policy, par)
			}
		}
		stepped, err := Serve(Config{
			Replicas: makeReplicas(t, 3), Policy: policy, MaxBatch: 4, Static: true, Stepped: true,
		}, reqs)
		if err != nil {
			t.Fatalf("%v stepped: %v", policy, err)
		}
		if !reflect.DeepEqual(stepped, serial) {
			t.Errorf("%v: stepped differs from serial on tied arrivals", policy)
		}
	}
}

// TestAutoscaleStaticParallelMatchesSerial: the autoscaler drives
// static replicas like continuous ones — scale-ups under queue
// pressure, retirement of drained replicas, and a byte-identical
// trajectory across kernel modes. The run must actually scale (a
// static replica holds its queue through a whole batch run, so
// pressure builds fast).
func TestAutoscaleStaticParallelMatchesSerial(t *testing.T) {
	as := Autoscale{
		Factory:       factory(t),
		Min:           1,
		Max:           4,
		UpOutstanding: 6,
		DownIdleS:     3,
		CooldownS:     1,
	}
	reqs := burstyTrace(t)
	serial, err := ServeAutoscale(Config{MaxBatch: 8, Static: true}, as, reqs)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if serial.Completed != len(reqs) {
		t.Fatalf("completed %d/%d", serial.Completed, len(reqs))
	}
	if serial.PeakReplicas < 2 {
		t.Errorf("peak replicas %d: the bursty trace must force a scale-up", serial.PeakReplicas)
	}
	if serial.Preemptions != 0 {
		t.Errorf("static autoscale preempted %d times", serial.Preemptions)
	}
	for _, par := range []int{2, 4} {
		got, err := ServeAutoscale(Config{MaxBatch: 8, Static: true, Parallelism: par}, as, reqs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("parallelism %d static AutoStats differ from serial", par)
		}
	}
	stepped, err := ServeAutoscale(Config{MaxBatch: 8, Static: true, Parallelism: 4, Stepped: true}, as, reqs)
	if err != nil {
		t.Fatalf("parallel stepped: %v", err)
	}
	if !reflect.DeepEqual(stepped, serial) {
		t.Error("parallel stepped static AutoStats differ from serial")
	}
}

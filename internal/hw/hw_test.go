package hw

import (
	"testing"

	"llmbench/internal/dtype"
)

func TestCatalogValidates(t *testing.T) {
	for _, n := range Names() {
		if err := MustGet(n).Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestTableIIComplete(t *testing.T) {
	tab := TableII()
	if len(tab) != 7 {
		t.Fatalf("Table II has %d devices, want 7", len(tab))
	}
}

func TestFP8SupportMatrix(t *testing.T) {
	// §IV-B3: "the absence of FP8 support on A100 limits the
	// framework's ability to leverage low precision".
	if MustGet("A100").Supports(dtype.FP8) {
		t.Error("A100 must not support FP8")
	}
	for _, n := range []string{"H100", "GH200", "MI300X", "Gaudi2"} {
		if !MustGet(n).Supports(dtype.FP8) {
			t.Errorf("%s must support FP8", n)
		}
	}
}

func TestGenerationOrdering(t *testing.T) {
	a, h, gh := MustGet("A100"), MustGet("H100"), MustGet("GH200")
	if h.PeakTFLOPS[dtype.FP16] <= a.PeakTFLOPS[dtype.FP16] {
		t.Error("H100 FP16 peak must exceed A100")
	}
	if gh.MemBWGBs <= h.MemBWGBs {
		t.Error("GH200 memory bandwidth must exceed H100 (§V-2)")
	}
	if gh.MemGiB <= h.MemGiB {
		t.Error("GH200 memory must exceed H100")
	}
}

func TestPeakFLOPSUnits(t *testing.T) {
	f, err := MustGet("A100").PeakFLOPS(dtype.FP16)
	if err != nil {
		t.Fatal(err)
	}
	if f != 312e12 {
		t.Errorf("A100 fp16 peak = %g FLOP/s, want 312e12", f)
	}
	if _, err := MustGet("A100").PeakFLOPS(dtype.FP8); err == nil {
		t.Error("A100 FP8 peak should error")
	}
}

func TestMI250Saturation(t *testing.T) {
	d := MustGet("MI250")
	if d.SaturationBatch == 0 || d.SaturationPenalty <= 0 {
		t.Error("MI250 must model early saturation (Fig. 17)")
	}
}

func TestSN40LQuirks(t *testing.T) {
	d := MustGet("SN40L")
	if d.OnChipGiB < 0.5 {
		t.Error("SN40L must model the 520 MiB SRAM tier")
	}
	if d.ServiceBatchLimit == 0 {
		t.Error("SN40L must model the service batch limit (§VII-2)")
	}
	if d.DevicesPerNode != 8 {
		t.Error("paper uses 8 SN40L RDUs")
	}
}

func TestGaudi2Overlap(t *testing.T) {
	d := MustGet("Gaudi2")
	if d.OverlapFactor <= 0 || d.OverlapFactor >= 1 {
		t.Error("Gaudi2 must model MME/TPC overlap in (0,1)")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("TPUv5"); err == nil {
		t.Error("Get(TPUv5) succeeded, want error")
	}
}

func TestMemBytesAndBW(t *testing.T) {
	d := MustGet("A100")
	if d.MemBytes() != 40*(1<<30) {
		t.Errorf("A100 MemBytes = %g", d.MemBytes())
	}
	if d.MemBW() != 1555e9 {
		t.Errorf("A100 MemBW = %g", d.MemBW())
	}
}

func TestValidateRejectsBadDevices(t *testing.T) {
	bad := []Device{
		{},
		{Name: "x"},
		{Name: "x", PeakTFLOPS: map[dtype.DType]float64{dtype.FP16: 1}},
		{Name: "x", PeakTFLOPS: map[dtype.DType]float64{dtype.FP16: 1}, MemBWGBs: 1, MemGiB: 1, TDPWatts: 10, IdleWatts: 20, DevicesPerNode: 1},
		{Name: "x", PeakTFLOPS: map[dtype.DType]float64{dtype.FP16: -1}, MemBWGBs: 1, MemGiB: 1, TDPWatts: 20, IdleWatts: 10, DevicesPerNode: 1},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid device", i)
		}
	}
}

func TestVendorString(t *testing.T) {
	if NVIDIA.String() != "NVIDIA" || AMD.String() != "AMD" ||
		Habana.String() != "Habana" || SambaNova.String() != "SambaNova" {
		t.Error("vendor strings wrong")
	}
	if Vendor(9).String() != "vendor(9)" {
		t.Error("unknown vendor string wrong")
	}
}

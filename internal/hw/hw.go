// Package hw models the AI accelerators evaluated in the paper
// (Table II and Appendix B): NVIDIA A100/H100/GH200, AMD
// MI250/MI300X, Habana Gaudi2, and SambaNova SN40L.
//
// A Device is a roofline model — peak FLOPS per precision, HBM
// bandwidth, capacity — plus the power envelope and the vendor quirks
// the paper calls out (MI250's early NUMA saturation, SN40L's
// three-tier memory, Gaudi2's MME/TPC overlap).
package hw

import (
	"fmt"
	"sort"

	"llmbench/internal/dtype"
)

// Vendor identifies the accelerator manufacturer, which gates which
// frameworks run on it (Table III).
type Vendor int

const (
	NVIDIA Vendor = iota
	AMD
	Habana
	SambaNova
)

func (v Vendor) String() string {
	switch v {
	case NVIDIA:
		return "NVIDIA"
	case AMD:
		return "AMD"
	case Habana:
		return "Habana"
	case SambaNova:
		return "SambaNova"
	}
	return fmt.Sprintf("vendor(%d)", int(v))
}

// Device is a single accelerator chip (one GPU, one HPU, one RDU).
type Device struct {
	Name   string
	Vendor Vendor

	// PeakTFLOPS maps each supported precision to the dense peak in
	// teraFLOPS. Missing entries mean the precision is unsupported in
	// hardware (e.g. FP8 on A100, §IV-B3).
	PeakTFLOPS map[dtype.DType]float64

	// MemBWGBs is HBM bandwidth in GB/s.
	MemBWGBs float64
	// MemGiB is device memory capacity in GiB.
	MemGiB float64

	// InterconnectGBs is the per-device peer bandwidth (NVLink,
	// Infinity Fabric, RoCE, inter-RDU) in GB/s.
	InterconnectGBs float64
	// InterconnectLatencyUS is the per-message latency in microseconds.
	InterconnectLatencyUS float64

	// HostLinkGBs is the device↔host (CPU) link bandwidth in GB/s —
	// PCIe for discrete cards, the coherent C2C fabric on GH200. KV
	// blocks demoted to a CPU tier restore at this rate.
	HostLinkGBs float64
	// HostLinkLatencyUS is the per-transfer host-link latency in
	// microseconds.
	HostLinkLatencyUS float64

	// TDPWatts and IdleWatts bound the power model.
	TDPWatts  float64
	IdleWatts float64

	// DevicesPerNode is how many devices the paper's node has
	// (Table II "# Devices").
	DevicesPerNode int

	// --- vendor quirks -------------------------------------------------

	// SaturationBatch, if non-zero, is the batch size beyond which the
	// device's effective bandwidth degrades (MI250 NUMA balancing,
	// §VI-2 / Fig. 17). Degradation factor per doubling is
	// SaturationPenalty.
	SaturationBatch   int
	SaturationPenalty float64

	// OnChipGiB and OnChipBWGBs describe a large on-chip tier (SN40L's
	// 520 MiB SRAM / Gaudi2's 48 MB SRAM). When the decode working set
	// (KV slice + activations) fits, the device streams at the on-chip
	// rate instead of HBM.
	OnChipGiB   float64
	OnChipBWGBs float64

	// OverlapFactor models heterogeneous engines executing in parallel
	// (Gaudi2's MME+TPC overlap, §VI-4): fraction of the smaller of
	// compute/memory time hidden under the larger. 0 = no overlap.
	OverlapFactor float64

	// ServiceBatchLimit, if non-zero, is the largest batch the vendor
	// serving stack accepts (SN40L "limited to serving only a few
	// batch sizes", §VII-2).
	ServiceBatchLimit int
}

// Supports reports whether the device supports the precision in
// hardware.
func (d *Device) Supports(p dtype.DType) bool {
	_, ok := d.PeakTFLOPS[p]
	return ok
}

// PeakFLOPS returns the dense peak in FLOP/s for the precision, or an
// error when the precision is unsupported.
func (d *Device) PeakFLOPS(p dtype.DType) (float64, error) {
	tf, ok := d.PeakTFLOPS[p]
	if !ok {
		return 0, fmt.Errorf("hw: %s does not support %s", d.Name, p)
	}
	return tf * 1e12, nil
}

// MemBytes returns the device memory capacity in bytes.
func (d *Device) MemBytes() float64 { return d.MemGiB * (1 << 30) }

// MemBW returns HBM bandwidth in bytes/s.
func (d *Device) MemBW() float64 { return d.MemBWGBs * 1e9 }

// Validate checks the device description for internal consistency.
func (d *Device) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("hw: empty device name")
	case len(d.PeakTFLOPS) == 0:
		return fmt.Errorf("hw: %s has no supported precisions", d.Name)
	case d.MemBWGBs <= 0 || d.MemGiB <= 0:
		return fmt.Errorf("hw: %s has non-positive memory figures", d.Name)
	case d.TDPWatts <= d.IdleWatts:
		return fmt.Errorf("hw: %s TDP %.0f must exceed idle %.0f", d.Name, d.TDPWatts, d.IdleWatts)
	case d.DevicesPerNode <= 0:
		return fmt.Errorf("hw: %s has no devices per node", d.Name)
	}
	for p, tf := range d.PeakTFLOPS {
		if tf <= 0 {
			return fmt.Errorf("hw: %s peak for %s is non-positive", d.Name, p)
		}
	}
	return nil
}

// catalog holds the evaluated accelerators. Peaks are dense (no
// sparsity) figures from the vendor whitepapers cited in Appendix B.
var catalog = map[string]*Device{
	"A100": {
		Name: "A100", Vendor: NVIDIA,
		PeakTFLOPS: map[dtype.DType]float64{
			dtype.FP32: 19.5, dtype.TF32: 156, dtype.FP16: 312,
			dtype.BF16: 312, dtype.INT8: 624, dtype.INT4: 1248,
			dtype.INT1: 4992,
		},
		MemBWGBs: 1555, MemGiB: 40,
		InterconnectGBs: 600, InterconnectLatencyUS: 3,
		HostLinkGBs: 32, HostLinkLatencyUS: 5,
		TDPWatts: 400, IdleWatts: 55,
		DevicesPerNode: 4,
	},
	"H100": {
		Name: "H100", Vendor: NVIDIA,
		PeakTFLOPS: map[dtype.DType]float64{
			dtype.FP32: 67, dtype.TF32: 494, dtype.FP16: 989,
			dtype.BF16: 989, dtype.FP8: 1979, dtype.INT8: 1979,
			dtype.INT4: 3958, dtype.INT1: 15832,
		},
		MemBWGBs: 3350, MemGiB: 80,
		InterconnectGBs: 900, InterconnectLatencyUS: 2.5,
		HostLinkGBs: 64, HostLinkLatencyUS: 5,
		TDPWatts: 700, IdleWatts: 70,
		DevicesPerNode: 4,
	},
	// GH200: Hopper GPU with 96 GB HBM3 plus the Grace-coupled 900
	// GB/s chip-to-chip link that lets KV and activations spill at
	// near-HBM rates; we model it as H100 compute with more, faster
	// memory.
	"GH200": {
		Name: "GH200", Vendor: NVIDIA,
		PeakTFLOPS: map[dtype.DType]float64{
			dtype.FP32: 67, dtype.TF32: 494, dtype.FP16: 989,
			dtype.BF16: 989, dtype.FP8: 1979, dtype.INT8: 1979,
			dtype.INT4: 3958, dtype.INT1: 15832,
		},
		MemBWGBs: 4000, MemGiB: 96,
		InterconnectGBs: 900, InterconnectLatencyUS: 2,
		HostLinkGBs: 450, HostLinkLatencyUS: 2,
		TDPWatts: 700, IdleWatts: 80,
		DevicesPerNode: 1,
	},
	// MI250: whole-card figures (two GCDs). The paper observes early
	// compute/memory saturation under NUMA balancing (Fig. 17); the
	// saturation fields model the preemptive page-fault stalls.
	"MI250": {
		Name: "MI250", Vendor: AMD,
		PeakTFLOPS: map[dtype.DType]float64{
			dtype.FP32: 45.3, dtype.FP16: 362, dtype.BF16: 362,
			dtype.INT8: 362, dtype.INT4: 362,
		},
		MemBWGBs: 3200, MemGiB: 128,
		InterconnectGBs: 100, InterconnectLatencyUS: 5,
		HostLinkGBs: 32, HostLinkLatencyUS: 5,
		TDPWatts: 560, IdleWatts: 90,
		DevicesPerNode:  4,
		SaturationBatch: 32, SaturationPenalty: 0.45,
	},
	"MI300X": {
		Name: "MI300X", Vendor: AMD,
		PeakTFLOPS: map[dtype.DType]float64{
			dtype.FP32: 163, dtype.FP16: 1307, dtype.BF16: 1307,
			dtype.FP8: 2614, dtype.INT8: 2614,
		},
		MemBWGBs: 5300, MemGiB: 192,
		InterconnectGBs: 128, InterconnectLatencyUS: 5,
		HostLinkGBs: 64, HostLinkLatencyUS: 5,
		TDPWatts: 750, IdleWatts: 110,
		DevicesPerNode:  8,
		SaturationBatch: 64, SaturationPenalty: 0.25,
	},
	// Gaudi2: two MMEs + 24 TPCs; OverlapFactor models the paper's
	// "overlapping compute time between its matrix multiplication
	// engine and TPC" (§VI-4). Memory pressure bites early (the paper
	// hit OOM at batch 32/64).
	"Gaudi2": {
		Name: "Gaudi2", Vendor: Habana,
		PeakTFLOPS: map[dtype.DType]float64{
			dtype.FP32: 57, dtype.FP16: 432, dtype.BF16: 432,
			dtype.FP8: 865,
		},
		MemBWGBs: 2460, MemGiB: 96,
		InterconnectGBs: 300, InterconnectLatencyUS: 4,
		HostLinkGBs: 32, HostLinkLatencyUS: 5,
		TDPWatts: 600, IdleWatts: 100,
		DevicesPerNode: 8,
		OnChipGiB:      0.0469, OnChipBWGBs: 6300, // 48 MB SRAM
		OverlapFactor: 0.45,
	},
	// SN40L: dataflow RDU with a three-tier memory system (520 MiB
	// SRAM / 64 GiB HBM / DDR). Fused-graph execution removes per-op
	// launches but graph setup makes the first token slow; the hosted
	// service only accepts limited batch sizes (§VII-2).
	"SN40L": {
		Name: "SN40L", Vendor: SambaNova,
		PeakTFLOPS: map[dtype.DType]float64{
			dtype.FP32: 160, dtype.BF16: 638, dtype.FP16: 638,
			dtype.INT8: 638,
		},
		MemBWGBs: 1600, MemGiB: 64,
		InterconnectGBs: 160, InterconnectLatencyUS: 4,
		HostLinkGBs: 32, HostLinkLatencyUS: 5,
		TDPWatts: 550, IdleWatts: 120,
		DevicesPerNode: 8,
		OnChipGiB:      0.508, OnChipBWGBs: 25000, // 520 MiB PMU SRAM tier
		ServiceBatchLimit: 64,
	},
}

// Get returns the named device or an error listing the catalog.
func Get(name string) (*Device, error) {
	if d, ok := catalog[name]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("hw: unknown device %q (have %v)", name, Names())
}

// MustGet is Get for known-good names.
func MustGet(name string) *Device {
	d, err := Get(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Names returns all device names, sorted.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableII returns devices in the paper's Table II column order.
func TableII() []*Device {
	order := []string{"A100", "H100", "GH200", "MI250", "MI300X", "Gaudi2", "SN40L"}
	out := make([]*Device, len(order))
	for i, n := range order {
		out[i] = MustGet(n)
	}
	return out
}

package dashboard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llmbench"
)

func TestIndex(t *testing.T) {
	srv := httptest.NewServer(Handler(2))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	buf := make([]byte, 1<<16)
	n, _ := res.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "LLM-Inference-Bench") {
		t.Error("index page missing title")
	}
	if res404, _ := http.Get(srv.URL + "/nope"); res404.StatusCode != http.StatusNotFound {
		t.Error("unknown path must 404")
	}
}

func TestListEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(2))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/api/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var exps []expInfo
	if err := json.NewDecoder(res.Body).Decode(&exps); err != nil {
		t.Fatal(err)
	}
	if len(exps) != 51 {
		t.Errorf("dashboard lists %d experiments, want 51", len(exps))
	}
}

func TestRunEndpointFigure(t *testing.T) {
	srv := httptest.NewServer(Handler(2))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/api/run?id=fig2b")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out runResponse
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Figure == nil || len(out.Figure.Series) == 0 {
		t.Fatal("figure missing")
	}
	if out.Figure.XLabel == "" || out.Markdown == "" {
		t.Error("figure metadata incomplete")
	}
	// Cached second call must match.
	res2, err := http.Get(srv.URL + "/api/run?id=fig2b")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var out2 runResponse
	if err := json.NewDecoder(res2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.Markdown != out.Markdown {
		t.Error("cache must return identical result")
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(2))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/api/sweep?model=Mistral-7B&device=H100&framework=TRT-LLM&len=512")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var out runResponse
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Figure == nil || len(out.Figure.Series) != 3 {
		t.Fatalf("sweep figure incomplete: %+v", out.Figure)
	}
	// Errors: unknown model, bad tp, TRT-LLM on AMD, bad length.
	for _, q := range []string{
		"?model=GPT-5", "?tp=zero", "?device=MI250&framework=TRT-LLM", "?len=-3",
	} {
		r2, err := http.Get(srv.URL + "/api/sweep" + q)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, r2.StatusCode)
		}
	}
}

func TestServeEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(2))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/api/serve?model=Mistral-7B&device=A100&framework=vLLM&replicas=3&rate=15&requests=60")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var out runResponse
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"latency p50 / p95 / p99", "queue delay p50 / p95 / p99", "| replica |"} {
		if !strings.Contains(out.Markdown, want) {
			t.Errorf("serving table missing %q:\n%s", want, out.Markdown)
		}
	}

	// Autoscaled variant reports the scaling trajectory.
	res2, err := http.Get(srv.URL + "/api/serve?model=Mistral-7B&device=A100&framework=vLLM&replicas=4&rate=15&requests=60&autoscale=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("autoscale status %d", res2.StatusCode)
	}
	var out2 runResponse
	if err := json.NewDecoder(res2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.Markdown, "peak") {
		t.Errorf("autoscale output missing trajectory:\n%s", out2.Markdown)
	}

	// Errors: unknown model, replica/rate bounds.
	for _, q := range []string{
		"?model=GPT-5", "?replicas=100000", "?rate=-2", "?requests=zero",
	} {
		r2, err := http.Get(srv.URL + "/api/serve" + q)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, r2.StatusCode)
		}
	}
}

func TestServeSweepEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(2))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/api/servesweep?model=Mistral-7B&device=A100&framework=vLLM&rates=5,15&replicas=1,2&requests=60&slo=6")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var out runResponse
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// One P99 series per replica count, two rate points each.
	if out.Figure == nil || len(out.Figure.Series) != 2 {
		t.Fatalf("capacity figure incomplete: %+v", out.Figure)
	}
	for _, s := range out.Figure.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %q has %d points, want 2", s.Label, len(s.Points))
		}
	}
	for _, want := range []string{"| Replicas |", "Knee per replica count"} {
		if !strings.Contains(out.Markdown, want) {
			t.Errorf("capacity table missing %q:\n%s", want, out.Markdown)
		}
	}

	// Errors: unknown model, empty/oversized/out-of-range axes, bad
	// policy, bad trace-shape axes.
	for _, q := range []string{
		"?model=GPT-5", "?rates=0", "?rates=1,2,3,4,5,6,7,8,9",
		"?replicas=0", "?replicas=100000", "?policy=bogus", "?requests=999999",
		"?bursts=0.5", "?bursts=x", "?mixes=512", "?mixes=8:128", "?mixes=512:128:1",
		"?rates=1,2,3,4,5,6,7,8&replicas=1,2,3,4,5,6,7,8&bursts=1,4", // 128 points > 64 cap
		"?slo=6s", "?slo=-1",
	} {
		r2, err := http.Get(srv.URL + "/api/servesweep" + q)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, r2.StatusCode)
		}
	}
}

// TestServeSweepEndpointDisagg: topology policy forms reach the
// endpoint through the full policy grammar — a disagg pool split runs
// the sweep; malformed splits and illegal compositions are 400s.
func TestServeSweepEndpointDisagg(t *testing.T) {
	srv := httptest.NewServer(Handler(2))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/api/servesweep?model=Mistral-7B&device=A100&framework=vLLM" +
		"&rates=5,15&replicas=4&policy=ll/disagg/1:3&requests=40&slo=60")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var out runResponse
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Markdown, "disagg/1:3") {
		t.Errorf("disagg sweep table does not name the topology:\n%s", out.Markdown)
	}
	for _, q := range []string{
		"?rates=5&replicas=4&policy=disagg/0:3",
		"?rates=5&replicas=4&policy=disagg/1",
		"?rates=5&replicas=4&policy=static/disagg/1:3",
		"?rates=5&replicas=4&policy=disagg/2:6:autoscale",
	} {
		r2, err := http.Get(srv.URL + "/api/servesweep" + q)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, r2.StatusCode)
		}
	}
}

// TestServeSweepEndpointTraceReplay: the upload-less replay path — a
// recorded trace file on the server's filesystem drives the sweep,
// with and without streaming aggregation; conflicting or unreadable
// trace parameters are 400s, as is a non-finite SLO.
func TestServeSweepEndpointTraceReplay(t *testing.T) {
	srv := httptest.NewServer(Handler(2))
	defer srv.Close()

	reqs, err := llmbench.ServePointTrace(llmbench.ServeSweepConfig{
		System:   llmbench.System{Model: "Mistral-7B", Device: "A100", Framework: "vLLM"},
		MaxBatch: 8, Seed: 11, Requests: 40, InputMean: 256, OutputMean: 64,
	}, llmbench.ServeGrid{Rates: []float64{8}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "day.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := llmbench.WriteTrace(f, reqs, llmbench.TraceMeta{Source: "dashboard test"}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, extra := range []string{"", "&stream=1", "&rates=5,15"} {
		res, err := http.Get(srv.URL + "/api/servesweep?model=Mistral-7B&device=A100&framework=vLLM" +
			"&replicas=1,2&slo=6&trace=" + url.QueryEscape(path) + extra)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d: %s", extra, res.StatusCode, body)
		}
		var out runResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Figure == nil || len(out.Figure.Series) != 2 {
			t.Fatalf("%q: want one series per replica count, got %+v", extra, out.Figure)
		}
		if !strings.Contains(out.Markdown, "Knee") {
			t.Errorf("%q: replay output missing knee table:\n%s", extra, out.Markdown)
		}
	}

	for _, q := range []string{
		"&trace=" + url.QueryEscape(path) + "&bursts=1,4",
		"&trace=" + url.QueryEscape(path) + "&mixes=256:64",
		"&trace=" + url.QueryEscape(filepath.Join(t.TempDir(), "missing.trace")),
		"&slo=%2BInf", "&slo=NaN",
	} {
		r2, err := http.Get(srv.URL + "/api/servesweep?model=Mistral-7B&device=A100&framework=vLLM&rates=5" + q)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, r2.StatusCode)
		}
	}
}

// TestServeSweepEndpointShaped: the trace-shape axes (bursts, mixes)
// and the cluster-capable static policy reach the endpoint — one
// series per replica count × trace shape, shape columns in the table,
// and zero skipped points even at multi-replica static.
func TestServeSweepEndpointShaped(t *testing.T) {
	srv := httptest.NewServer(Handler(2))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/api/servesweep?model=Mistral-7B&device=A100&framework=vLLM" +
		"&rates=5,15&replicas=2&bursts=1,4&mixes=256:64&policy=static&requests=40&slo=6")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var out runResponse
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Figure == nil || len(out.Figure.Series) != 2 {
		t.Fatalf("want one series per burst factor, got %+v", out.Figure)
	}
	if len(out.Figure.Notes) != 0 {
		t.Errorf("static @ 2 replicas must not skip points: %v", out.Figure.Notes)
	}
	for _, want := range []string{"| Burst |", "×4", "256:64", "static/rr", "Knee"} {
		if !strings.Contains(out.Markdown, want) {
			t.Errorf("shaped capacity table missing %q:\n%s", want, out.Markdown)
		}
	}
}

func TestRunEndpointTableAndErrors(t *testing.T) {
	srv := httptest.NewServer(Handler(2))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/api/run?id=tab1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out runResponse
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Figure != nil || out.Text == "" {
		t.Error("tables must return text, not a figure")
	}
	if res2, _ := http.Get(srv.URL + "/api/run?id=fig99"); res2.StatusCode != http.StatusNotFound {
		t.Error("unknown experiment must 404")
	}
}

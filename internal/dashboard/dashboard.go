// Package dashboard serves the interactive LLM-Inference-Bench
// dashboard — the paper's companion artifact — as a self-contained
// net/http handler: an experiment browser that renders every
// reproduced figure as an SVG chart (log/linear toggle) with its data
// table and notes.
package dashboard

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"llmbench"
	"llmbench/internal/engine"
	"llmbench/internal/experiments"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/metrics"
	"llmbench/internal/model"
	"llmbench/internal/parallel"
	"llmbench/internal/pool"
	"llmbench/internal/workload"
)

// Handler returns the dashboard's HTTP handler. parallelism bounds
// the worker pool interactive regeneration fans out on (the
// `llmbench-dashboard -j` flag): custom sweeps evaluate their grid
// points concurrently and multi-id /api/run requests regenerate
// experiments concurrently. Values below 1 mean GOMAXPROCS. Output is
// deterministic at any setting (internal/pool orders results by
// submission).
func Handler(parallelism int) http.Handler {
	s := &server{cache: make(map[string]*experiments.Output), parallelism: parallelism}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/api/experiments", s.list)
	mux.HandleFunc("/api/run", s.run)
	mux.HandleFunc("/api/sweep", s.sweep)
	mux.HandleFunc("/api/serve", s.serve)
	mux.HandleFunc("/api/servesweep", s.serveSweep)
	return mux
}

type server struct {
	mu          sync.Mutex
	cache       map[string]*experiments.Output
	parallelism int
}

type expInfo struct {
	ID       string   `json:"id"`
	Title    string   `json:"title"`
	Workload string   `json:"workload"`
	Modules  []string `json:"modules"`
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	all := experiments.All()
	out := make([]expInfo, len(all))
	for i, e := range all {
		out[i] = expInfo{ID: e.ID, Title: e.Title, Workload: e.Workload, Modules: e.Modules}
	}
	writeJSON(w, out)
}

type seriesJSON struct {
	Label  string       `json:"label"`
	Points [][2]float64 `json:"points"`
}

type figureJSON struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"xlabel"`
	YLabel string       `json:"ylabel"`
	Series []seriesJSON `json:"series"`
	Notes  []string     `json:"notes"`
}

type runResponse struct {
	Figure   *figureJSON `json:"figure,omitempty"`
	Text     string      `json:"text,omitempty"`
	Markdown string      `json:"markdown"`
}

func (s *server) run(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "all" {
		s.runAll(w)
		return
	}
	exp, err := experiments.Get(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.mu.Lock()
	out, ok := s.cache[id]
	s.mu.Unlock()
	if !ok {
		out, err = exp.Run()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.mu.Lock()
		s.cache[id] = out
		s.mu.Unlock()
	}
	resp := runResponse{Markdown: out.Markdown(), Text: out.Text}
	if out.Figure != nil {
		resp.Figure = toJSON(out.Figure)
	}
	writeJSON(w, resp)
}

// runAll regenerates every experiment concurrently on the -j worker
// pool and fills the cache, so subsequent clicks render instantly.
func (s *server) runAll(w http.ResponseWriter) {
	all := experiments.All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	outs, err := experiments.RunExperiments(ids, s.parallelism)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	for i, out := range outs {
		s.cache[ids[i]] = out
	}
	s.mu.Unlock()
	writeJSON(w, runResponse{Markdown: fmt.Sprintf("regenerated %d experiments", len(ids))})
}

// sweep runs an ad-hoc batch sweep:
// /api/sweep?model=…&device=…&framework=…&tp=N&len=1024
func (s *server) sweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	get := func(key, def string) string {
		if v := q.Get(key); v != "" {
			return v
		}
		return def
	}
	tp, err := strconv.Atoi(get("tp", "1"))
	if err != nil || tp < 1 {
		http.Error(w, "dashboard: bad tp", http.StatusBadRequest)
		return
	}
	// Cap the sweep length: sweeps run on process-shared cached
	// engines whose step-cost memo grows with context, so an
	// unbounded query parameter would let clients grow server memory
	// without bound (the paper's own grids stop at 2048).
	const maxSweepLen = 8192
	length, err := strconv.Atoi(get("len", "1024"))
	if err != nil || length < 1 || length > maxSweepLen {
		http.Error(w, fmt.Sprintf("dashboard: len must be in [1, %d]", maxSweepLen), http.StatusBadRequest)
		return
	}
	m, err := model.Get(get("model", "LLaMA-3-8B"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dev, err := hw.Get(get("device", "A100"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fw, err := framework.Get(get("framework", "vLLM"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Share the process-wide engine cache: a repeated sweep of one
	// system reuses its engine and memoised step costs.
	eng, err := engine.Cached(engine.Config{
		Model: m, Device: dev, Framework: fw,
		Plan: parallel.Plan{TP: tp, PP: 1, EP: 1},
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fig := &metrics.Figure{
		ID:     "sweep",
		Title:  fmt.Sprintf("%s on %d× %s via %s (len %d)", m.Name, tp, dev.Name, fw.Name, length),
		XLabel: "Batch size", YLabel: "Throughput (tokens/s)",
	}
	// Fan the grid points over the -j pool; the figure is filled
	// serially afterwards, so series order is identical at any
	// parallelism.
	type point struct {
		res engine.Result
		err error
	}
	pts, _ := pool.Map(len(workload.PaperBatches), s.parallelism, func(i int) (point, error) {
		b := workload.PaperBatches[i]
		res, err := eng.Run(workload.Spec{Batch: b, Input: length, Output: length})
		return point{res, err}, nil
	})
	for i, p := range pts {
		b := workload.PaperBatches[i]
		if p.err != nil {
			fig.Note("batch %d skipped: %v", b, p.err)
			continue
		}
		fig.Add("throughput", float64(b), p.res.Throughput)
		fig.Add("TTFT (s)", float64(b), p.res.TTFTSeconds)
		fig.Add("ITL (ms)", float64(b), p.res.ITLSeconds*1000)
	}
	writeJSON(w, runResponse{Figure: toJSON(fig), Markdown: fig.Markdown()})
}

// serve runs an interactive cluster-serving simulation on the shared
// DES kernel (internal/des via the root llmbench API):
// /api/serve?model=…&device=…&framework=…&replicas=4&rate=20&requests=200
// With autoscale=1 the fleet scales dynamically between 1 and
// `replicas` instead of being fixed. Replicas advance on per-replica
// goroutines bounded by the -j pool; Stats are byte-identical at any
// parallelism, so the table below is reproducible.
func (s *server) serve(w http.ResponseWriter, r *http.Request) {
	// Bounded knobs: serving simulations run on process-shared cached
	// engines, so unbounded query parameters would let clients grow
	// server memory and burn CPU without limit.
	q := query{values: r.URL.Query()}
	p := serveParams{
		sys: llmbench.System{
			Model:     q.get("model", "LLaMA-3-8B"),
			Device:    q.get("device", "A100"),
			Framework: q.get("framework", "vLLM"),
		},
		replicas:  q.atoiIn("replicas", "4", 1, 64),
		requests:  q.atoiIn("requests", "200", 1, 2000),
		maxBatch:  q.atoiIn("maxbatch", "32", 1, 256),
		inMean:    q.atoiIn("inmean", "512", 1, 8192),
		outMean:   q.atoiIn("outmean", "128", 1, 8192),
		autoscale: q.get("autoscale", "") == "1",
	}
	// Positive-form bounds so NaN (which ParseFloat accepts) fails.
	rate, err := strconv.ParseFloat(q.get("rate", "10"), 64)
	if (err != nil || !(rate > 0 && rate <= 1000)) && q.err == nil {
		q.err = fmt.Errorf("dashboard: rate must be in (0, 1000]")
	}
	p.rate = rate
	if q.err != nil {
		http.Error(w, q.err.Error(), http.StatusBadRequest)
		return
	}
	s.serveSim(w, p)
}

// serveSweep runs a serving-capacity grid (llmbench.ServeSweep) —
// arrival rates × replica counts, optionally × trace shape — and
// renders the P99-latency-vs-rate chart capacity planning reads, one
// series per replica count (per replica count × trace shape when the
// shape axes are set):
// /api/servesweep?model=…&device=…&framework=…&rates=5,10,20&replicas=1,2,4
// Optional: maxbatch, requests, inmean, outmean, policy
// (continuous|ll|prefix|static|static-ll|static-auto|autoscale), bursts
// (ChatTrace burst-factor axis, values ≥ 1), mixes ("in:out"
// length-median axis, e.g. 512:128,2048:256), prefixshare (one share
// in [0,1) of the input median spent on a fleet-wide shared system
// prompt; every replica gets a tiered prefix cache and the table gains
// a cache-hit-rate column — the workload the prefix policy routes
// for), slo (seconds; draws the
// knee per configuration into the table), trace (path of a recorded
// llmbench-trace file on the server's filesystem — no upload needed;
// replays it at every point, at its native rate when rates is absent
// or rescaled to each rate otherwise; incompatible with bursts and
// mixes), stream (=1 aggregates incrementally with P² percentile
// sketches — required for traces over 100k requests).
func (s *server) serveSweep(w http.ResponseWriter, r *http.Request) {
	q := query{values: r.URL.Query()}
	get := q.get
	// Bounded axes: every point is a full DES run on process-shared
	// engines, so the grid size, rates, and trace length are capped.
	const maxAxis = 8
	stream := get("stream", "") == "1"
	tracePath := get("trace", "")
	var traceReqs []llmbench.TraceRequest
	if tracePath != "" {
		var err error
		traceReqs, err = readTraceFile(tracePath, stream)
		if err != nil {
			http.Error(w, "dashboard: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	// On trace replays an absent rates axis means one native-rate
	// point; everywhere else it defaults like before.
	ratesStr := get("rates", "")
	if ratesStr == "" && tracePath == "" {
		ratesStr = "5,10,20"
	}
	var rates []float64
	if ratesStr != "" {
		var err error
		rates, err = parseFloatAxis(ratesStr, maxAxis, 1000)
		if err != nil {
			http.Error(w, "dashboard: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	replicas, err := parseIntAxis(get("replicas", "1,2,4"), maxAxis, 64)
	if err != nil {
		http.Error(w, "dashboard: "+err.Error(), http.StatusBadRequest)
		return
	}
	var bursts []float64
	if b := get("bursts", ""); b != "" {
		bursts, err = parseFloatAxis(b, maxAxis, 64)
		if err == nil {
			for _, v := range bursts {
				if v < 1 {
					err = fmt.Errorf("burst factors must be ≥ 1")
					break
				}
			}
		}
		if err != nil {
			http.Error(w, "dashboard: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	var mixes []llmbench.LengthMix
	if m := get("mixes", ""); m != "" {
		mixes, err = parseMixAxis(m, maxAxis)
		if err != nil {
			http.Error(w, "dashboard: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	var shares []float64
	if ps := get("prefixshare", ""); ps != "" {
		v, perr := strconv.ParseFloat(ps, 64)
		if perr != nil || !(v >= 0) || v >= 1 {
			http.Error(w, "dashboard: prefixshare must be a number in [0, 1)", http.StatusBadRequest)
			return
		}
		shares = []float64{v}
	}
	if tracePath != "" && (len(bursts) > 0 || len(mixes) > 0 || len(shares) > 0) {
		http.Error(w, "dashboard: trace replay is incompatible with bursts/mixes/prefixshare (the recorded trace is the shape)",
			http.StatusBadRequest)
		return
	}
	// With four multiplying axes the per-axis caps alone no longer
	// bound one request's synchronous work: keep the whole grid at the
	// pre-shape-axes worst case (maxAxis² points).
	if n := max(1, len(rates)) * len(replicas) * max(1, len(bursts)) * max(1, len(mixes)); n > maxAxis*maxAxis {
		http.Error(w, fmt.Sprintf("dashboard: grid too large (%d points, max %d)", n, maxAxis*maxAxis),
			http.StatusBadRequest)
		return
	}
	maxBatch := q.atoiIn("maxbatch", "32", 1, 256)
	requests := q.atoiIn("requests", "150", 1, 1000)
	if tracePath != "" {
		// Replay points run the recorded trace; report its true size.
		requests = len(traceReqs)
	}
	inMean := q.atoiIn("inmean", "512", 1, 8192)
	outMean := q.atoiIn("outmean", "128", 1, 8192)
	if q.err != nil {
		http.Error(w, q.err.Error(), http.StatusBadRequest)
		return
	}
	// slo is optional, but a present-and-invalid value is a 400 like
	// every other parameter, not a silently missing knee section.
	slo := 0.0
	if sloStr := get("slo", ""); sloStr != "" {
		// The positive-form bound rejects NaN; +Inf satisfies v > 0
		// and needs its own check, or every point would "meet" the SLO.
		v, err := strconv.ParseFloat(sloStr, 64)
		if err != nil || !(v > 0) || math.IsInf(v, 0) {
			http.Error(w, "dashboard: slo must be a positive, finite number of seconds", http.StatusBadRequest)
			return
		}
		slo = v
	}
	var policy llmbench.ServePolicy
	switch get("policy", "ll") {
	case "continuous", "rr":
		// zero value
	case "ll", "least-loaded":
		policy.LeastLoaded = true
	case "prefix":
		policy.Prefix = true
	case "static":
		policy.Static = true
	case "static-ll":
		policy.Static, policy.LeastLoaded = true, true
	case "static-auto":
		policy.Static, policy.Autoscale = true, true
	case "autoscale", "auto":
		policy.Autoscale = true
	default:
		// Anything beyond the select's short names — topology forms like
		// "disagg/1:3" or "ll/disagg/2:6" — goes through the full policy
		// grammar.
		var perr error
		policy, perr = llmbench.ParseServePolicy(get("policy", "ll"))
		if perr != nil {
			http.Error(w, "dashboard: "+perr.Error(), http.StatusBadRequest)
			return
		}
	}
	pts, err := llmbench.ServeSweep(llmbench.ServeSweepConfig{
		System: llmbench.System{
			Model:     get("model", "Mistral-7B"),
			Device:    get("device", "A100"),
			Framework: get("framework", "vLLM"),
		},
		MaxBatch: maxBatch,
		Seed:     42, Requests: requests, InputMean: inMean, OutputMean: outMean,
		StreamStats: stream,
	}, llmbench.ServeGrid{
		Rates: rates, Replicas: replicas, Policies: []llmbench.ServePolicy{policy},
		PrefixShares: shares, BurstFactors: bursts, LengthMixes: mixes, Trace: traceReqs,
		Parallelism: s.parallelism,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Shaped grids label every series and row with the trace shape so
	// one chart can contrast burst factors and length mixes; plain
	// grids keep the replica-count-only rendering.
	shaped := len(bursts) > 0 || len(mixes) > 0
	shapeOf := func(burst float64, mix llmbench.LengthMix) string {
		return fmt.Sprintf("burst ×%g, %d:%d", burst, mix.Input, mix.Output)
	}
	fig := &metrics.Figure{
		ID: "servesweep",
		Title: fmt.Sprintf("%s on %s via %s — %s, %d reqs/point",
			get("model", "Mistral-7B"), get("device", "A100"), get("framework", "vLLM"),
			policy, requests),
		XLabel: "Arrival rate (req/s)", YLabel: "P99 latency (s)",
	}
	var md strings.Builder
	if prefixed := len(shares) > 0; prefixed {
		fmt.Fprintf(&md, "### Serving capacity sweep (%s, shared prefix %g)\n\n", policy, shares[0])
	} else {
		fmt.Fprintf(&md, "### Serving capacity sweep (%s)\n\n", policy)
	}
	shapeHdr := ""
	if shaped {
		shapeHdr = " Burst | In:Out |"
	}
	hitHdr := ""
	if len(shares) > 0 {
		hitHdr = " Hit (%) |"
	}
	fmt.Fprintf(&md, "| Replicas |%s Rate (req/s) | Throughput (tok/s) | p50 (s) | p95 (s) | p99 (s) | Queue p99 (s) |%s Preempt |\n", shapeHdr, hitHdr)
	fmt.Fprintf(&md, "|---|%s---|---|---|---|---|---|%s---|\n",
		strings.Repeat("---|", strings.Count(shapeHdr, "|")),
		strings.Repeat("---|", strings.Count(hitHdr, "|")))
	for _, p := range pts {
		label := fmt.Sprintf("%d replica(s)", p.Replicas)
		shapeCols := ""
		if shaped {
			label = fmt.Sprintf("%s, %s", label, shapeOf(p.BurstFactor, p.Mix))
			shapeCols = fmt.Sprintf(" ×%g | %d:%d |", p.BurstFactor, p.Mix.Input, p.Mix.Output)
		}
		hitCol := ""
		if len(shares) > 0 {
			hitCol = fmt.Sprintf(" %.1f |", p.Stats.CacheHitRate*100)
		}
		if p.Err != nil {
			fig.Note("%s @ %g req/s skipped: %v", label, p.Rate, p.Err)
			blank := ""
			if len(shares) > 0 {
				blank = " |"
			}
			fmt.Fprintf(&md, "| %d |%s %g | — (%v) | | | | |%s |\n", p.Replicas, shapeCols, p.Rate, p.Err, blank)
			continue
		}
		fig.Add(label, p.Rate, p.Stats.P99Latency)
		fmt.Fprintf(&md, "| %d |%s %g | %.0f | %.2f | %.2f | %.2f | %.2f |%s %d |\n",
			p.Replicas, shapeCols, p.Rate, p.Stats.Throughput,
			p.Stats.P50Latency, p.Stats.P95Latency, p.Stats.P99Latency,
			p.Stats.P99QueueDelay, hitCol, p.Stats.Preemptions)
	}
	if slo > 0 {
		kneeUnit := "replica count"
		if shaped {
			kneeUnit = "replica count × trace shape"
		}
		knees, err := llmbench.Knees(pts, slo)
		if err != nil {
			http.Error(w, "dashboard: "+err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(&md, "\nKnee per %s (highest swept rate with p99 ≤ %gs):\n\n", kneeUnit, slo)
		for _, k := range knees {
			cfgName := fmt.Sprintf("%d replica(s)", k.Replicas)
			if shaped {
				cfgName = fmt.Sprintf("%s, %s", cfgName, shapeOf(k.BurstFactor, k.Mix))
			}
			if k.Met {
				fmt.Fprintf(&md, "- %s: %g req/s (p99 %.2fs)\n", cfgName, k.Rate, k.Stats.P99Latency)
			} else {
				fmt.Fprintf(&md, "- %s: no swept rate meets the SLO\n", cfgName)
			}
		}
	}
	writeJSON(w, runResponse{Figure: toJSON(fig), Markdown: md.String()})
}

// query wraps a request's parameters with defaulting and bounded
// integer parsing, recording the first violation — the shared input
// plumbing of the serve and serveSweep handlers.
type query struct {
	values map[string][]string
	err    error
}

// get returns the parameter or def when absent/empty.
func (q *query) get(key, def string) string {
	if vs := q.values[key]; len(vs) > 0 && vs[0] != "" {
		return vs[0]
	}
	return def
}

// atoiIn parses an integer parameter bounded to [lo, hi], recording
// the first out-of-range value in q.err.
func (q *query) atoiIn(key, def string, lo, hi int) int {
	v, err := strconv.Atoi(q.get(key, def))
	if err != nil || v < lo || v > hi {
		if q.err == nil {
			q.err = fmt.Errorf("dashboard: %s must be an integer in [%d, %d]", key, lo, hi)
		}
		return lo
	}
	return v
}

// readTraceFile loads a recorded llmbench-trace file from the
// server's filesystem — the upload-less replay path. The file is
// capped at 64 MiB, and traces beyond 100k requests must opt into
// streaming aggregation (stream=1): the exact path would ledger and
// sort every completion inside one HTTP request.
func readTraceFile(path string, stream bool) ([]llmbench.TraceRequest, error) {
	const maxTraceBytes = 64 << 20
	const maxExactRequests = 100_000
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	defer f.Close()
	if st, err := f.Stat(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	} else if st.Size() > maxTraceBytes {
		return nil, fmt.Errorf("trace file is %d bytes (max %d)", st.Size(), int64(maxTraceBytes))
	}
	reqs, _, err := llmbench.ReadTrace(f)
	if err != nil {
		return nil, err
	}
	if len(reqs) > maxExactRequests && !stream {
		return nil, fmt.Errorf("trace has %d requests; pass stream=1 to replay more than %d",
			len(reqs), maxExactRequests)
	}
	return reqs, nil
}

// parseFloatAxis parses a bounded comma-separated axis of positive
// numbers ≤ hi with at most maxN entries.
func parseFloatAxis(s string, maxN int, hi float64) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) > maxN {
		return nil, fmt.Errorf("at most %d axis values", maxN)
	}
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || !(v > 0 && v <= hi) {
			return nil, fmt.Errorf("axis values must be in (0, %g]", hi)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseMixAxis parses a bounded "in:out" length-mix axis
// ("512:128,2048:256") with at most maxN entries; medians must be in
// [16, 8192] (ChatTrace's floor and the trace-length cap).
func parseMixAxis(s string, maxN int) ([]llmbench.LengthMix, error) {
	parts := strings.Split(s, ",")
	if len(parts) > maxN {
		return nil, fmt.Errorf("at most %d axis values", maxN)
	}
	out := make([]llmbench.LengthMix, 0, len(parts))
	for _, p := range parts {
		in, outS, found := strings.Cut(strings.TrimSpace(p), ":")
		if !found {
			return nil, fmt.Errorf("mix %q must be in:out", p)
		}
		i, err1 := strconv.Atoi(strings.TrimSpace(in))
		o, err2 := strconv.Atoi(strings.TrimSpace(outS))
		if err1 != nil || err2 != nil || i < 16 || i > 8192 || o < 16 || o > 8192 {
			return nil, fmt.Errorf("mix medians must be integers in [16, 8192]")
		}
		out = append(out, llmbench.LengthMix{Input: i, Output: o})
	}
	return out, nil
}

// parseIntAxis is parseFloatAxis for integer axes in [1, hi].
func parseIntAxis(s string, maxN, hi int) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) > maxN {
		return nil, fmt.Errorf("at most %d axis values", maxN)
	}
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 || v > hi {
			return nil, fmt.Errorf("axis values must be integers in [1, %d]", hi)
		}
		out = append(out, v)
	}
	return out, nil
}

type serveParams struct {
	sys                llmbench.System
	replicas, requests int
	maxBatch           int
	inMean, outMean    int
	rate               float64
	autoscale          bool
}

func (s *server) serveSim(w http.ResponseWriter, p serveParams) {
	// The -j flag follows the pool convention (<1 = all cores) while
	// the DES kernel treats ≤1 as serial: resolve before handing it
	// over so the default actually runs replicas on goroutines.
	par := s.parallelism
	if par < 1 {
		par = runtime.GOMAXPROCS(0)
	}
	var md strings.Builder
	var stats llmbench.ClusterStats
	if p.autoscale {
		auto, err := llmbench.ServeAutoscale(llmbench.AutoscaleConfig{
			System: p.sys, MaxBatch: p.maxBatch,
			MinReplicas: 1, MaxReplicas: p.replicas,
			UpOutstanding: 2 * p.maxBatch, DownIdleS: 3, CooldownS: 1,
			Parallelism: par,
			Seed:        42, Requests: p.requests, RatePerSec: p.rate,
			InputMean: p.inMean, OutputMean: p.outMean,
			BurstFactor: 4, BurstLenS: 4,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		stats = auto.Stats
		fmt.Fprintf(&md, "### Autoscaled serving: %s on %s via %s (1..%d replicas, bursty %g req/s)\n\n",
			p.sys.Model, p.sys.Device, p.sys.Framework, p.replicas, p.rate)
		fmt.Fprintf(&md, "peak %d replicas over %d scale events\n\n", auto.PeakReplicas, len(auto.Events))
	} else {
		var err error
		stats, err = llmbench.ServeCluster(llmbench.ClusterConfig{
			System: p.sys, Replicas: p.replicas, LeastLoaded: true,
			MaxBatch: p.maxBatch, Parallelism: par,
			Seed: 42, Requests: p.requests, RatePerSec: p.rate,
			InputMean: p.inMean, OutputMean: p.outMean,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(&md, "### Cluster serving: %s on %d× %s via %s (%g req/s, least-loaded)\n\n",
			p.sys.Model, p.replicas, p.sys.Device, p.sys.Framework, p.rate)
	}
	fmt.Fprintf(&md, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&md, "| completed | %d |\n", stats.Completed)
	fmt.Fprintf(&md, "| throughput | %.0f tok/s |\n", stats.Throughput)
	fmt.Fprintf(&md, "| latency p50 / p95 / p99 | %.2f / %.2f / %.2f s |\n",
		stats.P50Latency, stats.P95Latency, stats.P99Latency)
	fmt.Fprintf(&md, "| queue delay p50 / p95 / p99 | %.2f / %.2f / %.2f s |\n",
		stats.P50QueueDelay, stats.P95QueueDelay, stats.P99QueueDelay)
	fmt.Fprintf(&md, "| mean latency / TTFT | %.2f / %.2f s |\n", stats.MeanLatency, stats.MeanTTFT)
	fmt.Fprintf(&md, "| makespan | %.1f s |\n", stats.MakespanS)
	if len(stats.PerReplica) > 0 {
		fmt.Fprintf(&md, "\n| replica | completed | busy (s) | util |\n|---|---|---|---|\n")
		for i, rep := range stats.PerReplica {
			fmt.Fprintf(&md, "| %d | %d | %.1f | %.0f%% |\n", i, rep.Completed, rep.BusyS, rep.Util*100)
		}
	}
	writeJSON(w, runResponse{Markdown: md.String()})
}

func toJSON(f *metrics.Figure) *figureJSON {
	out := &figureJSON{ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel, Notes: f.Notes}
	for _, s := range f.Series {
		sj := seriesJSON{Label: s.Label}
		for _, p := range s.Points {
			sj.Points = append(sj.Points, [2]float64{p.X, p.Y})
		}
		out.Series = append(out.Series, sj)
	}
	return out
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>LLM-Inference-Bench Dashboard</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 0; display: flex; height: 100vh; }
 #side { width: 340px; overflow-y: auto; border-right: 1px solid #ccc; padding: 12px; }
 #main { flex: 1; overflow-y: auto; padding: 16px; }
 .exp { cursor: pointer; padding: 6px 8px; border-radius: 6px; margin-bottom: 2px; }
 .exp:hover { background: #eef; }
 .exp.active { background: #dde6ff; }
 .exp b { display: block; }
 .exp small { color: #555; }
 svg { background: #fafafa; border: 1px solid #ddd; border-radius: 8px; }
 table { border-collapse: collapse; font-size: 13px; margin-top: 12px; }
 td, th { border: 1px solid #ccc; padding: 3px 8px; text-align: right; }
 th { background: #f0f0f0; }
 .legend { display: flex; flex-wrap: wrap; gap: 10px; margin: 8px 0; font-size: 13px; }
 .legend span { display: inline-flex; align-items: center; gap: 4px; }
 .swatch { width: 14px; height: 3px; display: inline-block; }
 .note { color: #864; font-size: 13px; margin-top: 6px; }
 #logtoggle { margin-left: 16px; }
 pre { background: #f6f6f6; padding: 10px; overflow-x: auto; }
</style>
</head>
<body>
<div id="side"><h3>LLM-Inference-Bench</h3>
<div style="border:1px solid #ccc;border-radius:8px;padding:8px;margin-bottom:10px;font-size:13px">
 <b>Custom sweep</b><br>
 <input id="sw-model" value="LLaMA-3-8B" size="12" title="model">
 <input id="sw-device" value="A100" size="6" title="device">
 <input id="sw-fw" value="vLLM" size="8" title="framework"><br>
 tp <input id="sw-tp" value="1" size="2"> len <input id="sw-len" value="1024" size="5">
 <button onclick="sweep()">run</button>
</div>
<div style="border:1px solid #ccc;border-radius:8px;padding:8px;margin-bottom:10px;font-size:13px">
 <b>Serving simulator</b> (DES kernel)<br>
 <input id="sv-model" value="Mistral-7B" size="12" title="model">
 <input id="sv-device" value="A100" size="6" title="device">
 <input id="sv-fw" value="vLLM" size="8" title="framework"><br>
 replicas <input id="sv-replicas" value="4" size="2">
 rate <input id="sv-rate" value="20" size="4">
 reqs <input id="sv-reqs" value="200" size="4"><br>
 <label><input type="checkbox" id="sv-auto"> autoscale 1..N</label>
 <button onclick="serve()">simulate</button>
</div>
<div style="border:1px solid #ccc;border-radius:8px;padding:8px;margin-bottom:10px;font-size:13px">
 <b>Capacity sweep</b> (rate × replicas)<br>
 <input id="ss-model" value="Mistral-7B" size="12" title="model">
 <input id="ss-device" value="A100" size="6" title="device">
 <input id="ss-fw" value="vLLM" size="8" title="framework"><br>
 rates <input id="ss-rates" value="5,10,20,40" size="10">
 replicas <input id="ss-replicas" value="1,2,4" size="6"><br>
 bursts <input id="ss-bursts" value="" size="5" title="ChatTrace burst-factor axis, e.g. 1,4 (empty = Poisson)">
 mixes <input id="ss-mixes" value="" size="10" title="in:out length-median axis, e.g. 512:128,2048:256"><br>
 prefix share <input id="ss-share" value="" size="4" title="shared system-prompt share of the input median, in [0,1); empty = no shared prefix"><br>
 policy <select id="ss-policy">
  <option value="ll">continuous/least-loaded</option>
  <option value="rr">continuous/round-robin</option>
  <option value="prefix">continuous/prefix-affinity</option>
  <option value="autoscale">autoscale</option>
  <option value="static">static/round-robin</option>
  <option value="static-ll">static/least-loaded</option>
  <option value="static-auto">static autoscale</option>
  <option value="disagg/1:3">disagg 1:3 (prefill:decode)</option>
  <option value="ll/disagg/1:3">disagg 1:3/least-loaded</option>
  <option value="ll/disagg/2:2">disagg 2:2/least-loaded</option>
 </select>
 SLO p99 ≤ <input id="ss-slo" value="6" size="3">s
 <button onclick="serveSweep()">sweep</button>
</div>
<button onclick="runAll()" style="margin-bottom:8px">regenerate all (pooled)</button>
<div id="list">loading…</div></div>
<div id="main"><p>Select a figure or table on the left. Every entry regenerates the
corresponding table/figure of the SC'24 paper from the simulation engine.</p></div>
<script>
const colors = ["#e6194b","#3cb44b","#4363d8","#f58231","#911eb4","#46f0f0",
 "#f032e6","#bcf60c","#fabebe","#008080","#e6beff","#9a6324","#800000",
 "#aaffc3","#808000","#000075","#808080","#ffd8b1","#000000","#ffe119"];
let active = null;
async function load() {
  const res = await fetch("/api/experiments");
  const exps = await res.json();
  const list = document.getElementById("list");
  list.innerHTML = "";
  for (const e of exps) {
    const div = document.createElement("div");
    div.className = "exp"; div.id = "exp-" + e.id;
    div.innerHTML = "<b>" + e.id + "</b><small>" + e.title + "</small>";
    div.onclick = () => show(e);
    list.appendChild(div);
  }
}
async function show(e) {
  if (active) document.getElementById("exp-"+active).classList.remove("active");
  active = e.id;
  document.getElementById("exp-"+e.id).classList.add("active");
  const main = document.getElementById("main");
  main.innerHTML = "<p>running " + e.id + "…</p>";
  const res = await fetch("/api/run?id=" + e.id);
  if (!res.ok) { main.innerHTML = "<pre>" + await res.text() + "</pre>"; return; }
  const data = await res.json();
  main.innerHTML = "<h2>" + e.id + " — " + e.title + "</h2>" +
    "<p><i>" + e.workload + " · modules: " + e.modules.join(", ") + "</i></p>";
  if (data.figure) {
    const ctl = document.createElement("div");
    ctl.innerHTML = '<label><input type="checkbox" id="logtoggle" checked> log-scale Y</label>';
    main.appendChild(ctl);
    const holder = document.createElement("div");
    main.appendChild(holder);
    const render = () => { holder.innerHTML = svgChart(data.figure,
      document.getElementById("logtoggle").checked); };
    ctl.querySelector("input").onchange = render;
    render();
    for (const n of (data.figure.notes || [])) {
      const p = document.createElement("div"); p.className = "note"; p.textContent = "⚠ " + n;
      main.appendChild(p);
    }
  }
  const pre = document.createElement("pre");
  pre.textContent = data.markdown;
  main.appendChild(pre);
}
function svgChart(fig, logY) {
  const W = 860, H = 440, L = 70, R = 20, T = 20, B = 50;
  let xs = [], ys = [];
  for (const s of fig.series) for (const p of s.points) { xs.push(p[0]); ys.push(p[1]); }
  ys = ys.filter(v => !logY || v > 0);
  if (!xs.length || !ys.length) return "<p>no data</p>";
  const xmin = Math.min(...xs), xmax = Math.max(...xs);
  let ymin = Math.min(...ys), ymax = Math.max(...ys);
  if (logY) { ymin = Math.log10(ymin); ymax = Math.log10(ymax); }
  if (ymax === ymin) ymax = ymin + 1;
  const X = x => L + (x - xmin) / (xmax - xmin || 1) * (W - L - R);
  const Y = y => { const v = logY ? Math.log10(y) : y;
    return H - B - (v - ymin) / (ymax - ymin) * (H - T - B); };
  let out = '<svg width="' + W + '" height="' + H + '">';
  for (let i = 0; i <= 5; i++) {
    const fy = ymin + (ymax - ymin) * i / 5;
    const yy = H - B - (H - T - B) * i / 5;
    const label = logY ? (Math.pow(10, fy)).toPrecision(3) : fy.toPrecision(3);
    out += '<line x1="' + L + '" y1="' + yy + '" x2="' + (W-R) + '" y2="' + yy +
      '" stroke="#eee"/><text x="4" y="' + (yy+4) + '" font-size="11">' + label + '</text>';
  }
  const uniq = [...new Set(xs)].sort((a,b)=>a-b);
  for (const x of uniq) {
    out += '<text x="' + X(x) + '" y="' + (H-B+16) + '" font-size="11" text-anchor="middle">' +
      x + '</text>';
  }
  out += '<text x="' + (W/2) + '" y="' + (H-8) + '" font-size="12" text-anchor="middle">' +
    fig.xlabel + '</text>';
  fig.series.forEach((s, i) => {
    const c = colors[i % colors.length];
    const pts = s.points.filter(p => !logY || p[1] > 0)
      .map(p => X(p[0]) + "," + Y(p[1])).join(" ");
    if (s.points.length > 1) out += '<polyline points="' + pts +
      '" fill="none" stroke="' + c + '" stroke-width="2"/>';
    for (const p of s.points) {
      if (logY && p[1] <= 0) continue;
      out += '<circle cx="' + X(p[0]) + '" cy="' + Y(p[1]) + '" r="3.5" fill="' + c +
        '"><title>' + s.label + ': (' + p[0] + ', ' + p[1].toPrecision(4) + ')</title></circle>';
    }
  });
  out += '</svg><div class="legend">';
  fig.series.forEach((s, i) => {
    out += '<span><span class="swatch" style="background:' + colors[i % colors.length] +
      '"></span>' + s.label + '</span>';
  });
  out += '</div>';
  return out;
}
async function sweep() {
  const main = document.getElementById("main");
  const q = new URLSearchParams({
    model: document.getElementById("sw-model").value,
    device: document.getElementById("sw-device").value,
    framework: document.getElementById("sw-fw").value,
    tp: document.getElementById("sw-tp").value,
    len: document.getElementById("sw-len").value,
  });
  main.innerHTML = "<p>sweeping…</p>";
  const res = await fetch("/api/sweep?" + q);
  if (!res.ok) { main.innerHTML = "<pre>" + await res.text() + "</pre>"; return; }
  const data = await res.json();
  main.innerHTML = "<h2>Custom sweep</h2>";
  const holder = document.createElement("div");
  main.appendChild(holder);
  holder.innerHTML = svgChart(data.figure, false);
  const pre = document.createElement("pre");
  pre.textContent = data.markdown;
  main.appendChild(pre);
}
async function serve() {
  const main = document.getElementById("main");
  const q = new URLSearchParams({
    model: document.getElementById("sv-model").value,
    device: document.getElementById("sv-device").value,
    framework: document.getElementById("sv-fw").value,
    replicas: document.getElementById("sv-replicas").value,
    rate: document.getElementById("sv-rate").value,
    requests: document.getElementById("sv-reqs").value,
  });
  if (document.getElementById("sv-auto").checked) q.set("autoscale", "1");
  main.innerHTML = "<p>simulating serving…</p>";
  const res = await fetch("/api/serve?" + q);
  if (!res.ok) { main.innerHTML = "<pre>" + await res.text() + "</pre>"; return; }
  const data = await res.json();
  main.innerHTML = "<h2>Serving simulation</h2>";
  const pre = document.createElement("pre");
  pre.textContent = data.markdown;
  main.appendChild(pre);
}
async function serveSweep() {
  const main = document.getElementById("main");
  const q = new URLSearchParams({
    model: document.getElementById("ss-model").value,
    device: document.getElementById("ss-device").value,
    framework: document.getElementById("ss-fw").value,
    rates: document.getElementById("ss-rates").value,
    replicas: document.getElementById("ss-replicas").value,
    policy: document.getElementById("ss-policy").value,
    slo: document.getElementById("ss-slo").value,
  });
  const bursts = document.getElementById("ss-bursts").value.trim();
  if (bursts) q.set("bursts", bursts);
  const mixes = document.getElementById("ss-mixes").value.trim();
  if (mixes) q.set("mixes", mixes);
  const share = document.getElementById("ss-share").value.trim();
  if (share) q.set("prefixshare", share);
  main.innerHTML = "<p>sweeping serving capacity…</p>";
  const res = await fetch("/api/servesweep?" + q);
  if (!res.ok) { main.innerHTML = "<pre>" + await res.text() + "</pre>"; return; }
  const data = await res.json();
  main.innerHTML = "<h2>Serving capacity sweep</h2>";
  const holder = document.createElement("div");
  main.appendChild(holder);
  holder.innerHTML = svgChart(data.figure, false);
  for (const n of (data.figure.notes || [])) {
    const p = document.createElement("div"); p.className = "note"; p.textContent = "⚠ " + n;
    main.appendChild(p);
  }
  const pre = document.createElement("pre");
  pre.textContent = data.markdown;
  main.appendChild(pre);
}
async function runAll() {
  const main = document.getElementById("main");
  main.innerHTML = "<p>regenerating every experiment on the worker pool…</p>";
  const res = await fetch("/api/run?id=all");
  if (!res.ok) { main.innerHTML = "<pre>" + await res.text() + "</pre>"; return; }
  const data = await res.json();
  main.innerHTML = "<p>" + data.markdown + " — cached; entries now render instantly.</p>";
}
load();
</script>
</body>
</html>
`

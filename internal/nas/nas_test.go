package nas

import (
	"testing"

	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/model"
)

func searchConfig() Config {
	return Config{
		Base:          model.MustGet("LLaMA-3-8B"),
		Options:       []int{1, 2, 4}, // DeciLM's pool (§IV-B4)
		QualityBudget: 0.40,
		Device:        hw.MustGet("A100"),
		Framework:     framework.MustGet("TRT-LLM"),
		Batch:         64,
		Context:       1024,
		Iterations:    4000,
		Seed:          1,
	}
}

func TestSearchFindsSparseAllocation(t *testing.T) {
	res, err := Search(searchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Allocation) != 32 {
		t.Fatalf("allocation has %d layers, want 32", len(res.Allocation))
	}
	// The search must spend far fewer KV heads than the all-4 baseline
	// (128) — DeciLM landed at 67 with a richer pool.
	if res.Allocation.Total() >= 128 {
		t.Errorf("search kept all %d KV heads; expected sparsification", res.Allocation.Total())
	}
	if res.Speedup <= 1 {
		t.Errorf("search speedup %.3f must exceed 1", res.Speedup)
	}
	if res.Quality < 0.40 {
		t.Errorf("quality %v violates the budget", res.Quality)
	}
	for _, kv := range res.Allocation {
		if kv != 1 && kv != 2 && kv != 4 {
			t.Errorf("allocation uses option %d outside the pool", kv)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	a, err := Search(searchConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(searchConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Allocation {
		if a.Allocation[i] != b.Allocation[i] {
			t.Fatal("same seed must give the same allocation")
		}
	}
}

func TestTighterBudgetCostsThroughput(t *testing.T) {
	loose := searchConfig()
	loose.Options = []int{1, 2, 4, 8}
	tight := searchConfig()
	tight.Options = []int{1, 2, 4, 8}
	tight.QualityBudget = 0.60
	lres, err := Search(loose)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := Search(tight)
	if err != nil {
		t.Fatal(err)
	}
	if tres.Allocation.Total() <= lres.Allocation.Total() {
		t.Errorf("tighter budget must keep more KV heads: %d vs %d",
			tres.Allocation.Total(), lres.Allocation.Total())
	}
	if tres.StepTime < lres.StepTime {
		t.Errorf("tighter budget must not be faster: %v vs %v", tres.StepTime, lres.StepTime)
	}
}

func TestUnreachableBudget(t *testing.T) {
	c := searchConfig()
	c.QualityBudget = 0.99 // even 4 KV heads per layer can't reach this
	if _, err := Search(c); err == nil {
		t.Error("unreachable budget must fail")
	}
}

func TestValidation(t *testing.T) {
	bad := searchConfig()
	bad.Options = []int{3} // 32 % 3 != 0
	if _, err := Search(bad); err == nil {
		t.Error("non-dividing option must fail")
	}
	bad = searchConfig()
	bad.Iterations = 0
	if _, err := Search(bad); err == nil {
		t.Error("zero iterations must fail")
	}
	bad = searchConfig()
	bad.Base = nil
	if _, err := Search(bad); err == nil {
		t.Error("nil base must fail")
	}
	bad = searchConfig()
	bad.QualityBudget = 0
	if _, err := Search(bad); err == nil {
		t.Error("zero budget must fail")
	}
}

func TestStepTimeMonotoneInKVHeads(t *testing.T) {
	c := searchConfig()
	small := make(Allocation, 32)
	big := make(Allocation, 32)
	for i := range small {
		small[i] = 1
		big[i] = 4
	}
	ts, err := c.StepTime(small)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c.StepTime(big)
	if err != nil {
		t.Fatal(err)
	}
	if ts >= tb {
		t.Errorf("fewer KV heads must be faster: %v vs %v", ts, tb)
	}
}

func TestLayerQualityMonotone(t *testing.T) {
	prev := 0.0
	for _, kv := range []int{1, 2, 4, 8, 32} {
		q := LayerQuality(kv, 32)
		if q <= prev {
			t.Errorf("quality must grow with KV heads: %d -> %v", kv, q)
		}
		prev = q
	}
	if LayerQuality(32, 32) != 1 {
		t.Error("MHSA layer must score 1.0")
	}
}

// Package nas implements the neural-architecture-search study of
// §IV-B4: DeciLM-7B used NAS to pick per-layer KV-head counts from the
// pool {1, 2, 4}, landing on 67 KV heads across 32 layers where
// LLaMA-3-8B and Mistral-7B spend 256 — trading a little attention
// quality for a large KV-traffic saving.
//
// Search runs simulated annealing over per-layer allocations,
// maximizing simulated decode throughput subject to a quality budget.
// The decode-time objective uses the same first-order physics as the
// engine: weight traffic is allocation-independent, KV traffic scales
// with the summed per-layer KV heads.
package nas

import (
	"errors"
	"fmt"
	"math"

	"llmbench/internal/dtype"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/model"
	"llmbench/internal/trace"
)

// Allocation assigns a KV-head count to each layer.
type Allocation []int

// Total returns the summed KV heads (DeciLM's "67 KV heads").
func (a Allocation) Total() int {
	t := 0
	for _, v := range a {
		t += v
	}
	return t
}

// Config parameterises a search.
type Config struct {
	// Base is the architecture whose attention is being searched;
	// Base.Heads stays fixed, per-layer KV heads vary.
	Base *model.Config
	// Options is the per-layer KV-head pool ({1,2,4} in the paper).
	Options []int
	// QualityBudget ∈ (0,1]: minimum mean per-layer quality, where a
	// layer with kv heads k scores log(1+k)/log(1+Heads). MHSA scores
	// 1.0; tighter budgets force more KV heads.
	QualityBudget float64
	// Device and Framework set the rates the objective uses.
	Device    *hw.Device
	Framework *framework.Profile
	// Batch and Context are the decode operating point to optimize.
	Batch   int
	Context int
	// Iterations and Seed control the annealer.
	Iterations int
	Seed       uint64
}

// Result is a completed search.
type Result struct {
	Allocation Allocation
	Quality    float64
	StepTime   float64 // simulated decode-step seconds
	Baseline   float64 // step time of the all-max-option allocation
	Speedup    float64 // Baseline / StepTime
}

// LayerQuality scores one layer's attention capacity.
func LayerQuality(kvHeads, heads int) float64 {
	return math.Log(1+float64(kvHeads)) / math.Log(1+float64(heads))
}

// Quality is the mean layer quality of an allocation.
func (c *Config) Quality(a Allocation) float64 {
	sum := 0.0
	for _, kv := range a {
		sum += LayerQuality(kv, c.Base.Heads)
	}
	return sum / float64(len(a))
}

// StepTime evaluates the first-order decode-step time of an
// allocation: weight stream (allocation-independent except K/V
// projection width) plus KV stream proportional to summed KV heads.
func (c *Config) StepTime(a Allocation) (float64, error) {
	effC, effM, err := c.Framework.Eff(c.Device.Vendor)
	if err != nil {
		return 0, err
	}
	peak, err := c.Device.PeakFLOPS(dtype.FP16)
	if err != nil {
		return 0, err
	}
	bw := c.Device.MemBW() * effM
	d := c.Base.Hidden / c.Base.Heads
	bytesPerParam := dtype.FP16.Bytes()

	var weightBytes, kvBytes, flops float64
	for _, kv := range a {
		attnParams := float64(c.Base.Hidden)*float64(d)*float64(c.Base.Heads)*2 + // Q + O
			2*float64(c.Base.Hidden)*float64(d)*float64(kv) // K + V
		ffnParams := 3 * float64(c.Base.Hidden) * float64(c.Base.Inter)
		weightBytes += (attnParams + ffnParams) * bytesPerParam
		kvBytes += float64(c.Batch) * float64(c.Context) * 2 * float64(kv) * float64(d) * bytesPerParam
		flops += float64(c.Batch) * 2 * (attnParams + ffnParams)
	}
	weightBytes += float64(c.Base.Hidden) * float64(c.Base.Vocab) * bytesPerParam
	flops += float64(c.Batch) * 2 * float64(c.Base.Hidden) * float64(c.Base.Vocab)

	mem := (weightBytes + kvBytes) / bw
	cmp := flops / (peak * effC)
	return math.Max(mem, cmp), nil
}

func (c *Config) validate() error {
	switch {
	case c.Base == nil:
		return errors.New("nas: nil base model")
	case len(c.Options) == 0:
		return errors.New("nas: empty option pool")
	case c.QualityBudget <= 0 || c.QualityBudget > 1:
		return fmt.Errorf("nas: quality budget %v out of (0,1]", c.QualityBudget)
	case c.Device == nil || c.Framework == nil:
		return errors.New("nas: nil device or framework")
	case c.Batch < 1 || c.Context < 1:
		return errors.New("nas: non-positive operating point")
	case c.Iterations < 1:
		return errors.New("nas: non-positive iterations")
	}
	for _, o := range c.Options {
		if o < 1 || o > c.Base.Heads || c.Base.Heads%o != 0 {
			return fmt.Errorf("nas: option %d incompatible with %d heads", o, c.Base.Heads)
		}
	}
	return nil
}

// Search runs the annealer and returns the best feasible allocation.
func Search(c Config) (*Result, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := trace.NewRNG(c.Seed)
	layers := c.Base.Layers
	maxOpt := c.Options[0]
	for _, o := range c.Options {
		if o > maxOpt {
			maxOpt = o
		}
	}
	// Start from the all-max allocation (always feasible if anything is).
	cur := make(Allocation, layers)
	for i := range cur {
		cur[i] = maxOpt
	}
	if c.Quality(cur) < c.QualityBudget {
		return nil, fmt.Errorf("nas: quality budget %v unreachable even with %d KV heads/layer",
			c.QualityBudget, maxOpt)
	}
	baseline, err := c.StepTime(cur)
	if err != nil {
		return nil, err
	}
	curTime := baseline
	best := append(Allocation{}, cur...)
	bestTime := curTime

	temp := baseline * 0.2
	cool := math.Pow(1e-3, 1/float64(c.Iterations)) // anneal to 0.1% of start
	for it := 0; it < c.Iterations; it++ {
		layer := rng.Intn(layers)
		opt := c.Options[rng.Intn(len(c.Options))]
		if opt == cur[layer] {
			continue
		}
		old := cur[layer]
		cur[layer] = opt
		if c.Quality(cur) < c.QualityBudget {
			cur[layer] = old
			continue
		}
		t, err := c.StepTime(cur)
		if err != nil {
			return nil, err
		}
		accept := t < curTime
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp((curTime-t)/temp)
		}
		if !accept {
			cur[layer] = old
		} else {
			curTime = t
			if t < bestTime {
				bestTime = t
				copy(best, cur)
			}
		}
		temp *= cool
	}
	return &Result{
		Allocation: best,
		Quality:    c.Quality(best),
		StepTime:   bestTime,
		Baseline:   baseline,
		Speedup:    baseline / bestTime,
	}, nil
}

// Package power models accelerator power draw and derived
// performance-per-watt, reproducing §III-5(e) and Fig. 16 of the
// paper.
//
// The model is utilisation-based: an accelerator draws its idle floor
// plus a fraction of the dynamic range (TDP − idle) set by how busy
// the binding roofline resources are. Frameworks that drive the
// hardware harder (TRT-LLM) therefore draw more watts *and* deliver
// more tokens/s/W — the paper's central power finding.
package power

import (
	"errors"
	"math"

	"llmbench/internal/hw"
)

// gamma shapes the utilisation → power curve; slightly sublinear so
// partially-busy devices still draw substantial power, as GPUs do.
const gamma = 0.8

// Sample is one power observation.
type Sample struct {
	Watts       float64
	Utilization float64
}

// Utilization converts roofline evidence into a device-busy fraction
// in [0,1]. balance is min(computeWall,memoryWall)/max(...) from the
// roofline; occupancy is the fraction of peak batch feeding the device
// (large batches keep SMs resident); drive is the framework's kernel
// efficiency — fused stacks like TRT-LLM keep more of the chip lit per
// byte moved, the mechanism behind Fig. 16's "TRT-LLM consumes more
// power than vLLM due to more utilization of the hardware".
func Utilization(balance, occupancy, drive float64) float64 {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	balance = clamp(balance)
	occupancy = clamp(occupancy)
	drive = clamp(drive)
	return clamp(0.25 + 0.35*balance + 0.15*occupancy + 0.25*drive)
}

// Draw computes the average wattage of a device at the given
// utilisation.
func Draw(d *hw.Device, util float64) (float64, error) {
	if d == nil {
		return 0, errors.New("power: nil device")
	}
	if util < 0 || util > 1 || math.IsNaN(util) {
		return 0, errors.New("power: utilisation out of [0,1]")
	}
	return d.IdleWatts + (d.TDPWatts-d.IdleWatts)*math.Pow(util, gamma), nil
}

// TokensPerSecondPerWatt is the paper's efficiency metric.
func TokensPerSecondPerWatt(throughput, watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return throughput / watts
}

// Energy returns joules for a run of the given duration at watts.
func Energy(watts, seconds float64) float64 { return watts * seconds }

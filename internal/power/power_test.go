package power

import (
	"testing"
	"testing/quick"

	"llmbench/internal/hw"
)

func TestDrawBounds(t *testing.T) {
	a100 := hw.MustGet("A100")
	idle, err := Draw(a100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idle != a100.IdleWatts {
		t.Errorf("zero-util draw = %v, want idle %v", idle, a100.IdleWatts)
	}
	full, err := Draw(a100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full != a100.TDPWatts {
		t.Errorf("full-util draw = %v, want TDP %v", full, a100.TDPWatts)
	}
}

func TestDrawMonotone(t *testing.T) {
	a100 := hw.MustGet("A100")
	f := func(a, b uint8) bool {
		x := float64(a) / 255
		y := float64(b) / 255
		if x > y {
			x, y = y, x
		}
		px, err1 := Draw(a100, x)
		py, err2 := Draw(a100, y)
		return err1 == nil && err2 == nil && px <= py+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDrawErrors(t *testing.T) {
	if _, err := Draw(nil, 0.5); err == nil {
		t.Error("nil device must error")
	}
	if _, err := Draw(hw.MustGet("A100"), 1.5); err == nil {
		t.Error("util > 1 must error")
	}
	if _, err := Draw(hw.MustGet("A100"), -0.1); err == nil {
		t.Error("util < 0 must error")
	}
}

func TestUtilizationRangeAndMonotone(t *testing.T) {
	f := func(a, b, c uint8) bool {
		u := Utilization(float64(a)/255, float64(b)/255, float64(c)/255)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Utilization(1, 1, 1) <= Utilization(0, 0, 0) {
		t.Error("utilisation must grow with balance, occupancy, and drive")
	}
	// A better-fused framework (higher drive) lights more of the chip.
	if Utilization(0.5, 0.5, 0.78) <= Utilization(0.5, 0.5, 0.62) {
		t.Error("higher drive must raise utilisation")
	}
	// Out-of-range inputs are clamped.
	if Utilization(-5, 7, 3) < 0 || Utilization(-5, 7, 3) > 1 {
		t.Error("clamping failed")
	}
}

func TestHigherUtilizationMeansBetterPerfPerWatt(t *testing.T) {
	// The Fig. 16 mechanism: a framework that achieves k× the
	// throughput at higher (but sub-linear) power wins tokens/s/W.
	a100 := hw.MustGet("A100")
	lowW, _ := Draw(a100, 0.5)
	highW, _ := Draw(a100, 0.9)
	lowEff := TokensPerSecondPerWatt(1000, lowW)
	highEff := TokensPerSecondPerWatt(1800, highW) // 1.8x throughput
	if highEff <= lowEff {
		t.Errorf("high-util framework should win perf/W: %v vs %v", highEff, lowEff)
	}
}

func TestTokensPerSecondPerWattZeroWatts(t *testing.T) {
	if TokensPerSecondPerWatt(100, 0) != 0 {
		t.Error("zero watts must yield zero efficiency, not Inf")
	}
}

func TestEnergy(t *testing.T) {
	if Energy(100, 10) != 1000 {
		t.Error("energy must be watts × seconds")
	}
}

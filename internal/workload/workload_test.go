package workload

import (
	"testing"
	"testing/quick"
)

func TestGridSize(t *testing.T) {
	g := Grid(PaperBatches, PaperLengths)
	if len(g) != len(PaperBatches)*len(PaperLengths) {
		t.Fatalf("grid size %d", len(g))
	}
	for _, s := range g {
		if s.Input != s.Output {
			t.Error("grid specs must have equal input/output")
		}
		if err := s.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestBlendedGrid(t *testing.T) {
	g := BlendedGrid(1, PaperLengths)
	if len(g) != 25 {
		t.Fatalf("blended grid size %d, want 25 (Fig. 1b)", len(g))
	}
	seen := map[[2]int]bool{}
	for _, s := range g {
		if s.Batch != 1 {
			t.Error("blended grid batch must be fixed")
		}
		seen[[2]int{s.Input, s.Output}] = true
	}
	if len(seen) != 25 {
		t.Error("blended grid must cover all combinations")
	}
}

func TestTotalTokens(t *testing.T) {
	s := Spec{Batch: 64, Input: 1024, Output: 1024}
	if s.TotalTokens() != 64*2048 {
		t.Errorf("TotalTokens = %v", s.TotalTokens())
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{Batch: 0, Input: 1, Output: 1}).Validate(); err == nil {
		t.Error("batch 0 must fail")
	}
}

func TestPoissonTraceReproducible(t *testing.T) {
	cfg := TraceConfig{Seed: 9, Requests: 100, RatePerSec: 5, InputMean: 512, OutputMean: 128, LengthJitter: 0.5}
	a, err := PoissonTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := PoissonTrace(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace must be reproducible")
		}
	}
}

func TestPoissonTraceProperties(t *testing.T) {
	cfg := TraceConfig{Seed: 1, Requests: 2000, RatePerSec: 10, InputMean: 512, OutputMean: 128, LengthJitter: 0.3}
	reqs, err := PoissonTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals strictly increase; mean rate ≈ 10/s.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival <= reqs[i-1].Arrival {
			t.Fatal("arrivals must increase")
		}
	}
	rate := float64(len(reqs)) / reqs[len(reqs)-1].Arrival
	if rate < 8.5 || rate > 11.5 {
		t.Errorf("empirical rate = %v, want ~10", rate)
	}
	for _, r := range reqs {
		if r.Input < 1 || r.Output < 1 {
			t.Fatal("lengths must be positive")
		}
		lo := float64(cfg.InputMean) * (1 - cfg.LengthJitter - 0.01)
		hi := float64(cfg.InputMean) * (1 + cfg.LengthJitter + 0.01)
		if float64(r.Input) < lo || float64(r.Input) > hi {
			t.Fatalf("input %d outside jitter band [%v,%v]", r.Input, lo, hi)
		}
	}
}

func TestPoissonTraceErrors(t *testing.T) {
	if _, err := PoissonTrace(TraceConfig{}); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := PoissonTrace(TraceConfig{Requests: 1, RatePerSec: 1, InputMean: 1, OutputMean: 1, LengthJitter: 1.5}); err == nil {
		t.Error("jitter ≥ 1 must fail")
	}
}

func TestSpecValidateProperty(t *testing.T) {
	f := func(b, i, o int8) bool {
		s := Spec{Batch: int(b), Input: int(i), Output: int(o)}
		err := s.Validate()
		valid := s.Batch >= 1 && s.Input >= 1 && s.Output >= 1
		return (err == nil) == valid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package workload

// Versioned trace record/replay: any serving trace — synthesized or
// captured from production — can be written to a small self-describing
// file and replayed deterministically through any policy, replica
// count, and batching configuration. The format is a YAML-ish header
// (magic + version line, then "key: value" metadata) followed by a
// CSV body of one request per row:
//
//	llmbench-trace v1
//	source: poisson rate=10 seed=42
//	requests: 3
//	---
//	arrival_s,input_tokens,output_tokens
//	0.05954086040192683,481,130
//	0.1585619738626371,553,131
//	0.26885842810122786,512,118
//
// Arrival offsets are seconds since trace start, written with
// full-precision formatting (strconv 'g', -1) so Record → Replay is
// byte-exact: replaying a recorded trace yields the identical
// []Request (IDs are row indices) and therefore byte-identical Stats
// under the DES determinism contract. Rows must be in non-decreasing
// arrival order with finite, non-negative offsets and positive token
// counts; a "requests:" header, when present, must match the row
// count — a truncated file fails loudly instead of replaying a
// shorter day.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// traceMagic is the first line of every trace file; the trailing
// version number gates incompatible future revisions.
const traceMagic = "llmbench-trace v1"

// traceHeader is the CSV column line; replay rejects anything else so
// column reordering cannot silently swap inputs and outputs.
const traceHeader = "arrival_s,input_tokens,output_tokens"

// TraceMeta is the optional descriptive header of a trace file. Both
// fields are informative only; replay semantics depend solely on the
// body rows.
type TraceMeta struct {
	// Source describes how the trace was produced, e.g.
	// "poisson rate=10 seed=42" or "prod us-east 2026-08-01".
	Source string
	// Note is a free-form annotation.
	Note string
}

// ValidateTrace checks that a request slice is a replayable trace:
// non-empty, arrivals finite, non-negative, and non-decreasing, and
// token counts positive. Record refuses to write anything Replay
// would reject.
func ValidateTrace(reqs []Request) error {
	if len(reqs) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	prev := 0.0
	for i, r := range reqs {
		if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) || r.Arrival < 0 {
			return fmt.Errorf("workload: trace row %d has bad arrival %v (want finite, ≥ 0)", i, r.Arrival)
		}
		if r.Arrival < prev {
			return fmt.Errorf("workload: trace row %d arrival %v precedes row %d (%v); rows must be time-ordered",
				i, r.Arrival, i-1, prev)
		}
		if r.Input < 1 || r.Output < 1 {
			return fmt.Errorf("workload: trace row %d has non-positive lengths (input %d, output %d)",
				i, r.Input, r.Output)
		}
		prev = r.Arrival
	}
	return nil
}

// Record writes a trace in the versioned file format. The trace is
// validated first (see ValidateTrace); metadata values have newlines
// stripped so they cannot corrupt the header.
func Record(w io.Writer, reqs []Request, meta TraceMeta) error {
	if err := ValidateTrace(reqs); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, traceMagic)
	if s := headerSafe(meta.Source); s != "" {
		fmt.Fprintf(bw, "source: %s\n", s)
	}
	if n := headerSafe(meta.Note); n != "" {
		fmt.Fprintf(bw, "note: %s\n", n)
	}
	fmt.Fprintf(bw, "requests: %d\n", len(reqs))
	fmt.Fprintln(bw, "---")
	fmt.Fprintln(bw, traceHeader)
	for _, r := range reqs {
		bw.WriteString(strconv.FormatFloat(r.Arrival, 'g', -1, 64))
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(r.Input))
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(r.Output))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// headerSafe collapses a metadata value onto one line.
func headerSafe(s string) string {
	return strings.TrimSpace(strings.NewReplacer("\n", " ", "\r", " ").Replace(s))
}

// Replay reads a trace file written by Record (or by any producer of
// the documented format) back into a request slice with IDs assigned
// in row order. The returned trace satisfies ValidateTrace, so it can
// be handed to any Serve* simulator directly; replaying one recorded
// trace through different configurations is deterministic to the bit.
func Replay(r io.Reader) ([]Request, TraceMeta, error) {
	var meta TraceMeta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, meta, fmt.Errorf("workload: empty trace file")
	}
	if first := strings.TrimSpace(sc.Text()); first != traceMagic {
		return nil, meta, fmt.Errorf("workload: bad trace magic %q (want %q)", first, traceMagic)
	}
	// Header: "key: value" lines up to the "---" separator.
	wantRows := -1
	sawSep := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "---" {
			sawSep = true
			break
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, found := strings.Cut(line, ":")
		if !found {
			return nil, meta, fmt.Errorf("workload: bad trace header line %q (want key: value)", line)
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "source":
			meta.Source = val
		case "note":
			meta.Note = val
		case "requests":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, meta, fmt.Errorf("workload: bad trace header requests: %q", val)
			}
			wantRows = n
		default:
			// Unknown keys are ignored so v1 readers tolerate additive
			// metadata; unknown *columns* are not (see below).
		}
	}
	if !sawSep {
		return nil, meta, fmt.Errorf("workload: trace header not terminated by ---")
	}
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != traceHeader {
		return nil, meta, fmt.Errorf("workload: trace body must start with %q", traceHeader)
	}
	var reqs []Request
	if wantRows > 0 {
		reqs = make([]Request, 0, wantRows)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		row := len(reqs)
		aStr, rest, ok1 := strings.Cut(line, ",")
		inStr, outStr, ok2 := strings.Cut(rest, ",")
		if !ok1 || !ok2 || strings.Contains(outStr, ",") {
			return nil, meta, fmt.Errorf("workload: trace row %d: want 3 comma-separated fields, got %q", row, line)
		}
		arrival, errA := strconv.ParseFloat(strings.TrimSpace(aStr), 64)
		in, errI := strconv.Atoi(strings.TrimSpace(inStr))
		out, errO := strconv.Atoi(strings.TrimSpace(outStr))
		if errA != nil || errI != nil || errO != nil {
			return nil, meta, fmt.Errorf("workload: trace row %d: bad values in %q", row, line)
		}
		reqs = append(reqs, Request{ID: row, Arrival: arrival, Input: in, Output: out})
	}
	if err := sc.Err(); err != nil {
		return nil, meta, fmt.Errorf("workload: reading trace: %w", err)
	}
	if wantRows >= 0 && wantRows != len(reqs) {
		return nil, meta, fmt.Errorf("workload: trace header says %d requests but body has %d rows (truncated file?)",
			wantRows, len(reqs))
	}
	if err := ValidateTrace(reqs); err != nil {
		return nil, meta, err
	}
	return reqs, meta, nil
}

// NativeRate is a trace's empirical mean arrival rate: requests per
// second over the span from time zero to the last arrival. It is the
// reference intensity rate-rescaled replay scales against. Traces
// whose last arrival is not positive (a single instantaneous burst at
// t=0) have no meaningful rate and return an error.
func NativeRate(reqs []Request) (float64, error) {
	if len(reqs) == 0 {
		return 0, fmt.Errorf("workload: empty trace")
	}
	last := reqs[len(reqs)-1].Arrival
	if !(last > 0) {
		return 0, fmt.Errorf("workload: trace spans no time (last arrival %v); native rate undefined", last)
	}
	return float64(len(reqs)) / last, nil
}

// ScaleToRate replays a trace at a what-if intensity: arrival offsets
// are multiplied by NativeRate/rate so the rescaled trace's mean rate
// is exactly rate, while request order, lengths, and the relative
// shape of the arrival process (bursts, lulls) are preserved — the
// standard trace-scaling technique for capacity ladders over recorded
// traffic. Scaling to the native rate returns the input unchanged
// (aliased, not copied; traces are treated as immutable).
func ScaleToRate(reqs []Request, rate float64) ([]Request, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("workload: replay rate %v must be positive and finite", rate)
	}
	native, err := NativeRate(reqs)
	if err != nil {
		return nil, err
	}
	factor := native / rate
	if factor == 1 {
		return reqs, nil
	}
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		r.Arrival *= factor
		out[i] = r
	}
	return out, nil
}

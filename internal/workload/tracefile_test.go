package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func testTrace(t *testing.T, n int) []Request {
	t.Helper()
	reqs, err := PoissonTrace(TraceConfig{
		Seed: 7, Requests: n, RatePerSec: 12,
		InputMean: 256, OutputMean: 96, LengthJitter: 0.3,
	})
	if err != nil {
		t.Fatalf("PoissonTrace: %v", err)
	}
	return reqs
}

// Record → Replay must reproduce the exact request slice — arrivals to
// the last bit — and Record of the replayed slice must reproduce the
// exact file bytes. Byte-identical replayed Stats rest on this.
func TestTraceRoundTrip(t *testing.T) {
	reqs := testTrace(t, 500)
	var buf bytes.Buffer
	meta := TraceMeta{Source: "poisson seed=7 rate=12", Note: "round-trip test"}
	if err := Record(&buf, reqs, meta); err != nil {
		t.Fatalf("Record: %v", err)
	}
	first := buf.String()

	got, gotMeta, err := Replay(strings.NewReader(first))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if gotMeta != meta {
		t.Errorf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d requests, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("request %d: got %+v, want %+v", i, got[i], reqs[i])
		}
	}

	var buf2 bytes.Buffer
	if err := Record(&buf2, got, gotMeta); err != nil {
		t.Fatalf("second Record: %v", err)
	}
	if buf2.String() != first {
		t.Error("Record(Replay(Record(x))) is not byte-identical to Record(x)")
	}
}

func TestTraceRecordRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		reqs []Request
	}{
		{"empty", nil},
		{"nan arrival", []Request{{Arrival: math.NaN(), Input: 8, Output: 8}}},
		{"inf arrival", []Request{{Arrival: math.Inf(1), Input: 8, Output: 8}}},
		{"negative arrival", []Request{{Arrival: -1, Input: 8, Output: 8}}},
		{"out of order", []Request{
			{Arrival: 2, Input: 8, Output: 8}, {ID: 1, Arrival: 1, Input: 8, Output: 8},
		}},
		{"zero input", []Request{{Arrival: 0, Input: 0, Output: 8}}},
		{"zero output", []Request{{Arrival: 0, Input: 8, Output: 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Record(&buf, tc.reqs, TraceMeta{}); err == nil {
				t.Error("Record accepted an invalid trace")
			}
			if buf.Len() != 0 {
				t.Error("Record wrote bytes before rejecting")
			}
		})
	}
}

func TestTraceReplayRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"empty file", ""},
		{"bad magic", "not-a-trace v1\n---\n" + traceHeader + "\n0,8,8\n"},
		{"future version", "llmbench-trace v2\n---\n" + traceHeader + "\n0,8,8\n"},
		{"no separator", traceMagic + "\nsource: x\n" + traceHeader + "\n0,8,8\n"},
		{"bad header line", traceMagic + "\njust words\n---\n" + traceHeader + "\n0,8,8\n"},
		{"bad column line", traceMagic + "\n---\ninput,output,arrival\n0,8,8\n"},
		{"missing field", traceMagic + "\n---\n" + traceHeader + "\n0,8\n"},
		{"extra field", traceMagic + "\n---\n" + traceHeader + "\n0,8,8,9\n"},
		{"bad number", traceMagic + "\n---\n" + traceHeader + "\n0,eight,8\n"},
		{"nan arrival", traceMagic + "\n---\n" + traceHeader + "\nNaN,8,8\n"},
		{"no rows", traceMagic + "\n---\n" + traceHeader + "\n"},
		{"bad count", traceMagic + "\nrequests: zero\n---\n" + traceHeader + "\n0,8,8\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Replay(strings.NewReader(tc.data)); err == nil {
				t.Error("Replay accepted a malformed trace")
			}
		})
	}
}

// A truncated file — header promising more rows than the body holds —
// must fail loudly instead of replaying a shorter day.
func TestTraceReplayDetectsTruncation(t *testing.T) {
	reqs := testTrace(t, 100)
	var buf bytes.Buffer
	if err := Record(&buf, reqs, TraceMeta{}); err != nil {
		t.Fatalf("Record: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-10], "\n") + "\n"
	if _, _, err := Replay(strings.NewReader(truncated)); err == nil {
		t.Fatal("Replay accepted a truncated trace")
	} else if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncation error should say so, got: %v", err)
	}
}

// Unknown header keys are additive metadata v1 readers tolerate.
func TestTraceReplayIgnoresUnknownHeaderKeys(t *testing.T) {
	data := traceMagic + "\nfuture-key: whatever\nrequests: 1\n---\n" + traceHeader + "\n0.5,8,4\n"
	reqs, _, err := Replay(strings.NewReader(data))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(reqs) != 1 || reqs[0] != (Request{ID: 0, Arrival: 0.5, Input: 8, Output: 4}) {
		t.Errorf("got %+v", reqs)
	}
}

func TestNativeRateAndScaleToRate(t *testing.T) {
	reqs := testTrace(t, 400)
	native, err := NativeRate(reqs)
	if err != nil {
		t.Fatalf("NativeRate: %v", err)
	}
	wantNative := float64(len(reqs)) / reqs[len(reqs)-1].Arrival
	if native != wantNative {
		t.Errorf("native rate %v, want %v", native, wantNative)
	}

	// Scaling to the native rate aliases the input (traces are
	// immutable); scaling elsewhere rescales arrivals only.
	same, err := ScaleToRate(reqs, native)
	if err != nil {
		t.Fatalf("ScaleToRate(native): %v", err)
	}
	if &same[0] != &reqs[0] {
		t.Error("scaling to the native rate must alias the input")
	}
	doubled, err := ScaleToRate(reqs, 2*native)
	if err != nil {
		t.Fatalf("ScaleToRate(2×): %v", err)
	}
	gotRate, err := NativeRate(doubled)
	if err != nil {
		t.Fatalf("NativeRate(doubled): %v", err)
	}
	if math.Abs(gotRate-2*native) > 1e-9*native {
		t.Errorf("rescaled rate %v, want %v", gotRate, 2*native)
	}
	for i := range doubled {
		if doubled[i].Input != reqs[i].Input || doubled[i].Output != reqs[i].Output || doubled[i].ID != reqs[i].ID {
			t.Fatalf("row %d: rescaling changed more than arrivals", i)
		}
	}
	if err := ValidateTrace(doubled); err != nil {
		t.Errorf("rescaled trace invalid: %v", err)
	}

	for _, bad := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		if _, err := ScaleToRate(reqs, bad); err == nil {
			t.Errorf("ScaleToRate accepted rate %v", bad)
		}
	}
	burst := []Request{{Arrival: 0, Input: 8, Output: 8}, {ID: 1, Arrival: 0, Input: 8, Output: 8}}
	if _, err := NativeRate(burst); err == nil {
		t.Error("NativeRate accepted an instantaneous burst trace")
	}
}

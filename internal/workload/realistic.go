package workload

// Realistic serving traces beyond the fixed grids of §III-2: chat
// prompts and replies follow heavy-tailed (lognormal) length
// distributions, and arrivals come in bursts rather than a smooth
// Poisson stream. Both stress continuous batching and the paged KV
// cache harder than uniform traces do.

import (
	"fmt"
	"math"

	"llmbench/internal/trace"
)

// ChatTraceConfig parameterises a heavy-tailed chat workload.
type ChatTraceConfig struct {
	Seed     uint64
	Requests int

	// RatePerSec is the long-run mean arrival rate. BurstFactor ≥ 1
	// modulates it: bursts run at rate·BurstFactor, calm periods at
	// rate/BurstFactor, and calm dwell times are BurstFactor× longer
	// than burst dwells so the long-run mean stays RatePerSec (a
	// rate-preserving two-state MMPP). 1 = plain Poisson.
	RatePerSec  float64
	BurstFactor float64
	// BurstLenS is the mean dwell time of a burst (default 5 s); calm
	// periods dwell BurstFactor times longer.
	BurstLenS float64

	// Length distributions: lognormal with the given median and sigma
	// (sigma ~0.8 matches public chat datasets' heavy tails). Lengths
	// clamp to [16, MaxLen].
	InputMedian  int
	OutputMedian int
	Sigma        float64
	MaxLen       int

	// PrefixTokens prepends a fleet-wide shared system prompt to every
	// request: Input becomes PrefixTokens plus the lognormal
	// per-request draw (InputMedian then models only the private
	// suffix). The arrival process and random draws are untouched, so
	// a zero value generates the exact trace this knob predates —
	// byte-identical streams. Negative values are rejected.
	PrefixTokens int
}

// ChatTrace generates a reproducible heavy-tailed, bursty trace.
func ChatTrace(cfg ChatTraceConfig) ([]Request, error) {
	if cfg.Requests < 1 || cfg.RatePerSec <= 0 {
		return nil, fmt.Errorf("workload: bad chat trace config %+v", cfg)
	}
	if cfg.InputMedian < 16 || cfg.OutputMedian < 16 {
		return nil, fmt.Errorf("workload: medians must be ≥ 16")
	}
	if cfg.Sigma < 0 || cfg.Sigma > 2 {
		return nil, fmt.Errorf("workload: sigma %v out of [0, 2]", cfg.Sigma)
	}
	if cfg.BurstFactor < 1 {
		return nil, fmt.Errorf("workload: burst factor %v must be ≥ 1", cfg.BurstFactor)
	}
	if cfg.PrefixTokens < 0 {
		return nil, fmt.Errorf("workload: negative prefix length %d", cfg.PrefixTokens)
	}
	maxLen := cfg.MaxLen
	if maxLen == 0 {
		maxLen = 8192
	}
	burstLen := cfg.BurstLenS
	if burstLen <= 0 {
		burstLen = 5
	}
	rng := trace.NewRNG(cfg.Seed)

	// Box-Muller standard normal.
	normal := func() float64 {
		u1 := rng.Float64()
		for u1 == 0 {
			u1 = rng.Float64()
		}
		u2 := rng.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	logn := func(median int) int {
		v := float64(median) * math.Exp(cfg.Sigma*normal())
		if v < 16 {
			v = 16
		}
		if v > float64(maxLen) {
			v = float64(maxLen)
		}
		return int(v)
	}

	dwell := func(inBurst bool) float64 {
		if inBurst {
			return rng.Exp(burstLen)
		}
		return rng.Exp(burstLen * cfg.BurstFactor)
	}
	reqs := make([]Request, cfg.Requests)
	now := 0.0
	inBurst := false
	stateLeft := dwell(false)
	for i := range reqs {
		rate := cfg.RatePerSec / cfg.BurstFactor
		if inBurst {
			rate = cfg.RatePerSec * cfg.BurstFactor
		}
		gap := rng.Exp(1 / rate)
		now += gap
		stateLeft -= gap
		if stateLeft <= 0 {
			inBurst = !inBurst
			stateLeft = dwell(inBurst)
		}
		reqs[i] = Request{ID: i, Arrival: now, Input: cfg.PrefixTokens + logn(cfg.InputMedian), Output: logn(cfg.OutputMedian)}
	}
	return reqs, nil
}

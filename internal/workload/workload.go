// Package workload generates the benchmark workloads of §III-2: fixed
// input/output-length batches swept over the paper's grid (lengths
// 128–2048, batch sizes 1–64), blended-token grids (Fig. 1b), and
// Poisson-arrival serving traces for the continuous-batching
// scheduler.
package workload

import (
	"fmt"

	"llmbench/internal/trace"
)

// PaperLengths is the input/output length grid of §III-2.
var PaperLengths = []int{128, 256, 512, 1024, 2048}

// PaperBatches is the batch-size grid of §III-2.
var PaperBatches = []int{1, 16, 32, 64}

// Spec is one offline benchmark point: a batch of identical requests.
type Spec struct {
	Batch  int
	Input  int // prompt tokens per request
	Output int // generated tokens per request
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Batch < 1 || s.Input < 1 || s.Output < 1 {
		return fmt.Errorf("workload: non-positive spec %+v", s)
	}
	return nil
}

// TotalTokens is the paper's throughput numerator: batch × (input +
// output) tokens (Eq. 2).
func (s Spec) TotalTokens() float64 {
	return float64(s.Batch) * float64(s.Input+s.Output)
}

// Grid enumerates batch × length specs with equal input and output
// length — the workload of most figures.
func Grid(batches, lengths []int) []Spec {
	var out []Spec
	for _, b := range batches {
		for _, l := range lengths {
			out = append(out, Spec{Batch: b, Input: l, Output: l})
		}
	}
	return out
}

// BlendedGrid enumerates all input × output combinations at a fixed
// batch size (the Fig. 1b heatmap).
func BlendedGrid(batch int, lengths []int) []Spec {
	var out []Spec
	for _, in := range lengths {
		for _, outLen := range lengths {
			out = append(out, Spec{Batch: batch, Input: in, Output: outLen})
		}
	}
	return out
}

// Request is one serving request in an online trace.
type Request struct {
	ID      int
	Arrival float64 // seconds since trace start
	Input   int
	Output  int
}

// TraceConfig parameterises a Poisson serving trace.
type TraceConfig struct {
	Seed         uint64
	Requests     int
	RatePerSec   float64 // mean arrival rate
	InputMean    int     // mean prompt length
	OutputMean   int     // mean generation length
	LengthJitter float64 // ±fraction of uniform jitter on lengths
}

// PoissonTrace generates a reproducible request trace with
// exponential inter-arrivals and jittered lengths.
func PoissonTrace(cfg TraceConfig) ([]Request, error) {
	if cfg.Requests < 1 || cfg.RatePerSec <= 0 || cfg.InputMean < 1 || cfg.OutputMean < 1 {
		return nil, fmt.Errorf("workload: bad trace config %+v", cfg)
	}
	if cfg.LengthJitter < 0 || cfg.LengthJitter >= 1 {
		return nil, fmt.Errorf("workload: jitter %v out of [0,1)", cfg.LengthJitter)
	}
	rng := trace.NewRNG(cfg.Seed)
	reqs := make([]Request, cfg.Requests)
	now := 0.0
	jl := func(mean int) int {
		if cfg.LengthJitter == 0 {
			return mean
		}
		span := cfg.LengthJitter * float64(mean)
		v := float64(mean) - span + 2*span*rng.Float64()
		if v < 1 {
			v = 1
		}
		return int(v)
	}
	for i := range reqs {
		now += rng.Exp(1 / cfg.RatePerSec)
		reqs[i] = Request{ID: i, Arrival: now, Input: jl(cfg.InputMean), Output: jl(cfg.OutputMean)}
	}
	return reqs, nil
}

package workload

import (
	"math"
	"sort"
	"testing"
)

func chatCfg() ChatTraceConfig {
	return ChatTraceConfig{
		Seed: 4, Requests: 4000, RatePerSec: 10, BurstFactor: 4,
		InputMedian: 512, OutputMedian: 128, Sigma: 0.8,
	}
}

func TestChatTraceReproducible(t *testing.T) {
	a, err := ChatTrace(chatCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ChatTrace(chatCfg())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("chat trace must be deterministic")
		}
	}
}

func TestChatTraceLengthDistribution(t *testing.T) {
	reqs, err := ChatTrace(chatCfg())
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]int, len(reqs))
	for i, r := range reqs {
		ins[i] = r.Input
		if r.Input < 16 || r.Input > 8192 {
			t.Fatalf("input %d outside clamp", r.Input)
		}
	}
	sort.Ints(ins)
	median := float64(ins[len(ins)/2])
	if math.Abs(median-512)/512 > 0.15 {
		t.Errorf("input median %v, want ~512", median)
	}
	// Heavy tail: p99 well above the median (lognormal σ=0.8 → ~6.4x).
	p99 := float64(ins[int(float64(len(ins))*0.99)])
	if p99 < 3*median {
		t.Errorf("p99 %v not heavy-tailed vs median %v", p99, median)
	}
}

func TestChatTraceBurstiness(t *testing.T) {
	// The index of dispersion of arrival counts per second must exceed
	// 1 (Poisson) when BurstFactor > 1.
	disp := func(burst float64) float64 {
		cfg := chatCfg()
		cfg.BurstFactor = burst
		reqs, err := ChatTrace(cfg)
		if err != nil {
			t.Fatal(err)
		}
		end := reqs[len(reqs)-1].Arrival
		bins := make([]float64, int(end)+1)
		for _, r := range reqs {
			bins[int(r.Arrival)]++
		}
		var mean, varsum float64
		for _, b := range bins {
			mean += b
		}
		mean /= float64(len(bins))
		for _, b := range bins {
			varsum += (b - mean) * (b - mean)
		}
		return varsum / float64(len(bins)) / mean
	}
	bursty := disp(4)
	smooth := disp(1)
	if bursty < 2*smooth {
		t.Errorf("bursty dispersion %v must clearly exceed Poisson %v", bursty, smooth)
	}
	if smooth > 2 {
		t.Errorf("plain Poisson dispersion %v should be near 1", smooth)
	}
}

func TestChatTraceErrors(t *testing.T) {
	bad := chatCfg()
	bad.Requests = 0
	if _, err := ChatTrace(bad); err == nil {
		t.Error("zero requests must fail")
	}
	bad = chatCfg()
	bad.InputMedian = 2
	if _, err := ChatTrace(bad); err == nil {
		t.Error("tiny median must fail")
	}
	bad = chatCfg()
	bad.Sigma = 5
	if _, err := ChatTrace(bad); err == nil {
		t.Error("huge sigma must fail")
	}
	bad = chatCfg()
	bad.BurstFactor = 0.5
	if _, err := ChatTrace(bad); err == nil {
		t.Error("burst factor < 1 must fail")
	}
}

func TestChatTraceArrivalsIncrease(t *testing.T) {
	reqs, err := ChatTrace(chatCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival <= reqs[i-1].Arrival {
			t.Fatal("arrivals must strictly increase")
		}
	}
}

// Package quant models weight and KV-cache quantization (§IV-B3,
// Fig. 3 of the paper): a Scheme pairs a weight precision with a KV
// precision, is checked against hardware support (FP8 does not exist
// on A100), and carries the small output-quality penalty quantization
// costs (used when reporting perplexity next to quantized throughput).
package quant

import (
	"fmt"

	"llmbench/internal/dtype"
	"llmbench/internal/hw"
)

// Scheme is a weight/KV-cache precision pair, e.g. {fp16, fp8}.
type Scheme struct {
	Weights dtype.DType
	KV      dtype.DType
}

// FP16 is the paper's baseline scheme.
var FP16 = Scheme{Weights: dtype.FP16, KV: dtype.FP16}

// String renders the paper's "{w, kv}" notation.
func (s Scheme) String() string {
	return fmt.Sprintf("{%s, %s}", s.Weights, s.KV)
}

// SupportedOn reports whether the device can run the scheme. Weight
// precision needs hardware GEMM support — this is the constraint
// behind Fig. 3: "the absence of FP8 support on A100 limits the
// framework's ability to leverage low precision", so A100's only
// low-precision *weight* option is INT8. KV-cache precision needs only
// storage plus software conversion, which is why Fig. 3 legitimately
// runs {fp16, fp8} and {int8, fp8} on A100.
func (s Scheme) SupportedOn(d *hw.Device) error {
	if !d.Supports(s.Weights) {
		return fmt.Errorf("quant: %s has no %s GEMM support for weights", d.Name, s.Weights)
	}
	switch s.KV {
	case dtype.FP32, dtype.TF32, dtype.FP16, dtype.BF16, dtype.FP8, dtype.INT8:
		return nil
	}
	return fmt.Errorf("quant: %s KV-cache storage is not supported", s.KV)
}

// ComputeType is the precision the GEMMs execute in: quantized
// weights execute on the matching low-precision engine when the
// device has one; fp16 weights always execute at fp16.
func (s Scheme) ComputeType() dtype.DType { return s.Weights }

// PerplexityDelta is the additive perplexity degradation a scheme
// costs relative to fp16, following the published behaviour of
// GPTQ/AWQ-class methods ("without compromising the output quality"
// — small but non-zero).
func (s Scheme) PerplexityDelta() float64 {
	var d float64
	switch s.Weights {
	case dtype.FP16, dtype.BF16, dtype.FP32, dtype.TF32:
		d = 0
	case dtype.FP8:
		d += 0.015
	case dtype.INT8:
		d += 0.03
	case dtype.INT4:
		d += 0.12
	default:
		d += 0.3
	}
	switch s.KV {
	case dtype.FP16, dtype.BF16, dtype.FP32, dtype.TF32:
	case dtype.FP8:
		d += 0.01
	case dtype.INT8:
		d += 0.02
	default:
		d += 0.1
	}
	return d
}

// Fig3Schemes returns the hardware/framework/precision combinations of
// Fig. 3 (LLaMA-3-8B quantization benchmarking) in the paper's legend
// order.
type Fig3Combo struct {
	Device    string
	Framework string
	Scheme    Scheme
}

// Fig3Combos lists the nine legend entries of Fig. 3.
func Fig3Combos() []Fig3Combo {
	return []Fig3Combo{
		{"H100", "vLLM", Scheme{dtype.FP8, dtype.FP8}},
		{"H100", "vLLM", Scheme{dtype.FP16, dtype.FP16}},
		{"A100", "TRT-LLM", Scheme{dtype.INT8, dtype.INT8}},
		{"H100", "vLLM", Scheme{dtype.FP16, dtype.FP8}},
		{"A100", "TRT-LLM", Scheme{dtype.FP16, dtype.INT8}},
		{"A100", "vLLM", Scheme{dtype.FP16, dtype.FP16}},
		{"A100", "TRT-LLM", Scheme{dtype.INT8, dtype.FP8}},
		{"A100", "TRT-LLM", Scheme{dtype.FP16, dtype.FP8}},
		{"A100", "vLLM", Scheme{dtype.FP16, dtype.FP8}},
	}
}

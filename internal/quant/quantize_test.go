package quant

import (
	"math"
	"testing"
	"testing/quick"

	"llmbench/internal/dtype"
)

func TestQuantizeInt8RoundTrip(t *testing.T) {
	vals := []float64{-1, -0.5, 0, 0.25, 0.99, 1}
	codes, scale, err := QuantizeInt8(vals)
	if err != nil {
		t.Fatal(err)
	}
	rec := DequantizeInt8(codes, scale)
	for i := range vals {
		if math.Abs(vals[i]-rec[i]) > scale {
			t.Errorf("element %d: %v -> %v (scale %v)", i, vals[i], rec[i], scale)
		}
	}
	// Extremes map to ±127.
	if codes[0] != -127 || codes[5] != 127 {
		t.Errorf("extreme codes = %d, %d", codes[0], codes[5])
	}
}

func TestQuantizeInt8Degenerate(t *testing.T) {
	if _, _, err := QuantizeInt8(nil); err == nil {
		t.Error("empty tensor must fail")
	}
	codes, scale, err := QuantizeInt8([]float64{0, 0, 0})
	if err != nil || scale != 1 {
		t.Fatalf("all-zero tensor: %v %v", scale, err)
	}
	for _, c := range codes {
		if c != 0 {
			t.Error("zeros must stay zero")
		}
	}
}

func TestQuantizeInt8ErrorBound(t *testing.T) {
	// |error| ≤ scale/2 for in-range values — the rounding guarantee.
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r) / 1000
		}
		codes, scale, err := QuantizeInt8(vals)
		if err != nil {
			return false
		}
		rec := DequantizeInt8(codes, scale)
		for i := range vals {
			if math.Abs(vals[i]-rec[i]) > scale/2+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt4Grouped(t *testing.T) {
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = math.Sin(float64(i)) * float64(1+i/16) // varying scale per group
	}
	codes, scales, err := QuantizeInt4Grouped(vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(scales) != 4 {
		t.Fatalf("want 4 group scales, got %d", len(scales))
	}
	rec := DequantizeInt4Grouped(codes, scales, 16)
	for i := range vals {
		if math.Abs(vals[i]-rec[i]) > scales[i/16]/2+1e-12 {
			t.Errorf("element %d error too large: %v vs %v", i, vals[i], rec[i])
		}
	}
	for _, c := range codes {
		if c < -7 || c > 7 {
			t.Errorf("int4 code %d out of range", c)
		}
	}
	if _, _, err := QuantizeInt4Grouped(vals, 7); err == nil {
		t.Error("non-dividing group size must fail")
	}
}

func TestRoundFP8E4M3(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{448, 448},
		{1000, 448}, // clamps to max finite
		{-1000, -448},
		{1.0, 1.0}, // exactly representable
		{0.0625, 0.0625},
	}
	for _, c := range cases {
		if got := RoundFP8E4M3(c.in); got != c.want {
			t.Errorf("RoundFP8E4M3(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Relative error within one mantissa quantum (2^-3) for normal range.
	f := func(raw int16) bool {
		v := float64(raw) / 100
		if v == 0 {
			return true
		}
		got := RoundFP8E4M3(v)
		return math.Abs(got-v) <= math.Abs(v)/8+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalErrorOrdering(t *testing.T) {
	// The measured reconstruction errors must order fp8 < int8 < int4
	// — the same ordering PerplexityDelta encodes.
	fp8, err := RMSError(dtype.FP8, 1<<14, 11)
	if err != nil {
		t.Fatal(err)
	}
	int8v, err := RMSError(dtype.INT8, 1<<14, 11)
	if err != nil {
		t.Fatal(err)
	}
	int4v, err := RMSError(dtype.INT4, 1<<14, 11)
	if err != nil {
		t.Fatal(err)
	}
	// FP8's exponent absorbs the outlier channels that blow up
	// per-tensor absmax INT8 ("the power of the exponent"); group-wise
	// INT4 is competitive with per-tensor INT8 (the GPTQ result) but
	// still behind FP8.
	if !(fp8 < int8v && fp8 < int4v) {
		t.Errorf("fp8 must have the lowest measured error: fp8=%v int8=%v int4=%v", fp8, int8v, int4v)
	}
	// All small — quantization preserves quality (§IV-B3).
	if int8v > 0.25 || int4v > 0.25 {
		t.Errorf("RMS errors implausibly large: int8=%v int4=%v", int8v, int4v)
	}
	// fp16 is the reference: zero error.
	if e, err := RMSError(dtype.FP16, 1<<10, 1); err != nil || e != 0 {
		t.Errorf("fp16 error = %v, %v", e, err)
	}
	// Consistency with the PerplexityDelta constants: fp8 cheapest.
	dFP8 := Scheme{dtype.FP8, dtype.FP16}.PerplexityDelta()
	dINT8 := Scheme{dtype.INT8, dtype.FP16}.PerplexityDelta()
	dINT4 := Scheme{dtype.INT4, dtype.FP16}.PerplexityDelta()
	if !(dFP8 < dINT8 && dFP8 < dINT4) {
		t.Error("PerplexityDelta constants disagree with measured ordering")
	}
}

func TestRMSErrorErrors(t *testing.T) {
	if _, err := RMSError(dtype.INT8, 3, 1); err == nil {
		t.Error("tiny tensor must fail")
	}
	if _, err := RMSError(dtype.INT1, 1024, 1); err == nil {
		t.Error("unsupported precision must fail")
	}
}

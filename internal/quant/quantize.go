package quant

// Executable quantization: the paper's Fig. 3 sweeps precision
// schemes whose quality cost it takes from the GPTQ/AWQ literature.
// This file implements the actual rounding arithmetic — absmax INT8,
// group-wise INT4, and FP8-E4M3 — on synthetic weight tensors, so the
// package's quality ordering (fp8 < int8 < int4 error) is *measured*,
// not asserted. TestEmpiricalErrorOrdering pins the constants in
// PerplexityDelta to the measured ordering.

import (
	"errors"
	"math"

	"llmbench/internal/dtype"
	"llmbench/internal/trace"
)

// QuantizeInt8 quantizes values with per-tensor absmax scaling to
// signed 8-bit integers. It returns the codes and the scale such that
// value ≈ code·scale.
func QuantizeInt8(vals []float64) ([]int8, float64, error) {
	if len(vals) == 0 {
		return nil, 0, errors.New("quant: empty tensor")
	}
	absmax := 0.0
	for _, v := range vals {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	if absmax == 0 {
		return make([]int8, len(vals)), 1, nil
	}
	scale := absmax / 127
	out := make([]int8, len(vals))
	for i, v := range vals {
		q := math.RoundToEven(v / scale)
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		out[i] = int8(q)
	}
	return out, scale, nil
}

// DequantizeInt8 reverses QuantizeInt8.
func DequantizeInt8(codes []int8, scale float64) []float64 {
	out := make([]float64, len(codes))
	for i, c := range codes {
		out[i] = float64(c) * scale
	}
	return out
}

// QuantizeInt4Grouped quantizes with per-group absmax scaling to
// signed 4-bit integers (the GPTQ/AWQ storage layout). groupSize must
// divide len(vals).
func QuantizeInt4Grouped(vals []float64, groupSize int) ([]int8, []float64, error) {
	if len(vals) == 0 {
		return nil, nil, errors.New("quant: empty tensor")
	}
	if groupSize <= 0 || len(vals)%groupSize != 0 {
		return nil, nil, errors.New("quant: group size must divide tensor length")
	}
	codes := make([]int8, len(vals))
	scales := make([]float64, len(vals)/groupSize)
	for g := 0; g < len(scales); g++ {
		lo, hi := g*groupSize, (g+1)*groupSize
		absmax := 0.0
		for _, v := range vals[lo:hi] {
			if a := math.Abs(v); a > absmax {
				absmax = a
			}
		}
		scale := 1.0
		if absmax > 0 {
			scale = absmax / 7
		}
		scales[g] = scale
		for i := lo; i < hi; i++ {
			q := math.RoundToEven(vals[i] / scale)
			if q > 7 {
				q = 7
			}
			if q < -7 {
				q = -7
			}
			codes[i] = int8(q)
		}
	}
	return codes, scales, nil
}

// DequantizeInt4Grouped reverses QuantizeInt4Grouped.
func DequantizeInt4Grouped(codes []int8, scales []float64, groupSize int) []float64 {
	out := make([]float64, len(codes))
	for i, c := range codes {
		out[i] = float64(c) * scales[i/groupSize]
	}
	return out
}

// RoundFP8E4M3 rounds a value to the nearest representable FP8-E4M3
// number (1 sign, 4 exponent, 3 mantissa bits; max finite 448).
func RoundFP8E4M3(v float64) float64 {
	if v == 0 || math.IsNaN(v) {
		return v
	}
	sign := 1.0
	if v < 0 {
		sign = -1
		v = -v
	}
	const maxFinite = 448
	if v > maxFinite {
		return sign * maxFinite
	}
	exp := math.Floor(math.Log2(v))
	if exp < -6 {
		// Subnormal range: fixed quantum 2^-9.
		q := math.RoundToEven(v/0x1p-9) * 0x1p-9
		return sign * q
	}
	quantum := math.Exp2(exp - 3) // 3 mantissa bits
	return sign * math.RoundToEven(v/quantum) * quantum
}

// RMSError quantizes a deterministic synthetic Gaussian-ish weight
// tensor at the given precision and returns the relative RMS
// reconstruction error — the measured counterpart of the
// PerplexityDelta constants.
func RMSError(d dtype.DType, n int, seed uint64) (float64, error) {
	if n < 16 {
		return 0, errors.New("quant: tensor too small")
	}
	rng := trace.NewRNG(seed)
	vals := make([]float64, n)
	for i := range vals {
		// Sum of uniforms ≈ normal; weights are zero-mean with a few
		// large outliers like real LLM weights.
		s := 0.0
		for k := 0; k < 6; k++ {
			s += rng.Float64() - 0.5
		}
		vals[i] = s * 0.02
		if rng.Intn(128) == 0 {
			// Heavy outlier channels, the hallmark of LLM weight and
			// activation distributions (the reason absmax INT8 loses
			// to FP8's exponent — "the power of the exponent").
			vals[i] *= 64
		}
	}
	var rec []float64
	switch d {
	case dtype.FP16, dtype.BF16, dtype.FP32, dtype.TF32:
		return 0, nil // treated as the reference precision
	case dtype.FP8:
		rec = make([]float64, n)
		for i, v := range vals {
			rec[i] = RoundFP8E4M3(v)
		}
	case dtype.INT8:
		codes, scale, err := QuantizeInt8(vals)
		if err != nil {
			return 0, err
		}
		rec = DequantizeInt8(codes, scale)
	case dtype.INT4:
		codes, scales, err := QuantizeInt4Grouped(vals, 16)
		if err != nil {
			return 0, err
		}
		rec = DequantizeInt4Grouped(codes, scales, 16)
	default:
		return 0, errors.New("quant: no quantizer for " + d.String())
	}
	var num, den float64
	for i := range vals {
		e := vals[i] - rec[i]
		num += e * e
		den += vals[i] * vals[i]
	}
	return math.Sqrt(num / den), nil
}

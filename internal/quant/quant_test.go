package quant

import (
	"testing"

	"llmbench/internal/dtype"
	"llmbench/internal/hw"
)

func TestFP8UnsupportedOnA100(t *testing.T) {
	s := Scheme{Weights: dtype.FP8, KV: dtype.FP8}
	if err := s.SupportedOn(hw.MustGet("A100")); err == nil {
		t.Error("FP8 weights must be rejected on A100 (§IV-B3)")
	}
	if err := s.SupportedOn(hw.MustGet("H100")); err != nil {
		t.Errorf("FP8 on H100: %v", err)
	}
	// FP8 KV is storage-only and legal on A100 — Fig. 3 runs
	// {fp16, fp8} there.
	kvOnly := Scheme{Weights: dtype.FP16, KV: dtype.FP8}
	if err := kvOnly.SupportedOn(hw.MustGet("A100")); err != nil {
		t.Errorf("FP8 KV storage on A100 must be allowed: %v", err)
	}
	if err := (Scheme{dtype.FP16, dtype.INT4}).SupportedOn(hw.MustGet("A100")); err == nil {
		t.Error("INT4 KV storage must be rejected")
	}
}

func TestINT8SupportedOnA100(t *testing.T) {
	s := Scheme{Weights: dtype.INT8, KV: dtype.INT8}
	if err := s.SupportedOn(hw.MustGet("A100")); err != nil {
		t.Errorf("INT8 on A100: %v", err)
	}
}

func TestPerplexityDeltaOrdering(t *testing.T) {
	fp16 := FP16.PerplexityDelta()
	fp8 := Scheme{dtype.FP8, dtype.FP8}.PerplexityDelta()
	int8 := Scheme{dtype.INT8, dtype.INT8}.PerplexityDelta()
	int4 := Scheme{dtype.INT4, dtype.FP16}.PerplexityDelta()
	if fp16 != 0 {
		t.Errorf("fp16 delta = %v, want 0", fp16)
	}
	if !(fp8 < int8 && int8 < int4) {
		t.Errorf("delta ordering wrong: fp8=%v int8=%v int4=%v", fp8, int8, int4)
	}
	// All small: quantization works "without compromising the output
	// quality" (§IV-B3).
	if int8 > 0.1 {
		t.Errorf("int8 delta %v too large", int8)
	}
}

func TestString(t *testing.T) {
	if s := (Scheme{dtype.FP16, dtype.FP8}).String(); s != "{fp16, fp8}" {
		t.Errorf("String = %q", s)
	}
}

func TestFig3CombosValid(t *testing.T) {
	combos := Fig3Combos()
	if len(combos) != 9 {
		t.Fatalf("Fig. 3 has %d legend entries, want 9", len(combos))
	}
	for _, c := range combos {
		d := hw.MustGet(c.Device)
		if err := c.Scheme.SupportedOn(d); err != nil {
			t.Errorf("combo %v on %s invalid: %v", c.Scheme, c.Device, err)
		}
		if c.Device == "A100" && (c.Scheme.Weights == dtype.FP8) {
			t.Error("Fig. 3 must not place FP8 weights on A100")
		}
	}
}

func TestComputeType(t *testing.T) {
	if (Scheme{dtype.INT8, dtype.FP8}).ComputeType() != dtype.INT8 {
		t.Error("compute type must follow weight precision")
	}
}

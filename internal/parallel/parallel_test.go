package parallel

import (
	"testing"
	"testing/quick"

	"llmbench/internal/model"
)

var testLink = Link{BW: 600e9, Latency: 3e-6, Eff: 0.9}

func TestDevices(t *testing.T) {
	if (Plan{TP: 2, PP: 2, EP: 1}).Devices() != 4 {
		t.Error("TP=2,PP=2 must use 4 devices")
	}
	if Single.Devices() != 1 {
		t.Error("single plan must use 1 device")
	}
}

func TestValidate(t *testing.T) {
	dense := model.MustGet("LLaMA-3-8B")
	moe := model.MustGet("Mixtral-8x7B")
	if err := (Plan{TP: 4, PP: 1, EP: 1}).Validate(dense); err != nil {
		t.Errorf("TP=4 on LLaMA-3-8B: %v", err)
	}
	if err := (Plan{TP: 1, PP: 1, EP: 4}).Validate(dense); err == nil {
		t.Error("EP on a dense model must fail")
	}
	if err := (Plan{TP: 1, PP: 1, EP: 4}).Validate(moe); err != nil {
		t.Errorf("EP=4 on Mixtral: %v", err)
	}
	if err := (Plan{TP: 1, PP: 1, EP: 16}).Validate(moe); err == nil {
		t.Error("EP=16 > 8 experts must fail")
	}
	if err := (Plan{TP: 0, PP: 1, EP: 1}).Validate(dense); err == nil {
		t.Error("TP=0 must fail")
	}
	if err := (Plan{TP: 1, PP: 100, EP: 1}).Validate(dense); err == nil {
		t.Error("PP > layers must fail")
	}
}

func TestString(t *testing.T) {
	if Single.String() != "single" {
		t.Errorf("Single.String() = %q", Single.String())
	}
	if s := (Plan{TP: 2, PP: 2, EP: 1}).String(); s != "TP=2,PP=2" {
		t.Errorf("hybrid string = %q", s)
	}
}

func TestWeightShareTP(t *testing.T) {
	m := model.MustGet("LLaMA-3-8B")
	share := Plan{TP: 4, PP: 1, EP: 1}.WeightShare(m)
	if share < 0.24 || share > 0.26 {
		t.Errorf("TP=4 weight share = %v, want ~0.25", share)
	}
}

func TestWeightShareEPReplicatesAttention(t *testing.T) {
	m := model.MustGet("Mixtral-8x7B")
	ep := Plan{TP: 1, PP: 1, EP: 4}.WeightShare(m)
	tp := Plan{TP: 4, PP: 1, EP: 1}.WeightShare(m)
	if ep <= tp {
		t.Errorf("EP share %v must exceed TP share %v (attention replicated)", ep, tp)
	}
}

func TestStepCommOrdering(t *testing.T) {
	// For a decode step (few tokens), TP all-reduces cost more than PP
	// hand-offs — yet TP wins overall because it divides the walls;
	// here we only check comm pricing is positive and latency-sensible.
	m := model.MustGet("LLaMA-3-8B")
	tp := Plan{TP: 4, PP: 1, EP: 1}.StepComm(m, 64, 2, testLink)
	pp := Plan{TP: 1, PP: 4, EP: 1}.StepComm(m, 64, 2, testLink)
	if tp <= 0 || pp <= 0 {
		t.Fatalf("comm must be positive: tp=%v pp=%v", tp, pp)
	}
	if Single.StepComm(m, 64, 2, testLink) != 0 {
		t.Error("single-device comm must be zero")
	}
}

func TestStepCommScalesWithTokens(t *testing.T) {
	m := model.MustGet("LLaMA-3-8B")
	p := Plan{TP: 4, PP: 1, EP: 1}
	small := p.StepComm(m, 1, 2, testLink)
	big := p.StepComm(m, 1024, 2, testLink)
	if big <= small {
		t.Error("comm must grow with token count")
	}
}

func TestPipelineInflation(t *testing.T) {
	p := Plan{TP: 1, PP: 4, EP: 1}
	// Full microbatching: m=4 stages=4 → (4+3)/4 = 1.75.
	if got := p.PipelineInflation(64); got != 1.75 {
		t.Errorf("PP=4 inflation at batch 64 = %v, want 1.75", got)
	}
	// Batch 1 cannot fill the pipeline: (1+3)/1 = 4.
	if got := p.PipelineInflation(1); got != 4 {
		t.Errorf("PP=4 inflation at batch 1 = %v, want 4", got)
	}
	if Single.PipelineInflation(64) != 1 {
		t.Error("single plan must not inflate")
	}
}

func TestPipelineInflationBounds(t *testing.T) {
	f := func(pp, tok uint8) bool {
		p := Plan{TP: 1, PP: int(pp%8) + 1, EP: 1}
		infl := p.PipelineInflation(int(tok) + 1)
		return infl >= 1 && infl <= float64(p.PP)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEPImbalance(t *testing.T) {
	moe := model.MustGet("Mixtral-8x7B")
	dense := model.MustGet("LLaMA-3-8B")
	if got := (Plan{TP: 1, PP: 1, EP: 4}).EPImbalance(moe); got <= 1 || got > 1.5 {
		t.Errorf("EP imbalance = %v, want slightly above 1", got)
	}
	if (Plan{TP: 4, PP: 1, EP: 1}).EPImbalance(dense) != 1 {
		t.Error("non-EP plans must not pay imbalance")
	}
	// More experts per device → better balance.
	ep2 := (Plan{TP: 1, PP: 1, EP: 2}).EPImbalance(moe)
	ep8 := (Plan{TP: 1, PP: 1, EP: 8}).EPImbalance(moe)
	if ep2 >= ep8 {
		t.Errorf("imbalance must worsen with higher EP: EP2=%v EP8=%v", ep2, ep8)
	}
}

func TestAllReducePrimitives(t *testing.T) {
	if allReduce(1e6, 1, testLink) != 0 {
		t.Error("allreduce over 1 device is free")
	}
	if allToAll(1e6, 1, testLink) != 0 {
		t.Error("all-to-all over 1 device is free")
	}
	// Doubling volume should roughly double the bandwidth term.
	a := allReduce(1e9, 4, testLink)
	b := allReduce(2e9, 4, testLink)
	if b <= a {
		t.Error("allreduce must grow with volume")
	}
}

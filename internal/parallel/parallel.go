// Package parallel models the multi-device execution strategies the
// paper compares in §IV-C / Fig. 5: tensor parallelism (TP), pipeline
// parallelism (PP), expert parallelism (EP), and hybrid combinations.
//
// A Plan divides a model across TP·PP·EP devices and prices the
// communication each scheme incurs per iteration: TP pays two
// all-reduces per layer, PP pays point-to-point activation transfers
// plus a pipeline-fill bubble, EP pays a token all-to-all per MoE
// layer plus expert load imbalance.
package parallel

import (
	"fmt"
	"math"

	"llmbench/internal/model"
)

// Link describes the device interconnect (NVLink, Infinity Fabric,
// RoCE, inter-RDU network).
type Link struct {
	BW      float64 // bytes/s per direction
	Latency float64 // seconds per message
	Eff     float64 // achieved fraction of BW (framework collective quality)
}

// Plan is a parallel execution plan. Degrees multiply: the plan uses
// TP·PP·EP devices. All degrees must be ≥ 1.
type Plan struct {
	TP int // tensor-parallel degree
	PP int // pipeline stages
	EP int // expert-parallel degree
}

// Single is the trivial one-device plan.
var Single = Plan{TP: 1, PP: 1, EP: 1}

// Devices returns the number of devices the plan occupies.
func (p Plan) Devices() int { return p.TP * p.PP * p.EP }

// String renders e.g. "TP=2,PP=2".
func (p Plan) String() string {
	s := ""
	add := func(k string, v int) {
		if v > 1 {
			if s != "" {
				s += ","
			}
			s += fmt.Sprintf("%s=%d", k, v)
		}
	}
	add("TP", p.TP)
	add("PP", p.PP)
	add("EP", p.EP)
	if s == "" {
		return "single"
	}
	return s
}

// Validate checks the plan against a model.
func (p Plan) Validate(m *model.Config) error {
	switch {
	case p.TP < 1 || p.PP < 1 || p.EP < 1:
		return fmt.Errorf("parallel: degrees must be ≥1, got %+v", p)
	case p.EP > 1 && m.FFN != model.MoE:
		return fmt.Errorf("parallel: EP=%d requires an MoE model, %s is dense", p.EP, m.Name)
	case p.EP > m.Experts:
		return fmt.Errorf("parallel: EP=%d exceeds %s's %d experts", p.EP, m.Name, m.Experts)
	case p.TP > m.KVHeads && m.KVHeads > 0 && p.TP > 1 && m.Heads%p.TP != 0:
		return fmt.Errorf("parallel: TP=%d does not divide %s's %d heads", p.TP, m.Name, m.Heads)
	case p.PP > m.Layers:
		return fmt.Errorf("parallel: PP=%d exceeds %s's %d layers", p.PP, m.Name, m.Layers)
	}
	return nil
}

// WorkDivision is the factor by which per-device compute and weight
// traffic shrink. All three schemes divide the model evenly in the
// ideal case; EP imbalance is priced separately.
func (p Plan) WorkDivision() float64 { return float64(p.Devices()) }

// WeightShare returns the fraction of the model's weights resident on
// one device. TP and PP shard everything; EP shards only experts, so
// attention weights are replicated across the EP group — EP plans hold
// more than 1/N of the model.
func (p Plan) WeightShare(m *model.Config) float64 {
	attn := float64(m.Layers) * m.AttnParamsPerLayer()
	ffn := float64(m.Layers) * m.FFNParamsPerLayer()
	embed := m.EmbedParams()
	total := attn + ffn + embed
	perDev := attn/float64(p.TP*p.PP) + ffn/float64(p.TP*p.PP*p.EP) + embed/float64(p.TP*p.PP)
	return perDev / total
}

// allReduce prices a ring all-reduce of vol bytes across n devices.
func allReduce(vol float64, n int, l Link) float64 {
	if n <= 1 {
		return 0
	}
	steps := float64(2 * (n - 1))
	return steps*(vol/float64(n))/(l.BW*l.Eff) + steps*l.Latency
}

// p2p prices a point-to-point transfer.
func p2p(vol float64, l Link) float64 {
	return vol/(l.BW*l.Eff) + l.Latency
}

// allToAll prices a token all-to-all across n devices.
func allToAll(vol float64, n int, l Link) float64 {
	if n <= 1 {
		return 0
	}
	return vol*float64(n-1)/float64(n)/(l.BW*l.Eff) + float64(n-1)*l.Latency
}

// StepComm prices the communication of one iteration processing
// `tokens` activations (batch for decode, batch×seqLen for prefill) of
// width hidden at elemBytes.
func (p Plan) StepComm(m *model.Config, tokens int, elemBytes float64, l Link) float64 {
	act := float64(tokens) * float64(m.Hidden) * elemBytes
	var t float64
	if p.TP > 1 {
		// Two all-reduces per layer (after attention and after MLP).
		t += 2 * float64(m.Layers) * allReduce(act, p.TP, l)
	}
	if p.PP > 1 {
		// One activation hand-off per stage boundary per microbatch.
		micro := p.microbatches(tokens)
		per := act / float64(micro)
		t += float64(p.PP-1+micro-1) * p2p(per, l)
	}
	if p.EP > 1 {
		// Dispatch and combine all-to-alls per MoE layer.
		t += 2 * float64(m.Layers) * allToAll(act, p.EP, l)
	}
	return t
}

// microbatches is how many microbatches PP splits an iteration into.
func (p Plan) microbatches(tokens int) int {
	if p.PP <= 1 {
		return 1
	}
	m := tokens
	if m > p.PP {
		m = p.PP
	}
	if m < 1 {
		m = 1
	}
	return m
}

// PipelineInflation is the pipeline-fill bubble factor ≥ 1 applied to
// an iteration's execution walls: with m microbatches over PP stages,
// time = ideal × (m+PP−1)/m.
func (p Plan) PipelineInflation(tokens int) float64 {
	if p.PP <= 1 {
		return 1
	}
	m := float64(p.microbatches(tokens))
	return (m + float64(p.PP) - 1) / m
}

// EPImbalance is the expected slowdown of the FFN from uneven expert
// load under uniform top-k routing. With e experts per device the
// max-loaded device exceeds the mean by roughly 1/√e per expert group;
// calibrated to Fig. 5b where EP trails TP slightly.
func (p Plan) EPImbalance(m *model.Config) float64 {
	if p.EP <= 1 || m.FFN != model.MoE {
		return 1
	}
	perDev := float64(m.Experts) / float64(p.EP)
	return 1 + 0.22/math.Sqrt(perDev)
}

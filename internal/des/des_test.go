package des_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"llmbench/internal/des"
	"llmbench/internal/dtype"
	"llmbench/internal/engine"
	"llmbench/internal/framework"
	"llmbench/internal/hw"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/workload"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Config{
		Model:     model.MustGet("LLaMA-3-8B"),
		Device:    hw.MustGet("A100"),
		Framework: framework.MustGet("vLLM"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testAlloc(t *testing.T, capGiB float64) kvcache.Allocator {
	t.Helper()
	m := model.MustGet("LLaMA-3-8B")
	a, err := kvcache.NewPaged(16, m.KVBytesPerToken(dtype.FP16), capGiB*(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// runKernel builds a fresh kernel with n stations behind a
// round-robin router and runs the trace.
func runKernel(t *testing.T, cfg des.Config, n int, capGiB float64, reqs []workload.Request) des.Result {
	t.Helper()
	eng := testEngine(t)
	k := des.New(cfg)
	stations := make([]*des.Station, n)
	for i := range stations {
		stations[i] = k.NewStation(eng, testAlloc(t, capGiB))
	}
	rr := 0
	k.Route = func(now float64) *des.Station {
		s := stations[rr%n]
		rr++
		return s
	}
	res, err := k.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// modes returns the four kernel modes whose Results must be
// byte-identical: serial and parallel, each coalesced and stepped.
func modes(cfg des.Config) map[string]des.Config {
	serial, parallel := cfg, cfg
	serial.Parallelism = 1
	parallel.Parallelism = 4
	serialStepped, parallelStepped := serial, parallel
	serialStepped.Stepped = true
	parallelStepped.Stepped = true
	return map[string]des.Config{
		"serial":           serial,
		"parallel":         parallel,
		"serial-stepped":   serialStepped,
		"parallel-stepped": parallelStepped,
	}
}

func assertModesIdentical(t *testing.T, name string, cfg des.Config, n int, capGiB float64, reqs []workload.Request) des.Result {
	t.Helper()
	ref := runKernel(t, modes(cfg)["serial"], n, capGiB, reqs)
	for mode, mcfg := range modes(cfg) {
		got := runKernel(t, mcfg, n, capGiB, reqs)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: %s Result differs from serial coalesced reference", name, mode)
		}
	}
	return ref
}

// TestKernelModesIdenticalRandomized is the kernel's headline
// property: over seeded random workloads at several load levels,
// parallel == serial == stepped to the last bit — every timestamp,
// every aggregate, every per-station share.
func TestKernelModesIdenticalRandomized(t *testing.T) {
	cases := []struct {
		seed uint64
		rate float64
		out  int
	}{
		{seed: 1, rate: 0.8, out: 384},
		{seed: 2, rate: 3, out: 256},
		{seed: 3, rate: 12, out: 96},
	}
	for _, c := range cases {
		reqs, err := workload.PoissonTrace(workload.TraceConfig{
			Seed: c.seed, Requests: 48, RatePerSec: c.rate,
			InputMean: 256, OutputMean: c.out, LengthJitter: 0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := assertModesIdentical(t, "randomized", des.Config{MaxBatch: 8}, 3, 16, reqs)
		if len(res.Finished) != 48 {
			t.Errorf("seed %d: completed %d/48", c.seed, len(res.Finished))
		}
	}
}

// TestKernelEqualTimestampTies pins the tie-breaking contract:
// arrivals at one instant are routed in trace order before any
// station event at that instant runs, in every mode.
func TestKernelEqualTimestampTies(t *testing.T) {
	var reqs []workload.Request
	id := 0
	for wave := 0; wave < 6; wave++ {
		at := float64(wave) * 2 // waves of 5 simultaneous arrivals
		for i := 0; i < 5; i++ {
			reqs = append(reqs, workload.Request{
				ID: id, Input: 128 + 32*i, Output: 64 + 16*(id%3), Arrival: at,
			})
			id++
		}
	}
	res := assertModesIdentical(t, "equal-timestamps", des.Config{MaxBatch: 4}, 4, 16, reqs)
	if len(res.Finished) != len(reqs) {
		t.Fatalf("completed %d/%d", len(res.Finished), len(reqs))
	}
	// Same-instant waves must route deterministically: request IDs
	// 0..4 land on stations 0..4 round-robin, so each station's
	// completion count is identical across runs (already asserted by
	// DeepEqual) and every request finished after it arrived.
	for _, r := range res.Finished {
		if r.Started < r.Arrival || r.Finished <= r.Arrival {
			t.Errorf("request %d timeline inconsistent: %+v", r.ID, r)
		}
	}
}

// TestKernelPreemptionMidWindow drives the preemptive policy into KV
// exhaustion inside would-be coalesced windows on multiple stations
// at once: evictions and requeues must reproduce identically in every
// mode.
func TestKernelPreemptionMidWindow(t *testing.T) {
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 9, Requests: 24, RatePerSec: 3,
		InputMean: 256, OutputMean: 512, LengthJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := assertModesIdentical(t, "preemption",
		des.Config{MaxBatch: 6, Preemptive: true}, 2, 0.3, reqs)
	if res.Preemptions == 0 {
		t.Fatal("a tiny KV pool must force preemptions inside windows")
	}
	if len(res.Finished) != 24 {
		t.Errorf("completed %d/24 under preemption", len(res.Finished))
	}
	preempted := 0
	for _, r := range res.Finished {
		preempted += r.Preempted
	}
	if preempted != res.Preemptions {
		t.Errorf("per-request Preempted sum %d != kernel count %d", preempted, res.Preemptions)
	}
}

// TestKernelChunkedPrefillModes covers the fused prefill-slice path
// (sched's Dynamic-SplitFuse policy) across every mode.
func TestKernelChunkedPrefillModes(t *testing.T) {
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 4, Requests: 30, RatePerSec: 4,
		InputMean: 768, OutputMean: 96, LengthJitter: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := assertModesIdentical(t, "chunked-prefill",
		des.Config{MaxBatch: 8, Preemptive: true, ChunkedPrefill: true, PrefillChunk: 256}, 2, 16, reqs)
	if len(res.Finished) != 30 {
		t.Errorf("completed %d/30", len(res.Finished))
	}
}

// TestKernelSinkOrderAndModes pins the streaming completion hand-off:
// with a Sink installed, completions are delivered incrementally in
// exactly the global (finish time, request ID) order of the ledger a
// sink-less run returns — in every kernel mode, so a streaming
// aggregator's float summation order is byte-identical to the exact
// path's — the ledger stays empty, and Completed still counts.
func TestKernelSinkOrderAndModes(t *testing.T) {
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 21, Requests: 40, RatePerSec: 6,
		InputMean: 256, OutputMean: 128, LengthJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := des.Config{MaxBatch: 6, Preemptive: true}
	ref := runKernel(t, modes(base)["serial"], 3, 16, reqs)
	if len(ref.Finished) != len(reqs) {
		t.Fatalf("reference completed %d/%d", len(ref.Finished), len(reqs))
	}
	for mode, mcfg := range modes(base) {
		eng := testEngine(t)
		k := des.New(mcfg)
		stations := make([]*des.Station, 3)
		for i := range stations {
			stations[i] = k.NewStation(eng, testAlloc(t, 16))
		}
		rr := 0
		k.Route = func(now float64) *des.Station {
			s := stations[rr%len(stations)]
			rr++
			return s
		}
		var streamed []des.RequestStats
		k.Sink = func(r des.RequestStats) { streamed = append(streamed, r) }
		res, err := k.Run(reqs)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(res.Finished) != 0 {
			t.Errorf("%s: Sink runs must not also build the ledger (%d entries)", mode, len(res.Finished))
		}
		if res.Completed != len(reqs) {
			t.Errorf("%s: Completed %d/%d", mode, res.Completed, len(reqs))
		}
		if !reflect.DeepEqual(streamed, ref.Finished) {
			t.Errorf("%s: Sink sequence differs from the sorted ledger", mode)
		}
	}
}

// TestKernelRunOnce pins the single-use contract: a second Run would
// silently reuse dirty station state, so it must fail with the named
// error instead.
func TestKernelRunOnce(t *testing.T) {
	reqs := []workload.Request{{ID: 0, Input: 64, Output: 8, Arrival: 0}}
	k := des.New(des.Config{MaxBatch: 4})
	k.NewStation(testEngine(t), testAlloc(t, 1))
	if _, err := k.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(reqs); !errors.Is(err, des.ErrKernelReused) {
		t.Errorf("second Run: got %v, want ErrKernelReused", err)
	}
}

// TestKernelScratchReuseIdentical pins the arena-recycling contract:
// kernels built over a shared Scratch — station shells, free lists,
// and event buffers all recycled, across varying fleet sizes — return
// Results byte-identical to fresh kernels.
func TestKernelScratchReuseIdentical(t *testing.T) {
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 13, Requests: 40, RatePerSec: 5,
		InputMean: 256, OutputMean: 128, LengthJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := testEngine(t)
	cfg := des.Config{MaxBatch: 6, Preemptive: true}
	sc := &des.Scratch{}
	// Vary the station count so later runs both pop recycled shells
	// and allocate fresh ones.
	for round, n := range []int{3, 2, 3} {
		ref := runKernel(t, cfg, n, 16, reqs)
		k := des.New(cfg)
		k.Reuse(sc)
		stations := make([]*des.Station, n)
		for i := range stations {
			stations[i] = k.NewStation(eng, testAlloc(t, 16))
		}
		rr := 0
		k.Route = func(now float64) *des.Station {
			s := stations[rr%n]
			rr++
			return s
		}
		got, err := k.Run(reqs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		k.Release()
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("round %d (%d stations): recycled-kernel Result differs from fresh kernel", round, n)
		}
	}
}

// TestKernelValidation covers the kernel's own error paths.
func TestKernelValidation(t *testing.T) {
	reqs := []workload.Request{{ID: 0, Input: 64, Output: 8, Arrival: 0}}
	if _, err := des.New(des.Config{MaxBatch: 4}).Run(reqs); err == nil {
		t.Error("no stations must fail")
	}
	k := des.New(des.Config{})
	k.NewStation(testEngine(t), testAlloc(t, 1))
	if _, err := k.Run(reqs); err == nil {
		t.Error("MaxBatch 0 must fail")
	}
	k = des.New(des.Config{MaxBatch: 4})
	k.NewStation(testEngine(t), testAlloc(t, 1))
	if _, err := k.Run(nil); err == nil {
		t.Error("empty trace must fail")
	}
	k = des.New(des.Config{MaxBatch: 4})
	k.NewStation(nil, nil)
	if _, err := k.Run(reqs); err == nil {
		t.Error("incomplete station must fail")
	}
	// An unadmittable request must fail fast, not hang the loop.
	k = des.New(des.Config{MaxBatch: 4, Preemptive: true})
	k.NewStation(testEngine(t), testAlloc(t, 0.01))
	if _, err := k.Run([]workload.Request{{ID: 0, Input: 100000, Output: 8, Arrival: 0}}); err == nil {
		t.Error("an unadmittable request must error, not hang")
	}
	// Non-finite arrivals would never match the delivery barrier and
	// spin the loop forever; they must be rejected up front.
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		k = des.New(des.Config{MaxBatch: 4})
		k.NewStation(testEngine(t), testAlloc(t, 1))
		if _, err := k.Run([]workload.Request{{ID: 0, Input: 64, Output: 8, Arrival: bad}}); err == nil {
			t.Errorf("arrival %v must error, not hang", bad)
		}
	}
}

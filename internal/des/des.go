// Package des is the discrete-event serving kernel shared by every
// serving simulator in the repository: the single-replica continuous
// scheduler (internal/sched), the multi-replica cluster router, and
// the autoscaler (internal/cluster) are all thin policy layers over
// the one event loop defined here.
//
// # Event model
//
// The kernel advances a set of stations (replica simulators, each
// owning an engine and a private KV allocator) over a shared trace of
// request arrivals. Four event kinds exist:
//
//   - arrival: a request enters the system and is routed to a station
//     by the Route callback (admission/routing policy).
//   - scale-tick: fired immediately before each arrival when a
//     ScaleTick handler is registered; the autoscaler uses it to add
//     or retire stations.
//   - window-exhausted: a station's next scheduler iteration is due —
//     either a single stepped iteration (Config.Stepped) or a
//     coalesced fast-forward over every identical decode iteration up
//     to the next state change (CoalesceWindow). Coalescing is the
//     kernel's only stepping primitive; Stepped is a kernel mode that
//     caps every window at one iteration. Static stations
//     (Config.Static) degenerate to one window per batch: admission
//     happens only at batch boundaries, so the whole run-to-completion
//     is one event that no arrival can cut.
//   - completion: requests finishing inside a window; recorded in the
//     completion ledger at the window's end time and merged into
//     Result.Finished.
//
// # Determinism contract
//
// Ties at equal timestamps break deterministically: arrivals at one
// instant are processed in trace order (the sort is stable), a
// scale-tick always precedes the arrival that triggered it, and a
// station's window-exhausted event at time t runs after every arrival
// at t (so admission sees the newly routed request, exactly as a
// time-ordered queue with arrival-first tie-breaking would order
// them). The completion ledger is sorted by (finish time, request ID)
// before aggregation, so Stats never depend on which station's events
// happened to be appended first.
//
// # Parallelism
//
// Stations interact only at arrival instants (routing and scale
// decisions read queue lengths across stations); between two
// consecutive arrival times every station evolves independently. The
// kernel exploits this with a conservative time-window barrier: all
// station events strictly before the next arrival run concurrently on
// per-station goroutines (Config.Parallelism ≥ 2), then the kernel
// joins and processes the arrival serially. Because each station's
// trajectory is a pure function of its own state and the barrier
// time, Stats are byte-identical at any Parallelism — the property
// tests assert serial == parallel == Stepped to the last bit.
package des

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/pool"
	"llmbench/internal/workload"
)

// Config parameterises a kernel run. The scheduling knobs apply to
// every station; routing and scaling policy live in the callbacks.
type Config struct {
	// MaxBatch caps each station's concurrent running set.
	MaxBatch int

	// ChunkedPrefill enables Dynamic-SplitFuse-style admission:
	// prompts prefill in PrefillChunk-token slices fused into decode
	// iterations instead of one batched admission prefill.
	ChunkedPrefill bool
	// PrefillChunk is the slice size in tokens (default 512).
	PrefillChunk int

	// Static selects pre-Orca static batching: a station collects up
	// to MaxBatch arrived requests (skipping any whose full
	// input+output reservation does not fit — admission scans past
	// blocked requests instead of head-blocking), runs the batch to
	// completion padded to its longest prompt and generation, then
	// repeats. Admission happens only at batch boundaries, so the
	// whole batch run is a single window-exhausted event that no
	// arrival can cut, and the policy never preempts or extends a
	// reservation. ChunkedPrefill and Preemptive do not apply to
	// static stations; Stepped is a no-op for them (the batch run has
	// no intermediate state to step through).
	Static bool

	// Preemptive selects the single-replica scheduler's bookkeeping:
	// every decode step extends its sequence's KV reservation —
	// including the completing step — and an out-of-memory extension
	// evicts the sequence and requeues it (recompute-on-resume)
	// instead of failing the run. Non-preemptive stations treat a
	// completing sequence as not growing its reservation and surface
	// ErrOutOfMemory as a hard error.
	Preemptive bool

	// Stepped disables iteration coalescing, advancing one decode
	// iteration per window-exhausted event — the O(output tokens)
	// reference path the coalesced fast-forward is tested against.
	// Output is byte-identical either way; Stepped only costs time.
	Stepped bool

	// Parallelism ≥ 2 advances stations on that many goroutines
	// between arrival barriers; values ≤ 1 advance them serially.
	// Stats are byte-identical at any setting.
	Parallelism int
}

// Kernel drives stations over a trace. Build one with New, add
// stations with NewStation (also legal mid-run, from a ScaleTick
// handler), set the policy callbacks, then Run.
type Kernel struct {
	// Route picks the station for an arriving request. nil routes
	// everything to station 0 (the single-replica scheduler).
	Route func(now float64) *Station
	// ScaleTick, when non-nil, fires immediately before each arrival
	// is routed — the autoscaler's hook for adding and retiring
	// stations. An error aborts the run.
	ScaleTick func(now float64) error
	// Sink, when non-nil, receives each completed request's lifecycle
	// incrementally instead of the kernel retaining a ledger:
	// Result.Finished stays empty and per-station completion buffers
	// are drained at every arrival barrier, so memory is bounded by
	// in-flight work rather than trace length. Completions are
	// delivered in the same global (finish time, request ID) order
	// Result.Finished would have — the concatenation of the per-barrier
	// flushes is exactly the sorted ledger, because once every station
	// has advanced to barrier t any future completion finishes at or
	// after t, and completions tied at one instant always flush
	// together. Called on the kernel's goroutine, never concurrently.
	Sink func(RequestStats)

	cfg      Config
	stations []*Station
	arrivals []float64      // sorted arrival times (window bounds)
	due      []int          // reused per-barrier due-station index buffer
	flushBuf []RequestStats // reused Sink merge buffer
}

// New creates an empty kernel.
func New(cfg Config) *Kernel { return &Kernel{cfg: cfg} }

// NewStation adds a station owning the given engine and allocator.
// The allocator must be private to the station; the engine may be
// shared (engines are immutable and concurrency-safe).
func (k *Kernel) NewStation(eng *engine.Engine, alloc kvcache.Allocator) *Station {
	s := &Station{ID: len(k.stations), Engine: eng, Alloc: alloc, cfg: k.cfg, nextAt: -1}
	k.stations = append(k.stations, s)
	return s
}

// Stations returns the live station list (including retired ones), in
// creation order.
func (k *Kernel) Stations() []*Station { return k.stations }

// StationResult summarises one station after Run.
type StationResult struct {
	Completed int
	BusyS     float64 // time spent executing iterations
	Retired   bool
}

// Result is a completed kernel run.
type Result struct {
	// Finished holds every completed request, sorted by (finish time,
	// request ID) — the representation-independent order both the
	// stepped and coalesced paths agree on byte-for-byte. Empty when a
	// Sink streamed the completions out instead.
	Finished []RequestStats
	// Completed counts completed requests — the completeness signal
	// that remains valid when a Sink leaves Finished empty.
	Completed int
	// MakespanS is the end of the last completed work. The event
	// clock cannot serve here: a window-exhausted event starts before
	// the work it prices ends, and a coalesced event starts a whole
	// window earlier than a stepped one — completion times are what
	// both paths share.
	MakespanS   float64
	Preemptions int
	// MaxIterationS is the longest single scheduler iteration across
	// all stations — the worst token-level stall any running request
	// experienced.
	MaxIterationS float64
	// PerStation reports each station's share, in creation order.
	PerStation []StationResult
}

// Run delivers the trace through the policy callbacks and drains
// every station. It may be called once per kernel.
func (k *Kernel) Run(reqs []workload.Request) (Result, error) {
	if len(k.stations) == 0 {
		return Result{}, errors.New("des: no stations")
	}
	if k.cfg.MaxBatch < 1 {
		return Result{}, errors.New("des: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return Result{}, errors.New("des: empty trace")
	}
	for _, s := range k.stations {
		if s.Engine == nil || s.Alloc == nil {
			return Result{}, fmt.Errorf("des: station %d incomplete", s.ID)
		}
	}
	route := k.Route
	if route == nil {
		route = func(float64) *Station { return k.stations[0] }
	}

	// Arrivals at equal timestamps keep trace order: stable sort, and
	// the delivery loop below drains every arrival at one instant
	// before any station event at that instant runs. Already-ordered
	// traces (recorded replays, generator output) are aliased rather
	// than copied — the kernel never mutates the slice — so day-scale
	// replays do not pay an O(n) copy per point.
	ordered := reqs
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival }) {
		ordered = make([]workload.Request, len(reqs))
		copy(ordered, reqs)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	}
	k.arrivals = make([]float64, len(ordered))
	for i, r := range ordered {
		if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) {
			// A NaN arrival would never compare equal to the barrier
			// time and the delivery loop would spin forever.
			return Result{}, fmt.Errorf("des: request %d has non-finite arrival %v", r.ID, r.Arrival)
		}
		k.arrivals[i] = r.Arrival
	}

	for i := 0; i < len(ordered); {
		t := ordered[i].Arrival
		// Conservative time-window barrier: every station event
		// strictly before the next arrival is independent of it.
		if err := k.advanceAll(t); err != nil {
			return Result{}, err
		}
		if k.Sink != nil {
			k.flush(t)
		}
		for i < len(ordered) && ordered[i].Arrival == t {
			if k.ScaleTick != nil {
				if err := k.ScaleTick(t); err != nil {
					return Result{}, err
				}
			}
			s := route(t)
			if s == nil {
				return Result{}, errors.New("des: router returned no station")
			}
			s.enqueue(queued{req: ordered[i]})
			if s.nextAt < 0 {
				s.nextAt = t // wake an idle station at the arrival instant
			}
			i++
		}
	}
	if err := k.advanceAll(math.Inf(1)); err != nil {
		return Result{}, err
	}
	if k.Sink != nil {
		k.flush(math.Inf(1))
	}

	return k.collect(), nil
}

// flush streams every completion that can no longer be reordered out
// to the Sink: after all stations have advanced to the barrier, any
// future completion finishes at or after it, so completions strictly
// before the barrier are final. Each station's buffer is appended in
// non-decreasing finish order (finish records at monotone event end
// times), so the final prefix is a simple scan; the merged batch is
// sorted by (finish time, request ID) before delivery, making the
// concatenated flushes exactly the order Result.Finished would have.
// Runs on the kernel's goroutine between barriers, when stations are
// quiescent — correct at any Parallelism.
func (k *Kernel) flush(barrier float64) {
	buf := k.flushBuf[:0]
	for _, s := range k.stations {
		n := 0
		for n < len(s.finished) && s.finished[n].Finished < barrier {
			n++
		}
		if n == 0 {
			continue
		}
		buf = append(buf, s.finished[:n]...)
		rest := copy(s.finished, s.finished[n:])
		s.finished = s.finished[:rest]
	}
	k.flushBuf = buf
	if len(buf) == 0 {
		return
	}
	// Most barriers flush a single completion; sort.Slice's closure
	// allocation is worth skipping a million times a day.
	if len(buf) > 1 {
		SortByCompletion(buf)
	}
	for _, r := range buf {
		k.Sink(r)
	}
}

// advanceAll runs every station's due events up to (strictly before)
// the barrier, serially or on per-station goroutines. Stations touch
// only their own state plus the immutable arrival times and the
// engine's concurrency-safe memo tables, so the two modes are
// byte-identical; error selection is by earliest (event time, station
// ID), which is deterministic in both.
func (k *Kernel) advanceAll(barrier float64) error {
	stations := k.stations
	// Fan out only the stations with due work: under dense arrivals
	// most barriers wake one or two stations (a coalesced window ends
	// at or after the arrival that cut it), and spawning workers for
	// idle stations would cost more than it buys. The post-trace
	// drain (barrier = +Inf) is where every station is due at once —
	// and where the big windows make goroutines pay.
	k.due = k.due[:0]
	for i, s := range stations {
		if s.nextAt >= 0 && s.nextAt < barrier {
			k.due = append(k.due, i)
		}
	}
	if k.cfg.Parallelism >= 2 && len(k.due) >= 2 {
		workers := k.cfg.Parallelism
		if workers > len(k.due) {
			workers = len(k.due)
		}
		// The callback never returns an error, so the pool cannot
		// abort early: every due station reaches the barrier in
		// every mode, keeping even failure states deterministic.
		_ = pool.ForEach(len(k.due), workers, func(i int) error {
			stations[k.due[i]].advance(barrier, k.arrivals)
			return nil
		})
	} else {
		for _, i := range k.due {
			stations[i].advance(barrier, k.arrivals)
		}
	}
	var firstErr error
	at := math.Inf(1)
	for _, s := range stations {
		if s.err != nil && (firstErr == nil || s.errAt < at) {
			firstErr, at = s.err, s.errAt
		}
	}
	return firstErr
}

// collect merges the per-station ledgers into a Result.
func (k *Kernel) collect() Result {
	total := 0
	for _, s := range k.stations {
		total += len(s.finished)
	}
	finished := make([]RequestStats, 0, total)
	for _, s := range k.stations {
		finished = append(finished, s.finished...)
	}
	SortByCompletion(finished)
	res := Result{Finished: finished}
	for _, s := range k.stations {
		res.Completed += s.done
		if s.lastDone > res.MakespanS {
			res.MakespanS = s.lastDone
		}
		if s.maxIter > res.MaxIterationS {
			res.MaxIterationS = s.maxIter
		}
		res.Preemptions += s.preempts
		res.PerStation = append(res.PerStation, StationResult{
			Completed: s.done, BusyS: s.busy, Retired: s.Retired,
		})
	}
	return res
}

// nextArrivalAfter returns the earliest arrival strictly after now,
// or -1 when none remain — the bound that keeps coalesced windows
// from crossing a routing decision. Pure over the sorted trace, so
// concurrent stations may query it at unrelated times.
func nextArrivalAfter(arrivals []float64, now float64) float64 {
	i := sort.SearchFloat64s(arrivals, now)
	for i < len(arrivals) && arrivals[i] <= now {
		i++
	}
	if i == len(arrivals) {
		return -1
	}
	return arrivals[i]
}

// SortByCompletion puts finished requests in completion order with a
// request-ID tie-break. Stations append completions in event order,
// which depends on how many iterations each event carries — a
// coalesced window surfaces its completions when the window ends, a
// stepped run interleaves them with other stations' events — so the
// raw append order is representation-dependent. Completion times are
// not: sorting on them makes Stats (including the float summation
// order inside sched.Summarize) identical for every kernel mode.
func SortByCompletion(done []RequestStats) {
	sort.Slice(done, func(i, j int) bool {
		if done[i].Finished != done[j].Finished {
			return done[i].Finished < done[j].Finished
		}
		return done[i].ID < done[j].ID
	})
}

// RequestStats records one request's lifecycle. (internal/sched
// aliases this type; it predates the kernel.)
type RequestStats struct {
	ID        int
	Input     int
	Output    int
	Arrival   float64
	Started   float64 // when prefill began
	FirstTok  float64 // when the first output token appeared
	Finished  float64
	Preempted int // times this request was evicted and restarted
}

// Latency is the request's end-to-end time.
func (r RequestStats) Latency() float64 { return r.Finished - r.Arrival }

// QueueDelay is the time spent waiting before prefill.
func (r RequestStats) QueueDelay() float64 { return r.Started - r.Arrival }

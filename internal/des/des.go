// Package des is the discrete-event serving kernel shared by every
// serving simulator in the repository: the single-replica continuous
// scheduler (internal/sched), the multi-replica cluster router, and
// the autoscaler (internal/cluster) are all thin policy layers over
// the one event loop defined here.
//
// # Event model
//
// The kernel advances a set of stations (replica simulators, each
// owning an engine and a private KV allocator) over a shared trace of
// request arrivals. Five event kinds exist:
//
//   - arrival: a request enters the system and is routed to a station
//     by the Route callback (admission/routing policy).
//   - scale-tick: fired immediately before each arrival when a
//     ScaleTick handler is registered; the autoscaler uses it to add
//     or retire stations.
//   - window-exhausted: a station's next scheduler iteration is due —
//     either a single stepped iteration (Config.Stepped) or a
//     coalesced fast-forward over every identical decode iteration up
//     to the next state change (CoalesceWindow). Coalescing is the
//     kernel's only stepping primitive; Stepped is a kernel mode that
//     caps every window at one iteration. Static stations
//     (Config.Static) degenerate to one window per batch: admission
//     happens only at batch boundaries, so the whole run-to-completion
//     is one event that no arrival can cut.
//   - completion: requests finishing inside a window; recorded in the
//     completion ledger at the window's end time and merged into
//     Result.Finished.
//   - kv-transfer: in a disaggregated topology (stations with pool
//     roles — see Role and NewPoolStation) a request is a sequence of
//     phase sub-requests rather than a monolithic unit. Its prefill
//     runs on a prefill-pool station; the moment that prefill
//     completes, a kv-transfer event is scheduled, priced by the
//     prompt's KV blocks over the pool interconnect plus a latency
//     floor (TransferCost), and its expiry delivers the decode
//     sub-request as an arrival at a decode-pool station picked by the
//     RouteTransfer callback. Aggregated stations (RoleBoth, the
//     default) never see the event kind and their event sequence is
//     bit-for-bit what it was before pool roles existed.
//
// # Determinism contract
//
// Ties at equal timestamps break deterministically: arrivals at one
// instant are processed in trace order (the sort is stable), a
// scale-tick always precedes the arrival that triggered it, kv-transfer
// deliveries tied with trace arrivals at one instant are delivered
// after them — ordered among themselves by (delivery time, request ID),
// with no scale-tick of their own (the fleet scales on external
// arrivals, not internal hand-offs) — and a station's window-exhausted
// event at time t runs after every arrival and delivery at t (so
// admission sees the newly routed request, exactly as a time-ordered
// queue with arrival-first tie-breaking would order them). The
// completion ledger is sorted by (finish time, request ID) before
// aggregation, so Stats never depend on which station's events
// happened to be appended first.
//
// # Parallelism
//
// Stations interact only at arrival instants (routing and scale
// decisions read queue lengths across stations); between two
// consecutive arrival times every station evolves independently. The
// kernel exploits this with a conservative time-window barrier: all
// station events strictly before the next arrival run concurrently on
// persistent worker goroutines (Config.Parallelism ≥ 2), then the
// kernel joins and processes the arrival serially. Because each
// station's trajectory is a pure function of its own state and the
// barrier time, Stats are byte-identical at any Parallelism — the
// property tests assert serial == parallel == Stepped to the last
// bit.
//
// Disaggregated fleets add a second interaction channel: kv-transfer
// deliveries, whose instants are not in the trace. The barrier stays
// conservative by never extending past the transfer horizon — the
// earliest instant any not-yet-generated transfer could deliver
// (every awake prefill station's next event time plus the
// interconnect latency floor, see transferHorizon) — and decode
// stations' coalesced windows are cut at the same bound (xferCut), so
// a window never fast-forwards across a delivery that could change
// admission. Transfers generated inside a barrier are parked on their
// station (Station.xfers) and merged into the kernel's pending queue
// serially after the join, keeping station advances share-nothing.
//
// # Performance notes
//
// The kernel's steady state allocates (near) nothing per event; a
// policy layer built on top must not break the invariants that make
// that true:
//
//   - Request records are free-listed per station: a runReq (with its
//     RequestStats embedded by value) is recycled at completion, at
//     preemption, and — on prefill stations — at hand-off. A pointer
//     into a station's running set is therefore only valid until the
//     request finishes — nothing outside the station may retain one.
//     RequestStats cross the API boundary by value (ledger, Sink),
//     never by pointer. Phase sub-requests obey the same rule: the
//     prefill sub-request's record goes straight back on its
//     station's free list when the transfer is scheduled (the
//     transfer record carries the lifecycle by value), and the decode
//     sub-request draws a fresh record from the decode station's
//     slab. A policy layer must never thread a record across the
//     pool boundary.
//   - Each station keeps a monotone cursor into the sorted arrival
//     array (Station.nextArrival). The cursor relies on station event
//     times never decreasing: events only move the clock forward and
//     an idle station is woken at the current barrier, never earlier.
//     Anything that rewinds a station's clock must re-anchor or reset
//     arrCur (Station.reset does).
//   - The kernel tracks awake stations (nextAt ≥ 0, plus — on
//     streaming runs — stations with unflushed completions)
//     incrementally, so barriers cost O(awake), not O(stations), and
//     long-retired autoscaler stations stop being scanned entirely.
//     Stations are woken only via the kernel (routing an arrival);
//     writing Station.nextAt from outside would desynchronise the
//     awake set.
//   - Completion buffers drain through a cursor (finHead), not by
//     re-copying the tail; flush order stays (finish time, request
//     ID) because per-station appends are already in non-decreasing
//     finish order.
//   - A Kernel can recycle its slices and station shells (free lists
//     included) across runs via Reuse/Release (see Scratch) — sweeps
//     use this so per-point setup stops allocating once the first
//     point has warmed the arena.
package des

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/workload"
)

// Config parameterises a kernel run. The scheduling knobs apply to
// every station; routing and scaling policy live in the callbacks.
type Config struct {
	// MaxBatch caps each station's concurrent running set.
	MaxBatch int

	// ChunkedPrefill enables Dynamic-SplitFuse-style admission:
	// prompts prefill in PrefillChunk-token slices fused into decode
	// iterations instead of one batched admission prefill.
	ChunkedPrefill bool
	// PrefillChunk is the slice size in tokens (default 512).
	PrefillChunk int

	// Static selects pre-Orca static batching: a station collects up
	// to MaxBatch arrived requests (skipping any whose full
	// input+output reservation does not fit — admission scans past
	// blocked requests instead of head-blocking), runs the batch to
	// completion padded to its longest prompt and generation, then
	// repeats. Admission happens only at batch boundaries, so the
	// whole batch run is a single window-exhausted event that no
	// arrival can cut, and the policy never preempts or extends a
	// reservation. ChunkedPrefill and Preemptive do not apply to
	// static stations; Stepped is a no-op for them (the batch run has
	// no intermediate state to step through).
	Static bool

	// Preemptive selects the single-replica scheduler's bookkeeping:
	// every decode step extends its sequence's KV reservation —
	// including the completing step — and an out-of-memory extension
	// evicts the sequence and requeues it (recompute-on-resume)
	// instead of failing the run. Non-preemptive stations treat a
	// completing sequence as not growing its reservation and surface
	// ErrOutOfMemory as a hard error.
	Preemptive bool

	// Stepped disables iteration coalescing, advancing one decode
	// iteration per window-exhausted event — the O(output tokens)
	// reference path the coalesced fast-forward is tested against.
	// Output is byte-identical either way; Stepped only costs time.
	Stepped bool

	// Parallelism ≥ 2 advances stations on that many persistent
	// worker goroutines between arrival barriers; values ≤ 1 advance
	// them serially. Stats are byte-identical at any setting.
	Parallelism int

	// Transfer prices kv-transfer events between a prefill pool and a
	// decode pool. Required — and validated — as soon as any station
	// has RolePrefill; ignored by aggregated fleets.
	Transfer TransferCost
}

// ErrKernelReused is returned by Run when the kernel has already run:
// a second Run would silently reuse dirty station state. Build a
// fresh kernel per run (recycling the old one's arena via
// Release/Reuse if setup cost matters).
var ErrKernelReused = errors.New("des: Kernel.Run called twice (kernels are single-use)")

// Kernel drives stations over a trace. Build one with New, add
// stations with NewStation (also legal mid-run, from a ScaleTick
// handler), set the policy callbacks, then Run.
type Kernel struct {
	// Route picks the station for an arriving request. nil routes
	// everything to station 0 (the single-replica scheduler).
	Route func(now float64) *Station
	// ScaleTick, when non-nil, fires immediately before each arrival
	// is routed — the autoscaler's hook for adding and retiring
	// stations. An error aborts the run.
	ScaleTick func(now float64) error
	// RouteTransfer picks the decode-pool station for an expiring
	// kv-transfer, exactly as Route picks a station for a trace
	// arrival. Required as soon as any station has RolePrefill.
	RouteTransfer func(now float64) *Station
	// Sink, when non-nil, receives each completed request's lifecycle
	// incrementally instead of the kernel retaining a ledger:
	// Result.Finished stays empty and per-station completion buffers
	// are drained at every arrival barrier, so memory is bounded by
	// in-flight work rather than trace length. Completions are
	// delivered in the same global (finish time, request ID) order
	// Result.Finished would have — the concatenation of the per-barrier
	// flushes is exactly the sorted ledger, because once every station
	// has advanced to barrier t any future completion finishes at or
	// after t, and completions tied at one instant always flush
	// together. Called on the kernel's goroutine, never concurrently.
	Sink func(RequestStats)

	cfg      Config
	ran      bool
	stations []*Station
	arrivals []float64      // sorted arrival times (window bounds)
	due      []int          // reused per-barrier due-station index buffer
	awake    []int          // stations with pending work (see advanceAll)
	flushBuf []RequestStats // reused Sink merge buffer
	scratch  *Scratch       // arena to Release into, when recycling
	workers  *stationWorkers

	// Disaggregation state. pending[phead:] is the kv-transfer
	// delivery queue, sorted by (delivery time, request ID) with the
	// same cursor-and-compact discipline as station queues. hasPrefill
	// gates all of it: an aggregated fleet never touches these fields.
	pending    []transfer
	phead      int
	hasPrefill bool
	minXfer    float64 // Transfer.LatencyS, the lookahead floor
	cut        float64 // current barrier's window cut; -1 when aggregated
}

// New creates an empty kernel.
func New(cfg Config) *Kernel { return &Kernel{cfg: cfg} }

// NewStation adds a station owning the given engine and allocator.
// The allocator must be private to the station; the engine may be
// shared (engines are immutable and concurrency-safe).
func (k *Kernel) NewStation(eng *engine.Engine, alloc kvcache.Allocator) *Station {
	var s *Station
	if sc := k.scratch; sc != nil && len(sc.stations) > 0 {
		s = sc.stations[len(sc.stations)-1]
		sc.stations = sc.stations[:len(sc.stations)-1]
		s.reset()
	} else {
		s = &Station{}
	}
	s.ID = len(k.stations)
	s.Engine, s.Alloc = eng, alloc
	// Assert the allocator's prefix-cache view once, here, so the
	// admission hot loops test a cached field instead of repeating the
	// interface assertion per request.
	s.disc, _ = alloc.(kvcache.PrefillDiscounter)
	s.cfg = k.cfg
	s.nextAt = -1
	s.xferCut = -1
	k.stations = append(k.stations, s)
	return s
}

// NewPoolStation adds a station with a pool role for a disaggregated
// topology. NewStation is NewPoolStation with RoleBoth: aggregated
// stations run both phases and never generate or receive kv-transfer
// events.
func (k *Kernel) NewPoolStation(eng *engine.Engine, alloc kvcache.Allocator, role Role) *Station {
	s := k.NewStation(eng, alloc)
	s.role = role
	if role == RolePrefill {
		k.hasPrefill = true
	}
	return s
}

// Stations returns the live station list (including retired ones), in
// creation order.
func (k *Kernel) Stations() []*Station { return k.stations }

// StationResult summarises one station after Run.
type StationResult struct {
	Completed int
	BusyS     float64 // time spent executing iterations
	Retired   bool
	// Transferred counts prefill sub-requests this station handed to
	// the decode pool. Always zero off the prefill pool; prefill
	// stations in turn record no Completed (only the decode phase
	// finishes a request).
	Transferred int
	// PrefixHitTokens and PromptTokens report the station's
	// prefix-cache hit rate: prompt tokens admitted and the subset
	// served from the cache (kvcache.PrefillDiscounter). Both zero on
	// plain allocators.
	PrefixHitTokens int
	PromptTokens    int
}

// Result is a completed kernel run.
type Result struct {
	// Finished holds every completed request, sorted by (finish time,
	// request ID) — the representation-independent order both the
	// stepped and coalesced paths agree on byte-for-byte. Empty when a
	// Sink streamed the completions out instead.
	Finished []RequestStats
	// Completed counts completed requests — the completeness signal
	// that remains valid when a Sink leaves Finished empty.
	Completed int
	// MakespanS is the end of the last completed work. The event
	// clock cannot serve here: a window-exhausted event starts before
	// the work it prices ends, and a coalesced event starts a whole
	// window earlier than a stepped one — completion times are what
	// both paths share.
	MakespanS   float64
	Preemptions int
	// MaxIterationS is the longest single scheduler iteration across
	// all stations — the worst token-level stall any running request
	// experienced.
	MaxIterationS float64
	// PrefixHitTokens and PromptTokens total the per-station
	// prefix-cache counters; PrefixHitTokens/PromptTokens is the
	// fleet's cache hit rate. Both zero on plain allocators.
	PrefixHitTokens int
	PromptTokens    int
	// PerStation reports each station's share, in creation order.
	PerStation []StationResult
}

// wake puts an idle station's next event at the current instant and
// registers it in the awake set (once — a streaming station can
// already be lingering there with unflushed completions).
func (k *Kernel) wake(s *Station, t float64) {
	if s.nextAt >= 0 {
		return
	}
	s.nextAt = t
	if !s.awake {
		s.awake = true
		k.awake = append(k.awake, s.ID)
	}
}

// Run delivers the trace through the policy callbacks and drains
// every station. It returns ErrKernelReused when called a second
// time: stations carry run state, so a kernel is single-use.
func (k *Kernel) Run(reqs []workload.Request) (Result, error) {
	if k.ran {
		return Result{}, ErrKernelReused
	}
	k.ran = true
	if len(k.stations) == 0 {
		return Result{}, errors.New("des: no stations")
	}
	if k.cfg.MaxBatch < 1 {
		return Result{}, errors.New("des: MaxBatch must be ≥ 1")
	}
	if len(reqs) == 0 {
		return Result{}, errors.New("des: empty trace")
	}
	for _, s := range k.stations {
		if s.Engine == nil || s.Alloc == nil {
			return Result{}, fmt.Errorf("des: station %d incomplete", s.ID)
		}
	}
	k.cut = -1
	if k.hasPrefill {
		// Pool roles ride the plain continuous admission path: static
		// batching has no per-iteration decode events for the decode
		// pool, chunked prefill would interleave hand-offs mid-prompt,
		// and preemption would requeue a decode sub-request whose
		// prefill ran elsewhere. All three are rejected rather than
		// silently mis-simulated.
		if k.cfg.Static || k.cfg.ChunkedPrefill || k.cfg.Preemptive {
			return Result{}, errors.New("des: pool roles (disaggregation) require plain continuous scheduling (no Static, ChunkedPrefill, or Preemptive)")
		}
		if err := k.cfg.Transfer.Validate(); err != nil {
			return Result{}, err
		}
		if k.RouteTransfer == nil {
			return Result{}, errors.New("des: prefill stations require a RouteTransfer callback")
		}
		k.minXfer = k.cfg.Transfer.LatencyS
	}
	route := k.Route
	if route == nil {
		route = func(float64) *Station { return k.stations[0] }
	}
	if k.cfg.Parallelism >= 2 {
		k.startWorkers(k.cfg.Parallelism)
		defer k.stopWorkers()
	}

	// Arrivals at equal timestamps keep trace order: stable sort, and
	// the delivery loop below drains every arrival at one instant
	// before any station event at that instant runs. Already-ordered
	// traces (recorded replays, generator output) are aliased rather
	// than copied — the kernel never mutates the slice — so day-scale
	// replays do not pay an O(n) copy per point.
	ordered := reqs
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival }) {
		ordered = make([]workload.Request, len(reqs))
		copy(ordered, reqs)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	}
	if cap(k.arrivals) >= len(ordered) {
		k.arrivals = k.arrivals[:len(ordered)]
	} else {
		k.arrivals = make([]float64, len(ordered))
	}
	for i, r := range ordered {
		if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) {
			// A NaN arrival would never compare equal to the barrier
			// time and the delivery loop would spin forever.
			return Result{}, fmt.Errorf("des: request %d has non-finite arrival %v", r.ID, r.Arrival)
		}
		k.arrivals[i] = r.Arrival
	}

	for i := 0; ; {
		// The next delivery instant: the earlier of the next trace
		// arrival and the earliest pending kv-transfer. Ties go to the
		// arrival — both deliver at t below, arrivals first.
		t := math.Inf(1)
		if i < len(ordered) {
			t = ordered[i].Arrival
		}
		if k.phead < len(k.pending) && k.pending[k.phead].at < t {
			t = k.pending[k.phead].at
		}
		// Conservative time-window barrier: every station event
		// strictly before the next delivery is independent of it. In a
		// disaggregated fleet the barrier additionally stops at the
		// transfer horizon — a prefill event inside the window could
		// generate a delivery earlier than t — and decode windows are
		// cut at the same bound (xferCut, applied by advanceAll).
		bound := t
		if k.hasPrefill {
			if h := k.transferHorizon(); h < bound {
				bound = h
			}
			k.cut = bound
		}
		if err := k.advanceAll(bound); err != nil {
			return Result{}, err
		}
		if k.hasPrefill {
			k.collectTransfers()
		}
		if k.Sink != nil {
			k.flush(bound)
		}
		if bound < t {
			// Horizon-limited barrier: at least one prefill event ran
			// (the horizon sits strictly past some station's nextAt),
			// possibly scheduling deliveries before t. Re-derive.
			continue
		}
		if math.IsInf(t, 1) {
			break
		}
		for i < len(ordered) && ordered[i].Arrival == t {
			if k.ScaleTick != nil {
				if err := k.ScaleTick(t); err != nil {
					return Result{}, err
				}
			}
			s := route(t)
			if s == nil {
				return Result{}, errors.New("des: router returned no station")
			}
			s.enqueue(queued{req: ordered[i]})
			k.wake(s, t) // an idle station wakes at the arrival instant
			i++
		}
		for k.phead < len(k.pending) && k.pending[k.phead].at == t {
			x := k.pending[k.phead]
			k.phead++
			if k.phead == len(k.pending) {
				k.pending, k.phead = k.pending[:0], 0
			}
			s := k.RouteTransfer(t)
			if s == nil {
				return Result{}, errors.New("des: transfer router returned no station")
			}
			s.enqueue(queued{req: x.req, decode: true, carry: x.stats})
			k.wake(s, t)
		}
	}

	return k.collect(), nil
}

// flush streams every completion that can no longer be reordered out
// to the Sink: after all stations have advanced to the barrier, any
// future completion finishes at or after it, so completions strictly
// before the barrier are final. Each station's buffer is appended in
// non-decreasing finish order (finish records at monotone event end
// times), so the final prefix is a cursor advance (finHead) — the
// unflushed suffix is never re-copied — and only awake stations are
// scanned (advanceAll keeps a station registered until its buffer is
// drained). The merged batch is sorted by (finish time, request ID)
// before delivery, making the concatenated flushes exactly the order
// Result.Finished would have. Runs on the kernel's goroutine between
// barriers, when stations are quiescent — correct at any Parallelism.
func (k *Kernel) flush(barrier float64) {
	buf := k.flushBuf[:0]
	for _, i := range k.awake {
		s := k.stations[i]
		n := s.finHead
		for n < len(s.finished) && s.finished[n].Finished < barrier {
			n++
		}
		if n == s.finHead {
			continue
		}
		buf = append(buf, s.finished[s.finHead:n]...)
		s.finHead = n
		if s.finHead == len(s.finished) {
			s.finished = s.finished[:0]
			s.finHead = 0
		}
	}
	k.flushBuf = buf
	if len(buf) == 0 {
		return
	}
	// Most barriers flush a single completion; the sort's setup cost
	// is worth skipping a million times a day.
	if len(buf) > 1 {
		SortByCompletion(buf)
	}
	for _, r := range buf {
		k.Sink(r)
	}
}

// advanceAll runs every due station's events up to (strictly before)
// the barrier, serially or on the persistent workers. Stations touch
// only their own state plus the immutable arrival times and the
// engine's concurrency-safe memo tables, so the two modes are
// byte-identical; error selection is by lowest (event time, station
// ID), a total order that cannot depend on scheduling. Only awake
// stations are examined: the set holds exactly the stations with a
// pending event (nextAt ≥ 0) — plus, on streaming runs, stations
// whose completion buffer is not yet drained — so a barrier costs
// O(awake), and idle or retired stations are not rescanned a million
// times.
func (k *Kernel) advanceAll(barrier float64) error {
	stations := k.stations
	// Fan out only the stations with due work: under dense arrivals
	// most barriers wake one or two stations (a coalesced window ends
	// at or after the arrival that cut it), and waking workers for
	// idle stations would cost more than it buys. The post-trace
	// drain (barrier = +Inf) is where every station is due at once —
	// and where the big windows make goroutines pay.
	k.due = k.due[:0]
	for _, i := range k.awake {
		if s := stations[i]; s.nextAt >= 0 && s.nextAt < barrier {
			// In a disaggregated fleet, coalesced windows must not
			// fast-forward past the earliest possible kv-transfer
			// delivery; the kernel stamps the bound on each due station
			// here (serially, before any fan-out) and step() cuts at
			// it. -1 — always, for aggregated fleets — means no cut.
			s.xferCut = k.cut
			k.due = append(k.due, i)
		}
	}
	if k.workers != nil && len(k.due) >= 2 {
		k.workers.run(k, barrier)
	} else {
		for _, i := range k.due {
			stations[i].advance(barrier, k.arrivals)
		}
	}
	// Drop settled stations from the awake set: idle (a streaming
	// station lingers until its completions flush) and not errored —
	// an errored station must stay visible to the selection below,
	// which only examines this barrier's due list; errors are only
	// set during advance, so the earliest error is always due here.
	w := k.awake[:0]
	for _, i := range k.awake {
		s := stations[i]
		if s.nextAt >= 0 || s.err != nil || (k.Sink != nil && len(s.finished) > s.finHead) {
			w = append(w, i)
		} else {
			s.awake = false
		}
	}
	k.awake = w
	var firstErr error
	at, atID := math.Inf(1), -1
	for _, i := range k.due {
		s := stations[i]
		if s.err != nil && (firstErr == nil || s.errAt < at || (s.errAt == at && s.ID < atID)) {
			firstErr, at, atID = s.err, s.errAt, s.ID
		}
	}
	return firstErr
}

// collect merges the per-station ledgers into a Result.
func (k *Kernel) collect() Result {
	total := 0
	for _, s := range k.stations {
		total += len(s.finished) - s.finHead
	}
	finished := make([]RequestStats, 0, total)
	for _, s := range k.stations {
		finished = append(finished, s.finished[s.finHead:]...)
	}
	SortByCompletion(finished)
	res := Result{Finished: finished}
	for _, s := range k.stations {
		res.Completed += s.done
		if s.lastDone > res.MakespanS {
			res.MakespanS = s.lastDone
		}
		if s.maxIter > res.MaxIterationS {
			res.MaxIterationS = s.maxIter
		}
		res.Preemptions += s.preempts
		res.PrefixHitTokens += s.hitToks
		res.PromptTokens += s.promptToks
		res.PerStation = append(res.PerStation, StationResult{
			Completed: s.done, BusyS: s.busy, Retired: s.Retired,
			Transferred:     s.transferred,
			PrefixHitTokens: s.hitToks,
			PromptTokens:    s.promptToks,
		})
	}
	return res
}

// SortByCompletion puts finished requests in completion order with a
// request-ID tie-break. Stations append completions in event order,
// which depends on how many iterations each event carries — a
// coalesced window surfaces its completions when the window ends, a
// stepped run interleaves them with other stations' events — so the
// raw append order is representation-dependent. Completion times are
// not: sorting on them makes Stats (including the float summation
// order inside sched.Summarize) identical for every kernel mode.
// (finish time, request ID) is a total order — IDs are unique — so
// the unstable, allocation-free sort is still deterministic.
func SortByCompletion(done []RequestStats) {
	slices.SortFunc(done, func(a, b RequestStats) int {
		switch {
		case a.Finished < b.Finished:
			return -1
		case a.Finished > b.Finished:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// RequestStats records one request's lifecycle. (internal/sched
// aliases this type; it predates the kernel.)
type RequestStats struct {
	ID        int
	Input     int
	Output    int
	Arrival   float64
	Started   float64 // when prefill began
	FirstTok  float64 // when the first output token appeared
	Finished  float64
	Preempted int // times this request was evicted and restarted
	// TransferS is the kv-transfer delay between the prefill and
	// decode phases in a disaggregated topology: the time the
	// request's KV blocks spent on the interconnect. Zero on
	// aggregated stations, where no hand-off exists.
	TransferS float64
}

// Latency is the request's end-to-end time.
func (r RequestStats) Latency() float64 { return r.Finished - r.Arrival }

// QueueDelay is the time spent waiting before prefill.
func (r RequestStats) QueueDelay() float64 { return r.Started - r.Arrival }

package des

// Per-station window pricing. The engine's step-cost memo is already
// lock-free on warm reads (internal/engine, rangecost.go); the pricer
// is the layer above it: each station caches the current (batch,
// ctxStart) step-vector snapshot, so the steady-state window advance —
// successive windows of the same batch walking forward in context —
// is served from a station-local slice view and touches no engine
// state at all. Step costs are pure functions of (batch, ctx), so a
// snapshot anchored anywhere serves any window that lies inside it;
// the cache is invalidated only by a batch change, which re-anchors.
//
// The pricer is plain station-local state: recycled through
// des.Scratch with the station shell and cleared on reset/Release so
// the arena cannot pin engine memo arrays between runs.

import (
	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
)

// pricer caches one immutable step-vector snapshot per station.
type pricer struct {
	batch    int
	ctxStart int
	vec      engine.StepVec
}

// window returns the per-step costs of n consecutive decode steps at
// (batch, ctx0): entry i is the step cost at context ctx0+i. The
// returned slice is a shared immutable snapshot view; a warm call is a
// bounds check and a reslice.
func (p *pricer) window(eng *engine.Engine, batch, ctx0, n int) ([]float64, error) {
	if batch == p.batch && ctx0 >= p.ctxStart {
		off := ctx0 - p.ctxStart
		if off+n <= p.vec.Len() {
			return p.vec.Seconds()[off : off+n], nil
		}
		// Same anchor, longer reach: grow the anchored snapshot (a
		// lock-free read when any station already grew it this far).
		v, err := eng.DecodeStepVec(batch, p.ctxStart, off+n)
		if err != nil {
			return nil, err
		}
		p.vec = v
		return v.Seconds()[off : off+n], nil
	}
	v, err := eng.DecodeStepVec(batch, ctx0, n)
	if err != nil {
		return nil, err
	}
	p.batch, p.ctxStart, p.vec = batch, ctx0, v
	return v.Seconds()[:n], nil
}

// step returns the cost of the single decode step at (batch, ctx),
// from the cached snapshot when it covers the position.
func (p *pricer) step(eng *engine.Engine, batch, ctx int) (float64, error) {
	if batch == p.batch && ctx >= p.ctxStart {
		if off := ctx - p.ctxStart; off < p.vec.Len() {
			return p.vec.Seconds()[off], nil
		}
	}
	c, err := eng.DecodeStepCost(batch, ctx)
	if err != nil {
		return 0, err
	}
	return c.Seconds, nil
}

// coalesce bounds and prices one coalesced run of identical decode
// iterations; see CoalesceWindow for the contract.
func (p *pricer) coalesce(eng *engine.Engine, alloc kvcache.Allocator, seqs []kvcache.Seq,
	batch, ctx0, kMax int, now, nextArrival float64) ([]float64, error) {
	if kMax > 1 {
		if k := alloc.MaxExtendSteps(seqs, kMax); k < kMax {
			// The KV pool runs dry inside the window: fast-forward to
			// the last iteration that fits, then let the reference
			// path take the preemption (or OOM) at the boundary.
			kMax = k
		}
	}
	if kMax < 2 {
		return nil, nil
	}
	end := now
	var costs []float64
	for taken := 0; taken < kMax; {
		n := kMax - taken
		if nextArrival >= 0 {
			// An arrival will cut the window; pricing all kMax steps
			// up front would waste memo walks on steps never reached
			// (quadratic under dense arrivals). Estimate the cut from
			// the next step's cost — plus slack for cost drift — and
			// let the outer loop continue if the estimate fell short.
			c0, err := p.step(eng, batch, ctx0+taken)
			if err != nil {
				return nil, err
			}
			if c0 > 0 {
				if est := int((nextArrival-end)/c0) + 2; est < n {
					n = est
				}
			}
			if n < 1 {
				n = 1
			}
		}
		var err error
		costs, err = p.window(eng, batch, ctx0, taken+n)
		if err != nil {
			return nil, err
		}
		for i := taken; i < taken+n; i++ {
			end += costs[i]
			if nextArrival >= 0 && end >= nextArrival {
				// A request lands inside the window: it is admitted
				// at the first iteration boundary at or after its
				// arrival, so this step is the window's last.
				return costs[:i+1], nil
			}
		}
		taken += n
	}
	return costs[:kMax], nil
}

// CoalesceWindow bounds and prices one coalesced run of identical
// decode iterations: batch sequences whose mean context starts at
// ctx0, each growing one token per step. kMax must already be bounded
// by the earliest completion in the batch; the allocator bound
// (kvcache.MaxExtendSteps over seqs) and the next-arrival cut are
// applied here. nextArrival < 0 means no future arrival is pending.
//
// The returned slice is a view of a shared immutable engine snapshot —
// read-only for the caller. An empty result means the state does not
// admit a fast-forward of at least one full iteration beyond the
// current one, and the caller must fall back to its one-step reference
// path (which also handles preemption). The caller advances its clock
// by adding the returned costs one at a time, in order — that keeps
// coalesced time byte-identical to stepped time.
//
// Stations route this through their cached pricing handle; the
// standalone form prices through a throwaway handle and is retained
// for the policy layers and the equivalence tests.
func CoalesceWindow(eng *engine.Engine, alloc kvcache.Allocator, seqs []kvcache.Seq,
	batch, ctx0, kMax int, now, nextArrival float64) ([]float64, error) {
	var p pricer
	return p.coalesce(eng, alloc, seqs, batch, ctx0, kMax, now, nextArrival)
}

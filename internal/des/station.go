package des

import (
	"errors"
	"fmt"
	"sort"

	"llmbench/internal/engine"
	"llmbench/internal/kvcache"
	"llmbench/internal/workload"
)

// Station is one replica simulator: an engine, a private KV
// allocator, a FIFO admission queue, and a running set. The kernel
// owns its event timing; the policy layers only route requests to it
// and read its load.
type Station struct {
	ID     int
	Engine *engine.Engine
	Alloc  kvcache.Allocator

	// disc is Alloc's prefix-cache view when it has one (asserted once
	// at NewStation): after each admission Alloc the station drains the
	// accrued prefill discount — cached prefix tokens that skip prefill
	// compute, plus host-link restore seconds to charge instead. nil
	// for plain allocators, which keeps every discount branch dead and
	// the float trajectory bit-identical to pre-tier kernels.
	disc kvcache.PrefillDiscounter

	// Retired marks a station drained by the autoscaler. The kernel
	// itself ignores the flag — a retired station is empty and the
	// router stops picking it, so it simply never wakes again (and the
	// kernel's awake set stops scanning it at barriers).
	Retired bool

	cfg Config

	// queue is the admission queue; the live entries are
	// queue[qhead:]. Popping advances qhead instead of reslicing, so
	// the backing array's capacity survives a million pops — the
	// allocation that used to dominate enqueue.
	queue []queued
	qhead int

	run []*runReq

	nextAt   float64 // next window-exhausted event; < 0 when idle
	busy     float64 // time spent executing iterations
	maxIter  float64 // longest single iteration
	lastDone float64 // end of this station's last completed work
	done     int
	preempts int

	// hitToks and promptToks accumulate the prefix-cache hit rate:
	// prompt tokens admitted and the subset served from the cache.
	// Counted only when disc is non-nil, and only for prompt-phase
	// admissions (decode sub-requests were prefilled elsewhere).
	hitToks    int
	promptToks int

	// finished holds completion records not yet handed off;
	// finished[finHead:] is the unflushed suffix when a Sink drains
	// the buffer at barriers (finHead stays 0 on ledgered runs).
	finished []RequestStats
	finHead  int

	err   error
	errAt float64

	// awake marks membership in the kernel's awake set (kernel-owned;
	// guards against double registration).
	awake bool

	// arrCur is the station's monotone cursor into the kernel's
	// sorted arrival array: every arrival before it is ≤ some past
	// event time. Station event times never decrease, so the
	// next-arrival lookup advances the cursor instead of binary
	// searching the full trace at every window event.
	arrCur int

	seqs     []kvcache.Seq // reused sequence-handle buffer
	decoding []*runReq     // reused chunked-mode partition buffer
	admitted []*runReq     // reused admission / static-batch buffer
	free     []*runReq     // recycled request records
	slab     []runReq      // bump-allocation backing for fresh records

	// pricer is the station's cached pricing handle: the current
	// (batch, ctxStart) step-vector snapshot, so steady-state window
	// advance reads a station-local slice instead of engine state.
	// Cleared on reset and Release so a recycled shell cannot pin
	// engine memo arrays.
	pricer pricer

	// role is the station's pool assignment (RoleBoth when
	// aggregated); see NewPoolStation.
	role Role
	// xfers parks kv-transfers generated during the current barrier
	// for serial kernel pickup (collectTransfers) after the join —
	// stations never touch shared state mid-barrier.
	xfers       []transfer
	transferred int
	// xferCut is the current barrier's delivery bound: coalesced
	// windows must not fast-forward past it, because a kv-transfer
	// delivery there could change admission. Stamped by the kernel
	// before each barrier; -1 (always, on aggregated fleets) means no
	// cut.
	xferCut float64
}

// queued is a waiting request; preempted counts prior evictions so
// the lifecycle stats survive a requeue.
type queued struct {
	req       workload.Request
	preempted int
	// decode marks a decode-phase sub-request delivered by a
	// kv-transfer event; carry is its lifecycle so far (original
	// arrival, prefill timing, transfer delay), resumed on admission.
	decode bool
	carry  RequestStats
}

// runReq is an admitted request in flight. Records are drawn from the
// station's free list (or slab-allocated in batches) and recycled at
// completion and preemption, so steady-state admission allocates
// nothing; stats is embedded by value for the same reason.
type runReq struct {
	req            workload.Request
	seq            kvcache.Seq // live KV reservation handle
	generated      int
	pendingPrefill int // prompt tokens not yet prefilled (chunked mode)
	prefillSkip    int // prompt tokens served from the prefix cache
	stats          RequestStats
}

// reqSlabLen is how many records one slab allocation provides while
// the free list warms up.
const reqSlabLen = 64

// getReq takes a recycled (or slab-fresh) record and initialises it
// for an admission at time now.
func (s *Station) getReq(q queued, now float64) *runReq {
	var r *runReq
	if n := len(s.free); n > 0 {
		r = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		if len(s.slab) == 0 {
			s.slab = make([]runReq, reqSlabLen)
		}
		r = &s.slab[0]
		s.slab = s.slab[1:]
	}
	*r = runReq{
		req: q.req,
		stats: RequestStats{
			ID: q.req.ID, Input: q.req.Input, Output: q.req.Output,
			Arrival: q.req.Arrival, Started: now, Preempted: q.preempted,
		},
	}
	if q.decode {
		// Decode sub-request: resume the carried lifecycle — original
		// arrival, prefill timing, transfer delay — with the prompt
		// already prefilled on the prefill pool (first token emitted
		// there, so generated starts at 1).
		r.stats = q.carry
		r.generated = 1
	}
	return r
}

// putReq recycles a record whose lifecycle ended (completion or
// preemption). The caller must not touch it afterwards.
func (s *Station) putReq(r *runReq) { s.free = append(s.free, r) }

// reset returns a recycled station shell to its just-created state,
// keeping the warmed buffers and free list.
func (s *Station) reset() {
	s.Retired = false
	s.queue = s.queue[:0]
	s.qhead = 0
	s.run = s.run[:0]
	s.nextAt = -1
	s.busy, s.maxIter, s.lastDone = 0, 0, 0
	s.done, s.preempts = 0, 0
	s.disc = nil
	s.hitToks, s.promptToks = 0, 0
	s.finished = s.finished[:0]
	s.finHead = 0
	s.err, s.errAt = nil, 0
	s.awake = false
	s.arrCur = 0
	s.pricer = pricer{}
	s.role = RoleBoth
	s.xfers = s.xfers[:0]
	s.transferred = 0
	s.xferCut = -1
}

// queueLen is the number of live queued requests.
func (s *Station) queueLen() int { return len(s.queue) - s.qhead }

// popHead removes and returns the queue's head.
func (s *Station) popHead() queued {
	q := s.queue[s.qhead]
	s.qhead++
	if s.qhead == len(s.queue) {
		s.queue, s.qhead = s.queue[:0], 0
	}
	return q
}

// Outstanding is the station's queued plus running request count —
// the load signal the routing and scaling policies read at arrival
// barriers.
func (s *Station) Outstanding() int { return s.queueLen() + len(s.run) }

// PendingPrefillTokens is the prompt-token backlog still chunking
// through this station's fused prefill slot (always 0 outside chunked
// mode). Routers use it to tell a materialized prefix cache from one
// still being established: prefix blocks score hot the moment they
// allocate, but until the establishing prompt finishes its slices,
// co-located requests ride iterations inflated by them. A bounded
// scan of the running set — O(MaxBatch), allocation-free — read at
// the arrival barrier like Outstanding.
func (s *Station) PendingPrefillTokens() int {
	pending := 0
	for _, r := range s.run {
		pending += r.pendingPrefill
	}
	return pending
}

// Role reports the station's pool assignment.
func (s *Station) Role() Role { return s.role }

// enqueue inserts a request keeping the queue sorted by effective
// arrival time (FIFO among equals). The router delivers arrivals in
// time order, so this is almost always an append — except when a
// preempted request was requeued with an eviction time that lands
// beyond a not-yet-routed arrival: admission order must follow
// effective arrival, not delivery order.
func (s *Station) enqueue(q queued) {
	if s.qhead > 0 && len(s.queue) == cap(s.queue) {
		// Reclaim the popped prefix before append would grow the
		// array: steady state then reuses one backing array forever.
		n := copy(s.queue, s.queue[s.qhead:])
		s.queue, s.qhead = s.queue[:n], 0
	}
	live := s.queue[s.qhead:]
	i := sort.Search(len(live), func(i int) bool { return live[i].req.Arrival > q.req.Arrival })
	s.queue = append(s.queue, queued{})
	live = s.queue[s.qhead:]
	copy(live[i+1:], live[i:])
	live[i] = q
}

// advance runs the station's due events up to (strictly before) the
// barrier. Everything it touches is station-local or immutable, so
// concurrent advances of different stations are race-free.
func (s *Station) advance(barrier float64, arrivals []float64) {
	for s.err == nil && s.nextAt >= 0 && s.nextAt < barrier {
		now := s.nextAt
		// The coalescing cut is the earlier of the next trace arrival
		// and the barrier's kv-transfer delivery bound (xferCut, -1 on
		// aggregated fleets): a window may not fast-forward across
		// either kind of delivery.
		na := s.nextArrival(arrivals, now)
		if s.xferCut >= 0 && (na < 0 || s.xferCut < na) {
			na = s.xferCut
		}
		end, err := s.step(now, na)
		if err != nil {
			s.err, s.errAt = err, now
			return
		}
		if len(s.run) == 0 && s.queueLen() == 0 {
			s.nextAt = -1 // idle; an arrival wakes the station
			return
		}
		if end <= now {
			// Work remains but the clock did not move: the event loop
			// would spin. Cannot happen with positive step costs;
			// guard it instead of hanging.
			s.err, s.errAt = fmt.Errorf("des: station %d stalled at t=%g", s.ID, now), now
			return
		}
		s.nextAt = end
	}
}

// nextArrival returns the earliest arrival strictly after now, or -1
// when none remain — the bound that keeps coalesced windows from
// crossing a routing decision. A station's event times are monotone
// (events only move the clock forward, and an idle station wakes at
// the current barrier, never earlier), so the cursor only advances:
// the lookup is amortised O(1) per event instead of a binary search
// over the full trace. A cursor that somehow overshot (which the
// monotonicity invariant rules out) is re-anchored by binary search
// rather than trusted.
func (s *Station) nextArrival(arrivals []float64, now float64) float64 {
	i := s.arrCur
	if i > 0 && arrivals[i-1] > now {
		i = sort.SearchFloat64s(arrivals, now)
	}
	for i < len(arrivals) && arrivals[i] <= now {
		i++
	}
	s.arrCur = i
	if i == len(arrivals) {
		return -1
	}
	return arrivals[i]
}

// step runs one window-exhausted event at time now: admission from
// the queue head, then either a coalesced fast-forward over every
// identical decode iteration up to the next state change or a single
// reference iteration. It returns the event's end time (== now when
// the station stays idle).
func (s *Station) step(now, nextArrival float64) (float64, error) {
	if s.cfg.Static {
		return s.stepStatic(now)
	}
	if s.role == RolePrefill {
		return s.stepPrefill(now)
	}
	// Admit from the head of the queue while batch slots and KV
	// capacity remain. Admission is FIFO: a blocked head blocks
	// everything behind it.
	s.admitted = s.admitted[:0]
	var restoreS float64
	for s.queueLen() > 0 && len(s.run)+len(s.admitted) < s.cfg.MaxBatch {
		q := s.queue[s.qhead]
		if q.decode != (s.role == RoleDecode) {
			// A phase routed to the wrong pool: the simulation would
			// silently double-charge or skip the prefill. Router bug.
			return 0, fmt.Errorf("des: station %d (%s) received a %s-phase request %d",
				s.ID, s.role, phaseName(q.decode), q.req.ID)
		}
		if !s.Alloc.CanAlloc(q.req.Input) {
			break
		}
		seq, err := s.Alloc.Alloc(q.req.Input)
		if err != nil {
			break
		}
		s.popHead()
		r := s.getReq(q, now)
		r.seq = seq
		if s.disc != nil {
			skip, rs := s.disc.TakePrefillDiscount()
			r.prefillSkip = skip
			restoreS += rs
			if !q.decode {
				s.hitToks += skip
				s.promptToks += q.req.Input
			}
		}
		s.admitted = append(s.admitted, r)
	}
	admitted := s.admitted
	var step float64
	if len(admitted) > 0 {
		if s.role == RoleDecode {
			// Decode sub-requests arrive prefilled: FirstTok was set on
			// the prefill pool and generated is already 1 (getReq), so
			// admission charges nothing here — except restore seconds,
			// which bring demoted prefix blocks back before decoding.
			if restoreS > 0 {
				step += restoreS
			}
		} else if s.cfg.ChunkedPrefill {
			// Prompts enter the prefill queue; their tokens are
			// processed in slices fused with decode iterations. Cached
			// prefix tokens never enter it (the last prompt token always
			// does — its logits drive the first output); restore seconds
			// stall the batch up front like an admission prefill would.
			for _, a := range admitted {
				a.pendingPrefill = a.req.Input - a.prefillSkip
			}
			if restoreS > 0 {
				if len(s.run) > 0 && restoreS > s.maxIter {
					s.maxIter = restoreS
				}
				step += restoreS
			}
		} else {
			// Charge one batched prefill for the admitted prompts,
			// stalling the running set (the non-SplitFuse cost). Cached
			// prefix tokens are excluded from the batch; restore seconds
			// for demoted blocks join the stall instead.
			in := 0
			for _, a := range admitted {
				in += a.req.Input - a.prefillSkip
			}
			pf, err := s.Engine.PrefillSeconds(len(admitted), in/len(admitted))
			if err != nil {
				return 0, err
			}
			adm := pf
			if restoreS > 0 {
				adm += restoreS
			}
			if len(s.run) > 0 && adm > s.maxIter {
				s.maxIter = adm // running requests stalled this long
			}
			step += adm
			for _, a := range admitted {
				a.stats.FirstTok = now + step
				a.generated = 1 // prefill emits the first token
			}
		}
		s.run = append(s.run, admitted...)
	}
	if len(s.run) == 0 {
		if s.queueLen() > 0 {
			// Nothing is running and the head cannot be admitted: no
			// future completion can free capacity, so it never fits.
			return 0, fmt.Errorf("des: station %d cannot admit request %d (input %d): KV cache too small",
				s.ID, s.queue[s.qhead].req.ID, s.queue[s.qhead].req.Input)
		}
		return now, nil
	}
	// One iteration: a decode step for the generating set, fused with
	// at most one prefill slice in chunked mode. Without chunked
	// prefill the whole running set decodes — no partition needed.
	decoding := s.run
	var prefilling *runReq
	if s.cfg.ChunkedPrefill {
		// The fused slice goes to the pending prompt with the fewest
		// tokens left (ties to admission order): shortest-remaining
		// first, the iteration-level shape of Dynamic-SplitFuse's mixed
		// partial prefills. A short suffix never waits behind a long
		// cold prompt chunking through — without this, every request
		// admitted during a prefix-cache miss's establishment inherits
		// the whole establishment latency instead of one slice.
		s.decoding = s.decoding[:0]
		for _, r := range s.run {
			if r.pendingPrefill > 0 {
				if prefilling == nil || r.pendingPrefill < prefilling.pendingPrefill {
					prefilling = r
				}
			} else {
				s.decoding = append(s.decoding, r)
			}
		}
		decoding = s.decoding
	}
	// Coalescing fast path: a pure-decode state whose next iterations
	// are identical except for context growth. Every member must be
	// established — generated ≥ 2, so its reservation already equals
	// Input+generated and each step extends it by exactly one token,
	// the trajectory MaxExtendSteps prices. A fresh request runs its
	// first iteration stepped. Admission cannot unblock mid-window
	// (free blocks only shrink and the running set only shrinks at
	// completions, which bound the window), so an already-arrived but
	// blocked queue head does not cut the window — only a future
	// arrival does, because it may change a routing decision.
	if !s.cfg.Stepped && prefilling == nil && len(admitted) == 0 {
		kMax := s.run[0].req.Output - s.run[0].generated
		ctxSum := 0
		s.seqs = s.seqs[:0]
		for _, r := range s.run {
			if r.generated < 2 {
				kMax = 0
				break
			}
			if rem := r.req.Output - r.generated; rem < kMax {
				kMax = rem
			}
			ctxSum += r.req.Input + r.generated
			s.seqs = append(s.seqs, r.seq)
		}
		if kMax > 0 {
			window, err := s.pricer.coalesce(s.Engine, s.Alloc, s.seqs,
				len(s.run), ctxSum/len(s.run), kMax, now, nextArrival)
			if err != nil {
				return 0, err
			}
			if k := len(window); k > 0 {
				end := now
				for _, c := range window {
					if c > s.maxIter {
						s.maxIter = c
					}
					end += c
					s.busy += c
				}
				// One batched Extend to each final context: headroom
				// was verified for the whole window, so none of these
				// can OOM, and the allocator lands in the same state
				// as k single-token extends.
				next := s.run[:0]
				for _, r := range s.run {
					r.generated += k
					if s.cfg.Preemptive {
						// Preemptive bookkeeping extends before the
						// completion check, exactly as its stepped
						// path does: the completing step still grows
						// the reservation.
						if err := s.Alloc.Extend(r.seq, r.req.Input+r.generated); err != nil {
							return 0, err
						}
						if r.generated >= r.req.Output {
							s.finish(r, end)
							continue
						}
					} else {
						if r.generated >= r.req.Output {
							s.finish(r, end)
							continue
						}
						if err := s.Alloc.Extend(r.seq, r.req.Input+r.generated); err != nil {
							return 0, err
						}
					}
					next = append(next, r)
				}
				s.run = next
				return end, nil
			}
		}
	}
	// One reference iteration.
	if len(decoding) > 0 {
		ctxSum := 0
		for _, r := range decoding {
			ctxSum += r.req.Input + r.generated
		}
		t, err := s.Engine.DecodeStepSeconds(len(decoding), ctxSum/len(decoding))
		if err != nil {
			return 0, err
		}
		step += t
	}
	if prefilling != nil {
		chunk := s.cfg.PrefillChunk
		if chunk <= 0 {
			chunk = 512
		}
		if chunk > prefilling.pendingPrefill {
			chunk = prefilling.pendingPrefill
		}
		t, err := s.Engine.PrefillSeconds(1, chunk)
		if err != nil {
			return 0, err
		}
		step += t
		prefilling.pendingPrefill -= chunk
		if prefilling.pendingPrefill == 0 {
			prefilling.stats.FirstTok = now + step
			prefilling.generated = 1
		}
	}
	if len(decoding) > 0 && step > s.maxIter {
		s.maxIter = step
	}
	end := now + step
	s.busy += step
	next := s.run[:0]
	for _, r := range s.run {
		if r.pendingPrefill > 0 || (r == prefilling && r.generated == 1) {
			// Still prefilling, or just emitted its first token this
			// iteration — no decode advance yet.
			next = append(next, r)
			continue
		}
		r.generated++
		if s.cfg.Preemptive {
			if err := s.Alloc.Extend(r.seq, r.req.Input+r.generated); err != nil {
				if errors.Is(err, kvcache.ErrOutOfMemory) {
					// Preempt: evict and requeue at the tail of this
					// station's queue (recompute later). The requeued
					// request re-arrives at the eviction instant.
					s.Alloc.Free(r.seq)
					s.preempts++
					requeued := r.req
					requeued.Arrival = end
					s.queue = append(s.queue, queued{req: requeued, preempted: r.stats.Preempted + 1})
					s.putReq(r)
					continue
				}
				return 0, err
			}
			if r.generated >= r.req.Output {
				s.finish(r, end)
				continue
			}
		} else {
			// Completion is checked before Extend — a sequence
			// emitting its final token does not grow its reservation —
			// and the coalesced path above mirrors that order.
			if r.generated >= r.req.Output {
				s.finish(r, end)
				continue
			}
			if err := s.Alloc.Extend(r.seq, r.req.Input+r.generated); err != nil {
				return 0, err
			}
		}
		next = append(next, r)
	}
	s.run = next
	return end, nil
}

// phaseName names a queued entry's phase for error messages.
func phaseName(decode bool) string {
	if decode {
		return "decode"
	}
	return "prefill"
}

// stepPrefill runs one prefill-pool event: admit up to MaxBatch
// queued prompts, charge one batched prefill, and hand every admitted
// sub-request off to the decode pool via a kv-transfer record. The
// running set is empty between events — the prefilled KV leaves with
// the transfer — so prefill stations never decode, never preempt, and
// their allocator only bounds the prefill batch in flight.
func (s *Station) stepPrefill(now float64) (float64, error) {
	s.admitted = s.admitted[:0]
	var restoreS float64
	for s.queueLen() > 0 && len(s.admitted) < s.cfg.MaxBatch {
		q := s.queue[s.qhead]
		if q.decode {
			return 0, fmt.Errorf("des: station %d (prefill) received a decode-phase request %d", s.ID, q.req.ID)
		}
		if !s.Alloc.CanAlloc(q.req.Input) {
			break
		}
		seq, err := s.Alloc.Alloc(q.req.Input)
		if err != nil {
			break
		}
		s.popHead()
		r := s.getReq(q, now)
		r.seq = seq
		if s.disc != nil {
			skip, rs := s.disc.TakePrefillDiscount()
			r.prefillSkip = skip
			restoreS += rs
			s.hitToks += skip
			s.promptToks += q.req.Input
		}
		s.admitted = append(s.admitted, r)
	}
	if len(s.admitted) == 0 {
		if s.queueLen() > 0 {
			// Nothing in flight survives a prefill event, so a head
			// that does not fit an empty pool never will.
			return 0, fmt.Errorf("des: station %d cannot admit request %d (input %d): KV cache too small",
				s.ID, s.queue[s.qhead].req.ID, s.queue[s.qhead].req.Input)
		}
		return now, nil
	}
	in := 0
	for _, a := range s.admitted {
		in += a.req.Input - a.prefillSkip
	}
	pf, err := s.Engine.PrefillSeconds(len(s.admitted), in/len(s.admitted))
	if err != nil {
		return 0, err
	}
	if restoreS > 0 {
		pf += restoreS // demoted prefix blocks restore before the batch
	}
	end := now + pf
	s.busy += pf
	for _, a := range s.admitted {
		// The batched prefill emits each prompt's first token at the
		// batch's end, exactly as aggregated admission charges it.
		a.stats.FirstTok = end
		a.generated = 1
		s.handoff(a, end)
	}
	return end, nil
}

// handoff retires a prefill sub-request at time end: the local KV
// reservation is released (the blocks travel to the decode pool), the
// transfer is priced on the prompt's block footprint, and a transfer
// record is parked on the station's buffer for kernel pickup at the
// barrier join. The runReq goes straight back on the free list — the
// transfer record carries the lifecycle by value, preserving the
// zero-steady-state-allocation invariant across the pool boundary.
// The outgoing request's Arrival is rewritten to the delivery instant
// so the decode pool's queue sorts by effective arrival; the original
// arrival survives in the carried stats.
func (s *Station) handoff(r *runReq, end float64) {
	s.Alloc.Free(r.seq)
	d := s.cfg.Transfer.Seconds(r.req.Input)
	r.stats.TransferS = d
	req := r.req
	req.Arrival = end + d
	s.xfers = append(s.xfers, transfer{at: end + d, req: req, stats: r.stats})
	s.putReq(r)
	s.transferred++
}

// stepStatic runs one static-batching event. When a batch is in
// flight its run-to-completion window ends exactly now: every member
// completes and frees its reservation. Then the next batch is
// collected from the arrived queue — up to MaxBatch requests, each
// reserving its full input+output context up front; one that does not
// fit stays queued for a later batch without blocking those behind it
// (pre-Orca admission is a scan, not FIFO head-blocking) — and its
// whole padded run is priced as a single event. Completion times,
// first-token times, and the batch-collection instants are
// byte-identical to the hand-rolled loop this replaced (see
// sched.TestStaticKernelMatchesLegacy). Static stations never extend
// a reservation, so they can never preempt, and they record no
// per-iteration stall (a batch run has no iteration granularity).
func (s *Station) stepStatic(now float64) (float64, error) {
	if len(s.run) > 0 {
		for _, r := range s.run {
			s.finish(r, now)
		}
		s.run = s.run[:0]
	}
	s.admitted = s.admitted[:0]
	var restoreS float64
	live := s.queue[s.qhead:]
	rest := s.queue[:0]
	s.qhead = 0
	for _, q := range live {
		if len(s.admitted) < s.cfg.MaxBatch && s.Alloc.CanAlloc(q.req.Input+q.req.Output) {
			if seq, err := s.Alloc.Alloc(q.req.Input + q.req.Output); err == nil {
				r := s.getReq(q, now)
				r.seq = seq
				if s.disc != nil {
					// Static batches run one padded graph, so cached
					// prefix tokens cannot shorten the prefill — the hit
					// is recorded and restore seconds are charged, but
					// the skip is dropped (r.prefillSkip stays zero).
					skip, rs := s.disc.TakePrefillDiscount()
					restoreS += rs
					s.hitToks += skip
					s.promptToks += q.req.Input
				}
				s.admitted = append(s.admitted, r)
				continue
			}
		}
		rest = append(rest, q)
	}
	s.queue = rest
	batch := s.admitted
	if len(batch) == 0 {
		if s.queueLen() > 0 {
			// The allocator is drained between batches, so a request
			// that does not fit an empty pool never will.
			return 0, fmt.Errorf("des: station %d cannot batch request %d (input %d, output %d): KV cache too small",
				s.ID, s.queue[s.qhead].req.ID, s.queue[s.qhead].req.Input, s.queue[s.qhead].req.Output)
		}
		return now, nil
	}
	// The static batch runs until its longest member finishes: one
	// graph, one shape, padded to the longest prompt and generation.
	maxIn, maxOut := 0, 0
	for _, r := range batch {
		if r.req.Input > maxIn {
			maxIn = r.req.Input
		}
		if r.req.Output > maxOut {
			maxOut = r.req.Output
		}
	}
	res, err := s.Engine.Run(workload.Spec{Batch: len(batch), Input: maxIn, Output: maxOut})
	if err != nil {
		return 0, err
	}
	start := now
	if restoreS > 0 {
		start += restoreS // demoted prefix blocks restore before the run
		s.busy += restoreS
	}
	for _, r := range batch {
		r.stats.FirstTok = start + res.TTFTSeconds
	}
	s.run = append(s.run, batch...)
	s.busy += res.E2ESeconds
	return start + res.E2ESeconds, nil
}

// finish records a completion at time end and recycles the record.
func (s *Station) finish(r *runReq, end float64) {
	s.Alloc.Free(r.seq)
	r.stats.Finished = end
	s.finished = append(s.finished, r.stats)
	s.putReq(r)
	s.done++
	if end > s.lastDone {
		s.lastDone = end
	}
}

package des

import (
	"sync"
	"sync/atomic"
)

// stationWorkers is the kernel's persistent fan-out: Parallelism
// goroutines spawned once per Run and parked on per-worker start
// channels, instead of a fresh goroutine set per barrier (a
// million-request trace has a million barriers; spawn cost there
// dwarfs the work under dense arrivals). A barrier publishes its due
// list and time, signals the workers, and joins on a WaitGroup; the
// workers drain the list through a shared atomic cursor
// (work-stealing — due stations rarely carry equal work).
//
// Memory safety, not ordering, is the synchronisation concern:
// station advancement is order-independent (stations are disjoint
// between barriers), and every kernel→worker handoff is ordered by
// the channel send and every worker→kernel handoff by
// WaitGroup.Done/Wait, so all station state written during a barrier
// happens-before the kernel's next read. Results are byte-identical
// to the serial path by construction.
type stationWorkers struct {
	barrier  float64
	stations []*Station
	arrivals []float64
	due      []int
	cursor   atomic.Int64

	start []chan struct{}
	join  sync.WaitGroup
	wg    sync.WaitGroup // tracks goroutine exit for stop
}

// startWorkers spawns n persistent workers. Called at most once per
// Run (kernels are single-use); stopWorkers must run before the
// kernel is released.
func (k *Kernel) startWorkers(n int) {
	w := &stationWorkers{start: make([]chan struct{}, n)}
	for i := range w.start {
		ch := make(chan struct{}, 1)
		w.start[i] = ch
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			for range ch {
				for {
					j := int(w.cursor.Add(1) - 1)
					if j >= len(w.due) {
						break
					}
					w.stations[w.due[j]].advance(w.barrier, w.arrivals)
				}
				w.join.Done()
			}
		}()
	}
	k.workers = w
}

// run advances the kernel's due stations to the barrier on the
// workers and joins. Only called with len(due) ≥ 2.
func (w *stationWorkers) run(k *Kernel, barrier float64) {
	w.barrier = barrier
	w.stations = k.stations
	w.arrivals = k.arrivals
	w.due = k.due
	w.cursor.Store(0)
	n := len(w.start)
	if len(w.due) < n {
		n = len(w.due) // idle workers would only pay signal latency
	}
	w.join.Add(n)
	for i := 0; i < n; i++ {
		w.start[i] <- struct{}{}
	}
	w.join.Wait()
}

// stopWorkers shuts the workers down and waits for them to exit, so
// no goroutine outlives Run (or touches a released kernel).
func (k *Kernel) stopWorkers() {
	w := k.workers
	if w == nil {
		return
	}
	for _, ch := range w.start {
		close(ch)
	}
	w.wg.Wait()
	k.workers = nil
}

package des_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"llmbench/internal/des"
	"llmbench/internal/dtype"
	"llmbench/internal/model"
	"llmbench/internal/workload"
)

func testTransferCost(t *testing.T) des.TransferCost {
	t.Helper()
	m := model.MustGet("LLaMA-3-8B")
	return des.TransferCost{
		BlockTokens:   16,
		BytesPerToken: m.KVBytesPerToken(dtype.FP16),
		GBPerS:        600,
		LatencyS:      3e-6,
	}
}

// runDisagg builds a kernel with nPre prefill and nDec decode
// stations behind round-robin pool routers and runs the trace.
// scaleTicks, when non-nil, counts scale-tick firings.
func runDisagg(t *testing.T, cfg des.Config, nPre, nDec int, capGiB float64,
	reqs []workload.Request, scaleTicks *int) des.Result {
	t.Helper()
	eng := testEngine(t)
	k := des.New(cfg)
	prefill := make([]*des.Station, nPre)
	for i := range prefill {
		prefill[i] = k.NewPoolStation(eng, testAlloc(t, capGiB), des.RolePrefill)
	}
	decode := make([]*des.Station, nDec)
	for i := range decode {
		decode[i] = k.NewPoolStation(eng, testAlloc(t, capGiB), des.RoleDecode)
	}
	rr, rrx := 0, 0
	k.Route = func(now float64) *des.Station {
		s := prefill[rr%nPre]
		rr++
		return s
	}
	k.RouteTransfer = func(now float64) *des.Station {
		s := decode[rrx%nDec]
		rrx++
		return s
	}
	if scaleTicks != nil {
		k.ScaleTick = func(now float64) error { *scaleTicks++; return nil }
	}
	res, err := k.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertDisaggModesIdentical(t *testing.T, name string, cfg des.Config,
	nPre, nDec int, capGiB float64, reqs []workload.Request) des.Result {
	t.Helper()
	ref := runDisagg(t, modes(cfg)["serial"], nPre, nDec, capGiB, reqs, nil)
	for mode, mcfg := range modes(cfg) {
		got := runDisagg(t, mcfg, nPre, nDec, capGiB, reqs, nil)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: %s Result differs from serial coalesced reference", name, mode)
		}
	}
	return ref
}

// TestKernelDisaggModesMatchesSerial extends the kernel's headline
// determinism property to disaggregated fleets: with kv-transfer
// events in the total order, serial == parallel == Stepped to the
// last bit over seeded random workloads at several load levels.
func TestKernelDisaggModesMatchesSerial(t *testing.T) {
	cases := []struct {
		seed uint64
		rate float64
		out  int
	}{
		{seed: 1, rate: 0.8, out: 384},
		{seed: 2, rate: 3, out: 256},
		{seed: 3, rate: 12, out: 96},
	}
	cfg := des.Config{MaxBatch: 8, Transfer: testTransferCost(t)}
	for _, c := range cases {
		reqs, err := workload.PoissonTrace(workload.TraceConfig{
			Seed: c.seed, Requests: 48, RatePerSec: c.rate,
			InputMean: 256, OutputMean: c.out, LengthJitter: 0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := assertDisaggModesIdentical(t, "disagg-randomized", cfg, 2, 3, 16, reqs)
		if len(res.Finished) != 48 {
			t.Errorf("seed %d: completed %d/48", c.seed, len(res.Finished))
		}
		xferred := 0
		for i, ps := range res.PerStation {
			if i < 2 { // prefill pool
				if ps.Completed != 0 {
					t.Errorf("seed %d: prefill station %d completed %d requests", c.seed, i, ps.Completed)
				}
				xferred += ps.Transferred
			} else if ps.Transferred != 0 {
				t.Errorf("seed %d: decode station %d transferred %d", c.seed, i, ps.Transferred)
			}
		}
		if xferred != 48 {
			t.Errorf("seed %d: prefill pool transferred %d/48", c.seed, xferred)
		}
		for _, r := range res.Finished {
			if !(r.TransferS > 0) {
				t.Fatalf("seed %d: request %d has TransferS %v", c.seed, r.ID, r.TransferS)
			}
			if r.FirstTok < r.Started || r.Finished < r.FirstTok+r.TransferS {
				t.Errorf("seed %d: request %d timeline inconsistent: %+v", c.seed, r.ID, r)
			}
		}
	}
}

// TestKernelTransferTies pins kv-transfer tie-breaking against every
// other event kind. Waves of identical simultaneous arrivals force
// same-instant prefill completions, hence same-instant transfer
// deliveries, colliding with window-exhausted decode events; a second
// trace then plants fresh arrivals (and their scale-ticks) at exactly
// the recorded delivery instants, colliding arrival, scale-tick,
// kv-transfer, and completion events at one timestamp. Every mode
// must agree bit-for-bit, and scale-ticks must fire once per trace
// arrival — never for a kv-transfer delivery.
func TestKernelTransferTies(t *testing.T) {
	var reqs []workload.Request
	id := 0
	for wave := 0; wave < 4; wave++ {
		at := float64(wave) * 1.5
		for i := 0; i < 6; i++ { // identical requests → identical delivery instants
			reqs = append(reqs, workload.Request{ID: id, Input: 256, Output: 48, Arrival: at})
			id++
		}
	}
	cfg := des.Config{MaxBatch: 4, Transfer: testTransferCost(t)}
	probe := runDisagg(t, cfg, 2, 2, 16, reqs, nil)
	if len(probe.Finished) != len(reqs) {
		t.Fatalf("probe completed %d/%d", len(probe.Finished), len(reqs))
	}
	// Same-instant deliveries must actually occur, or the tie being
	// tested is vacuous. Delivery instant = first token + transfer.
	deliveries := map[float64]int{}
	for _, r := range probe.Finished {
		deliveries[r.FirstTok+r.TransferS]++
	}
	maxTied := 0
	for _, n := range deliveries {
		if n > maxTied {
			maxTied = n
		}
	}
	if maxTied < 2 {
		t.Fatal("construction produced no same-instant kv-transfer deliveries")
	}
	// Plant trace arrivals at exact delivery instants.
	tied := reqs
	for at := range deliveries {
		tied = append(tied, workload.Request{ID: id, Input: 128, Output: 32, Arrival: at})
		id++
	}
	res := assertDisaggModesIdentical(t, "transfer-ties", cfg, 2, 2, 16, tied)
	if len(res.Finished) != len(tied) {
		t.Fatalf("completed %d/%d", len(res.Finished), len(tied))
	}
	ticks := 0
	got := runDisagg(t, cfg, 2, 2, 16, tied, &ticks)
	if ticks != len(tied) {
		t.Errorf("scale-ticks fired %d times for %d trace arrivals (kv-transfers must not tick)", ticks, len(tied))
	}
	if !reflect.DeepEqual(got, res) {
		t.Error("installing a scale-tick observer changed the Result")
	}
}

// TestKernelDisaggSinkOrder pins the streaming hand-off for
// disaggregated fleets: the Sink sequence equals the sorted ledger —
// transfer-delay accounting included — in every mode.
func TestKernelDisaggSinkOrder(t *testing.T) {
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 21, Requests: 40, RatePerSec: 6,
		InputMean: 256, OutputMean: 128, LengthJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := des.Config{MaxBatch: 6, Transfer: testTransferCost(t)}
	ref := runDisagg(t, modes(cfg)["serial"], 1, 2, 16, reqs, nil)
	if len(ref.Finished) != len(reqs) {
		t.Fatalf("reference completed %d/%d", len(ref.Finished), len(reqs))
	}
	for mode, mcfg := range modes(cfg) {
		eng := testEngine(t)
		k := des.New(mcfg)
		pre := k.NewPoolStation(eng, testAlloc(t, 16), des.RolePrefill)
		decode := []*des.Station{
			k.NewPoolStation(eng, testAlloc(t, 16), des.RoleDecode),
			k.NewPoolStation(eng, testAlloc(t, 16), des.RoleDecode),
		}
		k.Route = func(now float64) *des.Station { return pre }
		rrx := 0
		k.RouteTransfer = func(now float64) *des.Station {
			s := decode[rrx%len(decode)]
			rrx++
			return s
		}
		var streamed []des.RequestStats
		k.Sink = func(r des.RequestStats) { streamed = append(streamed, r) }
		res, err := k.Run(reqs)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Completed != len(reqs) {
			t.Errorf("%s: Completed %d/%d", mode, res.Completed, len(reqs))
		}
		if !reflect.DeepEqual(streamed, ref.Finished) {
			t.Errorf("%s: Sink sequence differs from the sorted ledger", mode)
		}
	}
}

// TestKernelDisaggScratchReuse alternates disaggregated and
// aggregated runs over one arena: recycled station shells must not
// leak roles or transfer state across runs.
func TestKernelDisaggScratchReuse(t *testing.T) {
	reqs, err := workload.PoissonTrace(workload.TraceConfig{
		Seed: 13, Requests: 40, RatePerSec: 5,
		InputMean: 256, OutputMean: 128, LengthJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := des.Config{MaxBatch: 6, Transfer: testTransferCost(t)}
	acfg := des.Config{MaxBatch: 6}
	wantD := runDisagg(t, dcfg, 1, 2, 16, reqs, nil)
	wantA := runKernel(t, acfg, 3, 16, reqs)
	sc := &des.Scratch{}
	eng := testEngine(t)
	for round := 0; round < 2; round++ {
		k := des.New(dcfg)
		k.Reuse(sc)
		pre := k.NewPoolStation(eng, testAlloc(t, 16), des.RolePrefill)
		decode := []*des.Station{
			k.NewPoolStation(eng, testAlloc(t, 16), des.RoleDecode),
			k.NewPoolStation(eng, testAlloc(t, 16), des.RoleDecode),
		}
		k.Route = func(now float64) *des.Station { return pre }
		rrx := 0
		k.RouteTransfer = func(now float64) *des.Station {
			s := decode[rrx%len(decode)]
			rrx++
			return s
		}
		got, err := k.Run(reqs)
		if err != nil {
			t.Fatalf("disagg round %d: %v", round, err)
		}
		k.Release()
		if !reflect.DeepEqual(got, wantD) {
			t.Errorf("disagg round %d: recycled-arena Result differs", round)
		}
		// Aggregated run over the same (role-carrying) shells.
		k = des.New(acfg)
		k.Reuse(sc)
		stations := make([]*des.Station, 3)
		for i := range stations {
			stations[i] = k.NewStation(eng, testAlloc(t, 16))
		}
		rr := 0
		k.Route = func(now float64) *des.Station {
			s := stations[rr%3]
			rr++
			return s
		}
		got, err = k.Run(reqs)
		if err != nil {
			t.Fatalf("aggregated round %d: %v", round, err)
		}
		k.Release()
		if !reflect.DeepEqual(got, wantA) {
			t.Errorf("aggregated round %d: Result differs after disagg reuse", round)
		}
	}
}

func TestTransferCostSecondsAndValidate(t *testing.T) {
	tc := des.TransferCost{BlockTokens: 16, BytesPerToken: 1e5, GBPerS: 100, LatencyS: 2e-6}
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1..16 tokens round to one 16-token block; 17 to two.
	one := 16 * 1e5 / (100 * 1e9)
	if got := tc.Seconds(1); got != one+2e-6 {
		t.Errorf("Seconds(1) = %v, want %v", got, one+2e-6)
	}
	if got := tc.Seconds(16); got != one+2e-6 {
		t.Errorf("Seconds(16) = %v, want %v", got, one+2e-6)
	}
	if got := tc.Seconds(17); got != 2*one+2e-6 {
		t.Errorf("Seconds(17) = %v, want %v", got, 2*one+2e-6)
	}
	bad := []des.TransferCost{
		{BlockTokens: 0, BytesPerToken: 1, GBPerS: 1, LatencyS: 1e-6},
		{BlockTokens: 16, BytesPerToken: 0, GBPerS: 1, LatencyS: 1e-6},
		{BlockTokens: 16, BytesPerToken: 1, GBPerS: -600, LatencyS: 1e-6},
		{BlockTokens: 16, BytesPerToken: 1, GBPerS: math.NaN(), LatencyS: 1e-6},
		{BlockTokens: 16, BytesPerToken: 1, GBPerS: 1, LatencyS: 0},
		{BlockTokens: 16, BytesPerToken: 1, GBPerS: 1, LatencyS: math.Inf(1)},
		{BlockTokens: 16, BytesPerToken: math.NaN(), GBPerS: 1, LatencyS: 1e-6},
	}
	for i, b := range bad {
		if err := b.Validate(); !errors.Is(err, des.ErrBadTransfer) {
			t.Errorf("case %d: got %v, want ErrBadTransfer", i, err)
		}
	}
}

// TestKernelDisaggValidation covers the disaggregation-specific error
// paths: missing transfer router, invalid pricing, scheduling modes
// that do not compose with pool roles, and phase misrouting.
func TestKernelDisaggValidation(t *testing.T) {
	reqs := []workload.Request{{ID: 0, Input: 64, Output: 8, Arrival: 0}}
	mk := func(cfg des.Config) *des.Kernel {
		k := des.New(cfg)
		pre := k.NewPoolStation(testEngine(t), testAlloc(t, 1), des.RolePrefill)
		dec := k.NewPoolStation(testEngine(t), testAlloc(t, 1), des.RoleDecode)
		k.Route = func(float64) *des.Station { return pre }
		k.RouteTransfer = func(float64) *des.Station { return dec }
		return k
	}
	good := des.Config{MaxBatch: 4, Transfer: testTransferCost(t)}

	k := mk(good)
	k.RouteTransfer = nil
	if _, err := k.Run(reqs); err == nil {
		t.Error("prefill stations without RouteTransfer must fail")
	}
	badCfg := good
	badCfg.Transfer.GBPerS = 0
	if _, err := mk(badCfg).Run(reqs); !errors.Is(err, des.ErrBadTransfer) {
		t.Errorf("invalid transfer pricing: got %v, want ErrBadTransfer", err)
	}
	for name, cfg := range map[string]des.Config{
		"static":     {MaxBatch: 4, Static: true, Transfer: testTransferCost(t)},
		"chunked":    {MaxBatch: 4, ChunkedPrefill: true, Transfer: testTransferCost(t)},
		"preemptive": {MaxBatch: 4, Preemptive: true, Transfer: testTransferCost(t)},
	} {
		if _, err := mk(cfg).Run(reqs); err == nil {
			t.Errorf("%s + pool roles must fail", name)
		}
	}
	// A trace arrival routed straight to a decode station is a phase
	// misroute: decode stations only accept kv-transfer deliveries.
	k = des.New(good)
	k.NewPoolStation(testEngine(t), testAlloc(t, 1), des.RolePrefill)
	dec := k.NewPoolStation(testEngine(t), testAlloc(t, 1), des.RoleDecode)
	k.Route = func(float64) *des.Station { return dec }
	k.RouteTransfer = func(float64) *des.Station { return dec }
	if _, err := k.Run(reqs); err == nil {
		t.Error("prefill-phase request at a decode station must fail")
	}
	// And a kv-transfer delivered back to the prefill pool is the
	// mirror-image misroute.
	k = des.New(good)
	pre := k.NewPoolStation(testEngine(t), testAlloc(t, 1), des.RolePrefill)
	k.NewPoolStation(testEngine(t), testAlloc(t, 1), des.RoleDecode)
	k.Route = func(float64) *des.Station { return pre }
	k.RouteTransfer = func(float64) *des.Station { return pre }
	if _, err := k.Run(reqs); err == nil {
		t.Error("decode-phase sub-request at a prefill station must fail")
	}
}

package des_test

// Tiered-prefix serving tests: the admission path must price the
// kvcache.PrefillDiscounter contract — cached prefix tokens skip
// prefill compute, restored ones charge host-link seconds — and stay
// byte-identical across serial/parallel/stepped, and the chunked
// prefill slot must schedule slices shortest-remaining-first so a hit
// never serializes behind a cold prompt's establishment.

import (
	"testing"

	"llmbench/internal/des"
	"llmbench/internal/dtype"
	"llmbench/internal/kvcache"
	"llmbench/internal/model"
	"llmbench/internal/workload"
)

// tieredAlloc builds a Tiered allocator whose shared prefix is
// prefixTokens long, over capGiB of device KV and hostGiB of host tier.
func tieredAlloc(t *testing.T, prefixTokens int, capGiB, hostGiB float64) *kvcache.Tiered {
	t.Helper()
	m := model.MustGet("LLaMA-3-8B")
	gpu, err := kvcache.NewPrefixPaged(16, prefixTokens, m.KVBytesPerToken(dtype.FP16), capGiB*(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	tv, err := kvcache.NewTiered(gpu, hostGiB*(1<<30), kvcache.HostLink{GBPerS: 32, LatencyS: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	return tv
}

// sharedPrefixTrace builds a trace whose every prompt fronts the same
// prefix: inputs at least prefixTokens long, spaced at the given gap.
func sharedPrefixTrace(n, prefixTokens, suffix, output int, gapS float64) []workload.Request {
	reqs := make([]workload.Request, n)
	for i := range reqs {
		reqs[i] = workload.Request{
			ID: i, Input: prefixTokens + suffix, Output: output,
			Arrival: float64(i) * gapS,
		}
	}
	return reqs
}

// runTiered runs the trace on one station backed by a Tiered allocator.
func runTiered(t *testing.T, cfg des.Config, prefixTokens int, hostGiB float64, reqs []workload.Request) des.Result {
	t.Helper()
	k := des.New(cfg)
	k.NewStation(testEngine(t), tieredAlloc(t, prefixTokens, 16, hostGiB))
	res, err := k.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestKernelTieredDiscountAndHitCounters pins the admission pricing:
// back-to-back shared-prefix prompts hit the resident prefix, so the
// run both finishes faster than the same trace on a discount-less
// PrefixPaged and reports the hit tokens in the Result ledger.
func TestKernelTieredDiscountAndHitCounters(t *testing.T) {
	const prefix, suffix = 2048, 64
	reqs := sharedPrefixTrace(12, prefix, suffix, 16, 0.05)

	for _, mode := range []struct {
		name string
		cfg  des.Config
	}{
		{"monolithic-admission", des.Config{MaxBatch: 4}},
		{"chunked-admission", des.Config{MaxBatch: 4, ChunkedPrefill: true, PrefillChunk: 256}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			tiered := runTiered(t, mode.cfg, prefix, 4, reqs)
			if tiered.Completed != len(reqs) {
				t.Fatalf("completed %d/%d", tiered.Completed, len(reqs))
			}
			wantPrompt := len(reqs) * (prefix + suffix)
			if tiered.PromptTokens != wantPrompt {
				t.Errorf("PromptTokens = %d, want %d", tiered.PromptTokens, wantPrompt)
			}
			// Eleven of twelve prompts hit the warm prefix in full
			// (the first computes it; full blocks only, 2048 % 16 == 0).
			wantHits := (len(reqs) - 1) * prefix
			if tiered.PrefixHitTokens != wantHits {
				t.Errorf("PrefixHitTokens = %d, want %d", tiered.PrefixHitTokens, wantHits)
			}

			// The same trace through a bare PrefixPaged shares storage
			// but re-prefills every prompt: it must finish strictly
			// later.
			m := model.MustGet("LLaMA-3-8B")
			gpu, err := kvcache.NewPrefixPaged(16, prefix, m.KVBytesPerToken(dtype.FP16), 16*(1<<30))
			if err != nil {
				t.Fatal(err)
			}
			k := des.New(mode.cfg)
			k.NewStation(testEngine(t), gpu)
			bare, err := k.Run(reqs)
			if err != nil {
				t.Fatal(err)
			}
			if bare.PrefixHitTokens != 0 {
				t.Fatalf("bare PrefixPaged reported %d hit tokens", bare.PrefixHitTokens)
			}
			last := func(r des.Result) float64 {
				end := 0.0
				for _, f := range r.Finished {
					if f.Finished > end {
						end = f.Finished
					}
				}
				return end
			}
			if lt, lb := last(tiered), last(bare); lt >= lb {
				t.Errorf("tiered makespan %v must beat discount-less %v", lt, lb)
			}
		})
	}
}

// TestKernelTieredRestoreCharged drives a demote/restore cycle: the
// station drains between two bursts, the prefix demotes to the host
// tier, and the second burst's first admission pays the host-link
// restore instead of a full re-prefill — cheaper than cold, dearer
// than warm, and identically in every kernel mode.
func TestKernelTieredRestoreCharged(t *testing.T) {
	const prefix, suffix = 4096, 64
	burst := func(start float64, idBase int) []workload.Request {
		reqs := sharedPrefixTrace(4, prefix, suffix, 8, 0.02)
		for i := range reqs {
			reqs[i].ID = idBase + i
			reqs[i].Arrival += start
		}
		return reqs
	}
	// 30 s of silence between bursts: every sequence frees, the last
	// Free demotes the prefix.
	reqs := append(burst(0, 0), burst(30, 100)...)

	cfg := des.Config{MaxBatch: 4}
	withHost := runTiered(t, cfg, prefix, 4, reqs)
	// A host tier too small for the prefix drops it at demotion: the
	// second burst re-prefills from scratch.
	sub := float64(prefix/16-1) * 16 * model.MustGet("LLaMA-3-8B").KVBytesPerToken(dtype.FP16) / (1 << 30)
	noHost := runTiered(t, cfg, prefix, sub, reqs)

	if withHost.Completed != len(reqs) || noHost.Completed != len(reqs) {
		t.Fatal("both runs must complete")
	}
	// The first burst is identical; the second differs only in how the
	// prefix comes back. Restore must beat re-prefill on A100 numbers
	// (a ~1 GiB transfer at 32 GB/s ≪ a 4096-token prefill), and the
	// with-host run must report the extra hits.
	if withHost.PrefixHitTokens <= noHost.PrefixHitTokens {
		t.Errorf("restored run hits %d must exceed dropped run hits %d",
			withHost.PrefixHitTokens, noHost.PrefixHitTokens)
	}
	var restoredHead, coldHead float64
	for i, f := range withHost.Finished {
		if f.ID == 100 {
			restoredHead = f.Finished - f.Arrival
			coldHead = noHost.Finished[i].Finished - noHost.Finished[i].Arrival
		}
	}
	if restoredHead <= 0 || restoredHead >= coldHead {
		t.Errorf("restored head latency %v must undercut cold re-prefill %v", restoredHead, coldHead)
	}

	// And the whole tiered path holds the kernel's headline identity.
	for mode, mcfg := range modes(cfg) {
		got := runTiered(t, mcfg, prefix, 4, reqs)
		if got.PrefixHitTokens != withHost.PrefixHitTokens || got.Completed != withHost.Completed {
			t.Errorf("%s: tiered counters differ (hits %d vs %d)", mode, got.PrefixHitTokens, withHost.PrefixHitTokens)
		}
		if len(got.Finished) != len(withHost.Finished) {
			t.Fatalf("%s: ledger length differs", mode)
		}
		for i := range got.Finished {
			if got.Finished[i] != withHost.Finished[i] {
				t.Errorf("%s: request %d stats differ from serial reference", mode, got.Finished[i].ID)
				break
			}
		}
	}
}

// TestStationChunkedShortestSliceFirst pins the fused-slot discipline:
// the slice goes to the pending prompt with the fewest tokens left, so
// a short suffix admitted during a long prompt's establishment
// overtakes it instead of inheriting its whole prefill.
func TestStationChunkedShortestSliceFirst(t *testing.T) {
	reqs := []workload.Request{
		{ID: 0, Input: 4096, Output: 4, Arrival: 0},
		{ID: 1, Input: 256, Output: 4, Arrival: 0.01},
	}
	cfg := des.Config{MaxBatch: 4, ChunkedPrefill: true, PrefillChunk: 256}
	k := des.New(cfg)
	k.NewStation(testEngine(t), testAlloc(t, 16))
	res, err := k.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d/2", res.Completed)
	}
	var long, short des.RequestStats
	for _, f := range res.Finished {
		if f.ID == 0 {
			long = f
		} else {
			short = f
		}
	}
	if short.Finished >= long.Finished {
		t.Errorf("256-token prompt (done %v) must overtake the 4096-token one (done %v)",
			short.Finished, long.Finished)
	}
	assertModesIdentical(t, "sjf-slices", cfg, 1, 16, reqs)
}

// TestStationPendingPrefillTokens reads the router-facing backlog
// gauge at arrival barriers: positive while a chunked prompt is mid-
// establishment, always zero in monolithic admission (prefill is
// charged whole at the admission event).
func TestStationPendingPrefillTokens(t *testing.T) {
	reqs := []workload.Request{
		{ID: 0, Input: 4096, Output: 4, Arrival: 0},
		{ID: 1, Input: 256, Output: 4, Arrival: 0.01},
		{ID: 2, Input: 256, Output: 4, Arrival: 0.02},
	}
	for _, mode := range []struct {
		name    string
		chunked bool
	}{{"chunked", true}, {"monolithic", false}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := des.Config{MaxBatch: 4}
			if mode.chunked {
				cfg.ChunkedPrefill = true
				cfg.PrefillChunk = 256
			}
			k := des.New(cfg)
			st := k.NewStation(testEngine(t), testAlloc(t, 16))
			maxPending := 0
			k.Route = func(now float64) *des.Station {
				if p := st.PendingPrefillTokens(); p > maxPending {
					maxPending = p
				}
				return st
			}
			if _, err := k.Run(reqs); err != nil {
				t.Fatal(err)
			}
			if mode.chunked && maxPending == 0 {
				t.Error("chunked: a 4096-token prompt must show prefill backlog at the next arrival")
			}
			if !mode.chunked && maxPending != 0 {
				t.Errorf("monolithic: backlog gauge read %d, want 0", maxPending)
			}
		})
	}
}

package des

// Scratch is a reusable kernel arena: the slices and station shells
// (warmed buffers, request free lists included) of a finished kernel,
// ready to be adopted by the next one. Kernels are single-use (Run
// guards against reuse because stations carry run state), but a sweep
// runs thousands of points back-to-back on the same worker — without
// recycling, every point re-pays station, queue, and free-list warmup
// allocations that the previous point just released to the GC.
//
// Usage, per point:
//
//	k := des.New(cfg)
//	k.Reuse(scratch)   // before NewStation
//	... NewStation / Run ...
//	k.Release()        // when the Result has been read
//
// A Scratch is not concurrency-safe: use one per worker (or guard it
// externally). Recycled state never affects results — stations are
// fully reset on reuse, and RequestStats leave the kernel by value —
// so a swept grid stays byte-identical with or without recycling.
type Scratch struct {
	stations []*Station
	arrivals []float64
	due      []int
	awake    []int
	flushBuf []RequestStats
	pending  []transfer
}

// Reuse adopts the arena's buffers into k and earmarks it for
// Release. Must be called before the first NewStation; a nil scratch
// is a no-op.
func (k *Kernel) Reuse(sc *Scratch) {
	if sc == nil {
		return
	}
	k.scratch = sc
	k.arrivals = sc.arrivals[:0]
	k.due = sc.due[:0]
	k.awake = sc.awake[:0]
	k.flushBuf = sc.flushBuf[:0]
	k.pending = sc.pending[:0]
	sc.arrivals, sc.due, sc.awake, sc.flushBuf, sc.pending = nil, nil, nil, nil, nil
}

// Release returns k's buffers and station shells to the Scratch
// passed to Reuse. Call it only after the Result is fully consumed:
// the per-station buffers are truncated for reuse (Result.Finished
// itself is freshly allocated by collect and stays valid). Engine and
// allocator references are dropped so the arena cannot pin them.
// No-op without a prior Reuse.
func (k *Kernel) Release() {
	sc := k.scratch
	if sc == nil {
		return
	}
	k.scratch = nil
	for _, s := range k.stations {
		// Leftover run records (error paths abandon in-flight work)
		// go back on the free list with everything else.
		for _, r := range s.run {
			s.free = append(s.free, r)
		}
		s.run = s.run[:0]
		s.Engine, s.Alloc, s.disc = nil, nil, nil
		s.pricer = pricer{} // drop the snapshot so the arena cannot pin engine memo arrays
		sc.stations = append(sc.stations, s)
	}
	k.stations = nil
	sc.arrivals = k.arrivals
	sc.due = k.due
	sc.awake = k.awake
	sc.flushBuf = k.flushBuf
	sc.pending = k.pending[:0] // abandoned transfers hold no pointers
	k.arrivals, k.due, k.awake, k.flushBuf, k.pending = nil, nil, nil, nil, nil
}
